package tagfree_test

// Runs every MinML program under testdata/progs under all four collectors
// (plus mark/sweep and 0-CFA configurations of the compiled one) with a
// small heap, asserting the strategies agree with each other.

import (
	"os"
	"path/filepath"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

func TestTestdataProgramsAgree(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "progs", "*.ml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			srcBytes, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcBytes)

			type config struct {
				name string
				opts pipeline.Options
			}
			configs := []config{
				{"compiled", pipeline.Options{Strategy: gc.StratCompiled}},
				{"interp", pipeline.Options{Strategy: gc.StratInterp}},
				{"appel", pipeline.Options{Strategy: gc.StratAppel}},
				{"tagged", pipeline.Options{Strategy: gc.StratTagged}},
				{"compiled-ms", pipeline.Options{Strategy: gc.StratCompiled, MarkSweep: true}},
				{"compiled-cfa", pipeline.Options{Strategy: gc.StratCompiled, UseCFA: true}},
			}
			var reference int64
			var refOutput string
			for i, cfg := range configs {
				cfg.opts.HeapWords = 2048
				cfg.opts.MaxSteps = 100_000_000
				res, err := pipeline.Run(src, cfg.opts)
				if err != nil {
					t.Fatalf("[%s] %v", cfg.name, err)
				}
				if i == 0 {
					reference = res.Value
					refOutput = res.Output
					continue
				}
				if res.Value != reference {
					t.Errorf("[%s] result %d differs from compiled's %d", cfg.name, res.Value, reference)
				}
				if res.Output != refOutput {
					t.Errorf("[%s] output %q differs from compiled's %q", cfg.name, res.Output, refOutput)
				}
			}
		})
	}
}
