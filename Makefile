# Test tiers. tier1 is the gate every change must pass; tier2 adds the
# race detector over the parallel-collection paths and a fresh (uncached)
# run of the cross-strategy differential suite. tier2-torture is the
# heavyweight stress pass: the full task corpus with a collection before
# every allocation and the post-collection heap verifier on, under the
# race detector. tier2-bench is the benchmark-harness race smoke: the
# pause harness with 4 workers over the lock-free plan/site caches.
# tier2-nursery is the generational stress pass: the nursery differential
# suite and write-barrier fuzz under the race detector, plus the nursery
# telemetry corpus with torture collection and the heap verifier on.
# tier2-tlab is the allocation-buffer pass: the TLAB unit and interleaving
# fuzz suites plus the cross-strategy allocation-equivalence differential
# suite under the race detector, and the telemetry corpus with buffers,
# torture collection and the heap verifier on. tier2-scenario is the
# declarative-matrix pass: the scenario DSL suites (golden diagnostics,
# compiler differential, fuzz seeds) under the race detector, plus the
# torture-mode scenario from the committed corpus — torture and the heap
# verifier requested through the DSL's faults block rather than flags.
# tier2-serve is the overload pass: the serve-harness suites (admission,
# shedding, backoff, ladder), the per-task budget suites, and the combined
# nursery+TLAB recovery-ladder test under the race detector, plus the
# committed overload-torture scenario (arrivals, shedding and the faults
# block's torture/injection knobs all through the DSL).
# tier2-concurrent is the incremental-marking pass: the concurrent
# differential, interleaving-fuzz, watchdog and validation suites under
# the race detector, plus the committed concurrent-torture scenario —
# gc_concurrent cycling continuously in a tight heap with the verifier
# on, and gc_concurrent crossed with torture so every forced collection
# aborts an in-flight cycle. tier2-shard is the sharded-heap pass: the
# shard differential, interleaving-fuzz, gating and OOM-ladder suites
# plus the sharded overload-ledger test under the race detector, and the
# committed shard-torture scenario — per-shard minors with the verifier
# walking the whole heap after each, and injected failures climbing the
# global ladder with the nursery split four ways. tier2-liveness is the
# heap-liveness pass: the differential projection suite (retained-set
# subset via signature projection, poison traps, the 32-seed mode-matrix
# fuzz) under the race detector, plus the committed liveness-torture
# scenario — pruning crossed with torture and the verifier, and pruning
# pushed out of its envelope over sharded nurseries with injected
# failures so the counted-degrade path runs under stress too.

.PHONY: tier1 tier2 tier2-torture tier2-bench tier2-nursery tier2-tlab tier2-scenario tier2-serve tier2-concurrent tier2-shard tier2-liveness bench bench-json fuzz fuzz-scenario

tier1:
	go build ./...
	go vet ./...
	go test ./...

tier2: tier1 tier2-nursery tier2-tlab tier2-scenario tier2-serve tier2-concurrent tier2-shard tier2-liveness
	go test -race ./...
	go test -run TestDifferential -count=1 ./internal/pipeline/

tier2-nursery:
	go test -race -run 'TestDifferentialNursery|TestNursery' -count=1 -timeout 30m ./internal/pipeline/
	go run -race ./cmd/tfbench -gc-nursery 256 -gc-torture -verify-heap telemetry >/dev/null

tier2-tlab:
	go test -race -run 'TestTLAB|TestDifferentialTLAB' -count=1 -timeout 30m ./internal/heap/ ./internal/pipeline/
	go run -race ./cmd/tfbench -tlab 64 -gc-torture -verify-heap telemetry >/dev/null

tier2-scenario:
	go test -race -run TestScenario -count=1 -timeout 30m ./internal/scenario/
	go run -race ./cmd/tfbench -scenario testdata/scenarios/torture.tfs >/dev/null

tier2-serve:
	go test -race -count=1 -timeout 30m ./internal/serve/ ./cmd/tfserve/
	go test -race -run 'TestBudget|TestLadderOutcomeSplit|TestNurseryTLABLadder' -count=1 -timeout 30m ./internal/pipeline/
	go run -race ./cmd/tfbench -scenario testdata/scenarios/overload-torture.tfs >/dev/null

tier2-concurrent:
	go test -race -run 'TestDifferentialConcurrent|TestConcurrent' -count=1 -timeout 30m ./internal/pipeline/
	go run -race ./cmd/tfbench -scenario testdata/scenarios/concurrent-torture.tfs >/dev/null

tier2-shard:
	go test -race -run 'TestDifferentialShards|TestShard' -count=1 -timeout 30m ./internal/pipeline/
	go test -race -run TestShardedOverloadLedgerBalances -count=1 -timeout 30m ./internal/serve/
	go run -race ./cmd/tfbench -scenario testdata/scenarios/shard-torture.tfs >/dev/null

tier2-liveness:
	go test -race -run 'TestHeapLiveness|TestPoisonTraps' -count=1 -timeout 30m ./internal/pipeline/
	go run -race ./cmd/tfbench -scenario testdata/scenarios/liveness-torture.tfs >/dev/null

tier2-torture: tier1
	GC_TORTURE_FULL=1 go test -race -run 'TestTorture|TestRecoveryLadder|TestWatchdog' -count=1 -timeout 30m ./internal/pipeline/

tier2-bench: tier1
	go test -race -run 'TestBenchSnapshot|TestFastPath' -count=1 ./internal/experiments/ ./internal/gc/ ./internal/pipeline/

# Go micro-benchmarks (slot dedupe, parallel collect, E1-E8 mirrors).
bench:
	go test -bench=. -benchmem -run xxx . ./internal/gc/

# Regenerate the committed benchmark snapshot (schema tagfree-bench/v1);
# fixed repeats so snapshots are comparable across the repo's history.
# Override the output for a new trajectory point:
#   make bench-json BENCH_OUT=BENCH_PR10.json
BENCH_OUT ?= BENCH_PR9.json
bench-json:
	go run ./cmd/tfbench -repeats 3 -bench-json $(BENCH_OUT)

# Budgeted fuzzing of the mark/sweep free-list invariants.
fuzz:
	go test ./internal/heap/ -fuzz FuzzMarkSweepFreeList -fuzztime 30s

# Budgeted fuzzing of the scenario lexer/parser/compiler (no panics,
# every diagnostic positioned).
fuzz-scenario:
	go test ./internal/scenario/ -fuzz FuzzScenarioParse -fuzztime 30s
