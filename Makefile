# Test tiers. tier1 is the gate every change must pass; tier2 adds the
# race detector over the parallel-collection paths, static analysis, and
# a fresh (uncached) run of the cross-strategy differential suite.

.PHONY: tier1 tier2 bench fuzz

tier1:
	go build ./...
	go test ./...

tier2: tier1
	go vet ./...
	go test -race ./...
	go test -run TestDifferential -count=1 ./internal/pipeline/

bench:
	go test -bench=. -benchmem -run xxx .

# Budgeted fuzzing of the mark/sweep free-list invariants.
fuzz:
	go test ./internal/heap/ -fuzz FuzzMarkSweepFreeList -fuzztime 30s
