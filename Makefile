# Test tiers. tier1 is the gate every change must pass; tier2 adds the
# race detector over the parallel-collection paths and a fresh (uncached)
# run of the cross-strategy differential suite. tier2-torture is the
# heavyweight stress pass: the full task corpus with a collection before
# every allocation and the post-collection heap verifier on, under the
# race detector.

.PHONY: tier1 tier2 tier2-torture bench fuzz

tier1:
	go build ./...
	go vet ./...
	go test ./...

tier2: tier1
	go test -race ./...
	go test -run TestDifferential -count=1 ./internal/pipeline/

tier2-torture: tier1
	GC_TORTURE_FULL=1 go test -race -run 'TestTorture|TestRecoveryLadder|TestWatchdog' -count=1 -timeout 30m ./internal/pipeline/

bench:
	go test -bench=. -benchmem -run xxx .

# Budgeted fuzzing of the mark/sweep free-list invariants.
fuzz:
	go test ./internal/heap/ -fuzz FuzzMarkSweepFreeList -fuzztime 30s
