// Quickstart: compile and run a MinML program under the paper's compiled
// tag-free collector, then compare the same program against the tagged
// baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

const program = `
(* A small ML program: build trees, sum them, repeat — enough allocation
   to force several garbage collections in a 4 KiW semispace. *)
type tree = Leaf | Node of tree * int * tree

let rec build d = if d = 0 then Leaf else Node (build (d - 1), d, build (d - 1))
let rec tsum t = match t with | Leaf -> 0 | Node (l, v, r) -> tsum l + v + tsum r

let round () = tsum (build 8)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 40 0
`

func main() {
	fmt.Println("tag-free GC quickstart")
	fmt.Println("======================")
	for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratTagged} {
		res, err := pipeline.Run(program, pipeline.Options{
			Strategy:  strat,
			HeapWords: 4096,
		})
		if err != nil {
			log.Fatalf("[%v] %v", strat, err)
		}
		fmt.Printf("\ncollector: %v\n", strat)
		fmt.Printf("  result          %d\n", res.Value)
		fmt.Printf("  words allocated %d\n", res.HeapStats.WordsAllocated)
		fmt.Printf("  collections     %d\n", res.HeapStats.Collections)
		fmt.Printf("  words copied    %d\n", res.HeapStats.WordsCopied)
		fmt.Printf("  gc metadata     %d words\n", res.MetadataWords)
	}
	fmt.Println(`
The tag-free run allocates fewer words (tree nodes carry no header) and
its collector traces frames through compiler-generated frame maps rather
than per-word tag bits. Both compute the same result.`)
}
