// Tasking demo: the paper's §4 extension — several tasks over one shared
// heap with the Rgc suspension protocol.
//
//	go run ./examples/tasking
package main

import (
	"fmt"
	"log"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

const program = `
(* Three workers of different sizes hammer a shared heap. Collection can
   start only when every task reaches a safe point: the task that found
   the heap full waits at its allocation, the others divert into the
   suspension stub at their next procedure call (the Rgc register trick). *)
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round k = sum (upto k)
let rec work rounds k acc =
  if rounds = 0 then acc
  else work (rounds - 1) k (acc + round k)

let small () = work 60 10 0
let medium () = work 40 25 0
let large () = work 25 40 0
`

func main() {
	fmt.Println("tasking: shared-heap collection with Rgc suspension (paper §4)")
	fmt.Println("===============================================================")
	res, err := pipeline.RunTasks(program, []string{"small", "medium", "large"},
		pipeline.Options{
			Strategy:  gc.StratCompiled,
			HeapWords: 2048,
		})
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"small", "medium", "large"}
	for i, name := range names {
		fmt.Printf("task %-6s => %d\n", name, res.Values[i])
	}
	fmt.Printf("\ncollections        %d (stop-the-world, all stacks traced)\n", res.Stats.Collections)
	fmt.Printf("Rgc checks         %d (one per call dispatch — the near-free test)\n", res.Stats.RgcChecks)
	fmt.Printf("instructions       %d\n", res.Stats.Instructions)
	if len(res.Stats.SuspendLatency) > 0 {
		var max int64
		for _, l := range res.Stats.SuspendLatency {
			if l > max {
				max = l
			}
		}
		fmt.Printf("suspend latencies  %v instructions (max %d)\n", res.Stats.SuspendLatency, max)
	}
	fmt.Println(`
Each collection waited for every running task to reach its next call or
allocation; the latency column shows how many instructions that took.`)
}
