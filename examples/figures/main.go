// Figures demo: executable renditions of the paper's Figures 1 and 2.
//
// Figure 1 shows the stack/code organization: each call instruction is
// followed by a gc_word holding the frame GC metadata for the caller, and
// the return sequence skips over it. This demo disassembles a compiled
// function so the embedded gc_words are visible, then prints the site
// table entries they index — the frame maps the collector executes.
//
// Figure 2 is the collector's main loop: walk the dynamic chain, read each
// frame's gc_word through the return address, run the frame routine. The
// demo triggers a collection and reports the walk statistics.
//
//	go run ./examples/figures
package main

import (
	"fmt"
	"log"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

const program = `
let rec append xs ys =
  match xs with
  | [] -> ys
  | x :: rest -> x :: append rest ys
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = sum (append (upto 60) (upto 80))
`

func main() {
	fmt.Println("Figure 1 — stack/code organization with embedded gc_words")
	fmt.Println("==========================================================")
	prog, anal, err := pipeline.Build(program, pipeline.Options{Strategy: gc.StratCompiled})
	if err != nil {
		log.Fatal(err)
	}
	idx := prog.FuncByName("append")
	fmt.Println(prog.DisasmFunc(idx))

	fmt.Println("site table entries referenced by append's gc_words:")
	for i, si := range prog.Sites {
		if prog.Funcs[si.Func].Name != "append" {
			continue
		}
		fmt.Printf("  gc_word=%d kind=%d live slots: ", i, si.Kind)
		if len(si.Live) == 0 {
			fmt.Print("(none — the paper's no_trace routine)")
		}
		for _, e := range si.Live {
			fmt.Printf("slot %d : %s  ", e.Slot, e.Desc)
		}
		fmt.Println()
	}
	fmt.Printf("\ngc_words elided by the §5.1 analysis: %d of %d direct call sites\n\n",
		anal.Stats.ElidedSites, anal.Stats.DirectCallSites)

	fmt.Println("Figure 2 — the collector main loop in action")
	fmt.Println("============================================")
	res, err := pipeline.Run(program, pipeline.Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result        %d\n", res.Value)
	fmt.Printf("collections   %d\n", res.HeapStats.Collections)
	fmt.Printf("frames walked %d (dynamic-chain traversal, gc_word per frame)\n", res.GCStats.FramesTraced)
	fmt.Printf("slots traced  %d (only live, initialized, pointer-bearing slots)\n", res.GCStats.SlotsTraced)
	fmt.Printf("words copied  %d\n", res.HeapStats.WordsCopied)
	fmt.Println(`
Note the recursive append call's frame map above: nothing is live across
it, reproducing the paper's observation that "garbage collection never
needs to trace the elements of an append activation record" (§2.4).`)
}
