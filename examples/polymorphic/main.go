// Polymorphic collection demo: the paper's §3 machinery at work.
//
// The program instantiates one polymorphic function at several types and
// keeps deep polymorphic frames alive across a collection. The demo shows
// the type_gc_routine statistics: how many distinct routines the collector
// constructed (Figure 3's memoized trace_list_of closures) and how the
// oldest→newest walk's work compares with Appel's per-frame chain re-walk.
//
//	go run ./examples/polymorphic
package main

import (
	"fmt"
	"log"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

const program = `
(* The paper's §3 example, scaled up: f x = let y = [x; x] in (y, [3]).
   Different calls instantiate 'a differently, so the frame GC routine of
   f is parameterized by a type_gc_routine for x. *)
let f x = let y = [x; x] in (y, [3])

let rec map g xs = match xs with | [] -> [] | x :: r -> g x :: map g r
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec count xs = match xs with | [] -> 0 | _ :: r -> 1 + count r

(* Deep polymorphic recursion: every frame holds an 'a value the
   collector must trace via the type package passed from its caller. *)
let probe x = (let _ = [x; x] in 1)
let rec pdepth x acc n = if n = 0 then acc else probe x + pdepth x acc (n - 1)

let main () =
  let a = f true in
  let b = f 7 in
  let c = f (1, 2) in
  let heads = map (fun p -> match p with (ys, zs) -> count ys + sum zs) [b] in
  let deep = pdepth (f 9) 0 120 in
  (match a with (ys, _) -> count ys)
    + (match c with (_, zs) -> sum zs)
    + sum heads + deep
`

func main() {
	fmt.Println("polymorphic tag-free collection (paper §3)")
	fmt.Println("==========================================")
	for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel} {
		res, err := pipeline.Run(program, pipeline.Options{
			Strategy:  strat,
			HeapWords: 400,
			MaxSteps:  1 << 32,
		})
		if err != nil {
			log.Fatalf("[%v] %v", strat, err)
		}
		fmt.Printf("\ncollector: %v\n", strat)
		fmt.Printf("  result             %d\n", res.Value)
		fmt.Printf("  collections        %d\n", res.HeapStats.Collections)
		fmt.Printf("  frames traced      %d\n", res.GCStats.FramesTraced)
		fmt.Printf("  type_gc built      %d (memoized, Figure 3)\n", res.GCStats.TypeGCBuilt)
		if strat == gc.StratAppel {
			fmt.Printf("  chain steps        %d (per-frame dynamic-chain walk)\n", res.GCStats.ChainSteps)
		}
		if strat == gc.StratInterp {
			fmt.Printf("  descriptor bytes   %d decoded during collection\n", res.GCStats.DescBytesDecoded)
		}
	}
	fmt.Println(`
All three tag-free collectors reconstruct the types of every frame slot
without tags: the compiled and interpreted modes pass type_gc_routines
frame to frame in one oldest-to-newest walk; the Appel baseline re-walks
the dynamic chain for every polymorphic frame (quadratic chain steps).`)
}
