// Analyses demo: the compile-time program analyses of §5 at work.
//
// For one program it shows (1) which call sites the GC-possible fixpoint
// proves collection-free — their gc_words vanish; (2) which closure-call
// sites the higher-order 0-CFA refinement additionally elides; (3) the
// per-site live maps the §5.2 liveness analysis produces, including the
// empty no_trace maps the paper highlights for append.
//
//	go run ./examples/analyses
package main

import (
	"fmt"
	"log"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

const program = `
(* pure: arithmetic only — every call to it is collection-free *)
let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* allocating: builds lists *)
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r

(* higher-order: apply reaches only the pure lambda below *)
let apply f x = f x

let round () = sum (upto 20)
let rec churn n acc = if n = 0 then acc else churn (n - 1) (acc + round ())

let main () =
  let g = gcd 1071 462 in
  let pure_hof = apply (fun y -> y * y) g in
  let dead = upto 30 in          (* dead after this sum *)
  let s1 = sum dead in
  let live = upto 10 in          (* live across the next call *)
  let s2 = churn 20 0 + sum live in
  g + pure_hof + s1 + s2
`

func main() {
	fmt.Println("compile-time analyses for tag-free GC (paper §5)")
	fmt.Println("=================================================")

	base, baseAnal, err := pipeline.Build(program, pipeline.Options{Strategy: gc.StratCompiled})
	if err != nil {
		log.Fatal(err)
	}
	_, cfaAnal, err := pipeline.Build(program, pipeline.Options{Strategy: gc.StratCompiled, UseCFA: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nGC-possible analysis (§5.1):\n")
	fmt.Printf("  call/alloc sites          %d\n", baseAnal.Stats.Sites)
	fmt.Printf("  direct call sites         %d\n", baseAnal.Stats.DirectCallSites)
	fmt.Printf("  gc_words elided           %d (calls that can never collect: gcd, sum, ...)\n",
		baseAnal.Stats.ElidedSites)
	fmt.Printf("  closure-call sites        %d\n", cfaAnal.Stats.ClosCallSites)
	fmt.Printf("  elided by 0-CFA           %d (apply's lambda is pure)\n",
		cfaAnal.Stats.ElidedClosSites)

	fmt.Printf("\nliveness analysis (§5.2) — frame maps of main:\n")
	mainIdx := base.FuncByName("main")
	for i, si := range base.Sites {
		if si.Func != mainIdx {
			continue
		}
		fmt.Printf("  gc_word %2d (kind %d): ", i, si.Kind)
		if len(si.Live) == 0 {
			fmt.Println("no_trace — nothing live")
			continue
		}
		for _, e := range si.Live {
			fmt.Printf("slot %d : %s  ", e.Slot, e.Desc)
		}
		fmt.Println()
	}

	res, err := pipeline.Run(program, pipeline.Options{
		Strategy: gc.StratCompiled, HeapWords: 256, UseCFA: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution with the analyses applied: result %d, %d collections, %d slots traced\n",
		res.Value, res.HeapStats.Collections, res.GCStats.SlotsTraced)
	fmt.Println(`
Note how 'dead' never appears in a frame map after its sum, while 'live'
does — the §5.2 precision the paper calls "more accurate recognition of
live data and garbage".`)
}
