(* The paper's §3 scenario: one polymorphic definition, many instantiations,
   collected tag-free through type_gc_routine passing. *)
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec foldl f acc xs = match xs with | [] -> acc | x :: r -> foldl f (f acc x) r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)

let main () =
  let squares = map (fun x -> x * x) (upto 12) in
  let pairs = map (fun x -> (x, x + 1)) (upto 8) in
  let tagged = map (fun x -> (x mod 2 = 0, x)) (upto 6) in
  foldl (fun a b -> a + b) 0 squares
    + foldl (fun a p -> match p with (x, y) -> a + x * y) 0 pairs
    + foldl (fun a p -> match p with (even, v) -> if even then a + v else a) 0 tagged
