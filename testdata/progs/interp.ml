(* A tiny expression interpreter interpreting itself-ish structures:
   variants with differing arities, nested matches. *)
type expr =
  | Num of int
  | Add of expr * expr
  | Mul of expr * expr
  | Let of int * expr * expr
  | Var of int

type env = Nil | Bind of int * int * env

let rec lookup e k =
  match e with
  | Nil -> 0
  | Bind (k2, v, rest) -> if k = k2 then v else lookup rest k

let rec eval env e =
  match e with
  | Num n -> n
  | Add (a, b) -> eval env a + eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Var k -> lookup env k
  | Let (k, v, body) -> eval (Bind (k, eval env v, env)) body

let main () =
  eval Nil (Let (1, Num 6, Mul (Var 1, Add (Var 1, Num 1))))
