(* Closure-heavy: partial application, composition, closures in lists. *)
let add a b = a + b
let compose f g = fun x -> f (g x)
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec pipe fs x = match fs with | [] -> x | f :: r -> pipe r (f x)

let main () =
  let inc = add 1 in
  let twice = compose inc inc in
  let steps = map add (upto 10) in
  pipe steps (twice 0)
