(* The paper's running example (§2.4): append over integer lists.
   Liveness makes every frame map of append empty — the no_trace routine. *)
let rec append xs ys =
  match xs with
  | [] -> ys
  | x :: rest -> x :: append rest ys

let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r

let main () =
  let zs = append (upto 100) (upto 50) in
  print_string "sum = ";
  print_int (sum zs);
  print_newline ();
  sum zs
