(* Binary search tree: insert, member, in-order fold. Exercises the §2.3
   variant-record treatment (Node has three fields, Leaf is unboxed). *)
type tree = Leaf | Node of tree * int * tree

let rec insert t v =
  match t with
  | Leaf -> Node (Leaf, v, Leaf)
  | Node (l, x, r) ->
    if v < x then Node (insert l v, x, r)
    else if v > x then Node (l, x, insert r v)
    else t

let rec fold f acc t =
  match t with
  | Leaf -> acc
  | Node (l, v, r) -> fold f (f (fold f acc l) v) r

let rec build t n seed =
  if n = 0 then t
  else build (insert t (seed mod 97)) (n - 1) ((seed * 75 + 74) mod 65537)

let main () =
  let t = build Leaf 60 4242 in
  fold (fun a v -> a + v) 0 t
