(* A call-by-value interpreter for the untyped lambda calculus with de
   Bruijn indices — a compiler-shaped workload: environments are linked
   heap structures, object-language closures are data, and beta-reduction
   churns the heap. *)
type term =
  | TVar of int
  | TLam of term
  | TApp of term * term

(* value and env are mutually recursive; the checker declares all type
   heads before filling constructors, so forward references work. *)
type value = Clo of term * env
type env = Empty | Ext of value * env

let rec lookup e n =
  match e with
  | Empty -> Clo (TVar 0, Empty)  (* unbound: inert dummy *)
  | Ext (v, rest) -> if n = 0 then v else lookup rest (n - 1)

let rec eval t e =
  match t with
  | TVar n -> lookup e n
  | TLam b -> Clo (b, e)
  | TApp (f, a) ->
    (match eval f e with
     | Clo (body, fenv) -> eval body (Ext (eval a e, fenv)))

(* Church numerals: n = \f.\x. f^n x. *)
let church_zero = TLam (TLam (TVar 0))
let church_succ =
  TLam (TLam (TLam (TApp (TVar 1, TApp (TApp (TVar 2, TVar 1), TVar 0)))))
let church_add =
  TLam (TLam (TLam (TLam (TApp (TApp (TVar 3, TVar 1),
                                TApp (TApp (TVar 2, TVar 1), TVar 0))))))
let church_mul = TLam (TLam (TLam (TApp (TVar 2, TApp (TVar 1, TVar 0)))))

let rec church n = if n = 0 then church_zero else TApp (church_succ, church (n - 1))

(* Decode a numeral by applying it to inc = \a.\d. a and nil = \x. x:
   each application of inc yields Clo (TVar 1, Ext (previous, _)), nesting
   the previous value one level deeper; count unwinds the nesting. *)
let inc = TLam (TLam (TVar 1))
let nil = TLam (TVar 0)

let rec count v =
  match v with
  | Clo (TVar 1, Ext (u, _)) -> 1 + count u
  | _ -> 0

let to_int t = count (eval (TApp (TApp (t, inc), nil)) Empty)

let main () =
  let twelve = TApp (TApp (church_mul, church 3),
                     TApp (TApp (church_add, church 2), church 2)) in
  let seven = TApp (TApp (church_add, church 3), church 4) in
  let rec rounds n acc = if n = 0 then acc else rounds (n - 1) (acc + to_int twelve) in
  to_int seven * 10000 + rounds 25 0
