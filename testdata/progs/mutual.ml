(* Mutual recursion at top level and locally, with ref-cell state. *)
let counter = ref 0
let tick () = counter := !counter + 1

let rec even n = (let _ = tick () in if n = 0 then true else odd (n - 1))
and odd n = if n = 0 then false else even (n - 1)

let main () =
  let e = if even 40 then 1000 else 0 in
  let o = if odd 15 then 100 else 0 in
  e + o + !counter
