package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/workloads"
)

// shardRun executes a task workload at the given shard count (0 = the
// unsharded baseline) and returns the per-task values, joined outputs and
// the final live-heap signature.
func shardRun(t *testing.T, w workloads.TaskWorkload, strat gc.Strategy, ms bool, shards int, assign []int) ([]int64, string, string) {
	t.Helper()
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:     strat,
		HeapWords:    w.HeapWords,
		MarkSweep:    ms,
		VerifyHeap:   true,
		NurseryWords: 256,
		Shards:       shards,
		ShardAssign:  assign,
	})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	for i, e := range w.Expect {
		if res.Values[i] != e {
			t.Fatalf("shards=%d: task %d = %d, want %d", shards, i, res.Values[i], e)
		}
	}
	sig := fmt.Sprint(res.Group.Col.LiveSignature(res.Group.Globals))
	return res.Values, strings.Join(res.Outputs, "\x00"), sig
}

// TestDifferentialShardsTasks pins the sharded heap's equivalence: for
// every task workload, tag-free strategy and discipline, running with the
// nursery partitioned into 2 or 4 shards must produce bit-identical task
// values, outputs and final live-heap signature to the unsharded
// generational run. Shard minors relocate objects on a different schedule
// than global minors, so addresses differ — LiveSignature compares the
// reachable heap shape, which must not.
func TestDifferentialShardsTasks(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, cfg := range diffConfigs() {
			if cfg.Strat == gc.StratTagged {
				continue // sharding (like the nursery) is tag-free only
			}
			name := fmt.Sprintf("%s/%v/ms=%v", w.Name, cfg.Strat, cfg.MS)
			t.Run(name, func(t *testing.T) {
				baseVals, baseOut, baseSig := shardRun(t, w, cfg.Strat, cfg.MS, 0, nil)
				for _, shards := range []int{2, 4} {
					vals, out, sig := shardRun(t, w, cfg.Strat, cfg.MS, shards, nil)
					if fmt.Sprint(vals) != fmt.Sprint(baseVals) || out != baseOut {
						t.Fatalf("shards=%d changed observable behavior", shards)
					}
					if sig != baseSig {
						t.Fatalf("shards=%d: live-heap signature diverges from the unsharded run", shards)
					}
				}
			})
		}
	}
}

// TestShardAssignInterleavingFuzz permutes the task→shard assignment:
// every placement of the same tasks over 3 shards must reach the same
// values, outputs and live-heap signature, even though each permutation
// interleaves shard minors with the other shards' mutation differently.
func TestShardAssignInterleavingFuzz(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	baseVals, baseOut, baseSig := shardRun(t, w, gc.StratCompiled, false, 0, nil)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		assign := make([]int, len(w.Entries))
		for i := range assign {
			assign[i] = rng.Intn(3)
		}
		vals, out, sig := shardRun(t, w, gc.StratCompiled, false, 3, assign)
		if fmt.Sprint(vals) != fmt.Sprint(baseVals) || out != baseOut {
			t.Fatalf("assign=%v changed observable behavior", assign)
		}
		if sig != baseSig {
			t.Fatalf("assign=%v: live-heap signature diverges", assign)
		}
	}
}

// TestShardMinorsRun pins the tentpole's point: at 4 shards over the churn
// workload, single-shard minors actually fire, their telemetry records
// carry the 1-based shard id, and tasks in other shards stay runnable
// through them (nonzero overlap) — the pauses would all have been
// stop-the-world without sharding.
func TestShardMinorsRun(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:     gc.StratCompiled,
		HeapWords:    w.HeapWords,
		VerifyHeap:   true,
		NurseryWords: 256,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardMinors == 0 {
		t.Fatal("no shard minors ran — sharding never collected a shard alone")
	}
	if res.Stats.ShardMinorOverlapTasks == 0 {
		t.Fatal("shard minors ran but no other-shard task was ever runnable through one")
	}
	var shardRecs int
	for _, rec := range res.Telemetry.Records {
		if rec.Shard > 0 {
			if rec.Kind != "minor" {
				t.Fatalf("shard-tagged record has kind %q, want minor", rec.Kind)
			}
			if rec.Shard > 4 {
				t.Fatalf("record shard %d out of range for 4 shards", rec.Shard)
			}
			shardRecs++
		}
	}
	if int64(shardRecs) != res.Stats.ShardMinors {
		t.Fatalf("telemetry shows %d shard-tagged records, stats counted %d shard minors",
			shardRecs, res.Stats.ShardMinors)
	}
}

// TestShardRecordsAbsentUnsharded pins JSON stability: unsharded runs must
// not grow a shard field (it is 1-based and omitempty precisely so the
// existing telemetry streams are byte-identical).
func TestShardRecordsAbsentUnsharded(t *testing.T) {
	w := workloads.Tasking[0]
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:     gc.StratCompiled,
		HeapWords:    w.HeapWords,
		NurseryWords: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Telemetry.Records {
		if rec.Shard != 0 {
			t.Fatalf("unsharded run produced a shard-tagged record: %+v", rec)
		}
	}
	if res.Stats.ShardMinors != 0 || res.Stats.ShardMinorOverlapTasks != 0 {
		t.Fatalf("unsharded run counted shard minors: %+v", res.Stats)
	}
}

// TestShardGating pins the -shards validation at the pipeline layer: the
// tagged baseline, nursery-less runs, concurrent marking and the
// single-task VM path must all reject shard counts above 1.
func TestShardGating(t *testing.T) {
	tw := workloads.Tasking[0]
	if _, err := RunTasks(tw.Source, tw.Entries, Options{
		Strategy: gc.StratTagged, HeapWords: tw.HeapWords, Shards: 2,
	}); err == nil {
		t.Fatal("tagged + shards must be rejected")
	}
	if _, err := RunTasks(tw.Source, tw.Entries, Options{
		Strategy: gc.StratCompiled, HeapWords: tw.HeapWords, Shards: 2,
	}); err == nil {
		t.Fatal("shards without a nursery must be rejected")
	}
	if _, err := RunTasks(tw.Source, tw.Entries, Options{
		Strategy: gc.StratCompiled, HeapWords: tw.HeapWords, MarkSweep: true,
		GCConcurrent: true, NurseryWords: 256, Shards: 2,
	}); err == nil {
		t.Fatal("shards + concurrent marking must be rejected")
	}
	sw, _ := workloads.ByName("listchurn")
	if _, err := Run(sw.Source, Options{
		Strategy: gc.StratCompiled, HeapWords: sw.HeapWords,
		NurseryWords: 256, Shards: 2,
	}); err == nil {
		t.Fatal("single-task VM + shards must be rejected")
	}
}

// TestShardOOMLadderInjected drives the recovery ladder under sharding
// with injected allocation failures (satellite: the PR 7/8 seams). An
// injected failure must take the global emergency path — never a shard
// minor, whose smaller scope could mask the injection — and the run must
// still complete with correct results at every shard count.
func TestShardOOMLadderInjected(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	for _, shards := range []int{0, 4} {
		for _, refills := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/refills=%v", shards, refills), func(t *testing.T) {
				opts := Options{
					Strategy:        gc.StratCompiled,
					HeapWords:       w.HeapWords,
					VerifyHeap:      true,
					NurseryWords:    256,
					Shards:          shards,
					TLABWords:       64,
					FailAllocEvery:  50,
					FailRefillsOnly: refills,
					GrowFactor:      1.5,
					MaxHeapWords:    w.HeapWords * 8,
				}
				res, err := RunTasks(w.Source, w.Entries, opts)
				if err != nil {
					t.Fatal(err)
				}
				for i, e := range w.Expect {
					if res.Values[i] != e {
						t.Fatalf("task %d = %d, want %d (fault: %v)", i, res.Values[i], e, res.Faults[i])
					}
				}
				if res.Telemetry.Resilience.InjectedOOMs == 0 {
					t.Fatal("no failures were injected — the plan never fired")
				}
			})
		}
	}
}

// TestShardOOMLadderExhaustion pins the escalation path: a sharded heap
// too small for the workload without growth must climb from shard minors
// through the global ladder and fault tasks in isolation — never
// deadlock, never corrupt siblings' results.
func TestShardOOMLadderExhaustion(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:     gc.StratCompiled,
		HeapWords:    w.HeapWords / 8,
		VerifyHeap:   true,
		NurseryWords: 128,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	faulted := 0
	for i := range res.Values {
		if res.Faults[i] != nil {
			faulted++
			continue
		}
		if res.Values[i] != w.Expect[i] {
			t.Fatalf("surviving task %d = %d, want %d", i, res.Values[i], w.Expect[i])
		}
	}
	rs := res.Telemetry.Resilience
	if faulted > 0 && rs.LadderExhausted == 0 {
		t.Fatalf("%d tasks faulted but the ladder counted no exhaustion", faulted)
	}
}
