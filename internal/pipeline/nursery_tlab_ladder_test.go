package pipeline

import (
	"fmt"
	"testing"

	"tagfree/internal/gc"
)

// TestNurseryTLABLadder drives the generational nursery and per-task
// allocation buffers together through the recovery ladder under fault
// injection — the combination tfserve's overload scenarios lean on. Three
// variants per discipline:
//
//   - fail-alloc: injected failures on the shared-heap slow path at a
//     comfortable heap size; emergency collections alone must rescue.
//   - fail-refills: injected failures confined to TLAB refill carves
//     (the -fail-refills gate), same recovery requirement.
//   - tenure-then-grow: a greedy task whose retained structure exceeds
//     the base heap, so the ladder must climb past the minor and full
//     rungs through tenure-all into heap growth — with injection live.
//
// Every variant must complete with zero faults, the greedy task's full
// result, and the modest siblings bit-identical to an injection-free
// nursery+TLAB run: the ladder may move every collection point without
// perturbing unrelated tasks.
func TestNurseryTLABLadder(t *testing.T) {
	nursery := func(o *Options) {
		o.NurseryWords = 256
		o.TLABWords = 64
		o.VerifyHeap = true
	}

	type baseline struct {
		values  []int64
		outputs []string
	}
	baselines := map[string]baseline{}
	for _, d := range ladderDisciplines {
		opts := Options{
			Strategy:  gc.StratCompiled,
			HeapWords: 1 << 15,
			MarkSweep: d.ms,
		}
		nursery(&opts)
		res, err := RunTasks(ladderSrc, []string{"mod_a", "mod_b"}, opts)
		if err != nil {
			t.Fatalf("baseline %s: %v", d.name, err)
		}
		baselines[d.name] = baseline{res.Values, res.Outputs}
	}

	variants := []struct {
		name string
		opts func(o *Options)
		// wantGrow requires the ladder to climb through tenure-all into
		// the growth rung; the others must recover without growing.
		wantGrow bool
	}{
		{
			name: "fail-alloc",
			opts: func(o *Options) {
				o.HeapWords = 1 << 15
				o.FailAllocEvery = 50
			},
		},
		{
			name: "fail-refills",
			opts: func(o *Options) {
				o.HeapWords = 1 << 15
				o.FailAllocEvery = 3
				o.FailRefillsOnly = true
			},
		},
		{
			name: "tenure-then-grow",
			opts: func(o *Options) {
				o.HeapWords = 1024
				o.GrowFactor = 2
				o.MaxHeapWords = 1 << 17
				o.FailAllocEvery = 50
			},
			wantGrow: true,
		},
	}

	for _, d := range ladderDisciplines {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%s/%s", d.name, v.name), func(t *testing.T) {
				opts := Options{
					Strategy:  gc.StratCompiled,
					MarkSweep: d.ms,
				}
				nursery(&opts)
				v.opts(&opts)
				res, err := RunTasks(ladderSrc, []string{"greedy", "mod_a", "mod_b"}, opts)
				if err != nil {
					t.Fatal(err)
				}
				for i, f := range res.Faults {
					if f != nil {
						t.Fatalf("task %d faulted: %v", i, f)
					}
				}
				if res.Values[0] != 4000 {
					t.Fatalf("greedy result %d, want 4000", res.Values[0])
				}
				base := baselines[d.name]
				for i := 0; i < 2; i++ {
					if res.Values[1+i] != base.values[i] {
						t.Fatalf("modest task %d = %d, injection-free %d",
							i, res.Values[1+i], base.values[i])
					}
					if res.Outputs[1+i] != base.outputs[i] {
						t.Fatalf("modest task %d output diverges from injection-free run", i)
					}
				}
				rs := res.Telemetry.Resilience
				if rs.InjectedOOMs == 0 {
					t.Fatalf("no injected pressure recorded: %+v", rs)
				}
				if rs.LadderRecovered == 0 || rs.LadderExhausted != 0 {
					t.Fatalf("ladder did not recover cleanly: %+v", rs)
				}
				if v.wantGrow && rs.HeapGrowths == 0 {
					t.Fatalf("ladder never reached the growth rung: %+v", rs)
				}
				if !v.wantGrow && rs.HeapGrowths != 0 {
					t.Fatalf("comfortable heap should not grow: %+v", rs)
				}
			})
		}
	}
}
