package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/tasking"
	"tagfree/internal/workloads"
)

// TLAB differential suite. Per-task allocation buffers change *where*
// objects land but must never change *what* the program computes or what
// survives collection. Every configuration runs with the heap verifier on
// (which also checks that no TLAB survives into a collection), and each
// tlab-on run is compared against its tlab-off twin three ways:
//
//   - observable behavior: per-task values, outputs and faults;
//   - live structure: gc.LiveSignature, a canonical address-free
//     serialization of everything reachable from the globals — equal iff
//     the two heaps hold the same values with the same sharing, whatever
//     the tiling history did to addresses (the only comparison that can
//     work for mark/sweep, whose layouts are history-dependent);
//   - live layout (copying only): after a final tenure-all full
//     collection the active semispace is a trace-order-deterministic
//     image, so the snapshots must be bit-identical.

// tlabOutcome is one configuration's observable behavior plus its
// canonical live-heap forms.
type tlabOutcome struct {
	res       *TaskResult
	signature []code.Word
	snapshot  []code.Word // copying discipline only
}

// tlabTaskRun executes one tasking configuration, checks the expected
// per-task results, and canonicalizes the final live heap.
func tlabTaskRun(t *testing.T, w workloads.TaskWorkload, opts Options) tlabOutcome {
	t.Helper()
	opts.VerifyHeap = true
	res, err := RunTasks(w.Source, w.Entries, opts)
	if err != nil {
		t.Fatalf("tlab=%d: %v", opts.TLABWords, err)
	}
	for i, e := range w.Expect {
		if res.Values[i] != e {
			t.Fatalf("tlab=%d: task %d = %d, want %d", opts.TLABWords, i, res.Values[i], e)
		}
	}
	g := res.Group
	if n := g.Heap.LiveTLABs(); n != 0 {
		t.Fatalf("tlab=%d: %d TLABs still live after the run", opts.TLABWords, n)
	}
	sig := g.Col.LiveSignature(g.Globals)
	// Tasks have returned, so globals are the only roots; a tenure-all full
	// collection leaves a layout determined by the trace alone.
	g.Col.Parallelism = 1
	if opts.NurseryWords > 0 {
		g.Heap.SetTenureAll(true)
	}
	g.Col.CollectFull(nil, g.Globals)
	if opts.NurseryWords > 0 {
		g.Heap.SetTenureAll(false)
	}
	var snap []code.Word
	if !opts.MarkSweep {
		snap = g.Heap.ActiveSnapshot()
	}
	return tlabOutcome{res: res, signature: sig, snapshot: snap}
}

func joinOutputs(res *TaskResult) string { return strings.Join(res.Outputs, "\x00") }

// TestDifferentialTLABTasks pins tlab-on ≡ tlab-off over the whole
// multi-task corpus, across both disciplines and three runtime shapes
// (sequential, parallel collection, generational nursery).
func TestDifferentialTLABTasks(t *testing.T) {
	shapes := []struct {
		name    string
		par     int
		nursery int
	}{
		{"seq", 1, 0},
		{"par4", 4, 0},
		{"nursery", 1, 256},
	}
	for _, w := range workloads.Tasking {
		for _, ms := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/ms=%v", w.Name, ms), func(t *testing.T) {
				var sigs [][]code.Word
				for _, sh := range shapes {
					opts := Options{
						Strategy:     gc.StratCompiled,
						HeapWords:    w.HeapWords,
						MarkSweep:    ms,
						Parallelism:  sh.par,
						NurseryWords: sh.nursery,
					}
					off := tlabTaskRun(t, w, opts)
					opts.TLABWords = 64
					on := tlabTaskRun(t, w, opts)

					if fmt.Sprint(on.res.Values) != fmt.Sprint(off.res.Values) ||
						joinOutputs(on.res) != joinOutputs(off.res) {
						t.Fatalf("%s: TLABs changed observable behavior", sh.name)
					}
					if fmt.Sprint(on.signature) != fmt.Sprint(off.signature) {
						t.Fatalf("%s: live-heap signatures diverge (tlab on %d words, off %d words)",
							sh.name, len(on.signature), len(off.signature))
					}
					if !ms && fmt.Sprint(on.snapshot) != fmt.Sprint(off.snapshot) {
						t.Fatalf("%s: post-collection snapshots diverge: %d vs %d words",
							sh.name, len(on.snapshot), len(off.snapshot))
					}
					// The comparison only means something if the buffers ran.
					hs := on.res.Heap
					if hs.TLABAllocs == 0 || hs.TLABRefills == 0 {
						t.Fatalf("%s: TLAB machinery never engaged: %d fast allocs, %d refills",
							sh.name, hs.TLABAllocs, hs.TLABRefills)
					}
					if hs.TLABRefillWords != hs.TLABAllocWords+hs.TLABWasteWords+hs.TLABReturnedWords {
						t.Fatalf("%s: accounting: refill %d != alloc %d + waste %d + returned %d", sh.name,
							hs.TLABRefillWords, hs.TLABAllocWords, hs.TLABWasteWords, hs.TLABReturnedWords)
					}
					sigs = append(sigs, off.signature)
				}
				// The signature is address-free, so every shape of the same
				// program must converge on the same one.
				for i := 1; i < len(sigs); i++ {
					if fmt.Sprint(sigs[i]) != fmt.Sprint(sigs[0]) {
						t.Fatalf("shape %d's live signature diverges from shape 0's", i)
					}
				}
			})
		}
	}
}

// TestDifferentialTLABStrategies sweeps the strategies (including tagged,
// whose signature walks headers instead of types) on one churn workload.
func TestDifferentialTLABStrategies(t *testing.T) {
	w, _ := workloads.TaskByName("taskchurn")
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			opts := Options{Strategy: strat, HeapWords: w.HeapWords}
			off := tlabTaskRun(t, w, opts)
			opts.TLABWords = 64
			on := tlabTaskRun(t, w, opts)
			if fmt.Sprint(on.res.Values) != fmt.Sprint(off.res.Values) {
				t.Fatal("TLABs changed task results")
			}
			if fmt.Sprint(on.signature) != fmt.Sprint(off.signature) {
				t.Fatal("live-heap signatures diverge")
			}
			if fmt.Sprint(on.snapshot) != fmt.Sprint(off.snapshot) {
				t.Fatal("post-collection snapshots diverge")
			}
		})
	}
}

// TestTLABSharedAcquisitionAmortized pins the point of the whole exercise:
// with buffers on, shared-heap acquisitions (slow-path allocations plus
// refill carves, counted by Stats.SharedAllocs) are amortized O(1/chunk)
// per allocation instead of one per allocation.
func TestTLABSharedAcquisitionAmortized(t *testing.T) {
	w, _ := workloads.TaskByName("taskchurn")
	off, err := RunTasks(w.Source, w.Entries, Options{
		Strategy: gc.StratCompiled, HeapWords: w.HeapWords})
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunTasks(w.Source, w.Entries, Options{
		Strategy: gc.StratCompiled, HeapWords: w.HeapWords, TLABWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Without buffers every allocation is a shared acquisition (failed
	// attempts that suspended for collection acquire it too, so ≥).
	if off.Heap.SharedAllocs < off.Heap.Allocations {
		t.Fatalf("baseline: %d shared acquisitions for %d allocations",
			off.Heap.SharedAllocs, off.Heap.Allocations)
	}
	// With buffers the ratio must collapse; 4x is far looser than the
	// chunk-size amortization actually delivers, so it cannot flake.
	if on.Heap.SharedAllocs*4 >= on.Heap.Allocations {
		t.Fatalf("TLABs did not amortize: %d shared acquisitions for %d allocations",
			on.Heap.SharedAllocs, on.Heap.Allocations)
	}
	var perTask int64
	for _, ts := range on.TLABs {
		perTask += ts.FastAllocs + ts.SlowAllocs
	}
	if perTask != on.Heap.Allocations {
		t.Fatalf("per-task accounting: %d fast+slow across tasks, heap saw %d allocations",
			perTask, on.Heap.Allocations)
	}
}

// TestTLABTaskInterleavingFuzz randomizes the scheduling surface — quantum,
// suspension policy, discipline, nursery, chunk size — and checks that
// every interleaving computes the reference results with exact buffer
// accounting. The heap verifier runs throughout, so a buffer surviving
// into a collection or tiling corruption fails loudly.
func TestTLABTaskInterleavingFuzz(t *testing.T) {
	w, _ := workloads.TaskByName("taskchurn")
	buildOpts := Options{Strategy: gc.StratCompiled}
	buildOpts.DisableGCWordElision = true
	prog, _, err := Build(w.Source, buildOpts)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]int, len(w.Entries))
	for i, name := range w.Entries {
		if entries[i] = prog.FuncByName(name); entries[i] < 0 {
			t.Fatalf("entry %s not found", name)
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ms := rng.Intn(2) == 0
		nursery := rng.Intn(2) == 0
		chunk := []int{16, 32, 64, 96}[rng.Intn(4)]
		quantum := 1 + rng.Intn(23)
		name := fmt.Sprintf("seed=%d/ms=%v/nursery=%v/chunk=%d/q=%d", seed, ms, nursery, chunk, quantum)
		t.Run(name, func(t *testing.T) {
			var h *heap.Heap
			if ms {
				h = heap.NewMarkSweep(prog.Repr, 2*w.HeapWords)
			} else {
				h = heap.New(prog.Repr, w.HeapWords)
			}
			if nursery {
				h.EnableNursery(256, 2)
			}
			g, err := tasking.NewGroupWith(prog, h, gc.StratCompiled, entries)
			if err != nil {
				t.Fatal(err)
			}
			g.TLABWords = chunk
			g.Quantum = quantum
			if rng.Intn(2) == 0 {
				g.Policy = tasking.SuspendAtAllocs
			}
			g.Col.Verify = true
			h.SetVerify(true)
			if err := g.RunInit(); err != nil {
				t.Fatal(err)
			}
			if err := g.Run(); err != nil {
				t.Fatal(err)
			}
			for i, e := range w.Expect {
				if got := code.DecodeInt(prog.Repr, g.Tasks[i].Result); got != e {
					t.Fatalf("task %d = %d, want %d", i, got, e)
				}
			}
			if g.Heap.LiveTLABs() != 0 {
				t.Fatalf("%d TLABs live after the run", g.Heap.LiveTLABs())
			}
			hs := g.Heap.Stats
			if hs.TLABRefillWords != hs.TLABAllocWords+hs.TLABWasteWords+hs.TLABReturnedWords {
				t.Fatalf("accounting: refill %d != alloc %d + waste %d + returned %d",
					hs.TLABRefillWords, hs.TLABAllocWords, hs.TLABWasteWords, hs.TLABReturnedWords)
			}
			var perTask tasking.TLABStats
			for _, task := range g.Tasks {
				perTask.Refills += task.TLAB.Refills
				perTask.RefillWords += task.TLAB.RefillWords
				perTask.WasteWords += task.TLAB.WasteWords
				perTask.ReturnedWords += task.TLAB.ReturnedWords
			}
			// Init-task refills are heap-side only, so per-task sums bound the
			// heap counters from below and waste decomposes exactly.
			if perTask.Refills > hs.TLABRefills || perTask.RefillWords > hs.TLABRefillWords {
				t.Fatalf("per-task refills %+v exceed heap stats %d/%d",
					perTask, hs.TLABRefills, hs.TLABRefillWords)
			}
			if perTask.WasteWords+perTask.ReturnedWords > hs.TLABWasteWords+hs.TLABReturnedWords {
				t.Fatalf("per-task waste %+v exceeds heap stats %d/%d",
					perTask, hs.TLABWasteWords, hs.TLABReturnedWords)
			}
		})
	}
}

// hogSrc grows a live list until the heap cannot hold it: the OOM-ladder
// antagonist. The sibling task must complete untouched (fault isolation).
const hogSrc = `
let rec build n acc = if n = 0 then acc else build (n - 1) (n :: acc)
let rec len xs = match xs with | [] -> 0 | _ :: r -> len r + 1
let hog () = len (build 2000 [])
let ok () = 7
`

// TestTLABOOMLadderFault drives a TLAB-allocating task through the whole
// recovery ladder to the fault rung and checks the structured fault: OOM
// kind, the pending allocation's field count, and a usable backtrace.
func TestTLABOOMLadderFault(t *testing.T) {
	// Nursery variants are excluded: a live set that outgrows the old
	// region overflows the evacuation itself before the ladder can fault,
	// with or without TLABs — a pre-existing capacity limitation of the
	// generational heap, orthogonal to allocation buffering. Nursery OOM
	// recovery under TLABs is covered by TestTLABRescueLadderStaysMinor.
	for _, ms := range []bool{false, true} {
		t.Run(fmt.Sprintf("ms=%v", ms), func(t *testing.T) {
			res, err := RunTasks(hogSrc, []string{"hog", "ok"}, Options{
				Strategy:   gc.StratCompiled,
				HeapWords:  512,
				MarkSweep:  ms,
				TLABWords:  32,
				VerifyHeap: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			f := res.Faults[0]
			if f == nil {
				t.Fatal("hog task did not fault")
			}
			if f.Kind != tasking.FaultOOM {
				t.Fatalf("fault kind = %v, want FaultOOM", f.Kind)
			}
			if f.AllocSize != 2 {
				t.Fatalf("fault AllocSize = %d, want the 2-field cons", f.AllocSize)
			}
			if len(f.Frames) == 0 || !strings.Contains(f.Error(), "build") {
				t.Fatalf("fault backtrace unusable: %v", f)
			}
			if res.Faults[1] != nil || res.Values[1] != 7 {
				t.Fatalf("sibling not isolated: fault=%v value=%d", res.Faults[1], res.Values[1])
			}
		})
	}
}

// TestTLABRefillFaultInjection targets injection at the refill path:
// -fail-refills makes FailAllocEvery count carve attempts only, every
// injected failure walks the recovery ladder, and the run still completes
// with the reference results.
func TestTLABRefillFaultInjection(t *testing.T) {
	w, _ := workloads.TaskByName("taskchurn")
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:        gc.StratCompiled,
		HeapWords:       w.HeapWords,
		TLABWords:       64,
		FailAllocEvery:  2,
		FailRefillsOnly: true,
		VerifyHeap:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range w.Expect {
		if res.Values[i] != e {
			t.Fatalf("task %d = %d, want %d", i, res.Values[i], e)
		}
	}
	injected := res.Telemetry.Resilience.InjectedOOMs
	if injected == 0 {
		t.Fatal("no refill failures injected")
	}
	// The plan must have been consulted only at refill attempts: with ~64
	// words per carve the consult count is a small fraction of the
	// allocation count, nowhere near one per allocation.
	consults := res.Group.Col.Faults.Allocs()
	if consults == 0 || consults*4 >= res.Heap.Allocations {
		t.Fatalf("RefillOnly consulted the plan %d times for %d allocations",
			consults, res.Heap.Allocations)
	}
}

// TestTLABRefillOnlyWithoutTLABs pins the gate: a refill-only plan on a
// TLAB-less run never fires, even at FailAllocEvery=1.
func TestTLABRefillOnlyWithoutTLABs(t *testing.T) {
	w, _ := workloads.TaskByName("taskchurn")
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:        gc.StratCompiled,
		HeapWords:       w.HeapWords,
		FailAllocEvery:  1,
		FailRefillsOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry.Resilience.InjectedOOMs != 0 {
		t.Fatalf("refill-only plan injected %d failures with TLABs off",
			res.Telemetry.Resilience.InjectedOOMs)
	}
	for i, e := range w.Expect {
		if res.Values[i] != e {
			t.Fatalf("task %d = %d, want %d", i, res.Values[i], e)
		}
	}
}

// TestTLABRescueLadderStaysMinor is the regression test for the rescue
// check: a nursery-exhaustion suspend on a TLAB heap must be judged
// against the TLAB retry path (NeedTLAB), which a minor collection
// satisfies. A rescue that judged the retry against the shared heap alone
// would climb to majors, tenure-alls or growth for garbage the nursery
// recycles for free.
func TestTLABRescueLadderStaysMinor(t *testing.T) {
	w, _ := workloads.TaskByName("taskchurn")
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:     gc.StratCompiled,
		HeapWords:    1 << 15,
		NurseryWords: 256,
		TLABWords:    64,
		VerifyHeap:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range w.Expect {
		if res.Values[i] != e {
			t.Fatalf("task %d = %d, want %d", i, res.Values[i], e)
		}
	}
	minors := 0
	for _, rec := range res.Telemetry.Records {
		if rec.Kind != "minor" {
			t.Fatalf("collection %d escalated to %q; the TLAB-aware rescue should stop at minors",
				rec.Seq, rec.Kind)
		}
		minors++
	}
	if minors == 0 {
		t.Fatal("workload never triggered a collection")
	}
	if g := res.Telemetry.Resilience.HeapGrowths; g != 0 {
		t.Fatalf("rescue grew the heap %d times for nursery-recyclable garbage", g)
	}
}

// TestTLABTortureCompletes crosses the heaviest fault schedule with TLABs:
// torture suspends every allocation for a collection, so every single
// allocation retires and re-carves its buffer. Both disciplines must
// survive with reference results under the verifier.
func TestTLABTortureCompletes(t *testing.T) {
	w, _ := workloads.TaskByName("taskdeep")
	for _, ms := range []bool{false, true} {
		res, err := RunTasks(w.Source, w.Entries, Options{
			Strategy:   gc.StratCompiled,
			HeapWords:  w.HeapWords,
			MarkSweep:  ms,
			TLABWords:  32,
			Torture:    true,
			VerifyHeap: true,
		})
		if err != nil {
			t.Fatalf("ms=%v: %v", ms, err)
		}
		for i, e := range w.Expect {
			if res.Values[i] != e {
				t.Fatalf("ms=%v: task %d = %d, want %d", ms, i, res.Values[i], e)
			}
		}
		if res.Telemetry.Resilience.TortureCollections == 0 {
			t.Fatalf("ms=%v: torture never collected", ms)
		}
	}
}

// TestTLABDisabledLeavesTelemetryClean pins the -tlab 0 escape hatch: no
// TLAB blocks in the records, no TLAB columns in the table, zero TLAB
// heap counters — the exact pre-TLAB surface the goldens rely on.
func TestTLABDisabledLeavesTelemetryClean(t *testing.T) {
	w, _ := workloads.TaskByName("taskchurn")
	res, err := RunTasks(w.Source, w.Entries, Options{
		Strategy:  gc.StratCompiled,
		HeapWords: w.HeapWords,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Telemetry.Records {
		if rec.TLAB != nil {
			t.Fatalf("TLABs off: record %d carries a TLAB block", rec.Seq)
		}
	}
	hs := res.Heap
	if hs.TLABAllocs+hs.TLABRefills+hs.TLABWasteWords+hs.TLABReturnedWords != 0 {
		t.Fatalf("TLABs off: heap recorded TLAB activity: %+v", hs)
	}
	// Without buffers every allocation acquires the shared heap directly
	// (failed attempts that suspended for collection acquire it too).
	if hs.SharedAllocs < hs.Allocations {
		t.Fatalf("TLABs off: %d shared acquisitions, %d allocations", hs.SharedAllocs, hs.Allocations)
	}
	if table := TelemetryTable(res.Telemetry, TelemetryOptions{OmitTiming: true}); strings.Contains(table, "tlab") {
		t.Fatalf("TLABs off: table grew TLAB output:\n%s", table)
	}
}
