package pipeline

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"tagfree/internal/gc"
	"tagfree/internal/workloads"
)

// Memory-pressure resilience tests: drive both heap disciplines to
// exhaustion at every rung of the recovery ladder (collect rescues, growth
// rescues, fault isolates) under sequential and parallel collection, and
// require the surviving tasks' results and outputs to be bit-identical to
// a run that never saw the pressure. The post-collection heap verifier is
// on throughout: any rung that corrupts the heap panics the test.

// ladderSrc has one greedy task that retains a structure far larger than
// the base heap, and two modest churn tasks whose results must not depend
// on what happens to the greedy sibling.
const ladderSrc = `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec len xs = match xs with | [] -> 0 | _ :: r -> len r + 1
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let greedy () = len (upto 4000)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + sum (upto 15))
let mod_a () = work 25 0
let mod_b () = work 25 500
`

// ladderDisciplines mirrors diffConfigs' discipline split for the compiled
// strategy: the ladder is strategy-independent, so one strategy per
// discipline keeps the table focused on the heap behavior under test.
var ladderDisciplines = []struct {
	name string
	ms   bool
}{
	{"copying", false},
	{"marksweep", true},
}

func TestRecoveryLadderRungs(t *testing.T) {
	// Uncontended baseline: the modest tasks without the greedy sibling,
	// per discipline. Heap pressure from the greedy task must never leak
	// into these results.
	type baseline struct {
		values  []int64
		outputs []string
	}
	baselines := map[string]baseline{}
	for _, d := range ladderDisciplines {
		res, err := RunTasks(ladderSrc, []string{"mod_a", "mod_b"}, Options{
			Strategy:   gc.StratCompiled,
			HeapWords:  1024,
			MarkSweep:  d.ms,
			VerifyHeap: true,
		})
		if err != nil {
			t.Fatalf("baseline %s: %v", d.name, err)
		}
		baselines[d.name] = baseline{res.Values, res.Outputs}
	}

	rungs := []struct {
		name string
		opts func(o *Options)
		// wantFault is whether the greedy task must fault; when false it
		// must complete with the full list length.
		wantFault bool
		check     func(t *testing.T, res *TaskResult)
	}{
		{
			// Injected failures at a comfortable heap size: the emergency
			// collection alone rescues every allocation.
			name: "collect-rescues",
			opts: func(o *Options) {
				o.HeapWords = 1 << 15
				o.FailAllocEvery = 50
			},
			wantFault: false,
			check: func(t *testing.T, res *TaskResult) {
				rs := res.Telemetry.Resilience
				if rs.InjectedOOMs == 0 || rs.EmergencyCollections == 0 {
					t.Fatalf("no injected pressure recorded: %+v", rs)
				}
				if rs.HeapGrowths != 0 {
					t.Fatalf("collect rung should not grow the heap: %+v", rs)
				}
			},
		},
		{
			// Genuine exhaustion with the growth rung enabled: the heap
			// doubles until the greedy structure fits.
			name: "grow-rescues",
			opts: func(o *Options) {
				o.GrowFactor = 2
				o.MaxHeapWords = 1 << 17
			},
			wantFault: false,
			check: func(t *testing.T, res *TaskResult) {
				rs := res.Telemetry.Resilience
				if rs.HeapGrowths == 0 {
					t.Fatalf("growth rung never fired: %+v", rs)
				}
				if rs.TaskFaults != 0 {
					t.Fatalf("growth should have rescued the task: %+v", rs)
				}
			},
		},
		{
			// Exhaustion with no growth rung: the greedy task faults alone.
			name:      "fault-isolated",
			opts:      func(o *Options) {},
			wantFault: true,
			check: func(t *testing.T, res *TaskResult) {
				rs := res.Telemetry.Resilience
				if rs.TaskFaults != 1 {
					t.Fatalf("want exactly one task fault: %+v", rs)
				}
			},
		},
		{
			// Growth rung present but its ceiling is below what the greedy
			// structure needs: the ladder is climbed and still exhausted.
			name: "ceiling-fault",
			opts: func(o *Options) {
				o.GrowFactor = 2
				o.MaxHeapWords = 2048
			},
			wantFault: true,
			check: func(t *testing.T, res *TaskResult) {
				rs := res.Telemetry.Resilience
				if rs.HeapGrowths == 0 || rs.TaskFaults != 1 {
					t.Fatalf("want growth then fault: %+v", rs)
				}
			},
		},
	}

	for _, d := range ladderDisciplines {
		for _, rung := range rungs {
			for _, par := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%s/par=%d", d.name, rung.name, par), func(t *testing.T) {
					opts := Options{
						Strategy:    gc.StratCompiled,
						HeapWords:   1024,
						MarkSweep:   d.ms,
						Parallelism: par,
						VerifyHeap:  true,
					}
					rung.opts(&opts)
					res, err := RunTasks(ladderSrc, []string{"greedy", "mod_a", "mod_b"}, opts)
					if err != nil {
						t.Fatal(err)
					}
					if rung.wantFault {
						f := res.Faults[0]
						if f == nil {
							t.Fatalf("greedy task did not fault; values %v", res.Values)
						}
						if !strings.Contains(f.Error(), "heap exhausted") {
							t.Fatalf("fault does not carry the OOM cause: %v", f)
						}
						if len(f.Frames) == 0 {
							t.Fatalf("fault lacks a backtrace: %v", f)
						}
					} else if res.Faults[0] != nil {
						t.Fatalf("greedy task faulted: %v", res.Faults[0])
					} else if res.Values[0] != 4000 {
						t.Fatalf("greedy result %d, want 4000", res.Values[0])
					}
					// The surviving modest tasks must match the uncontended
					// baseline bit for bit.
					base := baselines[d.name]
					for i := 0; i < 2; i++ {
						if res.Faults[1+i] != nil {
							t.Fatalf("modest task %d faulted: %v", i, res.Faults[1+i])
						}
						if res.Values[1+i] != base.values[i] {
							t.Fatalf("modest task %d = %d, uncontended %d",
								i, res.Values[1+i], base.values[i])
						}
						if res.Outputs[1+i] != base.outputs[i] {
							t.Fatalf("modest task %d output diverges from uncontended run", i)
						}
					}
					rung.check(t, res)
				})
			}
		}
	}
}

// tortureTaskSrc is a scaled-down churn/tree/poly mix: enough allocation
// variety to exercise every allocating opcode as a collection point, small
// enough that collecting before every allocation stays cheap.
const tortureTaskSrc = `
type tree = Leaf | Node of tree * int * tree
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec build n = if n = 0 then Leaf else Node (build (n - 1), n, build (n - 1))
let rec tsum t = match t with | Leaf -> 0 | Node (l, v, r) -> tsum l + v + tsum r
let churn () = sum (map (fun v -> v * 2) (upto 12)) + sum (upto 9)
let trees () = tsum (build 4) + tsum (build 3)
let boxes () = (let r = ref 5 in (r := !r + sum (upto 6); !r))
`

// TestTortureDifferentialTasking runs a compact multi-task workload with a
// collection before every allocation and the heap verifier on, across
// every legal strategy × discipline × parallelism. Results must match a
// torture-free run — torture moves every collection point, so this
// exercises safe-point bookkeeping at every allocation site. The full
// corpus variant is TestTortureCorpusFull (tier2-torture).
func TestTortureDifferentialTasking(t *testing.T) {
	entries := []string{"churn", "trees", "boxes"}
	ref, err := RunTasks(tortureTaskSrc, entries, Options{
		Strategy: gc.StratCompiled, HeapWords: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range diffConfigs() {
		t.Run(fmt.Sprintf("%v/ms=%v", cfg.Strat, cfg.MS), func(t *testing.T) {
			for _, par := range []int{1, 4} {
				res, err := RunTasks(tortureTaskSrc, entries, Options{
					Strategy:    cfg.Strat,
					HeapWords:   1024,
					MarkSweep:   cfg.MS,
					Parallelism: par,
					VerifyHeap:  true,
					Torture:     true,
				})
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				for i, e := range ref.Values {
					if res.Values[i] != e {
						t.Fatalf("par=%d: task %d = %d, want %d", par, i, res.Values[i], e)
					}
				}
				if res.Telemetry.Resilience.TortureCollections == 0 {
					t.Fatalf("par=%d: torture mode never collected", par)
				}
			}
		})
	}
}

// TestTortureDifferentialSingle tortures one compact single-program
// workload under every strategy with the verifier on.
func TestTortureDifferentialSingle(t *testing.T) {
	const src = tortureTaskSrc + `
let main () = churn () + trees () + boxes ()
`
	ref, err := Run(src, Options{Strategy: gc.StratCompiled, HeapWords: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range diffConfigs() {
		t.Run(fmt.Sprintf("%v/ms=%v", cfg.Strat, cfg.MS), func(t *testing.T) {
			res, err := Run(src, Options{
				Strategy:   cfg.Strat,
				HeapWords:  1024,
				MarkSweep:  cfg.MS,
				VerifyHeap: true,
				Torture:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != ref.Value {
				t.Fatalf("result %d, want %d", res.Value, ref.Value)
			}
			if res.Telemetry.Resilience.TortureCollections == 0 {
				t.Fatal("torture mode never collected")
			}
		})
	}
}

// TestTortureCorpusFull is the heavyweight stress pass: the entire task
// corpus under torture with the verifier on, every legal configuration.
// Several minutes of wall clock, so it only runs when GC_TORTURE_FULL is
// set — `make tier2-torture` does, under the race detector.
func TestTortureCorpusFull(t *testing.T) {
	if os.Getenv("GC_TORTURE_FULL") == "" {
		t.Skip("set GC_TORTURE_FULL=1 (or run make tier2-torture) for the full torture sweep")
	}
	for _, w := range workloads.Tasking {
		for _, cfg := range diffConfigs() {
			t.Run(fmt.Sprintf("%s/%v/ms=%v", w.Name, cfg.Strat, cfg.MS), func(t *testing.T) {
				for _, par := range []int{1, 4} {
					res, err := RunTasks(w.Source, w.Entries, Options{
						Strategy:    cfg.Strat,
						HeapWords:   w.HeapWords,
						MarkSweep:   cfg.MS,
						Parallelism: par,
						VerifyHeap:  true,
						Torture:     true,
					})
					if err != nil {
						t.Fatalf("par=%d: %v", par, err)
					}
					for i, e := range w.Expect {
						if res.Values[i] != e {
							t.Fatalf("par=%d: task %d = %d, want %d", par, i, res.Values[i], e)
						}
					}
					if res.Telemetry.Resilience.TortureCollections == 0 {
						t.Fatalf("par=%d: torture mode never collected", par)
					}
				}
			})
		}
	}
}

// TestWatchdogSerialFallback stalls every parallel worker far past the
// watchdog: each collection's parallel phase must be aborted and redone by
// the sequential oracle, with results and per-collection live words
// identical to a run that never went parallel.
func TestWatchdogSerialFallback(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	for _, ms := range []bool{false, true} {
		t.Run(fmt.Sprintf("ms=%v", ms), func(t *testing.T) {
			base, err := RunTasks(w.Source, w.Entries, Options{
				Strategy:   gc.StratCompiled,
				HeapWords:  w.HeapWords,
				MarkSweep:  ms,
				VerifyHeap: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunTasks(w.Source, w.Entries, Options{
				Strategy:    gc.StratCompiled,
				HeapWords:   w.HeapWords,
				MarkSweep:   ms,
				Parallelism: 4,
				VerifyHeap:  true,
				WorkerDelay: 30 * time.Millisecond,
				Watchdog:    time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range w.Expect {
				if res.Values[i] != e {
					t.Fatalf("task %d = %d, want %d", i, res.Values[i], e)
				}
			}
			rs := res.Telemetry.Resilience
			if rs.WatchdogTrips == 0 || rs.SerialFallbacks == 0 {
				t.Fatalf("watchdog never tripped: %+v", rs)
			}
			seq := fmt.Sprint(base.Telemetry.LiveWordsPerCollection())
			par := fmt.Sprint(res.Telemetry.LiveWordsPerCollection())
			if seq != par {
				t.Fatalf("fallback diverges from sequential oracle:\n  seq %s\n  par %s", seq, par)
			}
		})
	}
}
