package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/workloads"
)

// Differential testing: generate random well-typed MinML programs, compute
// their results with a direct Go reference evaluator over the generator's
// own expression trees, and require every collector strategy (under a tiny
// heap, forcing collections) to agree with the reference.
//
// The generated language: integer expressions, let bindings, conditionals,
// integer lists (literals, cons, recursive sum/length/append/reverse via a
// fixed prelude), and first-order helper calls. Everything is deterministic
// given the seed.

// genExpr is the generator's expression tree, mirrored by the reference
// evaluator and by the MinML printer.
type genExpr interface{ gen() }

type gInt struct{ v int64 }
type gVar struct{ name string }
type gBin struct {
	op   string // + - *
	l, r genExpr
}
type gIf struct {
	cmp       string // < <= =
	a, b      genExpr
	then, els genExpr
}
type gLet struct {
	name string
	val  genExpr
	body genExpr
}
type gList struct{ elems []genExpr } // int list literal
type gSum struct{ list genExpr }     // sum of an int list
type gLen struct{ list genExpr }
type gRevSum struct{ list genExpr } // sum (rev xs) — churns the heap
type gAppendSum struct{ a, b genExpr }

// gMapSum is sum (map (fun v -> v*m + k) xs): a polymorphic higher-order
// chain — the construct behind the recursive-instantiation soundness bug.
type gMapSum struct {
	m, k int64
	list genExpr
}

// gPairSum is zipsum (map (fun v -> (v, v*m)) xs): tuples inside lists
// built by polymorphic map.
type gPairSum struct {
	m    int64
	list genExpr
}

func (gInt) gen()       {}
func (gVar) gen()       {}
func (gBin) gen()       {}
func (gIf) gen()        {}
func (gLet) gen()       {}
func (gList) gen()      {}
func (gSum) gen()       {}
func (gLen) gen()       {}
func (gRevSum) gen()    {}
func (gAppendSum) gen() {}
func (gMapSum) gen()    {}
func (gPairSum) gen()   {}

// genContext tracks int variables in scope.
type genContext struct {
	rng  *rand.Rand
	vars []string
	n    int
}

func (g *genContext) fresh() string {
	g.n++
	return fmt.Sprintf("v%d", g.n)
}

// intExpr generates an integer-typed expression.
func (g *genContext) intExpr(depth int) genExpr {
	if depth <= 0 {
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			return gVar{g.vars[g.rng.Intn(len(g.vars))]}
		}
		return gInt{int64(g.rng.Intn(21) - 10)}
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		ops := []string{"+", "-", "*"}
		return gBin{ops[g.rng.Intn(3)], g.intExpr(depth - 1), g.intExpr(depth - 1)}
	case 2:
		cmps := []string{"<", "<=", "="}
		return gIf{cmps[g.rng.Intn(3)],
			g.intExpr(depth - 1), g.intExpr(depth - 1),
			g.intExpr(depth - 1), g.intExpr(depth - 1)}
	case 3:
		name := g.fresh()
		val := g.intExpr(depth - 1)
		g.vars = append(g.vars, name)
		body := g.intExpr(depth - 1)
		g.vars = g.vars[:len(g.vars)-1]
		return gLet{name, val, body}
	case 4:
		return gSum{g.listExpr(depth - 1)}
	case 5:
		return gLen{g.listExpr(depth - 1)}
	case 6:
		return gRevSum{g.listExpr(depth - 1)}
	case 7:
		return gAppendSum{g.listExpr(depth - 1), g.listExpr(depth - 1)}
	case 8:
		return gMapSum{int64(g.rng.Intn(5) - 2), int64(g.rng.Intn(9) - 4), g.listExpr(depth - 1)}
	default:
		return gPairSum{int64(g.rng.Intn(5) - 2), g.listExpr(depth - 1)}
	}
}

// listExpr generates an int-list literal of small size.
func (g *genContext) listExpr(depth int) genExpr {
	n := g.rng.Intn(5)
	elems := make([]genExpr, n)
	for i := range elems {
		d := depth - 1
		if d > 2 {
			d = 2
		}
		elems[i] = g.intExpr(d)
	}
	return gList{elems}
}

// refEval is the Go reference evaluator.
func refEval(e genExpr, env map[string]int64) int64 {
	switch e := e.(type) {
	case gInt:
		return e.v
	case gVar:
		return env[e.name]
	case gBin:
		l, r := refEval(e.l, env), refEval(e.r, env)
		switch e.op {
		case "+":
			return l + r
		case "-":
			return l - r
		default:
			return l * r
		}
	case gIf:
		a, b := refEval(e.a, env), refEval(e.b, env)
		var c bool
		switch e.cmp {
		case "<":
			c = a < b
		case "<=":
			c = a <= b
		default:
			c = a == b
		}
		if c {
			return refEval(e.then, env)
		}
		return refEval(e.els, env)
	case gLet:
		v := refEval(e.val, env)
		old, had := env[e.name]
		env[e.name] = v
		r := refEval(e.body, env)
		if had {
			env[e.name] = old
		} else {
			delete(env, e.name)
		}
		return r
	case gSum, gRevSum:
		var list genExpr
		if s, ok := e.(gSum); ok {
			list = s.list
		} else {
			list = e.(gRevSum).list
		}
		var t int64
		for _, el := range list.(gList).elems {
			t += refEval(el, env)
		}
		return t
	case gLen:
		return int64(len(e.list.(gList).elems))
	case gAppendSum:
		var t int64
		for _, el := range e.a.(gList).elems {
			t += refEval(el, env)
		}
		for _, el := range e.b.(gList).elems {
			t += refEval(el, env)
		}
		return t
	case gMapSum:
		var t int64
		for _, el := range e.list.(gList).elems {
			t += refEval(el, env)*e.m + e.k
		}
		return t
	case gPairSum:
		var t int64
		for _, el := range e.list.(gList).elems {
			v := refEval(el, env)
			t += v + v*e.m
		}
		return t
	}
	panic("refEval: unreachable")
}

// render prints the expression as MinML source.
func render(e genExpr, b *strings.Builder) {
	switch e := e.(type) {
	case gInt:
		if e.v < 0 {
			fmt.Fprintf(b, "(0 - %d)", -e.v)
		} else {
			fmt.Fprintf(b, "%d", e.v)
		}
	case gVar:
		b.WriteString(e.name)
	case gBin:
		b.WriteByte('(')
		render(e.l, b)
		fmt.Fprintf(b, " %s ", e.op)
		render(e.r, b)
		b.WriteByte(')')
	case gIf:
		b.WriteString("(if ")
		render(e.a, b)
		fmt.Fprintf(b, " %s ", e.cmp)
		render(e.b, b)
		b.WriteString(" then ")
		render(e.then, b)
		b.WriteString(" else ")
		render(e.els, b)
		b.WriteByte(')')
	case gLet:
		fmt.Fprintf(b, "(let %s = ", e.name)
		render(e.val, b)
		b.WriteString(" in ")
		render(e.body, b)
		b.WriteByte(')')
	case gList:
		b.WriteByte('[')
		for i, el := range e.elems {
			if i > 0 {
				b.WriteString("; ")
			}
			render(el, b)
		}
		b.WriteByte(']')
	case gSum:
		b.WriteString("(sum ")
		render(e.list, b)
		b.WriteByte(')')
	case gLen:
		b.WriteString("(length ")
		render(e.list, b)
		b.WriteByte(')')
	case gRevSum:
		b.WriteString("(sum (rev ")
		render(e.list, b)
		b.WriteString("))")
	case gAppendSum:
		b.WriteString("(sum (append ")
		render(e.a, b)
		b.WriteByte(' ')
		render(e.b, b)
		b.WriteString("))")
	case gMapSum:
		fmt.Fprintf(b, "(sum (map (fun v -> v * %s + %s) ", renderInt(e.m), renderInt(e.k))
		render(e.list, b)
		b.WriteString("))")
	case gPairSum:
		fmt.Fprintf(b, "(zipsum (map (fun v -> (v, v * %s)) ", renderInt(e.m))
		render(e.list, b)
		b.WriteString("))")
	}
}

// renderInt prints a possibly negative literal safely.
func renderInt(v int64) string {
	if v < 0 {
		return fmt.Sprintf("(0 - %d)", -v)
	}
	return fmt.Sprint(v)
}

const diffPrelude = `
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec length xs = match xs with | [] -> 0 | _ :: r -> 1 + length r
let rec append xs ys = match xs with | [] -> ys | x :: r -> x :: append r ys
let rec rev xs = match xs with | [] -> [] | x :: r -> append (rev r) [x]
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec zipsum ps = match ps with | [] -> 0 | (a, b) :: r -> a + b + zipsum r
`

func TestDifferentialRandomPrograms(t *testing.T) {
	const programs = 120
	for seed := 0; seed < programs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := &genContext{rng: rng}
		expr := g.intExpr(4)
		want := refEval(expr, map[string]int64{})

		var b strings.Builder
		b.WriteString(diffPrelude)
		b.WriteString("let main () = ")
		render(expr, &b)
		b.WriteByte('\n')
		src := b.String()

		for _, strat := range Strategies {
			res, err := Run(src, Options{Strategy: strat, HeapWords: 512, MaxSteps: 10_000_000})
			if err != nil {
				t.Fatalf("seed %d [%v]: %v\nprogram:\n%s", seed, strat, err, src)
			}
			if res.Value != want {
				t.Fatalf("seed %d [%v]: got %d, reference %d\nprogram:\n%s",
					seed, strat, res.Value, want, src)
			}
		}
		// Mark/sweep, 0-CFA elision, and their combination as extra
		// configurations.
		for _, extra := range []Options{
			{Strategy: gc.StratCompiled, HeapWords: 512, MarkSweep: true, MaxSteps: 10_000_000},
			{Strategy: gc.StratCompiled, HeapWords: 512, UseCFA: true, MaxSteps: 10_000_000},
			{Strategy: gc.StratCompiled, HeapWords: 512, MarkSweep: true, UseCFA: true, MaxSteps: 10_000_000},
		} {
			res, err := Run(src, extra)
			if err != nil {
				t.Fatalf("seed %d [ms=%v cfa=%v]: %v\nprogram:\n%s",
					seed, extra.MarkSweep, extra.UseCFA, err, src)
			}
			if res.Value != want {
				t.Fatalf("seed %d [ms=%v cfa=%v]: got %d, reference %d\nprogram:\n%s",
					seed, extra.MarkSweep, extra.UseCFA, res.Value, want, src)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Cross-strategy differential suite: every corpus workload runs under all
// four strategies × {copying, mark/sweep where legal} × {sequential,
// parallel}, and every configuration must (a) compute the workload's known
// result and (b) — between the sequential oracle and the parallel path of
// the same strategy and discipline — retain exactly the same number of
// live words after every collection. The live-word sequence is the
// cheapest whole-heap signature: any divergence in what a configuration
// retains or drops shows up in it.
// ---------------------------------------------------------------------------

// diffConfigs enumerates the legal (strategy, discipline) pairs: mark/sweep
// needs per-object extents from compiler metadata, which the tagged
// strategy does not keep.
func diffConfigs() []struct {
	Strat gc.Strategy
	MS    bool
} {
	var out []struct {
		Strat gc.Strategy
		MS    bool
	}
	for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel, gc.StratTagged} {
		for _, ms := range []bool{false, true} {
			if ms && strat == gc.StratTagged {
				continue
			}
			out = append(out, struct {
				Strat gc.Strategy
				MS    bool
			}{strat, ms})
		}
	}
	return out
}

func TestDifferentialWorkloadsCrossStrategy(t *testing.T) {
	for _, w := range workloads.All {
		for _, cfg := range diffConfigs() {
			name := fmt.Sprintf("%s/%v/ms=%v", w.Name, cfg.Strat, cfg.MS)
			t.Run(name, func(t *testing.T) {
				hw := w.HeapWords
				if cfg.MS {
					// A mark/sweep heap is one space of hw words; double it
					// so the configuration has the same total memory as
					// copying's two semispaces.
					hw *= 2
				}
				var lives [][]int64
				for _, par := range []int{1, 4} {
					res, err := Run(w.Source, Options{
						Strategy:    cfg.Strat,
						HeapWords:   hw,
						MarkSweep:   cfg.MS,
						Parallelism: par,
						VerifyHeap:  true,
					})
					if err != nil {
						t.Fatalf("par=%d: %v", par, err)
					}
					if res.Value != w.Expect {
						t.Fatalf("par=%d: result %d, want %d", par, res.Value, w.Expect)
					}
					lives = append(lives, res.Telemetry.LiveWordsPerCollection())
				}
				if fmt.Sprint(lives[0]) != fmt.Sprint(lives[1]) {
					t.Fatalf("live words per collection diverge:\n  seq %v\n  par %v", lives[0], lives[1])
				}
			})
		}
	}
}

func TestDifferentialTaskWorkloadsCrossStrategy(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, cfg := range diffConfigs() {
			name := fmt.Sprintf("%s/%v/ms=%v", w.Name, cfg.Strat, cfg.MS)
			t.Run(name, func(t *testing.T) {
				var lives [][]int64
				for _, par := range []int{1, 4} {
					res, err := RunTasks(w.Source, w.Entries, Options{
						Strategy:    cfg.Strat,
						HeapWords:   w.HeapWords,
						MarkSweep:   cfg.MS,
						Parallelism: par,
						VerifyHeap:  true,
					})
					if err != nil {
						t.Fatalf("par=%d: %v", par, err)
					}
					for i, e := range w.Expect {
						if res.Values[i] != e {
							t.Fatalf("par=%d: task %d = %d, want %d", par, i, res.Values[i], e)
						}
					}
					if res.Stats.Collections == 0 {
						t.Fatalf("par=%d: no collections — workload exerts no heap pressure", par)
					}
					lives = append(lives, res.Telemetry.LiveWordsPerCollection())
				}
				if fmt.Sprint(lives[0]) != fmt.Sprint(lives[1]) {
					t.Fatalf("live words per collection diverge:\n  seq %v\n  par %v", lives[0], lives[1])
				}
			})
		}
	}
}
