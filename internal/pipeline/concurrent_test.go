package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/tasking"
	"tagfree/internal/workloads"
)

// Concurrent-marking differential suite. -gc-concurrent changes *when*
// marking happens (sliced between task quanta instead of one pause) but
// must never change what the program computes or what survives: the
// scheduler is single-goroutine, so the interleaving is deterministic and
// the live heap after a run must match the stop-the-world oracle exactly —
// gc.LiveSignature is the address-free canonical form that makes "exactly"
// checkable on a mark/sweep heap whose layouts are history-dependent.
// Every configuration runs with the heap verifier on, so each concurrent
// cycle's final pause is followed by a typed re-walk of all roots.

// concOutcome is one configuration's observable behavior plus its
// canonical live heap.
type concOutcome struct {
	res       *TaskResult
	signature []code.Word
}

func concTaskRun(t *testing.T, w workloads.TaskWorkload, opts Options) concOutcome {
	t.Helper()
	opts.VerifyHeap = true
	res, err := RunTasks(w.Source, w.Entries, opts)
	if err != nil {
		t.Fatalf("conc=%v: %v", opts.GCConcurrent, err)
	}
	for i, e := range w.Expect {
		if res.Values[i] != e {
			t.Fatalf("conc=%v: task %d = %d, want %d", opts.GCConcurrent, i, res.Values[i], e)
		}
	}
	g := res.Group
	return concOutcome{res: res, signature: g.Col.LiveSignature(g.Globals)}
}

// concCycles counts the collections finished by the incremental collector.
func concCycles(res *TaskResult) int {
	n := 0
	for i := range res.Telemetry.Records {
		if res.Telemetry.Records[i].Conc != nil {
			n++
		}
	}
	return n
}

// TestDifferentialConcurrentTasks pins concurrent-on ≡ stop-the-world over
// the whole multi-task corpus, across both suspension policies and the
// TLAB shape, against both a sequential and a parallel-marking oracle.
func TestDifferentialConcurrentTasks(t *testing.T) {
	shapes := []struct {
		name      string
		allocs    bool
		tlab      int
		oraclePar int
	}{
		{"calls", false, 0, 1},
		{"allocs", true, 0, 1},
		{"tlab", false, 64, 1},
		{"par-oracle", false, 0, 4},
	}
	sawCycle := false
	for _, w := range workloads.Tasking {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s/%s", w.Name, sh.name), func(t *testing.T) {
				opts := Options{
					Strategy:        gc.StratCompiled,
					HeapWords:       w.HeapWords,
					MarkSweep:       true,
					SuspendAtAllocs: sh.allocs,
					TLABWords:       sh.tlab,
					Parallelism:     sh.oraclePar,
				}
				off := concTaskRun(t, w, opts)
				opts.Parallelism = 1
				opts.GCConcurrent = true
				opts.ConcTriggerPct = 40
				opts.ConcMarkBudget = 128
				on := concTaskRun(t, w, opts)

				if fmt.Sprint(on.res.Values) != fmt.Sprint(off.res.Values) ||
					joinOutputs(on.res) != joinOutputs(off.res) {
					t.Fatalf("concurrent marking changed observable behavior")
				}
				if fmt.Sprint(on.signature) != fmt.Sprint(off.signature) {
					t.Fatalf("live-heap signatures diverge (conc on %d words, off %d words)",
						len(on.signature), len(off.signature))
				}
				if concCycles(on.res) > 0 {
					sawCycle = true
				}
				if concCycles(off.res) != 0 {
					t.Fatalf("stop-the-world run recorded a concurrent cycle")
				}
			})
		}
	}
	if !sawCycle {
		t.Fatalf("no workload ever completed a concurrent cycle — the trigger never fired")
	}
}

// TestDifferentialConcurrentVM pins the single-task machine: same value and
// output with and without -gc-concurrent across the whole corpus, verifier
// on, for both typed strategies.
func TestDifferentialConcurrentVM(t *testing.T) {
	sawCycle := false
	for _, w := range workloads.All {
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp} {
			t.Run(fmt.Sprintf("%s/%s", w.Name, strat), func(t *testing.T) {
				base := Options{
					Strategy:   strat,
					HeapWords:  w.HeapWords,
					MarkSweep:  true,
					VerifyHeap: true,
					MaxSteps:   50_000_000,
				}
				off, err := Run(w.Source, base)
				if err != nil {
					t.Fatal(err)
				}
				on := base
				on.GCConcurrent = true
				on.ConcTriggerPct = 40
				on.ConcMarkBudget = 64
				res, err := Run(w.Source, on)
				if err != nil {
					t.Fatal(err)
				}
				if res.Value != w.Expect || res.Value != off.Value {
					t.Fatalf("value = %d, want %d (stw %d)", res.Value, w.Expect, off.Value)
				}
				if res.Output != off.Output {
					t.Fatalf("output diverges under concurrent marking")
				}
				if concCycles2(res) > 0 {
					sawCycle = true
				}
			})
		}
	}
	if !sawCycle {
		t.Fatalf("no workload ever completed a concurrent cycle on the VM path")
	}
}

func concCycles2(res *Result) int {
	n := 0
	for i := range res.Telemetry.Records {
		if res.Telemetry.Records[i].Conc != nil {
			n++
		}
	}
	return n
}

// TestConcurrentMutatorInterleavingFuzz randomizes the mutator/marker
// interleaving — quantum, slice budget, trigger watermark, suspension
// policy, TLABs — across 32 seeds and asserts every configuration matches
// the stop-the-world oracle: per-task values, outputs, and the end-of-run
// live-heap signature, with the verifier checking every cycle. Varying the
// quantum changes which stores run between which slices, so this sweeps
// barrier/slice orderings no fixed configuration pins.
func TestConcurrentMutatorInterleavingFuzz(t *testing.T) {
	oracles := map[string]concOutcome{}
	oracleFor := func(w workloads.TaskWorkload) concOutcome {
		if o, ok := oracles[w.Name]; ok {
			return o
		}
		o := concTaskRun(t, w, Options{
			Strategy:  gc.StratCompiled,
			HeapWords: w.HeapWords,
			MarkSweep: true,
		})
		oracles[w.Name] = o
		return o
	}
	const seeds = 32
	completed := 0
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		w := workloads.Tasking[rng.Intn(len(workloads.Tasking))]
		opts := Options{
			Strategy:        gc.StratCompiled,
			HeapWords:       w.HeapWords,
			MarkSweep:       true,
			GCConcurrent:    true,
			ConcTriggerPct:  10 + rng.Intn(80),
			ConcMarkBudget:  1 << (4 + rng.Intn(8)), // 16 .. 2048 words/slice
			SuspendAtAllocs: rng.Intn(2) == 0,
		}
		if rng.Intn(2) == 0 {
			opts.TLABWords = 32 << rng.Intn(2)
		}
		quantum := 3 + rng.Intn(200)
		t.Run(fmt.Sprintf("seed=%d/%s", seed, w.Name), func(t *testing.T) {
			opts.VerifyHeap = true
			group, entries, err := BuildTaskGroup(w.Source, w.Entries, opts)
			if err != nil {
				t.Fatal(err)
			}
			group.Quantum = quantum
			for _, e := range entries {
				group.Spawn(e)
			}
			if err := group.RunInit(); err != nil {
				t.Fatal(err)
			}
			if err := group.Run(); err != nil {
				t.Fatal(err)
			}
			want := oracleFor(w)
			for i, e := range w.Expect {
				tk := group.Tasks[i]
				if tk.Status == tasking.Faulted {
					t.Fatalf("task %d faulted: %v", i, tk.Err)
				}
				if got := code.DecodeInt(group.Prog.Repr, tk.Result); got != e {
					t.Fatalf("task %d = %d, want %d", i, got, e)
				}
			}
			sig := group.Col.LiveSignature(group.Globals)
			if fmt.Sprint(sig) != fmt.Sprint(want.signature) {
				t.Fatalf("seed %d (quantum %d, budget %d, pct %d): signature diverges from oracle",
					seed, quantum, opts.ConcMarkBudget, opts.ConcTriggerPct)
			}
			for i := range group.Col.Telem.Records {
				if group.Col.Telem.Records[i].Conc != nil {
					completed++
					break
				}
			}
		})
	}
	if completed == 0 {
		t.Fatalf("no fuzz seed ever completed a concurrent cycle")
	}
}

// TestConcurrentWatchdogAbort pins the abort rung: with a slice budget of
// one word and a one-slice watchdog, no real cycle can drain, so every
// attempt must abort and fall back to stop-the-world — counted in
// resilience telemetry — while the program still computes the right
// answers over a verified heap.
func TestConcurrentWatchdogAbort(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	opts := Options{
		Strategy:       gc.StratCompiled,
		HeapWords:      w.HeapWords,
		MarkSweep:      true,
		GCConcurrent:   true,
		ConcTriggerPct: 30,
		ConcMarkBudget: 1,
		ConcMaxSlices:  1,
	}
	out := concTaskRun(t, w, opts)
	rs := out.res.Telemetry.Resilience
	if rs.ConcAborts == 0 {
		t.Fatalf("expected watchdog aborts, got none (resilience: %+v)", rs)
	}
	if concCycles(out.res) != 0 {
		t.Fatalf("a cycle completed despite a 1-word x 1-slice budget")
	}
	if out.res.Stats.Collections == 0 {
		t.Fatalf("no stop-the-world fallback collection ran")
	}
	// The fallback must leave the same live heap as a plain run.
	plain := concTaskRun(t, w, Options{
		Strategy: gc.StratCompiled, HeapWords: w.HeapWords, MarkSweep: true})
	if fmt.Sprint(out.signature) != fmt.Sprint(plain.signature) {
		t.Fatalf("aborted-cycle run diverges from the stop-the-world heap")
	}
}

// TestConcurrentValidation pins the gating: concurrent marking requires
// mark/sweep, a tag-free typed strategy, no nursery and no parallel
// markers, on both execution paths.
func TestConcurrentValidation(t *testing.T) {
	src := `let main () = 7`
	bad := []Options{
		{Strategy: gc.StratCompiled, GCConcurrent: true},                                    // copying
		{Strategy: gc.StratTagged, GCConcurrent: true},                                      // tagged (also not mark/sweep)
		{Strategy: gc.StratCompiled, MarkSweep: true, GCConcurrent: true, NurseryWords: 64}, // nursery
		{Strategy: gc.StratCompiled, MarkSweep: true, GCConcurrent: true, Parallelism: 4},   // parallel marking
	}
	for i, o := range bad {
		if _, err := Run(src, o); err == nil {
			t.Errorf("case %d: Run accepted an invalid -gc-concurrent configuration", i)
		}
		if _, _, err := BuildTaskGroup(`let task_a () = 7`, []string{"task_a"}, o); err == nil {
			t.Errorf("case %d: BuildTaskGroup accepted an invalid -gc-concurrent configuration", i)
		}
	}
	if _, err := Run(src, Options{Strategy: gc.StratCompiled, MarkSweep: true, GCConcurrent: true}); err != nil {
		t.Errorf("valid configuration rejected: %v", err)
	}
}
