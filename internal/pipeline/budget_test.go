package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/tasking"
)

// Per-task budget tests: a budgeted task that exceeds its step or
// allocation-word quota must fault with a structured BudgetExceeded
// TaskFault (PC + backtrace, like the OOM ladder's faults) while its
// siblings run to completion bit-identical to an unbudgeted run without
// the offender. With budgets set but not exceeded, the whole run must be
// bit-identical to one with budgets off — the checks may not perturb
// scheduling, collection points, or results.

// budgetMeters runs ladderSrc unbudgeted and returns each task's observed
// step and allocation meters, so the tests can derive budgets that
// separate the greedy task from the modest ones without hard-coding
// instruction counts.
func budgetMeters(t *testing.T, ms bool) (steps, allocs []int64) {
	t.Helper()
	res, err := RunTasks(ladderSrc, []string{"greedy", "mod_a", "mod_b"}, Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 1 << 15,
		MarkSweep: ms,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range res.Group.Tasks {
		if res.Faults[i] != nil {
			t.Fatalf("unbudgeted meter run faulted: %v", res.Faults[i])
		}
		steps = append(steps, task.Steps)
		allocs = append(allocs, task.AllocWords)
	}
	return steps, allocs
}

func TestBudgetFaultIsolation(t *testing.T) {
	for _, d := range ladderDisciplines {
		steps, allocs := budgetMeters(t, d.ms)
		if steps[0] <= 2*steps[1] || allocs[0] <= 2*allocs[1] {
			t.Fatalf("greedy task not separable from modest ones: steps=%v allocs=%v", steps, allocs)
		}
		base, err := RunTasks(ladderSrc, []string{"mod_a", "mod_b"}, Options{
			Strategy:  gc.StratCompiled,
			HeapWords: 1 << 15,
			MarkSweep: d.ms,
		})
		if err != nil {
			t.Fatalf("baseline %s: %v", d.name, err)
		}

		kinds := []struct {
			name  string
			opts  func(o *Options)
			cause string
		}{
			{
				name: "steps",
				opts: func(o *Options) {
					o.BudgetSteps = (steps[0] + max64(steps[1], steps[2])) / 2
				},
				cause: "step budget exhausted",
			},
			{
				name: "alloc-words",
				opts: func(o *Options) {
					o.BudgetAllocWords = (allocs[0] + max64(allocs[1], allocs[2])) / 2
				},
				cause: "allocation budget exhausted",
			},
		}
		for _, k := range kinds {
			t.Run(fmt.Sprintf("%s/%s", d.name, k.name), func(t *testing.T) {
				opts := Options{
					Strategy:   gc.StratCompiled,
					HeapWords:  1 << 15,
					MarkSweep:  d.ms,
					VerifyHeap: true,
				}
				k.opts(&opts)
				res, err := RunTasks(ladderSrc, []string{"greedy", "mod_a", "mod_b"}, opts)
				if err != nil {
					t.Fatal(err)
				}
				f := res.Faults[0]
				if f == nil {
					t.Fatalf("greedy task did not fault; values %v", res.Values)
				}
				if f.Kind != tasking.FaultBudget {
					t.Fatalf("fault kind %v, want FaultBudget", f.Kind)
				}
				if !strings.Contains(f.Error(), "exceeded its budget") ||
					!strings.Contains(f.Error(), k.cause) {
					t.Fatalf("fault message lacks the budget cause: %v", f)
				}
				if len(f.Frames) == 0 {
					t.Fatalf("budget fault lacks a backtrace: %v", f)
				}
				for i := 0; i < 2; i++ {
					if res.Faults[1+i] != nil {
						t.Fatalf("modest task %d faulted: %v", i, res.Faults[1+i])
					}
					if res.Values[1+i] != base.Values[i] {
						t.Fatalf("modest task %d = %d, unbudgeted %d",
							i, res.Values[1+i], base.Values[i])
					}
					if res.Outputs[1+i] != base.Outputs[i] {
						t.Fatalf("modest task %d output diverges from unbudgeted run", i)
					}
				}
				rs := res.Telemetry.Resilience
				if rs.BudgetFaults != 1 || rs.TaskFaults != 1 {
					t.Fatalf("want exactly one budget fault: %+v", rs)
				}
			})
		}
	}
}

// TestBudgetHeadroomBitIdentical pins that enabled-but-unexceeded budgets
// are invisible: same values, outputs, per-collection live words, and
// live-heap signature as a run with budgets off.
func TestBudgetHeadroomBitIdentical(t *testing.T) {
	entries := []string{"greedy", "mod_a", "mod_b"}
	for _, d := range ladderDisciplines {
		t.Run(d.name, func(t *testing.T) {
			off, err := RunTasks(ladderSrc, entries, Options{
				Strategy:  gc.StratCompiled,
				HeapWords: 1 << 15,
				MarkSweep: d.ms,
			})
			if err != nil {
				t.Fatal(err)
			}
			on, err := RunTasks(ladderSrc, entries, Options{
				Strategy:         gc.StratCompiled,
				HeapWords:        1 << 15,
				MarkSweep:        d.ms,
				BudgetSteps:      1 << 40,
				BudgetAllocWords: 1 << 40,
			})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(on.Values) != fmt.Sprint(off.Values) {
				t.Fatalf("values diverge: %v vs %v", on.Values, off.Values)
			}
			if fmt.Sprint(on.Outputs) != fmt.Sprint(off.Outputs) {
				t.Fatalf("outputs diverge")
			}
			lwOn := fmt.Sprint(on.Telemetry.LiveWordsPerCollection())
			lwOff := fmt.Sprint(off.Telemetry.LiveWordsPerCollection())
			if lwOn != lwOff {
				t.Fatalf("collection live words diverge:\n  on  %s\n  off %s", lwOn, lwOff)
			}
			sigOn := fmt.Sprint(on.Group.Col.LiveSignature(on.Group.Globals))
			sigOff := fmt.Sprint(off.Group.Col.LiveSignature(off.Group.Globals))
			if sigOn != sigOff {
				t.Fatal("live-heap signature diverges with headroom budgets")
			}
		})
	}
}

// TestLadderOutcomeSplit pins the ladderRecovered / ladderExhausted split:
// a rescued emergency counts as recovered (and only once per climb), while
// a climb that ends in a fault counts as exhausted — even though it, too,
// ran an emergency collection.
func TestLadderOutcomeSplit(t *testing.T) {
	t.Run("tasking-recovered", func(t *testing.T) {
		res, err := RunTasks(ladderSrc, []string{"greedy", "mod_a", "mod_b"}, Options{
			Strategy:       gc.StratCompiled,
			HeapWords:      1 << 15,
			FailAllocEvery: 50,
			VerifyHeap:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs := res.Telemetry.Resilience
		if rs.LadderRecovered == 0 {
			t.Fatalf("no recovery recorded: %+v", rs)
		}
		if rs.LadderExhausted != 0 || rs.TaskFaults != 0 {
			t.Fatalf("comfortable heap should recover every climb: %+v", rs)
		}
	})
	t.Run("tasking-exhausted", func(t *testing.T) {
		res, err := RunTasks(ladderSrc, []string{"greedy", "mod_a", "mod_b"}, Options{
			Strategy:   gc.StratCompiled,
			HeapWords:  1024,
			VerifyHeap: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs := res.Telemetry.Resilience
		if rs.TaskFaults != 1 || rs.LadderExhausted != 1 {
			t.Fatalf("want exactly one exhausted climb: %+v", rs)
		}
		if rs.EmergencyCollections == 0 {
			t.Fatalf("the exhausted climb must still count its emergency collection: %+v", rs)
		}
	})
	t.Run("vm-recovered", func(t *testing.T) {
		const src = `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = sum (upto 40)
`
		res, err := Run(src, Options{
			Strategy:       gc.StratCompiled,
			HeapWords:      1 << 12,
			FailAllocEvery: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs := res.Telemetry.Resilience
		if rs.InjectedOOMs == 0 || rs.LadderRecovered == 0 {
			t.Fatalf("injected climbs not recorded as recovered: %+v", rs)
		}
		if rs.LadderExhausted != 0 {
			t.Fatalf("comfortable heap should not exhaust: %+v", rs)
		}
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
