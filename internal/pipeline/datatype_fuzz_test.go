package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tagfree/internal/gc"
)

// Datatype-shape fuzzing: generate a random variant type (random numbers
// of nullary and boxed constructors, with int and recursive fields), a
// random deep value of it, and a checksum fold over all constructors. The
// value is kept live across heap churn, so every collector must trace the
// variant representation correctly — including the tagless-sum layout when
// the type has at most one boxed constructor — for the checksum to
// survive. The reference checksum is computed on the generator's own tree.

type dtShape struct {
	nullary int // 1..3 constructors N0..
	boxed   []dtCtor
}

type dtCtor struct {
	name   string
	fields []byte // 'i' int field, 'r' recursive field
}

// dtValue is a generated value of the shape.
type dtValue struct {
	nullaryTag int        // >= 0 when nullary
	boxedIdx   int        // index into shape.boxed when nullaryTag < 0
	ints       []int64    // values for 'i' fields, in order
	recs       []*dtValue // values for 'r' fields, in order
}

func genShape(rng *rand.Rand) dtShape {
	s := dtShape{nullary: 1 + rng.Intn(3)}
	nBoxed := 1 + rng.Intn(3)
	for i := 0; i < nBoxed; i++ {
		nf := 1 + rng.Intn(3)
		fields := make([]byte, nf)
		hasRec := false
		for j := range fields {
			if rng.Intn(2) == 0 {
				fields[j] = 'i'
			} else {
				fields[j] = 'r'
				hasRec = true
			}
		}
		_ = hasRec
		s.boxed = append(s.boxed, dtCtor{name: fmt.Sprintf("B%d", i), fields: fields})
	}
	return s
}

func (s dtShape) decl() string {
	var parts []string
	for i := 0; i < s.nullary; i++ {
		parts = append(parts, fmt.Sprintf("N%d", i))
	}
	for _, c := range s.boxed {
		var fs []string
		for _, f := range c.fields {
			if f == 'i' {
				fs = append(fs, "int")
			} else {
				fs = append(fs, "t")
			}
		}
		parts = append(parts, fmt.Sprintf("%s of %s", c.name, strings.Join(fs, " * ")))
	}
	return "type t = " + strings.Join(parts, " | ")
}

// chkFn generates the checksum fold: distinct coefficients per
// constructor and field position keep structural mistakes visible.
func (s dtShape) chkFn() string {
	var b strings.Builder
	b.WriteString("let rec chk v =\n  match v with\n")
	for i := 0; i < s.nullary; i++ {
		fmt.Fprintf(&b, "  | N%d -> %d\n", i, i+1)
	}
	for ci, c := range s.boxed {
		var binds []string
		for fi := range c.fields {
			binds = append(binds, fmt.Sprintf("f%d", fi))
		}
		pat := c.name
		if len(binds) == 1 {
			pat += " " + binds[0]
		} else {
			pat += " (" + strings.Join(binds, ", ") + ")"
		}
		expr := fmt.Sprint(100 * (ci + 1))
		for fi, f := range c.fields {
			if f == 'i' {
				expr += fmt.Sprintf(" + f%d * %d", fi, fi+3)
			} else {
				expr += fmt.Sprintf(" + chk f%d * %d", fi, fi+7)
			}
		}
		fmt.Fprintf(&b, "  | %s -> %s\n", pat, expr)
	}
	return b.String()
}

func genValue(rng *rand.Rand, s dtShape, depth int) *dtValue {
	if depth <= 0 || rng.Intn(4) == 0 {
		return &dtValue{nullaryTag: rng.Intn(s.nullary)}
	}
	ci := rng.Intn(len(s.boxed))
	v := &dtValue{nullaryTag: -1, boxedIdx: ci}
	for _, f := range s.boxed[ci].fields {
		if f == 'i' {
			v.ints = append(v.ints, int64(rng.Intn(50)))
		} else {
			v.recs = append(v.recs, genValue(rng, s, depth-1))
		}
	}
	return v
}

func (v *dtValue) render(s dtShape) string {
	if v.nullaryTag >= 0 {
		return fmt.Sprintf("N%d", v.nullaryTag)
	}
	c := s.boxed[v.boxedIdx]
	var args []string
	ii, ri := 0, 0
	for _, f := range c.fields {
		if f == 'i' {
			args = append(args, fmt.Sprint(v.ints[ii]))
			ii++
		} else {
			args = append(args, v.recs[ri].render(s))
			ri++
		}
	}
	if len(args) == 1 {
		return fmt.Sprintf("%s (%s)", c.name, args[0])
	}
	return fmt.Sprintf("%s (%s)", c.name, strings.Join(args, ", "))
}

func (v *dtValue) checksum(s dtShape) int64 {
	if v.nullaryTag >= 0 {
		return int64(v.nullaryTag) + 1
	}
	c := s.boxed[v.boxedIdx]
	sum := int64(100 * (v.boxedIdx + 1))
	ii, ri := 0, 0
	for fi, f := range c.fields {
		if f == 'i' {
			sum += v.ints[ii] * int64(fi+3)
			ii++
		} else {
			sum += v.recs[ri].checksum(s) * int64(fi+7)
			ri++
		}
	}
	return sum
}

func TestDatatypeShapeFuzz(t *testing.T) {
	const shapes = 60
	for seed := 0; seed < shapes; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		shape := genShape(rng)
		value := genValue(rng, shape, 5)
		want := value.checksum(shape)

		src := fmt.Sprintf(`%s
%s
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let blip n = (let _ = upto 12 in 0)
let rec churn n = if n = 0 then 0 else blip n + churn (n - 1)
let main () =
  let v = %s in
  let _ = churn 60 in
  chk v
`, shape.decl(), shape.chkFn(), value.render(shape))

		for _, strat := range Strategies {
			res, err := Run(src, Options{Strategy: strat, HeapWords: 512, MaxSteps: 10_000_000})
			if err != nil {
				t.Fatalf("seed %d [%v]: %v\nprogram:\n%s", seed, strat, err, src)
			}
			if res.Value != want {
				t.Fatalf("seed %d [%v]: got %d, reference %d\nprogram:\n%s",
					seed, strat, res.Value, want, src)
			}
			if res.HeapStats.Collections == 0 {
				t.Fatalf("seed %d: churn did not force a collection", seed)
			}
		}
		// Mark/sweep configuration.
		res, err := Run(src, Options{Strategy: gc.StratCompiled, HeapWords: 512,
			MarkSweep: true, MaxSteps: 10_000_000})
		if err != nil {
			t.Fatalf("seed %d [ms]: %v", seed, err)
		}
		if res.Value != want {
			t.Fatalf("seed %d [ms]: got %d, reference %d\nprogram:\n%s", seed, res.Value, want, src)
		}
	}
}
