package pipeline

import (
	"strings"
	"testing"

	"tagfree/internal/gc"
)

// progCase is one end-to-end program with its expected result.
type progCase struct {
	name   string
	src    string
	want   int64
	output string
	// minHeap overrides the deliberately tiny default semispace.
	minHeap int
}

// cases is the cross-strategy correctness battery. Heaps are kept small so
// every run performs many collections; all four collectors must produce
// identical results.
var cases = []progCase{
	{
		name: "arith",
		src: `
let main () = (3 + 4) * 5 - 100 / 4 + 10 mod 3
`,
		want: 11,
	},
	{
		name: "conditionals",
		src: `
let max3 a b c = if a > b then (if a > c then a else c) else (if b > c then b else c)
let main () = max3 3 9 6
`,
		want: 9,
	},
	{
		name: "list-sum",
		src: `
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let main () = sum (upto 100)
`,
		want: 5050,
	},
	{
		name: "append-rev",
		src: `
let rec append xs ys = match xs with | [] -> ys | x :: r -> x :: append r ys
let rec rev xs = match xs with | [] -> [] | x :: r -> append (rev r) [x]
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let main () = sum (rev (append (upto 20) (upto 30)))
`,
		want: 675,
	},
	{
		name: "map-filter-pipeline",
		src: `
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec filter p xs =
  match xs with
  | [] -> []
  | x :: r -> if p x then x :: filter p r else filter p r
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let main () = sum (map (fun x -> x * x) (filter (fun x -> x mod 2 = 0) (upto 20)))
`,
		want: 1540,
	},
	{
		name: "binary-trees",
		src: `
type tree = Leaf | Node of tree * int * tree
let rec build d v = if d = 0 then Leaf else Node (build (d - 1) (2 * v), v, build (d - 1) (2 * v + 1))
let rec sum t = match t with | Leaf -> 0 | Node (l, v, r) -> sum l + v + sum r
let main () = sum (build 8 1)
`,
		want:    32640,
		minHeap: 4096,
	},
	{
		name: "variants",
		src: `
type shape = Point | Circle of int | Rect of int * int | Tri of int * int * int
let area s =
  match s with
  | Point -> 0
  | Circle r -> 3 * r * r
  | Rect (w, h) -> w * h
  | Tri (a, b, c) -> a + b + c
let rec total xs = match xs with | [] -> 0 | s :: r -> area s + total r
let main () = total [Point; Circle 2; Rect (3, 4); Tri (1, 2, 3); Circle 1]
`,
		want: 33,
	},
	{
		name: "refs-counter",
		src: `
let main () =
  let r = ref 0 in
  let rec loop n = if n = 0 then !r else (r := !r + n; loop (n - 1)) in
  loop 100
`,
		want: 5050,
	},
	{
		name: "closures-adders",
		src: `
let make_adder k = fun x -> x + k
let rec apply_all fs x = match fs with | [] -> x | f :: r -> apply_all r (f x)
let main () = apply_all [make_adder 1; make_adder 10; make_adder 100] 5
`,
		want: 116,
	},
	{
		name: "polymorphic-append",
		src: `
let rec append xs ys = match xs with | [] -> ys | x :: r -> x :: append r ys
let rec length xs = match xs with | [] -> 0 | _ :: r -> 1 + length r
let main () =
  let a = append [1; 2; 3] [4; 5] in
  let b = append [true; false] [true] in
  let c = append [(1, true)] [(2, false)] in
  length a * 100 + length b * 10 + length c
`,
		want: 532,
	},
	{
		name: "polymorphic-map-inst",
		src: `
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec length xs = match xs with | [] -> 0 | _ :: r -> 1 + length r
let main () =
  let ints = map (fun x -> x + 1) [1; 2; 3] in
  let pairs = map (fun x -> (x, x * x)) [1; 2; 3] in
  let seconds = map (fun p -> match p with (_, b) -> b) pairs in
  sum ints + sum seconds + length pairs
`,
		want: 26,
	},
	{
		name: "nested-poly-lists",
		src: `
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec concat xss = match xss with | [] -> [] | xs :: r -> append xs (concat r)
and append xs ys = match xs with | [] -> ys | x :: r -> x :: append r ys
let main () =
  let xss = map (fun n -> [n; n * 10]) [1; 2; 3] in
  sum (concat xss)
`,
		want: 66,
	},
	{
		name: "paper-f-example",
		// The program fragment from §3 of the paper: f x = let y = [x;x]
		// in (y, [3]), applied at two types.
		src: `
let f x = let y = [x; x] in (y, [3])
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec count xs = match xs with | [] -> 0 | _ :: r -> 1 + count r
let main () =
  let a = f true in
  let b = f 7 in
  match a with
  | (ys, zs) ->
    match b with
    | (ws, vs) -> count ys * 1000 + sum zs * 100 + sum ws + sum vs
`,
		want: 2317,
	},
	{
		name: "higher-order-poly",
		src: `
let compose f g = fun x -> f (g x)
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () =
  let h = compose (fun x -> x * 2) (fun x -> x + 1) in
  sum (map h [1; 2; 3])
`,
		want: 18,
	},
	{
		name: "partial-application",
		src: `
let add3 a b c = a + b + c
let main () =
  let f = add3 1 in
  let g = f 10 in
  g 100 + g 200 + f 20 30
`,
		want: 373,
	},
	{
		name: "function-as-value",
		src: `
let double x = x * 2
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = sum (map double [1; 2; 3; 4])
`,
		want: 20,
	},
	{
		name: "local-rec-mutual",
		src: `
let main () =
  let rec even n = if n = 0 then true else odd (n - 1)
  and odd n = if n = 0 then false else even (n - 1) in
  (if even 10 then 100 else 0) + (if odd 7 then 10 else 0)
`,
		want: 110,
	},
	{
		name: "globals",
		src: `
let table = [10; 20; 30]
let base = 5
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = sum table + base
`,
		want: 65,
	},
	{
		name: "option-datatype",
		src: `
type 'a opt = None | Some of 'a
let get d o = match o with | None -> d | Some v -> v
let rec find p xs =
  match xs with
  | [] -> None
  | x :: r -> if p x then Some x else find p r
let main () =
  get 0 (find (fun x -> x > 25) [10; 20; 30; 40]) + get 99 (find (fun x -> x > 100) [1])
`,
		want: 129,
	},
	{
		name: "expr-interpreter",
		src: `
type expr = Num of int | Add of expr * expr | Mul of expr * expr | Neg of expr
let rec eval e =
  match e with
  | Num n -> n
  | Add (a, b) -> eval a + eval b
  | Mul (a, b) -> eval a * eval b
  | Neg a -> 0 - eval a
let main () = eval (Add (Mul (Num 3, Num 4), Neg (Add (Num 1, Num 2))))
`,
		want: 9,
	},
	{
		name: "phantom-thunk-reps",
		src: `
let make_thunk x =
  let th = fun () -> (let _ = [x; x] in 42) in
  th
let main () =
  let t1 = make_thunk 5 in
  let t2 = make_thunk true in
  t1 () + t2 ()
`,
		want: 84,
	},
	{
		name: "church-like-stress",
		src: `
let rec iterate n f x = if n = 0 then x else iterate (n - 1) f (f x)
let main () = iterate 50 (fun x -> x + 2) 0
`,
		want: 100,
	},
	{
		name: "print-output",
		src: `
let main () =
  print_string "sum=";
  print_int (1 + 2);
  print_newline ();
  print_bool true;
  0
`,
		want:   0,
		output: "sum=3\ntrue",
	},
	{
		name: "deep-recursion-lists",
		src: `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = sum (upto 300)
`,
		want:    45150,
		minHeap: 4096,
	},
	{
		name: "tuple-nesting",
		src: `
let main () =
  let p = ((1, 2), (3, (4, 5))) in
  match p with
  | ((a, b), (c, (d, e))) -> a + b * 10 + c * 100 + d * 1000 + e * 10000
`,
		want: 54321,
	},
	{
		name: "seq-and-unit",
		src: `
let r = ref 10
let bump n = r := !r + n
let main () =
  bump 1; bump 2; bump 3; !r
`,
		want: 16,
	},
	{
		name: "shadowing",
		src: `
let x = 1
let main () =
  let x = x + 10 in
  let x = x * 2 in
  x
`,
		want: 22,
	},
	{
		name: "list-of-closures-gc",
		src: `
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec apply_each fs x = match fs with | [] -> x | f :: r -> apply_each r (f x)
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let main () =
  let fs = map (fun k -> fun x -> x + k) (upto 30) in
  apply_each fs 0
`,
		want:    465,
		minHeap: 2048,
	},
}

func TestAllStrategiesAgree(t *testing.T) {
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, strat := range Strategies {
				heapWords := 512
				if tc.minHeap > heapWords {
					heapWords = tc.minHeap
				}
				res, err := Run(tc.src, Options{
					Strategy:  strat,
					HeapWords: heapWords,
					MaxSteps:  50_000_000,
				})
				if err != nil {
					t.Fatalf("[%v] run: %v", strat, err)
				}
				if res.Value != tc.want {
					t.Errorf("[%v] result = %d, want %d", strat, res.Value, tc.want)
				}
				if tc.output != "" && res.Output != tc.output {
					t.Errorf("[%v] output = %q, want %q", strat, res.Output, tc.output)
				}
			}
		})
	}
}

// TestCollectionsActuallyHappen guards against a quietly oversized heap
// making the battery vacuous.
func TestCollectionsActuallyHappen(t *testing.T) {
	// Bounded recursion depth (so even the trace-everything Appel mode
	// fits) but large cumulative allocation, forcing several collections
	// under every strategy.
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec once n acc = if n = 0 then acc else once (n - 1) (acc + sum (upto 20))
let rec outer k acc = if k = 0 then acc else outer (k - 1) (acc + once 25 0)
let main () = outer 20 0
`
	for _, strat := range Strategies {
		res, err := Run(src, Options{Strategy: strat, HeapWords: 4096})
		if err != nil {
			t.Fatalf("[%v] run: %v", strat, err)
		}
		if res.HeapStats.Collections == 0 {
			t.Errorf("[%v] no collections happened; the test heap is too large", strat)
		}
		if want := int64(20 * 25 * 210); res.Value != want {
			t.Errorf("[%v] result = %d, want %d", strat, res.Value, want)
		}
	}
}

func TestHeapExhaustionReported(t *testing.T) {
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec length xs = match xs with | [] -> 0 | _ :: r -> 1 + length r
let main () = length (upto 10000)
`
	_, err := Run(src, Options{Strategy: gc.StratCompiled, HeapWords: 256})
	if err == nil {
		t.Fatal("expected heap exhaustion")
	}
	if !strings.Contains(err.Error(), "heap exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMatchFailureReported(t *testing.T) {
	src := `
let head xs = match xs with | x :: _ -> x
let main () = head []
`
	_, err := Run(src, Options{Strategy: gc.StratCompiled})
	if err == nil || !strings.Contains(err.Error(), "match failure") {
		t.Fatalf("expected match failure, got %v", err)
	}
}

func TestTaggedIntWidth(t *testing.T) {
	// Tag-free integers use the full 64-bit word; tagged integers lose one
	// bit and wrap at 63 (the paper's "larger integers can be represented
	// without multi-word representations" claim).
	src := `
let main () =
  let big = 4611686018427387903 in
  big + big
`
	free, err := Run(src, Options{Strategy: gc.StratCompiled})
	if err != nil {
		t.Fatalf("tagfree: %v", err)
	}
	tagged, err := Run(src, Options{Strategy: gc.StratTagged})
	if err != nil {
		t.Fatalf("tagged: %v", err)
	}
	want := int64(4611686018427387903) * 2
	if free.Value != want {
		t.Errorf("tag-free: %d, want %d", free.Value, want)
	}
	if tagged.Value == want {
		t.Errorf("tagged 63-bit arithmetic should wrap for this value; got exact %d", tagged.Value)
	}
}

func TestGCWordElisionStats(t *testing.T) {
	src := `
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
let main () = fib 15
`
	res, err := Run(src, Options{Strategy: gc.StratCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anal.DirectCallSites == 0 {
		t.Fatal("no direct call sites counted")
	}
	// fib never allocates: every one of its call sites should lose its
	// gc_word (§5.1).
	if res.Anal.ElidedSites == 0 {
		t.Errorf("fib call sites should be proven GC-free; stats: %+v", res.Anal)
	}
}

func TestLivenessAblationRetainsMore(t *testing.T) {
	// With liveness disabled, dead slots stay in frame maps and the
	// collector retains more (the §5.2 claim, experiment E3).
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec once n acc = if n = 0 then acc else once (n - 1) (acc + sum (upto 20))
let rec outer k acc = if k = 0 then acc else outer (k - 1) (acc + once 10 0)
let consume () =
  let big = upto 400 in
  let s = sum big in
  s + outer 50 0
let main () = consume ()
`
	precise, err := Run(src, Options{Strategy: gc.StratCompiled, HeapWords: 2048})
	if err != nil {
		t.Fatalf("precise: %v", err)
	}
	sloppy, err := Run(src, Options{Strategy: gc.StratCompiled, HeapWords: 2048, DisableLiveness: true})
	if err != nil {
		t.Fatalf("no-liveness: %v", err)
	}
	if precise.Value != sloppy.Value {
		t.Fatalf("ablation changed the result: %d vs %d", precise.Value, sloppy.Value)
	}
	if sloppy.HeapStats.WordsCopied <= precise.HeapStats.WordsCopied {
		t.Errorf("liveness should reduce copied words: precise=%d no-liveness=%d",
			precise.HeapStats.WordsCopied, sloppy.HeapStats.WordsCopied)
	}
}

// TestRecursivePolymorphicTraceSoundness is the regression test for the
// identity-instantiation bug: deep recursive polymorphic frames hold
// pending heap results that the collector must trace via type arguments
// passed to every recursive frame. Mark/sweep exposes a miss immediately
// (freed blocks are reused); copying can mask it for one collection.
func TestRecursivePolymorphicTraceSoundness(t *testing.T) {
	src := `
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec foldl f acc xs = match xs with | [] -> acc | x :: r -> foldl f (f acc x) r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let round () =
  let ints = map (fun x -> x * 3) (upto 20) in
  let nested = map (fun x -> [x; x]) (upto 6) in
  foldl (fun a b -> a + b) 0 ints
    + foldl (fun a l -> a + (match l with | x :: _ -> x | [] -> 0)) 0 nested
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 6 0
`
	const want = 6 * (630 + 21)
	for _, ms := range []bool{false, true} {
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel} {
			res, err := Run(src, Options{Strategy: strat, HeapWords: 1024, MarkSweep: ms})
			if err != nil {
				t.Fatalf("[%v ms=%v] %v", strat, ms, err)
			}
			if res.Value != want {
				t.Errorf("[%v ms=%v] = %d, want %d", strat, ms, res.Value, want)
			}
		}
	}
}

// TestRepNeedingFunctionThroughAliasAndValue exercises the rep-passing
// machinery through indirections: a phantom-closure-creating function
// called directly, through a local alias, and as a first-class value.
func TestRepNeedingFunctionThroughAliasAndValue(t *testing.T) {
	src := `
let make_thunk x =
  let th = fun () -> (let _ = [x; x] in 1) in
  th
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec total ts = match ts with | [] -> 0 | t :: r -> t () + total r
let blip n = (let _ = [n; n] in 0)
let rec churn n = if n = 0 then 0 else blip n + churn (n - 1)
let main () =
  let alias = make_thunk in
  let t1 = alias (1, 2) in
  let t2 = make_thunk true in
  let many = map make_thunk [10; 20; 30] in
  let _ = churn 200 in
  t1 () + t2 () + total many
`
	for _, strat := range Strategies {
		for _, ms := range []bool{false, true} {
			if ms && strat == gc.StratTagged {
				continue
			}
			res, err := Run(src, Options{Strategy: strat, HeapWords: 512, MarkSweep: ms})
			if err != nil {
				t.Fatalf("[%v ms=%v] %v", strat, ms, err)
			}
			if res.Value != 5 {
				t.Errorf("[%v ms=%v] = %d, want 5", strat, ms, res.Value)
			}
			if !ms && res.HeapStats.Collections == 0 {
				t.Errorf("[%v] expected collections at this heap size", strat)
			}
		}
	}
}
