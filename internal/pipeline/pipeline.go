// Package pipeline assembles the full compiler and runtime: parse → type
// check → lower → GC-possible analysis → code generation → execution under
// a chosen collection strategy. It is the public entry point used by the
// command-line tools, the examples and the benchmark harness.
package pipeline

import (
	"fmt"
	"time"

	"tagfree/internal/code"
	"tagfree/internal/compile/codegen"
	"tagfree/internal/compile/gcanal"
	"tagfree/internal/compile/lower"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/ir"
	"tagfree/internal/mlang/exhaust"
	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/types"
	"tagfree/internal/vm"
)

// Options configures compilation and execution.
type Options struct {
	// Strategy selects the collector (and with it the representation the
	// program is compiled for).
	Strategy gc.Strategy
	// HeapWords is the semispace size in words (default 1 << 16).
	HeapWords int
	// DisableGCWordElision keeps a gc_word on every call site even when
	// the §5.1 analysis proves it cannot collect. Required for tasking
	// (any call can become a suspension point) and used by ablations.
	DisableGCWordElision bool
	// UseCFA additionally runs the higher-order (0-CFA) GC-possible
	// refinement, eliding gc_words on closure-call sites whose every
	// possible target cannot allocate (the §5.1 "abstract interpretation"
	// extension the paper defers).
	UseCFA bool
	// DisableLiveness makes every frame map contain all pointer-bearing
	// slots (ablation for experiment E3). Note Appel mode ignores frame
	// maps entirely.
	DisableLiveness bool
	// MarkSweep runs the collector in mark/sweep discipline over a single
	// space of HeapWords words instead of semispace copying (the paper's
	// "will support mark/sweep collection as well", §2). Tag-free
	// strategies only.
	MarkSweep bool
	// SuspendAtAllocs selects the paper's first §4 suspension policy for
	// tasking runs: Rgc is checked only inside allocation routines.
	SuspendAtAllocs bool
	// Parallelism is the number of workers scanning task stacks during
	// each collection (0 or 1 = the sequential oracle). Parallel and
	// sequential collections produce bit-identical heaps; see
	// internal/gc/parallel.go.
	Parallelism int
	// DisableGCFastPath turns off the Compiled strategy's collection fast
	// path (frame-plan cache, pc→site cache, specialized trace kernels —
	// internal/gc/fastpath.go), restoring uncached per-frame resolution.
	// The differential suite's oracle configuration.
	DisableGCFastPath bool
	// MaxSteps bounds execution; 0 means effectively unbounded.
	MaxSteps int64
	// VerifyHeap runs the post-collection heap verifier after every
	// collection (structural invariants plus a typed re-walk of all
	// roots); a violation panics with *gc.VerifyError.
	VerifyHeap bool
	// Torture collects before every allocation — the heaviest fault
	// schedule, exercising every allocation site as a GC point.
	Torture bool
	// FailAllocNth fails the Nth allocation once; FailAllocEvery fails
	// every Kth. Both force the emergency-collection rung of the recovery
	// ladder deterministically.
	FailAllocNth   int64
	FailAllocEvery int64
	// GrowFactor > 1 enables the heap-growth rung of the recovery ladder;
	// MaxHeapWords (0 = unbounded) is its hard ceiling in semispace words.
	GrowFactor   float64
	MaxHeapWords int
	// WorkerDelay stalls each parallel GC worker before scanning;
	// Watchdog bounds the parallel phase, falling back to the sequential
	// oracle when exceeded. Fault-injection knobs for testing.
	WorkerDelay time.Duration
	Watchdog    time.Duration
	// NurseryWords > 0 enables a generational bump-allocated nursery of
	// NurseryWords words per young half in front of the old region(s).
	// Minor collections evacuate only the nursery, re-tracing stacks and
	// globals as usual (the paper's frame routines make that free) and
	// consulting the old→young remembered set fed by the VM's write
	// barrier. Tag-free strategies only — young objects are headerless and
	// evacuation is type-directed.
	NurseryWords int
	// PromoteAfter is the survival count at which nursery objects tenure
	// into the old region (0 = the default of 2).
	PromoteAfter int
	// TLABWords > 0 gives every task a private allocation buffer refilled
	// from the shared heap (or the nursery) in chunks of this many words
	// (-tlab N). Tasking runs only: the single-task VM path has no
	// allocation contention and is left bit-identical.
	TLABWords int
	// FailRefillsOnly restricts FailAllocNth/FailAllocEvery to TLAB refill
	// carves, so injection schedules target the refill path specifically.
	FailRefillsOnly bool
	// BudgetSteps > 0 faults any task that executes more than this many
	// instructions with a BudgetExceeded TaskFault (checked at the same
	// safe points as Rgc). Tasking runs only.
	BudgetSteps int64
	// BudgetAllocWords > 0 faults any task whose cumulative heap allocation
	// would exceed this many words. Tasking runs only.
	BudgetAllocWords int64
	// GCConcurrent arms mostly-concurrent marking (-gc-concurrent): the mark
	// phase runs in budgeted slices interleaved with mutator execution at
	// the existing safe points, bracketed by a brief root-snapshot pause and
	// a bounded final pause that re-scans the stacks and sweeps. Requires
	// MarkSweep, a tag-free typed strategy, and no nursery.
	GCConcurrent bool
	// ConcTriggerPct is the heap-occupancy watermark, in percent, that
	// starts a concurrent cycle (0 = 75).
	ConcTriggerPct int
	// ConcMarkBudget is the words marked per slice (0 = the engine default);
	// ConcMaxSlices bounds the slices per cycle before the watchdog aborts
	// to stop-the-world (0 = derived from the heap size and budget).
	ConcMarkBudget int
	ConcMaxSlices  int
	// Shards > 1 partitions the nursery into per-shard young generations
	// and the task set into shard groups (task ID mod Shards): a shard
	// whose young space fills runs a minor collection over its own tasks
	// alone, without suspending the other shards' mutators. Requires a
	// tag-free strategy and a nursery (NurseryWords > 0), and composes
	// with neither GCConcurrent nor the single-task VM path. Major
	// collections stay global (all shards, stop-the-world). Tasking runs
	// only. 0 or 1 = the unsharded heap.
	Shards int
	// ShardAssign, when non-nil, overrides the task→shard map by task ID
	// (the interleaving fuzz permutes assignments; entries are reduced mod
	// Shards). Ignored unless Shards > 1.
	ShardAssign []int
	// GCHeapLiveness (-gc-heap-liveness) arms liveness-guided tracing: the
	// compile-side heap-liveness analysis classifies, per frame slot of a
	// recursive datatype at each GC point, whether only the structure's
	// spine can ever be walked again, and eligible collections replace the
	// provably dead element fields with a sentinel instead of retaining
	// them (internal/gc/liveness.go). Compiled strategy only; ineligible
	// collections (other strategies, fast path off, parallel trace, shard
	// minors, concurrent cycles) degrade to full tracing with the refusal
	// counted in Result.Liveness.
	GCHeapLiveness bool
	// PoisonPruned (-poison-pruned) turns any mutator load of the pruning
	// sentinel into a deterministic runtime error — the debug mode that
	// makes heap-liveness verdicts falsifiable. Implies nothing unless
	// GCHeapLiveness is also set (without pruning the sentinel never
	// enters the heap).
	PoisonPruned bool
}

// validateConcurrent checks the -gc-concurrent gating common to both
// execution paths: the incremental marker only exists for the mark/sweep
// discipline, needs typed frame maps (the tagged baseline has none of the
// store descriptors the barrier relies on), and composes with neither the
// nursery (minor cycles move objects mid-mark) nor the parallel markers.
func (o Options) validateConcurrent() error {
	if !o.GCConcurrent {
		return nil
	}
	if !o.MarkSweep {
		return fmt.Errorf("-gc-concurrent requires the mark/sweep discipline (-marksweep)")
	}
	if o.Strategy == gc.StratTagged {
		return fmt.Errorf("-gc-concurrent requires a tag-free strategy")
	}
	if o.NurseryWords > 0 {
		return fmt.Errorf("-gc-concurrent does not compose with the generational nursery")
	}
	if o.Parallelism > 1 {
		return fmt.Errorf("-gc-concurrent does not compose with parallel marking (-par)")
	}
	return nil
}

// validateShards checks the -shards gating: per-shard minor collection is
// the nursery's machinery partitioned by task group, so it needs the
// typed generational substrate (tag-free strategy + nursery) and cannot
// compose with the concurrent marker (whose cycles assume one global
// collection epoch).
func (o Options) validateShards() error {
	if o.Shards <= 1 {
		return nil
	}
	if o.Strategy == gc.StratTagged {
		return fmt.Errorf("-shards requires a tag-free strategy")
	}
	if o.NurseryWords <= 0 {
		return fmt.Errorf("-shards requires a generational nursery (-gc-nursery)")
	}
	if o.GCConcurrent {
		return fmt.Errorf("-shards does not compose with -gc-concurrent")
	}
	return nil
}

// faultPlan assembles the fault-injection plan implied by the options, or
// nil when no fault knob is set.
func (o Options) faultPlan() *gc.FaultPlan {
	if !o.Torture && o.FailAllocNth == 0 && o.FailAllocEvery == 0 &&
		o.WorkerDelay == 0 && o.Watchdog == 0 {
		return nil
	}
	return &gc.FaultPlan{
		Torture:     o.Torture,
		FailNth:     o.FailAllocNth,
		FailEvery:   o.FailAllocEvery,
		WorkerDelay: o.WorkerDelay,
		Watchdog:    o.Watchdog,
		RefillOnly:  o.FailRefillsOnly,
	}
}

// Result is the outcome of running a program.
type Result struct {
	// Raw is main's result word; Value is its integer decoding.
	Raw    code.Word
	Value  int64
	Output string

	VMStats   vm.Stats
	GCStats   gc.Stats
	HeapStats heap.Stats
	// Liveness counts liveness-guided pruning activity and degrades
	// (all zero unless Options.GCHeapLiveness).
	Liveness gc.LivenessStats
	// Telemetry is the collector's per-collection record stream (render
	// with TelemetryTable / TelemetryJSON).
	Telemetry *gc.Telemetry
	Anal      gcanal.Stats
	// MetadataWords is the collector's GC metadata footprint.
	MetadataWords int64
	// DescNodes is the number of unique descriptor nodes in the program.
	DescNodes int
	// CodeWords is the generated code size.
	CodeWords int
}

// Frontend runs parse, type check and lowering, returning the analyzed IR.
func Frontend(src string) (*ir.Program, *types.Info, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, nil, err
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		return nil, nil, err
	}
	return irp, info, nil
}

// Build compiles source to a program for the given strategy's
// representation, running the GC-possible analysis first.
func Build(src string, opts Options) (*code.Program, *gcanal.Result, error) {
	irp, _, err := Frontend(src)
	if err != nil {
		return nil, nil, err
	}
	var anal *gcanal.Result
	if opts.UseCFA {
		anal = gcanal.AnalyzeCFA(irp)
	} else {
		anal = gcanal.Analyze(irp)
	}
	if opts.DisableGCWordElision {
		for _, f := range irp.Funcs {
			for _, r := range ir.Rhss(f) {
				switch call := r.(type) {
				case *ir.RCall:
					call.CanGC = true
				case *ir.RCallClos:
					call.CanGC = true
				}
			}
		}
	}
	// Heap liveness runs after the CanGC refinement (and the elision
	// override) so its per-site verdicts line up with the sites codegen
	// will actually emit.
	var hl *gcanal.HeapLiveness
	if opts.GCHeapLiveness {
		hl = gcanal.AnalyzeHeapLiveness(irp)
	}
	prog, err := codegen.CompileWith(irp, opts.Strategy.CompatibleRepr(), hl)
	if err != nil {
		return nil, nil, err
	}
	if opts.DisableLiveness {
		widenFrameMaps(prog)
	}
	return prog, anal, nil
}

// widenFrameMaps replaces every site's live map with the owning function's
// full slot map (the E3 ablation: collection without liveness).
func widenFrameMaps(prog *code.Program) {
	for _, si := range prog.Sites {
		fi := prog.Funcs[si.Func]
		si.Live = fi.AllSlots
	}
}

// Run compiles and executes a program.
func Run(src string, opts Options) (*Result, error) {
	prog, anal, err := Build(src, opts)
	if err != nil {
		return nil, err
	}
	return RunProgram(prog, anal, opts)
}

// RunProgram executes an already compiled program.
func RunProgram(prog *code.Program, anal *gcanal.Result, opts Options) (*Result, error) {
	if prog.MainFunc < 0 {
		return nil, fmt.Errorf("program has no main function")
	}
	if opts.Shards > 1 {
		return nil, fmt.Errorf("-shards requires the tasking runtime (-tasks); the single-task VM has one mutator and nothing to overlap")
	}
	semi := opts.HeapWords
	if semi == 0 {
		semi = 1 << 16
	}
	// Appel and tagged modes must zero-fill frames; liveness-disabled maps
	// must also only see initialized slots.
	var h *heap.Heap
	if opts.MarkSweep {
		if opts.Strategy == gc.StratTagged {
			return nil, fmt.Errorf("mark/sweep is implemented for the tag-free strategies")
		}
		h = heap.NewMarkSweep(prog.Repr, semi)
	} else {
		h = heap.New(prog.Repr, semi)
	}
	if opts.NurseryWords > 0 {
		if opts.Strategy == gc.StratTagged {
			return nil, fmt.Errorf("the generational nursery requires a tag-free strategy")
		}
		promote := opts.PromoteAfter
		if promote == 0 {
			promote = 2
		}
		// Must run before the VM's first allocation: the nursery re-lays
		// the heap out with the young halves in front of the old region.
		h.EnableNursery(opts.NurseryWords, promote)
	}
	m, err := vm.NewWith(prog, h, opts.Strategy)
	if err != nil {
		return nil, err
	}
	if opts.DisableLiveness {
		m.SetZeroFill(true)
	}
	if opts.MaxSteps > 0 {
		m.MaxSteps = opts.MaxSteps
	}
	m.Col.Parallelism = opts.Parallelism
	m.Col.DisableFastPath = opts.DisableGCFastPath
	m.Col.Faults = opts.faultPlan()
	if opts.VerifyHeap {
		m.Col.Verify = true
		m.Heap.SetVerify(true)
	}
	m.GrowFactor = opts.GrowFactor
	m.MaxHeapWords = opts.MaxHeapWords
	if err := opts.validateConcurrent(); err != nil {
		return nil, err
	}
	m.GCConcurrent = opts.GCConcurrent
	m.ConcTriggerPct = opts.ConcTriggerPct
	m.Col.ConcMarkBudget = opts.ConcMarkBudget
	m.Col.ConcMaxSlices = opts.ConcMaxSlices
	m.Col.HeapLiveness = opts.GCHeapLiveness
	m.PoisonPruned = opts.PoisonPruned
	raw, err := m.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Raw:           raw,
		Value:         code.DecodeInt(prog.Repr, raw),
		Output:        m.Out.String(),
		VMStats:       m.Stats,
		GCStats:       m.Col.Stats,
		HeapStats:     m.Heap.Stats,
		Liveness:      m.Col.Liveness,
		Telemetry:     &m.Col.Telem,
		MetadataWords: m.Col.MetadataSize,
		DescNodes:     prog.DescNodes,
		CodeWords:     len(prog.Code),
	}
	if anal != nil {
		res.Anal = anal.Stats
	}
	return res, nil
}

// Warnings type-checks a program and returns its pattern-match
// exhaustiveness and redundancy diagnostics (compilation proceeds
// regardless; an unmatched case is a runtime trap).
func Warnings(src string) ([]exhaust.Warning, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, err
	}
	return exhaust.Check(prog, info), nil
}

// Strategies lists all four collection strategies with stable names, in
// presentation order for the experiment tables.
var Strategies = []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel, gc.StratTagged}

// MustRun is a helper for examples: it runs a program and panics on error.
func MustRun(src string, opts Options) *Result {
	r, err := Run(src, opts)
	if err != nil {
		panic(fmt.Sprintf("pipeline.MustRun: %v", err))
	}
	return r
}
