package pipeline

import (
	"strings"
	"testing"

	"tagfree/internal/gc"
)

func eval(t *testing.T, src string) *EvalResult {
	t.Helper()
	res, err := Eval(src, Options{Strategy: gc.StratCompiled, HeapWords: 2048})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return res
}

func TestRenderBaseValues(t *testing.T) {
	cases := []struct{ src, value, typ string }{
		{`let main () = 42`, "42", "int"},
		{`let main () = 0 - 7`, "-7", "int"},
		{`let main () = 1 < 2`, "true", "bool"},
		{`let main () = ()`, "()", "unit"},
		{`let main () = "hi"`, `"hi"`, "string"},
	}
	for _, c := range cases {
		res := eval(t, c.src)
		if res.Value != c.value || res.Type != c.typ {
			t.Errorf("%s: got %s : %s, want %s : %s", c.src, res.Value, res.Type, c.value, c.typ)
		}
	}
}

func TestRenderStructures(t *testing.T) {
	cases := []struct{ src, value, typ string }{
		{`let main () = [1; 2; 3]`, "[1; 2; 3]", "int list"},
		{`let main () = []`, "[]", "'a list"},
		{`let main () = (1, true)`, "(1, true)", "int * bool"},
		{`let main () = ref 9`, "ref (9)", "int ref"},
		{`let main () = [(1, false)]`, "[(1, false)]", "(int * bool) list"},
		{`let main () = [[1]; []]`, "[[1]; []]", "int list list"},
		{`let main () = fun x -> x`, "<fun>", "'a -> 'a"},
	}
	for _, c := range cases {
		res := eval(t, c.src)
		if res.Value != c.value || res.Type != c.typ {
			t.Errorf("%s: got %s : %s, want %s : %s", c.src, res.Value, res.Type, c.value, c.typ)
		}
	}
}

func TestRenderDatatypes(t *testing.T) {
	res := eval(t, `
type shape = Point | Circle of int | Rect of int * int
let main () = [Point; Circle 3; Rect (4, 5)]
`)
	if res.Value != "[Point; Circle (3); Rect (4, 5)]" {
		t.Errorf("got %s", res.Value)
	}
	if res.Type != "shape list" {
		t.Errorf("type %s", res.Type)
	}

	res = eval(t, `
type tree = Leaf | Node of tree * int * tree
let main () = Node (Node (Leaf, 1, Leaf), 2, Leaf)
`)
	if res.Value != "Node (Node (Leaf, 1, Leaf), 2, Leaf)" {
		t.Errorf("got %s", res.Value)
	}
}

func TestRenderSurvivesCollection(t *testing.T) {
	// The rendered structure is built across several collections; the
	// renderer reads the post-GC heap.
	res, err := Eval(`
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec churn n = if n = 0 then 0 else (let _ = upto 20 in churn (n - 1))
let main () =
  let keep = upto 5 in
  let _ = churn 50 in
  keep
`, Options{Strategy: gc.StratCompiled, HeapWords: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "[5; 4; 3; 2; 1]" {
		t.Errorf("got %s", res.Value)
	}
	if res.Result.HeapStats.Collections == 0 {
		t.Error("test should have collected")
	}
}

func TestRenderLongListTruncates(t *testing.T) {
	res := eval(t, `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let main () = upto 50
`)
	if len(res.Value) > 200 {
		t.Errorf("long list not truncated: %s", res.Value)
	}
}

// ---------------------------------------------------------------------------
// Telemetry golden tests. OmitTiming strips every pause field, so the
// emitted table and JSON depend only on the program, strategy and heap
// discipline — fully deterministic.
// ---------------------------------------------------------------------------

const telemetrySrc = `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (upto 30)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 24 0
`

func TestTelemetryTableGoldenCopying(t *testing.T) {
	res, err := Run(telemetrySrc, Options{Strategy: gc.StratCompiled, HeapWords: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 11160 {
		t.Fatalf("value = %d, want 11160", res.Value)
	}
	got := TelemetryTable(res.Telemetry, TelemetryOptions{OmitTiming: true})
	want := `gc telemetry: strategy=compiled kind=copying collections=5
seq  par  before  live  surv%  words  frames  slots  flhit%
  0    1     256    16    6.2     16      29      1       -
  1    1     256    16    6.2     16      33      1       -
  2    1     256    16    6.2     16      37      1       -
  3    1     256    16    6.2     16      41      1       -
  4    1     256    16    6.2     16      45      1       -
survivor histogram: 0-10%=5
fast path: plan-hits=179 plan-misses=6 site-cache-hits=179 kernel-words=80
`
	if got != want {
		t.Errorf("table mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestTelemetryTableGoldenMarkSweep(t *testing.T) {
	res, err := Run(telemetrySrc, Options{Strategy: gc.StratCompiled, HeapWords: 256, MarkSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	got := TelemetryTable(res.Telemetry, TelemetryOptions{OmitTiming: true})
	// The free-list hit rate starts at 0 (first interval allocates from the
	// pristine bump region) then goes to 100: after the first sweep every
	// allocation recycles an exact-size free block.
	want := `gc telemetry: strategy=compiled kind=mark/sweep collections=5
seq  par  before  live  surv%  words  frames  slots  flhit%
  0    1     256    16    6.2     16      29      1     0.0
  1    1     256    16    6.2     16      33      1   100.0
  2    1     256    16    6.2     16      37      1   100.0
  3    1     256    16    6.2     16      41      1   100.0
  4    1     256    16    6.2     16      45      1   100.0
survivor histogram: 0-10%=5
fast path: plan-hits=179 plan-misses=6 site-cache-hits=179 kernel-words=80
`
	if got != want {
		t.Errorf("table mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTelemetryTableGoldenGenerational pins the generational columns: with
// a nursery every collection carries a kind, and the table grows kind,
// prom, rem and barrier columns. The program promotes its long-lived ref
// cell (seq 1), then repoints it at a fresh young list — one barrier hit
// and one remembered entry (seq 4) — whose words tenure at seq 5.
func TestTelemetryTableGoldenGenerational(t *testing.T) {
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec churn n = if n = 0 then 0 else (let _ = upto 20 in churn (n - 1))
let main () =
  let keep = ref [0] in
  let _ = churn 5 in
  let _ = (keep := upto 10) in
  let _ = churn 5 in
  sum (!keep)
`
	res, err := Run(src, Options{Strategy: gc.StratCompiled, HeapWords: 512, NurseryWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 55 {
		t.Fatalf("value = %d, want 55", res.Value)
	}
	got := TelemetryTable(res.Telemetry, TelemetryOptions{OmitTiming: true})
	want := `gc telemetry: strategy=compiled kind=copying collections=9
seq   kind  par  before  live  surv%  words  frames  slots  flhit%  prom  rem  barrier
  0  minor    1      63    23   36.5     23      13      2       -     0    0        0
  1  minor    1      63    23   36.5     23      14      2       -     3    0        0
  2  minor    1      67    27   40.3     24      13      2       -     0    0        0
  3  minor    1      67    27   40.3     24      14      2       -     0    0        0
  4  minor    1      67    27   40.3     24      20      3       -     0    1        1
  5  minor    1      67    27   40.3     24      21      3       -    20    0        0
  6  minor    1      87    47   54.0     24      12      2       -     0    0        0
  7  minor    1      87    47   54.0     24      13      2       -     0    0        0
  8  minor    1      87    47   54.0     24      14      2       -     0    0        0
survivor histogram: 30-40%=2 40-50%=4 50-60%=3
fast path: plan-hits=128 plan-misses=6 site-cache-hits=128 kernel-words=168
`
	if got != want {
		t.Errorf("table mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTelemetryTableGoldenTLAB pins the allocation-buffer columns: with
// -tlab set on a tasking run, each record grows refill/fast/shared/waste
// deltas and the summary gains the cumulative tlab line with the
// shared-acquisition ratio. With -tlab 0 none of this renders (pinned by
// the other goldens and TestTLABDisabledLeavesTelemetryClean).
func TestTelemetryTableGoldenTLAB(t *testing.T) {
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec churn n = if n = 0 then 0 else (let _ = upto 20 in churn (n - 1))
let task_a () = let _ = churn 6 in sum (upto 10)
let task_b () = let _ = churn 6 in sum (upto 20)
`
	res, err := RunTasks(src, []string{"task_a", "task_b"}, Options{
		Strategy: gc.StratCompiled, HeapWords: 512, TLABWords: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 55 || res.Values[1] != 210 {
		t.Fatalf("values = %v, want [55 210]", res.Values)
	}
	got := TelemetryTable(res.Telemetry, TelemetryOptions{OmitTiming: true})
	want := `gc telemetry: strategy=compiled kind=copying collections=1
seq  par  before  live  surv%  words  frames  slots  flhit%  refills  fast  shared  waste
  0    1     496    16    3.2     16       8      1       -       16   248      17      0
survivor histogram: 0-10%=1
fast path: plan-hits=4 plan-misses=4 site-cache-hits=4 kernel-words=16
tlab: refills=19 refill-words=608 fast-allocs=270 shared-allocs=20 waste-words=28 returned-words=40 shared-ratio=0.069
resilience: injected-ooms=0 torture-collections=0 emergency-collections=1 ladder-recovered=1 ladder-exhausted=0 heap-growths=0 watchdog-trips=0 serial-fallbacks=0 task-faults=0 budget-faults=0 conc-aborts=0
`
	if got != want {
		t.Errorf("table mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestTelemetryJSONGolden(t *testing.T) {
	src := strings.Replace(telemetrySrc, "loop 24 0", "loop 6 0", 1)
	res, err := Run(src, Options{Strategy: gc.StratCompiled, HeapWords: 256})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TelemetryJSON(res.Telemetry, TelemetryOptions{OmitTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "strategy": "compiled",
  "kind": "copying",
  "records": [
    {
      "seq": 0,
      "pause_ns": 0,
      "parallelism": 1,
      "used_before": 256,
      "live_words": 16,
      "survivor_pct": 6.25,
      "words_visited": 16,
      "frames_traced": 29,
      "slots_traced": 1,
      "plan_hits": 23,
      "plan_misses": 6,
      "site_cache_hits": 23,
      "kernel_words": 16,
      "free_list_hit_pct": -1,
      "tasks": [
        {
          "task": 0,
          "frames": 29,
          "slots": 1,
          "objects": 8,
          "words": 16
        }
      ]
    }
  ],
  "pause_hist": [
    0,
    0,
    0,
    0,
    0,
    0,
    0
  ],
  "survivor_hist": [
    1,
    0,
    0,
    0,
    0,
    0,
    0,
    0,
    0,
    0
  ]
}`
	if string(got) != want {
		t.Errorf("json mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The sanitized copy must not leak back: the live Telemetry keeps its
	// real pause numbers.
	total := res.Telemetry.TotalPauseNS()
	if len(res.Telemetry.Records) != 1 {
		t.Fatalf("expected 1 collection, got %d", len(res.Telemetry.Records))
	}
	_ = total // pauses may legitimately round to 0ns on coarse clocks
}
