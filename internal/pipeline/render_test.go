package pipeline

import (
	"testing"

	"tagfree/internal/gc"
)

func eval(t *testing.T, src string) *EvalResult {
	t.Helper()
	res, err := Eval(src, Options{Strategy: gc.StratCompiled, HeapWords: 2048})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return res
}

func TestRenderBaseValues(t *testing.T) {
	cases := []struct{ src, value, typ string }{
		{`let main () = 42`, "42", "int"},
		{`let main () = 0 - 7`, "-7", "int"},
		{`let main () = 1 < 2`, "true", "bool"},
		{`let main () = ()`, "()", "unit"},
		{`let main () = "hi"`, `"hi"`, "string"},
	}
	for _, c := range cases {
		res := eval(t, c.src)
		if res.Value != c.value || res.Type != c.typ {
			t.Errorf("%s: got %s : %s, want %s : %s", c.src, res.Value, res.Type, c.value, c.typ)
		}
	}
}

func TestRenderStructures(t *testing.T) {
	cases := []struct{ src, value, typ string }{
		{`let main () = [1; 2; 3]`, "[1; 2; 3]", "int list"},
		{`let main () = []`, "[]", "'a list"},
		{`let main () = (1, true)`, "(1, true)", "int * bool"},
		{`let main () = ref 9`, "ref (9)", "int ref"},
		{`let main () = [(1, false)]`, "[(1, false)]", "(int * bool) list"},
		{`let main () = [[1]; []]`, "[[1]; []]", "int list list"},
		{`let main () = fun x -> x`, "<fun>", "'a -> 'a"},
	}
	for _, c := range cases {
		res := eval(t, c.src)
		if res.Value != c.value || res.Type != c.typ {
			t.Errorf("%s: got %s : %s, want %s : %s", c.src, res.Value, res.Type, c.value, c.typ)
		}
	}
}

func TestRenderDatatypes(t *testing.T) {
	res := eval(t, `
type shape = Point | Circle of int | Rect of int * int
let main () = [Point; Circle 3; Rect (4, 5)]
`)
	if res.Value != "[Point; Circle (3); Rect (4, 5)]" {
		t.Errorf("got %s", res.Value)
	}
	if res.Type != "shape list" {
		t.Errorf("type %s", res.Type)
	}

	res = eval(t, `
type tree = Leaf | Node of tree * int * tree
let main () = Node (Node (Leaf, 1, Leaf), 2, Leaf)
`)
	if res.Value != "Node (Node (Leaf, 1, Leaf), 2, Leaf)" {
		t.Errorf("got %s", res.Value)
	}
}

func TestRenderSurvivesCollection(t *testing.T) {
	// The rendered structure is built across several collections; the
	// renderer reads the post-GC heap.
	res, err := Eval(`
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec churn n = if n = 0 then 0 else (let _ = upto 20 in churn (n - 1))
let main () =
  let keep = upto 5 in
  let _ = churn 50 in
  keep
`, Options{Strategy: gc.StratCompiled, HeapWords: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "[5; 4; 3; 2; 1]" {
		t.Errorf("got %s", res.Value)
	}
	if res.Result.HeapStats.Collections == 0 {
		t.Error("test should have collected")
	}
}

func TestRenderLongListTruncates(t *testing.T) {
	res := eval(t, `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let main () = upto 50
`)
	if len(res.Value) > 200 {
		t.Errorf("long list not truncated: %s", res.Value)
	}
}
