package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/vm"
	"tagfree/internal/workloads"
)

// Nursery differential suite. The generational collector must be
// observationally identical to the plain collector: same program outputs,
// same results, and — after a final tenure-all collection empties the
// nursery — the same live heap. Every run executes with the heap verifier
// on, whose typed re-walk doubles as a missed-write-barrier detector: an
// old→young edge the barrier failed to remember leaves a stale pointer
// into the evacuated half, which CheckLive reports as a violation.

// nurseryOutcome is one configuration's observable behavior.
type nurseryOutcome struct {
	output string
	value  int64
	// liveWords is the resident live set after a final tenure-all full
	// collection over the globals (the program has returned, so globals
	// are the only roots). Survivors a full old region kept young are
	// still counted via YoungUsed.
	liveWords int64
	col       *gc.Collector
}

// nurseryRun compiles and runs src under one nursery configuration with
// the verifier enabled, then forces the final tenure-all collection so
// live sets are comparable across configurations.
func nurseryRun(t *testing.T, src string, strat gc.Strategy, hw int, ms bool, par, nurseryWords, promote int) nurseryOutcome {
	t.Helper()
	prog, _, err := Build(src, Options{Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	var h *heap.Heap
	if ms {
		h = heap.NewMarkSweep(prog.Repr, 2*hw)
	} else {
		h = heap.New(prog.Repr, hw)
	}
	if nurseryWords > 0 {
		h.EnableNursery(nurseryWords, promote)
	}
	m, err := vm.NewWith(prog, h, strat)
	if err != nil {
		t.Fatal(err)
	}
	m.Col.Parallelism = par
	m.Col.Verify = true
	m.Heap.SetVerify(true)
	m.MaxSteps = 500_000_000
	raw, err := m.Run()
	if err != nil {
		t.Fatalf("nursery=%d: %v", nurseryWords, err)
	}
	m.Col.Parallelism = 1
	m.Heap.SetTenureAll(true)
	m.Col.CollectFull(nil, m.Globals)
	m.Heap.SetTenureAll(false)
	live := m.Heap.Stats.LiveAfterLastGC + int64(m.Heap.YoungUsed())
	return nurseryOutcome{
		output:    m.Out.String(),
		value:     code.DecodeInt(prog.Repr, raw),
		liveWords: live,
		col:       m.Col,
	}
}

// TestDifferentialNurseryWorkloads pins nursery-on ≡ nursery-off over the
// whole workload corpus, across both disciplines, sequential and parallel
// collection, and every tag-free strategy.
func TestDifferentialNurseryWorkloads(t *testing.T) {
	for _, w := range workloads.All {
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel} {
			for _, ms := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/ms=%v", w.Name, strat, ms)
				t.Run(name, func(t *testing.T) {
					for _, par := range []int{1, 4} {
						off := nurseryRun(t, w.Source, strat, w.HeapWords, ms, par, 0, 0)
						on := nurseryRun(t, w.Source, strat, w.HeapWords, ms, par, 256, 2)
						if off.value != w.Expect {
							t.Fatalf("par=%d nursery off: result %d, want %d", par, off.value, w.Expect)
						}
						if on.value != off.value || on.output != off.output {
							t.Fatalf("par=%d: nursery changed observable behavior: value %d vs %d, output %q vs %q",
								par, on.value, off.value, on.output, off.output)
						}
						if on.liveWords != off.liveWords {
							t.Fatalf("par=%d: final live heap diverges: nursery %d words, plain %d words",
								par, on.liveWords, off.liveWords)
						}
					}
				})
			}
		}
	}
}

// TestDifferentialNurseryTasks runs the multi-task corpus with and without
// the nursery under both disciplines and parallel collection, requiring
// identical per-task results and outputs. taskmutate is the write
// barrier's antagonist: its whole point is repointing long-lived cells at
// fresh nursery lists.
func TestDifferentialNurseryTasks(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, ms := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/ms=%v", w.Name, ms), func(t *testing.T) {
				for _, par := range []int{1, 4} {
					var results [][]int64
					var outputs []string
					for _, nursery := range []int{0, 256} {
						res, err := RunTasks(w.Source, w.Entries, Options{
							Strategy:     gc.StratCompiled,
							HeapWords:    w.HeapWords,
							MarkSweep:    ms,
							Parallelism:  par,
							VerifyHeap:   true,
							NurseryWords: nursery,
						})
						if err != nil {
							t.Fatalf("par=%d nursery=%d: %v", par, nursery, err)
						}
						for i, e := range w.Expect {
							if res.Values[i] != e {
								t.Fatalf("par=%d nursery=%d: task %d = %d, want %d",
									par, nursery, i, res.Values[i], e)
							}
						}
						results = append(results, res.Values)
						outputs = append(outputs, strings.Join(res.Outputs, "\x00"))
					}
					if fmt.Sprint(results[0]) != fmt.Sprint(results[1]) || outputs[0] != outputs[1] {
						t.Fatalf("par=%d: nursery changed task results", par)
					}
				}
			})
		}
	}
}

// TestNurseryDisabledIsIdentical pins the -gc-nursery=0 escape hatch: with
// the knob off, the pipeline's collection schedule and telemetry match
// today's behavior exactly (no minor records, no generational counters).
func TestNurseryDisabledIsIdentical(t *testing.T) {
	w, _ := workloads.ByName("listchurn")
	res, err := Run(w.Source, Options{
		Strategy:  gc.StratCompiled,
		HeapWords: w.HeapWords,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Telemetry.Records {
		if rec.Kind != "" {
			t.Fatalf("nursery off: collection record carries generational kind %q", rec.Kind)
		}
		if rec.PromotedWords != 0 || rec.Remembered != 0 || rec.BarrierHits != 0 {
			t.Fatalf("nursery off: generational counters nonzero: %+v", rec)
		}
	}
	if res.HeapStats.MinorCollections != 0 || res.HeapStats.PromotedWords != 0 {
		t.Fatalf("nursery off: heap recorded generational activity: %+v", res.HeapStats)
	}
}

// TestNurseryRejectsTagged pins the representation constraint at the
// pipeline layer.
func TestNurseryRejectsTagged(t *testing.T) {
	w, _ := workloads.ByName("listchurn")
	if _, err := Run(w.Source, Options{Strategy: gc.StratTagged, NurseryWords: 256}); err == nil {
		t.Fatal("tagged + nursery must be rejected")
	}
	if _, err := RunTasks(workloads.Tasking[0].Source, workloads.Tasking[0].Entries,
		Options{Strategy: gc.StratTagged, NurseryWords: 256}); err == nil {
		t.Fatal("tagged + nursery tasks must be rejected")
	}
}

// ---------------------------------------------------------------------------
// Write-barrier fuzz: random interleavings of old→young stores with
// allocation churn (which forces minor cycles between the stores), under
// the heap verifier. A missed or mis-typed barrier surfaces either as a
// verifier panic (stale pointer into the evacuated half) or as a checksum
// mismatch against the Go reference model.
// ---------------------------------------------------------------------------

// fuzzProgram builds a random cell-mutation program and its reference
// value. cells[i] starts as ref [i+1]; ops interleave stores of fresh
// lists, churn allocations, and checksum reads.
func fuzzProgram(rng *rand.Rand) (string, int64) {
	const cells = 6
	const ops = 40
	var b strings.Builder
	b.WriteString(`
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
`)
	model := make([]int64, cells)
	for i := 0; i < cells; i++ {
		fmt.Fprintf(&b, "let c%d = ref [%d]\n", i, i+1)
		model[i] = int64(i + 1)
	}
	b.WriteString("let main () =\n  (let t0 = 0 in\n")
	var acc int64
	tcount := 0
	for i := 0; i < ops; i++ {
		cell := rng.Intn(cells)
		switch rng.Intn(3) {
		case 0: // old→young store: repoint the cell at a fresh list
			n := rng.Intn(12) + 1
			fmt.Fprintf(&b, "  let _ = (c%d := upto %d) in\n", cell, n)
			model[cell] = int64(n*(n+1)) / 2
		case 1: // churn: young garbage, forcing minor cycles between stores
			fmt.Fprintf(&b, "  let _ = upto %d in\n", rng.Intn(20)+5)
		default: // read the cell through the mutated edge
			fmt.Fprintf(&b, "  let t%d = t%d + sum (!c%d) in\n", tcount+1, tcount, cell)
			acc += model[cell]
			tcount++
		}
	}
	fmt.Fprintf(&b, "  t%d)\n", tcount)
	return b.String(), acc
}

func TestNurseryWriteBarrierFuzz(t *testing.T) {
	const seeds = 25
	var barrierHits, minors int64
	for seed := 0; seed < seeds; seed++ {
		src, want := fuzzProgram(rand.New(rand.NewSource(int64(seed))))
		for _, ms := range []bool{false, true} {
			for _, cfg := range []struct{ nursery, promote int }{
				{96, 1}, {192, 3},
			} {
				out := nurseryRun(t, src, gc.StratCompiled, 2048, ms, 1, cfg.nursery, cfg.promote)
				if out.value != want {
					t.Fatalf("seed %d ms=%v nursery=%d: got %d, reference %d\nprogram:\n%s",
						seed, ms, cfg.nursery, out.value, want, src)
				}
				barrierHits += out.col.Gen.BarrierHits
				minors += out.col.Gen.MinorCollections
			}
		}
	}
	// The fuzz only means something if it actually drove the machinery.
	if minors == 0 {
		t.Fatal("fuzz never triggered a minor collection")
	}
	if barrierHits == 0 {
		t.Fatal("fuzz never fired the write barrier")
	}
}
