package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"tagfree/internal/code"
	"tagfree/internal/compile/codegen"
	"tagfree/internal/compile/gcanal"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/mlang/types"
	"tagfree/internal/vm"
)

// EvalResult is the outcome of Eval: the program's main value rendered as
// MinML syntax, with its inferred type.
type EvalResult struct {
	Value  string
	Type   string
	Result *Result
}

// Eval compiles and runs a program, rendering main's result by walking the
// simulated heap with main's inferred result type — the same type-driven
// traversal the collector performs, reused for printing.
func Eval(src string, opts Options) (*EvalResult, error) {
	irp, info, err := Frontend(src)
	if err != nil {
		return nil, err
	}
	mainScheme, ok := info.TopScheme["main"]
	if !ok {
		return nil, fmt.Errorf("program has no main function")
	}
	arrow, ok := types.Resolve(mainScheme.Body).(*types.Arrow)
	if !ok {
		return nil, fmt.Errorf("main is not a function")
	}
	retType := arrow.Cod

	if opts.UseCFA {
		gcanal.AnalyzeCFA(irp)
	} else {
		gcanal.Analyze(irp)
	}
	prog, err := codegen.Compile(irp, opts.Strategy.CompatibleRepr())
	if err != nil {
		return nil, err
	}

	semi := opts.HeapWords
	if semi == 0 {
		semi = 1 << 16
	}
	var m *vm.VM
	if opts.MarkSweep {
		m, err = vm.NewWith(prog, heap.NewMarkSweep(prog.Repr, semi), opts.Strategy)
	} else {
		m, err = vm.New(prog, semi, opts.Strategy)
	}
	if err != nil {
		return nil, err
	}
	if opts.MaxSteps > 0 {
		m.MaxSteps = opts.MaxSteps
	}
	m.Col.Parallelism = opts.Parallelism
	m.Col.DisableFastPath = opts.DisableGCFastPath
	raw, err := m.Run()
	if err != nil {
		return nil, err
	}

	r := &renderer{m: m, repr: prog.Repr}
	return &EvalResult{
		Value: r.render(raw, retType, 0),
		Type:  types.TypeString(retType),
		Result: &Result{
			Raw:       raw,
			Value:     code.DecodeInt(prog.Repr, raw),
			Output:    m.Out.String(),
			VMStats:   m.Stats,
			GCStats:   m.Col.Stats,
			HeapStats: m.Heap.Stats,
			Telemetry: &m.Col.Telem,
		},
	}, nil
}

// TelemetryOptions configures the telemetry emitters.
type TelemetryOptions struct {
	// OmitTiming zeroes every pause field (per-record PauseNS and the
	// cumulative pause histogram) so the output depends only on the
	// program, strategy and heap discipline — deterministic across runs
	// and machines, which the golden tests rely on.
	OmitTiming bool
	// Tasks includes the per-task scan breakdown in the table output.
	Tasks bool
}

// sanitized returns a copy of t with timing stripped per opt.
func sanitizedTelemetry(t *gc.Telemetry, opt TelemetryOptions) *gc.Telemetry {
	if !opt.OmitTiming {
		return t
	}
	cp := *t
	cp.Records = append([]gc.CollectionRecord(nil), t.Records...)
	for i := range cp.Records {
		cp.Records[i].PauseNS = 0
		if c := cp.Records[i].Conc; c != nil {
			cc := *c
			cc.InitialPauseNS = 0
			cc.FinalPauseNS = 0
			cp.Records[i].Conc = &cc
		}
	}
	cp.PauseHist = [gc.PauseBuckets]int64{}
	return &cp
}

// TelemetryTable renders a collector's telemetry as an aligned text table:
// one row per collection, followed by the cumulative pause and survivor
// histograms (non-empty buckets only).
func TelemetryTable(t *gc.Telemetry, opt TelemetryOptions) string {
	t = sanitizedTelemetry(t, opt)
	var b strings.Builder
	fmt.Fprintf(&b, "gc telemetry: strategy=%s kind=%s collections=%d\n",
		t.Strategy, t.Kind, len(t.Records))
	if len(t.Records) == 0 {
		return b.String()
	}
	if !opt.OmitTiming {
		fmt.Fprintf(&b, "total pause: %s\n", time.Duration(t.TotalPauseNS()))
	}

	// Generational columns appear only when some record carries a kind, so
	// non-nursery output (and its goldens) is unchanged. TLAB columns
	// follow the same convention, keyed on a record carrying a TLAB block.
	gen := false
	tlab := false
	conc := false
	sharded := false
	for _, r := range t.Records {
		if r.Kind != "" {
			gen = true
		}
		if r.TLAB != nil {
			tlab = true
		}
		if r.Conc != nil {
			conc = true
		}
		if r.Shard > 0 {
			sharded = true
		}
	}
	header := []string{"seq"}
	if gen {
		header = append(header, "kind")
	}
	if sharded {
		header = append(header, "shard")
	}
	if !opt.OmitTiming {
		header = append(header, "pause")
	}
	header = append(header, "par", "before", "live", "surv%", "words", "frames", "slots", "flhit%")
	if gen {
		header = append(header, "prom", "rem", "barrier")
	}
	if tlab {
		header = append(header, "refills", "fast", "shared", "waste")
	}
	if conc {
		if !opt.OmitTiming {
			header = append(header, "init-pause", "final-pause")
		}
		header = append(header, "slices", "grays")
	}
	rows := make([][]string, 0, len(t.Records))
	for _, r := range t.Records {
		hit := "-"
		if r.FreeListHitPct >= 0 {
			hit = fmt.Sprintf("%.1f", r.FreeListHitPct)
		}
		row := []string{fmt.Sprint(r.Seq)}
		if gen {
			kind := r.Kind
			if kind == "" {
				kind = "-"
			}
			row = append(row, kind)
		}
		if sharded {
			// Global collections (majors, multi-shard minors) have no shard.
			shard := "-"
			if r.Shard > 0 {
				shard = fmt.Sprint(r.Shard)
			}
			row = append(row, shard)
		}
		if !opt.OmitTiming {
			row = append(row, time.Duration(r.PauseNS).String())
		}
		row = append(row,
			fmt.Sprint(r.Parallelism),
			fmt.Sprint(r.UsedBefore),
			fmt.Sprint(r.LiveWords),
			fmt.Sprintf("%.1f", r.SurvivorPct),
			fmt.Sprint(r.WordsVisited),
			fmt.Sprint(r.FramesTraced),
			fmt.Sprint(r.SlotsTraced),
			hit,
		)
		if gen {
			row = append(row,
				fmt.Sprint(r.PromotedWords),
				fmt.Sprint(r.Remembered),
				fmt.Sprint(r.BarrierHits),
			)
		}
		if tlab {
			tr := r.TLAB
			if tr == nil {
				tr = &gc.TLABRecord{}
			}
			row = append(row,
				fmt.Sprint(tr.Refills),
				fmt.Sprint(tr.FastAllocs),
				fmt.Sprint(tr.SharedAllocs),
				fmt.Sprint(tr.WasteWords),
			)
		}
		if conc {
			cr := r.Conc
			if cr == nil {
				// A stop-the-world collection in a concurrent-mode run (an
				// abort's fallback, or the ladder) has no phase breakdown.
				if !opt.OmitTiming {
					row = append(row, "-", "-")
				}
				row = append(row, "-", "-")
			} else {
				if !opt.OmitTiming {
					row = append(row,
						time.Duration(cr.InitialPauseNS).String(),
						time.Duration(cr.FinalPauseNS).String())
				}
				row = append(row,
					fmt.Sprint(cr.MarkSlices),
					fmt.Sprint(cr.BarrierGrays))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}

	if opt.Tasks {
		for _, r := range t.Records {
			for _, ts := range r.Tasks {
				fmt.Fprintf(&b, "  gc %d task %d: frames=%d slots=%d objects=%d words=%d\n",
					r.Seq, ts.Task, ts.Frames, ts.Slots, ts.Objects, ts.Words)
			}
		}
	}

	if !opt.OmitTiming {
		b.WriteString("pause histogram:")
		for i, n := range t.PauseHist {
			if n > 0 {
				fmt.Fprintf(&b, " %s=%d", gc.PauseBucketLabel(i), n)
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("survivor histogram:")
	for i, n := range t.SurvivorHist {
		if n > 0 {
			fmt.Fprintf(&b, " %s=%d", gc.SurvivorBucketLabel(i), n)
		}
	}
	b.WriteByte('\n')
	var planHits, planMisses, siteHits, kernelWords int64
	for _, r := range t.Records {
		planHits += r.PlanHits
		planMisses += r.PlanMisses
		siteHits += r.SiteCacheHits
		kernelWords += r.KernelWords
	}
	if planHits+planMisses+siteHits+kernelWords > 0 {
		fmt.Fprintf(&b, "fast path: plan-hits=%d plan-misses=%d site-cache-hits=%d kernel-words=%d\n",
			planHits, planMisses, siteHits, kernelWords)
	}
	if tlab || t.TLABTotal != nil {
		// Prefer the finalized whole-run total: per-record deltas stop at
		// the last collection and miss the mutator tail after it.
		var cum gc.TLABRecord
		if t.TLABTotal != nil {
			cum = *t.TLABTotal
		} else {
			for _, r := range t.Records {
				if r.TLAB == nil {
					continue
				}
				cum.Refills += r.TLAB.Refills
				cum.RefillWords += r.TLAB.RefillWords
				cum.FastAllocs += r.TLAB.FastAllocs
				cum.SharedAllocs += r.TLAB.SharedAllocs
				cum.WasteWords += r.TLAB.WasteWords
				cum.ReturnedWords += r.TLAB.ReturnedWords
			}
		}
		ratio := 0.0
		if cum.FastAllocs+cum.SharedAllocs > 0 {
			ratio = float64(cum.SharedAllocs) / float64(cum.FastAllocs+cum.SharedAllocs)
		}
		fmt.Fprintf(&b, "tlab: refills=%d refill-words=%d fast-allocs=%d shared-allocs=%d waste-words=%d returned-words=%d shared-ratio=%.3f\n",
			cum.Refills, cum.RefillWords, cum.FastAllocs, cum.SharedAllocs,
			cum.WasteWords, cum.ReturnedWords, ratio)
	}
	if lv := t.Liveness; lv != (gc.LivenessStats{}) {
		var prunedWords int64
		for _, r := range t.Records {
			prunedWords += r.PrunedWords
		}
		fmt.Fprintf(&b, "liveness: prune-gcs=%d spine-roots=%d pruned-words=%d degraded-strategy=%d degraded-fastpath=%d degraded-parallel=%d degraded-shard=%d degraded-concurrent=%d\n",
			lv.PruneCollections, lv.SpineRoots, prunedWords,
			lv.DegradedStrategy, lv.DegradedFastPath, lv.DegradedParallel,
			lv.DegradedShard, lv.DegradedConcurrent)
	}
	if rs := t.Resilience; rs != (gc.ResilienceStats{}) {
		fmt.Fprintf(&b, "resilience: injected-ooms=%d torture-collections=%d emergency-collections=%d ladder-recovered=%d ladder-exhausted=%d heap-growths=%d watchdog-trips=%d serial-fallbacks=%d task-faults=%d budget-faults=%d conc-aborts=%d\n",
			rs.InjectedOOMs, rs.TortureCollections, rs.EmergencyCollections,
			rs.LadderRecovered, rs.LadderExhausted,
			rs.HeapGrowths, rs.WatchdogTrips, rs.SerialFallbacks,
			rs.TaskFaults, rs.BudgetFaults, rs.ConcAborts)
	}
	return b.String()
}

// TelemetryJSON marshals a collector's telemetry as indented JSON.
func TelemetryJSON(t *gc.Telemetry, opt TelemetryOptions) ([]byte, error) {
	return json.MarshalIndent(sanitizedTelemetry(t, opt), "", "  ")
}

// renderer walks heap values by type.
type renderer struct {
	m    *vm.VM
	repr code.Repr
}

const maxRenderDepth = 12

func (r *renderer) render(w code.Word, t types.Type, depth int) string {
	if depth > maxRenderDepth {
		return "..."
	}
	switch t := types.Resolve(t).(type) {
	case *types.Base:
		switch t.Kind {
		case types.IntK:
			return fmt.Sprint(code.DecodeInt(r.repr, w))
		case types.BoolK:
			return fmt.Sprint(code.DecodeBool(r.repr, w))
		case types.UnitK:
			return "()"
		case types.StringK:
			return fmt.Sprintf("%q", r.m.Prog.Strings[code.DecodeInt(r.repr, w)])
		}
	case *types.Var:
		return "<poly>"
	case *types.Arrow:
		return "<fun>"
	case *types.TupleT:
		parts := make([]string, len(t.Elems))
		for i, et := range t.Elems {
			parts[i] = r.render(r.m.Heap.Field(w, i), et, depth+1)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *types.Con:
		if t.Name == "ref" {
			return "ref (" + r.render(r.m.Heap.Field(w, 0), t.Args[0], depth+1) + ")"
		}
		if t.Name == "list" {
			return r.renderList(w, t.Args[0], depth)
		}
		return r.renderData(w, t, depth)
	}
	return "?"
}

func (r *renderer) renderList(w code.Word, elem types.Type, depth int) string {
	var parts []string
	for code.IsBoxedValue(r.repr, w) {
		if len(parts) >= 20 {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, r.render(r.m.Heap.Field(w, 0), elem, depth+1))
		w = r.m.Heap.Field(w, 1)
	}
	return "[" + strings.Join(parts, "; ") + "]"
}

func (r *renderer) renderData(w code.Word, t *types.Con, depth int) string {
	data := t.Data
	if data == nil {
		return "?"
	}
	if !code.IsBoxedValue(r.repr, w) {
		tag := int(code.DecodeInt(r.repr, w))
		for _, ci := range data.Ctors {
			if ci.IsNullary() && ci.Tag == tag {
				return ci.Name
			}
		}
		return fmt.Sprintf("<ctor %d>", tag)
	}
	// Boxed: find the constructor via the discriminant (or the sole boxed
	// constructor for tagless sums).
	off := 0
	var ctor *types.CtorInfo
	if data.BoxedCtors > 1 {
		tag := int(code.DecodeInt(r.repr, r.m.Heap.Field(w, 0)))
		off = 1
		for _, ci := range data.Ctors {
			if !ci.IsNullary() && ci.Tag == tag {
				ctor = ci
				break
			}
		}
	} else {
		for _, ci := range data.Ctors {
			if !ci.IsNullary() {
				ctor = ci
				break
			}
		}
	}
	if ctor == nil {
		return "<box>"
	}
	fieldTypes := ctor.Instantiate(t.Args)
	parts := make([]string, len(fieldTypes))
	for i, ft := range fieldTypes {
		parts[i] = r.render(r.m.Heap.Field(w, off+i), ft, depth+1)
	}
	if len(parts) == 0 {
		return ctor.Name
	}
	return ctor.Name + " (" + strings.Join(parts, ", ") + ")"
}
