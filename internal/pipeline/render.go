package pipeline

import (
	"fmt"
	"strings"

	"tagfree/internal/code"
	"tagfree/internal/compile/codegen"
	"tagfree/internal/compile/gcanal"
	"tagfree/internal/heap"
	"tagfree/internal/mlang/types"
	"tagfree/internal/vm"
)

// EvalResult is the outcome of Eval: the program's main value rendered as
// MinML syntax, with its inferred type.
type EvalResult struct {
	Value  string
	Type   string
	Result *Result
}

// Eval compiles and runs a program, rendering main's result by walking the
// simulated heap with main's inferred result type — the same type-driven
// traversal the collector performs, reused for printing.
func Eval(src string, opts Options) (*EvalResult, error) {
	irp, info, err := Frontend(src)
	if err != nil {
		return nil, err
	}
	mainScheme, ok := info.TopScheme["main"]
	if !ok {
		return nil, fmt.Errorf("program has no main function")
	}
	arrow, ok := types.Resolve(mainScheme.Body).(*types.Arrow)
	if !ok {
		return nil, fmt.Errorf("main is not a function")
	}
	retType := arrow.Cod

	if opts.UseCFA {
		gcanal.AnalyzeCFA(irp)
	} else {
		gcanal.Analyze(irp)
	}
	prog, err := codegen.Compile(irp, opts.Strategy.CompatibleRepr())
	if err != nil {
		return nil, err
	}

	semi := opts.HeapWords
	if semi == 0 {
		semi = 1 << 16
	}
	var m *vm.VM
	if opts.MarkSweep {
		m, err = vm.NewWith(prog, heap.NewMarkSweep(prog.Repr, semi), opts.Strategy)
	} else {
		m, err = vm.New(prog, semi, opts.Strategy)
	}
	if err != nil {
		return nil, err
	}
	if opts.MaxSteps > 0 {
		m.MaxSteps = opts.MaxSteps
	}
	raw, err := m.Run()
	if err != nil {
		return nil, err
	}

	r := &renderer{m: m, repr: prog.Repr}
	return &EvalResult{
		Value: r.render(raw, retType, 0),
		Type:  types.TypeString(retType),
		Result: &Result{
			Raw:       raw,
			Value:     code.DecodeInt(prog.Repr, raw),
			Output:    m.Out.String(),
			VMStats:   m.Stats,
			GCStats:   m.Col.Stats,
			HeapStats: m.Heap.Stats,
		},
	}, nil
}

// renderer walks heap values by type.
type renderer struct {
	m    *vm.VM
	repr code.Repr
}

const maxRenderDepth = 12

func (r *renderer) render(w code.Word, t types.Type, depth int) string {
	if depth > maxRenderDepth {
		return "..."
	}
	switch t := types.Resolve(t).(type) {
	case *types.Base:
		switch t.Kind {
		case types.IntK:
			return fmt.Sprint(code.DecodeInt(r.repr, w))
		case types.BoolK:
			return fmt.Sprint(code.DecodeBool(r.repr, w))
		case types.UnitK:
			return "()"
		case types.StringK:
			return fmt.Sprintf("%q", r.m.Prog.Strings[code.DecodeInt(r.repr, w)])
		}
	case *types.Var:
		return "<poly>"
	case *types.Arrow:
		return "<fun>"
	case *types.TupleT:
		parts := make([]string, len(t.Elems))
		for i, et := range t.Elems {
			parts[i] = r.render(r.m.Heap.Field(w, i), et, depth+1)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *types.Con:
		if t.Name == "ref" {
			return "ref (" + r.render(r.m.Heap.Field(w, 0), t.Args[0], depth+1) + ")"
		}
		if t.Name == "list" {
			return r.renderList(w, t.Args[0], depth)
		}
		return r.renderData(w, t, depth)
	}
	return "?"
}

func (r *renderer) renderList(w code.Word, elem types.Type, depth int) string {
	var parts []string
	for code.IsBoxedValue(r.repr, w) {
		if len(parts) >= 20 {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, r.render(r.m.Heap.Field(w, 0), elem, depth+1))
		w = r.m.Heap.Field(w, 1)
	}
	return "[" + strings.Join(parts, "; ") + "]"
}

func (r *renderer) renderData(w code.Word, t *types.Con, depth int) string {
	data := t.Data
	if data == nil {
		return "?"
	}
	if !code.IsBoxedValue(r.repr, w) {
		tag := int(code.DecodeInt(r.repr, w))
		for _, ci := range data.Ctors {
			if ci.IsNullary() && ci.Tag == tag {
				return ci.Name
			}
		}
		return fmt.Sprintf("<ctor %d>", tag)
	}
	// Boxed: find the constructor via the discriminant (or the sole boxed
	// constructor for tagless sums).
	off := 0
	var ctor *types.CtorInfo
	if data.BoxedCtors > 1 {
		tag := int(code.DecodeInt(r.repr, r.m.Heap.Field(w, 0)))
		off = 1
		for _, ci := range data.Ctors {
			if !ci.IsNullary() && ci.Tag == tag {
				ctor = ci
				break
			}
		}
	} else {
		for _, ci := range data.Ctors {
			if !ci.IsNullary() {
				ctor = ci
				break
			}
		}
	}
	if ctor == nil {
		return "<box>"
	}
	fieldTypes := ctor.Instantiate(t.Args)
	parts := make([]string, len(fieldTypes))
	for i, ft := range fieldTypes {
		parts[i] = r.render(r.m.Heap.Field(w, off+i), ft, depth+1)
	}
	if len(parts) == 0 {
		return ctor.Name
	}
	return ctor.Name + " (" + strings.Join(parts, ", ") + ")"
}
