package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/workloads"
)

// The heap-liveness differential projection suite. Liveness-guided
// tracing (-gc-heap-liveness) may retain strictly less than
// full-structure tracing, so the usual bit-identical live-signature pin
// does not apply. Instead the suite proves the projection property
// directly: the pruned retained set must be the full retained set with
// some subtrees replaced by the poison word — never a different value,
// never extra structure — and the mutator-visible behavior (every value,
// every output, every fault) must be bit-identical, with the poison debug
// mode armed so any wrong spine verdict faults on load instead of
// silently reading garbage.

// ---------------------------------------------------------------------------
// Signature parsing: gc.RootSignature emits a flat (tag, value) stream —
// 0=immediate, 1=back-edge, 2=first visit followed by that many fields.
// The projection check needs the tree, with first-visit objects indexed
// in stream order (the signer's numbering).
// ---------------------------------------------------------------------------

type sigNode struct {
	kind int // 0 immediate, 1 back-edge, 2 object
	val  code.Word
	id   int // object first-visit index (kind 2)
	kids []*sigNode
}

func parseSig(t *testing.T, s []code.Word) (roots, objs []*sigNode) {
	t.Helper()
	i := 0
	var parse func() *sigNode
	parse = func() *sigNode {
		if i+1 >= len(s) {
			t.Fatalf("signature truncated at word %d of %d", i, len(s))
		}
		tag, val := s[i], s[i+1]
		i += 2
		switch tag {
		case 0:
			return &sigNode{kind: 0, val: val}
		case 1:
			return &sigNode{kind: 1, val: val}
		case 2:
			n := &sigNode{kind: 2, id: len(objs)}
			objs = append(objs, n)
			for k := 0; k < int(val); k++ {
				n.kids = append(n.kids, parse())
			}
			return n
		}
		t.Fatalf("signature word %d: unknown tag %d", i-2, tag)
		return nil
	}
	for i < len(s) {
		roots = append(roots, parse())
	}
	return roots, objs
}

// projChecker verifies that the pruned signature is a projection of the
// full one: equal everywhere except that a pruned immediate (the poison
// word) in the pruned stream may stand in for ANY subtree of the full
// stream. Back-edge indices are renamed through idMap because skipping
// subtrees renumbers first visits.
type projChecker struct {
	offObjs []*sigNode
	idMap   map[int]int // pruned obj id -> full obj id
	pruned  int         // poison stand-ins encountered
}

func (p *projChecker) compare(on, off *sigNode) error {
	if on.kind == 0 && on.val == code.PrunedWord {
		// The spine kernel declared this field's structure dead; whatever
		// the full trace retained under it is exactly what pruning saves.
		p.pruned++
		return nil
	}
	switch on.kind {
	case 0:
		if off.kind != 0 || off.val != on.val {
			return fmt.Errorf("pruned run has immediate %#x where full run has kind %d (%#x)", on.val, off.kind, off.val)
		}
		return nil
	case 1:
		// The pruned walk saw this object before; the full walk, visiting a
		// superset in the same order, must have too.
		want, ok := p.idMap[int(on.val)]
		if !ok {
			return fmt.Errorf("pruned back-edge to object %d never mapped", on.val)
		}
		switch off.kind {
		case 1:
			if want != int(off.val) {
				return fmt.Errorf("back-edge mismatch: pruned obj %d maps to full obj %d, stream says %d", on.val, want, off.val)
			}
		case 2:
			return fmt.Errorf("pruned run back-references object %d the full run is first-visiting", on.val)
		default:
			return fmt.Errorf("pruned back-edge where full run has an immediate")
		}
		return nil
	default: // first visit
		var offObj *sigNode
		switch off.kind {
		case 2:
			offObj = off
		case 1:
			// The full walk already serialized this object inside a subtree
			// the pruned walk skipped; resolve the back-edge and compare
			// against the recorded structure.
			offObj = p.offObjs[int(off.val)]
		default:
			return fmt.Errorf("pruned run retains an object where full run has immediate %#x", off.val)
		}
		p.idMap[on.id] = offObj.id
		if len(on.kids) != len(offObj.kids) {
			return fmt.Errorf("object size mismatch: pruned %d fields, full %d", len(on.kids), len(offObj.kids))
		}
		for k := range on.kids {
			if err := p.compare(on.kids[k], offObj.kids[k]); err != nil {
				return err
			}
		}
		return nil
	}
}

// collectAndSign drives a freshly built task group to its first pending
// collection, collects, and returns the canonical signature of everything
// the collection retained (globals plus every task root).
func collectAndSign(t *testing.T, w workloads.TaskWorkload, opts Options) []code.Word {
	t.Helper()
	group, entries, err := BuildTaskGroup(w.Source, w.Entries, opts)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	for _, e := range entries {
		group.Spawn(e)
	}
	if err := group.RunInit(); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	roots, pending, err := group.RunUntilCollection()
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if !pending {
		t.Fatalf("%s: finished without collecting", w.Name)
	}
	group.Col.Collect(roots, group.Globals)
	return group.Col.RootSignature(roots, group.Globals)
}

// TestHeapLivenessRetainedSubset pins the projection property on every
// corpus workload: two identical groups run to the same first pending
// collection (schedules cannot have diverged — no collection has happened
// yet), one collects with full-structure tracing and one with
// liveness-guided pruning, and the pruned retained set must be the full
// retained set with zero or more subtrees projected away behind the
// poison word. taskspine must actually project something.
func TestHeapLivenessRetainedSubset(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, ms := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/ms=%v", w.Name, ms), func(t *testing.T) {
				opts := Options{
					Strategy:  gc.StratCompiled,
					HeapWords: w.HeapWords,
					MarkSweep: ms,
				}
				full := collectAndSign(t, w, opts)
				opts.GCHeapLiveness = true
				opts.PoisonPruned = true
				pruned := collectAndSign(t, w, opts)

				onRoots, _ := parseSig(t, pruned)
				offRoots, offObjs := parseSig(t, full)
				if len(onRoots) != len(offRoots) {
					t.Fatalf("root count diverged: %d pruned vs %d full — the runs were not aligned", len(onRoots), len(offRoots))
				}
				p := &projChecker{offObjs: offObjs, idMap: map[int]int{}}
				for i := range onRoots {
					if err := p.compare(onRoots[i], offRoots[i]); err != nil {
						t.Fatalf("root %d: %v", i, err)
					}
				}
				if w.Name == "taskspine" && p.pruned == 0 {
					t.Error("taskspine: projection found no pruned subtrees — the spine verdicts never reached a kernel")
				}
				if len(pruned) > len(full) {
					t.Errorf("pruned signature (%d words) larger than full (%d words)", len(pruned), len(full))
				}
			})
		}
	}
}

// TestHeapLivenessCorpusIdentical runs every corpus workload with pruning
// off and on (poison armed) across both disciplines and requires
// bit-identical mutator-visible behavior. The torture rows additionally
// collect before every allocation, which keeps the two runs' collection
// schedules aligned end-to-end, so the per-collection live-word sequences
// are comparable: pruning must never retain more at any collection, and
// on taskspine it must retain strictly less in total.
func TestHeapLivenessCorpusIdentical(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, ms := range []bool{false, true} {
			for _, torture := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/ms=%v/torture=%v", w.Name, ms, torture), func(t *testing.T) {
					opts := Options{
						Strategy:   gc.StratCompiled,
						HeapWords:  w.HeapWords,
						MarkSweep:  ms,
						Torture:    torture,
						VerifyHeap: torture, // verified stress on the torture rows
					}
					off, err := RunTasks(w.Source, w.Entries, opts)
					if err != nil {
						t.Fatal(err)
					}
					opts.GCHeapLiveness = true
					opts.PoisonPruned = true
					on, err := RunTasks(w.Source, w.Entries, opts)
					if err != nil {
						t.Fatal(err)
					}
					for i := range w.Entries {
						if off.Values[i] != on.Values[i] || off.Outputs[i] != on.Outputs[i] {
							t.Errorf("task %d diverged: %d/%q full vs %d/%q pruned",
								i, off.Values[i], off.Outputs[i], on.Values[i], on.Outputs[i])
						}
						if (off.Faults[i] == nil) != (on.Faults[i] == nil) {
							t.Errorf("task %d fault divergence: full %v, pruned %v", i, off.Faults[i], on.Faults[i])
						}
						if off.Values[i] != w.Expect[i] {
							t.Errorf("task %d = %d, want %d", i, off.Values[i], w.Expect[i])
						}
					}
					if !torture {
						return
					}
					liveOff := off.Telemetry.LiveWordsPerCollection()
					liveOn := on.Telemetry.LiveWordsPerCollection()
					if len(liveOff) != len(liveOn) {
						t.Fatalf("torture schedules diverged: %d vs %d collections", len(liveOff), len(liveOn))
					}
					var sumOff, sumOn int64
					for i := range liveOff {
						if liveOn[i] > liveOff[i] {
							t.Fatalf("collection %d: pruning retained %d words, full tracing only %d", i, liveOn[i], liveOff[i])
						}
						sumOff += liveOff[i]
						sumOn += liveOn[i]
					}
					if w.Name == "taskspine" && sumOn >= sumOff {
						t.Errorf("taskspine under torture: pruning retained %d total words, full tracing %d — nothing was pruned", sumOn, sumOff)
					}
				})
			}
		}
	}
}

// TestPoisonTrapsOnPrunedLoad proves the poison debug mode makes spine
// verdicts falsifiable: a program whose field genuinely holds the poison
// word's integer value faults on the load in both runtimes when the mode
// is armed, and computes normally when it is not. (A real wrong verdict
// produces exactly this load; the suite cannot make the analysis emit a
// wrong verdict, so it plants the word the honest way.)
func TestPoisonTrapsOnPrunedLoad(t *testing.T) {
	prog, _, err := Build("let main () = 0", Options{Strategy: gc.StratCompiled})
	if err != nil {
		t.Fatal(err)
	}
	poison := code.DecodeInt(prog.Repr, code.PrunedWord)
	lit := fmt.Sprint(poison)
	if poison < 0 {
		lit = fmt.Sprintf("(0 - %d)", -poison)
	}
	src := fmt.Sprintf(`
let probe () = (let p = (%s, 1) in (match p with | (a, b) -> a + b))
let main () = probe ()
`, lit)

	// Unarmed: the value is just an integer.
	res, err := Run(src, Options{Strategy: gc.StratCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != poison+1 {
		t.Fatalf("unarmed run = %d, want %d", res.Value, poison+1)
	}

	// Armed, single-program runtime: the load must error.
	if _, err := Run(src, Options{Strategy: gc.StratCompiled, PoisonPruned: true}); err == nil {
		t.Error("vm: armed poison mode did not trap on the pruned-word load")
	} else if !strings.Contains(err.Error(), "poison") {
		t.Errorf("vm: trap is not a poison diagnostic: %v", err)
	}

	// Armed, tasking runtime: the task faults, siblings unaffected.
	tres, err := RunTasks(src, []string{"probe"}, Options{Strategy: gc.StratCompiled, PoisonPruned: true})
	if err != nil {
		t.Fatal(err)
	}
	if tres.Faults[0] == nil {
		t.Error("tasking: armed poison mode did not fault the loading task")
	} else if !strings.Contains(tres.Faults[0].Error(), "poison") {
		t.Errorf("tasking: fault is not a poison diagnostic: %v", tres.Faults[0])
	}
}

// TestHeapLivenessModeMatrixFuzz crosses -gc-heap-liveness with the other
// runtime modes — disciplines, nursery, shards, TLABs, concurrent
// marking, parallel collection, allocation-failure injection — over 32
// seeded configurations. Every configuration must behave bit-identically
// to its pruning-off twin (poison armed), and every collection under
// pruning must be accounted for: either it pruned, or the refusal was
// counted under a degrade reason. Out-of-envelope combinations degrade;
// they never diverge and never go unreported.
func TestHeapLivenessModeMatrixFuzz(t *testing.T) {
	for seed := 0; seed < 32; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			w := workloads.Tasking[seed%len(workloads.Tasking)]
			opts := Options{
				Strategy:  gc.StratCompiled,
				HeapWords: w.HeapWords,
				MarkSweep: rng.Intn(2) == 1,
			}
			switch rng.Intn(3) {
			case 1:
				opts.NurseryWords = 256
			case 2:
				opts.NurseryWords = 512
			}
			if opts.NurseryWords > 0 && rng.Intn(2) == 1 {
				opts.Shards = 2 << rng.Intn(2) // 2 or 4
			}
			if opts.MarkSweep && opts.NurseryWords == 0 && rng.Intn(2) == 1 {
				opts.GCConcurrent = true
			}
			if !opts.GCConcurrent && rng.Intn(3) == 0 {
				opts.Parallelism = 4
			}
			if rng.Intn(2) == 1 {
				opts.TLABWords = 64
			}
			if rng.Intn(4) == 0 {
				opts.FailAllocEvery = 50
			}

			off, err := RunTasks(w.Source, w.Entries, opts)
			if err != nil {
				t.Fatalf("off [%+v]: %v", opts, err)
			}
			opts.GCHeapLiveness = true
			opts.PoisonPruned = true
			on, err := RunTasks(w.Source, w.Entries, opts)
			if err != nil {
				t.Fatalf("on [%+v]: %v", opts, err)
			}
			for i := range w.Entries {
				if off.Values[i] != on.Values[i] || off.Outputs[i] != on.Outputs[i] {
					t.Errorf("task %d diverged: %d/%q full vs %d/%q pruned",
						i, off.Values[i], off.Outputs[i], on.Values[i], on.Outputs[i])
				}
				offF, onF := off.Faults[i], on.Faults[i]
				if (offF == nil) != (onF == nil) {
					t.Fatalf("task %d fault divergence: full %v, pruned %v", i, offF, onF)
				}
				if offF != nil && offF.Kind != onF.Kind {
					t.Errorf("task %d fault kind diverged: %v vs %v", i, offF.Kind, onF.Kind)
				}
			}
			lv := on.Liveness
			accounted := lv.PruneCollections + lv.DegradedStrategy + lv.DegradedFastPath +
				lv.DegradedParallel + lv.DegradedShard + lv.DegradedConcurrent
			if on.GCStats.Collections > 0 && accounted == 0 {
				t.Errorf("pruning on, %d collections, but no collection pruned and no degrade was counted: %+v",
					on.GCStats.Collections, lv)
			}
			if opts.GCConcurrent && lv.DegradedConcurrent == 0 {
				for _, rec := range on.Telemetry.Records {
					if rec.Conc != nil {
						t.Errorf("a concurrent cycle finished but no concurrent degrade was counted: %+v", lv)
						break
					}
				}
			}
		})
	}
}
