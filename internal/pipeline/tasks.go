package pipeline

import (
	"fmt"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/mlang/types"
	"tagfree/internal/tasking"
)

// TaskResult is the outcome of a multi-task run.
type TaskResult struct {
	// Values holds each task's decoded integer result, in entry order.
	// A faulted task's value is 0; consult Faults to distinguish.
	Values []int64
	// Outputs holds each task's printed output.
	Outputs []string
	// Faults is aligned with Values: nil for a task that completed, the
	// captured fault for one isolated by the recovery ladder or a runtime
	// error. Siblings of a faulted task run to completion.
	Faults  []*tasking.TaskFault
	Stats   tasking.Stats
	GCStats gc.Stats
	Heap    heap.Stats
	// Liveness counts liveness-guided pruning activity and degrades
	// (all zero unless Options.GCHeapLiveness).
	Liveness gc.LivenessStats
	// TLABs is aligned with Values: each task's allocation-buffer
	// accounting (all zero when Options.TLABWords is 0).
	TLABs []tasking.TLABStats
	// Telemetry is the collector's per-collection record stream.
	Telemetry *gc.Telemetry
	// Group exposes the finished group for post-run inspection — the
	// differential suite takes live-heap signatures and active-space
	// snapshots through it.
	Group *tasking.Group
}

// BuildTaskGroup compiles src for the tasking runtime (gc_word elision
// disabled: any call can become a suspension point), validates each named
// entry as a top-level function of type unit -> int, and assembles a task
// group with every option knob wired but no tasks spawned. It returns the
// group and the compiled function indices aligned with entryNames; callers
// spawn tasks themselves (all up front for a closed corpus run, or
// on demand from a Tick hook for open-loop serving) and then drive
// RunInit/Run.
func BuildTaskGroup(src string, entryNames []string, opts Options) (*tasking.Group, []int, error) {
	irp, info, err := Frontend(src)
	if err != nil {
		return nil, nil, err
	}
	for _, name := range entryNames {
		sch, ok := info.TopScheme[name]
		if !ok {
			return nil, nil, fmt.Errorf("tasking: no top-level binding %s", name)
		}
		if s := sch.String(); s != "unit -> int" {
			return nil, nil, fmt.Errorf("tasking: entry %s has type %s, need unit -> int", name, s)
		}
	}
	_ = irp

	buildOpts := opts
	buildOpts.DisableGCWordElision = true
	prog, _, err := Build(src, buildOpts)
	if err != nil {
		return nil, nil, err
	}
	entries := make([]int, len(entryNames))
	for i, name := range entryNames {
		entries[i] = prog.FuncByName(name)
		if entries[i] < 0 {
			return nil, nil, fmt.Errorf("tasking: function %s not found after compilation", name)
		}
	}

	semi := opts.HeapWords
	if semi == 0 {
		semi = 1 << 16
	}
	var h *heap.Heap
	if opts.MarkSweep {
		if opts.Strategy == gc.StratTagged {
			return nil, nil, fmt.Errorf("mark/sweep is implemented for the tag-free strategies")
		}
		h = heap.NewMarkSweep(prog.Repr, semi)
	} else {
		h = heap.New(prog.Repr, semi)
	}
	if err := opts.validateShards(); err != nil {
		return nil, nil, err
	}
	if opts.NurseryWords > 0 {
		if opts.Strategy == gc.StratTagged {
			return nil, nil, fmt.Errorf("the generational nursery requires a tag-free strategy")
		}
		promote := opts.PromoteAfter
		if promote == 0 {
			promote = 2
		}
		shards := opts.Shards
		if shards < 1 {
			shards = 1
		}
		h.EnableNurseryShards(opts.NurseryWords, promote, shards)
	}
	group, err := tasking.NewGroupWith(prog, h, opts.Strategy, nil)
	if err != nil {
		return nil, nil, err
	}
	group.Col.Parallelism = opts.Parallelism
	group.Col.DisableFastPath = opts.DisableGCFastPath
	group.Col.Faults = opts.faultPlan()
	if opts.VerifyHeap {
		group.Col.Verify = true
		group.Heap.SetVerify(true)
	}
	group.GrowFactor = opts.GrowFactor
	group.MaxHeapWords = opts.MaxHeapWords
	group.TLABWords = opts.TLABWords
	if opts.Shards > 1 {
		group.Shards = opts.Shards
		group.ShardAssign = opts.ShardAssign
	}
	if err := opts.validateConcurrent(); err != nil {
		return nil, nil, err
	}
	group.GCConcurrent = opts.GCConcurrent
	group.ConcTriggerPct = opts.ConcTriggerPct
	group.Col.ConcMarkBudget = opts.ConcMarkBudget
	group.Col.ConcMaxSlices = opts.ConcMaxSlices
	group.Col.HeapLiveness = opts.GCHeapLiveness
	group.PoisonPruned = opts.PoisonPruned
	group.BudgetSteps = opts.BudgetSteps
	group.BudgetAllocWords = opts.BudgetAllocWords
	if opts.SuspendAtAllocs {
		group.Policy = tasking.SuspendAtAllocs
	}
	if opts.MaxSteps > 0 {
		group.MaxSteps = opts.MaxSteps
	}
	return group, entries, nil
}

// RunTasks compiles src for the tasking runtime and runs the named entry
// functions as concurrent tasks over a shared heap. Every entry must be a
// top-level function of type unit -> int.
func RunTasks(src string, entryNames []string, opts Options) (*TaskResult, error) {
	group, entries, err := BuildTaskGroup(src, entryNames, opts)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		group.Spawn(e)
	}
	if err := group.RunInit(); err != nil {
		return nil, err
	}
	if err := group.Run(); err != nil {
		return nil, err
	}

	prog := group.Prog
	res := &TaskResult{
		Stats:     group.Stats,
		GCStats:   group.Col.Stats,
		Heap:      group.Heap.Stats,
		Liveness:  group.Col.Liveness,
		Telemetry: &group.Col.Telem,
		Group:     group,
	}
	for _, t := range group.Tasks {
		if t.Status == tasking.Faulted {
			res.Values = append(res.Values, 0)
		} else {
			res.Values = append(res.Values, code.DecodeInt(prog.Repr, t.Result))
		}
		res.Outputs = append(res.Outputs, t.Out.String())
		res.Faults = append(res.Faults, t.Fault)
		res.TLABs = append(res.TLABs, t.TLAB)
	}
	return res, nil
}

var _ = types.TypeString // keep the types import for the scheme check API
