package pipeline

import (
	"fmt"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/workloads"
)

// Fast-path differential suite at the pipeline level: every corpus
// workload, every legal (strategy, discipline) pair, sequential and
// parallel, runs twice — once with the collection fast path and once with
// DisableGCFastPath (the uncached oracle) — under the post-collection
// heap verifier. Both runs must compute the workload's known result and
// retain exactly the same live words after every collection. The
// gc-package suite (fastpath_test.go) pins word-level heap identity on
// the task corpus; this one sweeps the whole single-task corpus and the
// non-compiled strategies, where the fast path must be a no-op.

func TestDifferentialFastPathCrossStrategy(t *testing.T) {
	for _, w := range workloads.All {
		for _, cfg := range diffConfigs() {
			name := fmt.Sprintf("%s/%v/ms=%v", w.Name, cfg.Strat, cfg.MS)
			t.Run(name, func(t *testing.T) {
				hw := w.HeapWords
				if cfg.MS {
					hw *= 2
				}
				var lives [][]int64
				for _, par := range []int{1, 4} {
					for _, disable := range []bool{true, false} {
						res, err := Run(w.Source, Options{
							Strategy:          cfg.Strat,
							HeapWords:         hw,
							MarkSweep:         cfg.MS,
							Parallelism:       par,
							DisableGCFastPath: disable,
							VerifyHeap:        true,
						})
						if err != nil {
							t.Fatalf("par=%d fast=%v: %v", par, !disable, err)
						}
						if res.Value != w.Expect {
							t.Fatalf("par=%d fast=%v: result %d, want %d", par, !disable, res.Value, w.Expect)
						}
						if disable && (res.GCStats.PlanHits != 0 || res.GCStats.KernelWords != 0) {
							t.Fatalf("par=%d: oracle run used the fast path: %+v", par, res.GCStats)
						}
						lives = append(lives, res.Telemetry.LiveWordsPerCollection())
					}
				}
				for i := 1; i < len(lives); i++ {
					if fmt.Sprint(lives[0]) != fmt.Sprint(lives[i]) {
						t.Fatalf("live words per collection diverge:\n  base %v\n  cfg%d %v", lives[0], i, lives[i])
					}
				}
			})
		}
	}
}

// TestFastPathSurvivesHeapGrow: the recovery ladder's growth rung swaps
// the heap out from under a warm plan cache mid-run. Cached plans hold
// compiler metadata only — no heap addresses — so collections after a
// Grow must keep producing the oracle's results. This is the regression
// guard for anyone tempted to memoize heap-dependent state in a plan.
func TestFastPathSurvivesHeapGrow(t *testing.T) {
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec len xs = match xs with | [] -> 0 | _ :: r -> len r + 1
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let greedy () = len (upto 4000)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + sum (upto 15))
let churn () = work 25 0
`
	entries := []string{"greedy", "churn"}
	for _, ms := range []bool{false, true} {
		t.Run(fmt.Sprintf("ms=%v", ms), func(t *testing.T) {
			var values [][]int64
			for _, disable := range []bool{true, false} {
				res, err := RunTasks(src, entries, Options{
					Strategy:          gc.StratCompiled,
					HeapWords:         1024,
					MarkSweep:         ms,
					GrowFactor:        2,
					MaxHeapWords:      1 << 17,
					DisableGCFastPath: disable,
					VerifyHeap:        true,
				})
				if err != nil {
					t.Fatalf("fast=%v: %v", !disable, err)
				}
				if res.Telemetry.Resilience.HeapGrowths == 0 {
					t.Fatalf("fast=%v: growth rung never fired", !disable)
				}
				if !disable && res.GCStats.PlanHits == 0 {
					t.Fatalf("plan cache never hit across growth: %+v", res.GCStats)
				}
				values = append(values, res.Values)
			}
			if fmt.Sprint(values[0]) != fmt.Sprint(values[1]) {
				t.Fatalf("results diverge across Grow: oracle %v fast %v", values[0], values[1])
			}
		})
	}
}
