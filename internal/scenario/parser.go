package scenario

import (
	"fmt"
	"strconv"

	"tagfree/internal/mlang/token"
)

// The scenario parser: a recursive-descent walk over the token stream
// with one token of lookahead, validating as it goes. Every failure —
// lexical, syntactic or semantic (unknown key, unknown strategy,
// out-of-range size) — is reported as a *PosError carrying the offending
// token's position, so `tfbench -scenario` failures always read
// "file.tfs:line:col: message". Validation happens here rather than in a
// separate pass so the position is still at hand; the ranges mirror the
// flag constraints cmd/tfgc and cmd/tfbench enforce.

// Parse parses .tfs source into its scenarios. It returns the first
// error encountered; the error is always a *PosError.
func Parse(src string) ([]*Scenario, error) {
	p := &parser{lex: NewLexer(src)}
	p.advance()
	var out []*Scenario
	seen := map[string]token.Pos{}
	for {
		p.skipNewlines()
		if p.tok.Kind == EOF {
			return out, nil
		}
		sc, err := p.parseScenario()
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[sc.Name]; dup {
			return nil, posErrorf(sc.Pos, "duplicate scenario name %q (first defined at %s)", sc.Name, prev)
		}
		seen[sc.Name] = sc.Pos
		out = append(out, sc)
	}
}

type parser struct {
	lex *Lexer
	tok Token
}

func (p *parser) advance() { p.tok = p.lex.Next() }

func (p *parser) skipNewlines() {
	for p.tok.Kind == NEWLINE {
		p.advance()
	}
}

// fail turns an unexpected token into a diagnostic, preferring the
// lexer's own message when the token is one it already flagged.
func (p *parser) fail(format string, args ...any) error {
	if p.tok.Kind == ILLEGAL {
		if errs := p.lex.Errors(); len(errs) > 0 {
			return errs[0]
		}
	}
	return posErrorf(p.tok.Pos, format, args...)
}

func (p *parser) describe() string {
	switch p.tok.Kind {
	case EOF:
		return "end of file"
	case NEWLINE:
		return "end of line"
	case IDENT, INT, FLOAT, ILLEGAL:
		return fmt.Sprintf("%q", p.tok.Text)
	}
	return fmt.Sprintf("%q", p.tok.Kind.String())
}

// expectEndOfLine consumes the statement terminator (newline, or the
// closing brace left for the caller).
func (p *parser) expectEndOfLine(what string) error {
	switch p.tok.Kind {
	case NEWLINE:
		p.advance()
		return nil
	case RBRACE, EOF:
		return nil
	}
	return p.fail("expected end of line after %s, found %s", what, p.describe())
}

// parseScenario parses `scenario <name> { ... }`.
func (p *parser) parseScenario() (*Scenario, error) {
	if p.tok.Kind != IDENT || p.tok.Text != "scenario" {
		return nil, p.fail("expected \"scenario\", found %s", p.describe())
	}
	sc := &Scenario{Pos: p.tok.Pos, Repeats: 1, keyPos: map[string]token.Pos{}}
	p.advance()
	if p.tok.Kind != IDENT {
		return nil, p.fail("expected scenario name, found %s", p.describe())
	}
	sc.Name = p.tok.Text
	p.advance()
	if p.tok.Kind != LBRACE {
		return nil, p.fail("expected { after scenario name, found %s", p.describe())
	}
	p.advance()
	for {
		p.skipNewlines()
		if p.tok.Kind == RBRACE {
			p.advance()
			break
		}
		if p.tok.Kind == EOF {
			return nil, posErrorf(sc.Pos, "scenario %q missing closing }", sc.Name)
		}
		if err := p.parseStmt(sc); err != nil {
			return nil, err
		}
	}
	if sc.Workload == "" {
		return nil, posErrorf(sc.Pos, "scenario %q missing required key \"workload\"", sc.Name)
	}
	if len(sc.Mix) > 0 && sc.Arrivals == nil {
		return nil, posErrorf(sc.keyPos["mix"], "mix requires an arrivals block (closed-loop runs use the whole corpus)")
	}
	// Unset axes default to the full comparative shape on the strategy
	// axis and the minimal one elsewhere.
	if len(sc.Strategies) == 0 {
		for _, s := range strategyNames {
			sc.Strategies = append(sc.Strategies, s.strat)
		}
	}
	if len(sc.Disciplines) == 0 {
		sc.Disciplines = []Discipline{Copying}
	}
	if len(sc.Par) == 0 {
		sc.Par = []int{1}
	}
	if len(sc.Shards) == 0 {
		sc.Shards = []int{1}
	}
	return sc, nil
}

const scenarioKeys = "workload, strategies, disciplines, par, shards, repeats, heap, nursery, promote, tlab, gc_concurrent, gc_heap_liveness, faults, arrivals, mix"

// parseStmt parses one `key values` statement inside a scenario body.
func (p *parser) parseStmt(sc *Scenario) error {
	if p.tok.Kind != IDENT {
		return p.fail("expected scenario key, found %s", p.describe())
	}
	key, keyPos := p.tok.Text, p.tok.Pos
	if prev, dup := sc.keyPos[key]; dup {
		return posErrorf(keyPos, "duplicate key %q (first set at %s)", key, prev)
	}
	sc.keyPos[key] = keyPos
	p.advance()

	switch key {
	case "workload":
		name, err := p.ident("workload name")
		if err != nil {
			return err
		}
		sc.Workload = name
	case "strategies":
		for p.tok.Kind == IDENT {
			strat, ok := strategyByName(p.tok.Text)
			if !ok {
				return posErrorf(p.tok.Pos, "unknown strategy %q (have %s)", p.tok.Text, strategyList())
			}
			for _, have := range sc.Strategies {
				if have == strat {
					return posErrorf(p.tok.Pos, "duplicate strategy %q", p.tok.Text)
				}
			}
			sc.Strategies = append(sc.Strategies, strat)
			p.advance()
		}
		if len(sc.Strategies) == 0 {
			return p.fail("expected at least one strategy, found %s", p.describe())
		}
	case "disciplines":
		for p.tok.Kind == IDENT {
			var d Discipline
			switch p.tok.Text {
			case "copying":
				d = Copying
			case "marksweep":
				d = MarkSweep
			default:
				return posErrorf(p.tok.Pos, "unknown discipline %q (have copying, marksweep)", p.tok.Text)
			}
			for _, have := range sc.Disciplines {
				if have == d {
					return posErrorf(p.tok.Pos, "duplicate discipline %q", p.tok.Text)
				}
			}
			sc.Disciplines = append(sc.Disciplines, d)
			p.advance()
		}
		if len(sc.Disciplines) == 0 {
			return p.fail("expected at least one discipline, found %s", p.describe())
		}
	case "par":
		for p.tok.Kind == INT {
			n, err := p.intValue("par")
			if err != nil {
				return err
			}
			if n < 1 || n > maxPar {
				return posErrorf(p.tok.Pos, "par %d out of range (1..%d)", n, maxPar)
			}
			for _, have := range sc.Par {
				if have == n {
					return posErrorf(p.tok.Pos, "duplicate par %d", n)
				}
			}
			sc.Par = append(sc.Par, n)
			p.advance()
		}
		if len(sc.Par) == 0 {
			return p.fail("expected at least one worker count, found %s", p.describe())
		}
	case "shards":
		for p.tok.Kind == INT {
			n, err := p.intValue("shards")
			if err != nil {
				return err
			}
			if n < 1 || n > maxShards {
				return posErrorf(p.tok.Pos, "shards %d out of range (1..%d)", n, maxShards)
			}
			for _, have := range sc.Shards {
				if have == n {
					return posErrorf(p.tok.Pos, "duplicate shards %d", n)
				}
			}
			sc.Shards = append(sc.Shards, n)
			p.advance()
		}
		if len(sc.Shards) == 0 {
			return p.fail("expected at least one shard count, found %s", p.describe())
		}
	case "repeats":
		n, pos, err := p.intArgAt("repeats")
		if err != nil {
			return err
		}
		if n < 1 || n > maxRepeats {
			return posErrorf(pos, "repeats %d out of range (1..%d)", n, maxRepeats)
		}
		sc.Repeats = n
	case "heap":
		n, pos, err := p.intArgAt("heap")
		if err != nil {
			return err
		}
		if n < minHeapWords || n > maxHeapWords {
			return posErrorf(pos, "heap size %d words out of range (%d..%d)", n, minHeapWords, maxHeapWords)
		}
		sc.HeapWords = n
	case "nursery":
		n, pos, err := p.intArgAt("nursery")
		if err != nil {
			return err
		}
		if n != 0 && (n < minNursery || n > maxNursery) {
			return posErrorf(pos, "nursery size %d words out of range (0 to disable, or %d..%d)", n, minNursery, maxNursery)
		}
		sc.NurseryWords = n
	case "promote":
		n, pos, err := p.intArgAt("promote")
		if err != nil {
			return err
		}
		if n < 0 || n > maxPromote {
			return posErrorf(pos, "promote %d out of range (0..%d)", n, maxPromote)
		}
		sc.PromoteAfter = n
	case "tlab":
		n, pos, err := p.intArgAt("tlab")
		if err != nil {
			return err
		}
		if n != 0 && (n < minTLAB || n > maxTLAB) {
			return posErrorf(pos, "tlab size %d words out of range (0 to disable, or %d..%d)", n, minTLAB, maxTLAB)
		}
		sc.TLABWords = n
	case "gc_concurrent":
		sc.GCConcurrent = true
	case "gc_heap_liveness":
		sc.GCHeapLiveness = true
	case "faults":
		return p.parseFaults(sc)
	case "arrivals":
		return p.parseArrivals(sc, keyPos)
	case "mix":
		return p.parseMix(sc)
	default:
		return posErrorf(keyPos, "unknown scenario key %q (have %s)", key, scenarioKeys)
	}
	return p.expectEndOfLine(key)
}

const faultKeys = "torture, verify-heap, fail-alloc, fail-every, fail-refills, heap-grow, heap-max"

// parseFaults parses the `faults { ... }` block.
func (p *parser) parseFaults(sc *Scenario) error {
	if p.tok.Kind != LBRACE {
		return p.fail("expected { after faults, found %s", p.describe())
	}
	p.advance()
	seen := map[string]token.Pos{}
	for {
		p.skipNewlines()
		if p.tok.Kind == RBRACE {
			p.advance()
			return p.expectEndOfLine("faults block")
		}
		if p.tok.Kind != IDENT {
			return p.fail("expected faults key, found %s", p.describe())
		}
		key, keyPos := p.tok.Text, p.tok.Pos
		if prev, dup := seen[key]; dup {
			return posErrorf(keyPos, "duplicate key %q (first set at %s)", key, prev)
		}
		seen[key] = keyPos
		p.advance()
		switch key {
		case "torture":
			sc.Faults.Torture = true
		case "verify-heap":
			sc.Faults.VerifyHeap = true
		case "fail-refills":
			sc.Faults.FailRefills = true
		case "fail-alloc":
			n, pos, err := p.intArgAt("fail-alloc")
			if err != nil {
				return err
			}
			if n < 1 {
				return posErrorf(pos, "fail-alloc %d out of range (must be at least 1)", n)
			}
			sc.Faults.FailAlloc = int64(n)
		case "fail-every":
			n, pos, err := p.intArgAt("fail-every")
			if err != nil {
				return err
			}
			if n < 1 {
				return posErrorf(pos, "fail-every %d out of range (must be at least 1)", n)
			}
			sc.Faults.FailEvery = int64(n)
		case "heap-max":
			n, pos, err := p.intArgAt("heap-max")
			if err != nil {
				return err
			}
			if n != 0 && (n < minHeapWords || n > maxHeapWords) {
				return posErrorf(pos, "heap-max %d words out of range (0 for unbounded, or %d..%d)", n, minHeapWords, maxHeapWords)
			}
			sc.Faults.HeapMax = n
		case "heap-grow":
			if p.tok.Kind != FLOAT && p.tok.Kind != INT {
				return p.fail("expected number after heap-grow, found %s", p.describe())
			}
			f, err := strconv.ParseFloat(p.tok.Text, 64)
			if err != nil {
				return posErrorf(p.tok.Pos, "malformed heap-grow factor %q", p.tok.Text)
			}
			if f <= 1 || f > maxHeapGrow {
				return posErrorf(p.tok.Pos, "heap-grow %s out of range (must exceed 1, at most %g)", p.tok.Text, maxHeapGrow)
			}
			sc.Faults.HeapGrow = f
			p.advance()
		default:
			return posErrorf(keyPos, "unknown faults key %q (have %s)", key, faultKeys)
		}
		if err := p.expectEndOfLine(key); err != nil {
			return err
		}
	}
}

const arrivalsKeys = "period, burst, requests, seed, queue, inflight, shed-heap, retries, backoff, backoff-cap, deadline, budget-steps, budget-alloc"

// parseArrivals parses the `arrivals { ... }` block — the open-loop
// serving plan. period and requests are required; everything else
// defaults like the tfserve flags.
func (p *parser) parseArrivals(sc *Scenario, blockPos token.Pos) error {
	if p.tok.Kind != LBRACE {
		return p.fail("expected { after arrivals, found %s", p.describe())
	}
	p.advance()
	a := &ArrivalsBlock{}
	seen := map[string]token.Pos{}
	for {
		p.skipNewlines()
		if p.tok.Kind == RBRACE {
			p.advance()
			if a.Period == 0 {
				return posErrorf(blockPos, "arrivals block missing required key \"period\"")
			}
			if a.Requests == 0 {
				return posErrorf(blockPos, "arrivals block missing required key \"requests\"")
			}
			sc.Arrivals = a
			return p.expectEndOfLine("arrivals block")
		}
		if p.tok.Kind != IDENT {
			return p.fail("expected arrivals key, found %s", p.describe())
		}
		key, keyPos := p.tok.Text, p.tok.Pos
		if prev, dup := seen[key]; dup {
			return posErrorf(keyPos, "duplicate key %q (first set at %s)", key, prev)
		}
		seen[key] = keyPos
		p.advance()
		n, pos, err := p.intArgAt(key)
		if err != nil {
			return err
		}
		switch key {
		case "period":
			if n < 1 || n > maxPeriod {
				return posErrorf(pos, "period %d out of range (1..%d)", n, maxPeriod)
			}
			a.Period = int64(n)
		case "burst":
			if n < 1 || n > maxBurst {
				return posErrorf(pos, "burst %d out of range (1..%d)", n, maxBurst)
			}
			a.Burst = n
		case "requests":
			if n < 1 || n > maxRequests {
				return posErrorf(pos, "requests %d out of range (1..%d)", n, maxRequests)
			}
			a.Requests = n
		case "seed":
			if n < 0 {
				return posErrorf(pos, "seed %d out of range (must not be negative)", n)
			}
			a.Seed = int64(n)
		case "queue":
			if n < 1 || n > maxQueue {
				return posErrorf(pos, "queue depth %d out of range (1..%d)", n, maxQueue)
			}
			a.Queue = n
		case "inflight":
			if n < 1 || n > maxInflight {
				return posErrorf(pos, "inflight %d out of range (1..%d)", n, maxInflight)
			}
			a.Inflight = n
		case "shed-heap":
			if n < 1 || n > 100 {
				return posErrorf(pos, "shed-heap %d out of range (1..100 percent)", n)
			}
			a.ShedHeapPct = n
		case "retries":
			if n < 0 || n > maxRetries {
				return posErrorf(pos, "retries %d out of range (0..%d)", n, maxRetries)
			}
			a.Retries = n
		case "backoff":
			if n < 1 || n > maxPeriod {
				return posErrorf(pos, "backoff %d out of range (1..%d)", n, maxPeriod)
			}
			a.Backoff = int64(n)
		case "backoff-cap":
			if n < 1 || n > maxPeriod {
				return posErrorf(pos, "backoff-cap %d out of range (1..%d)", n, maxPeriod)
			}
			a.BackoffCap = int64(n)
		case "deadline":
			if n < 1 || int64(n) > maxBudget {
				return posErrorf(pos, "deadline %d out of range (1..%d)", n, maxBudget)
			}
			a.Deadline = int64(n)
		case "budget-steps":
			if n < 1 || int64(n) > maxBudget {
				return posErrorf(pos, "budget-steps %d out of range (1..%d)", n, maxBudget)
			}
			a.BudgetSteps = int64(n)
		case "budget-alloc":
			if n < 1 || int64(n) > maxBudget {
				return posErrorf(pos, "budget-alloc %d out of range (1..%d)", n, maxBudget)
			}
			a.BudgetAlloc = int64(n)
		default:
			return posErrorf(keyPos, "unknown arrivals key %q (have %s)", key, arrivalsKeys)
		}
		if err := p.expectEndOfLine(key); err != nil {
			return err
		}
	}
}

// parseMix parses the `mix { <entry> <weight> ... }` block: the weighted
// service mix arrivals sample from. Entry names are validated against the
// workload at compile time (the workload may come from another key that
// has not parsed yet).
func (p *parser) parseMix(sc *Scenario) error {
	if p.tok.Kind != LBRACE {
		return p.fail("expected { after mix, found %s", p.describe())
	}
	p.advance()
	seen := map[string]token.Pos{}
	for {
		p.skipNewlines()
		if p.tok.Kind == RBRACE {
			p.advance()
			if len(sc.Mix) == 0 {
				return posErrorf(sc.keyPos["mix"], "mix block needs at least one entry")
			}
			return p.expectEndOfLine("mix block")
		}
		if p.tok.Kind != IDENT {
			return p.fail("expected mix entry name, found %s", p.describe())
		}
		entry, entryPos := p.tok.Text, p.tok.Pos
		if prev, dup := seen[entry]; dup {
			return posErrorf(entryPos, "duplicate mix entry %q (first set at %s)", entry, prev)
		}
		seen[entry] = entryPos
		p.advance()
		n, pos, err := p.intArgAt("mix weight")
		if err != nil {
			return err
		}
		if n < 1 || n > maxMixWeight {
			return posErrorf(pos, "mix weight %d out of range (1..%d)", n, maxMixWeight)
		}
		sc.Mix = append(sc.Mix, MixItem{Entry: entry, Weight: n, Pos: entryPos})
		if err := p.expectEndOfLine(entry); err != nil {
			return err
		}
	}
}

// ident consumes one identifier argument.
func (p *parser) ident(what string) (string, error) {
	if p.tok.Kind != IDENT {
		return "", p.fail("expected %s, found %s", what, p.describe())
	}
	name := p.tok.Text
	p.advance()
	return name, nil
}

// intValue reads the current INT token without consuming it, so callers
// can keep its position for range diagnostics.
func (p *parser) intValue(what string) (int, error) {
	n, err := strconv.Atoi(p.tok.Text)
	if err != nil {
		return 0, posErrorf(p.tok.Pos, "malformed %s value %q", what, p.tok.Text)
	}
	return n, nil
}

// intArgAt consumes one integer argument, returning its position.
func (p *parser) intArgAt(what string) (int, token.Pos, error) {
	if p.tok.Kind != INT {
		return 0, p.tok.Pos, p.fail("expected integer after %s, found %s", what, p.describe())
	}
	pos := p.tok.Pos
	n, err := p.intValue(what)
	if err != nil {
		return 0, pos, err
	}
	p.advance()
	return n, pos, nil
}
