package scenario

import (
	"fmt"
	"strings"

	"tagfree/internal/gc"
	"tagfree/internal/mlang/token"
	"tagfree/internal/pipeline"
	"tagfree/internal/serve"
	"tagfree/internal/workloads"
)

// The scenario compiler: crossing a scenario's axes into matrix cells.
// Each cell is exactly one pipeline.RunTasks invocation — the same
// Options struct a hand-coded harness (cmd/tfgc tasks, the telemetry
// report, the bench suites) would build, which is what the differential
// suite pins: a compiled cell must be configuration-identical to its
// hand-written twin, so the DSL adds breadth without adding a second
// execution semantics.

// Cell is one compiled matrix cell: a workload under one fully resolved
// configuration.
type Cell struct {
	// Scenario and Name identify the cell; Name is
	// "<scenario>/<strategy>/<discipline-key>/par<k>".
	Scenario string
	Name     string

	Workload   workloads.TaskWorkload
	Strategy   gc.Strategy
	Discipline Discipline
	Par        int
	// Shards is the heap shard count (1 = the unsharded heap). When the
	// scenario sets the shards key, the cell name carries a "/sh<k>"
	// suffix; otherwise names keep their historical shape.
	Shards  int
	Repeats int

	// Opts is the exact configuration RunMatrix passes to
	// pipeline.RunTasks.
	Opts pipeline.Options

	// Serve, for arrival-bearing scenarios, is the open-loop serving plan
	// (arrival schedule, admission control, retry policy, service mix);
	// RunMatrix fills in Workload and Opts from the cell and runs the cell
	// through serve.Run instead of pipeline.RunTasks.
	Serve *serve.Config

	// Skip is non-empty for combinations the runtime rejects by design
	// (e.g. mark/sweep under the tagged baseline); the cell is reported,
	// not run.
	Skip string
}

// Compile crosses every scenario's axes into cells, in scenario order
// with strategies varying slowest. Unknown workloads and contradictory
// sizes are positioned errors pointing at the scenario source.
func Compile(scs []*Scenario) ([]Cell, error) {
	var cells []Cell
	for _, sc := range scs {
		w, ok := workloads.TaskByName(sc.Workload)
		if !ok {
			return nil, sc.compileErrorf(sc.keyPos["workload"],
				"unknown task workload %q (have %s)", sc.Workload, taskWorkloadList())
		}
		heapWords := sc.HeapWords
		if heapWords == 0 {
			heapWords = w.HeapWords
		}
		if sc.TLABWords >= heapWords {
			return nil, sc.compileErrorf(sc.keyPos["tlab"],
				"tlab size %d words must be smaller than the heap (%d words)", sc.TLABWords, heapWords)
		}
		if sc.NurseryWords > 0 && sc.TLABWords >= sc.NurseryWords {
			return nil, sc.compileErrorf(sc.keyPos["tlab"],
				"tlab size %d words must be smaller than the nursery (%d words)", sc.TLABWords, sc.NurseryWords)
		}
		w.HeapWords = heapWords
		srv, err := compileServe(sc, w)
		if err != nil {
			return nil, err
		}
		for _, strat := range sc.Strategies {
			for _, disc := range sc.Disciplines {
				for _, par := range sc.Par {
					for _, shards := range sc.Shards {
						cells = append(cells, compileCell(sc, w, srv, strat, disc, par, shards))
					}
				}
			}
		}
	}
	return cells, nil
}

// compileServe resolves an arrival-bearing scenario's serving plan,
// validating the mix against the workload's entry functions. Workload and
// Opts stay zero: they vary per cell, so the runner fills them in.
func compileServe(sc *Scenario, w workloads.TaskWorkload) (*serve.Config, error) {
	if sc.Arrivals == nil {
		return nil, nil
	}
	known := map[string]bool{}
	for _, e := range w.Entries {
		known[e] = true
	}
	var mix []serve.MixEntry
	for _, m := range sc.Mix {
		if !known[m.Entry] {
			return nil, sc.compileErrorf(m.Pos,
				"mix entry %q is not an entry of workload %s (have %s)",
				m.Entry, w.Name, strings.Join(w.Entries, ", "))
		}
		mix = append(mix, serve.MixEntry{Entry: m.Entry, Weight: m.Weight})
	}
	a := sc.Arrivals
	return &serve.Config{
		Mix:         mix,
		Period:      a.Period,
		Burst:       a.Burst,
		Requests:    a.Requests,
		Seed:        a.Seed,
		QueueDepth:  a.Queue,
		MaxInflight: a.Inflight,
		ShedHeapPct: a.ShedHeapPct,
		MaxRetries:  a.Retries,
		Backoff:     a.Backoff,
		BackoffCap:  a.BackoffCap,
		Deadline:    a.Deadline,
	}, nil
}

// compileCell resolves one (strategy, discipline, par, shards) point.
func compileCell(sc *Scenario, w workloads.TaskWorkload, srv *serve.Config, strat gc.Strategy, disc Discipline, par, shards int) Cell {
	name := fmt.Sprintf("%s/%s/%s/par%d", sc.Name, strat, disc.Key(), par)
	if _, set := sc.keyPos["shards"]; set {
		name += fmt.Sprintf("/sh%d", shards)
	}
	c := Cell{
		Scenario:   sc.Name,
		Name:       name,
		Workload:   w,
		Strategy:   strat,
		Discipline: disc,
		Par:        par,
		Shards:     shards,
		Repeats:    sc.Repeats,
		Serve:      srv,
		Opts: pipeline.Options{
			Strategy:        strat,
			HeapWords:       w.HeapWords,
			MarkSweep:       disc == MarkSweep,
			Parallelism:     par,
			NurseryWords:    sc.NurseryWords,
			PromoteAfter:    sc.PromoteAfter,
			TLABWords:       sc.TLABWords,
			VerifyHeap:      sc.Faults.VerifyHeap,
			Torture:         sc.Faults.Torture,
			FailAllocNth:    sc.Faults.FailAlloc,
			FailAllocEvery:  sc.Faults.FailEvery,
			FailRefillsOnly: sc.Faults.FailRefills,
			GrowFactor:      sc.Faults.HeapGrow,
			MaxHeapWords:    sc.Faults.HeapMax,
		},
	}
	if sc.Arrivals != nil {
		c.Opts.BudgetSteps = sc.Arrivals.BudgetSteps
		c.Opts.BudgetAllocWords = sc.Arrivals.BudgetAlloc
	}
	// Combinations the runtime rejects by design become reported skips, so
	// the matrix still covers every strategy × discipline cell. ALL
	// applicable reasons are collected into the one Skip string (joined
	// with "; "), so a cell out of the envelope on several counts is still
	// exactly one skipped row in the matrix totals — never double-reported.
	var reasons []string
	if strat == gc.StratTagged && disc == MarkSweep {
		reasons = append(reasons, "mark/sweep is implemented for the tag-free strategies")
	}
	if strat == gc.StratTagged && sc.NurseryWords > 0 {
		reasons = append(reasons, "the generational nursery requires a tag-free strategy")
	}
	if sc.GCConcurrent {
		if strat == gc.StratTagged {
			reasons = append(reasons, "concurrent marking requires a tag-free strategy")
		}
		if disc != MarkSweep {
			reasons = append(reasons, "concurrent marking requires the mark/sweep discipline")
		}
		if sc.NurseryWords > 0 {
			reasons = append(reasons, "concurrent marking requires the nursery off")
		}
		if par > 1 {
			reasons = append(reasons, "concurrent marking uses a single incremental marker")
		}
	}
	if shards > 1 {
		if strat == gc.StratTagged {
			reasons = append(reasons, "heap sharding requires a tag-free strategy")
		}
		if sc.NurseryWords == 0 {
			reasons = append(reasons, "heap sharding requires a nursery (per-shard minor collections)")
		}
		if sc.GCConcurrent {
			reasons = append(reasons, "heap sharding does not compose with concurrent marking")
		}
	}
	if sc.GCHeapLiveness && strat != gc.StratCompiled {
		// Other out-of-envelope combinations (parallel collections, shard
		// minors, concurrent cycles) run and degrade to full tracing with
		// the refusal counted in LivenessStats; only the strategy axis is a
		// skip, because the pruning kernels exist solely in compiled mode.
		reasons = append(reasons, "heap-liveness pruning requires the compiled strategy")
	}
	c.Skip = strings.Join(reasons, "; ")
	if c.Skip == "" {
		if sc.GCConcurrent {
			c.Opts.GCConcurrent = true
		}
		if sc.GCHeapLiveness {
			// Scenario cells are correctness harnesses, so the poison debug
			// mode rides along: a wrong spine verdict faults the loading
			// task instead of silently computing on a pruned word.
			c.Opts.GCHeapLiveness = true
			c.Opts.PoisonPruned = true
		}
		if shards > 1 {
			// shards 1 stays zero-valued so a defaulted axis compiles to an
			// Options struct identical to its hand-written twin.
			c.Opts.Shards = shards
		}
	}
	return c
}

// compileErrorf builds a compile-time diagnostic, prefixed with the
// scenario's source file when LoadPath recorded one — Compile runs over
// scenarios pooled from many files, so the position alone is ambiguous.
func (sc *Scenario) compileErrorf(pos token.Pos, format string, args ...any) error {
	err := posErrorf(pos, format, args...)
	if sc.File == "" {
		return err
	}
	return fmt.Errorf("%s:%w", sc.File, err)
}

// taskWorkloadList renders the tasking corpus names for diagnostics.
func taskWorkloadList() string {
	names := make([]string, len(workloads.Tasking))
	for i, w := range workloads.Tasking {
		names[i] = w.Name
	}
	return strings.Join(names, ", ")
}
