package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"tagfree/internal/gc"
)

func TestScenarioParseFull(t *testing.T) {
	src := `
# all knobs at once
scenario kitchen-sink {
  workload    taskmutate
  strategies  compiled appel
  disciplines copying marksweep
  par         1 4
  repeats     3
  heap        4096
  nursery     256
  promote     3
  tlab        64
  faults {
    torture
    verify-heap
    fail-alloc  100
    fail-every  50
    fail-refills
    heap-grow   1.5
    heap-max    65536
  }
}
`
	scs, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(scs) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.Name != "kitchen-sink" || sc.Workload != "taskmutate" {
		t.Fatalf("header = %q/%q", sc.Name, sc.Workload)
	}
	if want := []gc.Strategy{gc.StratCompiled, gc.StratAppel}; !reflect.DeepEqual(sc.Strategies, want) {
		t.Errorf("strategies = %v, want %v", sc.Strategies, want)
	}
	if want := []Discipline{Copying, MarkSweep}; !reflect.DeepEqual(sc.Disciplines, want) {
		t.Errorf("disciplines = %v, want %v", sc.Disciplines, want)
	}
	if want := []int{1, 4}; !reflect.DeepEqual(sc.Par, want) {
		t.Errorf("par = %v, want %v", sc.Par, want)
	}
	if sc.Repeats != 3 || sc.HeapWords != 4096 || sc.NurseryWords != 256 ||
		sc.PromoteAfter != 3 || sc.TLABWords != 64 {
		t.Errorf("knobs = %+v", sc)
	}
	wantFaults := FaultBlock{
		Torture: true, VerifyHeap: true, FailRefills: true,
		FailAlloc: 100, FailEvery: 50, HeapGrow: 1.5, HeapMax: 65536,
	}
	if sc.Faults != wantFaults {
		t.Errorf("faults = %+v, want %+v", sc.Faults, wantFaults)
	}
}

func TestScenarioParseDefaults(t *testing.T) {
	scs, err := Parse("scenario d { workload taskchurn }")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sc := scs[0]
	if len(sc.Strategies) != 4 {
		t.Errorf("default strategies = %v, want all four", sc.Strategies)
	}
	if want := []Discipline{Copying}; !reflect.DeepEqual(sc.Disciplines, want) {
		t.Errorf("default disciplines = %v, want %v", sc.Disciplines, want)
	}
	if want := []int{1}; !reflect.DeepEqual(sc.Par, want) {
		t.Errorf("default par = %v, want %v", sc.Par, want)
	}
	if sc.Repeats != 1 {
		t.Errorf("default repeats = %d, want 1", sc.Repeats)
	}
}

// TestScenarioGCConcurrent pins the gc_concurrent key: a bare boolean that
// turns on incremental marking for the cells in its envelope (mark/sweep,
// tag-free, par 1, no nursery) and reports every other cell as skipped.
func TestScenarioGCConcurrent(t *testing.T) {
	scs, err := Parse(`
scenario conc {
  workload    taskchurn
  strategies  compiled tagged
  disciplines copying marksweep
  par         1 2
  gc_concurrent
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !scs[0].GCConcurrent {
		t.Fatalf("gc_concurrent not set on the scenario")
	}
	cells, err := Compile(scs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	var on, skipped int
	for _, c := range cells {
		if c.Opts.GCConcurrent {
			on++
			if c.Skip != "" {
				t.Errorf("%s: skipped cell has GCConcurrent set", c.Name)
			}
			if c.Strategy != gc.StratCompiled || c.Discipline != MarkSweep || c.Par != 1 {
				t.Errorf("%s: concurrent marking outside its envelope", c.Name)
			}
		} else if c.Skip != "" {
			skipped++
		} else {
			t.Errorf("%s: neither concurrent nor skipped under gc_concurrent", c.Name)
		}
	}
	if on != 1 {
		t.Errorf("got %d concurrent cells, want exactly compiled/marksweep/par1", on)
	}
	if skipped != 7 {
		t.Errorf("got %d skipped cells, want 7", skipped)
	}
}

// TestScenarioGCHeapLiveness pins the gc_heap_liveness key: a bare
// boolean that turns on liveness-guided tracing (with the poison debug
// mode riding along) for compiled-strategy cells and reports every other
// strategy's cells as skipped — including multi-reason skips joined with
// "; " when the cell is out of the envelope on several counts at once.
func TestScenarioGCHeapLiveness(t *testing.T) {
	scs, err := Parse(`
scenario live {
  workload    taskspine
  strategies  compiled interp tagged
  disciplines copying marksweep
  par         1 4
  gc_heap_liveness
  gc_concurrent
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !scs[0].GCHeapLiveness {
		t.Fatalf("gc_heap_liveness not set on the scenario")
	}
	cells, err := Compile(scs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	var on int
	for _, c := range cells {
		if c.Opts.GCHeapLiveness {
			on++
			if c.Skip != "" {
				t.Errorf("%s: skipped cell has GCHeapLiveness set", c.Name)
			}
			if !c.Opts.PoisonPruned {
				t.Errorf("%s: liveness cell without the poison debug mode", c.Name)
			}
			if c.Strategy != gc.StratCompiled {
				t.Errorf("%s: heap-liveness pruning outside the compiled strategy", c.Name)
			}
		} else if c.Skip == "" {
			t.Errorf("%s: neither liveness-enabled nor skipped under gc_heap_liveness", c.Name)
		} else if c.Strategy != gc.StratCompiled && !strings.Contains(c.Skip, "heap-liveness pruning requires the compiled strategy") {
			t.Errorf("%s: skip %q does not name the liveness reason", c.Name, c.Skip)
		}
	}
	// compiled × marksweep × par 1 is the one cell inside both envelopes;
	// compiled copying/par4 cells carry only the concurrent skip.
	if on != 1 {
		t.Errorf("got %d liveness cells, want exactly compiled/marksweep/par1", on)
	}
	// The tagged mark/sweep cell is out of the envelope on four counts:
	// its skip must carry ALL reasons, "; "-joined, in one row.
	var tagged *Cell
	for i := range cells {
		if cells[i].Strategy == gc.StratTagged && cells[i].Discipline == MarkSweep && cells[i].Par == 1 {
			tagged = &cells[i]
		}
	}
	if tagged == nil {
		t.Fatal("no tagged/marksweep/par1 cell")
	}
	for _, reason := range []string{
		"mark/sweep is implemented for the tag-free strategies",
		"concurrent marking requires a tag-free strategy",
		"heap-liveness pruning requires the compiled strategy",
	} {
		if !strings.Contains(tagged.Skip, reason) {
			t.Errorf("tagged cell skip %q missing reason %q", tagged.Skip, reason)
		}
	}
	if parts := strings.Split(tagged.Skip, "; "); len(parts) < 3 {
		t.Errorf("tagged cell skip %q not a multi-reason \"; \" join", tagged.Skip)
	}
}

// TestScenarioDiagnosticsGolden pins the exact position and message of
// the parser's diagnostics for malformed .tfs input — the contract that
// `tfbench -scenario` failures point at the offending token.
func TestScenarioDiagnosticsGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // exact "line:col: message"
	}{
		{
			name: "unknown key",
			src:  "scenario x {\n  workload taskchurn\n  wrkload taskchurn\n}\n",
			want: `3:3: unknown scenario key "wrkload" (have workload, strategies, disciplines, par, shards, repeats, heap, nursery, promote, tlab, gc_concurrent, gc_heap_liveness, faults, arrivals, mix)`,
		},
		{
			name: "bad strategy name",
			src:  "scenario x {\n  workload taskchurn\n  strategies compiled wizard\n}\n",
			want: `3:23: unknown strategy "wizard" (have compiled, interp, appel, tagged)`,
		},
		{
			name: "bad discipline name",
			src:  "scenario x {\n  workload taskchurn\n  disciplines sweeping\n}\n",
			want: `3:15: unknown discipline "sweeping" (have copying, marksweep)`,
		},
		{
			name: "nursery too small",
			src:  "scenario x {\n  workload taskchurn\n  nursery 7\n}\n",
			want: `3:11: nursery size 7 words out of range (0 to disable, or 16..4194304)`,
		},
		{
			name: "nursery too large",
			src:  "scenario x {\n  workload taskchurn\n  nursery 8388608\n}\n",
			want: `3:11: nursery size 8388608 words out of range (0 to disable, or 16..4194304)`,
		},
		{
			name: "tlab too small",
			src:  "scenario x {\n  workload taskchurn\n  tlab 4\n}\n",
			want: `3:8: tlab size 4 words out of range (0 to disable, or 8..65536)`,
		},
		{
			name: "tlab too large",
			src:  "scenario x {\n  workload taskchurn\n  tlab 131072\n}\n",
			want: `3:8: tlab size 131072 words out of range (0 to disable, or 8..65536)`,
		},
		{
			name: "heap out of range",
			src:  "scenario x {\n  workload taskchurn\n  heap 64\n}\n",
			want: `3:8: heap size 64 words out of range (128..67108864)`,
		},
		{
			name: "par out of range",
			src:  "scenario x {\n  workload taskchurn\n  par 0\n}\n",
			want: `3:7: par 0 out of range (1..64)`,
		},
		{
			name: "missing workload",
			src:  "scenario empty {\n  par 1\n}\n",
			want: `1:1: scenario "empty" missing required key "workload"`,
		},
		{
			name: "duplicate key",
			src:  "scenario x {\n  workload taskchurn\n  heap 1024\n  heap 2048\n}\n",
			want: `4:3: duplicate key "heap" (first set at 3:3)`,
		},
		{
			name: "unknown faults key",
			src:  "scenario x {\n  workload taskchurn\n  faults {\n    tortore\n  }\n}\n",
			want: `4:5: unknown faults key "tortore" (have torture, verify-heap, fail-alloc, fail-every, fail-refills, heap-grow, heap-max)`,
		},
		{
			name: "heap-grow out of range",
			src:  "scenario x {\n  workload taskchurn\n  faults {\n    heap-grow 0.5\n  }\n}\n",
			want: `4:15: heap-grow 0.5 out of range (must exceed 1, at most 16)`,
		},
		{
			name: "missing closing brace",
			src:  "scenario x {\n  workload taskchurn\n",
			want: `1:1: scenario "x" missing closing }`,
		},
		{
			name: "trailing junk after value",
			src:  "scenario x {\n  workload taskchurn extra\n}\n",
			want: `2:22: expected end of line after workload, found "extra"`,
		},
		{
			name: "duplicate scenario name",
			src:  "scenario x { workload taskchurn }\nscenario x { workload taskchurn }\n",
			want: `2:1: duplicate scenario name "x" (first defined at 1:1)`,
		},
		{
			name: "lexical error surfaces",
			src:  "scenario x {\n  workload taskchurn\n  heap 10z24\n}\n",
			want: `3:8: malformed number "10z24"`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse accepted malformed input")
			}
			var pe *PosError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *PosError: %v", err, err)
			}
			if got := err.Error(); got != c.want {
				t.Errorf("diagnostic\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

func TestScenarioCompileDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "unknown workload",
			src:  "scenario x {\n  workload nosuch\n}\n",
			want: `2:3: unknown task workload "nosuch" (have taskchurn, tasktree, taskpoly, taskmutate, taskdeep, taskspine, taskserve)`,
		},
		{
			name: "tlab at least heap",
			src:  "scenario x {\n  workload taskchurn\n  heap 256\n  tlab 256\n}\n",
			want: `4:3: tlab size 256 words must be smaller than the heap (256 words)`,
		},
		{
			name: "tlab at least nursery",
			src:  "scenario x {\n  workload taskchurn\n  nursery 64\n  tlab 64\n}\n",
			want: `4:3: tlab size 64 words must be smaller than the nursery (64 words)`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			scs, err := Parse(c.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			_, err = Compile(scs)
			if err == nil {
				t.Fatalf("Compile accepted bad scenario")
			}
			var pe *PosError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *PosError: %v", err, err)
			}
			if got := err.Error(); got != c.want {
				t.Errorf("diagnostic\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}
