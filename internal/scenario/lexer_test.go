package scenario

import (
	"testing"

	"tagfree/internal/mlang/token"
)

func TestScenarioLexerTokens(t *testing.T) {
	src := "scenario churn-all {\n  par 1 4 # workers\n  heap-grow 1.5\n}\n"
	want := []struct {
		kind Kind
		text string
		pos  token.Pos
	}{
		{IDENT, "scenario", token.Pos{Line: 1, Col: 1}},
		{IDENT, "churn-all", token.Pos{Line: 1, Col: 10}},
		{LBRACE, "{", token.Pos{Line: 1, Col: 20}},
		{NEWLINE, "", token.Pos{Line: 1, Col: 21}},
		{IDENT, "par", token.Pos{Line: 2, Col: 3}},
		{INT, "1", token.Pos{Line: 2, Col: 7}},
		{INT, "4", token.Pos{Line: 2, Col: 9}},
		{NEWLINE, "", token.Pos{Line: 2, Col: 20}},
		{IDENT, "heap-grow", token.Pos{Line: 3, Col: 3}},
		{FLOAT, "1.5", token.Pos{Line: 3, Col: 13}},
		{NEWLINE, "", token.Pos{Line: 3, Col: 16}},
		{RBRACE, "}", token.Pos{Line: 4, Col: 1}},
		{NEWLINE, "", token.Pos{Line: 4, Col: 2}},
		{EOF, "", token.Pos{Line: 5, Col: 1}},
	}
	toks := NewLexer(src).All()
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		g := toks[i]
		if g.Kind != w.kind || g.Text != w.text || g.Pos != w.pos {
			t.Errorf("token %d = {%v %q %v}, want {%v %q %v}",
				i, g.Kind, g.Text, g.Pos, w.kind, w.text, w.pos)
		}
	}
}

func TestScenarioLexerErrorsArePositioned(t *testing.T) {
	cases := []struct {
		src  string
		msg  string
		line int
		col  int
	}{
		{"par $\n", `unexpected character '$'`, 1, 5},
		{"heap 2048k\n", `malformed number "2048k"`, 1, 6},
		{"grow 1.\n", `malformed number "1."`, 1, 6},
	}
	for _, c := range cases {
		l := NewLexer(c.src)
		for {
			tok := l.Next()
			if tok.Kind == EOF {
				break
			}
		}
		errs := l.Errors()
		if len(errs) == 0 {
			t.Errorf("%q: no lexer error", c.src)
			continue
		}
		e := errs[0]
		if e.Pos.Line != c.line || e.Pos.Col != c.col || e.Err.Error() != c.msg {
			t.Errorf("%q: error %q at %v, want %q at %d:%d",
				c.src, e.Err, e.Pos, c.msg, c.line, c.col)
		}
	}
}
