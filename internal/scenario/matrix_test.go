package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"tagfree/internal/gc"
)

// TestScenarioMatrixSmoke compiles and runs a small scenario crossing two
// strategies and both disciplines, checking that every cell is accounted
// for: the tagged × mark/sweep combination as a reported skip, everything
// else as a correct run.
func TestScenarioMatrixSmoke(t *testing.T) {
	scs, err := Parse(`
scenario smoke {
  workload    taskpoly
  strategies  compiled tagged
  disciplines copying marksweep
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells, err := Compile(scs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	snap := RunMatrix(cells)
	if snap.Schema != SnapshotSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, SnapshotSchema)
	}
	skipped := 0
	for _, r := range snap.Runs {
		if r.Skip != "" {
			skipped++
			if r.Strategy != "tagged" || r.Discipline != "mark/sweep" {
				t.Errorf("unexpected skip: %s (%s)", r.Name, r.Skip)
			}
			continue
		}
		if r.Error != "" {
			t.Errorf("%s: %s", r.Name, r.Error)
			continue
		}
		if !r.OK {
			t.Errorf("%s: not ok (faulted=%d)", r.Name, r.Faulted)
		}
		if r.Records == 0 || r.Collections == 0 {
			t.Errorf("%s: no collections recorded (records=%d gcs=%d)", r.Name, r.Records, r.Collections)
		}
	}
	if skipped != 1 {
		t.Errorf("skipped %d cells, want 1", skipped)
	}

	// The JSON form round-trips under the bench snapshot schema.
	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Schema != SnapshotSchema || len(back.Runs) != len(snap.Runs) {
		t.Errorf("round trip lost data: schema=%q runs=%d", back.Schema, len(back.Runs))
	}

	table := snap.Table()
	for _, want := range []string{"smoke", "taskpoly", "compiled", "tagged",
		"mark/sweep", "skip: mark/sweep is implemented for the tag-free strategies"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestScenarioMatrixTotalsMultiReasonSkips pins the skip-row accounting:
// a cell outside the supported envelope on several counts (here tagged ×
// mark/sweep × gc_concurrent × shards) is exactly one skipped row whose
// Skip string carries every applicable reason, and the matrix header's
// totals always satisfy total == run + skipped.
func TestScenarioMatrixTotalsMultiReasonSkips(t *testing.T) {
	scs, err := Parse(`
scenario multi {
  workload    taskpoly
  strategies  compiled tagged
  disciplines marksweep
  shards      1 2
  gc_concurrent
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells, err := Compile(scs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4 (2 strategies x 2 shard counts)", len(cells))
	}
	snap := RunMatrix(cells)
	run, skipped := 0, 0
	for _, r := range snap.Runs {
		if r.Skip != "" {
			skipped++
		} else {
			run++
		}
	}
	if run != 1 || skipped != 3 {
		t.Fatalf("run=%d skipped=%d, want 1 run (compiled/sh1) and 3 single-counted skips", run, skipped)
	}
	table := snap.Table()
	if !strings.Contains(table, "scenario matrix: 4 cells (1 run, 3 skipped)") {
		t.Errorf("matrix totals line wrong:\n%s", table)
	}
	// The doubly-out-of-envelope cells carry every reason in one row.
	for _, r := range snap.Runs {
		switch r.Name {
		case "multi/compiled/marksweep/par1/sh2":
			for _, want := range []string{
				"heap sharding requires a nursery",
				"heap sharding does not compose with concurrent marking",
			} {
				if !strings.Contains(r.Skip, want) {
					t.Errorf("%s: skip %q missing reason %q", r.Name, r.Skip, want)
				}
			}
			if strings.Count(r.Skip, ";") != 1 {
				t.Errorf("%s: want exactly 2 joined reasons, got %q", r.Name, r.Skip)
			}
		case "multi/tagged/marksweep/par1/sh1":
			for _, want := range []string{
				"mark/sweep is implemented for the tag-free strategies",
				"concurrent marking requires a tag-free strategy",
			} {
				if !strings.Contains(r.Skip, want) {
					t.Errorf("%s: skip %q missing reason %q", r.Name, r.Skip, want)
				}
			}
		}
	}
}

// TestScenarioCorpusCompiles pins the committed corpus: every .tfs file
// parses, compiles, and together the "-all" scenarios cover the whole
// tasking corpus × all four strategies × both disciplines.
func TestScenarioCorpusCompiles(t *testing.T) {
	dir, err := FindCorpusDir()
	if err != nil {
		t.Fatalf("FindCorpusDir: %v", err)
	}
	scs, err := LoadPath(dir)
	if err != nil {
		t.Fatalf("LoadPath: %v", err)
	}
	cells, err := Compile(scs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	type axis struct {
		workload string
		strat    gc.Strategy
		disc     Discipline
	}
	covered := map[axis]bool{}
	for _, c := range cells {
		covered[axis{c.Workload.Name, c.Strategy, c.Discipline}] = true
	}
	for _, w := range []string{"taskchurn", "tasktree", "taskpoly", "taskmutate", "taskdeep"} {
		for _, s := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel, gc.StratTagged} {
			for _, d := range []Discipline{Copying, MarkSweep} {
				if !covered[axis{w, s, d}] {
					t.Errorf("corpus does not cover %s/%s/%s", w, s, d.Key())
				}
			}
		}
	}
	// The fault-injection block is exercised by the committed corpus: the
	// tier2-scenario torture gate depends on it.
	torture := false
	for _, sc := range scs {
		if sc.Faults.Torture && sc.Faults.VerifyHeap {
			torture = true
		}
	}
	if !torture {
		t.Errorf("corpus has no torture+verify-heap scenario")
	}
}
