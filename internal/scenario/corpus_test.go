package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioLoadPathAll pins the per-file error accumulation: one
// broken .tfs file in a directory contributes its (file-prefixed,
// positioned) error while the remaining files still load, and a file
// that re-defines a scenario name is skipped whole rather than
// half-loaded. LoadPath keeps its first-error contract on top.
func TestScenarioLoadPathAll(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a-good.tfs", "scenario alpha { workload taskchurn }\n")
	write("b-bad.tfs", "scenario broken {\n  workload\n}\n")
	write("c-dup.tfs", "scenario alpha { workload taskchurn }\nscenario gamma { workload taskchurn }\n")
	write("d-good.tfs", "scenario delta { workload taskchurn }\n")

	scs, errs := LoadPathAll(dir)
	var names []string
	for _, sc := range scs {
		names = append(names, sc.Name)
	}
	if got := strings.Join(names, " "); got != "alpha delta" {
		t.Fatalf("loaded scenarios %q, want %q", got, "alpha delta")
	}
	if len(errs) != 2 {
		t.Fatalf("want 2 errors, got %d: %v", len(errs), errs)
	}
	if !strings.Contains(errs[0].Error(), "b-bad.tfs") {
		t.Errorf("parse error not file-prefixed: %v", errs[0])
	}
	if !strings.Contains(errs[1].Error(), "c-dup.tfs") ||
		!strings.Contains(errs[1].Error(), `duplicate scenario name "alpha"`) {
		t.Errorf("duplicate error misreported: %v", errs[1])
	}

	if _, err := LoadPath(dir); err == nil || !strings.Contains(err.Error(), "b-bad.tfs") {
		t.Errorf("LoadPath should surface the first error, got: %v", err)
	}
}
