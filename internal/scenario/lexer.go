package scenario

import (
	"strings"

	"tagfree/internal/mlang/token"
)

// The scenario lexer follows the skeleton of the MinML one
// (internal/mlang/lexer): a hand-written scanner tracking 1-based
// line:col positions, reusing token.Pos so scenario diagnostics and MinML
// diagnostics speak the same coordinates. The .tfs surface is much
// smaller — identifiers, numbers, braces and line structure — and, unlike
// MinML, newlines are tokens: a scenario statement ends at end of line.

// Kind identifies the lexical class of a scenario token.
type Kind int

// Scenario token kinds.
const (
	EOF Kind = iota
	ILLEGAL
	IDENT   // workload, taskchurn, verify-heap
	INT     // 2048
	FLOAT   // 1.5
	LBRACE  // {
	RBRACE  // }
	NEWLINE // statement terminator
)

var kindNames = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", IDENT: "IDENT", INT: "INT",
	FLOAT: "FLOAT", LBRACE: "{", RBRACE: "}", NEWLINE: "newline",
}

// String returns a readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Kind(?)"
}

// Token is a single scenario lexeme with its position.
type Token struct {
	Kind Kind
	Text string
	Pos  token.Pos
}

// Lexer scans .tfs source into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []*PosError
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*PosError { return l.errs }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) next() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

// .tfs identifiers are lower-case words with interior dashes: key names
// (verify-heap, fail-alloc), workload and scenario names (taskchurn,
// churn-all) and axis values (marksweep). Underscores ride along for
// workload names like task_x.
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c == '-' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipBlanks consumes spaces, tabs and `#` comments — everything between
// tokens except the newline, which is a token of its own.
func (l *Lexer) skipBlanks() {
	for {
		switch l.peek() {
		case ' ', '\t', '\r':
			l.next()
		case '#':
			for l.peek() != '\n' && l.off < len(l.src) {
				l.next()
			}
		default:
			return
		}
	}
}

// Next returns the next token. After the end of input it returns EOF
// tokens forever.
func (l *Lexer) Next() Token {
	l.skipBlanks()
	pos := l.pos()
	c := l.peek()
	switch {
	case l.off >= len(l.src):
		return Token{Kind: EOF, Pos: pos}
	case c == '\n':
		l.next()
		return Token{Kind: NEWLINE, Pos: pos}
	case c == '{':
		l.next()
		return Token{Kind: LBRACE, Text: "{", Pos: pos}
	case c == '}':
		l.next()
		return Token{Kind: RBRACE, Text: "}", Pos: pos}
	case isDigit(c):
		return l.scanNumber(pos)
	case isIdentStart(c):
		return l.scanIdent(pos)
	}
	l.next()
	l.errs = append(l.errs, posErrorf(pos, "unexpected character %q", rune(c)))
	return Token{Kind: ILLEGAL, Text: string(c), Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) Token {
	start := l.off
	for isDigit(l.peek()) {
		l.next()
	}
	kind := INT
	if l.peek() == '.' {
		l.next()
		if !isDigit(l.peek()) {
			l.errs = append(l.errs, posErrorf(pos, "malformed number %q", l.src[start:l.off]))
			return Token{Kind: ILLEGAL, Text: l.src[start:l.off], Pos: pos}
		}
		for isDigit(l.peek()) {
			l.next()
		}
		kind = FLOAT
	}
	// A number running into letters (2048k) is a single malformed token,
	// not a number followed by a surprise identifier.
	if isIdentStart(l.peek()) {
		for isIdentPart(l.peek()) {
			l.next()
		}
		l.errs = append(l.errs, posErrorf(pos, "malformed number %q", l.src[start:l.off]))
		return Token{Kind: ILLEGAL, Text: l.src[start:l.off], Pos: pos}
	}
	return Token{Kind: kind, Text: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Pos) Token {
	start := l.off
	for isIdentPart(l.peek()) {
		l.next()
	}
	return Token{Kind: IDENT, Text: strings.ToLower(l.src[start:l.off]), Pos: pos}
}

// All scans the entire input and returns every token up to and including
// the first EOF. A convenience for tests and the parser.
func (l *Lexer) All() []Token {
	var out []Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == EOF {
			return out
		}
	}
}
