package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioParse fuzzes the .tfs lexer and parser, seeded from the
// committed corpus plus near-miss mutations. The properties: parsing
// never panics, every rejection is a *PosError carrying a valid 1-based
// position, and anything that parses has well-formed axes and survives
// the compiler without panicking.
func FuzzScenarioParse(f *testing.F) {
	if dir, err := FindCorpusDir(); err == nil {
		files, _ := filepath.Glob(filepath.Join(dir, "*.tfs"))
		for _, file := range files {
			if src, err := os.ReadFile(file); err == nil {
				f.Add(string(src))
			}
		}
	}
	f.Add("scenario x { workload taskchurn }")
	f.Add("scenario x {\n  workload taskchurn\n  strategies compiled wizard\n}")
	f.Add("scenario x {\n  nursery 7\n  tlab 999999\n}")
	f.Add("scenario x {\n  faults { heap-grow 1.5 }\n}")
	f.Add("scenario { {")
	f.Add("# just a comment\n\n")
	f.Add("scenario x { workload \xff }")
	f.Add("scenario x {\n  workload taskserve\n  arrivals {\n    period 3000\n    requests 40\n  }\n}")
	f.Add("scenario x {\n  workload taskserve\n  arrivals {\n    period 3000\n    requests 40\n    queue 8\n    shed-heap 85\n    deadline 400000\n    budget-steps 50000\n  }\n  mix {\n    req_tiny 3\n    req_heavy 1\n  }\n}")
	f.Add("scenario x {\n  workload taskserve\n  arrivals { requests 40 }\n}")   // missing period
	f.Add("scenario x {\n  workload taskserve\n  mix { req_tiny 1 }\n}")         // mix without arrivals
	f.Add("scenario x {\n  arrivals { period 1 period 2 requests 1 }\n}")        // duplicate key
	f.Add("scenario x {\n  arrivals { period 1 requests 1 shed-heap 200 }\n}")   // watermark out of range
	f.Add("scenario x {\n  arrivals { period 1 requests 1 budget-steps 99999999999999999999 }\n}")
	f.Add("scenario x {\n  arrivals { period 1 requests 1 }\n  mix { req_tiny 0 }\n}")
	f.Add("scenario x {\n  workload taskspine\n  gc_heap_liveness\n}")
	f.Add("scenario x {\n  workload taskspine\n  strategies tagged\n  disciplines marksweep\n  gc_heap_liveness\n  gc_concurrent\n}") // multi-reason skip cells
	f.Add("scenario x {\n  workload taskspine\n  gc_heap_liveness extra\n}") // key takes no argument
	f.Add("scenario x {\n  gc_heap_liveness\n  gc_heap_liveness\n}")         // duplicate key

	f.Fuzz(func(t *testing.T, src string) {
		scs, err := Parse(src)
		if err != nil {
			var pe *PosError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *PosError: %v", err, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("diagnostic with invalid position %v: %v", pe.Pos, err)
			}
			return
		}
		for _, sc := range scs {
			if sc.Name == "" || sc.Workload == "" {
				t.Fatalf("accepted scenario with empty name/workload: %+v", sc)
			}
			if len(sc.Strategies) == 0 || len(sc.Disciplines) == 0 || len(sc.Par) == 0 || sc.Repeats < 1 {
				t.Fatalf("accepted scenario with empty axis: %+v", sc)
			}
		}
		// The compiler may reject (unknown workload, contradictory
		// sizes) but must never panic, and its rejections are
		// positioned too.
		if _, err := Compile(scs); err != nil {
			var pe *PosError
			if !errors.As(err, &pe) {
				t.Fatalf("compile error %T is not a *PosError: %v", err, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("compile diagnostic with invalid position %v: %v", pe.Pos, err)
			}
		}
	})
}
