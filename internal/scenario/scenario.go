// Package scenario implements the .tfs scenario language: a small
// declarative notation for GC benchmark scenarios, compiled into the
// corpus-run machinery (pipeline.RunTasks) the experiments and telemetry
// reports already use. A scenario names a task workload and the matrix
// axes to cross it with — collection strategies, heap disciplines,
// parallelism — plus the runtime knobs (heap, nursery, promotion, TLAB)
// and a fault-injection block, plus gc_concurrent for incremental marking,
// so that widening the evaluation no longer
// means editing Go in internal/workloads: workloads stay code, but the
// *configurations* under which they run become data.
//
// A .tfs file holds one or more scenarios:
//
//	# taskchurn across every strategy and discipline, sequential and 4 workers.
//	scenario churn-all {
//	  workload    taskchurn
//	  strategies  compiled interp appel tagged
//	  disciplines copying marksweep
//	  par         1 4
//	  faults {
//	    torture
//	    verify-heap
//	  }
//	}
//
// `#` comments run to end of line; statements end at end of line. Every
// key is validated when parsed — unknown keys, unknown strategy or
// discipline names and out-of-range sizes are positioned errors (see
// PosError) — and the ranges mirror the constraints cmd/tfgc and
// cmd/tfbench enforce on their flags, so a scenario that parses is a
// configuration those tools would accept.
//
// Compile crosses the axes into matrix cells, one pipeline.Options per
// (strategy, discipline, par); RunMatrix executes them and renders the
// comparative report (an aligned table plus a tagfree-bench/v1 JSON
// snapshot). Cells whose combination the runtime rejects by design
// (mark/sweep or a nursery under the tagged baseline) are emitted as
// skipped rows rather than dropped, so every strategy × discipline ×
// scenario cell is accounted for.
package scenario

import (
	"fmt"

	"tagfree/internal/gc"
	"tagfree/internal/mlang/token"
)

// Scenario is one parsed scenario: a workload crossed with matrix axes
// under shared runtime knobs. Zero-valued axes get defaults at parse time
// (all strategies, copying discipline, par 1, one repeat); sizes default
// to 0 = "use the workload's recommendation" (heap) or "off" (nursery,
// tlab).
type Scenario struct {
	Name string
	// Pos is the position of the scenario header, for diagnostics.
	Pos token.Pos
	// File is the .tfs file the scenario came from (set by LoadPath;
	// empty for Parse), prefixed onto compile-time diagnostics.
	File string

	// Workload names a task workload from workloads.Tasking.
	Workload string

	// The matrix axes.
	Strategies  []gc.Strategy
	Disciplines []Discipline
	Par         []int
	// Shards crosses heap shard counts (task→shard partitioning with
	// independent per-shard minor collections). Cells with shards > 1
	// outside the sharding envelope (tag-free strategy, a nursery, no
	// gc_concurrent) become reported skips.
	Shards []int

	// Repeats is the best-of wall-time repetition count per cell.
	Repeats int

	// Runtime knobs, in words (0 = default/off).
	HeapWords    int
	NurseryWords int
	PromoteAfter int
	TLABWords    int

	// GCConcurrent turns on incremental (mostly-concurrent) marking for
	// the cells that support it — mark/sweep, tag-free strategy, no
	// nursery, one marker. Cells outside that envelope become reported
	// skips, like mark/sweep under the tagged baseline.
	GCConcurrent bool

	// GCHeapLiveness turns on liveness-guided tracing (spine-only trace
	// descriptors with dead-element pruning and the poison debug mode)
	// for the cells that can carry it. The descriptors are compiled-
	// strategy kernels, so every other strategy's cells become reported
	// skips; within the compiled strategy, out-of-envelope collections
	// (parallel, shard minors, concurrent cycles) degrade to full
	// tracing at runtime with the refusal counted, not skipped here.
	GCHeapLiveness bool

	// Faults is the fault-injection plan applied to every cell.
	Faults FaultBlock

	// Arrivals, when present, turns every cell into a serve-harness run
	// (open-loop arrivals, bounded admission, the degradation ladder)
	// instead of a closed-loop corpus run; Mix is its weighted service
	// mix over the workload's entry functions.
	Arrivals *ArrivalsBlock
	Mix      []MixItem

	// keyPos remembers where each key appeared, so compile-time
	// diagnostics (unknown workload, tlab larger than the heap) can point
	// at source like parse-time ones.
	keyPos map[string]token.Pos
}

// ArrivalsBlock is the scenario's open-loop arrival and admission plan —
// the DSL form of the tfserve flags (serve.Config). Period and requests
// are required; zero-valued knobs take the serve defaults (queue 16,
// inflight 8, burst 1, backoff = period).
type ArrivalsBlock struct {
	// Burst requests arrive every Period steps until Requests have been
	// issued; Seed drives mix sampling and retry jitter.
	Period   int64
	Burst    int
	Requests int
	Seed     int64
	// Queue bounds the admission queue, Inflight the concurrently running
	// requests; ShedHeapPct > 0 sheds arrivals at that heap occupancy.
	Queue       int
	Inflight    int
	ShedHeapPct int
	// Retries/Backoff/BackoffCap are the shed client's retry policy.
	Retries    int
	Backoff    int64
	BackoffCap int64
	// Deadline > 0 cancels admitted requests running longer than this.
	Deadline int64
	// BudgetSteps/BudgetAlloc are the per-task budgets (pipeline.Options).
	BudgetSteps int64
	BudgetAlloc int64
}

// MixItem weights one service class of the arrival mix. Pos points at the
// entry name so Compile can reject entries the workload lacks with a
// positioned diagnostic.
type MixItem struct {
	Entry  string
	Weight int
	Pos    token.Pos
}

// FaultBlock is the scenario's fault-injection plan — the DSL form of the
// tfgc/tfbench robustness flags.
type FaultBlock struct {
	// Torture collects before every allocation; VerifyHeap re-checks heap
	// invariants after every collection.
	Torture    bool
	VerifyHeap bool
	// FailAlloc fails the Nth allocation once; FailEvery fails every Kth.
	FailAlloc int64
	FailEvery int64
	// FailRefills restricts the injections to TLAB refill carves.
	FailRefills bool
	// HeapGrow > 1 enables the recovery ladder's growth rung, bounded by
	// HeapMax semispace words (0 = unbounded).
	HeapGrow float64
	HeapMax  int
}

// Discipline is a heap discipline axis value.
type Discipline int

// The two heap disciplines a scenario can cross with.
const (
	Copying Discipline = iota
	MarkSweep
)

// String returns the discipline's display name (the spelling BenchRun and
// the telemetry tables use).
func (d Discipline) String() string {
	if d == MarkSweep {
		return "mark/sweep"
	}
	return "copying"
}

// Key returns the discipline's DSL spelling.
func (d Discipline) Key() string {
	if d == MarkSweep {
		return "marksweep"
	}
	return "copying"
}

// The validation ranges, shared by the parser and the documentation. They
// mirror what the runtime tolerates: a heap below minHeapWords cannot hold
// the init globals of the smallest corpus program, and the upper bounds
// keep a typo'd size from allocating gigawords.
const (
	minHeapWords = 128
	maxHeapWords = 1 << 26
	minNursery   = 16
	maxNursery   = 1 << 22
	minTLAB      = 8
	maxTLAB      = 1 << 16
	maxPar       = 64
	maxShards    = 64
	maxRepeats   = 100
	maxPromote   = 64
	maxHeapGrow  = 16.0

	// The arrivals{} ranges. Steps are virtual time, so the upper bounds
	// only guard against typo'd magnitudes; budgets get the widest range
	// (a quota of billions of steps is a legitimate "effectively off").
	maxPeriod    = 1 << 30
	maxBurst     = 1 << 10
	maxRequests  = 1 << 20
	maxQueue     = 1 << 16
	maxInflight  = 1 << 10
	maxRetries   = 64
	maxMixWeight = 1 << 20
)

// maxBudget bounds the per-task budget and deadline values (compared as
// int64 so the constant stays portable).
const maxBudget = int64(1) << 40

// strategyNames maps DSL spellings to strategies, in presentation order.
var strategyNames = []struct {
	name  string
	strat gc.Strategy
}{
	{"compiled", gc.StratCompiled},
	{"interp", gc.StratInterp},
	{"appel", gc.StratAppel},
	{"tagged", gc.StratTagged},
}

// strategyByName resolves a DSL strategy spelling.
func strategyByName(name string) (gc.Strategy, bool) {
	for _, s := range strategyNames {
		if s.name == name {
			return s.strat, true
		}
	}
	return 0, false
}

// strategyList renders the accepted strategy spellings for diagnostics.
func strategyList() string {
	return "compiled, interp, appel, tagged"
}

// PosError is a scenario diagnostic with a source position; every error
// the lexer, parser and compiler produce for a given .tfs input is one
// (or wraps one), so tooling can always point at the offending line:col.
type PosError struct {
	Pos token.Pos
	Err error
}

// Error renders the diagnostic as "line:col: message".
func (e *PosError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Err) }

// Unwrap exposes the underlying error.
func (e *PosError) Unwrap() error { return e.Err }

// posErrorf builds a positioned diagnostic.
func posErrorf(pos token.Pos, format string, args ...any) *PosError {
	return &PosError{Pos: pos, Err: fmt.Errorf(format, args...)}
}
