package scenario

import (
	"fmt"
	"strings"
	"time"

	"tagfree/internal/pipeline"
	"tagfree/internal/serve"
)

// The matrix runner: every compiled cell through pipeline.RunTasks, with
// the outcome folded into a comparative report. The JSON form reuses the
// benchmark-snapshot schema (tagfree-bench/v1, see EXPERIMENTS.md) with a
// run kind of "scenario-cell", so the same tooling that reads
// BENCH_PR<n>.json can read a scenario shootout.

// SnapshotSchema identifies the snapshot layout. It is the same schema
// string the benchmark trajectory uses (experiments.BenchSchema);
// duplicated here so the scenario package does not depend on the
// experiment tables (which depend on it for E13).
const SnapshotSchema = "tagfree-bench/v1"

// CellResult is one executed (or skipped) matrix cell.
type CellResult struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"` // "scenario-cell"
	Scenario string `json:"scenario"`
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// Discipline is "copying" or "mark/sweep".
	Discipline  string `json:"discipline"`
	Parallelism int    `json:"parallelism"`
	// Shards is the heap shard count (omitted for the unsharded heap).
	Shards  int `json:"shards,omitempty"`
	Repeats int `json:"repeats"`

	// The resolved configuration, for cross-checking against hand-coded
	// invocations.
	HeapWords    int  `json:"heap_words"`
	NurseryWords int  `json:"nursery_words,omitempty"`
	PromoteAfter int  `json:"promote_after,omitempty"`
	TLABWords    int  `json:"tlab_words,omitempty"`
	Torture      bool `json:"torture,omitempty"`
	VerifyHeap   bool `json:"verify_heap,omitempty"`

	// Skip is the reason a by-design-unsupported combination was not run.
	Skip string `json:"skip,omitempty"`
	// Error reports a run that failed outright (no result to compare).
	Error string `json:"error,omitempty"`

	// OK is true when every task returned its expected value with no
	// faults — the matrix doubles as a cross-strategy correctness check.
	OK      bool  `json:"ok"`
	Faulted int   `json:"faulted,omitempty"`
	RunNS   int64 `json:"run_ns,omitempty"`
	// Collections/GCPauseNS/AllocWords/Records summarize the collector's
	// work: Records is the telemetry record count the differential suite
	// compares against hand-coded runs.
	Collections int64 `json:"gc_count,omitempty"`
	GCPauseNS   int64 `json:"gc_pause_ns,omitempty"`
	AllocWords  int64 `json:"alloc_words,omitempty"`
	Records     int   `json:"records,omitempty"`

	// Serve is set for arrival-bearing cells: the serve-harness report
	// row (arrival/admission configuration, loss ledger, latency
	// percentiles) for the cell's open-loop run.
	Serve *serve.Report `json:"serve,omitempty"`
}

// Snapshot is the whole emitted report.
type Snapshot struct {
	Schema string       `json:"schema"`
	Runs   []CellResult `json:"runs"`
}

// RunMatrix executes every cell (best-of-repeats wall time) and returns
// the report. A cell whose run fails is recorded with its error rather
// than aborting the matrix: the report's job is to show every cell.
func RunMatrix(cells []Cell) *Snapshot {
	snap := &Snapshot{Schema: SnapshotSchema}
	for _, c := range cells {
		snap.Runs = append(snap.Runs, runCell(c))
	}
	return snap
}

// runCell executes one cell.
func runCell(c Cell) CellResult {
	r := CellResult{
		Name:         c.Name,
		Kind:         "scenario-cell",
		Scenario:     c.Scenario,
		Workload:     c.Workload.Name,
		Strategy:     c.Strategy.String(),
		Discipline:   c.Discipline.String(),
		Parallelism:  c.Par,
		Shards:       c.Opts.Shards,
		Repeats:      c.Repeats,
		HeapWords:    c.Opts.HeapWords,
		NurseryWords: c.Opts.NurseryWords,
		PromoteAfter: c.Opts.PromoteAfter,
		TLABWords:    c.Opts.TLABWords,
		Torture:      c.Opts.Torture,
		VerifyHeap:   c.Opts.VerifyHeap,
		Skip:         c.Skip,
	}
	if c.Skip != "" {
		return r
	}
	if c.Serve != nil {
		return runServeCell(c, r)
	}
	var best *pipeline.TaskResult
	bestNS := int64(1 << 62)
	for i := 0; i < c.Repeats; i++ {
		start := time.Now()
		res, err := pipeline.RunTasks(c.Workload.Source, c.Workload.Entries, c.Opts)
		if err != nil {
			r.Error = err.Error()
			return r
		}
		if ns := time.Since(start).Nanoseconds(); ns < bestNS {
			bestNS = ns
			best = res
		}
	}
	r.RunNS = bestNS
	r.Collections = best.GCStats.Collections
	r.GCPauseNS = best.GCStats.PauseNS
	r.AllocWords = best.Heap.WordsAllocated
	r.Records = len(best.Telemetry.Records)
	r.OK = true
	for i, want := range c.Workload.Expect {
		if best.Faults[i] != nil {
			r.Faulted++
			r.OK = false
			continue
		}
		if best.Values[i] != want {
			r.OK = false
		}
	}
	return r
}

// runServeCell executes one arrival-bearing cell through the serve
// harness (best-of-repeats wall time; the virtual-time stats are
// deterministic, so repeats only steady the wall clock). The cell is OK
// when the loss ledger balances (serve.Run enforces it), every completed
// request returned its expected value, and every fault is a planned one —
// a deadline cancellation or a budget overrun, the ladder's own rungs;
// only unplanned faults (OOM-ladder exhaustion, runtime errors) fail it.
func runServeCell(c Cell, r CellResult) CellResult {
	cfg := *c.Serve
	cfg.Workload = c.Workload
	cfg.Opts = c.Opts
	var best *serve.Result
	for i := 0; i < c.Repeats; i++ {
		res, err := serve.Run(cfg)
		if err != nil {
			r.Error = err.Error()
			return r
		}
		if best == nil || res.WallNS < best.WallNS {
			best = res
		}
	}
	rep := serve.NewReport(c.Name, cfg, best)
	r.Serve = &rep
	r.RunNS = best.WallNS
	r.Collections = rep.Collections
	r.AllocWords = best.Group.Heap.Stats.WordsAllocated
	r.GCPauseNS = best.Group.Col.Stats.PauseNS
	r.Records = len(best.Group.Col.Telem.Records)
	r.Faulted = int(best.Stats.Faulted)
	// Telemetry's BudgetFaults counts cancellations too; the difference is
	// the budget overruns among Stats.Faulted, and anything beyond those
	// is an unplanned fault.
	overruns := rep.BudgetFaults - best.Stats.Canceled
	r.OK = best.Stats.WrongResults == 0 && best.Stats.Faulted <= overruns
	return r
}

// Table renders the snapshot as an aligned comparative table, one row per
// cell, grouped the way the cells were compiled (scenario order,
// strategies varying slowest).
func (s *Snapshot) Table() string {
	header := []string{"scenario", "workload", "strategy", "discipline", "par",
		"ok", "gcs", "gc pause", "alloc words", "wall", "note"}
	rows := make([][]string, 0, len(s.Runs))
	for _, r := range s.Runs {
		ok, note := "yes", ""
		switch {
		case r.Skip != "":
			ok, note = "-", "skip: "+r.Skip
		case r.Error != "":
			ok, note = "no", "error: "+r.Error
		case !r.OK:
			ok = "no"
			if r.Faulted > 0 {
				note = fmt.Sprintf("%d task(s) faulted", r.Faulted)
			} else {
				note = "wrong result"
			}
		}
		if r.Serve != nil && note == "" {
			s := r.Serve.Stats
			note = fmt.Sprintf("serve: done=%d shed=%d drop=%d cancel=%d p99=%d",
				s.Completed, s.Shed, s.Dropped, s.Canceled, r.Serve.LatencyP99)
		}
		gcs, pause, alloc, wall := "-", "-", "-", "-"
		if r.Skip == "" && r.Error == "" {
			gcs = fmt.Sprint(r.Collections)
			pause = time.Duration(r.GCPauseNS).String()
			alloc = fmt.Sprint(r.AllocWords)
			wall = time.Duration(r.RunNS).String()
		}
		rows = append(rows, []string{r.Scenario, r.Workload, r.Strategy, r.Discipline,
			fmt.Sprint(r.Parallelism), ok, gcs, pause, alloc, wall, note})
	}

	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario matrix: %d cells (%d run, %d skipped)\n",
		len(s.Runs), len(s.Runs)-s.skipped(), s.skipped())
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

func (s *Snapshot) skipped() int {
	n := 0
	for _, r := range s.Runs {
		if r.Skip != "" {
			n++
		}
	}
	return n
}
