package scenario

import (
	"reflect"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/workloads"
)

// The scenario differential suite: the DSL must add breadth without
// adding a second execution semantics. For a scenario mirroring today's
// hand-coded harness invocations, every compiled cell is checked against
// a hand-written pipeline.Options twin three ways:
//
//   - configuration-identical: the compiled cell's Options equal the
//     hand-coded struct field for field;
//   - observably identical: both runs return every task's expected value
//     and produce the same number of telemetry records;
//   - live-heap identical: gc.LiveSignature of both final heaps is
//     bit-identical (the canonical address-free serialization, so the
//     comparison holds for mark/sweep's history-dependent layouts too).

// handOpts is what a hand-coded harness (cmd/tfgc tasks, the telemetry
// report) builds for one configuration — written out longhand on purpose:
// this is the oracle the compiler is differenced against.
func handOpts(strat gc.Strategy, heapWords int, ms bool, par, nursery, promote, tlab int) pipeline.Options {
	return pipeline.Options{
		Strategy:     strat,
		HeapWords:    heapWords,
		MarkSweep:    ms,
		Parallelism:  par,
		NurseryWords: nursery,
		PromoteAfter: promote,
		TLABWords:    tlab,
	}
}

func TestScenarioDifferentialHandCoded(t *testing.T) {
	scs, err := Parse(`
scenario diff {
  workload    taskchurn
  strategies  compiled appel
  disciplines copying marksweep
  par         1 4
}

scenario diff-nursery {
  workload    taskmutate
  strategies  compiled
  nursery     256
  promote     2
}

scenario diff-tlab {
  workload    taskchurn
  strategies  compiled
  tlab        64
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells, err := Compile(scs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	// The hand-coded twins, one per expected cell. taskchurn's
	// recommended heap is 2048 words, taskmutate's 4096 — the scenarios
	// above leave `heap` unset, so the compiler must default to them.
	churn := 2048
	mutate := 4096
	want := map[string]pipeline.Options{
		"diff/compiled/copying/par1":     handOpts(gc.StratCompiled, churn, false, 1, 0, 0, 0),
		"diff/compiled/copying/par4":     handOpts(gc.StratCompiled, churn, false, 4, 0, 0, 0),
		"diff/compiled/marksweep/par1":   handOpts(gc.StratCompiled, churn, true, 1, 0, 0, 0),
		"diff/compiled/marksweep/par4":   handOpts(gc.StratCompiled, churn, true, 4, 0, 0, 0),
		"diff/appel/copying/par1":        handOpts(gc.StratAppel, churn, false, 1, 0, 0, 0),
		"diff/appel/copying/par4":        handOpts(gc.StratAppel, churn, false, 4, 0, 0, 0),
		"diff/appel/marksweep/par1":      handOpts(gc.StratAppel, churn, true, 1, 0, 0, 0),
		"diff/appel/marksweep/par4":      handOpts(gc.StratAppel, churn, true, 4, 0, 0, 0),
		"diff-nursery/compiled/copying/par1": handOpts(gc.StratCompiled, mutate, false, 1, 256, 2, 0),
		"diff-tlab/compiled/copying/par1":    handOpts(gc.StratCompiled, churn, false, 1, 0, 0, 64),
	}
	if len(cells) != len(want) {
		t.Fatalf("compiled %d cells, want %d", len(cells), len(want))
	}

	for _, cell := range cells {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			hand, ok := want[cell.Name]
			if !ok {
				t.Fatalf("unexpected cell %q", cell.Name)
			}
			// Configuration-identical: the DSL compiled to exactly the
			// struct the hand-coded invocation builds.
			if !reflect.DeepEqual(cell.Opts, hand) {
				t.Fatalf("options mismatch\n scenario: %+v\n hand:     %+v", cell.Opts, hand)
			}

			w, ok := workloads.TaskByName(cell.Workload.Name)
			if !ok {
				t.Fatalf("workload %q missing", cell.Workload.Name)
			}
			scRes, err := pipeline.RunTasks(cell.Workload.Source, cell.Workload.Entries, cell.Opts)
			if err != nil {
				t.Fatalf("scenario run: %v", err)
			}
			handRes, err := pipeline.RunTasks(w.Source, w.Entries, hand)
			if err != nil {
				t.Fatalf("hand-coded run: %v", err)
			}
			for i, wantV := range w.Expect {
				if scRes.Values[i] != wantV || handRes.Values[i] != wantV {
					t.Errorf("task %d: scenario=%d hand=%d want=%d",
						i, scRes.Values[i], handRes.Values[i], wantV)
				}
			}
			if a, b := len(scRes.Telemetry.Records), len(handRes.Telemetry.Records); a != b {
				t.Errorf("telemetry records: scenario=%d hand=%d", a, b)
			}
			scSig := scRes.Group.Col.LiveSignature(scRes.Group.Globals)
			handSig := handRes.Group.Col.LiveSignature(handRes.Group.Globals)
			if !reflect.DeepEqual(scSig, handSig) {
				t.Errorf("live-heap signatures differ (%d vs %d words)", len(scSig), len(handSig))
			}
		})
	}
}

// TestScenarioDifferentialMatrixCounts cross-checks the matrix runner's
// reported record counts against a direct hand-coded run of the same
// configuration: the report must describe the run it claims to.
func TestScenarioDifferentialMatrixCounts(t *testing.T) {
	scs, err := Parse(`
scenario counts {
  workload    taskdeep
  strategies  compiled interp
  disciplines copying marksweep
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells, err := Compile(scs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	snap := RunMatrix(cells)
	for i, r := range snap.Runs {
		cell := cells[i]
		res, err := pipeline.RunTasks(cell.Workload.Source, cell.Workload.Entries, cell.Opts)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if !r.OK || r.Error != "" {
			t.Errorf("%s: matrix reported ok=%v err=%q", r.Name, r.OK, r.Error)
		}
		if r.Records != len(res.Telemetry.Records) {
			t.Errorf("%s: matrix records=%d, hand-coded=%d", r.Name, r.Records, len(res.Telemetry.Records))
		}
		if r.Collections != res.GCStats.Collections {
			t.Errorf("%s: matrix gcs=%d, hand-coded=%d", r.Name, r.Collections, res.GCStats.Collections)
		}
		if r.AllocWords != res.Heap.WordsAllocated {
			t.Errorf("%s: matrix alloc=%d, hand-coded=%d", r.Name, r.AllocWords, res.Heap.WordsAllocated)
		}
	}
}
