package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Loading .tfs files. LoadPath accepts either one file or a directory of
// them — `tfbench -scenario testdata/scenarios/` runs the committed
// corpus — and FindCorpusDir locates that corpus from any package's test
// working directory by walking up to the module root.

// LoadPath parses a .tfs file, or every *.tfs file (sorted by name) in a
// directory. Scenario names must be unique across the whole load. Errors
// are prefixed with the offending file name; the wrapped error is the
// parser's *PosError. On a directory, the first failing file's error is
// reported — callers that want the whole per-file summary (tfbench,
// tfserve) use LoadPathAll.
func LoadPath(path string) ([]*Scenario, error) {
	scs, errs := LoadPathAll(path)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return scs, nil
}

// LoadPathAll is LoadPath with per-file error accumulation: a failing
// .tfs file contributes its (file-prefixed) error and the load continues
// with the remaining files, so one broken scenario in a directory does
// not hide the errors in — or the results of — the others. The returned
// scenarios are everything that did load.
func LoadPathAll(path string) ([]*Scenario, []error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, []error{err}
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*.tfs"))
		if err != nil {
			return nil, []error{err}
		}
		sort.Strings(files)
		if len(files) == 0 {
			return nil, []error{fmt.Errorf("%s: no .tfs scenario files", path)}
		}
	}
	var out []*Scenario
	var errs []error
	seen := map[string]string{} // scenario name -> file
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		scs, err := Parse(string(src))
		if err != nil {
			errs = append(errs, fmt.Errorf("%s:%w", f, err))
			continue
		}
		dup := false
		for _, sc := range scs {
			sc.File = f
			if prev, isDup := seen[sc.Name]; isDup {
				errs = append(errs, fmt.Errorf("%s:%w", f,
					posErrorf(sc.Pos, "duplicate scenario name %q (also defined in %s)", sc.Name, prev)))
				dup = true
				break
			}
			seen[sc.Name] = f
		}
		if dup {
			continue
		}
		out = append(out, scs...)
	}
	return out, errs
}

// FindCorpusDir returns the committed scenario corpus directory
// (<module root>/testdata/scenarios), located by walking up from the
// working directory to the directory containing go.mod — so tests and
// experiments find it whether they run from the repository root or from
// their package directory.
func FindCorpusDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			corpus := filepath.Join(dir, "testdata", "scenarios")
			if _, err := os.Stat(corpus); err != nil {
				return "", fmt.Errorf("scenario corpus missing: %w", err)
			}
			return corpus, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory; cannot locate testdata/scenarios")
		}
		dir = parent
	}
}
