package experiments

import (
	"encoding/json"
	"testing"

	"tagfree/internal/workloads"
)

// TestPercentile pins the nearest-rank-below rule and the degenerate
// cases: empty → 0, single sample → itself at every p, out-of-range p
// clamped to the extremes.
func TestPercentile(t *testing.T) {
	cases := []struct {
		name   string
		sorted []int64
		p      float64
		want   int64
	}{
		{"empty", nil, 0.5, 0},
		{"empty p0", []int64{}, 0, 0},
		{"single p0", []int64{42}, 0, 42},
		{"single p50", []int64{42}, 0.5, 42},
		{"single p100", []int64{42}, 1, 42},
		{"pair p50 rounds down", []int64{10, 20}, 0.5, 10},
		{"five p0", []int64{1, 2, 3, 4, 5}, 0, 1},
		{"five p50", []int64{1, 2, 3, 4, 5}, 0.5, 3},
		{"five p90 rounds down", []int64{1, 2, 3, 4, 5}, 0.9, 4},
		{"five p100", []int64{1, 2, 3, 4, 5}, 1, 5},
		{"p below range clamps", []int64{1, 2, 3}, -0.5, 1},
		{"p above range clamps", []int64{1, 2, 3}, 99.9, 3},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile(%v, %v) = %d, want %d", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

// TestBenchSnapshotSmoke exercises the bench harness end to end on a
// reduced schedule: one pause run per knob combination on the deep-stack
// workload, 4 workers included, plus one e2e run — and checks the
// snapshot marshals under the documented schema. `make tier2-bench` runs
// this under the race detector, so the 4-worker rows double as a race
// smoke over the lock-free plan/site caches.
func TestBenchSnapshotSmoke(t *testing.T) {
	w, ok := workloads.TaskByName("taskdeep")
	if !ok {
		t.Fatal("taskdeep workload missing")
	}
	snap := &BenchSnapshot{Schema: BenchSchema, Repeats: 1}
	for _, par := range []int{1, 4} {
		for _, fast := range []bool{false, true} {
			r := collectPauseRun(w, false, par, fast, 20)
			if r.Collections != 20 || r.PauseP50NS <= 0 || r.ResolveMeanNS <= 0 || r.RootsPerGC <= 0 {
				t.Fatalf("degenerate pause run: %+v", r)
			}
			if fast && r.PlanHits == 0 {
				t.Fatalf("fast run never hit the plan cache: %+v", r)
			}
			if !fast && (r.PlanHits != 0 || r.KernelWords != 0) {
				t.Fatalf("oracle run used the fast path: %+v", r)
			}
			snap.Runs = append(snap.Runs, r)
		}
	}
	lw, ok := workloads.ByName("listchurn")
	if !ok {
		t.Fatal("listchurn workload missing")
	}
	e := e2eRun(lw, true, 1)
	if e.RunNS <= 0 || e.AllocWords <= 0 {
		t.Fatalf("degenerate e2e run: %+v", e)
	}
	snap.Runs = append(snap.Runs, e)

	// The generational split on the barrier-heavy workload: minors must be
	// strictly cheaper than fulls over the tenured resident set, and the
	// end-to-end counters must show the write barrier actually firing.
	mw, ok := workloads.TaskByName("taskmutate")
	if !ok {
		t.Fatal("taskmutate workload missing")
	}
	m := minorPauseRun(mw, false, 20)
	if m.MinorP50NS <= 0 || m.FullP50NS <= 0 {
		t.Fatalf("degenerate minor-pause run: %+v", m)
	}
	if m.MinorP50NS >= m.FullP50NS {
		t.Fatalf("minor p50 %dns not below full p50 %dns", m.MinorP50NS, m.FullP50NS)
	}
	if m.BarrierHits == 0 || m.MinorCollections == 0 {
		t.Fatalf("end-to-end counters missing generational activity: %+v", m)
	}
	snap.Runs = append(snap.Runs, m)

	// The allocation-contention pair: the baseline acquires the shared
	// heap at least once per allocation; buffers must collapse the ratio.
	cw, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	base := allocContentionRun(cw, 0, 1)
	buf := allocContentionRun(cw, benchTLABWords, 1)
	if base.AcqsPerAlloc < 1 {
		t.Fatalf("baseline acqs/alloc %.3f below 1", base.AcqsPerAlloc)
	}
	if buf.AcqsPerAlloc*4 >= 1 || buf.TLABRefills == 0 {
		t.Fatalf("buffers did not amortize acquisitions: %+v", buf)
	}
	if buf.Allocations != base.Allocations {
		t.Fatalf("buffers changed the allocation count: %d vs %d", buf.Allocations, base.Allocations)
	}
	snap.Runs = append(snap.Runs, base, buf)

	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchSnapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != BenchSchema || len(back.Runs) != len(snap.Runs) {
		t.Fatalf("snapshot did not round-trip: %s", js)
	}
}
