package experiments

import (
	"encoding/json"
	"testing"

	"tagfree/internal/workloads"
)

// TestBenchSnapshotSmoke exercises the bench harness end to end on a
// reduced schedule: one pause run per knob combination on the deep-stack
// workload, 4 workers included, plus one e2e run — and checks the
// snapshot marshals under the documented schema. `make tier2-bench` runs
// this under the race detector, so the 4-worker rows double as a race
// smoke over the lock-free plan/site caches.
func TestBenchSnapshotSmoke(t *testing.T) {
	w, ok := workloads.TaskByName("taskdeep")
	if !ok {
		t.Fatal("taskdeep workload missing")
	}
	snap := &BenchSnapshot{Schema: BenchSchema, Repeats: 1}
	for _, par := range []int{1, 4} {
		for _, fast := range []bool{false, true} {
			r := collectPauseRun(w, false, par, fast, 20)
			if r.Collections != 20 || r.PauseP50NS <= 0 || r.ResolveMeanNS <= 0 || r.RootsPerGC <= 0 {
				t.Fatalf("degenerate pause run: %+v", r)
			}
			if fast && r.PlanHits == 0 {
				t.Fatalf("fast run never hit the plan cache: %+v", r)
			}
			if !fast && (r.PlanHits != 0 || r.KernelWords != 0) {
				t.Fatalf("oracle run used the fast path: %+v", r)
			}
			snap.Runs = append(snap.Runs, r)
		}
	}
	lw, ok := workloads.ByName("listchurn")
	if !ok {
		t.Fatal("listchurn workload missing")
	}
	e := e2eRun(lw, true, 1)
	if e.RunNS <= 0 || e.AllocWords <= 0 {
		t.Fatalf("degenerate e2e run: %+v", e)
	}
	snap.Runs = append(snap.Runs, e)

	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchSnapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != BenchSchema || len(back.Runs) != len(snap.Runs) {
		t.Fatalf("snapshot did not round-trip: %s", js)
	}
}
