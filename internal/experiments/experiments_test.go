package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun regenerates every table once (repeats=1) and
// asserts non-empty, well-formed output plus a handful of shape claims the
// paper makes (the full analysis lives in EXPERIMENTS.md).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	tables := All(1)
	if len(tables) != 17 {
		t.Fatalf("expected 17 experiments, got %d", len(tables))
	}
	seen := map[string]*Table{}
	for _, tb := range tables {
		seen[tb.ID] = tb
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header width %d", tb.ID, len(row), len(tb.Header))
			}
		}
		out := tb.Render()
		if !strings.Contains(out, tb.ID) || !strings.Contains(out, "claim:") {
			t.Errorf("%s: malformed rendering", tb.ID)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"} {
		if seen[id] == nil {
			t.Errorf("missing experiment %s", id)
		}
	}
}

// TestE1Shape asserts the headline claim: tag-free allocates strictly
// fewer words on every allocation-heavy workload.
func TestE1Shape(t *testing.T) {
	tb := E1HeapSpace()
	for _, row := range tb.Rows {
		// columns: name, tagfree, tagged, ratio, ...
		if row[3] < "1.0" {
			t.Errorf("%s: tagged/tagfree ratio %s < 1.0 — the E1 claim failed", row[0], row[3])
		}
	}
}

// TestE17Shape asserts the heap-liveness claims: the spine workload
// prunes (pruned words > 0, strictly less retention than full-structure
// tracing), the element-demanding control prunes nothing and retains
// exactly the oracle's words, and every row's results are bit-identical.
func TestE17Shape(t *testing.T) {
	tb := E17HeapLiveness()
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
		// columns: ..., copied full(6), copied pruned(7), ratio(8), equal(9)
		if row[9] != "true" {
			t.Errorf("%s: pruned run diverged from the oracle", row[0])
		}
	}
	spine := byName["taskspine"]
	if spine == nil {
		t.Fatal("E17 lost its taskspine row")
	}
	if spine[4] == "0" {
		t.Error("taskspine: pruned words = 0 — the spine verdicts never reached a pruning kernel")
	}
	if spine[7] >= spine[6] && len(spine[7]) >= len(spine[6]) {
		t.Errorf("taskspine: pruned retention %s not below full retention %s", spine[7], spine[6])
	}
	churn := byName["taskchurn"]
	if churn == nil {
		t.Fatal("E17 lost its taskchurn control row")
	}
	if churn[4] != "0" {
		t.Errorf("taskchurn control pruned %s words — its elements are all demanded", churn[4])
	}
	if churn[6] != churn[7] {
		t.Errorf("taskchurn control retention changed: %s full vs %s pruned", churn[6], churn[7])
	}
}

// TestE6Shape asserts Appel's chain work grows superlinearly relative to
// the compiled walk.
func TestE6Shape(t *testing.T) {
	tb := E6PolyWalk()
	if len(tb.Rows) < 2 {
		t.Fatal("E6 needs at least two depths")
	}
	first := tb.Rows[0][3]
	last := tb.Rows[len(tb.Rows)-1][3]
	if !(len(last) > len(first) || last > first) {
		t.Errorf("appel/compiled ratio should grow with depth: %s -> %s", first, last)
	}
}
