package experiments

import (
	"fmt"
	"time"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/workloads"
)

// e17Workloads are the list-spine shapes where heap-liveness pruning has
// something to prune: long-lived list structure whose elements the rest of
// the program provably never demands. taskspine is the motivating shape
// (boxed pairs consumed only by length); taskpoly and taskdeep hold list
// probes read only through len-style wildcard matches; taskchurn sums its
// lists, so its elements are demanded and the pruner must find nothing.
var e17Workloads = []string{"taskchurn", "taskpoly", "taskdeep", "taskspine"}

// E17HeapLiveness measures liveness-guided tracing: each workload runs
// with the compiled strategy twice, oracle (full-structure tracing) and
// pruned (-gc-heap-liveness), with the poison debug mode armed on the
// pruned run so a wrong spine verdict faults instead of silently reading
// a pruned word. The copied-words delta is structure the analysis proved
// dead that full tracing was retaining; results must be bit-identical.
func E17HeapLiveness() *Table {
	t := &Table{
		ID:    "E17",
		Title: "heap-liveness-guided tracing: spine-only descriptors vs full-structure tracing",
		Claim: "the compile-time liveness maps extend from stack slots into heap structure: where every consumer of a list demands only its spine, the collector can trace the spine and prune the dead element fields, retaining less than type-accurate full-structure tracing — with unchanged results",
		Header: []string{"workload", "gcs", "prune-gcs", "spine roots", "pruned words", "pruned/gc",
			"copied full", "copied pruned", "retained ratio", "equal"},
	}
	for _, name := range e17Workloads {
		w, ok := workloads.TaskByName(name)
		if !ok {
			panic(fmt.Sprintf("E17: no task workload %q", name))
		}
		base := pipeline.Options{
			Strategy:  gc.StratCompiled,
			HeapWords: w.HeapWords,
			MaxSteps:  2_000_000_000,
		}
		off, err := pipeline.RunTasks(w.Source, w.Entries, base)
		if err != nil {
			panic(fmt.Sprintf("E17 %s: %v", w.Name, err))
		}
		pruned := base
		pruned.GCHeapLiveness = true
		pruned.PoisonPruned = true
		on, err := pipeline.RunTasks(w.Source, w.Entries, pruned)
		if err != nil {
			panic(fmt.Sprintf("E17 %s (pruned): %v", w.Name, err))
		}
		equal := len(off.Values) == len(on.Values)
		for i := range off.Values {
			if equal && (off.Values[i] != on.Values[i] || off.Outputs[i] != on.Outputs[i]) {
				equal = false
			}
		}
		perGC := "-"
		if on.Liveness.PruneCollections > 0 {
			perGC = fmt.Sprintf("%.1f", float64(on.GCStats.PrunedWords)/float64(on.Liveness.PruneCollections))
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprint(on.GCStats.Collections),
			fmt.Sprint(on.Liveness.PruneCollections),
			fmt.Sprint(on.Liveness.SpineRoots),
			fmt.Sprint(on.GCStats.PrunedWords),
			perGC,
			fmt.Sprint(off.Heap.WordsCopied),
			fmt.Sprint(on.Heap.WordsCopied),
			ratio(on.Heap.WordsCopied, off.Heap.WordsCopied),
			fmt.Sprint(equal),
		})
	}
	t.Notes = append(t.Notes,
		"both rows per workload run the compiled strategy on the copying discipline; the pruned run arms the poison debug mode, so any element a spine verdict wrongly declared dead would fault on load instead of corrupting the comparison",
		"spine roots counts stack slots routed through a pruning kernel (deferred to the post-trace drain so any full-verdict alias marks shared structure first); pruned words counts element fields overwritten with the poison word instead of traced",
		"taskchurn is the control: its lists are summed, so every element is demanded, the analysis issues no spine verdicts and the pruner must retain exactly what the oracle retains",
		"retained ratio is pruned/full copied words — below 1.0 means the liveness maps let the collector evacuate less than type-accurate full-structure tracing",
	)
	return t
}

// livenessBenchRun measures one workload end-to-end with liveness-guided
// tracing off or on: best-of-repeats wall time plus the whole-run pruning
// counters (deterministic; repeats only steady the timing).
func livenessBenchRun(w workloads.TaskWorkload, live bool, repeats int) BenchRun {
	var best *pipeline.TaskResult
	bestNS := int64(1 << 62)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, err := pipeline.RunTasks(w.Source, w.Entries, pipeline.Options{
			Strategy:       gc.StratCompiled,
			HeapWords:      w.HeapWords,
			GCHeapLiveness: live,
			MaxSteps:       2_000_000_000,
		})
		if err != nil {
			panic(fmt.Sprintf("bench %s: %v", w.Name, err))
		}
		if ns := time.Since(start).Nanoseconds(); ns < bestNS {
			bestNS = ns
			best = res
		}
	}
	mode := "full"
	if live {
		mode = "pruned"
	}
	return BenchRun{
		Name:        fmt.Sprintf("liveness/%s/%s", w.Name, mode),
		Kind:        "heap-liveness",
		Workload:    w.Name,
		Strategy:    "compiled",
		Discipline:  "copying",
		FastPath:    true,
		HeapLive:    live,
		RunNS:       bestNS,
		GCCount:     int64(best.GCStats.Collections),
		GCPauseNS:   best.GCStats.PauseNS,
		PruneGCs:    best.Liveness.PruneCollections,
		SpineRoots:  best.Liveness.SpineRoots,
		PrunedWords: best.GCStats.PrunedWords,
		CopiedWords: best.Heap.WordsCopied,
	}
}
