package experiments

// E15 — mostly-concurrent marking: the max-pause / throughput trade.
//
// A stop-the-world mark/sweep collection stops every task for the whole
// mark+sweep; -gc-concurrent splits the cycle into a brief root-snapshot
// pause, budgeted mark slices interleaved with task execution, and a
// bounded final pause (residual drain + memoized stack re-scan + sweep).
// The experiment measures what the mutator actually sees: individual
// stop events — each stop-the-world pause, and each initial/final pause
// of a concurrent cycle separately — against end-to-end wall time, on
// the pointer-heavy half of the tasking corpus where marking is the
// pause. The bench snapshot (BENCH_PR8.json) carries the same runs in
// machine-readable form, plus the E14 overload matrix on a mark/sweep
// heap with concurrent marking off and on, where the tail percentiles
// (p99/p999 in virtual-time steps) show the pause split reaching
// request latency.

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/scenario"
	"tagfree/internal/workloads"
)

// e15TriggerPct starts cycles at 50% heap occupancy — early enough that
// every corpus workload completes cycles at its recommended heap size.
// e15MarkBudget caps each slice at 256 words so marking actually spreads
// over increments at corpus heap sizes (the 4096-word default would
// drain most of these live sets in one slice).
const (
	e15TriggerPct = 50
	e15MarkBudget = 256
)

// e15Workloads is the pointer-heavy subset: list churn, tree building,
// shared mutable structure and deep polymorphic towers, where marking
// dominates the pause.
var e15Workloads = []string{"taskchurn", "tasktree", "taskmutate", "taskdeep"}

// concMarkSummary is one configuration's pause-vs-throughput measurement.
type concMarkSummary struct {
	wallNS int64
	stops  []int64 // ascending; one entry per mutator stop event
	gcs    int64
	cycles int64
	slices int64
	grays  int64
	aborts int64
}

// concMarkRun executes one end-to-end tasking run with stop-the-world or
// concurrent mark/sweep, best-of-repeats by wall time.
func concMarkRun(w workloads.TaskWorkload, conc bool, repeats int) concMarkSummary {
	var best concMarkSummary
	for r := 0; r < repeats; r++ {
		opts := pipeline.Options{
			Strategy:  gc.StratCompiled,
			HeapWords: w.HeapWords,
			MarkSweep: true,
		}
		if conc {
			opts.GCConcurrent = true
			opts.ConcTriggerPct = e15TriggerPct
			opts.ConcMarkBudget = e15MarkBudget
		}
		start := time.Now()
		res, err := pipeline.RunTasks(w.Source, w.Entries, opts)
		wall := time.Since(start).Nanoseconds()
		if err != nil {
			panic(fmt.Sprintf("E15 %s conc=%v: %v", w.Name, conc, err))
		}
		for i, e := range w.Expect {
			if res.Values[i] != e {
				panic(fmt.Sprintf("E15 %s conc=%v: task %d = %d, want %d", w.Name, conc, i, res.Values[i], e))
			}
		}
		if r > 0 && wall >= best.wallNS {
			continue
		}
		s := concMarkSummary{wallNS: wall, gcs: int64(len(res.Telemetry.Records))}
		for i := range res.Telemetry.Records {
			rec := &res.Telemetry.Records[i]
			if rec.Conc != nil {
				s.stops = append(s.stops, rec.Conc.InitialPauseNS, rec.Conc.FinalPauseNS)
				s.cycles++
				s.slices += rec.Conc.MarkSlices
				s.grays += rec.Conc.BarrierGrays
			} else {
				s.stops = append(s.stops, rec.PauseNS)
			}
		}
		sort.Slice(s.stops, func(i, j int) bool { return s.stops[i] < s.stops[j] })
		s.aborts = res.Telemetry.Resilience.ConcAborts
		best = s
	}
	return best
}

// E15ConcurrentMark renders the trade: per workload, the stop-the-world
// row against the concurrent row — stop-event percentiles and maximum
// versus end-to-end wall time, with the cycle anatomy (slices, barrier
// grays, watchdog aborts) alongside.
func E15ConcurrentMark(repeats int) *Table {
	t := &Table{
		ID:    "E15",
		Title: "mostly-concurrent marking: max pause vs throughput",
		Claim: "the frame-map machinery that makes stop-the-world pauses cheap also makes them splittable: snapshotting roots through memoized frame plans is fast enough to do twice, so marking runs in budgeted slices between task quanta and the mutator's longest stop shrinks to the larger of two bounded pauses, at a small wall-time cost",
		Header: []string{"workload", "mode", "wall", "gcs", "cycles",
			"stop p50", "stop p99", "stop max", "slices/cycle", "grays/cycle", "aborts"},
	}
	for _, name := range e15Workloads {
		w, ok := workloads.TaskByName(name)
		if !ok {
			panic(fmt.Sprintf("E15: no task workload %q", name))
		}
		for _, conc := range []bool{false, true} {
			s := concMarkRun(w, conc, repeats)
			mode := "stw"
			perCycle := func(n int64) string { return "-" }
			if conc {
				mode = "concurrent"
				perCycle = func(n int64) string {
					if s.cycles == 0 {
						return "-"
					}
					return fmt.Sprint(n / s.cycles)
				}
			}
			maxStop := int64(0)
			if len(s.stops) > 0 {
				maxStop = s.stops[len(s.stops)-1]
			}
			row := []string{
				w.Name, mode,
				time.Duration(s.wallNS).String(),
				fmt.Sprint(s.gcs),
				fmt.Sprint(s.cycles),
				fmt.Sprint(percentile(s.stops, 0.50)),
				fmt.Sprint(percentile(s.stops, 0.99)),
				fmt.Sprint(maxStop),
				perCycle(s.slices),
				perCycle(s.grays),
				fmt.Sprint(s.aborts),
			}
			if !conc {
				row[10] = "-"
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"stop events are individual mutator stops in ns: every stop-the-world pause, and each concurrent cycle's initial and final pause separately",
		fmt.Sprintf("concurrent rows trigger a cycle at %d%% heap occupancy (hysteresis: an eighth of the heap must be newly occupied since the last collection) and mark %d words per slice", e15TriggerPct, e15MarkBudget),
		"gcs counts all collections; cycles the ones finished incrementally — the difference is stop-the-world collections the trigger, the recovery ladder or a watchdog abort forced",
		"aborts counts watchdog/fallback aborts (gray queue over budget, non-ground store, or a stop-the-world collection taking over mid-cycle)",
		"regenerate with `tfbench e15`; the same runs land in the bench snapshot via `make bench-json`",
	)
	return t
}

// concMarkBenchRun maps one E15 configuration into the snapshot schema.
func concMarkBenchRun(w workloads.TaskWorkload, conc bool, repeats int) BenchRun {
	s := concMarkRun(w, conc, repeats)
	name := fmt.Sprintf("conc-mark/%s/stw", w.Name)
	if conc {
		name = fmt.Sprintf("conc-mark/%s/concurrent", w.Name)
	}
	maxStop := int64(0)
	if len(s.stops) > 0 {
		maxStop = s.stops[len(s.stops)-1]
	}
	return BenchRun{
		Name:         name,
		Kind:         "conc-mark",
		Workload:     w.Name,
		Strategy:     "compiled",
		Discipline:   "mark/sweep",
		FastPath:     true,
		Concurrent:   conc,
		RunNS:        s.wallNS,
		GCCount:      s.gcs,
		PauseP50NS:   percentile(s.stops, 0.50),
		PauseP99NS:   percentile(s.stops, 0.99),
		StopMaxNS:    maxStop,
		ConcCycles:   s.cycles,
		MarkSlices:   s.slices,
		BarrierGrays: s.grays,
		ConcAborts:   s.aborts,
	}
}

// serveOverloadRuns replays the committed E14 overload matrix on a
// mark/sweep heap with concurrent marking off or on, and maps each cell's
// latency tail into the snapshot. The .tfs scenarios are loaded as
// committed and re-pointed at the mark/sweep discipline — the same
// mutation `tfserve -gc-marksweep -gc-concurrent` would apply.
func serveOverloadRuns(conc bool) []BenchRun {
	dir, err := scenario.FindCorpusDir()
	if err != nil {
		panic(fmt.Sprintf("bench overload: %v", err))
	}
	scs, err := scenario.LoadPath(filepath.Join(dir, "overload.tfs"))
	if err != nil {
		panic(fmt.Sprintf("bench overload: %v", err))
	}
	for _, sc := range scs {
		sc.Disciplines = []scenario.Discipline{scenario.MarkSweep}
		sc.GCConcurrent = conc
	}
	cells, err := scenario.Compile(scs)
	if err != nil {
		panic(fmt.Sprintf("bench overload: %v", err))
	}
	snap := scenario.RunMatrix(cells)
	var runs []BenchRun
	for _, r := range snap.Runs {
		if r.Error != "" {
			panic(fmt.Sprintf("bench overload: %s: %s", r.Name, r.Error))
		}
		rep := r.Serve
		if rep == nil {
			panic(fmt.Sprintf("bench overload: cell %s is not a serve cell", r.Name))
		}
		mode := "stw"
		if conc {
			mode = "concurrent"
		}
		runs = append(runs, BenchRun{
			Name:           fmt.Sprintf("serve-overload/%s/%s", r.Scenario, mode),
			Kind:           "serve-overload",
			Workload:       "taskserve",
			Strategy:       "compiled",
			Discipline:     "mark/sweep",
			FastPath:       true,
			Concurrent:     conc,
			RunNS:          rep.WallNS,
			GCCount:        rep.Collections,
			LatencyP50:     rep.LatencyP50,
			LatencyP99:     rep.LatencyP99,
			LatencyP999:    rep.LatencyP999,
			ThroughputRPMS: rep.ThroughputRPMS,
		})
	}
	return runs
}
