package experiments

// E13 — the all-strategies comparative matrix, driven by the scenario
// corpus. Workload breadth stops being gated on editing Go: the committed
// .tfs files under testdata/scenarios/ describe the shootout
// declaratively (in the spirit of Hannan et al.'s comparative analysis of
// classic collection algorithms), the scenario compiler turns them into
// the same pipeline.Options the hand-coded harnesses build — pinned by
// internal/scenario's differential suite — and this table summarizes the
// resulting matrix.

import (
	"fmt"
	"time"

	"tagfree/internal/scenario"
)

// E13ScenarioMatrix compiles and runs the committed scenario corpus and
// renders one row per executed cell (skipped combinations keep their row,
// with the reason). The matrix doubles as a cross-strategy correctness
// check: the ok column asserts every task returned its expected value.
func E13ScenarioMatrix() *Table {
	dir, err := scenario.FindCorpusDir()
	if err != nil {
		panic(fmt.Sprintf("E13: %v", err))
	}
	scs, err := scenario.LoadPath(dir)
	if err != nil {
		panic(fmt.Sprintf("E13: %v", err))
	}
	cells, err := scenario.Compile(scs)
	if err != nil {
		panic(fmt.Sprintf("E13: %v", err))
	}
	snap := scenario.RunMatrix(cells)

	t := &Table{
		ID:    "E13",
		Title: "scenario matrix: all strategies × all disciplines over the declarative corpus",
		Claim: "the comparative evaluation is data, not code: .tfs scenarios compile to the same configurations the hand-coded harnesses build, and the resulting matrix covers every strategy × discipline × scenario cell",
		Header: []string{"scenario", "workload", "strategy", "discipline", "par",
			"ok", "gcs", "gc pause", "alloc words", "note"},
	}
	for _, r := range snap.Runs {
		ok, note := "yes", ""
		switch {
		case r.Skip != "":
			ok, note = "-", "skip: "+r.Skip
		case r.Error != "":
			ok, note = "no", "error: "+r.Error
		case !r.OK:
			ok = "no"
			note = fmt.Sprintf("%d task(s) faulted / wrong result", r.Faulted)
		}
		gcs, pause, alloc := "-", "-", "-"
		if r.Skip == "" && r.Error == "" {
			gcs = fmt.Sprint(r.Collections)
			pause = time.Duration(r.GCPauseNS).String()
			alloc = fmt.Sprint(r.AllocWords)
		}
		t.Rows = append(t.Rows, []string{r.Scenario, r.Workload, r.Strategy, r.Discipline,
			fmt.Sprint(r.Parallelism), ok, gcs, pause, alloc, note})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("corpus: %s — %d scenarios compiled to %d cells (%d run)", dir, len(scs), len(cells), len(cells)-countSkips(cells)),
		"each cell is one pipeline.RunTasks invocation with the scenario-compiled Options; the scenario differential suite pins those Options (and the resulting live-heap signature) against hand-coded twins",
		"skipped rows are combinations the runtime rejects by design (mark/sweep or a nursery under the tagged baseline), reported so the matrix stays total",
		"regenerate any subset with `tfbench -scenario <file|dir>`; add -json (or -bench-json <file>) for the tagfree-bench/v1 snapshot",
	)
	return t
}

func countSkips(cells []scenario.Cell) int {
	n := 0
	for _, c := range cells {
		if c.Skip != "" {
			n++
		}
	}
	return n
}
