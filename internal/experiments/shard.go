package experiments

import (
	"fmt"
	"path/filepath"

	"tagfree/internal/scenario"
	"tagfree/internal/serve"
)

// E16ShardedMinors measures what heap sharding buys under load: the
// committed overload matrix's 2x-rate scenario (testdata/scenarios/
// overload.tfs, overload-2x) re-run with a generational nursery split
// into 1/2/4/8 shards. With one shard every minor collection is
// stop-the-world — each pause parks every runnable task. With more
// shards a full nursery suspends only its own shard's tasks while the
// others keep executing their quanta; the overlap column counts, summed
// over all shard minors, how many other-shard tasks were runnable during
// a collection — mutator progress a stop-the-world minor would have
// forfeited. Tail latencies are in virtual-time steps (E14 methodology),
// so rows are deterministic and comparable.
func E16ShardedMinors() *Table {
	dir, err := scenario.FindCorpusDir()
	if err != nil {
		panic(fmt.Sprintf("E16: %v", err))
	}
	scs, err := scenario.LoadPath(filepath.Join(dir, "overload.tfs"))
	if err != nil {
		panic(fmt.Sprintf("E16: %v", err))
	}
	cells, err := scenario.Compile(scs)
	if err != nil {
		panic(fmt.Sprintf("E16: %v", err))
	}
	var base *serve.Config
	for _, c := range cells {
		if c.Scenario == "overload-2x" && c.Serve != nil && c.Skip == "" {
			// Workload and Opts stay zero in a compiled serve plan (they
			// vary per cell); fill them from the cell exactly as the matrix
			// runner does.
			cfg := *c.Serve
			cfg.Workload = c.Workload
			cfg.Opts = c.Opts
			base = &cfg
			break
		}
	}
	if base == nil {
		panic("E16: overload.tfs lost its overload-2x serve cell")
	}

	t := &Table{
		ID:    "E16",
		Title: "sharded heaps: per-shard minor collection under 2x overload",
		Claim: "partitioning tasks over per-shard nurseries lets a shard collect its young generation while every other shard's mutators keep running: shard minors replace stop-the-world minors and the overlap column counts the task-quanta of mutation that would otherwise have been suspended",
		Header: []string{"shards", "done", "gcs", "shard-minors", "overlap", "overlap/minor",
			"exposures", "p50", "p99", "p999"},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := *base
		// The overload matrix runs nursery-less; sharding is nursery
		// machinery, so every row gets the same generational setup and only
		// the shard count varies. 1<<11 words per young half keeps minors
		// frequent enough at this arrival rate to measure overlap.
		cfg.Opts.NurseryWords = 1 << 11
		if shards > 1 {
			cfg.Opts.Shards = shards
		}
		res, err := serve.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("E16: shards=%d: %v", shards, err))
		}
		rep := serve.NewReport(fmt.Sprintf("overload-2x/sh%d", shards), cfg, res)
		gs := res.Group.Stats
		perMinor := "-"
		if gs.ShardMinors > 0 {
			perMinor = fmt.Sprintf("%.1f", float64(gs.ShardMinorOverlapTasks)/float64(gs.ShardMinors))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(shards),
			fmt.Sprintf("%d/%d", rep.Stats.Completed, rep.Stats.Requests),
			fmt.Sprint(gs.Collections),
			fmt.Sprint(gs.ShardMinors),
			fmt.Sprint(gs.ShardMinorOverlapTasks),
			perMinor,
			fmt.Sprint(gs.ShardExposures),
			fmt.Sprint(rep.LatencyP50),
			fmt.Sprint(rep.LatencyP99),
			fmt.Sprint(rep.LatencyP999),
		})
	}
	t.Notes = append(t.Notes,
		"all rows are overload-2x (period 3000, 2x the sustainable rate) with a 2048-word-per-half nursery added; shards=1 is the unsharded generational baseline where every minor stops the world",
		"overlap sums, over all shard minors, the tasks in other shards that stayed runnable through the collection; overlap/minor is the average mutator concurrency each shard minor preserved",
		"exposures count young pointers observed escaping their shard (to a global or across shards); an exposed shard falls back to global collections until a tenure-all empties the nurseries",
		"latencies are virtual-time steps, first-arrival to completion; regenerate with `tfbench e16`",
	)
	return t
}
