// Package experiments regenerates the paper's evaluation. The PLDI'91
// paper reports no measured tables — the author states that experiments
// were planned ("what the precise space/time trade-off is remains to be
// seen from experiments", §2.4). Every claim in the paper therefore
// becomes a numbered, regenerable experiment here; EXPERIMENTS.md records
// the measured outcomes next to the claims.
//
//	E1  heap space: tagged vs tag-free object sizes
//	E2  mutator time: tag stripping/reinstating overhead and the 63-bit limit
//	E3  liveness precision: live maps vs trace-everything retention
//	E4  the compiled/interpreted space-time trade-off (plus Appel, tagged)
//	E5  gc_word elision by the §5.1 analysis
//	E6  polymorphic stack walk: O(n) incremental vs Appel's chain re-walk
//	E7  tasking: suspension latency and the Rgc check cost
//	E8  runtime type reps: the completeness gap the paper's protocol misses
//	E9  collection disciplines: copying vs mark/sweep on the same maps
//	E10 collection fast path: pause breakdown, cached vs uncached (bench.go)
//	E11 generational nursery: minor vs full collection pause (bench.go)
//	E12 per-task allocation buffers: shared-heap acquisitions per allocation
//	E13 scenario matrix: the declarative .tfs corpus, all strategies ×
//	    disciplines (scenario.go)
//	E14 overload serving: graceful degradation under open-loop arrivals
//	    (serve.go)
//	E15 mostly-concurrent marking: max pause vs throughput, stop-the-world
//	    against incremental cycles (concurrent.go)
//	E16 sharded heaps: per-shard minor collection under overload (shard.go)
//	E17 heap-liveness-guided tracing: spine-only descriptors vs
//	    full-structure tracing (liveness.go)
package experiments

import (
	"fmt"
	"strings"
	"time"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/workloads"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's claim being tested
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func run(w workloads.Workload, opts pipeline.Options) (*pipeline.Result, error) {
	opts.HeapWords = w.HeapWords
	opts.MaxSteps = 2_000_000_000
	return pipeline.Run(w.Source, opts)
}

func mustRun(w workloads.Workload, opts pipeline.Options) *pipeline.Result {
	res, err := run(w, opts)
	if err != nil {
		panic(fmt.Sprintf("experiment workload %s [%v]: %v", w.Name, opts.Strategy, err))
	}
	if res.Value != w.Expect {
		panic(fmt.Sprintf("experiment workload %s [%v]: result %d, want %d",
			w.Name, opts.Strategy, res.Value, w.Expect))
	}
	return res
}

func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// ---------------------------------------------------------------------------
// E1 — heap space.
// ---------------------------------------------------------------------------

// E1HeapSpace measures words allocated and peak residency under the tagged
// and tag-free representations.
func E1HeapSpace() *Table {
	t := &Table{
		ID:    "E1",
		Title: "heap space: tagged vs tag-free representation",
		Claim: "\"more efficient use of heap space\" (§1): removing headers and tag bits shrinks every object",
		Header: []string{"workload", "alloc words (tagfree)", "alloc words (tagged)",
			"tagged/tagfree", "peak live (tagfree)", "peak live (tagged)"},
	}
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		free := mustRun(w, pipeline.Options{Strategy: gc.StratCompiled})
		tag := mustRun(w, pipeline.Options{Strategy: gc.StratTagged})
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprint(free.HeapStats.WordsAllocated),
			fmt.Sprint(tag.HeapStats.WordsAllocated),
			ratio(tag.HeapStats.WordsAllocated, free.HeapStats.WordsAllocated),
			fmt.Sprint(free.HeapStats.PeakLive),
			fmt.Sprint(tag.HeapStats.PeakLive),
		})
	}
	t.Notes = append(t.Notes,
		"cons cells: 2 words tag-free vs 3 tagged (+50%); the expected shape is a 1.3-1.5x tagged overhead on cell-heavy loads")
	return t
}

// ---------------------------------------------------------------------------
// E2 — mutator time.
// ---------------------------------------------------------------------------

// E2MutatorTags times the arithmetic-only workloads under both
// representations (identical instruction streams except the tag-handling
// arithmetic variants), and demonstrates the integer-width difference.
func E2MutatorTags(repeats int) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "mutator cost of integer tags",
		Claim:  "\"the tag must be stripped off before most arithmetic operations and reinstated in the result\" (§1)",
		Header: []string{"workload", "tagfree ns/run", "tagged ns/run", "tagged/tagfree"},
	}
	for _, w := range workloads.All {
		if w.AllocHeavy {
			continue
		}
		best := func(strat gc.Strategy) int64 {
			bestNS := int64(1 << 62)
			for i := 0; i < repeats; i++ {
				start := time.Now()
				mustRun(w, pipeline.Options{Strategy: strat})
				if ns := time.Since(start).Nanoseconds(); ns < bestNS {
					bestNS = ns
				}
			}
			return bestNS
		}
		free := best(gc.StratCompiled)
		tag := best(gc.StratTagged)
		t.Rows = append(t.Rows, []string{
			w.Name, fmt.Sprint(free), fmt.Sprint(tag), ratio(tag, free),
		})
	}
	t.Notes = append(t.Notes,
		"add/sub use the 1-op tagged identities; mul/div/mod strip and reinstate — the gap grows with multiplication density",
		"tag-free integers are full 64-bit; tagged integers wrap at 63 bits (see TestTaggedIntWidth)")
	return t
}

// ---------------------------------------------------------------------------
// E3 — liveness precision.
// ---------------------------------------------------------------------------

// E3Liveness compares retention under §5.2 live maps against
// trace-everything frame maps and Appel-style per-procedure descriptors.
func E3Liveness() *Table {
	t := &Table{
		ID:    "E3",
		Title: "liveness precision: copied words per strategy",
		Claim: "\"more accurate recognition of live data and garbage\" (§1): dead slots omitted from frame maps retain less",
		Header: []string{"workload", "copied (live maps)", "copied (all slots)", "copied (appel)",
			"all/live", "collections (live)"},
	}
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		precise := mustRun(w, pipeline.Options{Strategy: gc.StratCompiled})
		sloppy := mustRun(w, pipeline.Options{Strategy: gc.StratCompiled, DisableLiveness: true})
		appel := mustRun(w, pipeline.Options{Strategy: gc.StratAppel})
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprint(precise.HeapStats.WordsCopied),
			fmt.Sprint(sloppy.HeapStats.WordsCopied),
			fmt.Sprint(appel.HeapStats.WordsCopied),
			ratio(sloppy.HeapStats.WordsCopied, precise.HeapStats.WordsCopied),
			fmt.Sprint(precise.HeapStats.Collections),
		})
	}
	t.Notes = append(t.Notes,
		"Appel mode also zero-fills frames at entry (uninitialized variables, §1.1.1); its copied words include dead-slot retention")
	return t
}

// ---------------------------------------------------------------------------
// E4 — the space/time trade-off.
// ---------------------------------------------------------------------------

// E4SpaceTime measures GC metadata size against collection pause time for
// all four strategies — the experiment the paper explicitly left open
// (§2.4).
func E4SpaceTime(repeats int) *Table {
	t := &Table{
		ID:    "E4",
		Title: "GC metadata size vs collection time (compiled vs interpreted vs Appel vs tagged)",
		Claim: "\"What the precise space/time trade-off is remains to be seen from experiments\" (§2.4)",
		Header: []string{"workload", "strategy", "metadata words", "pause ns/GC",
			"slots traced", "desc bytes decoded"},
	}
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		for _, strat := range pipeline.Strategies {
			var best *pipeline.Result
			var bestPause int64 = 1 << 62
			for i := 0; i < repeats; i++ {
				res := mustRun(w, pipeline.Options{Strategy: strat})
				if res.GCStats.Collections == 0 {
					best = res
					bestPause = 0
					break
				}
				p := res.GCStats.PauseNS / res.GCStats.Collections
				if p < bestPause {
					bestPause = p
					best = res
				}
			}
			t.Rows = append(t.Rows, []string{
				w.Name, strat.String(),
				fmt.Sprint(best.MetadataWords),
				fmt.Sprint(bestPause),
				fmt.Sprint(best.GCStats.SlotsTraced),
				fmt.Sprint(best.GCStats.DescBytesDecoded),
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: compiled pauses < interpreted pauses; interpreted metadata < compiled metadata; tagged has zero metadata but pays per-object headers (E1) and scans every slot",
	)
	return t
}

// ---------------------------------------------------------------------------
// E5 — gc_word elision.
// ---------------------------------------------------------------------------

// E5GCWordElision reports the §5.1 analysis across the corpus.
func E5GCWordElision() *Table {
	t := &Table{
		ID:    "E5",
		Title: "gc_word elision by the GC-possible analysis",
		Claim: "\"no garbage collection code need be generated to trace the variables of the calling procedure\" (§1, §5.1; higher-order case via 0-CFA)",
		Header: []string{"workload", "sites", "direct calls", "elided",
			"clos calls", "elided (0-CFA)", "empty frame maps"},
	}
	for _, w := range workloads.All {
		prog, anal, err := pipeline.Build(w.Source, pipeline.Options{Strategy: gc.StratCompiled})
		if err != nil {
			panic(err)
		}
		_, cfaAnal, err := pipeline.Build(w.Source, pipeline.Options{Strategy: gc.StratCompiled, UseCFA: true})
		if err != nil {
			panic(err)
		}
		empty := 0
		for _, si := range prog.Sites {
			if len(si.Live) == 0 {
				empty++
			}
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprint(anal.Stats.Sites),
			fmt.Sprint(anal.Stats.DirectCallSites),
			fmt.Sprint(anal.Stats.ElidedSites),
			fmt.Sprint(anal.Stats.ClosCallSites),
			fmt.Sprint(cfaAnal.Stats.ElidedClosSites),
			fmt.Sprint(empty),
		})
	}
	t.Notes = append(t.Notes,
		"empty frame maps are the paper's no_trace routines: a gc_word shared by every site with nothing live",
		"arithmetic-only workloads (fib, tak) elide every direct call site",
		"the 0-CFA column implements the higher-order analysis the paper defers to abstract interpretation (§5.1)")
	return t
}

// ---------------------------------------------------------------------------
// E6 — polymorphic stack walk.
// ---------------------------------------------------------------------------

// deepPolySrc builds a polymorphic frame tower of the given depth and
// forces a collection near the top.
func deepPolySrc(depth int) (string, int64) {
	src := fmt.Sprintf(`
let probe x = (let _ = [x; x] in 1)
let rec pdepth x acc n =
  if n = 0 then acc
  else probe x + pdepth x acc (n - 1)
let main () = pdepth (1, true) 0 %d
`, depth)
	return src, int64(depth)
}

// E6PolyWalk compares the incremental oldest→newest walk against Appel's
// per-frame chain re-walk as polymorphic stack depth grows.
func E6PolyWalk() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "polymorphic type resolution work vs stack depth",
		Claim:  "\"the stack is traversed at most twice\" (§3) vs Appel's per-frame chain walk (§1.1.1)",
		Header: []string{"depth", "frames traced (compiled)", "chain steps (appel)", "appel/compiled"},
	}
	for _, depth := range []int{50, 100, 200, 400} {
		src, want := deepPolySrc(depth)
		// Size the heap so a collection happens near full depth: each
		// level allocates two cons cells (4 words).
		heapWords := depth * 3 // forces one GC around 3/4 depth
		if heapWords < 128 {
			heapWords = 128
		}
		opts := func(s gc.Strategy) pipeline.Options {
			return pipeline.Options{Strategy: s, HeapWords: heapWords, MaxSteps: 1 << 40}
		}
		comp, err := pipeline.Run(src, opts(gc.StratCompiled))
		if err != nil {
			panic(err)
		}
		app, err := pipeline.Run(src, opts(gc.StratAppel))
		if err != nil {
			panic(err)
		}
		if comp.Value != want || app.Value != want {
			panic("E6: wrong result")
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth),
			fmt.Sprint(comp.GCStats.FramesTraced),
			fmt.Sprint(app.GCStats.ChainSteps),
			ratio(app.GCStats.ChainSteps, comp.GCStats.FramesTraced),
		})
	}
	t.Notes = append(t.Notes,
		"compiled-mode work grows linearly with depth; Appel chain steps grow quadratically (the appel/compiled column grows with depth)")
	return t
}

// ---------------------------------------------------------------------------
// E7 — tasking.
// ---------------------------------------------------------------------------

// E7Tasking measures suspension latency and Rgc check counts as the number
// of tasks grows.
func E7Tasking() *Table {
	t := &Table{
		ID:    "E7",
		Title: "tasking: suspension latency and Rgc checks vs task count and policy",
		Claim: "the paper's two §4 policies: Rgc checked at every call (cheap suspension) vs only in allocation routines (fewer checks, longer waits)",
		Header: []string{"tasks", "policy", "collections", "max suspend latency (instrs)",
			"avg suspend latency", "Rgc checks", "instructions"},
	}
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (upto 25)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + round ())
let t0 () = work 40 0
let t1 () = work 40 0
let t2 () = work 40 0
let t3 () = work 40 0
let t4 () = work 40 0
let t5 () = work 40 0
let t6 () = work 40 0
let t7 () = work 40 0
`
	for _, n := range []int{1, 2, 4, 8} {
		entries := make([]string, n)
		for i := range entries {
			entries[i] = fmt.Sprintf("t%d", i)
		}
		for _, atAllocs := range []bool{false, true} {
			res, err := pipeline.RunTasks(src, entries, pipeline.Options{
				Strategy:        gc.StratCompiled,
				HeapWords:       2048,
				SuspendAtAllocs: atAllocs,
			})
			if err != nil {
				panic(err)
			}
			var maxL, sumL int64
			for _, l := range res.Stats.SuspendLatency {
				if l > maxL {
					maxL = l
				}
				sumL += l
			}
			avg := "-"
			if len(res.Stats.SuspendLatency) > 0 {
				avg = fmt.Sprintf("%.0f", float64(sumL)/float64(len(res.Stats.SuspendLatency)))
			}
			policy := "at-calls"
			if atAllocs {
				policy = "at-allocs"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n),
				policy,
				fmt.Sprint(res.Stats.Collections),
				fmt.Sprint(maxL),
				avg,
				fmt.Sprint(res.Stats.RgcChecks),
				fmt.Sprint(res.Stats.Instructions),
			})
		}
	}
	t.Notes = append(t.Notes,
		"at-calls: latency bounded by the longest inter-call gap of any running task",
		"at-allocs: roughly half the checks, but tasks between allocations run on — the paper's \"might allow some processes to run for a long time while others are suspended\"",
	)
	return t
}

// ---------------------------------------------------------------------------
// E8 — runtime type reps.
// ---------------------------------------------------------------------------

// E8RuntimeReps quantifies the extension the paper's stack-only protocol
// cannot express: closures whose captured values' types do not occur in
// their own arrow type need type-rep words stored at creation, and their
// creators need hidden rep arguments.
func E8RuntimeReps() *Table {
	t := &Table{
		ID:    "E8",
		Title: "runtime type representations for phantom-typed closures",
		Claim: "the paper claims zero runtime cost (§6.1); escaping polymorphic-capture closures falsify it — this measures the minimal cost",
		Header: []string{"workload", "funcs", "rep-arg funcs", "rep-storing closures",
			"interned reps after run", "result ok"},
	}
	for _, w := range workloads.All {
		prog, anal, err := pipeline.Build(w.Source, pipeline.Options{Strategy: gc.StratCompiled})
		if err != nil {
			panic(err)
		}
		_ = anal
		repArgFuncs, repClosures := 0, 0
		for _, fi := range prog.Funcs {
			if fi.NRepArgs > 0 {
				repArgFuncs++
			}
			if fi.NumRepWords > 0 {
				repClosures++
			}
		}
		res, err := pipeline.RunProgram(prog, anal, pipeline.Options{
			Strategy: gc.StratCompiled, HeapWords: w.HeapWords, MaxSteps: 1 << 40})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprint(len(prog.Funcs)),
			fmt.Sprint(repArgFuncs),
			fmt.Sprint(repClosures),
			fmt.Sprint(prog.Reps.Len()),
			fmt.Sprint(res.Value == w.Expect),
		})
	}
	t.Notes = append(t.Notes,
		"only 'thunks' needs reps: the mechanism costs nothing unless a phantom-typed capture escapes — quantifying how close the paper's zero-overhead claim is to true",
	)
	return t
}

// All runs every experiment.
func All(repeats int) []*Table {
	return []*Table{
		E1HeapSpace(),
		E2MutatorTags(repeats),
		E3Liveness(),
		E4SpaceTime(repeats),
		E5GCWordElision(),
		E6PolyWalk(),
		E7Tasking(),
		E8RuntimeReps(),
		E9MarkSweep(repeats),
		E10FastPath(),
		E11Generational(),
		E12AllocContention(),
		E13ScenarioMatrix(),
		E14Overload(),
		E15ConcurrentMark(repeats),
		E16ShardedMinors(),
		E17HeapLiveness(),
	}
}

// ---------------------------------------------------------------------------
// E9 — collection disciplines.
// ---------------------------------------------------------------------------

// E9MarkSweep compares semispace copying against mark/sweep under the same
// compiled frame maps — the paper's "our method will support mark/sweep
// collection as well" (§2), measured.
func E9MarkSweep(repeats int) *Table {
	t := &Table{
		ID:    "E9",
		Title: "collection discipline: copying vs mark/sweep over the same frame maps",
		Claim: "\"our method will support mark/sweep collection as well\" (§2)",
		Header: []string{"workload", "discipline", "collections", "pause ns/GC",
			"words copied/marked", "peak live"},
	}
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		for _, ms := range []bool{false, true} {
			name := "copying"
			if ms {
				name = "mark/sweep"
			}
			var best *pipeline.Result
			var bestPause int64 = 1 << 62
			for i := 0; i < repeats; i++ {
				res := mustRun(w, pipeline.Options{Strategy: gc.StratCompiled, MarkSweep: ms})
				if res.GCStats.Collections == 0 {
					best = res
					bestPause = 0
					break
				}
				p := res.GCStats.PauseNS / res.GCStats.Collections
				if p < bestPause {
					bestPause = p
					best = res
				}
			}
			t.Rows = append(t.Rows, []string{
				w.Name, name,
				fmt.Sprint(best.HeapStats.Collections),
				fmt.Sprint(bestPause),
				fmt.Sprint(best.HeapStats.WordsCopied),
				fmt.Sprint(best.HeapStats.PeakLive),
			})
		}
	}
	t.Notes = append(t.Notes,
		"identical frame maps drive both disciplines; mark/sweep marks in place (no copy bandwidth) but sweeps the whole space and cannot compact",
		"mark/sweep collects less often at equal usable words: copying reserves half the space as to-space",
		"developing this mode exposed a real collector soundness bug (recursive polymorphic calls passed no type arguments) that copying masked — see DESIGN.md §8",
	)
	return t
}

// ---------------------------------------------------------------------------
// E12 — allocation contention.
// ---------------------------------------------------------------------------

// E12AllocContention measures shared-heap pressure on the allocation path
// as tasks churn, with and without per-task allocation buffers. Every
// allocation without a buffer acquires the shared heap; with -tlab each
// task bump-allocates privately and touches the shared heap only to carve
// a chunk, so acquisitions fall to O(allocs/chunk) plus the slow path.
func E12AllocContention() *Table {
	t := &Table{
		ID:    "E12",
		Title: "per-task allocation buffers: shared-heap acquisitions per allocation",
		Claim: "a private bump buffer per task turns the shared allocation path into an amortized O(1/chunk) refill protocol without changing a single computed value (the differential suite's bit-identical live heaps)",
		Header: []string{"workload", "par", "tlab", "allocs", "shared acqs", "acqs/alloc",
			"refills", "fast allocs", "waste words", "collections"},
	}
	for _, name := range []string{"taskchurn", "tasktree"} {
		w, ok := workloads.TaskByName(name)
		if !ok {
			panic("E12: unknown workload " + name)
		}
		for _, par := range []int{1, 4} {
			for _, tlab := range []int{0, 64} {
				res, err := pipeline.RunTasks(w.Source, w.Entries, pipeline.Options{
					Strategy:    gc.StratCompiled,
					HeapWords:   w.HeapWords,
					Parallelism: par,
					TLABWords:   tlab,
				})
				if err != nil {
					panic(err)
				}
				hs := res.Heap
				t.Rows = append(t.Rows, []string{
					w.Name,
					fmt.Sprint(par),
					fmt.Sprint(tlab),
					fmt.Sprint(hs.Allocations),
					fmt.Sprint(hs.SharedAllocs),
					fmt.Sprintf("%.3f", float64(hs.SharedAllocs)/float64(hs.Allocations)),
					fmt.Sprint(hs.TLABRefills),
					fmt.Sprint(hs.TLABAllocs),
					fmt.Sprint(hs.TLABWasteWords),
					fmt.Sprint(res.Stats.Collections),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"shared acqs counts every shared-heap allocation entry: direct Allocs plus TLAB chunk carves (heap.Stats.SharedAllocs)",
		"tasks are scheduled round-robin on one OS thread, so acqs/alloc measures protocol pressure, not measured lock wait — the container is single-core (see ROADMAP); -par only parallelizes collection scans",
		"waste words are buffer tails retired unreachable by the heap frontier; on mark/sweep they land on the exact-size free list instead (heap/tlab.go)",
		"tlab=0 rows are the unchanged baseline allocation path, pinned bit-identical by the differential goldens",
	)
	return t
}
