package experiments

import (
	"testing"

	"tagfree/internal/scenario"
)

// TestScenarioSchemaMatchesBench pins the duplicated schema constant:
// scenario snapshots must carry the same tagfree-bench/v1 schema string
// as the benchmark snapshots (the constant is duplicated in
// internal/scenario to avoid an import cycle — experiments imports
// scenario for E13).
func TestScenarioSchemaMatchesBench(t *testing.T) {
	if scenario.SnapshotSchema != BenchSchema {
		t.Fatalf("scenario.SnapshotSchema = %q, experiments.BenchSchema = %q — the duplicated constants drifted",
			scenario.SnapshotSchema, BenchSchema)
	}
}
