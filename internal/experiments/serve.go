package experiments

import (
	"fmt"
	"path/filepath"

	"tagfree/internal/scenario"
)

// E14Overload runs the committed overload matrix (testdata/scenarios/
// overload.tfs): the taskserve service classes behind open-loop arrivals,
// crossed over arrival rate × shed watermark × per-task budget. The table
// is the degradation story — under 2× the sustainable arrival rate the
// server keeps completing requests and accounts every loss as a shed/
// retry/drop, a deadline cancellation, or a budget fault, with zero
// global failures.
//
// Latency percentiles are in virtual-time steps: on a single-core
// container, wall-clock tails measure the host scheduler, while step
// latencies are deterministic and comparable across runs (see
// EXPERIMENTS.md, E14 methodology).
func E14Overload() *Table {
	dir, err := scenario.FindCorpusDir()
	if err != nil {
		panic(fmt.Sprintf("E14: %v", err))
	}
	scs, err := scenario.LoadPath(filepath.Join(dir, "overload.tfs"))
	if err != nil {
		panic(fmt.Sprintf("E14: %v", err))
	}
	cells, err := scenario.Compile(scs)
	if err != nil {
		panic(fmt.Sprintf("E14: %v", err))
	}
	snap := scenario.RunMatrix(cells)

	t := &Table{
		ID:    "E14",
		Title: "overload serving: graceful degradation under open-loop arrivals",
		Claim: "demand beyond capacity degrades through the ladder (shed+retry, forced major collections, deadline/budget faults) instead of failing globally: every issued request is accounted exactly once",
		Header: []string{"scenario", "period", "shed%", "budget", "done", "shed", "retry",
			"drop", "cancel", "fault", "p50", "p99", "p999", "req/Msteps"},
	}
	for _, r := range snap.Runs {
		rep := r.Serve
		if rep == nil {
			panic(fmt.Sprintf("E14: cell %s is not a serve cell (overload.tfs lost its arrivals block?)", r.Name))
		}
		if r.Error != "" {
			panic(fmt.Sprintf("E14: %s: %s", r.Name, r.Error))
		}
		budget := "off"
		if rep.BudgetSteps > 0 {
			budget = fmt.Sprint(rep.BudgetSteps)
		}
		s := rep.Stats
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprint(rep.Period),
			fmt.Sprint(rep.ShedHeapPct),
			budget,
			fmt.Sprintf("%d/%d", s.Completed, s.Requests),
			fmt.Sprint(s.Shed),
			fmt.Sprint(s.Retries),
			fmt.Sprint(s.Dropped),
			fmt.Sprint(s.Canceled),
			fmt.Sprint(s.Faulted),
			fmt.Sprint(rep.LatencyP50),
			fmt.Sprint(rep.LatencyP99),
			fmt.Sprint(rep.LatencyP999),
			fmt.Sprintf("%.1f", rep.ThroughputRPMS),
		})
	}
	t.Notes = append(t.Notes,
		"the sustainable inter-arrival period for this mix with 4 servers is ~6000 steps: period 12000 is headroom, period 3000 is 2x overload",
		"latencies are virtual-time steps (deterministic per seed), measured first-arrival to completion — queueing, retries and collection pauses included",
		"done+drop+cancel+fault always equals the issued request count (serve.Run rejects any run whose ledger does not balance)",
		"regenerate with `tfbench e14`, or rerun the matrix with `tfserve -scenario testdata/scenarios/overload.tfs` (add -json for the tagfree-bench/v1 snapshot)",
	)
	return t
}
