// Package stats holds the small numeric helpers shared by the serving
// harness and the benchmark tables, so latency rows emitted by tfserve
// and tfbench can never disagree on methodology.
package stats

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// sample by the nearest-rank-below rule: index ⌊p·(n-1)⌋, no
// interpolation. Degenerate inputs are defined rather than out-of-range:
// an empty sample reports 0 (a run that never collected has no pause to
// report), a single sample is every percentile of itself, and p is
// clamped to [0, 1] so a caller's 99.9 typo cannot index past the slice.
func Percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return sorted[int(p*float64(len(sorted)-1))]
}
