package stats

import "testing"

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty sample: got %d, want 0", got)
	}
	if got := Percentile([]int64{}, 1); got != 0 {
		t.Fatalf("empty slice: got %d, want 0", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile([]int64{42}, p); got != 42 {
			t.Fatalf("single sample at p=%v: got %d, want 42", p, got)
		}
	}
}

func TestPercentileEndpoints(t *testing.T) {
	s := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p=0: got %d, want 1", got)
	}
	if got := Percentile(s, 1); got != 10 {
		t.Fatalf("p=1: got %d, want 10", got)
	}
	// Out-of-range p clamps rather than panicking.
	if got := Percentile(s, -3); got != 1 {
		t.Fatalf("p=-3: got %d, want 1", got)
	}
	if got := Percentile(s, 99.9); got != 10 {
		t.Fatalf("p=99.9: got %d, want 10", got)
	}
}

func TestPercentileNearestRankBelow(t *testing.T) {
	s := []int64{10, 20, 30, 40}
	// index = floor(p * 3): no interpolation, rank rounds down.
	cases := []struct {
		p    float64
		want int64
	}{
		{0.25, 10}, // floor(0.75) = 0
		{0.34, 20}, // floor(1.02) = 1
		{0.5, 20},  // floor(1.5)  = 1
		{0.99, 30}, // floor(2.97) = 2
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); got != c.want {
			t.Fatalf("p=%v: got %d, want %d", c.p, got, c.want)
		}
	}
}
