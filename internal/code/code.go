// Package code defines the compiled program representation executed by the
// abstract machine and consumed by the collectors.
//
// The instruction set is a register machine over per-frame slots. Every
// call and allocation instruction embeds a gc_word — the index of that
// site's GC metadata — in the instruction stream at a fixed offset from the
// opcode. The return address a callee stores is the program counter of the
// call instruction itself, so a collector can always recover the gc_word as
// code[retaddr+gcWordOffset], exactly the mechanism of Figure 1 of the
// paper (there: the word at retaddr+8 on SPARC, skipped by the adjusted
// return sequence).
//
// Programs are compiled per value representation:
//
//   - ReprTagFree: integers are full 64-bit words, pointers are raw heap
//     addresses, heap objects have no headers. All type knowledge lives in
//     the compiler-generated GC metadata.
//   - ReprTagged: integers carry a low tag bit (63-bit payload), pointers
//     are shifted, and every heap object carries a header word. Arithmetic
//     uses tag-stripping instruction variants. The collector needs no
//     compiler metadata — this is the baseline the paper argues against.
package code

import "fmt"

// Word is the machine word: stack slots, heap cells and code are all words.
type Word = int64

// HeapBase is the numeric value of the first heap address in tag-free mode.
// Values below it in pointer positions are unboxed constants (nullary
// constructor tags, the null placeholder); real addresses are >= HeapBase.
// Real tag-free systems reserve low addresses the same way.
const HeapBase = 1 << 16

// Repr selects the value representation a program is compiled for.
type Repr int

// Value representations.
const (
	ReprTagFree Repr = iota
	ReprTagged
)

// String names the representation.
func (r Repr) String() string {
	if r == ReprTagged {
		return "tagged"
	}
	return "tagfree"
}

// Op is a bytecode opcode.
type Op = Word

// Opcodes. Operand layouts are documented inline; "atom" operands encode a
// slot index, constant-pool index or global index (see EncodeAtom).
const (
	OpHalt      Op = iota // (no operands)
	OpRet                 // atom
	OpJmp                 // target
	OpJz                  // atom, target
	OpMove                // dst, atom
	OpAdd                 // dst, a, b
	OpSub                 // dst, a, b
	OpMul                 // dst, a, b
	OpDiv                 // dst, a, b
	OpMod                 // dst, a, b
	OpNeg                 // dst, a
	OpTAdd                // dst, a, b (tagged: strip tags, add, reinstate)
	OpTSub                // dst, a, b
	OpTMul                // dst, a, b
	OpTDiv                // dst, a, b
	OpTMod                // dst, a, b
	OpTNeg                // dst, a
	OpEq                  // dst, a, b
	OpNe                  // dst, a, b
	OpLt                  // dst, a, b
	OpLe                  // dst, a, b
	OpGt                  // dst, a, b
	OpGe                  // dst, a, b
	OpNot                 // dst, a
	OpIsBoxed             // dst, a
	OpTagIs               // dst, a, tag
	OpLdFld               // dst, a, off
	OpStFld               // aObj, off, aVal
	OpCall                // dst, fidx, gcword, nargs, atoms...
	OpCallC               // dst, gcword, aClos, aArg
	OpMkRef               // dst, gcword, aInit
	OpMkTuple             // dst, gcword, n, atoms...
	OpMkBox               // dst, gcword, tag(-1 none), n, atoms...
	OpMkClos              // dst, gcword, fidx, self(-1 none), nrep, ncap, repAtoms..., capAtoms...
	OpMkRep               // dst, kind, dataOrN, n, childAtoms...
	OpBuiltin             // dst, builtinId, atom
	OpSetGlobal           // gidx, atom
	OpMatchFail           // (no operands)
	OpEnter               // (no operands) zero-fill frame slots (Appel/tagged modes)
)

// gc_word operand offsets from the opcode, per call/alloc opcode.
const (
	GCWordOffsetCall  = 3
	GCWordOffsetOther = 2 // OpCallC, OpMkRef, OpMkTuple, OpMkBox, OpMkClos
)

// GCWordOffset returns the gc_word operand offset for a call/alloc opcode,
// or -1 if the opcode has none.
func GCWordOffset(op Op) int {
	switch op {
	case OpCall:
		return GCWordOffsetCall
	case OpCallC, OpMkRef, OpMkTuple, OpMkBox, OpMkClos:
		return GCWordOffsetOther
	}
	return -1
}

// InstrLen returns the length in words of the instruction at pc.
func InstrLen(codeArr []Word, pc int) int {
	switch codeArr[pc] {
	case OpHalt, OpMatchFail, OpEnter:
		return 1
	case OpRet, OpJmp:
		return 2
	case OpJz, OpMove, OpNeg, OpTNeg, OpNot, OpIsBoxed, OpSetGlobal:
		return 3
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpTAdd, OpTSub, OpTMul, OpTDiv,
		OpTMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpTagIs, OpLdFld,
		OpStFld, OpBuiltin:
		return 4
	case OpCall:
		return 5 + int(codeArr[pc+4])
	case OpCallC:
		return 5
	case OpMkRef:
		return 4
	case OpMkTuple:
		return 4 + int(codeArr[pc+3])
	case OpMkBox:
		return 5 + int(codeArr[pc+4])
	case OpMkClos:
		return 7 + int(codeArr[pc+5]) + int(codeArr[pc+6])
	case OpMkRep:
		return 5 + int(codeArr[pc+4])
	}
	panic(fmt.Sprintf("InstrLen: unknown opcode %d at %d", codeArr[pc], pc))
}

// ---------------------------------------------------------------------------
// Atom operand encoding.
// ---------------------------------------------------------------------------

// Atom operand kinds.
const (
	AtomSlot   = 0
	AtomConst  = 1
	AtomGlobal = 2
)

// EncodeAtom packs an operand reference into one word.
func EncodeAtom(kind int, idx int) Word {
	return Word(kind)<<32 | Word(idx)
}

// DecodeAtom unpacks an operand reference.
func DecodeAtom(w Word) (kind, idx int) {
	return int(w >> 32), int(w & 0xffffffff)
}

// ---------------------------------------------------------------------------
// Type descriptors.
// ---------------------------------------------------------------------------

// TDKind enumerates type-descriptor node kinds.
type TDKind int

// Type descriptor kinds.
const (
	TDConst  TDKind = iota // int, bool, unit, string: never a pointer
	TDOpaque               // parametric position: trace as non-pointer
	TDVar                  // type-environment (or datatype-parameter) reference: Index
	TDRef                  // ref cell: Args[0] is the element
	TDTuple                // tuple: Args are the fields
	TDData                 // datatype: Index is the layout id, Args the parameters
	TDArrow                // function: Args[0] dom, Args[1] cod
)

// TypeDesc is a compiler-emitted type descriptor. Descriptors are
// hash-consed per program, so identical types share one node (the size
// accounting for experiment E4 counts unique nodes).
type TypeDesc struct {
	Kind  TDKind
	Index int
	Args  []*TypeDesc
}

// String renders a descriptor for debugging.
func (d *TypeDesc) String() string {
	switch d.Kind {
	case TDConst:
		return "const"
	case TDOpaque:
		return "opaque"
	case TDVar:
		return fmt.Sprintf("$%d", d.Index)
	case TDRef:
		return fmt.Sprintf("ref(%s)", d.Args[0])
	case TDTuple:
		s := "tuple("
		for i, a := range d.Args {
			if i > 0 {
				s += ", "
			}
			s += a.String()
		}
		return s + ")"
	case TDData:
		s := fmt.Sprintf("data%d(", d.Index)
		for i, a := range d.Args {
			if i > 0 {
				s += ", "
			}
			s += a.String()
		}
		return s + ")"
	case TDArrow:
		return fmt.Sprintf("(%s -> %s)", d.Args[0], d.Args[1])
	}
	return "?"
}

// MayHoldPointer reports whether values of this descriptor's type can
// contain heap pointers (slots whose descriptors cannot are omitted from
// frame maps entirely).
func (d *TypeDesc) MayHoldPointer() bool {
	switch d.Kind {
	case TDConst, TDOpaque:
		return false
	case TDVar:
		// The instantiation may be a pointer type.
		return true
	default:
		return true
	}
}

// ---------------------------------------------------------------------------
// Datatype layouts.
// ---------------------------------------------------------------------------

// DataLayout is the runtime layout of a datatype.
type DataLayout struct {
	Name string
	// HasTagWord is true when boxed values carry a discriminant word at
	// offset 0 (more than one boxed constructor). Datatypes with at most
	// one boxed constructor use the tagless-sum layout.
	HasTagWord bool
	// Boxed holds the boxed constructors indexed by their boxed tag.
	Boxed []CtorLayout
	// NullaryNames maps nullary tags to constructor names (debugging).
	NullaryNames []string
}

// CtorLayout is the layout of one boxed constructor. Field descriptors may
// reference the datatype's parameters via TDVar nodes.
type CtorLayout struct {
	Name   string
	Fields []*TypeDesc
}

// ---------------------------------------------------------------------------
// Functions, sites and programs.
// ---------------------------------------------------------------------------

// TypeSource mirrors ir.TypeSource for the runtime.
type TypeSource int

// Type sources (see the ir package).
const (
	TypeSourceNone TypeSource = iota
	TypeSourceCallSite
	TypeSourceEnv
)

// SlotEntry is one traced slot in a frame map.
type SlotEntry struct {
	Slot int
	Desc *TypeDesc
	// Spine marks a slot whose heap-liveness verdict is spine-only: the
	// analysis proved that no element-field projection of the recursive
	// datatype in this slot can be demanded after this GC point, so a
	// liveness-guided collector may trace just the spine (tag + recursive
	// fields) and prune the element fields. Purely advisory — every
	// collector mode that cannot honor it safely traces the full structure.
	Spine bool
}

// PrunedWord is the sentinel a liveness-guided trace writes into pruned
// (provably dead) element fields. It must read as unboxed in both value
// representations so later traces, the verifier and the remembered set
// skip it: below HeapBase for the tag-free repr, odd for the tagged one.
const PrunedWord Word = 0xDEAD

// PathStep mirrors ir.PathStep for runtime type derivation.
type PathStep struct {
	Kind  int // 0 dom, 1 cod, 2 elem
	Index int
}

// FuncInfo is the runtime metadata of one function.
type FuncInfo struct {
	Name    string
	Entry   int
	NParams int // parameter slots, including the closure environment slot
	NSlots  int // all declared slots (params + locals)
	HasEnv  bool
	// NRepArgs is the number of hidden type-rep arguments appended to
	// direct calls (rep-needing top-level polymorphic functions).
	NRepArgs int
	// RepArgBase is the frame slot index of the first hidden rep argument
	// (the IR slot count; compiler scratch slots follow the rep arguments).
	RepArgBase int
	// RepArgPos maps type-environment indexes to hidden-argument positions
	// (-1 when the entry is not passed).
	RepArgPos []int
	// TypeEnvLen is the size of the function's type environment.
	TypeEnvLen int
	OwnVars    int
	TypeSource TypeSource
	// Derivs gives, per type-environment entry, the derivation path into
	// the function's arrow type (nil when the entry is rep-stored).
	Derivs [][]PathStep
	// RepWord maps type-environment indexes to closure rep-word positions
	// (-1 when not stored); NumRepWords words follow the code pointer in
	// the closure layout.
	RepWord     []int
	NumRepWords int
	// Captures are the closure field descriptors (capture types over the
	// function's type environment).
	Captures []*TypeDesc
	// AllSlots lists every pointer-bearing slot with its descriptor —
	// the per-procedure Appel descriptor (traced regardless of liveness).
	AllSlots []SlotEntry
	// NumSites is the function's number of call/alloc sites.
	NumSites int
}

// SiteKind distinguishes call-site metadata shapes.
type SiteKind int

// Site kinds.
const (
	SiteCall  SiteKind = iota // direct call: CalleeInst instantiates the callee
	SiteCallC                 // closure call: SiteType is the closure's static type
	SiteAlloc                 // allocation: no callee
)

// SiteInfo is the GC metadata of one call or allocation site — what the
// paper's gc_word points at.
type SiteInfo struct {
	Func int
	Kind SiteKind
	// Live is the frame map: the pointer-bearing live slots at this site
	// (the §5.2-optimized map used by the compiled and interpreted modes).
	Live []SlotEntry
	// Callee is the direct callee's function index (SiteCall only).
	Callee int
	// CalleeInst instantiates the callee's type environment, expressed
	// over this function's type environment (SiteCall only).
	CalleeInst []*TypeDesc
	// SiteType is the applied closure's static type (SiteCallC only); the
	// collector builds the callee's Figure-4 package from it.
	SiteType *TypeDesc
	// Args lists the call's pointer-bearing slot operands. It is consulted
	// only for tasks suspended *before* the call (tasking mode §4), whose
	// argument values still live in the caller's slots.
	Args []SlotEntry
}

// GlobalInfo describes one global root.
type GlobalInfo struct {
	Name string
	Desc *TypeDesc
}

// BuiltinID identifies runtime builtins.
type BuiltinID = Word

// Builtin identifiers.
const (
	BuiltinPrintInt BuiltinID = iota
	BuiltinPrintBool
	BuiltinPrintString
	BuiltinPrintNewline
)

// BuiltinIDByName maps surface names to builtin ids.
var BuiltinIDByName = map[string]BuiltinID{
	"print_int":     BuiltinPrintInt,
	"print_bool":    BuiltinPrintBool,
	"print_string":  BuiltinPrintString,
	"print_newline": BuiltinPrintNewline,
}

// Program is a compiled program.
type Program struct {
	Repr    Repr
	Code    []Word
	Consts  []Word // mode-encoded constants referenced by AtomConst operands
	Funcs   []*FuncInfo
	Sites   []*SiteInfo
	Globals []GlobalInfo
	Data    []*DataLayout
	Strings []string
	Reps    *RepTable
	// InitFunc and MainFunc are function indexes.
	InitFunc, MainFunc int
	// DescNodes is the number of unique type-descriptor nodes (metadata
	// size accounting, experiment E4).
	DescNodes int
	// StoreDescs maps the pc of a pointer-bearing OpStFld instruction to
	// the static type descriptor of the *stored value* (the field's
	// declared type at the store site). The generational write barrier
	// consults it to type an old→young remembered-set entry without any
	// runtime tags; stores of never-pointer values have no entry, so the
	// barrier skips them for free. Stack slots and globals are absent by
	// design: both are rescanned as roots on every minor collection
	// (the paper's frame-routine model).
	StoreDescs map[int]*TypeDesc
}

// FuncByName returns the index of the named function, or -1.
func (p *Program) FuncByName(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}
