package code

import (
	"fmt"
	"strings"
)

var opNames = map[Op]string{
	OpHalt: "halt", OpRet: "ret", OpJmp: "jmp", OpJz: "jz", OpMove: "move",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpTAdd: "tadd", OpTSub: "tsub", OpTMul: "tmul",
	OpTDiv: "tdiv", OpTMod: "tmod", OpTNeg: "tneg",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpNot: "not", OpIsBoxed: "isboxed", OpTagIs: "tagis",
	OpLdFld: "ldfld", OpStFld: "stfld", OpCall: "call", OpCallC: "callc",
	OpMkRef: "mkref", OpMkTuple: "mktuple", OpMkBox: "mkbox",
	OpMkClos: "mkclos", OpMkRep: "mkrep", OpBuiltin: "builtin",
	OpSetGlobal: "setglobal", OpMatchFail: "matchfail", OpEnter: "enter",
}

// OpName returns the mnemonic of an opcode.
func OpName(op Op) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", op)
}

func atomString(w Word) string {
	kind, idx := DecodeAtom(w)
	switch kind {
	case AtomSlot:
		return fmt.Sprintf("s%d", idx)
	case AtomConst:
		return fmt.Sprintf("c%d", idx)
	case AtomGlobal:
		return fmt.Sprintf("g%d", idx)
	}
	return fmt.Sprintf("?%d", w)
}

// DisasmInstr renders the instruction at pc, marking embedded gc_words.
func (p *Program) DisasmInstr(pc int) string {
	c := p.Code
	op := c[pc]
	var b strings.Builder
	fmt.Fprintf(&b, "%5d  %-9s", pc, OpName(op))
	switch op {
	case OpRet:
		b.WriteString(atomString(c[pc+1]))
	case OpJmp:
		fmt.Fprintf(&b, "-> %d", c[pc+1])
	case OpJz:
		fmt.Fprintf(&b, "%s -> %d", atomString(c[pc+1]), c[pc+2])
	case OpMove, OpNeg, OpTNeg, OpNot, OpIsBoxed:
		fmt.Fprintf(&b, "s%d, %s", c[pc+1], atomString(c[pc+2]))
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpTAdd, OpTSub, OpTMul, OpTDiv,
		OpTMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		fmt.Fprintf(&b, "s%d, %s, %s", c[pc+1], atomString(c[pc+2]), atomString(c[pc+3]))
	case OpTagIs:
		fmt.Fprintf(&b, "s%d, %s, tag=%d", c[pc+1], atomString(c[pc+2]), c[pc+3])
	case OpLdFld:
		fmt.Fprintf(&b, "s%d, %s[%d]", c[pc+1], atomString(c[pc+2]), c[pc+3])
	case OpStFld:
		fmt.Fprintf(&b, "%s[%d] := %s", atomString(c[pc+1]), c[pc+2], atomString(c[pc+3]))
	case OpCall:
		n := int(c[pc+4])
		args := make([]string, n)
		for i := 0; i < n; i++ {
			args[i] = atomString(c[pc+5+i])
		}
		fmt.Fprintf(&b, "s%d, %s(%s)  ;gc_word=%d", c[pc+1],
			p.Funcs[c[pc+2]].Name, strings.Join(args, ", "), c[pc+3])
	case OpCallC:
		fmt.Fprintf(&b, "s%d, %s(%s)  ;gc_word=%d", c[pc+1],
			atomString(c[pc+3]), atomString(c[pc+4]), c[pc+2])
	case OpMkRef:
		fmt.Fprintf(&b, "s%d, ref(%s)  ;gc_word=%d", c[pc+1], atomString(c[pc+3]), c[pc+2])
	case OpMkTuple:
		n := int(c[pc+3])
		args := make([]string, n)
		for i := 0; i < n; i++ {
			args[i] = atomString(c[pc+4+i])
		}
		fmt.Fprintf(&b, "s%d, (%s)  ;gc_word=%d", c[pc+1], strings.Join(args, ", "), c[pc+2])
	case OpMkBox:
		n := int(c[pc+4])
		args := make([]string, n)
		for i := 0; i < n; i++ {
			args[i] = atomString(c[pc+5+i])
		}
		fmt.Fprintf(&b, "s%d, box tag=%d (%s)  ;gc_word=%d", c[pc+1], c[pc+3],
			strings.Join(args, ", "), c[pc+2])
	case OpMkClos:
		nrep, ncap := int(c[pc+5]), int(c[pc+6])
		parts := make([]string, 0, nrep+ncap)
		for i := 0; i < nrep+ncap; i++ {
			parts = append(parts, atomString(c[pc+7+i]))
		}
		fmt.Fprintf(&b, "s%d, clos %s self=%d [%s]  ;gc_word=%d", c[pc+1],
			p.Funcs[c[pc+3]].Name, c[pc+4], strings.Join(parts, ", "), c[pc+2])
	case OpMkRep:
		n := int(c[pc+4])
		args := make([]string, n)
		for i := 0; i < n; i++ {
			args[i] = atomString(c[pc+5+i])
		}
		fmt.Fprintf(&b, "s%d, rep kind=%d idx=%d (%s)", c[pc+1], c[pc+2], c[pc+3],
			strings.Join(args, ", "))
	case OpBuiltin:
		fmt.Fprintf(&b, "s%d, #%d(%s)", c[pc+1], c[pc+2], atomString(c[pc+3]))
	case OpSetGlobal:
		fmt.Fprintf(&b, "g%d := %s", c[pc+1], atomString(c[pc+2]))
	}
	return b.String()
}

// DisasmFunc renders a whole function.
func (p *Program) DisasmFunc(fidx int) string {
	f := p.Funcs[fidx]
	end := len(p.Code)
	for _, g := range p.Funcs {
		if g.Entry > f.Entry && g.Entry < end {
			end = g.Entry
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: entry=%d slots=%d params=%d\n", f.Name, f.Entry, f.NSlots, f.NParams)
	for pc := f.Entry; pc < end; pc += InstrLen(p.Code, pc) {
		b.WriteString(p.DisasmInstr(pc))
		b.WriteByte('\n')
	}
	return b.String()
}
