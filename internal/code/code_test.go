package code

import (
	"testing"
	"testing/quick"
)

func TestIntEncodingRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		// Tag-free is the identity.
		if DecodeInt(ReprTagFree, EncodeInt(ReprTagFree, v)) != v {
			return false
		}
		// Tagged is exact within 63 bits.
		v63 := v << 1 >> 1
		return DecodeInt(ReprTagged, EncodeInt(ReprTagged, v63)) == v63
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTaggedIntsAreOdd(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -99, 1 << 40} {
		if EncodeInt(ReprTagged, v)&1 != 1 {
			t.Errorf("tagged int %d is not odd", v)
		}
	}
}

func TestPtrEncoding(t *testing.T) {
	for _, addr := range []int{HeapBase, HeapBase + 1, HeapBase + 12345} {
		for _, r := range []Repr{ReprTagFree, ReprTagged} {
			w := EncodePtr(r, addr)
			if DecodePtr(r, w) != addr {
				t.Errorf("%v: ptr %d round-trip failed", r, addr)
			}
			if !IsBoxedValue(r, w) {
				t.Errorf("%v: encoded pointer %d not recognized as boxed", r, addr)
			}
		}
	}
}

func TestBoxedDiscrimination(t *testing.T) {
	// Nullary constructor constants and null must never look boxed.
	for _, r := range []Repr{ReprTagFree, ReprTagged} {
		for tag := 0; tag < 300; tag++ {
			if IsBoxedValue(r, EncodeNullCtor(r, tag)) {
				t.Errorf("%v: nullary ctor %d looks boxed", r, tag)
			}
		}
		if IsBoxedValue(r, 0) {
			t.Errorf("%v: null looks boxed", r)
		}
	}
	// Tagged pointers are even; tagged ints odd — never confusable.
	f := func(v int64) bool {
		return !IsBoxedValue(ReprTagged, EncodeInt(ReprTagged, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolEncoding(t *testing.T) {
	for _, r := range []Repr{ReprTagFree, ReprTagged} {
		if !DecodeBool(r, EncodeBool(r, true)) || DecodeBool(r, EncodeBool(r, false)) {
			t.Errorf("%v: bool round-trip failed", r)
		}
	}
}

func TestAtomEncoding(t *testing.T) {
	cases := []struct{ kind, idx int }{
		{AtomSlot, 0}, {AtomSlot, 500}, {AtomConst, 3}, {AtomGlobal, 77},
	}
	for _, c := range cases {
		k, i := DecodeAtom(EncodeAtom(c.kind, c.idx))
		if k != c.kind || i != c.idx {
			t.Errorf("atom (%d,%d) decoded as (%d,%d)", c.kind, c.idx, k, i)
		}
	}
}

func TestInstrLen(t *testing.T) {
	// A tiny code stream covering variable-length instructions.
	codeArr := []Word{
		OpCall, 0, 1, 2, 3, 0, 0, 0, // len 5+3=8
		OpMkTuple, 0, 1, 2, 0, 0, // len 4+2=6
		OpMkClos, 0, 1, 2, -1, 1, 2, 0, 0, 0, // len 7+1+2=10
		OpRet, 0, // len 2
	}
	pcs := []int{0, 8, 14, 24}
	lens := []int{8, 6, 10, 2}
	for i, pc := range pcs {
		if got := InstrLen(codeArr, pc); got != lens[i] {
			t.Errorf("InstrLen at %d = %d, want %d", pc, got, lens[i])
		}
	}
}

func TestGCWordOffsets(t *testing.T) {
	if GCWordOffset(OpCall) != 3 {
		t.Error("OpCall gc_word must sit at +3")
	}
	for _, op := range []Op{OpCallC, OpMkRef, OpMkTuple, OpMkBox, OpMkClos} {
		if GCWordOffset(op) != 2 {
			t.Errorf("%s gc_word must sit at +2", OpName(op))
		}
	}
	if GCWordOffset(OpAdd) != -1 {
		t.Error("OpAdd has no gc_word")
	}
}

func TestRepTableHashConsing(t *testing.T) {
	rt := NewRepTable()
	constH := rt.Intern(TDConst, 0, nil)
	if rt.Intern(TDConst, 0, nil) != constH {
		t.Fatal("const rep not hash-consed")
	}
	list1 := rt.Intern(TDData, 0, []int{constH})
	list2 := rt.Intern(TDData, 0, []int{constH})
	if list1 != list2 {
		t.Fatal("identical composite reps not shared")
	}
	nested := rt.Intern(TDData, 0, []int{list1})
	if nested == list1 {
		t.Fatal("distinct reps merged")
	}
	e := rt.Entry(nested)
	if e.Kind != TDData || len(e.Children) != 1 || e.Children[0] != list1 {
		t.Fatalf("entry corrupted: %+v", e)
	}
	if rt.Len() != 3 {
		t.Fatalf("table has %d entries, want 3", rt.Len())
	}
}

func TestRepTableChildrenCopied(t *testing.T) {
	rt := NewRepTable()
	children := []int{rt.Intern(TDConst, 0, nil)}
	h := rt.Intern(TDTuple, 0, children)
	children[0] = 999 // mutate the caller's slice
	if rt.Entry(h).Children[0] == 999 {
		t.Fatal("rep table aliased the caller's slice")
	}
}

func TestTypeDescPrinting(t *testing.T) {
	d := &TypeDesc{Kind: TDArrow, Args: []*TypeDesc{
		{Kind: TDVar, Index: 0},
		{Kind: TDData, Index: 2, Args: []*TypeDesc{{Kind: TDConst}}},
	}}
	want := "($0 -> data2(const))"
	if d.String() != want {
		t.Errorf("String = %q, want %q", d.String(), want)
	}
}

func TestMayHoldPointer(t *testing.T) {
	if (&TypeDesc{Kind: TDConst}).MayHoldPointer() {
		t.Error("const cannot hold pointers")
	}
	if (&TypeDesc{Kind: TDOpaque}).MayHoldPointer() {
		t.Error("opaque positions are parametric non-pointers")
	}
	for _, k := range []TDKind{TDVar, TDRef, TDTuple, TDData, TDArrow} {
		if !(&TypeDesc{Kind: k}).MayHoldPointer() {
			t.Errorf("kind %d may hold pointers", k)
		}
	}
}
