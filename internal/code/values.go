package code

// Value encoding helpers. In tag-free mode values are raw: integers use the
// full 64-bit word (the paper's "larger integers can be represented"
// advantage), pointers are plain addresses. In tagged mode integers carry a
// low 1-bit tag (63-bit payload, wrapping silently — the space cost the
// paper attributes to tags), and pointers are shifted left one bit (even).

// EncodeInt encodes an integer constant for the representation.
func EncodeInt(r Repr, v int64) Word {
	if r == ReprTagged {
		return v<<1 | 1
	}
	return v
}

// DecodeInt decodes an integer value.
func DecodeInt(r Repr, w Word) int64 {
	if r == ReprTagged {
		return w >> 1
	}
	return w
}

// EncodeBool encodes a boolean.
func EncodeBool(r Repr, b bool) Word {
	v := int64(0)
	if b {
		v = 1
	}
	return EncodeInt(r, v)
}

// DecodeBool decodes a boolean.
func DecodeBool(r Repr, w Word) bool { return DecodeInt(r, w) != 0 }

// EncodePtr encodes a heap address (HeapBase-relative absolute index).
func EncodePtr(r Repr, addr int) Word {
	if r == ReprTagged {
		return Word(addr) << 1
	}
	return Word(addr)
}

// DecodePtr decodes a pointer value to its address.
func DecodePtr(r Repr, w Word) int {
	if r == ReprTagged {
		return int(w >> 1)
	}
	return int(w)
}

// IsBoxedValue reports whether a datatype-typed value is a boxed (heap)
// representation rather than an unboxed nullary-constructor constant.
func IsBoxedValue(r Repr, w Word) bool {
	if r == ReprTagged {
		return w != 0 && w&1 == 0
	}
	return w >= HeapBase
}

// EncodeNullCtor encodes a nullary constructor constant by its tag.
func EncodeNullCtor(r Repr, tag int) Word {
	return EncodeInt(r, int64(tag))
}
