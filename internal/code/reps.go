package code

import (
	"fmt"
	"strings"
)

// RepTable is the runtime type-representation table: hash-consed, immortal
// descriptions of ground types. Rep handles are plain words (table
// indexes), so they live in frame slots and closure rep-words without
// participating in collection. Ground reps are interned at compile time;
// OpMkRep instructions build instantiated reps at run time from the
// caller's handles (the minimal runtime type information needed to trace
// escaping polymorphic-capture closures — the completeness gap of
// stack-only type reconstruction, quantified by experiment E8).
type RepTable struct {
	entries []RepEntry
	index   map[string]int
}

// RepEntry is one interned type representation.
type RepEntry struct {
	Kind     TDKind
	Index    int // datatype layout id for TDData
	Children []int
}

// NewRepTable returns an empty table.
func NewRepTable() *RepTable {
	return &RepTable{index: map[string]int{}}
}

func repKey(kind TDKind, index int, children []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%d", kind, index)
	for _, c := range children {
		fmt.Fprintf(&b, ",%d", c)
	}
	return b.String()
}

// Intern returns the handle for the given representation, creating it if
// needed.
func (t *RepTable) Intern(kind TDKind, index int, children []int) int {
	key := repKey(kind, index, children)
	if h, ok := t.index[key]; ok {
		return h
	}
	h := len(t.entries)
	cs := make([]int, len(children))
	copy(cs, children)
	t.entries = append(t.entries, RepEntry{Kind: kind, Index: index, Children: cs})
	t.index[key] = h
	return h
}

// Entry returns the representation behind a handle.
func (t *RepTable) Entry(h int) RepEntry { return t.entries[h] }

// Len returns the number of interned representations.
func (t *RepTable) Len() int { return len(t.entries) }
