package codegen_test

import (
	"strings"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/compile/codegen"
	"tagfree/internal/compile/gcanal"
	"tagfree/internal/compile/lower"
	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/types"
)

func compile(t *testing.T, src string, repr code.Repr) *code.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	gcanal.Analyze(irp)
	p, err := codegen.Compile(irp, repr)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return p
}

const sampleSrc = `
type tree = Leaf | Node of tree * int * tree
let rec build d = if d = 0 then Leaf else Node (build (d - 1), d, build (d - 1))
let rec tsum t = match t with | Leaf -> 0 | Node (l, v, r) -> tsum l + v + tsum r
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let main () =
  let t = build 4 in
  let xs = map (fun x -> x + tsum t) [1; 2; 3] in
  match xs with | x :: _ -> x | [] -> 0
`

// TestGCWordsAddressableFromReturnAddresses decodes every instruction of
// every function and checks that each call/alloc instruction's gc_word is
// either -1 (elided) or indexes a site owned by that function — the
// Figure 1 invariant the collectors rely on.
func TestGCWordsAddressableFromReturnAddresses(t *testing.T) {
	for _, repr := range []code.Repr{code.ReprTagFree, code.ReprTagged} {
		p := compile(t, sampleSrc, repr)
		checked := 0
		for fidx, f := range p.Funcs {
			end := len(p.Code)
			for _, g := range p.Funcs {
				if g.Entry > f.Entry && g.Entry < end {
					end = g.Entry
				}
			}
			for pc := f.Entry; pc < end; pc += code.InstrLen(p.Code, pc) {
				off := code.GCWordOffset(p.Code[pc])
				if off < 0 {
					continue
				}
				gcw := p.Code[pc+off]
				if gcw == -1 {
					checked++
					continue
				}
				if gcw < 0 || int(gcw) >= len(p.Sites) {
					t.Fatalf("[%v] pc %d: gc_word %d out of range", repr, pc, gcw)
				}
				if p.Sites[gcw].Func != fidx {
					t.Fatalf("[%v] pc %d: gc_word %d belongs to function %d, not %d",
						repr, pc, gcw, p.Sites[gcw].Func, fidx)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("[%v] no call/alloc instructions found", repr)
		}
	}
}

// TestFrameMapsOnlyPointerBearing checks that no frame map entry has a
// descriptor that cannot hold pointers (those slots are omitted entirely).
func TestFrameMapsOnlyPointerBearing(t *testing.T) {
	p := compile(t, sampleSrc, code.ReprTagFree)
	for i, si := range p.Sites {
		for _, e := range si.Live {
			if !e.Desc.MayHoldPointer() {
				t.Errorf("site %d: slot %d has non-pointer descriptor %s", i, e.Slot, e.Desc)
			}
		}
	}
	for _, fi := range p.Funcs {
		for _, e := range fi.AllSlots {
			if !e.Desc.MayHoldPointer() {
				t.Errorf("func %s: Appel slot %d has non-pointer descriptor", fi.Name, e.Slot)
			}
		}
	}
}

// TestDescriptorHashConsing verifies identical types share descriptor
// nodes across the program.
func TestDescriptorHashConsing(t *testing.T) {
	p := compile(t, sampleSrc, code.ReprTagFree)
	seen := map[string]*code.TypeDesc{}
	var walk func(d *code.TypeDesc)
	walk = func(d *code.TypeDesc) {
		key := d.String()
		if prev, ok := seen[key]; ok {
			if prev != d {
				t.Fatalf("descriptor %s duplicated", key)
			}
			return
		}
		seen[key] = d
		for _, a := range d.Args {
			walk(a)
		}
	}
	for _, si := range p.Sites {
		for _, e := range si.Live {
			walk(e.Desc)
		}
	}
	if p.DescNodes == 0 || p.DescNodes > 200 {
		t.Errorf("DescNodes = %d, implausible for this program", p.DescNodes)
	}
}

// TestConstPoolEncodedPerRepr verifies constants are representation-encoded.
func TestConstPoolEncodedPerRepr(t *testing.T) {
	src := `let main () = 21`
	free := compile(t, src, code.ReprTagFree)
	tagged := compile(t, src, code.ReprTagged)
	has := func(p *code.Program, w code.Word) bool {
		for _, c := range p.Consts {
			if c == w {
				return true
			}
		}
		return false
	}
	if !has(free, 21) {
		t.Error("tag-free constant pool should hold raw 21")
	}
	if !has(tagged, 21<<1|1) {
		t.Error("tagged constant pool should hold tagged 21")
	}
}

// TestTaggedArithmeticVariants ensures tagged compilation uses the
// tag-stripping opcodes and tag-free does not.
func TestTaggedArithmeticVariants(t *testing.T) {
	src := `let main () = (3 * 4) + (10 / 2) - (7 mod 3)`
	countOps := func(p *code.Program, ops ...code.Op) int {
		want := map[code.Op]bool{}
		for _, o := range ops {
			want[o] = true
		}
		n := 0
		for pc := 0; pc < len(p.Code); pc += code.InstrLen(p.Code, pc) {
			if want[p.Code[pc]] {
				n++
			}
		}
		return n
	}
	free := compile(t, src, code.ReprTagFree)
	tagged := compile(t, src, code.ReprTagged)
	if countOps(free, code.OpTAdd, code.OpTSub, code.OpTMul, code.OpTDiv, code.OpTMod) != 0 {
		t.Error("tag-free code must not use tagged arithmetic")
	}
	if countOps(tagged, code.OpAdd, code.OpSub, code.OpMul, code.OpDiv, code.OpMod) != 0 {
		t.Error("tagged code must not use raw arithmetic")
	}
	if countOps(tagged, code.OpTMul) == 0 || countOps(tagged, code.OpTDiv) == 0 {
		t.Error("tagged code should use TMUL/TDIV")
	}
}

// TestDisassemblerCoversEverything disassembles every function of a
// program touching all instruction forms without panicking.
func TestDisassemblerCoversEverything(t *testing.T) {
	src := `
type t = A | B of int * bool | C of int
let r = ref 5
let rec f x = if x = 0 then 0 else f (x - 1)
let g p = match p with | A -> !r | B (n, b) -> (r := n; if b then n else 0 - n) | C n -> n
let main () =
  let clos = fun y -> y * 2 in
  let pair = (1, clos 3) in
  print_int (g (B (4, true)));
  f (match pair with (a, b) -> a + b)
`
	p := compile(t, src, code.ReprTagFree)
	var out strings.Builder
	for i := range p.Funcs {
		out.WriteString(p.DisasmFunc(i))
	}
	text := out.String()
	for _, mnemonic := range []string{"call", "callc", "mkbox", "mkclos", "mkref",
		"mktuple", "ldfld", "stfld", "tagis", "isboxed", "builtin", "ret", "jz"} {
		if !strings.Contains(text, mnemonic) {
			t.Errorf("disassembly missing %q", mnemonic)
		}
	}
	if !strings.Contains(text, "gc_word") {
		t.Error("disassembly should mark embedded gc_words")
	}
}

// TestCallCArgsRecorded ensures closure-call sites carry the Figure-4 site
// type and the suspended-at-call argument map.
func TestCallCArgsRecorded(t *testing.T) {
	src := `
let apply f x = f x
let main () = apply (fun y -> [y]) 3
`
	p := compile(t, src, code.ReprTagFree)
	found := false
	for _, si := range p.Sites {
		if si.Kind != code.SiteCallC {
			continue
		}
		found = true
		if si.SiteType == nil || si.SiteType.Kind != code.TDArrow {
			t.Errorf("closure-call site lacks an arrow site type: %v", si.SiteType)
		}
	}
	if !found {
		t.Fatal("no closure-call site found")
	}
}

// TestMainOptional compiles a program without main (tasking-style).
func TestMainOptional(t *testing.T) {
	p := compile(t, `let job () = 1`, code.ReprTagFree)
	if p.MainFunc != -1 {
		t.Fatalf("MainFunc = %d, want -1", p.MainFunc)
	}
	if p.FuncByName("job") < 0 {
		t.Fatal("job not compiled")
	}
}
