// Package codegen translates the IR into executable bytecode plus the GC
// metadata that makes tag-free collection work:
//
//   - every call and allocation instruction embeds a gc_word (a site-table
//     index) in the instruction stream, addressed off the return address —
//     the paper's Figure 1 mechanism;
//   - each site carries a frame map: the live, pointer-bearing slots with
//     hash-consed type descriptors (liveness per §5.2; gc_words for calls
//     that provably cannot collect are elided per §5.1);
//   - direct-call sites carry the callee's type-environment instantiation
//     and closure-call sites the applied closure's static type, which the
//     collectors use to pass type_gc_routines frame to frame (§3,
//     Figures 3–4);
//   - per-function metadata includes the closure layout (capture
//     descriptors, type-rep words) and the Appel-style trace-everything
//     descriptor used by the comparison collector.
//
// The same IR compiles to two value representations: tag-free (raw words,
// headerless objects) and tagged (bit-tagged integers, headered objects,
// tag-stripping arithmetic variants) — the baseline the paper argues
// against.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"tagfree/internal/code"
	"tagfree/internal/compile/gcanal"
	"tagfree/internal/compile/liveness"
	"tagfree/internal/ir"
	"tagfree/internal/mlang/types"
)

// Compiler carries code generation state.
type Compiler struct {
	irp  *ir.Program
	repr code.Repr
	prog *code.Program
	hl   *gcanal.HeapLiveness

	descCache map[string]*code.TypeDesc
	constIdx  map[code.Word]int
	dataID    map[*types.Data]int
	funcIdx   map[*ir.Func]int
	liveMaps  map[*ir.Func][][]*ir.Slot
}

// Compile translates an IR program for the given representation. The
// GC-possible analysis must already have refined RCall.CanGC flags.
func Compile(irp *ir.Program, repr code.Repr) (*code.Program, error) {
	return CompileWith(irp, repr, nil)
}

// CompileWith is Compile with an optional heap-liveness result: when hl is
// non-nil, frame-map entries proven spine-only carry the Spine verdict for
// the liveness-guided collector.
func CompileWith(irp *ir.Program, repr code.Repr, hl *gcanal.HeapLiveness) (*code.Program, error) {
	c := &Compiler{
		irp:  irp,
		repr: repr,
		hl:   hl,
		prog: &code.Program{
			Repr:    repr,
			Strings: irp.Strings,
			Reps:    code.NewRepTable(),
		},
		descCache: map[string]*code.TypeDesc{},
		constIdx:  map[code.Word]int{},
		dataID:    map[*types.Data]int{},
		funcIdx:   map[*ir.Func]int{},
		liveMaps:  map[*ir.Func][][]*ir.Slot{},
	}

	c.buildDataLayouts()

	for i, f := range irp.Funcs {
		c.funcIdx[f] = i
		c.liveMaps[f] = liveness.Analyze(f)
	}
	// Create FuncInfo shells first so call instructions can reference any
	// function index.
	for _, f := range irp.Funcs {
		c.prog.Funcs = append(c.prog.Funcs, c.funcShell(f))
	}
	for i, f := range irp.Funcs {
		if err := c.emitFunc(f, c.prog.Funcs[i]); err != nil {
			return nil, err
		}
	}

	for _, g := range irp.Globals {
		c.prog.Globals = append(c.prog.Globals, code.GlobalInfo{
			Name: g.Name,
			Desc: c.descOf(g.Type, nil),
		})
	}
	c.prog.InitFunc = c.funcIdx[irp.InitFunc]
	c.prog.MainFunc = -1
	if irp.MainFunc != nil {
		c.prog.MainFunc = c.funcIdx[irp.MainFunc]
	}
	c.prog.DescNodes = len(c.descCache)
	return c.prog, nil
}

// ---------------------------------------------------------------------------
// Datatype layouts.
// ---------------------------------------------------------------------------

func (c *Compiler) buildDataLayouts() {
	names := make([]string, 0, len(c.irp.Datatypes))
	for name := range c.irp.Datatypes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.dataID[c.irp.Datatypes[name]] = len(c.dataID)
		c.prog.Data = append(c.prog.Data, nil) // filled below
	}
	for _, name := range names {
		data := c.irp.Datatypes[name]
		layout := &code.DataLayout{
			Name:       data.Name,
			HasTagWord: data.BoxedCtors > 1,
		}
		for _, ci := range data.Ctors {
			if ci.IsNullary() {
				layout.NullaryNames = append(layout.NullaryNames, ci.Name)
				continue
			}
			cl := code.CtorLayout{Name: ci.Name}
			for _, ft := range ci.Args {
				cl.Fields = append(cl.Fields, c.descOf(ft, nil))
			}
			layout.Boxed = append(layout.Boxed, cl)
		}
		c.prog.Data[c.dataID[data]] = layout
	}
}

// ---------------------------------------------------------------------------
// Type descriptors.
// ---------------------------------------------------------------------------

// descOf converts a semantic type to a hash-consed descriptor. Type
// variables resolve against fn's type environment (TDVar); variables of
// datatype declarations (ParamRef, nil owner) become TDVar over the
// datatype's parameters; quantified variables not visible in fn are
// parametric positions and become TDOpaque.
func (c *Compiler) descOf(t types.Type, fn *ir.Func) *code.TypeDesc {
	switch t := types.Resolve(t).(type) {
	case *types.Base:
		return c.intern(&code.TypeDesc{Kind: code.TDConst})
	case *types.Var:
		if t.Quant == nil {
			// A leftover free variable (should have been defaulted).
			return c.intern(&code.TypeDesc{Kind: code.TDOpaque})
		}
		if t.Quant.Owner == nil {
			// Datatype parameter reference inside a constructor layout.
			return c.intern(&code.TypeDesc{Kind: code.TDVar, Index: t.Quant.Index})
		}
		if fn != nil {
			if idx := fn.TypeEnvIndex(t); idx >= 0 {
				return c.intern(&code.TypeDesc{Kind: code.TDVar, Index: idx})
			}
		}
		return c.intern(&code.TypeDesc{Kind: code.TDOpaque})
	case *types.Arrow:
		return c.intern(&code.TypeDesc{Kind: code.TDArrow,
			Args: []*code.TypeDesc{c.descOf(t.Dom, fn), c.descOf(t.Cod, fn)}})
	case *types.TupleT:
		args := make([]*code.TypeDesc, len(t.Elems))
		for i, e := range t.Elems {
			args[i] = c.descOf(e, fn)
		}
		return c.intern(&code.TypeDesc{Kind: code.TDTuple, Args: args})
	case *types.Con:
		if t.Name == "ref" {
			return c.intern(&code.TypeDesc{Kind: code.TDRef,
				Args: []*code.TypeDesc{c.descOf(t.Args[0], fn)}})
		}
		args := make([]*code.TypeDesc, len(t.Args))
		for i, a := range t.Args {
			args[i] = c.descOf(a, fn)
		}
		return c.intern(&code.TypeDesc{Kind: code.TDData, Index: c.dataID[t.Data], Args: args})
	}
	panic("descOf: unreachable")
}

func (c *Compiler) intern(d *code.TypeDesc) *code.TypeDesc {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%d", d.Kind, d.Index)
	for _, a := range d.Args {
		fmt.Fprintf(&b, ":%p", a) // children are already interned
	}
	key := b.String()
	if e, ok := c.descCache[key]; ok {
		return e
	}
	c.descCache[key] = d
	return d
}

// ---------------------------------------------------------------------------
// Function metadata.
// ---------------------------------------------------------------------------

func (c *Compiler) funcShell(f *ir.Func) *code.FuncInfo {
	fi := &code.FuncInfo{
		Name:        f.Name,
		NParams:     f.NParams,
		HasEnv:      f.HasEnv,
		TypeEnvLen:  len(f.TypeEnv),
		OwnVars:     f.OwnVars,
		TypeSource:  code.TypeSource(f.TypeSource),
		RepWord:     f.RepWord,
		NumRepWords: f.NumRepWords,
		NumSites:    f.NumCallSites,
		RepArgBase:  len(f.Slots),
	}
	if f.NeedsReps {
		fi.RepArgPos = make([]int, len(f.TypeEnv))
		for i := range fi.RepArgPos {
			fi.RepArgPos[i] = -1
		}
		for i, needed := range f.RuntimeNeeded {
			if needed {
				fi.RepArgPos[i] = fi.NRepArgs
				fi.NRepArgs++
			}
		}
	}
	if f.TypeDerivs != nil {
		fi.Derivs = make([][]code.PathStep, len(f.TypeDerivs))
		for i, p := range f.TypeDerivs {
			if p == nil {
				continue
			}
			steps := make([]code.PathStep, len(p))
			for j, s := range p {
				steps[j] = code.PathStep{Kind: int(s.Kind), Index: s.Index}
			}
			fi.Derivs[i] = steps
		}
	}
	for _, cap := range f.Captures {
		fi.Captures = append(fi.Captures, c.descOf(cap.Type, f))
	}
	for _, s := range f.Slots {
		d := c.descOf(s.Type, f)
		if d.MayHoldPointer() {
			fi.AllSlots = append(fi.AllSlots, code.SlotEntry{Slot: s.Idx, Desc: d})
		}
	}
	return fi
}

// ---------------------------------------------------------------------------
// Constants and atoms.
// ---------------------------------------------------------------------------

func (c *Compiler) constAtom(w code.Word) code.Word {
	idx, ok := c.constIdx[w]
	if !ok {
		idx = len(c.prog.Consts)
		c.prog.Consts = append(c.prog.Consts, w)
		c.constIdx[w] = idx
	}
	return code.EncodeAtom(code.AtomConst, idx)
}

func (c *Compiler) atom(a ir.Atom) code.Word {
	switch a := a.(type) {
	case *ir.AConst:
		switch a.Kind {
		case ir.ConstInt:
			return c.constAtom(code.EncodeInt(c.repr, a.Val))
		case ir.ConstBool:
			return c.constAtom(code.EncodeBool(c.repr, a.Val != 0))
		default:
			return c.constAtom(code.EncodeInt(c.repr, 0))
		}
	case *ir.ASlot:
		return code.EncodeAtom(code.AtomSlot, a.Slot.Idx)
	case *ir.AGlobal:
		return code.EncodeAtom(code.AtomGlobal, a.Global.Idx)
	case *ir.ANullCtor:
		return c.constAtom(code.EncodeNullCtor(c.repr, a.Ctor.Tag))
	case *ir.AStr:
		return c.constAtom(code.EncodeInt(c.repr, int64(a.Index)))
	}
	panic("atom: unreachable")
}

// ---------------------------------------------------------------------------
// Function body emission.
// ---------------------------------------------------------------------------

type joinTarget struct {
	dst  int // destination slot, -1 for none
	cont *label
}

type label struct {
	pos    int
	bound  bool
	fixups []int
}

type femit struct {
	c        *Compiler
	f        *ir.Func
	fi       *code.FuncInfo
	scratchN int
}

func (fe *femit) emit(ws ...code.Word) {
	fe.c.prog.Code = append(fe.c.prog.Code, ws...)
}

func (fe *femit) newLabel() *label { return &label{} }

func (fe *femit) ref(l *label) code.Word {
	if l.bound {
		return code.Word(l.pos)
	}
	l.fixups = append(l.fixups, len(fe.c.prog.Code))
	return -1
}

// emitRef emits a placeholder word for a label reference. It must be called
// exactly when the operand word is appended.
func (fe *femit) jmp(l *label) {
	fe.emit(code.OpJmp)
	fe.emit(fe.ref(l))
}

func (fe *femit) jz(a code.Word, l *label) {
	fe.emit(code.OpJz, a)
	fe.emit(fe.ref(l))
}

func (fe *femit) bind(l *label) {
	l.pos = len(fe.c.prog.Code)
	l.bound = true
	for _, at := range l.fixups {
		fe.c.prog.Code[at] = code.Word(l.pos)
	}
}

func (fe *femit) scratch() int {
	s := fe.fi.RepArgBase + fe.fi.NRepArgs + fe.scratchN
	fe.scratchN++
	return s
}

// noteStore records the static type of a heap store's value in
// Program.StoreDescs (keyed by the OpStFld's pc, which is final at emit
// time: labels patch operand words, never instruction positions). The
// generational write barrier uses the descriptor to type old→young
// remembered-set entries. Values that can never be heap pointers
// (constants, nullary constructors, strings) get no entry.
func (fe *femit) noteStore(pc int, a ir.Atom) {
	var t types.Type
	switch a := a.(type) {
	case *ir.ASlot:
		t = a.Slot.Type
	case *ir.AGlobal:
		t = a.Global.Type
	default:
		return
	}
	d := fe.c.descOf(t, fe.f)
	if !d.MayHoldPointer() {
		return
	}
	if fe.c.prog.StoreDescs == nil {
		fe.c.prog.StoreDescs = map[int]*code.TypeDesc{}
	}
	fe.c.prog.StoreDescs[pc] = d
}

func (c *Compiler) emitFunc(f *ir.Func, fi *code.FuncInfo) error {
	fe := &femit{c: c, f: f, fi: fi}
	fi.Entry = len(c.prog.Code)
	fe.emitExpr(f.Body, nil)
	fi.NSlots = fi.RepArgBase + fi.NRepArgs + fe.scratchN
	return nil
}

func (fe *femit) emitExpr(e ir.Expr, jt *joinTarget) {
	switch e := e.(type) {
	case *ir.ERet:
		fe.emit(code.OpRet, fe.c.atom(e.A))

	case *ir.EJoin:
		if jt == nil {
			panic("emitExpr: join without target in " + fe.f.Name)
		}
		if jt.dst >= 0 {
			fe.emit(code.OpMove, code.Word(jt.dst), fe.c.atom(e.A))
		}
		fe.jmp(jt.cont)

	case *ir.EMatchFail:
		fe.emit(code.OpMatchFail)

	case *ir.ELet:
		fe.emitRhs(e.Dst, e.Rhs)
		fe.emitExpr(e.Cont, jt)

	case *ir.ECond:
		condA := fe.c.atom(e.Cond)
		if e.Dst == nil && e.Cont == nil {
			// Inherit the enclosing join target.
			elseL := fe.newLabel()
			fe.jz(condA, elseL)
			fe.emitExpr(e.Then, jt)
			fe.bind(elseL)
			fe.emitExpr(e.Else, jt)
			return
		}
		contL := fe.newLabel()
		inner := &joinTarget{dst: -1, cont: contL}
		if e.Dst != nil {
			inner.dst = e.Dst.Idx
		}
		elseL := fe.newLabel()
		fe.jz(condA, elseL)
		fe.emitExpr(e.Then, inner)
		fe.bind(elseL)
		fe.emitExpr(e.Else, inner)
		fe.bind(contL)
		fe.emitExpr(e.Cont, jt)
	}
}

// primOp maps an IR primitive to an opcode under the representation.
func (fe *femit) primOp(op ir.PrimOp) code.Op {
	tagged := fe.c.repr == code.ReprTagged
	switch op {
	case ir.PAdd:
		if tagged {
			return code.OpTAdd
		}
		return code.OpAdd
	case ir.PSub:
		if tagged {
			return code.OpTSub
		}
		return code.OpSub
	case ir.PMul:
		if tagged {
			return code.OpTMul
		}
		return code.OpMul
	case ir.PDiv:
		if tagged {
			return code.OpTDiv
		}
		return code.OpDiv
	case ir.PMod:
		if tagged {
			return code.OpTMod
		}
		return code.OpMod
	case ir.PNeg:
		if tagged {
			return code.OpTNeg
		}
		return code.OpNeg
	case ir.PEq:
		return code.OpEq
	case ir.PNe:
		return code.OpNe
	case ir.PLt:
		return code.OpLt
	case ir.PLe:
		return code.OpLe
	case ir.PGt:
		return code.OpGt
	case ir.PGe:
		return code.OpGe
	case ir.PNot:
		return code.OpNot
	case ir.PIsBoxed:
		return code.OpIsBoxed
	}
	panic("primOp: unmapped primitive")
}

func (fe *femit) emitRhs(dst *ir.Slot, r ir.Rhs) {
	d := code.Word(dst.Idx)
	c := fe.c
	switch r := r.(type) {
	case *ir.RAtom:
		fe.emit(code.OpMove, d, c.atom(r.A))

	case *ir.RPrim:
		if r.Op == ir.PTagIs {
			tag := r.Args[1].(*ir.AConst).Val
			fe.emit(code.OpTagIs, d, c.atom(r.Args[0]), code.Word(tag))
			return
		}
		op := fe.primOp(r.Op)
		switch len(r.Args) {
		case 1:
			fe.emit(op, d, c.atom(r.Args[0]))
		case 2:
			fe.emit(op, d, c.atom(r.Args[0]), c.atom(r.Args[1]))
		default:
			panic("emitRhs: bad primitive arity")
		}

	case *ir.RRef:
		gcw := fe.site(r.Site, code.SiteAlloc, nil, nil)
		fe.emit(code.OpMkRef, d, gcw, c.atom(r.Init))

	case *ir.RDeref:
		fe.emit(code.OpLdFld, d, c.atom(r.Ref), 0)

	case *ir.RAssign:
		fe.noteStore(len(c.prog.Code), r.Val)
		fe.emit(code.OpStFld, c.atom(r.Ref), 0, c.atom(r.Val))
		fe.emit(code.OpMove, d, c.atom(&ir.AConst{Kind: ir.ConstUnit}))

	case *ir.RTuple:
		gcw := fe.site(r.Site, code.SiteAlloc, nil, nil)
		ws := []code.Word{code.OpMkTuple, d, gcw, code.Word(len(r.Elems))}
		for _, a := range r.Elems {
			ws = append(ws, c.atom(a))
		}
		fe.emit(ws...)

	case *ir.RCtor:
		layout := c.prog.Data[c.dataID[r.Ctor.Data]]
		tag := code.Word(-1)
		if layout.HasTagWord {
			tag = code.Word(r.Ctor.Tag)
		}
		gcw := fe.site(r.Site, code.SiteAlloc, nil, nil)
		ws := []code.Word{code.OpMkBox, d, gcw, tag, code.Word(len(r.Args))}
		for _, a := range r.Args {
			ws = append(ws, c.atom(a))
		}
		fe.emit(ws...)

	case *ir.RField:
		off := r.Index
		switch {
		case r.FromCapture:
			off += 1 + fe.f.NumRepWords
		case r.FromCtor != nil:
			if c.prog.Data[c.dataID[r.FromCtor.Data]].HasTagWord {
				off++
			}
		}
		fe.emit(code.OpLdFld, d, c.atom(r.Obj), code.Word(off))

	case *ir.RClosure:
		target := r.Target
		tidx := c.funcIdx[target]
		// Rep words, in closure layout order.
		var repAtoms []code.Word
		for i, v := range target.TypeEnv {
			if target.RepWord == nil || target.RepWord[i] < 0 {
				continue
			}
			repAtoms = append(repAtoms, fe.repAtom(v))
		}
		gcw := fe.site(r.Site, code.SiteAlloc, nil, nil)
		ws := []code.Word{code.OpMkClos, d, gcw, code.Word(tidx),
			code.Word(r.SelfCapture), code.Word(len(repAtoms)), code.Word(len(r.Captures))}
		ws = append(ws, repAtoms...)
		for _, a := range r.Captures {
			ws = append(ws, c.atom(a))
		}
		fe.emit(ws...)

	case *ir.RCall:
		callee := r.Callee
		cidx := c.funcIdx[callee]
		args := make([]code.Word, 0, len(r.Args)+2)
		for _, a := range r.Args {
			args = append(args, c.atom(a))
		}
		// Hidden type-rep arguments for rep-needing callees.
		if callee.NeedsReps {
			for i, needed := range callee.RuntimeNeeded {
				if !needed {
					continue
				}
				args = append(args, fe.repAtom(r.Inst[i]))
			}
		}
		gcw := code.Word(-1)
		if r.CanGC {
			var inst []*code.TypeDesc
			for _, t := range r.Inst {
				inst = append(inst, c.descOf(t, fe.f))
			}
			gcw = fe.siteCall(r.Site, cidx, inst)
			fe.addSiteArgs(gcw, r.Site, r.Args)
		}
		ws := []code.Word{code.OpCall, d, code.Word(cidx), gcw, code.Word(len(args))}
		ws = append(ws, args...)
		fe.emit(ws...)

	case *ir.RCallClos:
		gcw := code.Word(-1)
		if r.CanGC {
			gcw = fe.site(r.Site, code.SiteCallC, nil, c.descOf(r.SiteType, fe.f))
			fe.addSiteArgs(gcw, r.Site, []ir.Atom{r.Clos, r.Arg})
		}
		fe.emit(code.OpCallC, d, gcw, c.atom(r.Clos), c.atom(r.Arg))

	case *ir.RBuiltin:
		id, ok := code.BuiltinIDByName[r.Name]
		if !ok {
			panic("emitRhs: unknown builtin " + r.Name)
		}
		fe.emit(code.OpBuiltin, d, id, c.atom(r.Args[0]))

	case *ir.RSetGlobal:
		fe.emit(code.OpSetGlobal, code.Word(r.Global.Idx), c.atom(r.Val))
		fe.emit(code.OpMove, d, c.atom(&ir.AConst{Kind: ir.ConstUnit}))

	case *ir.RPatchCapture:
		off := 1 + r.Target.NumRepWords + r.Index
		fe.noteStore(len(c.prog.Code), r.Val)
		fe.emit(code.OpStFld, c.atom(r.Clos), code.Word(off), c.atom(r.Val))
		fe.emit(code.OpMove, d, c.atom(&ir.AConst{Kind: ir.ConstUnit}))

	default:
		panic("emitRhs: unhandled rhs")
	}
}

// ---------------------------------------------------------------------------
// Sites.
// ---------------------------------------------------------------------------

// site registers GC metadata for a call/alloc site and returns its gc_word.
func (fe *femit) site(irSite int, kind code.SiteKind, calleeInst []*code.TypeDesc, siteType *code.TypeDesc) code.Word {
	si := &code.SiteInfo{
		Func:     fe.c.funcIdx[fe.f],
		Kind:     kind,
		SiteType: siteType,
	}
	for _, s := range fe.c.liveMaps[fe.f][irSite] {
		d := fe.c.descOf(s.Type, fe.f)
		if !d.MayHoldPointer() {
			continue
		}
		spine := d.Kind == code.TDData && fe.c.hl.SpineLiveAt(fe.f, irSite, s.Idx)
		si.Live = append(si.Live, code.SlotEntry{Slot: s.Idx, Desc: d, Spine: spine})
	}
	idx := len(fe.c.prog.Sites)
	fe.c.prog.Sites = append(fe.c.prog.Sites, si)
	_ = calleeInst
	return code.Word(idx)
}

func (fe *femit) siteCall(irSite, calleeIdx int, inst []*code.TypeDesc) code.Word {
	gcw := fe.site(irSite, code.SiteCall, nil, nil)
	si := fe.c.prog.Sites[gcw]
	si.Callee = calleeIdx
	si.CalleeInst = inst
	return gcw
}

// addSiteArgs records the call's pointer-bearing slot operands, the extra
// roots a task suspended before the call contributes (tasking, §4).
func (fe *femit) addSiteArgs(gcw code.Word, irSite int, args []ir.Atom) {
	si := fe.c.prog.Sites[gcw]
	for _, a := range args {
		s, ok := a.(*ir.ASlot)
		if !ok {
			continue
		}
		d := fe.c.descOf(s.Slot.Type, fe.f)
		if !d.MayHoldPointer() {
			continue
		}
		spine := d.Kind == code.TDData && fe.c.hl.SpineArgAt(fe.f, irSite, s.Slot.Idx)
		si.Args = append(si.Args, code.SlotEntry{Slot: s.Slot.Idx, Desc: d, Spine: spine})
	}
}

// ---------------------------------------------------------------------------
// Runtime type representations.
// ---------------------------------------------------------------------------

// repAtom returns an atom holding the rep handle for type t at run time,
// emitting construction instructions as needed.
func (fe *femit) repAtom(t types.Type) code.Word {
	c := fe.c
	switch t := types.Resolve(t).(type) {
	case *types.Var:
		if t.Quant == nil || t.Quant.Owner == nil {
			return fe.groundRepAtom(code.TDOpaque, 0, nil)
		}
		idx := fe.f.TypeEnvIndex(t)
		if idx < 0 {
			return fe.groundRepAtom(code.TDOpaque, 0, nil)
		}
		// The variable's rep comes from a hidden argument (direct-called
		// functions) or the closure's rep word (closure-called functions).
		if fe.f.HasEnv {
			if fe.f.RepWord == nil || fe.f.RepWord[idx] < 0 {
				panic(fmt.Sprintf("repAtom: %s: no runtime rep for type variable %d", fe.f.Name, idx))
			}
			s := fe.scratch()
			fe.emit(code.OpLdFld, code.Word(s),
				code.EncodeAtom(code.AtomSlot, 0), code.Word(1+fe.f.RepWord[idx]))
			return code.EncodeAtom(code.AtomSlot, s)
		}
		pos := -1
		if fe.fi.RepArgPos != nil {
			pos = fe.fi.RepArgPos[idx]
		}
		if pos < 0 {
			panic(fmt.Sprintf("repAtom: %s: type variable %d not passed as hidden argument", fe.f.Name, idx))
		}
		return code.EncodeAtom(code.AtomSlot, fe.fi.RepArgBase+pos)

	case *types.Base:
		return fe.groundRepAtom(code.TDConst, 0, nil)

	case *types.Arrow:
		return fe.compositeRep(code.TDArrow, 0, []types.Type{t.Dom, t.Cod})
	case *types.TupleT:
		return fe.compositeRep(code.TDTuple, 0, t.Elems)
	case *types.Con:
		if t.Name == "ref" {
			return fe.compositeRep(code.TDRef, 0, t.Args)
		}
		return fe.compositeRep(code.TDData, c.dataID[t.Data], t.Args)
	}
	panic("repAtom: unreachable")
}

// compositeRep builds a rep with children; when every child is a
// compile-time constant the whole rep is interned at compile time.
func (fe *femit) compositeRep(kind code.TDKind, index int, children []types.Type) code.Word {
	atoms := make([]code.Word, len(children))
	allConst := true
	for i, ch := range children {
		atoms[i] = fe.repAtom(ch)
		if k, _ := code.DecodeAtom(atoms[i]); k != code.AtomConst {
			allConst = false
		}
	}
	if allConst {
		handles := make([]int, len(atoms))
		for i, a := range atoms {
			_, ci := code.DecodeAtom(a)
			handles[i] = int(code.DecodeInt(fe.c.repr, fe.c.prog.Consts[ci]))
		}
		return fe.groundRepAtom(kind, index, handles)
	}
	s := fe.scratch()
	ws := []code.Word{code.OpMkRep, code.Word(s), code.Word(kind), code.Word(index),
		code.Word(len(atoms))}
	ws = append(ws, atoms...)
	fe.emit(ws...)
	return code.EncodeAtom(code.AtomSlot, s)
}

func (fe *femit) groundRepAtom(kind code.TDKind, index int, children []int) code.Word {
	h := fe.c.prog.Reps.Intern(kind, index, children)
	return fe.c.constAtom(code.EncodeInt(fe.c.repr, int64(h)))
}
