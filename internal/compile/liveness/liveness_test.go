package liveness

import (
	"testing"

	"tagfree/internal/compile/gcanal"
	"tagfree/internal/compile/lower"
	"tagfree/internal/ir"
	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/types"
)

// build lowers a program and runs the GC-possible analysis (liveness reads
// the refined CanGC flags).
func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	gcanal.Analyze(irp)
	return irp
}

func fn(t *testing.T, p *ir.Program, name string) *ir.Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func TestPaperAppendExample(t *testing.T) {
	// §2.4 of the paper: in append, nothing needs tracing at either call —
	// temp is an integer and res is dead during the cons.
	p := build(t, `
let rec append xs ys =
  match xs with
  | [] -> ys
  | x :: rest -> x :: append rest ys
let main () = append [1] [2]
`)
	app := fn(t, p, "append")
	maps := Analyze(app)
	for _, r := range ir.Rhss(app) {
		switch r := r.(type) {
		case *ir.RCall:
			if r.Callee.Name != "append" {
				continue
			}
			// At the recursive call only x (an int, filtered later by
			// type) may be live; no list slot should be.
			for _, s := range maps[r.Site] {
				if ts := types.TypeString(s.Type); ts == "int list" {
					t.Errorf("list slot %s live at recursive append call (paper says no_trace)", s.Name)
				}
			}
		case *ir.RCtor:
			// At the cons, its operands are live (re-read after GC), but
			// nothing else.
			for _, s := range maps[r.Site] {
				used := false
				for _, a := range r.Args {
					if sl, ok := a.(*ir.ASlot); ok && sl.Slot == s {
						used = true
					}
				}
				if !used {
					t.Errorf("slot %s live at cons but not an operand", s.Name)
				}
			}
		}
	}
}

func TestDeadAfterUse(t *testing.T) {
	p := build(t, `
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let f () =
  let a = upto 10 in
  let s1 = sum a in
  let b = upto 20 in
  let s2 = sum b in
  s1 + s2
let main () = f ()
`)
	f := fn(t, p, "f")
	maps := Analyze(f)
	var sumCalls []*ir.RCall
	for _, r := range ir.Rhss(f) {
		if call, ok := r.(*ir.RCall); ok && call.Callee.Name == "sum" {
			sumCalls = append(sumCalls, call)
		}
	}
	if len(sumCalls) != 2 {
		t.Fatalf("want 2 sum calls, got %d", len(sumCalls))
	}
	// At the second sum call, list a must be dead.
	for _, s := range maps[sumCalls[1].Site] {
		if s.Name == "a" {
			t.Error("a is dead at the second sum call but still in the map")
		}
	}
	// At the first sum call, a is an argument (dead: consumed by the call),
	// and b does not exist yet — the map must not mention b.
	for _, s := range maps[sumCalls[0].Site] {
		if s.Name == "b" {
			t.Error("b is not yet initialized at the first sum call")
		}
	}
}

func TestLiveAcrossCall(t *testing.T) {
	p := build(t, `
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let g () =
  let keep = upto 5 in
  let s = sum (upto 3) in
  s + sum keep
let main () = g ()
`)
	g := fn(t, p, "g")
	maps := Analyze(g)
	// sum cannot collect (its sites are elided); the GC-able site inside
	// g's body is the second upto call, across which keep must stay live.
	uptoCalls := 0
	for _, r := range ir.Rhss(g) {
		call, ok := r.(*ir.RCall)
		if !ok || call.Callee.Name != "upto" {
			continue
		}
		uptoCalls++
		if uptoCalls != 2 {
			continue
		}
		names := map[string]bool{}
		for _, s := range maps[call.Site] {
			names[s.Name] = true
		}
		if !names["keep"] {
			t.Error("keep must be live across the second upto call")
		}
	}
	if uptoCalls != 2 {
		t.Fatalf("expected 2 upto calls, got %d", uptoCalls)
	}
}

func TestAllocOperandsLive(t *testing.T) {
	p := build(t, `
let pair a b = (a, b)
let main () =
  let x = [1] in
  let y = [2] in
  pair (x, y) (y, x)
`)
	main := fn(t, p, "main")
	maps := Analyze(main)
	for _, r := range ir.Rhss(main) {
		tup, ok := r.(*ir.RTuple)
		if !ok {
			continue
		}
		// Every slot operand of the tuple must be in its own map (the VM
		// re-reads operands after a potential collection).
		inMap := map[int]bool{}
		for _, s := range maps[tup.Site] {
			inMap[s.Idx] = true
		}
		for _, a := range tup.Elems {
			if sl, ok := a.(*ir.ASlot); ok && !inMap[sl.Slot.Idx] {
				t.Errorf("tuple operand %s missing from alloc-site map", sl.Slot.Name)
			}
		}
	}
}

func TestBranchesUnionAtCond(t *testing.T) {
	p := build(t, `
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let h b =
  let l1 = upto 3 in
  let l2 = upto 4 in
  let probe = sum [9] in
  (if b then sum l1 else sum l2) + probe
let main () = h true
`)
	h := fn(t, p, "h")
	maps := Analyze(h)
	// At the probe call both l1 and l2 are live (each used in one branch).
	for _, r := range ir.Rhss(h) {
		call, ok := r.(*ir.RCall)
		if !ok || call.Callee.Name != "sum" {
			continue
		}
		names := map[string]bool{}
		for _, s := range maps[call.Site] {
			names[s.Name] = true
		}
		if names["l1"] != names["l2"] {
			t.Errorf("branch union broken at a sum call: l1=%v l2=%v", names["l1"], names["l2"])
		}
	}
}
