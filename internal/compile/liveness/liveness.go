// Package liveness computes, for every call and allocation site, the set of
// frame slots that are live — the paper's §5.2 optimization. A slot that is
// dead at a site is omitted from the site's frame map, so the collector
// neither traces it (retaining garbage) nor risks interpreting a stale
// word as a pointer.
//
// The analysis is a backward pass over the ANF tree. Because slots are
// assigned once and every use is dominated by its definition, a slot live
// at a site is necessarily initialized there: the frame maps need no
// separate definedness tracking. (The contrast is Appel-style per-procedure
// descriptors, which must assume every variable exists and is initialized —
// forcing frame zero-fill at entry; the VM models that cost in Appel mode.)
//
// Allocation sites keep their operand slots live: the abstract machine
// re-reads operands after a potential collection, so those slots must be in
// the site's map for their pointers to be updated by a moving collector.
// Call sites do not: arguments are copied into the callee's frame (which is
// traced) before the callee can allocate, matching the paper's append
// example where "no local variable or parameter is needed anymore".
package liveness

import (
	"sort"

	"tagfree/internal/ir"
)

// slotSet is a set of slots keyed by index.
type slotSet map[int]*ir.Slot

func (s slotSet) clone() slotSet {
	c := make(slotSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s slotSet) addAtom(a ir.Atom) {
	if sl, ok := a.(*ir.ASlot); ok {
		s[sl.Slot.Idx] = sl.Slot
	}
}

func (s slotSet) union(o slotSet) slotSet {
	out := s.clone()
	for k, v := range o {
		out[k] = v
	}
	return out
}

// joinCtx carries the enclosing conditional's join target for EJoin nodes
// and inherit-join conditionals.
type joinCtx struct {
	dst  *ir.Slot
	live slotSet // live set at the join continuation
}

// Analyze returns, for each call/allocation site id of f, the slots live
// across that site, sorted by slot index.
func Analyze(f *ir.Func) [][]*ir.Slot {
	liveAt := make([]slotSet, f.NumCallSites)
	analyzeExpr(f.Body, nil, liveAt)

	out := make([][]*ir.Slot, f.NumCallSites)
	for i, set := range liveAt {
		slots := make([]*ir.Slot, 0, len(set))
		for _, s := range set {
			slots = append(slots, s)
		}
		sort.Slice(slots, func(a, b int) bool { return slots[a].Idx < slots[b].Idx })
		out[i] = slots
	}
	return out
}

// analyzeExpr returns the live set at the entry of e.
func analyzeExpr(e ir.Expr, jc *joinCtx, liveAt []slotSet) slotSet {
	switch e := e.(type) {
	case *ir.ERet:
		s := slotSet{}
		s.addAtom(e.A)
		return s

	case *ir.EJoin:
		if jc == nil {
			// A join with no context is a lowering bug; treat as return.
			s := slotSet{}
			s.addAtom(e.A)
			return s
		}
		s := jc.live.clone()
		if jc.dst != nil {
			delete(s, jc.dst.Idx)
		}
		s.addAtom(e.A)
		return s

	case *ir.EMatchFail:
		return slotSet{}

	case *ir.ELet:
		after := analyzeExpr(e.Cont, jc, liveAt)
		live := after.clone()
		delete(live, e.Dst.Idx)

		switch r := e.Rhs.(type) {
		case *ir.RCall:
			if r.CanGC {
				liveAt[r.Site] = live.clone()
			}
		case *ir.RCallClos:
			if r.CanGC {
				liveAt[r.Site] = live.clone()
			}
		case *ir.RRef:
			m := live.clone()
			m.addAtom(r.Init)
			liveAt[r.Site] = m
		case *ir.RTuple:
			m := live.clone()
			for _, a := range r.Elems {
				m.addAtom(a)
			}
			liveAt[r.Site] = m
		case *ir.RCtor:
			m := live.clone()
			for _, a := range r.Args {
				m.addAtom(a)
			}
			liveAt[r.Site] = m
		case *ir.RClosure:
			m := live.clone()
			for _, a := range r.Captures {
				m.addAtom(a)
			}
			liveAt[r.Site] = m
		}
		for _, a := range ir.RhsAtoms(e.Rhs) {
			live.addAtom(a)
		}
		return live

	case *ir.ECond:
		inner := jc
		var contLive slotSet
		if e.Dst != nil || e.Cont != nil {
			contLive = analyzeExpr(e.Cont, jc, liveAt)
			inner = &joinCtx{dst: e.Dst, live: contLive}
		}
		thenLive := analyzeExpr(e.Then, inner, liveAt)
		elseLive := analyzeExpr(e.Else, inner, liveAt)
		live := thenLive.union(elseLive)
		live.addAtom(e.Cond)
		return live
	}
	return slotSet{}
}
