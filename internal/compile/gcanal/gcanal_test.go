package gcanal

import (
	"testing"

	"tagfree/internal/compile/lower"
	"tagfree/internal/ir"
	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/types"
)

func analyze(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return irp, Analyze(irp)
}

func fn(t *testing.T, p *ir.Program, name string) *ir.Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func TestPureArithmeticCannotGC(t *testing.T) {
	p, res := analyze(t, `
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
let double x = x * 2
let main () = fib 10 + double 3
`)
	if res.CanGCFunc[fn(t, p, "fib")] {
		t.Error("fib allocates nothing and calls only itself: cannot GC")
	}
	if res.CanGCFunc[fn(t, p, "double")] {
		t.Error("double cannot GC")
	}
	// Every direct call site in this program can elide its gc_word.
	if res.Stats.ElidedSites != res.Stats.DirectCallSites {
		t.Errorf("all %d direct sites should elide, got %d",
			res.Stats.DirectCallSites, res.Stats.ElidedSites)
	}
}

func TestAllocatorPropagates(t *testing.T) {
	p, res := analyze(t, `
let mk n = [n]
let wrapper n = mk n
let outer n = wrapper n
let pure n = n + 1
let main () = match outer 3 with | x :: _ -> x + pure 1 | [] -> 0
`)
	for _, name := range []string{"mk", "wrapper", "outer"} {
		if !res.CanGCFunc[fn(t, p, name)] {
			t.Errorf("%s transitively allocates", name)
		}
	}
	if res.CanGCFunc[fn(t, p, "pure")] {
		t.Error("pure does not allocate")
	}
}

func TestRecursionThroughAllocation(t *testing.T) {
	p, res := analyze(t, `
let rec build n = if n = 0 then [] else n :: build (n - 1)
let main () = match build 3 with | x :: _ -> x | [] -> 0
`)
	if !res.CanGCFunc[fn(t, p, "build")] {
		t.Error("build allocates cons cells")
	}
}

func TestClosureCallsAreConservative(t *testing.T) {
	p, res := analyze(t, `
let apply f x = f x
let main () = apply (fun y -> y + 1) 3
`)
	// apply closure-calls an unknown function: conservatively may GC.
	if !res.CanGCFunc[fn(t, p, "apply")] {
		t.Error("closure calls must be treated as possibly collecting")
	}
}

func TestCanGCFlagsRefined(t *testing.T) {
	p, _ := analyze(t, `
let pure x = x * x
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = pure 3 + sum [1; 2]
`)
	main := fn(t, p, "main")
	for _, r := range ir.Rhss(main) {
		call, ok := r.(*ir.RCall)
		if !ok {
			continue
		}
		switch call.Callee.Name {
		case "pure":
			if call.CanGC {
				t.Error("call to pure should have CanGC=false")
			}
		case "sum":
			if call.CanGC {
				t.Error("sum traverses but does not allocate... verify")
			}
		}
	}
}
