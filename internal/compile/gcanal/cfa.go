package gcanal

import "tagfree/internal/ir"

// Higher-order refinement of the GC-possible analysis.
//
// The paper's fixpoint (§5.1) is first-order: closure calls are assumed to
// reach an allocator because the callee is unknown. The paper points at
// abstract interpretation for the higher-order case ("a similar analysis
// on programs with higher order functions is more difficult... via
// abstract interpretation"); this is that analysis, as a monovariant
// closure-flow analysis (0-CFA):
//
//   - every slot, capture, global, and function return is an abstract set
//     of functions that may flow there;
//   - closures stored into heap structures join one "escaped" set, and
//     loads from heap structures yield it (field-insensitive);
//   - closure-call sites then know their possible targets, and the
//     GC-possible fixpoint treats them like direct calls to each target.
//
// A closure-call site whose every possible target cannot allocate loses
// its gc_word, exactly like the first-order elision.
type cfa struct {
	prog *ir.Program
	// slotSets[f.ID][slot] is the set of functions that may inhabit the slot.
	slotSets []map[int]fnSet
	// capSets[f.ID][capIdx] is the set for a closure capture field.
	capSets []map[int]fnSet
	// retSets[f.ID] is the set returned by f.
	retSets []fnSet
	// globalSets[g.Idx] is the set for a global.
	globalSets []fnSet
	// escaped covers everything stored into heap objects.
	escaped fnSet
	changed bool
}

// fnSet is a set of function IDs.
type fnSet map[int]bool

func (s fnSet) addAll(o fnSet) fnSet {
	for k := range o {
		if !s[k] {
			s[k] = true
		}
	}
	return s
}

// AnalyzeCFA runs the first-order analysis plus the 0-CFA higher-order
// refinement, updating RCall.CanGC and RCallClos CanGC flags in place.
func AnalyzeCFA(p *ir.Program) *Result {
	c := &cfa{
		prog:       p,
		slotSets:   make([]map[int]fnSet, len(p.Funcs)),
		capSets:    make([]map[int]fnSet, len(p.Funcs)),
		retSets:    make([]fnSet, len(p.Funcs)),
		globalSets: make([]fnSet, len(p.Globals)),
		escaped:    fnSet{},
	}
	for i := range p.Funcs {
		c.slotSets[i] = map[int]fnSet{}
		c.capSets[i] = map[int]fnSet{}
		c.retSets[i] = fnSet{}
	}
	for i := range p.Globals {
		c.globalSets[i] = fnSet{}
	}

	// Flow fixpoint.
	for {
		c.changed = false
		for _, f := range p.Funcs {
			c.flowFunc(f)
		}
		if !c.changed {
			break
		}
	}

	// GC-possible fixpoint with resolved closure targets.
	res := &Result{CanGCFunc: make(map[*ir.Func]bool, len(p.Funcs))}
	for _, f := range p.Funcs {
		for _, r := range ir.Rhss(f) {
			switch r.(type) {
			case *ir.RRef, *ir.RTuple, *ir.RCtor, *ir.RClosure:
				res.CanGCFunc[f] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			if res.CanGCFunc[f] {
				continue
			}
			gc := false
			for _, r := range ir.Rhss(f) {
				switch r := r.(type) {
				case *ir.RCall:
					if res.CanGCFunc[r.Callee] {
						gc = true
					}
				case *ir.RCallClos:
					if c.calleesCanGC(f, r, res) {
						gc = true
					}
				}
				if gc {
					break
				}
			}
			if gc {
				res.CanGCFunc[f] = true
				changed = true
			}
		}
	}

	// Refine sites and collect statistics.
	for _, f := range p.Funcs {
		for _, r := range ir.Rhss(f) {
			switch r := r.(type) {
			case *ir.RCall:
				res.Stats.Sites++
				res.Stats.DirectCallSites++
				r.CanGC = res.CanGCFunc[r.Callee]
				if !r.CanGC {
					res.Stats.ElidedSites++
				}
			case *ir.RCallClos:
				res.Stats.Sites++
				res.Stats.ClosCallSites++
				if !c.calleesCanGC(f, r, res) {
					r.CanGC = false
					res.Stats.ElidedClosSites++
				}
			case *ir.RRef, *ir.RTuple, *ir.RCtor, *ir.RClosure:
				res.Stats.Sites++
			}
		}
	}
	return res
}

// calleesCanGC reports whether any resolved target of a closure call can
// allocate. An empty target set is treated conservatively (the analysis
// may be looking at dead code or a flow it cannot see).
func (c *cfa) calleesCanGC(f *ir.Func, r *ir.RCallClos, res *Result) bool {
	targets := c.atomSet(f, r.Clos)
	if len(targets) == 0 {
		return true
	}
	for fid := range targets {
		if res.CanGCFunc[c.prog.Funcs[fid]] {
			return true
		}
	}
	return false
}

// atomSet returns the function set an atom may hold.
func (c *cfa) atomSet(f *ir.Func, a ir.Atom) fnSet {
	switch a := a.(type) {
	case *ir.ASlot:
		if s, ok := c.slotSets[f.ID][a.Slot.Idx]; ok {
			return s
		}
		return nil
	case *ir.AGlobal:
		return c.globalSets[a.Global.Idx]
	}
	return nil
}

func (c *cfa) join(dst fnSet, src fnSet) fnSet {
	if dst == nil {
		dst = fnSet{}
	}
	before := len(dst)
	dst.addAll(src)
	if len(dst) != before {
		c.changed = true
	}
	return dst
}

func (c *cfa) joinSlot(f *ir.Func, slot int, src fnSet) {
	if len(src) == 0 {
		return
	}
	c.slotSets[f.ID][slot] = c.join(c.slotSets[f.ID][slot], src)
}

func (c *cfa) single(fid int) fnSet { return fnSet{fid: true} }

// flowFunc propagates one pass over a function body.
func (c *cfa) flowFunc(f *ir.Func) {
	ir.WalkExprs(f.Body, func(e ir.Expr) {
		switch e := e.(type) {
		case *ir.ERet:
			c.retSets[f.ID] = c.join(c.retSets[f.ID], c.atomSet(f, e.A))
		case *ir.ECond:
			// Join values flow through EJoin nodes below; nothing here.
		case *ir.EJoin:
			// Handled by the enclosing conditional pass below.
		case *ir.ELet:
			c.flowRhs(f, e.Dst, e.Rhs)
		}
	})
	// EJoin → ECond.Dst flows: walk with join-target context.
	c.flowJoins(f.Body, f, nil)
}

// flowJoins propagates EJoin atoms into their conditionals' destinations.
func (c *cfa) flowJoins(e ir.Expr, f *ir.Func, dst *ir.Slot) {
	switch e := e.(type) {
	case *ir.EJoin:
		if dst != nil {
			c.joinSlot(f, dst.Idx, c.atomSet(f, e.A))
		}
	case *ir.ELet:
		c.flowJoins(e.Cont, f, dst)
	case *ir.ECond:
		inner := dst
		if e.Dst != nil {
			inner = e.Dst
		}
		c.flowJoins(e.Then, f, inner)
		c.flowJoins(e.Else, f, inner)
		if e.Cont != nil {
			c.flowJoins(e.Cont, f, dst)
		}
	}
}

func (c *cfa) flowRhs(f *ir.Func, dst *ir.Slot, r ir.Rhs) {
	switch r := r.(type) {
	case *ir.RAtom:
		c.joinSlot(f, dst.Idx, c.atomSet(f, r.A))

	case *ir.RClosure:
		c.joinSlot(f, dst.Idx, c.single(r.Target.ID))
		for i, a := range r.Captures {
			if s := c.atomSet(f, a); len(s) > 0 {
				c.capSets[r.Target.ID][i] = c.join(c.capSets[r.Target.ID][i], s)
			}
		}
		if r.SelfCapture >= 0 {
			c.capSets[r.Target.ID][r.SelfCapture] =
				c.join(c.capSets[r.Target.ID][r.SelfCapture], c.single(r.Target.ID))
		}

	case *ir.RCall:
		for i, a := range r.Args {
			if i < r.Callee.NParams {
				c.joinSlot(r.Callee, i, c.atomSet(f, a))
			}
		}
		c.joinSlot(f, dst.Idx, c.retSets[r.Callee.ID])

	case *ir.RCallClos:
		targets := c.atomSet(f, r.Clos)
		argSet := c.atomSet(f, r.Arg)
		for fid := range targets {
			g := c.prog.Funcs[fid]
			c.joinSlot(g, 0, targets)
			c.joinSlot(g, 1, argSet)
			c.joinSlot(f, dst.Idx, c.retSets[fid])
		}

	case *ir.RField:
		if r.FromCapture {
			c.joinSlot(f, dst.Idx, c.capSets[f.ID][r.Index])
		} else {
			c.joinSlot(f, dst.Idx, c.escaped)
		}

	case *ir.RDeref:
		c.joinSlot(f, dst.Idx, c.escaped)

	case *ir.RTuple:
		for _, a := range r.Elems {
			c.escaped = c.join(c.escaped, c.atomSet(f, a))
		}
	case *ir.RCtor:
		for _, a := range r.Args {
			c.escaped = c.join(c.escaped, c.atomSet(f, a))
		}
	case *ir.RRef:
		c.escaped = c.join(c.escaped, c.atomSet(f, r.Init))
	case *ir.RAssign:
		c.escaped = c.join(c.escaped, c.atomSet(f, r.Val))
	case *ir.RPatchCapture:
		c.capSets[r.Target.ID][r.Index] =
			c.join(c.capSets[r.Target.ID][r.Index], c.atomSet(f, r.Val))

	case *ir.RSetGlobal:
		c.globalSets[r.Global.Idx] = c.join(c.globalSets[r.Global.Idx], c.atomSet(f, r.Val))
	}
}
