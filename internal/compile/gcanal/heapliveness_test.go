package gcanal

import (
	"testing"

	"tagfree/internal/ir"
)

// hlAnalyze runs the pipeline prefix heap-liveness depends on: the
// GC-possible analysis refines RCall.CanGC before verdicts are recorded.
func hlAnalyze(t *testing.T, src string) (*ir.Program, *HeapLiveness) {
	t.Helper()
	p, _ := analyze(t, src)
	return p, AnalyzeHeapLiveness(p)
}

func slotIdx(t *testing.T, f *ir.Func, name string) int {
	t.Helper()
	for _, s := range f.Slots {
		if s.Name == name {
			return s.Idx
		}
	}
	t.Fatalf("no slot %q in %s", name, f.Name)
	return -1
}

// anyLiveSpine reports whether any GC site in f carries a spine-only Live
// verdict for the slot.
func anyLiveSpine(hl *HeapLiveness, f *ir.Func, slot int) bool {
	for site := range hl.SpineLive[f] {
		if hl.SpineLiveAt(f, site, slot) {
			return true
		}
	}
	return false
}

const lenSumSrc = `
type tree = Leaf | Node of tree * int * tree
let rec len xs = match xs with | [] -> 0 | _ :: t -> 1 + len t
let rec sum xs = match xs with | [] -> 0 | h :: t -> h + sum t
let rec build n = if n = 0 then [] else n :: build (n - 1)
let rec depth t = match t with | Leaf -> 0 | Node (l, _, r) ->
  let dl = depth l in let dr = depth r in
  if dl > dr then dl + 1 else dr + 1
let rec total t = match t with | Leaf -> 0 | Node (l, v, r) -> total l + v + total r
let spin xs = let ys = build 3 in len xs + len ys
let full xs = let ys = build 3 in sum xs + len ys
let main () = spin (build 4) + full (build 4) + depth Leaf + total Leaf
`

// length-style consumers never project past the spine: their parameter is
// proven element-dead. sum-style consumers load the element field and are
// not.
func TestElemDemandSummaries(t *testing.T) {
	p, hl := hlAnalyze(t, lenSumSrc)
	cases := []struct {
		fn     string
		param  int
		demand bool
	}{
		{"len", 0, false},
		{"sum", 0, true},
		{"depth", 0, false}, // spine-only on trees: recursive fields + int compares
		{"total", 0, true},  // loads the int payload
	}
	for _, c := range cases {
		f := fn(t, p, c.fn)
		if got := hl.DemandsElems[f][c.param]; got != c.demand {
			t.Errorf("%s param %d: demandsElems = %v, want %v", c.fn, c.param, got, c.demand)
		}
	}
	if hl.Stats.RecDatatypes < 2 { // builtin list + tree
		t.Errorf("RecDatatypes = %d, want >= 2", hl.Stats.RecDatatypes)
	}
	if hl.Stats.ElemDeadParams < 2 { // len xs, depth t at minimum
		t.Errorf("ElemDeadParams = %d, want >= 2", hl.Stats.ElemDeadParams)
	}
}

// A list held live across an allocation gets the spine verdict exactly when
// its downstream consumer is spine-only.
func TestSpineVerdictAtAllocSite(t *testing.T) {
	p, hl := hlAnalyze(t, lenSumSrc)

	spin := fn(t, p, "spin")
	if xs := slotIdx(t, spin, "xs"); !anyLiveSpine(hl, spin, xs) {
		t.Error("spin: xs is consumed only by len after build — want a spine-only Live verdict")
	}
	full := fn(t, p, "full")
	if xs := slotIdx(t, full, "xs"); anyLiveSpine(hl, full, xs) {
		t.Error("full: sum xs projects the elements after build — xs must stay full")
	}
	if hl.Stats.SpineSites == 0 || hl.Stats.SpineSlots == 0 {
		t.Errorf("stats: SpineSites=%d SpineSlots=%d, want > 0",
			hl.Stats.SpineSites, hl.Stats.SpineSlots)
	}
}

// The append shape: the result aliases an argument, so a demanded result
// demands every argument (and the element load demands the head's list).
func TestAppendResultAliasDemandsArgs(t *testing.T) {
	p, hl := hlAnalyze(t, `
let rec app xs ys = match xs with | [] -> ys | h :: t -> h :: app t ys
let rec sum xs = match xs with | [] -> 0 | h :: t -> h + sum t
let main () = sum (app [1] [2])
`)
	app := fn(t, p, "app")
	for i := 0; i < 2; i++ {
		if !hl.DemandsElems[app][i] {
			t.Errorf("app param %d: result is returned and may alias either list; must demand elems", i)
		}
	}
}

// Dual verdicts at one call site: the Live map sees demand after the call
// returns, the Args list (rooting a task suspended before the call) must
// fold in the callee's own demand.
func TestLiveVersusArgsVerdict(t *testing.T) {
	p, hl := hlAnalyze(t, `
let rec len xs = match xs with | [] -> 0 | _ :: t -> 1 + len t
let rec sum xs = match xs with | [] -> 0 | h :: t -> h + sum t
let rec build n = if n = 0 then [] else n :: build (n - 1)
let sumalloc xs = let s = sum xs in [s]
let tailuse xs = let ys = sumalloc xs in len ys
let main () = tailuse (build 3)
`)
	f := fn(t, p, "tailuse")
	xs := slotIdx(t, f, "xs")
	found := false
	for site := range hl.SpineLive[f] {
		live, arg := hl.SpineLiveAt(f, site, xs), hl.SpineArgAt(f, site, xs)
		if live || arg {
			found = true
		}
		if arg {
			t.Errorf("site %d: Args verdict for xs must be full — sum demands elements on re-execution", site)
		}
	}
	if !found {
		t.Error("want at least one site with a Live spine verdict for xs (dead after the call)")
	}
}

// Storing a list into the heap (a ref cell, a constructor, a tuple) makes
// it reachable through an untracked object: demand it.
func TestHeapStoreDemands(t *testing.T) {
	p, hl := hlAnalyze(t, `
let rec len xs = match xs with | [] -> 0 | _ :: t -> 1 + len t
let rec build n = if n = 0 then [] else n :: build (n - 1)
let stash xs = let r = ref xs in let n = len xs in let v = !r in n + len v
let main () = stash (build 3)
`)
	f := fn(t, p, "stash")
	xs := slotIdx(t, f, "xs")
	// The ref-cell store escapes xs before any recorded site; every later
	// site must keep xs full.
	for site := range hl.SpineLive[f] {
		if hl.SpineLiveAt(f, site, xs) {
			// Only sites before the store could be spine — the store is the
			// first computation, so none may be.
			t.Errorf("site %d: xs escaped into a ref cell; verdict must be full", site)
		}
	}
	_ = hl.DemandsElems[fn(t, p, "len")]
}

// Nil-receiver accessors let codegen run without the analysis.
func TestNilHeapLiveness(t *testing.T) {
	var hl *HeapLiveness
	if hl.SpineLiveAt(nil, 0, 0) || hl.SpineArgAt(nil, 0, 0) {
		t.Error("nil HeapLiveness must report no spine verdicts")
	}
}
