// Heap-liveness analysis: which field projections of a recursive datatype
// can still be demanded after each GC point (Karkare/Khedker/Sanyal,
// "Liveness of Heap Data for Functional Programs"; the lazy-language
// follow-up by Kumar/Sanyal/Karkare). The paper's slot liveness (§5.2,
// compile/liveness) decides whether a slot is traced at all; this pass
// refines *how much of the structure* a traced slot retains.
//
// First cut: the spine-only vs full verdict for list/tree-shaped slots. A
// slot holding a recursive datatype is spine-only at a site when no
// element-field projection of its value can be demanded through that slot
// after the site — e.g. a list subsequently consumed only by length- or
// append-spine-style code. The collector may then trace just the spine
// (tag + recursive fields) and prune the element fields.
//
// The analysis is a backward element-demand pass over the ANF tree,
// mirroring compile/liveness's walk, with an interprocedural summary
// fixpoint over direct calls:
//
//	demandsElems[f][i] — may f (or anything it calls) demand an element
//	projection of parameter i's value?
//
// Demand events, all conservative:
//   - an element-field load (RField of a non-recursive constructor field)
//     demands the object;
//   - a recursive-field load (the spine step) transfers the loaded tail's
//     demand to the object;
//   - storing into the heap (tuple/ctor/closure/ref operands, RAssign,
//     RPatchCapture, RSetGlobal) demands the stored value — it becomes
//     reachable through an object this analysis does not track;
//   - returning a value (ERet, and EJoin into a demanded join slot)
//     demands it — the caller may project it;
//   - a direct call demands its argument when the callee's summary does,
//     or when the call's own result is demanded (the result may alias any
//     argument, the append case);
//   - a closure call demands everything it touches (the callee is
//     unknown; a 0-CFA refinement is possible but not needed for the
//     first cut);
//   - moves propagate demand from destination to source.
//
// Tag tests (PTagIs, PIsBoxed) and word comparisons are spine operations
// and demand nothing — they are exactly what length-style consumers do.
//
// Soundness note: the verdict is per-slot ("no demand through this access
// path"), not per-object. The collector makes that sufficient by tracing
// every full-verdict root first and letting the pruning kernel stop at
// already-visited objects, so a structure demanded through any other alias
// path is retained in full regardless of this slot's verdict (see
// internal/gc).
package gcanal

import (
	"tagfree/internal/ir"
	"tagfree/internal/mlang/types"
)

// HeapLiveness is the analysis result the code generator consults when
// emitting frame maps.
type HeapLiveness struct {
	// SpineLive[f][site] holds the slot indexes whose verdict at that GC
	// site is spine-only, for the site's Live frame map (slots live after
	// the site).
	SpineLive map[*ir.Func][]map[int]bool
	// SpineArgs[f][site] is the same for the site's Args entries — the
	// roots a task suspended *before* a call contributes. The call has not
	// happened yet, so the callee's own demand is folded in.
	SpineArgs map[*ir.Func][]map[int]bool
	// DemandsElems[f][i] is the converged interprocedural summary: may f
	// (or anything it calls) demand an element projection of parameter i?
	DemandsElems map[*ir.Func][]bool
	// Stats aggregates verdict counts.
	Stats HLStats
}

// HLStats summarizes the analysis across the program (experiment E17).
type HLStats struct {
	// RecDatatypes counts recursive datatypes seen (spine candidates).
	RecDatatypes int
	// SpineSites counts GC sites with at least one spine-only slot.
	SpineSites int
	// SpineSlots counts (site, slot) pairs with a spine-only verdict.
	SpineSlots int
	// ElemDeadParams counts function parameters proven element-dead by the
	// summary fixpoint.
	ElemDeadParams int
}

// SpineLiveAt reports the spine verdict for a slot in a site's Live map.
func (hl *HeapLiveness) SpineLiveAt(f *ir.Func, site, slot int) bool {
	if hl == nil {
		return false
	}
	sets := hl.SpineLive[f]
	return site < len(sets) && sets[site] != nil && sets[site][slot]
}

// SpineArgAt reports the spine verdict for a slot in a site's Args list.
func (hl *HeapLiveness) SpineArgAt(f *ir.Func, site, slot int) bool {
	if hl == nil {
		return false
	}
	sets := hl.SpineArgs[f]
	return site < len(sets) && sets[site] != nil && sets[site][slot]
}

// demandSet is a set of slot indexes whose element projections may be
// demanded at/after a program point.
type demandSet map[int]bool

func (s demandSet) clone() demandSet {
	c := make(demandSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s demandSet) addAtom(a ir.Atom) {
	if sl, ok := a.(*ir.ASlot); ok && !wordOnly(sl.Slot.Type) {
		s[sl.Slot.Idx] = true
	}
}

// wordOnly reports whether a type is a provably unboxed word (int, bool,
// unit). Such a value carries no heap structure, so element demand through
// it is meaningless — in particular a demanded int call result (the length
// pattern) must not demand the call's arguments via the result-alias rule.
// Strings, tuples, datatypes, closures and unresolved type variables all
// may be (or instantiate to) pointers and stay tracked.
func wordOnly(t types.Type) bool {
	b, ok := types.Resolve(t).(*types.Base)
	return ok && b.Kind != types.StringK
}

func (s demandSet) union(o demandSet) demandSet {
	out := s.clone()
	for k := range o {
		out[k] = true
	}
	return out
}

// hlJoin mirrors liveness.joinCtx for the demand walk.
type hlJoin struct {
	dst    *ir.Slot
	demand demandSet
}

// hlAnalyzer carries the interprocedural state.
type hlAnalyzer struct {
	prog *ir.Program
	// demandsElems[f][i]: the summary fixpoint (monotone, starts false).
	demandsElems map[*ir.Func][]bool
	recData      map[*types.Data]bool
	changed      bool
	res          *HeapLiveness
}

// AnalyzeHeapLiveness runs the element-demand analysis. It must run after
// the GC-possible analysis (RCall.CanGC refined): verdicts are recorded
// only for sites that get frame maps.
func AnalyzeHeapLiveness(p *ir.Program) *HeapLiveness {
	a := &hlAnalyzer{
		prog:         p,
		demandsElems: make(map[*ir.Func][]bool, len(p.Funcs)),
		recData:      map[*types.Data]bool{},
		res: &HeapLiveness{
			SpineLive: make(map[*ir.Func][]map[int]bool, len(p.Funcs)),
			SpineArgs: make(map[*ir.Func][]map[int]bool, len(p.Funcs)),
		},
	}
	for _, d := range p.Datatypes {
		if isRecData(d) {
			a.recData[d] = true
			a.res.Stats.RecDatatypes++
		}
	}
	for _, f := range p.Funcs {
		a.demandsElems[f] = make([]bool, f.NParams)
	}

	// Summary fixpoint: re-walk every body until no parameter's verdict
	// changes. The walk is monotone in the summaries, so this terminates.
	for {
		a.changed = false
		for _, f := range p.Funcs {
			d := a.walk(f, nil)
			for i := 0; i < f.NParams; i++ {
				if d[f.Slots[i].Idx] && !a.demandsElems[f][i] {
					a.demandsElems[f][i] = true
					a.changed = true
				}
			}
		}
		if !a.changed {
			break
		}
	}

	// Final pass: record per-site verdicts with the converged summaries.
	for _, f := range p.Funcs {
		live := make([]map[int]bool, f.NumCallSites)
		args := make([]map[int]bool, f.NumCallSites)
		a.res.SpineLive[f] = live
		a.res.SpineArgs[f] = args
		a.walk(f, &siteRec{f: f, live: live, args: args, a: a})
		for i := 0; i < f.NParams; i++ {
			if !a.demandsElems[f][i] && a.spineCandidate(f.Slots[i]) {
				a.res.Stats.ElemDeadParams++
			}
		}
	}
	a.res.DemandsElems = a.demandsElems
	seen := map[[2]int]bool{}
	for _, f := range p.Funcs {
		for site, set := range a.res.SpineLive[f] {
			n := len(set)
			if s2 := a.res.SpineArgs[f][site]; s2 != nil {
				for k := range s2 {
					if !set[k] {
						n++
					}
				}
			}
			if n > 0 && !seen[[2]int{f.ID, site}] {
				seen[[2]int{f.ID, site}] = true
				a.res.Stats.SpineSites++
				a.res.Stats.SpineSlots += n
			}
		}
	}
	return a.res
}

// isRecData reports whether a datatype is self-recursive through a boxed
// constructor field — the list/tree shape the spine kernel can trace.
func isRecData(d *types.Data) bool {
	for _, ci := range d.Ctors {
		if ci.IsNullary() {
			continue
		}
		for _, ft := range ci.Args {
			if con, ok := types.Resolve(ft).(*types.Con); ok && con.Data == d {
				return true
			}
		}
	}
	return false
}

// spineCandidate reports whether a slot's type is a recursive datatype —
// the only shape that can carry a spine verdict.
func (a *hlAnalyzer) spineCandidate(s *ir.Slot) bool {
	con, ok := types.Resolve(s.Type).(*types.Con)
	return ok && a.recData[con.Data]
}

// siteRec records per-site verdicts during the final walk (nil during the
// fixpoint rounds).
type siteRec struct {
	f    *ir.Func
	live []map[int]bool
	args []map[int]bool
	a    *hlAnalyzer
}

// record stores the spine set for one site's Live (or Args) map: every
// recursive-datatype slot NOT in the demand set.
func (r *siteRec) record(into []map[int]bool, site int, d demandSet) {
	set := map[int]bool{}
	for _, s := range r.f.Slots {
		if !d[s.Idx] && r.a.spineCandidate(s) {
			set[s.Idx] = true
		}
	}
	if len(set) > 0 {
		into[site] = set
	}
}

// walk runs the backward demand pass over f's body and returns the demand
// set at entry. rec, when non-nil, records per-site verdicts.
func (a *hlAnalyzer) walk(f *ir.Func, rec *siteRec) demandSet {
	return a.walkExpr(f.Body, nil, rec)
}

func (a *hlAnalyzer) walkExpr(e ir.Expr, jc *hlJoin, rec *siteRec) demandSet {
	switch e := e.(type) {
	case *ir.ERet:
		// The value escapes to the caller, which may project it.
		d := demandSet{}
		d.addAtom(e.A)
		return d

	case *ir.EJoin:
		if jc == nil {
			d := demandSet{}
			d.addAtom(e.A)
			return d
		}
		d := jc.demand.clone()
		if jc.dst != nil {
			if d[jc.dst.Idx] {
				// The join slot's elements are demanded downstream; the
				// joined value feeds it.
				d.addAtom(e.A)
			}
			delete(d, jc.dst.Idx)
		}
		return d

	case *ir.EMatchFail:
		return demandSet{}

	case *ir.ELet:
		after := a.walkExpr(e.Cont, jc, rec)
		d := after.clone()
		dstDemanded := d[e.Dst.Idx]
		delete(d, e.Dst.Idx)
		a.walkRhs(e.Rhs, e.Dst, dstDemanded, d, after, rec)
		return d

	case *ir.ECond:
		inner := jc
		if e.Dst != nil || e.Cont != nil {
			contD := a.walkExpr(e.Cont, jc, rec)
			inner = &hlJoin{dst: e.Dst, demand: contD}
		}
		thenD := a.walkExpr(e.Then, inner, rec)
		elseD := a.walkExpr(e.Else, inner, rec)
		// The condition is a word test: no element demand.
		return thenD.union(elseD)
	}
	return demandSet{}
}

// walkRhs applies one computation's demand rules to d (the demand set
// before the binding; dst already removed). after is the demand set after
// the binding (for site recording); dstDemanded says whether the bound
// value's elements are demanded downstream.
func (a *hlAnalyzer) walkRhs(r ir.Rhs, dst *ir.Slot, dstDemanded bool, d, after demandSet, rec *siteRec) {
	switch r := r.(type) {
	case *ir.RAtom:
		if dstDemanded {
			d.addAtom(r.A)
		}

	case *ir.RPrim:
		// Tag tests, pointer discrimination and word comparisons are spine
		// operations; arithmetic operands are unboxed. No demand.

	case *ir.RField:
		if spineStep(r) {
			// Loading a recursive field: the tail is a sub-spine of the
			// object, so the tail's demand is the object's demand.
			if dstDemanded {
				d.addAtom(r.Obj)
			}
		} else {
			// An element-field (or capture/tuple-component) load projects
			// past the spine: the object's elements are demanded.
			d.addAtom(r.Obj)
		}

	case *ir.RDeref:
		d.addAtom(r.Ref)

	case *ir.RAssign:
		d.addAtom(r.Ref)
		d.addAtom(r.Val)

	case *ir.RRef:
		d.addAtom(r.Init)
		if rec != nil {
			rec.record(rec.live, r.Site, d)
		}

	case *ir.RTuple:
		for _, e := range r.Elems {
			d.addAtom(e)
		}
		if rec != nil {
			rec.record(rec.live, r.Site, d)
		}

	case *ir.RCtor:
		for _, e := range r.Args {
			d.addAtom(e)
		}
		if rec != nil {
			rec.record(rec.live, r.Site, d)
		}

	case *ir.RClosure:
		for _, e := range r.Captures {
			d.addAtom(e)
		}
		if rec != nil {
			rec.record(rec.live, r.Site, d)
		}

	case *ir.RCall:
		// Record the Live verdict first: demand after the call returns.
		// (During the call the callee holds its own copy of each argument
		// as a root with its own frame map and verdict.)
		if rec != nil && r.CanGC {
			rec.record(rec.live, r.Site, after)
		}
		sum := a.demandsElems[r.Callee]
		for i, arg := range r.Args {
			if dstDemanded || i >= len(sum) || sum[i] {
				d.addAtom(arg)
			}
		}
		// Args entries root a task suspended before the call: the call
		// re-executes on resume, so the callee's demand applies.
		if rec != nil && r.CanGC {
			rec.record(rec.args, r.Site, d)
		}

	case *ir.RCallClos:
		if rec != nil && r.CanGC {
			rec.record(rec.live, r.Site, after)
		}
		// Unknown callee: everything it touches is demanded.
		d.addAtom(r.Clos)
		d.addAtom(r.Arg)
		if rec != nil && r.CanGC {
			rec.record(rec.args, r.Site, d)
		}

	case *ir.RBuiltin:
		for _, e := range r.Args {
			d.addAtom(e)
		}

	case *ir.RSetGlobal:
		d.addAtom(r.Val)

	case *ir.RPatchCapture:
		d.addAtom(r.Clos)
		d.addAtom(r.Val)
	}
	_ = dst
}

// spineStep reports whether an RField load follows a recursive
// (self-typed) constructor field — the spine traversal step.
func spineStep(r *ir.RField) bool {
	if r.FromCtor == nil || r.FromCapture {
		return false
	}
	if r.Index >= len(r.FromCtor.Args) {
		return false
	}
	con, ok := types.Resolve(r.FromCtor.Args[r.Index]).(*types.Con)
	return ok && con.Data == r.FromCtor.Data
}
