// Package gcanal implements the paper's §5.1 analysis: which call sites can
// possibly trigger a garbage collection.
//
// Collection is initiated only by allocation. The set of functions that may
// allocate (directly, or by calling something that may) is the least
// fixpoint of
//
//	S⁰ = {functions containing an allocation site}
//	Sⁱ = Sⁱ⁻¹ ∪ {f | f direct-calls some g ∈ Sⁱ⁻¹ or closure-calls anything}
//
// Closure calls are treated conservatively (the callee is unknown; a
// higher-order refinement via closure analysis is possible but the paper
// leaves it to abstract interpretation). Direct-call sites whose callee is
// outside S need no gc_word and no frame map — the caller's frame can never
// be traced during that call.
package gcanal

import "tagfree/internal/ir"

// Result reports, per function, which call sites can trigger collection.
type Result struct {
	// CanGCFunc says whether a function may trigger a collection while it
	// (or anything it calls) is running.
	CanGCFunc map[*ir.Func]bool
	// Stats aggregates gc_word elision counts.
	Stats Stats
}

// Stats summarizes the analysis across the program (experiment E5).
type Stats struct {
	// Sites is the total number of call/allocation sites.
	Sites int
	// DirectCallSites is the number of direct-call sites.
	DirectCallSites int
	// ElidedSites is the number of direct-call sites proven unable to
	// trigger collection: their gc_words can be omitted entirely.
	ElidedSites int
	// ClosCallSites is the number of closure-call sites.
	ClosCallSites int
	// ElidedClosSites is the number of closure-call sites whose every
	// 0-CFA-resolved target cannot allocate (higher-order refinement only).
	ElidedClosSites int
}

// Analyze computes the fixpoint and updates every RCall's CanGC flag in
// place.
func Analyze(p *ir.Program) *Result {
	res := &Result{CanGCFunc: make(map[*ir.Func]bool, len(p.Funcs))}

	// Seed: functions with allocation or closure-call sites.
	for _, f := range p.Funcs {
		for _, r := range ir.Rhss(f) {
			switch r.(type) {
			case *ir.RRef, *ir.RTuple, *ir.RCtor, *ir.RClosure, *ir.RCallClos:
				res.CanGCFunc[f] = true
			}
		}
	}

	// Propagate along direct call edges to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			if res.CanGCFunc[f] {
				continue
			}
			for _, r := range ir.Rhss(f) {
				if call, ok := r.(*ir.RCall); ok && res.CanGCFunc[call.Callee] {
					res.CanGCFunc[f] = true
					changed = true
					break
				}
			}
		}
	}

	// Refine call sites and collect statistics.
	for _, f := range p.Funcs {
		for _, r := range ir.Rhss(f) {
			switch r := r.(type) {
			case *ir.RCall:
				res.Stats.Sites++
				res.Stats.DirectCallSites++
				r.CanGC = res.CanGCFunc[r.Callee]
				if !r.CanGC {
					res.Stats.ElidedSites++
				}
			case *ir.RCallClos:
				res.Stats.Sites++
				res.Stats.ClosCallSites++
			case *ir.RRef, *ir.RTuple, *ir.RCtor, *ir.RClosure:
				res.Stats.Sites++
			}
		}
	}
	return res
}
