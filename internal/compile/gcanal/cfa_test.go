package gcanal

import (
	"testing"

	"tagfree/internal/compile/lower"
	"tagfree/internal/ir"
	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/types"
)

func analyzeCFA(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return irp, AnalyzeCFA(irp)
}

func TestCFAElidesPureClosureCalls(t *testing.T) {
	// apply's closure call can only reach the non-allocating lambda:
	// the 0-CFA refinement elides its gc_word.
	p, res := analyzeCFA(t, `
let apply f x = f x
let main () = apply (fun y -> y + 1) 3 + apply (fun y -> y * 2) 4
`)
	ap := fn(t, p, "apply")
	if res.CanGCFunc[ap] {
		t.Error("apply reaches only pure lambdas: cannot GC")
	}
	if res.Stats.ElidedClosSites == 0 {
		t.Errorf("pure closure-call site should be elided: %+v", res.Stats)
	}
}

func TestCFAKeepsAllocatingClosureCalls(t *testing.T) {
	p, res := analyzeCFA(t, `
let apply f x = f x
let main () = match apply (fun y -> [y]) 3 with | v :: _ -> v | [] -> 0
`)
	ap := fn(t, p, "apply")
	if !res.CanGCFunc[ap] {
		t.Error("apply reaches an allocating lambda: can GC")
	}
}

func TestCFAMixedTargetsConservative(t *testing.T) {
	// One of the two lambdas allocates: every call through the shared
	// variable stays GC-possible.
	_, res := analyzeCFA(t, `
let apply f x = f x
let main () =
  let pure = fun y -> y + 1 in
  let alloc = fun y -> (match [y] with | v :: _ -> v | [] -> 0) in
  let pick = if 1 < 2 then pure else alloc in
  apply pick 3
`)
	if res.Stats.ElidedClosSites != 0 {
		t.Errorf("mixed targets must stay conservative: %+v", res.Stats)
	}
}

func TestCFAEscapeThroughList(t *testing.T) {
	// A closure stored in a list and fetched back must be found via the
	// escaped set; since it allocates, the call keeps its gc_word.
	p, res := analyzeCFA(t, `
let rec apply_all fs x = match fs with | [] -> x | f :: r -> apply_all r (f x)
let main () =
  let fs = [(fun y -> (match [y] with | v :: _ -> v | [] -> 0))] in
  apply_all fs 5
`)
	aa := fn(t, p, "apply_all")
	if !res.CanGCFunc[aa] {
		t.Error("apply_all reaches an allocating closure through the heap")
	}
}

func TestCFAEscapePureThroughList(t *testing.T) {
	// All escaped closures are pure: even heap-fetched calls elide.
	_, res := analyzeCFA(t, `
let rec apply_all fs x = match fs with | [] -> x | f :: r -> apply_all r (f x)
let main () =
  let fs = [(fun y -> y + 1); (fun y -> y * 2)] in
  apply_all fs 5
`)
	if res.Stats.ElidedClosSites == 0 {
		t.Errorf("all heap closures are pure; elision expected: %+v", res.Stats)
	}
}

func TestCFARecursiveSelfClosure(t *testing.T) {
	// A self-capturing local recursive closure resolves to itself.
	p, res := analyzeCFA(t, `
let main () =
  let rec go n = if n = 0 then 0 else go (n - 1) in
  go 10
`)
	// go allocates nothing: its self-call should be elided, and main's
	// only allocation is go's closure itself.
	if res.Stats.ElidedClosSites == 0 {
		t.Errorf("pure recursive closure call should elide: %+v", res.Stats)
	}
	_ = p
}

func TestCFAFirstOrderAgreesWithBaseline(t *testing.T) {
	src := `
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
let mk n = [n]
let main () = fib 10 + (match mk 1 with | x :: _ -> x | [] -> 0)
`
	pBase, base := analyze(t, src)
	pCFA, cfaRes := analyzeCFA(t, src)
	for i := range pBase.Funcs {
		if base.CanGCFunc[pBase.Funcs[i]] != cfaRes.CanGCFunc[pCFA.Funcs[i]] {
			t.Errorf("first-order disagreement on %s", pBase.Funcs[i].Name)
		}
	}
	if cfaRes.Stats.ElidedSites != base.Stats.ElidedSites {
		t.Errorf("direct-site elision differs: base %d, cfa %d",
			base.Stats.ElidedSites, cfaRes.Stats.ElidedSites)
	}
}
