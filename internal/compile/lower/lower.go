// Package lower translates type-checked MinML programs into the IR.
//
// Lowering performs, in one pass:
//
//   - A-normalization: every intermediate value is bound to a typed slot.
//   - Closure conversion: lambdas are lifted to top-level IR functions that
//     receive their environment as slot 0 and reach captured values through
//     explicit field loads. Closure values are unary (curried); direct
//     calls to known top-level functions use their full arity.
//   - Pattern-match compilation to conditional trees over representation
//     tests (nullary-constant equality, boxedness, discriminant checks).
//   - Eta-expansion of function and builtin values: a known function used
//     as a value becomes a freshly lifted wrapper closure.
//   - Type-environment bookkeeping: each function records the quantified
//     type variables its types mention, and every call and closure-creation
//     site records the instantiation of its callee's type environment —
//     the data Goldberg's parameterized frame_gc_routines pass during
//     collection (§3 of the paper).
//
// A second pass (typeenv.go) computes type-variable derivation paths,
// type-rep storage layouts, and the rep-passing fixpoint.
package lower

import (
	"fmt"

	"tagfree/internal/ir"
	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/token"
	"tagfree/internal/mlang/types"
)

// Error is a lowering error (a program construct the tag-free compilation
// scheme cannot support, or an internal invariant violation).
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: lowering error: %s", e.Pos, e.Msg) }

// Lowerer drives the translation.
type Lowerer struct {
	info    *types.Info
	prog    *ir.Program
	strPool map[string]int
	nextID  int
	// top maps top-level names to bindings visible everywhere below them.
	top *scope
	// initEm accumulates the init function's body statements.
	initEm *emitter
}

// Lower translates a checked program into IR.
func Lower(prog *ast.Program, info *types.Info) (p *ir.Program, err error) {
	l := &Lowerer{
		info: info,
		prog: &ir.Program{
			Datatypes: info.Datatypes,
		},
		strPool: map[string]int{},
	}
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*Error); ok {
				p, err = nil, le
				return
			}
			panic(r)
		}
	}()

	l.lowerProgram(prog)
	if err := ComputeTypeInfo(l.prog); err != nil {
		return nil, err
	}
	return l.prog, nil
}

func (l *Lowerer) errf(pos token.Pos, format string, args ...any) {
	panic(&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lowerer) newFunc(name string) *ir.Func {
	f := &ir.Func{ID: l.nextID, Name: name}
	l.nextID++
	l.prog.Funcs = append(l.prog.Funcs, f)
	return f
}

func (l *Lowerer) internString(s string) int {
	if i, ok := l.strPool[s]; ok {
		return i
	}
	i := len(l.prog.Strings)
	l.prog.Strings = append(l.prog.Strings, s)
	l.strPool[s] = i
	return i
}

// ---------------------------------------------------------------------------
// Emitter: builds ELet/ECond chains with an explicit continuation hole.
// ---------------------------------------------------------------------------

type emitter struct {
	head ir.Expr
	hole *ir.Expr
}

func newEmitter() *emitter {
	e := &emitter{}
	e.hole = &e.head
	return e
}

func (e *emitter) let(dst *ir.Slot, rhs ir.Rhs) {
	n := &ir.ELet{Dst: dst, Rhs: rhs}
	*e.hole = n
	e.hole = &n.Cont
}

func (e *emitter) cond(dst *ir.Slot, cond ir.Atom, thn, els ir.Expr) {
	n := &ir.ECond{Cond: cond, Dst: dst, Then: thn, Else: els}
	*e.hole = n
	e.hole = &n.Cont
}

func (e *emitter) finish(last ir.Expr) ir.Expr {
	*e.hole = last
	return e.head
}

// ---------------------------------------------------------------------------
// Per-function lowering context.
// ---------------------------------------------------------------------------

type fctx struct {
	l     *Lowerer
	fn    *ir.Func
	scope *scope
	tmpN  int
}

func (c *fctx) newSlot(name string, t types.Type) *ir.Slot {
	if name == "" {
		name = fmt.Sprintf("t%d", c.tmpN)
		c.tmpN++
	}
	s := &ir.Slot{Idx: len(c.fn.Slots), Name: name, Type: t}
	c.fn.Slots = append(c.fn.Slots, s)
	return s
}

func (c *fctx) newSite() int {
	s := c.fn.NumCallSites
	c.fn.NumCallSites++
	return s
}

func (c *fctx) errf(pos token.Pos, format string, args ...any) {
	c.l.errf(pos, format, args...)
}

// typeOf returns the checker's type for an expression.
func (c *fctx) typeOf(e ast.Expr) types.Type {
	t, ok := c.l.info.ExprType[e]
	if !ok {
		c.errf(e.Pos(), "internal: no type recorded for expression")
	}
	return t
}

// ---------------------------------------------------------------------------
// Program structure.
// ---------------------------------------------------------------------------

func (l *Lowerer) lowerProgram(prog *ast.Program) {
	initFn := l.newFunc("$init")
	initFn.RetType = types.Unit
	initCtx := &fctx{l: l, fn: initFn}
	l.initEm = newEmitter()

	for _, name := range types.BuiltinNames {
		l.top = l.top.bind(name, &builtinBinding{name: name, typ: builtinType(name)})
	}

	for _, d := range prog.Decls {
		vd, ok := d.(*ast.ValDecl)
		if !ok {
			continue
		}
		l.lowerTopDecl(vd, initCtx)
	}
	initFn.Body = l.initEm.finish(&ir.ERet{A: unitAtom()})
	l.prog.InitFunc = initFn

	// main is optional (tasking programs name their entries explicitly);
	// when present it must be a function.
	if mb, ok := l.top.lookup("main"); ok {
		fb, isFn := mb.(*funcBinding)
		if !isFn {
			l.errf(token.Pos{Line: 1, Col: 1}, "main must be a function of type unit -> ...")
		}
		l.prog.MainFunc = fb.fn
	}
}

func unitAtom() ir.Atom { return &ir.AConst{Kind: ir.ConstUnit} }

// builtinType gives the type of a runtime builtin.
func builtinType(name string) types.Type {
	switch name {
	case "print_int":
		return &types.Arrow{Dom: types.Int, Cod: types.Unit}
	case "print_bool":
		return &types.Arrow{Dom: types.Bool, Cod: types.Unit}
	case "print_string":
		return &types.Arrow{Dom: types.String, Cod: types.Unit}
	case "print_newline":
		return &types.Arrow{Dom: types.Unit, Cod: types.Unit}
	}
	panic("builtinType: unknown builtin " + name)
}

// lowerTopDecl lowers one top-level let declaration.
func (l *Lowerer) lowerTopDecl(vd *ast.ValDecl, initCtx *fctx) {
	// Classify: function bindings (lambda RHS or alias-of-function RHS)
	// become IR functions; everything else becomes a global initialized in
	// the init function.
	if vd.Rec {
		for _, b := range vd.Binds {
			if _, isLam := b.Expr.(*ast.Lam); !isLam {
				l.errf(b.P, "let rec supports only function bindings")
			}
		}
		// Pre-declare (with arities) so the bodies can call each other
		// directly at full arity.
		fns := make([]*ir.Func, len(vd.Binds))
		for i, b := range vd.Binds {
			fns[i] = l.newFunc(b.Name)
			params, _ := collectParams(b.Expr.(*ast.Lam))
			fns[i].NParams = len(params)
			scheme := l.info.Scheme[b.Expr]
			l.top = l.top.bind(b.Name, &funcBinding{fn: fns[i], scheme: scheme})
		}
		for i, b := range vd.Binds {
			l.lowerTopFunc(fns[i], b.Expr.(*ast.Lam), l.info.Scheme[b.Expr])
		}
		return
	}

	for _, b := range vd.Binds {
		scheme := l.info.Scheme[b.Expr]
		switch rhs := b.Expr.(type) {
		case *ast.Lam:
			fn := l.newFunc(b.Name)
			l.lowerTopFunc(fn, rhs, scheme)
			l.top = l.top.bind(b.Name, &funcBinding{fn: fn, scheme: scheme})
			continue
		case *ast.Var:
			// Alias of a known function: record the composition so direct
			// calls through the alias stay direct.
			if tb, ok := l.top.lookup(rhs.Name); ok {
				if fb, ok := tb.(*funcBinding); ok {
					inst := l.composeAliasInst(fb, rhs)
					l.top = l.top.bind(b.Name, &funcBinding{fn: fb.fn, scheme: scheme, inst: inst})
					continue
				}
			}
		}
		// Plain global.
		g := &ir.Global{Idx: len(l.prog.Globals), Name: b.Name, Type: scheme.Body}
		initCtx.scope = l.top
		a := initCtx.lowerExpr(b.Expr, l.initEm)
		if b.Name == "_" {
			// Evaluated for effect only; no global storage needed.
			continue
		}
		l.prog.Globals = append(l.prog.Globals, g)
		l.initEm.let(initCtx.newSlot("", types.Unit), &ir.RSetGlobal{Global: g, Val: a})
		l.top = l.top.bind(b.Name, &globalBinding{global: g})
	}
}

// composeAliasInst computes, for an alias binding `let h = f`, the types
// (over h's quantified variables) at which f's type variables are
// instantiated.
func (l *Lowerer) composeAliasInst(fb *funcBinding, occ *ast.Var) []types.Type {
	occInst := l.info.Inst[occ] // f's (or previous alias's) vars, in order
	if fb.inst == nil {
		return occInst
	}
	// fb.inst maps the ultimate target's vars over fb's scheme vars; those
	// are instantiated by occInst here.
	sch := l.info.VarScheme[occ]
	out := make([]types.Type, len(fb.inst))
	for i, t := range fb.inst {
		if sch != nil && sch.Group != nil {
			out[i] = substQuant(t, sch.Group, occInst)
		} else {
			out[i] = t
		}
	}
	return out
}

// collectParams walks a direct lambda chain, returning parameters and the
// innermost body.
func collectParams(lam *ast.Lam) (params []*ast.Lam, body ast.Expr) {
	cur := lam
	for {
		params = append(params, cur)
		next, ok := cur.Body.(*ast.Lam)
		if !ok {
			return params, cur.Body
		}
		cur = next
	}
}

// lowerTopFunc lowers a top-level function binding into fn (direct-called,
// no environment slot).
func (l *Lowerer) lowerTopFunc(fn *ir.Func, lam *ast.Lam, scheme *types.Scheme) {
	params, body := collectParams(lam)
	c := &fctx{l: l, fn: fn, scope: l.top}
	for _, p := range params {
		arrow, ok := types.Resolve(l.info.ExprType[p]).(*types.Arrow)
		if !ok {
			l.errf(p.P, "internal: lambda without arrow type")
		}
		slot := c.newSlot(p.Param, arrow.Dom)
		if p.Param != "_" {
			c.scope = c.scope.bind(p.Param, &slotBinding{slot: slot})
		}
	}
	fn.NParams = len(params)
	fn.RetType = c.typeOf(body)
	if scheme != nil && scheme.Group != nil {
		fn.TypeEnv = append(fn.TypeEnv, scheme.Group.Vars...)
		fn.OwnVars = len(fn.TypeEnv)
		fn.TypeSource = ir.TypeSourceCallSite
	}
	em := newEmitter()
	res := c.lowerExpr(body, em)
	fn.Body = em.finish(&ir.ERet{A: res})
}
