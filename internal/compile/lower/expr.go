package lower

import (
	"tagfree/internal/ir"
	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/types"
)

// lowerExpr lowers an expression, emitting statements into em and returning
// the atom holding the result.
func (c *fctx) lowerExpr(e ast.Expr, em *emitter) ir.Atom {
	switch ex := e.(type) {
	case *ast.IntLit:
		return &ir.AConst{Kind: ir.ConstInt, Val: ex.Val}
	case *ast.BoolLit:
		v := int64(0)
		if ex.Val {
			v = 1
		}
		return &ir.AConst{Kind: ir.ConstBool, Val: v}
	case *ast.UnitLit:
		return unitAtom()
	case *ast.StrLit:
		return &ir.AStr{Index: c.l.internString(ex.Val)}

	case *ast.Var:
		return c.lowerVarValue(ex, em)

	case *ast.Ctor:
		return c.lowerCtor(ex, em)

	case *ast.App:
		return c.lowerApp(ex, em)

	case *ast.Lam:
		return c.liftClosureValue(ex, nil, em)

	case *ast.Let:
		return c.lowerLet(ex, em)

	case *ast.If:
		cond := c.lowerExpr(ex.Cond, em)
		dst := c.newSlot("", c.typeOf(ex))
		thenEm := newEmitter()
		thenA := c.lowerExpr(ex.Then, thenEm)
		elseEm := newEmitter()
		elseA := c.lowerExpr(ex.Else, elseEm)
		em.cond(dst, cond,
			thenEm.finish(&ir.EJoin{A: thenA}),
			elseEm.finish(&ir.EJoin{A: elseA}))
		return &ir.ASlot{Slot: dst}

	case *ast.Match:
		return c.lowerMatch(ex, em)

	case *ast.Tuple:
		elems := make([]ir.Atom, len(ex.Elems))
		elemTypes := make([]types.Type, len(ex.Elems))
		for i, el := range ex.Elems {
			elems[i] = c.lowerExpr(el, em)
			elemTypes[i] = c.typeOf(el)
		}
		dst := c.newSlot("", c.typeOf(ex))
		em.let(dst, &ir.RTuple{Elems: elems, Types: elemTypes, Site: c.newSite()})
		return &ir.ASlot{Slot: dst}

	case *ast.Prim:
		return c.lowerPrim(ex, em)

	case *ast.Seq:
		c.lowerExpr(ex.First, em)
		return c.lowerExpr(ex.Rest, em)

	case *ast.Ann:
		return c.lowerExpr(ex.Expr, em)
	}
	c.errf(e.Pos(), "internal: unhandled expression in lowering")
	return nil
}

// lowerVarValue lowers a variable occurrence in value position.
func (c *fctx) lowerVarValue(v *ast.Var, em *emitter) ir.Atom {
	b, ok := c.scope.lookup(v.Name)
	if !ok {
		c.errf(v.P, "internal: unbound variable %s after type checking", v.Name)
	}
	switch b := b.(type) {
	case *slotBinding:
		return &ir.ASlot{Slot: b.slot}
	case *captureBinding:
		dst := c.newSlot(v.Name, b.typ)
		em.let(dst, &ir.RField{
			Obj:         &ir.ASlot{Slot: c.fn.Slots[0]},
			Index:       b.index,
			FromCapture: true,
			ResultType:  b.typ,
		})
		return &ir.ASlot{Slot: dst}
	case *globalBinding:
		return &ir.AGlobal{Global: b.global}
	case *funcBinding:
		inst := c.occInst(b, v)
		return c.buildCurried(b.fn, inst, c.typeOf(v), nil, em)
	case *builtinBinding:
		return c.makeBuiltinValue(b, em)
	}
	panic("lowerVarValue: unreachable")
}

// occInst computes the instantiation of the ultimate callee's type
// variables at a variable occurrence, composing through alias bindings.
//
// Occurrences inside a recursive binding group were checked against the
// group's monomorphic recursion environment, so the checker recorded no
// instantiation for them; the callee's type variables are then the
// caller's own (one shared generalization group) and the instantiation is
// the identity. Without it, the frame GC routine of a recursive
// polymorphic call would pass no type arguments and deeper frames would
// trace their polymorphic slots as constants — a collector soundness bug.
func (c *fctx) occInst(fb *funcBinding, occ *ast.Var) []types.Type {
	occInst := c.l.info.Inst[occ]
	if occInst == nil && fb.inst == nil && fb.scheme != nil && fb.scheme.IsPoly() {
		vars := fb.scheme.Vars()
		out := make([]types.Type, len(vars))
		for i, v := range vars {
			out[i] = v
		}
		return out
	}
	if fb.inst == nil {
		return occInst
	}
	sch := c.l.info.VarScheme[occ]
	out := make([]types.Type, len(fb.inst))
	for i, t := range fb.inst {
		if sch != nil && sch.Group != nil {
			out[i] = substQuant(t, sch.Group, occInst)
		} else {
			out[i] = t
		}
	}
	return out
}

// lowerCtor lowers a constructor application.
func (c *fctx) lowerCtor(ex *ast.Ctor, em *emitter) ir.Atom {
	ci := c.l.info.ExprCtor[ex]
	inst := c.l.info.Inst[ex]
	if ci.IsNullary() {
		return &ir.ANullCtor{Ctor: ci, Inst: inst}
	}
	args := ex.Args
	if c.l.info.CtorSplat[ex] {
		args = args[0].(*ast.Tuple).Elems
	}
	atoms := make([]ir.Atom, len(args))
	for i, a := range args {
		atoms[i] = c.lowerExpr(a, em)
	}
	dst := c.newSlot("", c.typeOf(ex))
	em.let(dst, &ir.RCtor{Ctor: ci, Inst: inst, Args: atoms, Site: c.newSite()})
	return &ir.ASlot{Slot: dst}
}

// lowerPrim lowers primitive operator applications.
func (c *fctx) lowerPrim(ex *ast.Prim, em *emitter) ir.Atom {
	switch ex.Op {
	case ast.OpRef:
		init := c.lowerExpr(ex.Args[0], em)
		dst := c.newSlot("", c.typeOf(ex))
		em.let(dst, &ir.RRef{Init: init, Site: c.newSite(), Elem: c.typeOf(ex.Args[0])})
		return &ir.ASlot{Slot: dst}
	case ast.OpDeref:
		ref := c.lowerExpr(ex.Args[0], em)
		dst := c.newSlot("", c.typeOf(ex))
		em.let(dst, &ir.RDeref{Ref: ref})
		return &ir.ASlot{Slot: dst}
	case ast.OpAssign:
		ref := c.lowerExpr(ex.Args[0], em)
		val := c.lowerExpr(ex.Args[1], em)
		dst := c.newSlot("", types.Unit)
		em.let(dst, &ir.RAssign{Ref: ref, Val: val})
		return &ir.ASlot{Slot: dst}
	default:
		op := ir.PrimFromAST(ex.Op)
		atoms := make([]ir.Atom, len(ex.Args))
		for i, a := range ex.Args {
			atoms[i] = c.lowerExpr(a, em)
		}
		dst := c.newSlot("", c.typeOf(ex))
		em.let(dst, &ir.RPrim{Op: op, Args: atoms})
		return &ir.ASlot{Slot: dst}
	}
}

// ---------------------------------------------------------------------------
// Applications.
// ---------------------------------------------------------------------------

// lowerApp lowers an application spine.
func (c *fctx) lowerApp(app *ast.App, em *emitter) ir.Atom {
	// Collect the spine: innermost function and argument list, left to
	// right. spineNodes[i] is the App node after i+1 arguments.
	var spineNodes []*ast.App
	head := ast.Expr(app)
	for {
		a, ok := head.(*ast.App)
		if !ok {
			break
		}
		spineNodes = append([]*ast.App{a}, spineNodes...)
		head = a.Fn
	}
	args := make([]ast.Expr, len(spineNodes))
	for i, n := range spineNodes {
		args[i] = n.Arg
	}

	if v, ok := head.(*ast.Var); ok {
		if b, found := c.scope.lookup(v.Name); found {
			switch b := b.(type) {
			case *funcBinding:
				return c.lowerKnownCall(b, v, args, spineNodes, em)
			case *builtinBinding:
				// Builtins are unary; the type checker guarantees exactly
				// one argument can apply.
				arg := c.lowerExpr(args[0], em)
				dst := c.newSlot("", c.typeOf(spineNodes[0]))
				em.let(dst, &ir.RBuiltin{Name: b.name, Args: []ir.Atom{arg}})
				res := ir.Atom(&ir.ASlot{Slot: dst})
				return c.closApplyChain(res, spineNodes, 1, args, em)
			}
		}
	}

	// General case: evaluate the head, then apply arguments one at a time.
	fn := c.lowerExpr(head, em)
	return c.closApplyChain(fn, spineNodes, 0, args, em)
}

// lowerKnownCall lowers a call whose head is a known function.
func (c *fctx) lowerKnownCall(fb *funcBinding, v *ast.Var, args []ast.Expr, spineNodes []*ast.App, em *emitter) ir.Atom {
	arity := fb.fn.NParams
	inst := c.occInst(fb, v)
	if len(args) >= arity {
		atoms := make([]ir.Atom, arity)
		for i := 0; i < arity; i++ {
			atoms[i] = c.lowerExpr(args[i], em)
		}
		dst := c.newSlot("", c.typeOf(spineNodes[arity-1]))
		em.let(dst, &ir.RCall{
			Callee: fb.fn,
			Args:   atoms,
			Inst:   inst,
			Site:   c.newSite(),
			CanGC:  true,
		})
		res := ir.Atom(&ir.ASlot{Slot: dst})
		return c.closApplyChain(res, spineNodes, arity, args, em)
	}

	// Partial application: evaluate the given arguments and build a curried
	// closure expecting the rest.
	atoms := make([]ir.Atom, len(args))
	for i, a := range args {
		atoms[i] = c.lowerExpr(a, em)
	}
	return c.buildCurried(fb.fn, inst, c.typeOf(spineNodes[len(args)-1]), atoms, em)
}

// closApplyChain applies the remaining spine arguments (from index k) to a
// closure value one at a time.
func (c *fctx) closApplyChain(fn ir.Atom, spineNodes []*ast.App, k int, args []ast.Expr, em *emitter) ir.Atom {
	cur := fn
	for i := k; i < len(args); i++ {
		arg := c.lowerExpr(args[i], em)
		var siteType types.Type
		if i == 0 {
			siteType = c.typeOf(spineNodes[0].Fn)
		} else {
			siteType = c.typeOf(spineNodes[i-1])
		}
		dst := c.newSlot("", c.typeOf(spineNodes[i]))
		em.let(dst, &ir.RCallClos{
			Clos:     cur,
			Arg:      arg,
			Site:     c.newSite(),
			CanGC:    true,
			RetType:  c.typeOf(spineNodes[i]),
			SiteType: siteType,
		})
		cur = &ir.ASlot{Slot: dst}
	}
	return cur
}

// ---------------------------------------------------------------------------
// Let bindings.
// ---------------------------------------------------------------------------

func (c *fctx) lowerLet(ex *ast.Let, em *emitter) ir.Atom {
	outer := c.scope
	if ex.Rec {
		c.lowerLocalRec(ex.Binds, em)
	} else {
		for i := range ex.Binds {
			b := &ex.Binds[i]
			scheme := c.l.info.Scheme[b.Expr]
			switch rhs := b.Expr.(type) {
			case *ast.Lam:
				atom := c.liftClosureValue(rhs, scheme, em)
				slot := c.newSlot(b.Name, scheme.Body)
				em.let(slot, &ir.RAtom{A: atom})
				if b.Name != "_" {
					c.scope = c.scope.bind(b.Name, &slotBinding{slot: slot})
				}
				continue
			case *ast.Var:
				// Local alias of a known function stays directly callable.
				if tb, ok := c.scope.lookup(rhs.Name); ok {
					if fb, ok := tb.(*funcBinding); ok {
						inst := c.occInst(fb, rhs)
						if b.Name != "_" {
							c.scope = c.scope.bind(b.Name, &funcBinding{fn: fb.fn, scheme: scheme, inst: inst})
						}
						continue
					}
				}
			}
			atom := c.lowerExpr(b.Expr, em)
			slot := c.newSlot(b.Name, scheme.Body)
			em.let(slot, &ir.RAtom{A: atom})
			if b.Name != "_" {
				c.scope = c.scope.bind(b.Name, &slotBinding{slot: slot})
			}
		}
	}
	res := c.lowerExpr(ex.Body, em)
	c.scope = outer
	// Rebind nothing: result atom may reference inner slots, which remain
	// valid (scoping is purely a naming construct; slots live in the frame).
	c.scope = outer
	return res
}

// lowerLocalRec lowers a local `let rec` group of closures with
// self-capture and forward-reference patching.
func (c *fctx) lowerLocalRec(binds []ast.Bind, em *emitter) {
	// Every member must be a lambda.
	slots := make([]*ir.Slot, len(binds))
	for i := range binds {
		b := &binds[i]
		if _, ok := b.Expr.(*ast.Lam); !ok {
			c.errf(b.P, "let rec supports only function bindings")
		}
		scheme := c.l.info.Scheme[b.Expr]
		slots[i] = c.newSlot(b.Name, scheme.Body)
	}
	// Bind all names before lowering any body so captures resolve to the
	// group's slots.
	for i := range binds {
		if binds[i].Name != "_" {
			c.scope = c.scope.bind(binds[i].Name, &slotBinding{slot: slots[i]})
		}
	}
	type patch struct {
		closSlot *ir.Slot
		index    int
		srcSlot  *ir.Slot
		target   *ir.Func
	}
	var patches []patch
	defined := map[*ir.Slot]bool{}
	for i := range binds {
		b := &binds[i]
		scheme := c.l.info.Scheme[b.Expr]
		var memberPatches []*patch
		atom, target := c.liftClosure(b.Expr.(*ast.Lam), scheme, em, func(capSlot *ir.Slot, capIdx int) (ir.Atom, bool) {
			// A capture of this group's own slots needs special handling.
			if capSlot == slots[i] {
				return nil, true // self capture: creation site stores own address
			}
			for j, s := range slots {
				if capSlot == s && !defined[s] {
					p := &patch{closSlot: slots[i], index: capIdx, srcSlot: slots[j]}
					memberPatches = append(memberPatches, p)
					return &ir.AConst{Kind: ir.ConstInt, Val: 0}, false // placeholder null
				}
			}
			return nil, false // ordinary capture
		})
		for _, p := range memberPatches {
			p.target = target
			patches = append(patches, *p)
		}
		em.let(slots[i], &ir.RAtom{A: atom})
		defined[slots[i]] = true
	}
	for _, p := range patches {
		u := c.newSlot("", types.Unit)
		em.let(u, &ir.RPatchCapture{
			Clos:   &ir.ASlot{Slot: p.closSlot},
			Index:  p.index,
			Val:    &ir.ASlot{Slot: p.srcSlot},
			Target: p.target,
		})
	}
}
