package lower

import (
	"tagfree/internal/ir"
	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/types"
)

// binding is what a name resolves to during lowering.
type binding interface{ binding() }

// slotBinding: a local slot of the current function.
type slotBinding struct{ slot *ir.Slot }

// captureBinding: a capture of the current function (index into Captures).
type captureBinding struct {
	index int
	typ   types.Type
}

// globalBinding: a top-level value.
type globalBinding struct{ global *ir.Global }

// funcBinding: a known function, callable directly. inst, when non-nil,
// composes an alias instantiation: entry i gives the type (over the alias's
// own quantified variables) at which the target's i-th type variable is
// instantiated.
type funcBinding struct {
	fn     *ir.Func
	scheme *types.Scheme
	inst   []types.Type
}

// builtinBinding: a runtime builtin (print_int etc.).
type builtinBinding struct {
	name string
	typ  types.Type // dom -> cod
}

func (*slotBinding) binding()    {}
func (*captureBinding) binding() {}
func (*globalBinding) binding()  {}
func (*funcBinding) binding()    {}
func (*builtinBinding) binding() {}

// scope is a persistent chain of name bindings.
type scope struct {
	parent *scope
	name   string
	b      binding
}

func (s *scope) bind(name string, b binding) *scope {
	return &scope{parent: s, name: name, b: b}
}

func (s *scope) lookup(name string) (binding, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.b, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Free variables.
// ---------------------------------------------------------------------------

// freeVars returns the free variable names of an expression, in first-use
// order (deterministic so closure layouts are stable).
func freeVars(e ast.Expr) []string {
	seen := map[string]bool{}
	var out []string
	var walkP func(p ast.Pattern, bound map[string]bool)
	walkP = func(p ast.Pattern, bound map[string]bool) {
		switch p := p.(type) {
		case *ast.PVar:
			bound[p.Name] = true
		case *ast.PTuple:
			for _, el := range p.Elems {
				walkP(el, bound)
			}
		case *ast.PCtor:
			for _, a := range p.Args {
				walkP(a, bound)
			}
		}
	}
	var walk func(e ast.Expr, bound map[string]bool)
	add := func(name string, bound map[string]bool) {
		if !bound[name] && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	extend := func(bound map[string]bool, names ...string) map[string]bool {
		nb := make(map[string]bool, len(bound)+len(names))
		for k := range bound {
			nb[k] = true
		}
		for _, n := range names {
			nb[n] = true
		}
		return nb
	}
	walk = func(e ast.Expr, bound map[string]bool) {
		switch e := e.(type) {
		case *ast.IntLit, *ast.BoolLit, *ast.UnitLit, *ast.StrLit:
		case *ast.Var:
			add(e.Name, bound)
		case *ast.Ctor:
			for _, a := range e.Args {
				walk(a, bound)
			}
		case *ast.App:
			walk(e.Fn, bound)
			walk(e.Arg, bound)
		case *ast.Lam:
			walk(e.Body, extend(bound, e.Param))
		case *ast.Let:
			inner := bound
			if e.Rec {
				names := make([]string, len(e.Binds))
				for i, b := range e.Binds {
					names[i] = b.Name
				}
				inner = extend(bound, names...)
				for _, b := range e.Binds {
					walk(b.Expr, inner)
				}
			} else {
				for _, b := range e.Binds {
					walk(b.Expr, bound)
				}
				names := make([]string, len(e.Binds))
				for i, b := range e.Binds {
					names[i] = b.Name
				}
				inner = extend(bound, names...)
			}
			walk(e.Body, inner)
		case *ast.If:
			walk(e.Cond, bound)
			walk(e.Then, bound)
			walk(e.Else, bound)
		case *ast.Match:
			walk(e.Scrut, bound)
			for _, arm := range e.Arms {
				armBound := extend(bound)
				walkP(arm.Pat, armBound)
				walk(arm.Body, armBound)
			}
		case *ast.Tuple:
			for _, el := range e.Elems {
				walk(el, bound)
			}
		case *ast.Prim:
			for _, a := range e.Args {
				walk(a, bound)
			}
		case *ast.Seq:
			walk(e.First, bound)
			walk(e.Rest, bound)
		case *ast.Ann:
			walk(e.Expr, bound)
		}
	}
	walk(e, map[string]bool{})
	return out
}

// ---------------------------------------------------------------------------
// Type environment collection.
// ---------------------------------------------------------------------------

// quantVarsIn collects the owned quantified variables occurring in a type,
// appending new ones to the accumulator in occurrence order.
func quantVarsIn(t types.Type, acc []*types.Var) []*types.Var {
	switch t := types.Resolve(t).(type) {
	case *types.Var:
		if t.Quant != nil && t.Quant.Owner != nil {
			for _, v := range acc {
				if v == t {
					return acc
				}
			}
			return append(acc, t)
		}
	case *types.Arrow:
		acc = quantVarsIn(t.Dom, acc)
		acc = quantVarsIn(t.Cod, acc)
	case *types.TupleT:
		for _, e := range t.Elems {
			acc = quantVarsIn(e, acc)
		}
	case *types.Con:
		for _, a := range t.Args {
			acc = quantVarsIn(a, acc)
		}
	}
	return acc
}

// substQuant replaces quantified variables owned by group with the
// corresponding entries of args.
func substQuant(t types.Type, group *types.GenGroup, args []types.Type) types.Type {
	switch t := types.Resolve(t).(type) {
	case *types.Base:
		return t
	case *types.Var:
		if t.Quant != nil && t.Quant.Owner == group {
			return args[t.Quant.Index]
		}
		return t
	case *types.Arrow:
		return &types.Arrow{
			Dom: substQuant(t.Dom, group, args),
			Cod: substQuant(t.Cod, group, args),
		}
	case *types.TupleT:
		elems := make([]types.Type, len(t.Elems))
		for i, e := range t.Elems {
			elems[i] = substQuant(e, group, args)
		}
		return &types.TupleT{Elems: elems}
	case *types.Con:
		as := make([]types.Type, len(t.Args))
		for i, a := range t.Args {
			as[i] = substQuant(a, group, args)
		}
		return &types.Con{Name: t.Name, Args: as, Data: t.Data}
	}
	panic("substQuant: unreachable")
}
