package lower

import (
	"fmt"

	"tagfree/internal/ir"
	"tagfree/internal/mlang/types"
)

// ComputeTypeInfo is the second lowering pass. For every function it:
//
//  1. completes the type environment: beyond the function's own quantified
//     variables, any enclosing function's variables that appear in its slot,
//     capture or instantiation types are appended as environment variables;
//  2. computes derivation paths: for closure-called functions, each type
//     environment entry that occurs in the function's own arrow type can be
//     recovered at collection time from the call site's structured
//     type_gc_routine package (the paper's Figures 3 and 4); entries that
//     cannot (phantom variables) must be stored as type-rep words in the
//     closure at creation;
//  3. runs the rep fixpoint: a function needs a variable's type-rep at run
//     time when it creates a closure that stores that variable, or passes it
//     to a rep-needing direct callee. Top-level (direct-called) functions
//     receive needed reps as hidden trailing arguments; closures store them
//     in their environment. A *local polymorphic* function that would need a
//     rep for its own per-call type variable cannot obtain one without
//     universal runtime type passing — the completeness gap in the paper's
//     stack-only protocol — and is rejected with a diagnostic.
func ComputeTypeInfo(p *ir.Program) error {
	inEnv := make([]map[*types.Var]int, len(p.Funcs))

	// Pass A: complete TypeEnv top-down (parents have smaller IDs).
	for _, f := range p.Funcs {
		own := map[*types.Var]bool{}
		for _, v := range f.TypeEnv {
			own[v] = true
		}
		var parentEnv map[*types.Var]int
		if f.Parent != nil {
			parentEnv = inEnv[f.Parent.ID]
		}
		var scanned []*types.Var
		scan := func(t types.Type) {
			if t != nil {
				scanned = quantVarsIn(t, scanned)
			}
		}
		for _, s := range f.Slots {
			scan(s.Type)
		}
		for _, c := range f.Captures {
			scan(c.Type)
		}
		scan(f.RetType)
		for _, r := range ir.Rhss(f) {
			switch r := r.(type) {
			case *ir.RCall:
				for _, t := range r.Inst {
					scan(t)
				}
			case *ir.RCtor:
				for _, t := range r.Inst {
					scan(t)
				}
			case *ir.RCallClos:
				scan(r.SiteType)
			case *ir.RTuple:
				for _, t := range r.Types {
					scan(t)
				}
			}
			for _, a := range ir.RhsAtoms(r) {
				if nc, ok := a.(*ir.ANullCtor); ok {
					for _, t := range nc.Inst {
						scan(t)
					}
				}
			}
		}
		for _, v := range scanned {
			if own[v] {
				continue
			}
			if parentEnv != nil {
				if _, visible := parentEnv[v]; visible {
					f.TypeEnv = append(f.TypeEnv, v)
					own[v] = true
					continue
				}
			}
			// Not visible through the lexical chain: the variable belongs to
			// an inner polymorphic binding's scheme. Values typed by it are
			// parametric (they cannot carry pointers reachable only through
			// such positions), so the collector treats those positions as
			// opaque; nothing to record.
		}
		env := make(map[*types.Var]int, len(f.TypeEnv))
		for i, v := range f.TypeEnv {
			env[v] = i
		}
		inEnv[f.ID] = env

		if len(f.TypeEnv) == 0 {
			f.TypeSource = ir.TypeSourceNone
		} else if f.HasEnv {
			f.TypeSource = ir.TypeSourceEnv
		} else {
			f.TypeSource = ir.TypeSourceCallSite
		}
	}

	// Pass B: derivation paths for closure-called functions.
	for _, f := range p.Funcs {
		if !f.HasEnv || len(f.TypeEnv) == 0 {
			continue
		}
		arrow := &types.Arrow{Dom: f.Slots[1].Type, Cod: f.RetType}
		f.TypeDerivs = make([]ir.TypePath, len(f.TypeEnv))
		for i, v := range f.TypeEnv {
			f.TypeDerivs[i] = ir.FindPath(arrow, v)
			if i < f.OwnVars && f.TypeDerivs[i] == nil {
				return fmt.Errorf(
					"internal: own type variable of %s does not occur in its arrow type", f.Name)
			}
		}
	}

	// Pass C: the rep fixpoint.
	runtimeNeeded := make([]map[int]bool, len(p.Funcs))
	for _, f := range p.Funcs {
		runtimeNeeded[f.ID] = map[int]bool{}
	}
	stored := func(g *ir.Func, i int) bool {
		if !g.HasEnv {
			return false
		}
		if g.TypeDerivs != nil && g.TypeDerivs[i] == nil {
			return true
		}
		return runtimeNeeded[g.ID][i]
	}
	need := func(f *ir.Func, v *types.Var) bool {
		idx := f.TypeEnvIndex(v)
		if idx < 0 {
			// Opaque (inner-poly) variable: its rep is the constant opaque
			// rep, available at compile time.
			return false
		}
		if !runtimeNeeded[f.ID][idx] {
			runtimeNeeded[f.ID][idx] = true
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			for _, r := range ir.Rhss(f) {
				switch r := r.(type) {
				case *ir.RClosure:
					g := r.Target
					for i, v := range g.TypeEnv {
						if !stored(g, i) {
							continue
						}
						// The creation site materializes a rep for the very
						// variable (closure instantiation is the identity on
						// enclosing variables).
						if need(f, v) {
							changed = true
						}
					}
				case *ir.RCall:
					g := r.Callee
					for i := range g.TypeEnv {
						if !runtimeNeeded[g.ID][i] {
							continue
						}
						var t types.Type
						if i < len(r.Inst) {
							t = r.Inst[i]
						}
						if t == nil {
							continue
						}
						for _, v := range quantVarsIn(t, nil) {
							if need(f, v) {
								changed = true
							}
						}
					}
				}
			}
		}
	}

	// Finalize per-function rep layouts and detect the unobtainable case.
	for _, f := range p.Funcs {
		f.RuntimeNeeded = make([]bool, len(f.TypeEnv))
		f.RepWord = make([]int, len(f.TypeEnv))
		for i := range f.RepWord {
			f.RepWord[i] = -1
		}
		rn := runtimeNeeded[f.ID]
		for i := range f.TypeEnv {
			f.RuntimeNeeded[i] = rn[i]
		}
		if f.HasEnv {
			n := 0
			for i := range f.TypeEnv {
				if stored(f, i) {
					if i < f.OwnVars {
						return fmt.Errorf(
							"function %s: tag-free GC cannot supply a runtime type representation "+
								"for its own type variable (a local polymorphic function builds a "+
								"closure whose layout depends on a per-call type); bind the function "+
								"at top level or monomorphise the use — see DESIGN.md on the "+
								"completeness gap of stack-only type reconstruction", f.Name)
					}
					f.RepWord[i] = n
					n++
				}
			}
			f.NumRepWords = n
		} else {
			for i := range f.TypeEnv {
				if rn[i] {
					f.NeedsReps = true
				}
			}
		}
	}
	return nil
}
