package lower

import (
	"tagfree/internal/ir"
	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/types"
)

// lowerMatch compiles pattern matching into a chain of conditional arm
// tests. Each arm computes a boolean "matched" value (with short-circuit
// conditionals guarding representation-dependent field loads), then either
// binds the pattern variables and runs the arm body, or falls through to
// the next arm. A fall-through past the last arm is a runtime match
// failure.
//
// Discrimination uses only language-level representation facts — nullary
// constructor constants, boxedness, and discriminant words on datatypes
// with several boxed constructors — exactly the variant-record treatment of
// §2.3 of the paper: the discriminant is program data, not a GC tag.
func (c *fctx) lowerMatch(m *ast.Match, em *emitter) ir.Atom {
	scrut := c.lowerExpr(m.Scrut, em)
	dst := c.newSlot("", c.typeOf(m))

	// The first arm's test code is emitted directly into em; its ECond
	// carries the match's destination and continuation. Subsequent arms
	// live in the Else trees with nil Dst/Cont (inheriting the join).
	var build func(i int) ir.Expr
	build = func(i int) ir.Expr {
		if i >= len(m.Arms) {
			return &ir.EMatchFail{}
		}
		arm := m.Arms[i]
		armEm := newEmitter()
		matched := c.genTest(arm.Pat, scrut, armEm)

		bodyEm := newEmitter()
		saved := c.scope
		c.genBind(arm.Pat, scrut, bodyEm)
		bodyA := c.lowerExpr(arm.Body, bodyEm)
		c.scope = saved
		bodyTree := bodyEm.finish(&ir.EJoin{A: bodyA})

		if matched == nil {
			// Irrefutable arm: no test needed; later arms are dead.
			return armEm.finish(seqInto(bodyTree))
		}
		return armEm.finish(&ir.ECond{
			Cond: matched,
			Then: bodyTree,
			Else: build(i + 1),
		})
	}

	first := m.Arms[0]
	armEm := em // first arm's tests run unconditionally in the main stream
	matched := c.genTest(first.Pat, scrut, armEm)

	bodyEm := newEmitter()
	saved := c.scope
	c.genBind(first.Pat, scrut, bodyEm)
	bodyA := c.lowerExpr(first.Body, bodyEm)
	c.scope = saved
	bodyTree := bodyEm.finish(&ir.EJoin{A: bodyA})

	if matched == nil {
		// Single irrefutable arm: splice the body inline by binding the
		// join value through a conditional on true.
		matched = &ir.AConst{Kind: ir.ConstBool, Val: 1}
	}
	em.cond(dst, matched, bodyTree, build(1))
	return &ir.ASlot{Slot: dst}
}

// seqInto converts a tree ending in EJoin into the same tree (placeholder
// for potential future inline splicing; kept trivial for clarity).
func seqInto(e ir.Expr) ir.Expr { return e }

// ---------------------------------------------------------------------------
// Match tests.
// ---------------------------------------------------------------------------

// genTest emits code computing whether pat matches v and returns the bool
// atom, or nil when the pattern is irrefutable.
func (c *fctx) genTest(pat ast.Pattern, v ir.Atom, em *emitter) ir.Atom {
	switch p := pat.(type) {
	case *ast.PWild, *ast.PVar, *ast.PUnit:
		return nil

	case *ast.PInt:
		return c.emitPrimBool(ir.PEq, v, &ir.AConst{Kind: ir.ConstInt, Val: p.Val}, em)

	case *ast.PBool:
		want := int64(0)
		if p.Val {
			want = 1
		}
		return c.emitPrimBool(ir.PEq, v, &ir.AConst{Kind: ir.ConstBool, Val: want}, em)

	case *ast.PTuple:
		// Tuples always match structurally; only the element tests matter.
		elemTypes := c.tupleElemTypes(pat)
		var acc ir.Atom
		for i, el := range p.Elems {
			if patternTestFree(el) {
				continue // no test to run: don't load the field here
			}
			i, el := i, el
			acc = c.andLazy(acc, em, func(em2 *emitter) ir.Atom {
				f := c.loadField(v, i, nil, elemTypes[i], em2)
				return c.genTest(el, f, em2)
			})
		}
		return acc

	case *ast.PCtor:
		return c.genCtorTest(p, v, em)
	}
	panic("genTest: unreachable")
}

func (c *fctx) tupleElemTypes(pat ast.Pattern) []types.Type {
	t, ok := c.l.info.PatType[pat]
	if !ok {
		panic("genTest: tuple pattern without recorded type")
	}
	tup, ok := types.Resolve(t).(*types.TupleT)
	if !ok {
		panic("genTest: tuple pattern with non-tuple type")
	}
	return tup.Elems
}

func (c *fctx) genCtorTest(p *ast.PCtor, v ir.Atom, em *emitter) ir.Atom {
	ci := c.l.info.PatCtor[p]
	data := ci.Data
	inst := c.l.info.PatInst[p]

	if ci.IsNullary() {
		return c.emitPrimBool(ir.PEq, v, &ir.ANullCtor{Ctor: ci, Inst: inst}, em)
	}

	hasNullary := len(data.Ctors) > data.BoxedCtors
	fieldTypes := ci.Instantiate(inst)
	args := p.Args
	if c.l.info.PatSplat[p] {
		args = args[0].(*ast.PTuple).Elems
	}

	var acc ir.Atom
	if hasNullary {
		acc = c.emitPrimBool(ir.PIsBoxed, v, nil, em)
	}
	if data.BoxedCtors > 1 {
		acc = c.andLazy(acc, em, func(em2 *emitter) ir.Atom {
			return c.emitPrimBool(ir.PTagIs, v, &ir.AConst{Kind: ir.ConstInt, Val: int64(ci.Tag)}, em2)
		})
	}
	for i, a := range args {
		if patternTestFree(a) {
			continue // binding loads happen in genBind; skip the dead load
		}
		i, a := i, a
		acc = c.andLazy(acc, em, func(em2 *emitter) ir.Atom {
			f := c.loadField(v, i, ci, fieldTypes[i], em2)
			return c.genTest(a, f, em2)
		})
	}
	return acc
}

// patternTestFree reports whether genTest on the pattern emits no test at
// all (wildcards, variables, unit, and tuples thereof). Field loads feeding
// such subpatterns would be dead code — and, once liveness-guided tracing
// can prune provably dead element fields, a dead load of a pruned word
// would falsely trip the poison-debug trap — so callers skip them.
func patternTestFree(p ast.Pattern) bool {
	switch p := p.(type) {
	case *ast.PWild, *ast.PVar, *ast.PUnit:
		return true
	case *ast.PTuple:
		for _, e := range p.Elems {
			if !patternTestFree(e) {
				return false
			}
		}
		return true
	}
	return false
}

// emitPrimBool emits a boolean-producing primitive over one or two atoms.
func (c *fctx) emitPrimBool(op ir.PrimOp, a, b ir.Atom, em *emitter) ir.Atom {
	args := []ir.Atom{a}
	if b != nil {
		args = append(args, b)
	}
	dst := c.newSlot("", types.Bool)
	em.let(dst, &ir.RPrim{Op: op, Args: args})
	return &ir.ASlot{Slot: dst}
}

// loadField emits a guarded or unguarded field load.
func (c *fctx) loadField(obj ir.Atom, index int, fromCtor *types.CtorInfo, t types.Type, em *emitter) ir.Atom {
	dst := c.newSlot("", t)
	em.let(dst, &ir.RField{Obj: obj, Index: index, FromCtor: fromCtor, ResultType: t})
	return &ir.ASlot{Slot: dst}
}

// andLazy combines an accumulated test with a lazily computed one, emitting
// the second only when the first succeeded (so representation-dependent
// loads stay guarded). A nil acc means "always true so far".
func (c *fctx) andLazy(acc ir.Atom, em *emitter, thunk func(*emitter) ir.Atom) ir.Atom {
	if acc == nil {
		return thunk(em)
	}
	thenEm := newEmitter()
	sub := thunk(thenEm)
	if sub == nil {
		sub = &ir.AConst{Kind: ir.ConstBool, Val: 1}
	}
	dst := c.newSlot("", types.Bool)
	em.cond(dst, acc,
		thenEm.finish(&ir.EJoin{A: sub}),
		&ir.EJoin{A: &ir.AConst{Kind: ir.ConstBool, Val: 0}})
	return &ir.ASlot{Slot: dst}
}

// ---------------------------------------------------------------------------
// Match bindings.
// ---------------------------------------------------------------------------

// genBind emits the field loads and slot bindings for a matched pattern and
// extends the current scope.
func (c *fctx) genBind(pat ast.Pattern, v ir.Atom, em *emitter) {
	switch p := pat.(type) {
	case *ast.PWild, *ast.PInt, *ast.PBool, *ast.PUnit:

	case *ast.PVar:
		t := c.l.info.PatType[pat]
		slot := c.newSlot(p.Name, t)
		em.let(slot, &ir.RAtom{A: v})
		c.scope = c.scope.bind(p.Name, &slotBinding{slot: slot})

	case *ast.PTuple:
		elemTypes := c.tupleElemTypes(pat)
		for i, el := range p.Elems {
			if !patternBinds(el) {
				continue
			}
			f := c.loadField(v, i, nil, elemTypes[i], em)
			c.genBind(el, f, em)
		}

	case *ast.PCtor:
		ci := c.l.info.PatCtor[p]
		if ci.IsNullary() {
			return
		}
		inst := c.l.info.PatInst[p]
		fieldTypes := ci.Instantiate(inst)
		args := p.Args
		if c.l.info.PatSplat[p] {
			args = args[0].(*ast.PTuple).Elems
		}
		for i, a := range args {
			if !patternBinds(a) {
				continue
			}
			f := c.loadField(v, i, ci, fieldTypes[i], em)
			c.genBind(a, f, em)
		}
	}
}

// patternBinds reports whether a pattern binds any variables (loads for
// non-binding subpatterns are skipped during the bind phase).
func patternBinds(p ast.Pattern) bool {
	switch p := p.(type) {
	case *ast.PVar:
		return true
	case *ast.PTuple:
		for _, e := range p.Elems {
			if patternBinds(e) {
				return true
			}
		}
	case *ast.PCtor:
		for _, a := range p.Args {
			if patternBinds(a) {
				return true
			}
		}
	}
	return false
}
