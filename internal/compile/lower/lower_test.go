package lower

import (
	"strings"
	"testing"

	"tagfree/internal/ir"
	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/types"
)

func lowerSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Lower(prog, info)
	if err != nil {
		t.Fatalf("lower: %v\nsource:\n%s", err, src)
	}
	return p
}

func findFunc(t *testing.T, p *ir.Program, name string) *ir.Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %s; have %v", name, funcNames(p))
	return nil
}

func funcNames(p *ir.Program) []string {
	out := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		out[i] = f.Name
	}
	return out
}

func TestLowerSimple(t *testing.T) {
	p := lowerSrc(t, `
let add x y = x + y
let main () = add 1 2
`)
	add := findFunc(t, p, "add")
	if add.NParams != 2 || add.HasEnv {
		t.Fatalf("add: NParams=%d HasEnv=%v", add.NParams, add.HasEnv)
	}
	main := findFunc(t, p, "main")
	var call *ir.RCall
	for _, r := range ir.Rhss(main) {
		if rc, ok := r.(*ir.RCall); ok {
			call = rc
		}
	}
	if call == nil || call.Callee != add {
		t.Fatalf("main should direct-call add; body:\n%s", main.String())
	}
}

func TestLowerPolymorphicCallInst(t *testing.T) {
	p := lowerSrc(t, `
let id x = x
let main () = id 7
`)
	id := findFunc(t, p, "id")
	if len(id.TypeEnv) != 1 || id.TypeSource != ir.TypeSourceCallSite {
		t.Fatalf("id TypeEnv=%d source=%v", len(id.TypeEnv), id.TypeSource)
	}
	main := findFunc(t, p, "main")
	for _, r := range ir.Rhss(main) {
		if rc, ok := r.(*ir.RCall); ok && rc.Callee == id {
			if len(rc.Inst) != 1 {
				t.Fatalf("call to id should record 1 instantiation, got %d", len(rc.Inst))
			}
			if b, ok := types.Resolve(rc.Inst[0]).(*types.Base); !ok || b.Kind != types.IntK {
				t.Fatalf("id instantiated at %s", types.TypeString(rc.Inst[0]))
			}
			return
		}
	}
	t.Fatal("no direct call to id found")
}

func TestLowerClosureCapture(t *testing.T) {
	p := lowerSrc(t, `
let main () =
  let k = 10 in
  let addk = fun x -> x + k in
  addk 5
`)
	var clo *ir.Func
	for _, f := range p.Funcs {
		if f.HasEnv {
			clo = f
		}
	}
	if clo == nil {
		t.Fatal("no lifted closure")
	}
	if len(clo.Captures) != 1 || clo.Captures[0].Name != "k" {
		t.Fatalf("closure captures: %+v", clo.Captures)
	}
	// The body must load the capture through the environment slot.
	foundLoad := false
	for _, r := range ir.Rhss(clo) {
		if f, ok := r.(*ir.RField); ok && f.FromCapture {
			foundLoad = true
		}
	}
	if !foundLoad {
		t.Fatalf("closure body should load captures:\n%s", clo.String())
	}
}

func TestLowerPartialApplication(t *testing.T) {
	p := lowerSrc(t, `
let add x y = x + y
let main () =
  let inc = add 1 in
  inc 41
`)
	main := findFunc(t, p, "main")
	var mk *ir.RClosure
	var callc *ir.RCallClos
	for _, r := range ir.Rhss(main) {
		switch r := r.(type) {
		case *ir.RClosure:
			mk = r
		case *ir.RCallClos:
			callc = r
		}
	}
	if mk == nil {
		t.Fatalf("partial application should create a closure:\n%s", main.String())
	}
	if len(mk.Captures) != 1 {
		t.Fatalf("curried closure should capture the supplied argument, got %d", len(mk.Captures))
	}
	if callc == nil {
		t.Fatal("inc 41 should be a closure call")
	}
	// The wrapper's body direct-calls add with both arguments.
	w := mk.Target
	for _, r := range ir.Rhss(w) {
		if rc, ok := r.(*ir.RCall); ok {
			if rc.Callee.Name != "add" || len(rc.Args) != 2 {
				t.Fatalf("wrapper should call add with 2 args: %s", ir.RhsString(rc))
			}
			return
		}
	}
	t.Fatalf("wrapper body has no direct call:\n%s", w.String())
}

func TestLowerFunctionAsValue(t *testing.T) {
	p := lowerSrc(t, `
let double x = x * 2
let rec map f xs =
  match xs with
  | [] -> []
  | x :: rest -> f x :: map f rest
let main () = map double [1; 2; 3]
`)
	main := findFunc(t, p, "main")
	foundClosure := false
	for _, r := range ir.Rhss(main) {
		if rc, ok := r.(*ir.RClosure); ok && strings.Contains(rc.Target.Name, "double") {
			foundClosure = true
		}
	}
	if !foundClosure {
		t.Fatalf("double as a value should become a wrapper closure:\n%s", main.String())
	}
	// map's body calls f via the closure protocol.
	mp := findFunc(t, p, "map")
	foundCallc := false
	for _, r := range ir.Rhss(mp) {
		if _, ok := r.(*ir.RCallClos); ok {
			foundCallc = true
		}
	}
	if !foundCallc {
		t.Fatalf("map should closure-call its argument:\n%s", mp.String())
	}
}

func TestLowerMatchCompilation(t *testing.T) {
	p := lowerSrc(t, `
type shape = Point | Circle of int | Rect of int * int
let area s =
  match s with
  | Point -> 0
  | Circle r -> 3 * r * r
  | Rect (w, h) -> w * h
let main () = area (Rect (3, 4))
`)
	area := findFunc(t, p, "area")
	var sawIsBoxed, sawTagIs bool
	for _, r := range ir.Rhss(area) {
		if pr, ok := r.(*ir.RPrim); ok {
			switch pr.Op {
			case ir.PIsBoxed:
				sawIsBoxed = true
			case ir.PTagIs:
				sawTagIs = true
			}
		}
	}
	if !sawIsBoxed || !sawTagIs {
		t.Fatalf("shape match needs boxedness and tag tests (boxed=%v tag=%v):\n%s",
			sawIsBoxed, sawTagIs, area.String())
	}
}

func TestLowerTaglessSumNoTagTest(t *testing.T) {
	// list has a single boxed constructor: no discriminant test needed.
	p := lowerSrc(t, `
let rec len xs = match xs with | [] -> 0 | _ :: r -> 1 + len r
let main () = len [1; 2]
`)
	ln := findFunc(t, p, "len")
	for _, r := range ir.Rhss(ln) {
		if pr, ok := r.(*ir.RPrim); ok && pr.Op == ir.PTagIs {
			t.Fatalf("list match must not read a discriminant:\n%s", ln.String())
		}
	}
}

func TestLowerLocalRecSelfCapture(t *testing.T) {
	p := lowerSrc(t, `
let main () =
  let rec go n = if n = 0 then 0 else go (n - 1) in
  go 10
`)
	var rec *ir.RClosure
	for _, f := range p.Funcs {
		for _, r := range ir.Rhss(f) {
			if rc, ok := r.(*ir.RClosure); ok && rc.SelfCapture >= 0 {
				rec = rc
			}
		}
	}
	if rec == nil {
		t.Fatal("recursive local closure should use a self capture")
	}
}

func TestLowerMutualLocalRecPatches(t *testing.T) {
	p := lowerSrc(t, `
let main () =
  let rec even n = if n = 0 then true else odd (n - 1)
  and odd n = if n = 0 then false else even (n - 1) in
  if even 10 then 1 else 0
`)
	foundPatch := false
	for _, f := range p.Funcs {
		for _, r := range ir.Rhss(f) {
			if _, ok := r.(*ir.RPatchCapture); ok {
				foundPatch = true
			}
		}
	}
	if !foundPatch {
		t.Fatal("mutual local recursion should emit capture patches")
	}
}

func TestLowerGlobals(t *testing.T) {
	p := lowerSrc(t, `
let limit = 100
let table = [1; 2; 3]
let main () = limit
`)
	if len(p.Globals) != 2 {
		t.Fatalf("want 2 globals, got %d", len(p.Globals))
	}
	stores := 0
	for _, r := range ir.Rhss(p.InitFunc) {
		if _, ok := r.(*ir.RSetGlobal); ok {
			stores++
		}
	}
	if stores != 2 {
		t.Fatalf("init should store 2 globals, got %d", stores)
	}
}

func TestLowerEnvRepPhantomStored(t *testing.T) {
	// The thunk captures x:'a but has type unit -> int: 'a is phantom and
	// must be stored as a type-rep word; make_thunk must receive reps.
	// (The let-binding of t keeps the inner lambda out of make_thunk's
	// direct parameter chain, so a real closure is created.)
	p := lowerSrc(t, `
let make_thunk x =
  let th = fun () -> (let _ = [x] in 0) in
  th
let main () =
  let t = make_thunk 5 in
  t ()
`)
	mk := findFunc(t, p, "make_thunk")
	if !mk.NeedsReps {
		t.Fatalf("make_thunk should need hidden rep arguments")
	}
	var thunk *ir.Func
	for _, f := range p.Funcs {
		if f.Parent == mk {
			thunk = f
		}
	}
	if thunk == nil {
		t.Fatal("no lifted thunk")
	}
	if thunk.NumRepWords != 1 {
		t.Fatalf("thunk should store 1 rep word, got %d (env=%d derivs=%v)",
			thunk.NumRepWords, len(thunk.TypeEnv), thunk.TypeDerivs)
	}
}

func TestLowerDerivableNoReps(t *testing.T) {
	// Partial application closures capture 'a-typed values, but 'a occurs
	// in the closure's arrow type: derivable, no reps anywhere.
	p := lowerSrc(t, `
let rec append xs ys =
  match xs with
  | [] -> ys
  | x :: r -> x :: append r ys
let main () =
  let app = append [1; 2] in
  app [3]
`)
	for _, f := range p.Funcs {
		if f.NeedsReps {
			t.Fatalf("%s should not need reps", f.Name)
		}
		if f.NumRepWords != 0 {
			t.Fatalf("%s should not store reps (stored %d)", f.Name, f.NumRepWords)
		}
	}
}

func TestLowerLocalPolyPhantomRejected(t *testing.T) {
	src := `
let main () =
  let mk x = fun () -> (let _ = [x] in 0) in
  let a = mk 1 in
  let b = mk true in
  let _ = a () in
  b ()
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if _, err := Lower(prog, info); err == nil {
		t.Fatal("local polymorphic phantom closure should be rejected")
	} else if !strings.Contains(err.Error(), "runtime type representation") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLowerSeqDiscard(t *testing.T) {
	p := lowerSrc(t, `
let main () = print_int 1; print_int 2; 3
`)
	main := findFunc(t, p, "main")
	prints := 0
	for _, r := range ir.Rhss(main) {
		if b, ok := r.(*ir.RBuiltin); ok && b.Name == "print_int" {
			prints++
		}
	}
	if prints != 2 {
		t.Fatalf("want 2 print_int builtins, got %d", prints)
	}
}

func TestLowerIfJoin(t *testing.T) {
	p := lowerSrc(t, `
let main () = if 1 < 2 then 10 else 20
`)
	main := findFunc(t, p, "main")
	var cond *ir.ECond
	ir.WalkExprs(main.Body, func(e ir.Expr) {
		if c, ok := e.(*ir.ECond); ok && cond == nil {
			cond = c
		}
	})
	if cond == nil || cond.Dst == nil || cond.Cont == nil {
		t.Fatalf("value conditional needs a join destination:\n%s", main.String())
	}
}

func TestLowerCallSiteNumbering(t *testing.T) {
	p := lowerSrc(t, `
let f x = x + 1
let main () =
  let a = f 1 in
  let b = f 2 in
  let c = (a, b) in
  c
`)
	main := findFunc(t, p, "main")
	if main.NumCallSites != 3 {
		t.Fatalf("main should have 3 call/alloc sites (2 calls + 1 tuple), got %d", main.NumCallSites)
	}
}

func TestLowerRecursiveCallIdentityInst(t *testing.T) {
	// A recursive polymorphic call type-checks against the monomorphic
	// recursion binding, so the checker records no instantiation; lowering
	// must supply the identity (the callee's variables are the caller's
	// own). Without it the collector passes no type arguments to deeper
	// recursive frames — a soundness bug exposed by mark/sweep collection.
	p := lowerSrc(t, `
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let main () = map (fun x -> [x; x]) [1; 2; 3]
`)
	mp := findFunc(t, p, "map")
	if len(mp.TypeEnv) != 2 {
		t.Fatalf("map TypeEnv = %d, want 2", len(mp.TypeEnv))
	}
	for _, r := range ir.Rhss(mp) {
		call, ok := r.(*ir.RCall)
		if !ok || call.Callee != mp {
			continue
		}
		if len(call.Inst) != 2 {
			t.Fatalf("recursive call records %d instantiations, want 2 (identity)", len(call.Inst))
		}
		for i, inst := range call.Inst {
			v, ok := types.Resolve(inst).(*types.Var)
			if !ok || v != mp.TypeEnv[i] {
				t.Fatalf("recursive inst %d is %s, want the function's own variable",
					i, types.TypeString(inst))
			}
		}
		return
	}
	t.Fatal("no recursive call found in map")
}
