package lower

import (
	"fmt"

	"tagfree/internal/ir"
	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/token"
	"tagfree/internal/mlang/types"
)

// capHook lets the caller of liftClosure intercept captures of slots, for
// recursive closure groups. It returns a replacement creation atom (nil to
// keep the default slot read) and whether this capture is the closure's own
// slot (self capture).
type capHook func(capSlot *ir.Slot, capIdx int) (ir.Atom, bool)

// liftClosureValue lifts an anonymous or let-bound lambda into a closure.
func (c *fctx) liftClosureValue(lam *ast.Lam, scheme *types.Scheme, em *emitter) ir.Atom {
	atom, _ := c.liftClosure(lam, scheme, em, nil)
	return atom
}

// liftClosure lifts one lambda (unary: only the first parameter; a curried
// body lifts its own inner lambdas) into a new IR function and emits the
// closure allocation into the parent emitter.
func (c *fctx) liftClosure(lam *ast.Lam, scheme *types.Scheme, em *emitter, hook capHook) (ir.Atom, *ir.Func) {
	lamType := c.typeOf(lam)
	arrow, ok := types.Resolve(lamType).(*types.Arrow)
	if !ok {
		c.errf(lam.P, "internal: lambda without arrow type")
	}

	fn := c.l.newFunc(fmt.Sprintf("%s.lam%d", c.fn.Name, c.l.nextID))
	fn.Parent = c.fn
	fn.HasEnv = true
	fn.RetType = arrow.Cod
	if scheme != nil && scheme.Group != nil {
		fn.TypeEnv = append(fn.TypeEnv, scheme.Group.Vars...)
		fn.OwnVars = len(fn.TypeEnv)
	}

	child := &fctx{l: c.l, fn: fn}
	envSlot := child.newSlot("$env", lamType)
	envSlot.IsEnv = true
	paramSlot := child.newSlot(lam.Param, arrow.Dom)
	fn.NParams = 2

	// Resolve free variables: slots and captures of the parent become
	// captures of the closure; globals, functions and builtins pass
	// through by name.
	childScope := (*scope)(nil)
	var capAtoms []ir.Atom
	selfCapture := -1
	for _, name := range freeVars(lam) {
		if name == lam.Param {
			continue
		}
		b, found := c.scope.lookup(name)
		if !found {
			c.errf(lam.P, "internal: unbound free variable %s", name)
		}
		switch b := b.(type) {
		case *slotBinding:
			idx := len(fn.Captures)
			fn.Captures = append(fn.Captures, ir.CaptureInfo{Name: name, Type: b.slot.Type})
			atom := ir.Atom(&ir.ASlot{Slot: b.slot})
			if hook != nil {
				if repl, isSelf := hook(b.slot, idx); isSelf {
					selfCapture = idx
					atom = &ir.AConst{Kind: ir.ConstInt, Val: 0}
				} else if repl != nil {
					atom = repl
				}
			}
			capAtoms = append(capAtoms, atom)
			childScope = childScope.bind(name, &captureBinding{index: idx, typ: b.slot.Type})
		case *captureBinding:
			idx := len(fn.Captures)
			fn.Captures = append(fn.Captures, ir.CaptureInfo{Name: name, Type: b.typ})
			// Re-read the parent's capture in the parent frame.
			tmp := c.newSlot(name, b.typ)
			em.let(tmp, &ir.RField{
				Obj:         &ir.ASlot{Slot: c.fn.Slots[0]},
				Index:       b.index,
				FromCapture: true,
				ResultType:  b.typ,
			})
			capAtoms = append(capAtoms, &ir.ASlot{Slot: tmp})
			childScope = childScope.bind(name, &captureBinding{index: idx, typ: b.typ})
		default:
			childScope = childScope.bind(name, b)
		}
	}
	if lam.Param != "_" {
		childScope = childScope.bind(lam.Param, &slotBinding{slot: paramSlot})
	}
	child.scope = childScope

	bodyEm := newEmitter()
	res := child.lowerExpr(lam.Body, bodyEm)
	fn.Body = bodyEm.finish(&ir.ERet{A: res})

	dst := c.newSlot("", lamType)
	em.let(dst, &ir.RClosure{
		Target:      fn,
		Captures:    capAtoms,
		Site:        c.newSite(),
		SelfCapture: selfCapture,
	})
	return &ir.ASlot{Slot: dst}, fn
}

// ---------------------------------------------------------------------------
// Curried wrappers: known functions as values and partial applications.
// ---------------------------------------------------------------------------

// buildCurried returns a closure value that accepts the remaining
// parameters of target one at a time, then direct-calls it. preArgs are
// already-evaluated leading arguments (captured by the wrapper chain);
// valType is the closure's type at this occurrence (the instantiated arrow
// for the remaining parameters); inst instantiates target's type
// environment at this occurrence.
func (c *fctx) buildCurried(target *ir.Func, inst []types.Type, valType types.Type, preArgs []ir.Atom, em *emitter) ir.Atom {
	remaining := target.NParams - len(preArgs)
	if remaining <= 0 {
		c.errf(token.Pos{}, "internal: buildCurried with nothing remaining")
	}

	// Decompose the value type into the remaining parameter types.
	paramTypes := make([]types.Type, remaining)
	stepTypes := make([]types.Type, remaining) // arrow type of wrapper k's closure
	cur := valType
	for k := 0; k < remaining; k++ {
		stepTypes[k] = cur
		arrow, ok := types.Resolve(cur).(*types.Arrow)
		if !ok {
			c.errf(token.Pos{}, "internal: curried value type is not an arrow")
		}
		paramTypes[k] = arrow.Dom
		cur = arrow.Cod
	}
	finalRet := cur

	// Capture types accumulated by the wrapper chain: preArgs' types first,
	// then one parameter per level.
	capTypes := make([]types.Type, 0, len(preArgs)+remaining)
	for _, a := range preArgs {
		capTypes = append(capTypes, a.Type())
	}

	wrappers := make([]*ir.Func, remaining)
	for k := 0; k < remaining; k++ {
		w := c.l.newFunc(fmt.Sprintf("%s.curry%d", target.Name, k))
		w.HasEnv = true
		w.NParams = 2
		if k < remaining-1 {
			w.RetType = stepTypes[k+1]
		} else {
			w.RetType = finalRet
		}
		if k == 0 {
			w.Parent = c.fn
		} else {
			w.Parent = wrappers[k-1]
		}
		wrappers[k] = w
	}

	for k := 0; k < remaining; k++ {
		w := wrappers[k]
		wc := &fctx{l: c.l, fn: w}
		envSlot := wc.newSlot("$env", stepTypes[k])
		envSlot.IsEnv = true
		paramSlot := wc.newSlot(fmt.Sprintf("a%d", len(capTypes)), paramTypes[k])

		for i, t := range capTypes {
			w.Captures = append(w.Captures, ir.CaptureInfo{
				Name: fmt.Sprintf("a%d", i),
				Type: t,
			})
		}

		bodyEm := newEmitter()
		// Read every capture.
		capReads := make([]ir.Atom, len(capTypes))
		for i, t := range capTypes {
			s := wc.newSlot("", t)
			bodyEm.let(s, &ir.RField{
				Obj:         &ir.ASlot{Slot: envSlot},
				Index:       i,
				FromCapture: true,
				ResultType:  t,
			})
			capReads[i] = &ir.ASlot{Slot: s}
		}
		allArgs := append(append([]ir.Atom{}, capReads...), &ir.ASlot{Slot: paramSlot})

		if k < remaining-1 {
			dst := wc.newSlot("", stepTypes[k+1])
			bodyEm.let(dst, &ir.RClosure{
				Target:      wrappers[k+1],
				Captures:    allArgs,
				Site:        wc.newSite(),
				SelfCapture: -1,
			})
			w.Body = bodyEm.finish(&ir.ERet{A: &ir.ASlot{Slot: dst}})
		} else {
			dst := wc.newSlot("", finalRet)
			bodyEm.let(dst, &ir.RCall{
				Callee: target,
				Args:   allArgs,
				Inst:   inst,
				Site:   wc.newSite(),
				CanGC:  true,
			})
			w.Body = bodyEm.finish(&ir.ERet{A: &ir.ASlot{Slot: dst}})
		}
		capTypes = append(capTypes, paramTypes[k])
	}

	dst := c.newSlot("", valType)
	em.let(dst, &ir.RClosure{
		Target:      wrappers[0],
		Captures:    preArgs,
		Site:        c.newSite(),
		SelfCapture: -1,
	})
	return &ir.ASlot{Slot: dst}
}

// makeBuiltinValue wraps a builtin in a closure so it can be passed as a
// value.
func (c *fctx) makeBuiltinValue(b *builtinBinding, em *emitter) ir.Atom {
	arrow := types.Resolve(b.typ).(*types.Arrow)
	w := c.l.newFunc("builtin." + b.name)
	w.Parent = c.fn
	w.HasEnv = true
	w.NParams = 2
	w.RetType = arrow.Cod

	wc := &fctx{l: c.l, fn: w}
	envSlot := wc.newSlot("$env", b.typ)
	envSlot.IsEnv = true
	paramSlot := wc.newSlot("x", arrow.Dom)
	bodyEm := newEmitter()
	dst := wc.newSlot("", arrow.Cod)
	bodyEm.let(dst, &ir.RBuiltin{Name: b.name, Args: []ir.Atom{&ir.ASlot{Slot: paramSlot}}})
	w.Body = bodyEm.finish(&ir.ERet{A: &ir.ASlot{Slot: dst}})

	out := c.newSlot("", b.typ)
	em.let(out, &ir.RClosure{Target: w, Site: c.newSite(), SelfCapture: -1})
	return &ir.ASlot{Slot: out}
}
