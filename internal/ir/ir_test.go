package ir

import (
	"strings"
	"testing"

	"tagfree/internal/mlang/types"
)

func TestFindPath(t *testing.T) {
	a := types.ParamRef(0)
	b := types.ParamRef(1)
	listOf := func(e types.Type) types.Type {
		return &types.Con{Name: "list", Args: []types.Type{e}}
	}
	cases := []struct {
		ty   types.Type
		v    *types.Var
		want []PathStep
	}{
		{&types.Arrow{Dom: a, Cod: types.Int}, a, []PathStep{{Kind: PathDom}}},
		{&types.Arrow{Dom: types.Int, Cod: a}, a, []PathStep{{Kind: PathCod}}},
		{&types.Arrow{Dom: listOf(a), Cod: types.Int}, a,
			[]PathStep{{Kind: PathDom}, {Kind: PathElem, Index: 0}}},
		{&types.Arrow{Dom: &types.TupleT{Elems: []types.Type{types.Int, b}}, Cod: types.Int}, b,
			[]PathStep{{Kind: PathDom}, {Kind: PathElem, Index: 1}}},
		{&types.Arrow{Dom: &types.Arrow{Dom: a, Cod: types.Int}, Cod: types.Int}, a,
			[]PathStep{{Kind: PathDom}, {Kind: PathDom}}},
	}
	for i, c := range cases {
		got := FindPath(c.ty, c.v)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: path %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d step %d: %v, want %v", i, j, got[j], c.want[j])
			}
		}
	}
	if FindPath(&types.Arrow{Dom: types.Int, Cod: types.Bool}, a) != nil {
		t.Fatal("absent variable should have no path")
	}
}

func TestWalkExprsOrder(t *testing.T) {
	s := func(i int) *Slot { return &Slot{Idx: i, Name: "s", Type: types.Int} }
	atom := &AConst{Kind: ConstInt, Val: 1}
	tree := &ELet{Dst: s(0), Rhs: &RAtom{A: atom}, Cont: &ECond{
		Cond: atom,
		Dst:  s(1),
		Then: &EJoin{A: atom},
		Else: &ELet{Dst: s(2), Rhs: &RAtom{A: atom}, Cont: &EJoin{A: atom}},
		Cont: &ERet{A: atom},
	}}
	var kinds []string
	WalkExprs(tree, func(e Expr) {
		switch e.(type) {
		case *ELet:
			kinds = append(kinds, "let")
		case *ECond:
			kinds = append(kinds, "cond")
		case *EJoin:
			kinds = append(kinds, "join")
		case *ERet:
			kinds = append(kinds, "ret")
		}
	})
	want := []string{"let", "cond", "join", "let", "join", "ret"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("walk order %v, want %v", kinds, want)
	}
}

func TestRhsAtomsCoverage(t *testing.T) {
	a := &AConst{Kind: ConstInt, Val: 1}
	b := &AConst{Kind: ConstInt, Val: 2}
	f := &Func{Name: "t"}
	g := &Global{Idx: 0, Name: "g", Type: types.Int}
	cases := []struct {
		r Rhs
		n int
	}{
		{&RAtom{A: a}, 1},
		{&RPrim{Op: PAdd, Args: []Atom{a, b}}, 2},
		{&RRef{Init: a}, 1},
		{&RDeref{Ref: a}, 1},
		{&RAssign{Ref: a, Val: b}, 2},
		{&RTuple{Elems: []Atom{a, b}}, 2},
		{&RCtor{Args: []Atom{a}}, 1},
		{&RField{Obj: a}, 1},
		{&RClosure{Target: f, Captures: []Atom{a, b}}, 2},
		{&RCall{Callee: f, Args: []Atom{a}}, 1},
		{&RCallClos{Clos: a, Arg: b}, 2},
		{&RBuiltin{Name: "print_int", Args: []Atom{a}}, 1},
		{&RSetGlobal{Global: g, Val: a}, 1},
		{&RPatchCapture{Clos: a, Val: b, Target: f}, 2},
	}
	for i, c := range cases {
		if got := len(RhsAtoms(c.r)); got != c.n {
			t.Errorf("case %d (%T): %d atoms, want %d", i, c.r, got, c.n)
		}
	}
}

func TestCanAllocateClassification(t *testing.T) {
	f := &Func{Name: "t"}
	allocating := []Rhs{
		&RRef{}, &RTuple{}, &RCtor{}, &RClosure{Target: f},
		&RCall{Callee: f, CanGC: true}, &RCallClos{CanGC: true},
	}
	for _, r := range allocating {
		if !r.CanAllocate() {
			t.Errorf("%T should be able to allocate", r)
		}
	}
	pure := []Rhs{
		&RAtom{}, &RPrim{}, &RDeref{}, &RAssign{}, &RField{},
		&RBuiltin{}, &RSetGlobal{Global: &Global{}}, &RPatchCapture{Target: f},
		&RCall{Callee: f, CanGC: false}, &RCallClos{CanGC: false},
	}
	for _, r := range pure {
		if r.CanAllocate() {
			t.Errorf("%T should not allocate", r)
		}
	}
}

func TestPrinterSmoke(t *testing.T) {
	f := &Func{ID: 0, Name: "demo", NParams: 1, RetType: types.Int}
	slot := &Slot{Idx: 0, Name: "x", Type: types.Int}
	f.Slots = []*Slot{slot}
	f.Body = &ERet{A: &ASlot{Slot: slot}}
	out := f.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "ret x") {
		t.Fatalf("printer output: %s", out)
	}
}
