package ir

// WalkExprs visits every node of a body tree in preorder.
func WalkExprs(body Expr, visit func(Expr)) {
	if body == nil {
		return
	}
	visit(body)
	switch e := body.(type) {
	case *ELet:
		WalkExprs(e.Cont, visit)
	case *ECond:
		WalkExprs(e.Then, visit)
		WalkExprs(e.Else, visit)
		WalkExprs(e.Cont, visit)
	}
}

// Rhss returns every computation in the function body, in preorder.
func Rhss(f *Func) []Rhs {
	var out []Rhs
	WalkExprs(f.Body, func(e Expr) {
		if let, ok := e.(*ELet); ok {
			out = append(out, let.Rhs)
		}
	})
	return out
}

// RhsAtoms returns the operand atoms of a computation.
func RhsAtoms(r Rhs) []Atom {
	switch r := r.(type) {
	case *RAtom:
		return []Atom{r.A}
	case *RPrim:
		return r.Args
	case *RRef:
		return []Atom{r.Init}
	case *RDeref:
		return []Atom{r.Ref}
	case *RAssign:
		return []Atom{r.Ref, r.Val}
	case *RTuple:
		return r.Elems
	case *RCtor:
		return r.Args
	case *RField:
		return []Atom{r.Obj}
	case *RClosure:
		return r.Captures
	case *RCall:
		return r.Args
	case *RCallClos:
		return []Atom{r.Clos, r.Arg}
	case *RBuiltin:
		return r.Args
	case *RSetGlobal:
		return []Atom{r.Val}
	case *RPatchCapture:
		return []Atom{r.Clos, r.Val}
	}
	return nil
}
