// Package ir defines the compiler's intermediate representation.
//
// The IR is a typed A-normal form: every intermediate value is bound to a
// numbered slot, every operand is an atom (constant or slot reference), and
// control flow is a tree of conditionals with explicit join points. Slots
// are assigned exactly once (join destinations are assigned once per branch),
// which keeps liveness analysis simple and makes per-call-site stack maps —
// the heart of Goldberg's tag-free collection — easy to derive.
//
// Functions are closure-converted: a lifted function receives its closure
// environment as slot 0 and reaches captured values through explicit field
// loads. Every function records its type environment (the quantified type
// variables its slot types mention); call sites record the instantiation of
// the callee's type environment, which is exactly the information the
// paper's parameterized frame_gc_routines pass along the stack during
// collection (§3).
package ir

import (
	"fmt"
	"strings"

	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/types"
)

// ---------------------------------------------------------------------------
// Program structure.
// ---------------------------------------------------------------------------

// Program is a closure-converted, ANF-lowered compilation unit.
type Program struct {
	Funcs []*Func
	// Globals are top-level non-function bindings, initialized in order by
	// the synthetic init function before main runs.
	Globals []*Global
	// InitFunc computes and stores all globals; it is the program entry.
	InitFunc *Func
	// MainFunc is the user's main function (type unit -> τ).
	MainFunc *Func
	// Strings is the constant pool for string literals (deduplicated).
	Strings []string
	// Datatypes carries the checker's datatype table.
	Datatypes map[string]*types.Data
}

// Global is a top-level value binding slot.
type Global struct {
	Idx  int
	Name string
	// Type is the binding's type. Quantified variables occurring in it are
	// traced as non-pointers: by parametricity a value inhabiting a type
	// that is polymorphic in 'a cannot hold an 'a-typed pointer reachable
	// only through 'a positions.
	Type types.Type
}

// TypeSource says where a function's frame GC routine obtains the
// type_gc_routines for its type environment during collection.
type TypeSource int

const (
	// TypeSourceNone: the function has an empty type environment.
	TypeSourceNone TypeSource = iota
	// TypeSourceCallSite: the caller's frame_gc_routine passes the type
	// arguments, following the paper's oldest→newest stack walk (§3).
	TypeSourceCallSite
	// TypeSourceEnv: the function is closure-called; its environment object
	// (slot 0) stores type-rep handles recorded at closure creation. This
	// is the extension required for escaping polymorphic-capture closures,
	// which the paper's stack-only protocol cannot reconstruct.
	TypeSourceEnv
)

// Func is a lowered function.
type Func struct {
	ID   int
	Name string
	// Parent is the lexically enclosing function for lifted closures (nil
	// for top-level functions). A closure's non-own type variables must be
	// visible in its parent's type environment.
	Parent *Func
	// NParams counts leading parameter slots, including the environment
	// slot when HasEnv is set (the environment is always slot 0).
	NParams int
	HasEnv  bool
	// Slots holds parameters first, then locals, indexed by Slot.Idx.
	Slots []*Slot
	Body  Expr
	// Captures describes the closure environment layout (empty for
	// functions that are only called directly).
	Captures []CaptureInfo
	// TypeEnv lists the quantified type variables the function's slot,
	// capture and instantiation types mention; frame GC routines are
	// parameterized by one type_gc_routine per entry.
	TypeEnv []*types.Var
	// TypeSource says how the GC obtains TypeEnv bindings for a frame.
	TypeSource TypeSource
	// NeedsReps is set when the function must receive runtime type-rep
	// handles as hidden trailing arguments (it creates polymorphic-capture
	// closures, directly or transitively). Computed by the reps analysis.
	NeedsReps bool
	// OwnVars is the length of the TypeEnv prefix quantified by this
	// function's own binding scheme; the rest come from enclosing scopes.
	OwnVars int
	// TypeDerivs, for closure-called functions, gives for each TypeEnv
	// entry the path at which the variable occurs in the function's own
	// arrow type (derivable at GC time from the call-site type package), or
	// nil when the variable is phantom and must be stored as a type-rep
	// word in the closure. Computed by the reps analysis.
	TypeDerivs []TypePath
	// RepWord, for each TypeEnv entry, is the index of its type-rep word
	// in the closure layout, or -1 when not stored. Stored entries are
	// those with nil derivation plus those the body needs at run time.
	RepWord []int
	// NumRepWords is the number of type-rep words in the closure layout.
	NumRepWords int
	// RuntimeNeeded marks TypeEnv entries whose type-rep handle the body
	// needs at run time (to build reps for closures it creates or to pass
	// to rep-needing callees).
	RuntimeNeeded []bool
	// RetType is the function's return type.
	RetType types.Type
	// NumCallSites is the number of call/allocation sites, assigned during
	// lowering; each gets a gc_word in the generated code.
	NumCallSites int
}

// PathKind is a step kind in a type derivation path.
type PathKind int

// Path step kinds.
const (
	PathDom  PathKind = iota // function domain
	PathCod                  // function codomain
	PathElem                 // tuple element or type-constructor argument (Index)
)

// PathStep is one step of a TypePath.
type PathStep struct {
	Kind  PathKind
	Index int
}

// TypePath locates a type variable inside a function's arrow type; the
// collector follows it through the structured type_gc_routine package a
// closure call site provides (paper Figures 3 and 4).
type TypePath []PathStep

// FindPath returns a path to the first occurrence of v inside t, or nil.
func FindPath(t types.Type, v *types.Var) TypePath {
	switch t := types.Resolve(t).(type) {
	case *types.Var:
		if t == v {
			return TypePath{}
		}
	case *types.Arrow:
		if p := FindPath(t.Dom, v); p != nil {
			return append(TypePath{{Kind: PathDom}}, p...)
		}
		if p := FindPath(t.Cod, v); p != nil {
			return append(TypePath{{Kind: PathCod}}, p...)
		}
	case *types.TupleT:
		for i, e := range t.Elems {
			if p := FindPath(e, v); p != nil {
				return append(TypePath{{Kind: PathElem, Index: i}}, p...)
			}
		}
	case *types.Con:
		for i, a := range t.Args {
			if p := FindPath(a, v); p != nil {
				return append(TypePath{{Kind: PathElem, Index: i}}, p...)
			}
		}
	}
	return nil
}

// Slot is a parameter or local variable of a function.
type Slot struct {
	Idx  int
	Name string
	Type types.Type
	// IsEnv marks the closure environment parameter (slot 0 of lifted
	// functions); it is traced through the closure's own layout.
	IsEnv bool
}

// CaptureInfo describes one captured value in a closure environment.
type CaptureInfo struct {
	Name string
	Type types.Type
}

// TypeEnvIndex returns the index of v in the function's type environment,
// or -1.
func (f *Func) TypeEnvIndex(v *types.Var) int {
	for i, tv := range f.TypeEnv {
		if tv == v {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Atoms.
// ---------------------------------------------------------------------------

// Atom is a trivial operand: evaluating it cannot allocate, call, or fail.
type Atom interface {
	atom()
	// Type returns the atom's semantic type.
	Type() types.Type
}

// ConstKind distinguishes the unboxed constants.
type ConstKind int

// Unboxed constant kinds.
const (
	ConstInt ConstKind = iota
	ConstBool
	ConstUnit
)

// AConst is an unboxed constant.
type AConst struct {
	Kind ConstKind
	Val  int64
}

// ASlot reads a slot.
type ASlot struct{ Slot *Slot }

// AGlobal reads a global.
type AGlobal struct{ Global *Global }

// ANullCtor is a nullary datatype constructor constant (represented
// unboxed by its nullary tag).
type ANullCtor struct {
	Ctor *types.CtorInfo
	// Inst instantiates the datatype's parameters at this occurrence.
	Inst []types.Type
}

// AStr is a string constant (an index into the immortal constant pool).
type AStr struct{ Index int }

func (*AConst) atom()    {}
func (*ASlot) atom()     {}
func (*AGlobal) atom()   {}
func (*ANullCtor) atom() {}
func (*AStr) atom()      {}

// Type returns int, bool or unit.
func (a *AConst) Type() types.Type {
	switch a.Kind {
	case ConstInt:
		return types.Int
	case ConstBool:
		return types.Bool
	default:
		return types.Unit
	}
}

// Type returns the slot's type.
func (a *ASlot) Type() types.Type { return a.Slot.Type }

// Type returns the global's type.
func (a *AGlobal) Type() types.Type { return a.Global.Type }

// Type returns the constructed datatype.
func (a *ANullCtor) Type() types.Type {
	return &types.Con{Name: a.Ctor.Data.Name, Args: a.Inst, Data: a.Ctor.Data}
}

// Type returns string.
func (a *AStr) Type() types.Type { return types.String }

// ---------------------------------------------------------------------------
// Right-hand sides (computations bound by ELet).
// ---------------------------------------------------------------------------

// Rhs is a computation whose result is bound to a slot.
type Rhs interface {
	rhs()
	// CanAllocate reports whether executing this computation may trigger a
	// garbage collection (it allocates or calls something that might).
	// Calls are refined later by the GC-possible analysis.
	CanAllocate() bool
}

// RAtom moves an atom into a slot.
type RAtom struct{ A Atom }

// RPrim applies a primitive operator (arithmetic, comparison, boolean,
// pointer discrimination, tag read). Never allocates.
type RPrim struct {
	Op   PrimOp
	Args []Atom
}

// RRef allocates a reference cell.
type RRef struct {
	Init Atom
	Site int // call-site id
	Elem types.Type
}

// RDeref loads a reference cell.
type RDeref struct{ Ref Atom }

// RAssign stores into a reference cell; the bound value is unit.
type RAssign struct{ Ref, Val Atom }

// RTuple allocates a tuple.
type RTuple struct {
	Elems []Atom
	Site  int
	Types []types.Type
}

// RCtor allocates a boxed datatype constructor application (nullary
// constructors are ANullCtor atoms instead).
type RCtor struct {
	Ctor *types.CtorInfo
	Inst []types.Type
	Args []Atom
	Site int
}

// RField loads a field of a boxed value: a tuple element, a constructor
// field, or a closure capture.
type RField struct {
	Obj   Atom
	Index int
	// FromCtor, when non-nil, says the object is a boxed constructor value
	// of this constructor (the load offset accounts for a discriminant word
	// when the datatype needs one).
	FromCtor *types.CtorInfo
	// FromCapture marks loads of closure captures through the environment
	// slot (the load offset accounts for the code-pointer word and any
	// type-rep words).
	FromCapture bool
	// ResultType is the loaded value's type.
	ResultType types.Type
}

// RClosure allocates a closure for a lifted function.
type RClosure struct {
	Target   *Func
	Captures []Atom
	// Inst instantiates Target.TypeEnv at this creation site. When Target's
	// TypeSource is TypeSourceEnv these become stored type-rep handles.
	Inst []types.Type
	Site int
	// SelfCapture is the index into Captures whose value is the closure
	// itself (recursive closures); -1 when absent. The creation site stores
	// the new closure's own address there.
	SelfCapture int
}

// RCall is a direct call to a known function.
type RCall struct {
	Callee *Func
	Args   []Atom
	// Inst instantiates Callee.TypeEnv, expressed over the caller's type
	// environment; the frame_gc_routine for this site passes the
	// corresponding type_gc_routines during collection (§3).
	Inst []types.Type
	Site int
	// CanGC is refined by the GC-possible analysis; until then true.
	CanGC bool
}

// RCallClos calls a closure with one argument.
type RCallClos struct {
	Clos Atom
	Arg  Atom
	Site int
	// CanGC is refined by the higher-order (0-CFA) GC-possible analysis;
	// conservatively true until then.
	CanGC bool
	// RetType is the call's result type.
	RetType types.Type
	// SiteType is the closure's static type at this call site, after
	// instantiation (the checker's type of the applied expression). The
	// frame_gc_routine for this site builds the callee's type package from
	// it — the paper's Figure 4 closure-typed type_gc_routine.
	SiteType types.Type
}

// RSetGlobal stores a value into a global (used by the init function).
type RSetGlobal struct {
	Global *Global
	Val    Atom
}

// RPatchCapture overwrites a capture field of an already-allocated closure.
// It is emitted only for mutually recursive local closures, whose forward
// references are created as null and patched once every member of the group
// exists. The bound value is unit. Target identifies the closure's function
// (its layout decides the capture's field offset).
type RPatchCapture struct {
	Clos   Atom
	Index  int
	Val    Atom
	Target *Func
}

// RBuiltin invokes a runtime builtin (print_int etc.). Never allocates.
type RBuiltin struct {
	Name string
	Args []Atom
}

func (*RAtom) rhs()         {}
func (*RPrim) rhs()         {}
func (*RRef) rhs()          {}
func (*RDeref) rhs()        {}
func (*RAssign) rhs()       {}
func (*RTuple) rhs()        {}
func (*RCtor) rhs()         {}
func (*RField) rhs()        {}
func (*RClosure) rhs()      {}
func (*RCall) rhs()         {}
func (*RCallClos) rhs()     {}
func (*RBuiltin) rhs()      {}
func (*RSetGlobal) rhs()    {}
func (*RPatchCapture) rhs() {}

// CanAllocate implementations.
func (*RAtom) CanAllocate() bool         { return false }
func (*RPrim) CanAllocate() bool         { return false }
func (*RRef) CanAllocate() bool          { return true }
func (*RDeref) CanAllocate() bool        { return false }
func (*RAssign) CanAllocate() bool       { return false }
func (*RTuple) CanAllocate() bool        { return true }
func (*RCtor) CanAllocate() bool         { return true }
func (*RField) CanAllocate() bool        { return false }
func (*RClosure) CanAllocate() bool      { return true }
func (r *RCall) CanAllocate() bool       { return r.CanGC }
func (r *RCallClos) CanAllocate() bool   { return r.CanGC }
func (*RBuiltin) CanAllocate() bool      { return false }
func (*RSetGlobal) CanAllocate() bool    { return false }
func (*RPatchCapture) CanAllocate() bool { return false }

// PrimOp enumerates IR primitives. It extends the surface operators with
// the representation-level tests the pattern-match compiler emits.
type PrimOp int

// IR primitive operators.
const (
	PAdd PrimOp = iota
	PSub
	PMul
	PDiv
	PMod
	PNeg
	PEq
	PNe
	PLt
	PLe
	PGt
	PGe
	PNot
	// PIsBoxed tests whether a datatype value is a boxed (pointer)
	// representation rather than an unboxed nullary constructor.
	PIsBoxed
	// PTagIs tests the discriminant word of a boxed constructor value
	// against the immediate in Args[1] (an AConst).
	PTagIs
)

var primNames = map[PrimOp]string{
	PAdd: "add", PSub: "sub", PMul: "mul", PDiv: "div", PMod: "mod",
	PNeg: "neg", PEq: "eq", PNe: "ne", PLt: "lt", PLe: "le", PGt: "gt",
	PGe: "ge", PNot: "not", PIsBoxed: "is_boxed", PTagIs: "tag_is",
}

// String returns the primitive's mnemonic.
func (op PrimOp) String() string {
	if s, ok := primNames[op]; ok {
		return s
	}
	return fmt.Sprintf("prim(%d)", int(op))
}

// PrimFromAST converts a surface arithmetic/comparison operator.
func PrimFromAST(op ast.PrimOp) PrimOp {
	switch op {
	case ast.OpAdd:
		return PAdd
	case ast.OpSub:
		return PSub
	case ast.OpMul:
		return PMul
	case ast.OpDiv:
		return PDiv
	case ast.OpMod:
		return PMod
	case ast.OpNeg:
		return PNeg
	case ast.OpEq:
		return PEq
	case ast.OpNe:
		return PNe
	case ast.OpLt:
		return PLt
	case ast.OpLe:
		return PLe
	case ast.OpGt:
		return PGt
	case ast.OpGe:
		return PGe
	case ast.OpNot:
		return PNot
	}
	panic(fmt.Sprintf("PrimFromAST: no direct IR primitive for %v", op))
}

// ---------------------------------------------------------------------------
// Expression trees.
// ---------------------------------------------------------------------------

// Expr is a statement tree. Every path through a function body ends in ERet;
// branches of an ECond end in EJoin, which assigns the conditional's
// destination and transfers control to the continuation.
type Expr interface {
	expr()
}

// ERet returns from the function.
type ERet struct{ A Atom }

// ELet binds the result of a computation and continues.
type ELet struct {
	Dst  *Slot
	Rhs  Rhs
	Cont Expr
}

// ECond evaluates Cond; both branch trees end in EJoin nodes that assign
// Dst, after which control continues at Cont.
//
// An ECond with nil Dst and nil Cont *inherits* the join target of the
// nearest enclosing ECond that has one: its branches' EJoin nodes assign
// that conditional's destination and continue at its continuation. The
// pattern-match lowering uses this for arm chains, where every arm's body
// joins the same match result.
type ECond struct {
	Cond Atom
	Dst  *Slot
	Then Expr
	Else Expr
	Cont Expr
}

// EJoin ends an ECond branch: assign the conditional's Dst and continue at
// its Cont.
type EJoin struct{ A Atom }

// EMatchFail aborts execution: no match arm applied.
type EMatchFail struct{}

func (*ERet) expr()       {}
func (*ELet) expr()       {}
func (*ECond) expr()      {}
func (*EJoin) expr()      {}
func (*EMatchFail) expr() {}

// ---------------------------------------------------------------------------
// Printing (debugging aid and golden-test surface).
// ---------------------------------------------------------------------------

// String renders the program for debugging.
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %d %s : %s\n", g.Idx, g.Name, types.TypeString(g.Type))
	}
	for _, f := range p.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s#%d(", f.Name, f.ID)
	for i := 0; i < f.NParams; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		s := f.Slots[i]
		fmt.Fprintf(&b, "%s:%s", s.Name, types.TypeString(s.Type))
	}
	b.WriteString(")")
	if len(f.TypeEnv) > 0 {
		fmt.Fprintf(&b, " tyenv=%d src=%d", len(f.TypeEnv), f.TypeSource)
	}
	if f.NeedsReps {
		b.WriteString(" reps")
	}
	b.WriteString(":\n")
	writeExpr(&b, f.Body, 1)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr, depth int) {
	ind := strings.Repeat("  ", depth)
	switch e := e.(type) {
	case *ERet:
		fmt.Fprintf(b, "%sret %s\n", ind, AtomString(e.A))
	case *EJoin:
		fmt.Fprintf(b, "%sjoin %s\n", ind, AtomString(e.A))
	case *EMatchFail:
		fmt.Fprintf(b, "%smatch_fail\n", ind)
	case *ELet:
		fmt.Fprintf(b, "%s%s = %s\n", ind, e.Dst.Name, RhsString(e.Rhs))
		writeExpr(b, e.Cont, depth)
	case *ECond:
		dst := "tail"
		if e.Dst != nil {
			dst = e.Dst.Name
		}
		fmt.Fprintf(b, "%sif %s -> %s\n", ind, AtomString(e.Cond), dst)
		writeExpr(b, e.Then, depth+1)
		fmt.Fprintf(b, "%selse\n", ind)
		writeExpr(b, e.Else, depth+1)
		if e.Cont != nil {
			writeExpr(b, e.Cont, depth)
		}
	}
}

// AtomString renders an atom.
func AtomString(a Atom) string {
	switch a := a.(type) {
	case *AConst:
		switch a.Kind {
		case ConstBool:
			if a.Val != 0 {
				return "true"
			}
			return "false"
		case ConstUnit:
			return "()"
		default:
			return fmt.Sprint(a.Val)
		}
	case *ASlot:
		return a.Slot.Name
	case *AGlobal:
		return "@" + a.Global.Name
	case *ANullCtor:
		return a.Ctor.Name
	case *AStr:
		return fmt.Sprintf("str#%d", a.Index)
	}
	return "?"
}

// RhsString renders a computation.
func RhsString(r Rhs) string {
	switch r := r.(type) {
	case *RAtom:
		return AtomString(r.A)
	case *RPrim:
		parts := make([]string, len(r.Args))
		for i, a := range r.Args {
			parts[i] = AtomString(a)
		}
		return fmt.Sprintf("%s(%s)", r.Op, strings.Join(parts, ", "))
	case *RRef:
		return fmt.Sprintf("ref(%s) @%d", AtomString(r.Init), r.Site)
	case *RDeref:
		return fmt.Sprintf("deref(%s)", AtomString(r.Ref))
	case *RAssign:
		return fmt.Sprintf("assign(%s, %s)", AtomString(r.Ref), AtomString(r.Val))
	case *RTuple:
		parts := make([]string, len(r.Elems))
		for i, a := range r.Elems {
			parts[i] = AtomString(a)
		}
		return fmt.Sprintf("tuple(%s) @%d", strings.Join(parts, ", "), r.Site)
	case *RCtor:
		parts := make([]string, len(r.Args))
		for i, a := range r.Args {
			parts[i] = AtomString(a)
		}
		return fmt.Sprintf("%s(%s) @%d", r.Ctor.Name, strings.Join(parts, ", "), r.Site)
	case *RField:
		src := ""
		if r.FromCapture {
			src = " capture"
		} else if r.FromCtor != nil {
			src = " of " + r.FromCtor.Name
		}
		return fmt.Sprintf("field %d%s of %s", r.Index, src, AtomString(r.Obj))
	case *RClosure:
		parts := make([]string, len(r.Captures))
		for i, a := range r.Captures {
			parts[i] = AtomString(a)
		}
		return fmt.Sprintf("closure %s[%s] @%d", r.Target.Name, strings.Join(parts, ", "), r.Site)
	case *RCall:
		parts := make([]string, len(r.Args))
		for i, a := range r.Args {
			parts[i] = AtomString(a)
		}
		gc := ""
		if !r.CanGC {
			gc = " nogc"
		}
		return fmt.Sprintf("call %s(%s) @%d%s", r.Callee.Name, strings.Join(parts, ", "), r.Site, gc)
	case *RCallClos:
		return fmt.Sprintf("callc %s(%s) @%d", AtomString(r.Clos), AtomString(r.Arg), r.Site)
	case *RBuiltin:
		parts := make([]string, len(r.Args))
		for i, a := range r.Args {
			parts[i] = AtomString(a)
		}
		return fmt.Sprintf("builtin %s(%s)", r.Name, strings.Join(parts, ", "))
	case *RSetGlobal:
		return fmt.Sprintf("@%s := %s", r.Global.Name, AtomString(r.Val))
	}
	return "?"
}
