package gc

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection and GC torture. A collector's recovery paths — emergency
// collections, heap growth, per-task faulting, the parallel watchdog — are
// exactly the paths ordinary workloads never exercise. FaultPlan makes
// them exercisable on demand, deterministically: every decision derives
// from an allocation counter and a seeded PRNG, so a failing torture run
// replays exactly.
//
// A plan is shared by the mutator (which consults FailAlloc/Torture before
// each allocation) and the parallel collector (which applies WorkerDelay
// and Watchdog to its scan workers). The outcome counters live in
// Telemetry.Resilience, next to the rest of the per-run GC accounting.

// FaultPlan configures deterministic allocation-failure injection and GC
// torture. The zero value injects nothing.
type FaultPlan struct {
	// FailNth fails the Nth mutator allocation (1-based) once.
	FailNth int64
	// FailEvery fails every Kth mutator allocation.
	FailEvery int64
	// FailProb fails each allocation with this probability, drawn from a
	// PRNG seeded with Seed (deterministic for a fixed seed).
	FailProb float64
	Seed     int64
	// Torture forces a collection before every allocation — the classic
	// GC-torture discipline: any root the compiler's frame maps miss dies
	// at the very next allocation instead of surviving by luck.
	Torture bool
	// WorkerDelay stalls each parallel scan worker before it scans a
	// claimed stack (watchdog testing).
	WorkerDelay time.Duration
	// Watchdog bounds the parallel scan phase: when it expires, workers
	// are aborted and the collection falls back to the sequential path.
	Watchdog time.Duration
	// RefillOnly restricts the failure knobs above to TLAB refill carves:
	// ordinary allocations neither fail nor consume a counter, so -fail-alloc
	// schedules target the refill path specifically (-fail-refills).
	RefillOnly bool

	allocs  atomic.Int64
	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// FailAlloc reports whether the current mutator allocation should fail.
// Callers consult it once per allocation attempt; injected failures are
// expected to trigger the same recovery ladder a genuine OOM would.
//
// FailAlloc is safe for concurrent callers: the counter is atomic and the
// lazily seeded PRNG is initialized exactly once and drawn under a lock.
// (Determinism holds per caller-ordering — concurrent mutators interleave
// draws in scheduling order, single-threaded runs replay exactly.)
func (p *FaultPlan) FailAlloc() bool { return p.FailAllocAt(false) }

// FailAllocAt is FailAlloc with the attempt's refill-ness: refill is true
// when the allocation is about to carve a fresh TLAB chunk. A RefillOnly
// plan ignores non-refill attempts entirely — no failure, no counter
// consumed — so FailNth/FailEvery schedules count refills alone.
func (p *FaultPlan) FailAllocAt(refill bool) bool {
	if p.RefillOnly && !refill {
		return false
	}
	n := p.allocs.Add(1)
	if p.FailNth > 0 && n == p.FailNth {
		return true
	}
	if p.FailEvery > 0 && n%p.FailEvery == 0 {
		return true
	}
	if p.FailProb > 0 {
		p.rngOnce.Do(func() { p.rng = rand.New(rand.NewSource(p.Seed)) })
		p.rngMu.Lock()
		hit := p.rng.Float64() < p.FailProb
		p.rngMu.Unlock()
		if hit {
			return true
		}
	}
	return false
}

// Allocs returns how many allocation decisions the plan has made.
func (p *FaultPlan) Allocs() int64 { return p.allocs.Load() }
