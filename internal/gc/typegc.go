// Package gc implements garbage collection for the simulated heap under
// four strategies:
//
//   - Compiled (the paper's contribution): per-call-site frame routines,
//     prebuilt from compiler-emitted frame maps, trace exactly the live
//     slots; polymorphic frames receive type_gc_routines from their
//     caller's routine during an oldest→newest stack walk (§3).
//   - Interp (Branquart & Lewi 1970 / Britton 1975): the same maps are
//     serialized to compact byte descriptors and decoded during every
//     collection by a generic walker — smaller metadata, slower pauses.
//   - Appel (Appel 1989): one descriptor per procedure covering every
//     variable (no liveness), with polymorphic type resolution re-walking
//     the dynamic chain per frame (no incremental pass) — the design the
//     paper critiques in §1.1.1.
//   - Tagged: the classical baseline; per-word tag bits and object headers
//     drive a Cheney scan with no compiler metadata at all.
//
// TypeGC values are the runtime incarnation of the paper's
// type_gc_routines: structured, memoized closures (Figure 3's
// trace_list_of(const_gc) sharing) that both trace values and decompose
// into their components so callees can derive their type parameters from a
// call site's package (Figure 4).
package gc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tagfree/internal/code"
	"tagfree/internal/heap"
)

// TypeGC traces values of one type and decomposes into component routines.
type TypeGC interface {
	// Trace forwards the value (copying any heap structure it owns) and
	// returns the new value.
	Trace(c *Collector, w code.Word) code.Word
	// Child returns the component routine selected by a derivation step.
	Child(step code.PathStep) TypeGC
	// gcID is the node's unique id within its builder (memoization key).
	gcID() int
}

// builder hash-conses TypeGC nodes, mirroring the paper's observation that
// type_gc_routine closures for equal types are shared (Figure 3). The
// mutex makes memoization safe for the parallel collection path, where
// several workers resolve descriptors concurrently; the set of nodes ever
// built is determined by the program alone, so Built stays deterministic
// even though construction order is not.
//
// Reads are lock-free in the steady state: an immutable snapshot map is
// consulted first without locking, and the mutex guards only misses. The
// collector republishes the snapshot before each parallel phase
// (prepareFastPath), so once the program's descriptor set has been seen,
// workers never serialize on the mutex — the PR-1 profile showed -par 4
// collections spending most of their resolution time queued here.
type builder struct {
	snap   atomic.Pointer[map[string]TypeGC]
	mu     sync.Mutex
	nextID int
	cache  map[string]TypeGC
	// promoted is the cache size at the last snapshot, so promote can
	// skip republication when nothing new was built.
	promoted int
	// Built counts constructor calls that created a new node (experiment
	// instrumentation: "type_gc closures constructed").
	Built int64
}

func newBuilder() *builder {
	return &builder{cache: map[string]TypeGC{}}
}

func (b *builder) memo(key string, mk func(id int) TypeGC) TypeGC {
	if m := b.snap.Load(); m != nil {
		if g, ok := (*m)[key]; ok {
			return g
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if g, ok := b.cache[key]; ok {
		return g
	}
	b.nextID++
	g := mk(b.nextID)
	b.cache[key] = g
	b.Built++
	return g
}

// promote republishes the lock-free snapshot from the locked cache.
func (b *builder) promote() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.cache) == b.promoted {
		return
	}
	m := make(map[string]TypeGC, len(b.cache))
	for k, v := range b.cache {
		m[k] = v
	}
	b.snap.Store(&m)
	b.promoted = len(m)
}

// Const returns the routine for unboxed values (const_gc in the paper).
func (b *builder) Const() TypeGC {
	return b.memo("const", func(id int) TypeGC { return &constG{id: id} })
}

// Ref returns the routine for reference cells.
func (b *builder) Ref(elem TypeGC) TypeGC {
	return b.memo(fmt.Sprintf("ref:%d", elem.gcID()), func(id int) TypeGC {
		return &refG{id: id, elem: elem}
	})
}

// Tuple returns the routine for tuples.
func (b *builder) Tuple(fields []TypeGC) TypeGC {
	key := "tup"
	for _, f := range fields {
		key += fmt.Sprintf(":%d", f.gcID())
	}
	return b.memo(key, func(id int) TypeGC {
		return &tupleG{id: id, fields: fields}
	})
}

// Data returns the routine for a datatype instantiation (trace_list_of and
// friends).
func (b *builder) Data(layoutID int, layout *code.DataLayout, args []TypeGC) TypeGC {
	key := fmt.Sprintf("data:%d", layoutID)
	for _, a := range args {
		key += fmt.Sprintf(":%d", a.gcID())
	}
	return b.memo(key, func(id int) TypeGC {
		return &dataG{id: id, layoutID: layoutID, layout: layout, args: args}
	})
}

// Arrow returns the routine for function values (Figure 4): it traces
// closures through their code pointers and offers dom/cod decomposition.
func (b *builder) Arrow(dom, cod TypeGC) TypeGC {
	return b.memo(fmt.Sprintf("arr:%d:%d", dom.gcID(), cod.gcID()), func(id int) TypeGC {
		return &arrowG{id: id, dom: dom, cod: cod}
	})
}

// FromDesc builds the routine for a compiler descriptor, resolving TDVar
// nodes against env (a frame's or datatype's type arguments).
func (c *Collector) FromDesc(d *code.TypeDesc, env []TypeGC) TypeGC {
	b := c.b
	switch d.Kind {
	case code.TDConst, code.TDOpaque:
		return b.Const()
	case code.TDVar:
		if d.Index < len(env) && env[d.Index] != nil {
			return env[d.Index]
		}
		return b.Const()
	case code.TDRef:
		return b.Ref(c.FromDesc(d.Args[0], env))
	case code.TDTuple:
		fields := make([]TypeGC, len(d.Args))
		for i, a := range d.Args {
			fields[i] = c.FromDesc(a, env)
		}
		return b.Tuple(fields)
	case code.TDData:
		args := make([]TypeGC, len(d.Args))
		for i, a := range d.Args {
			args[i] = c.FromDesc(a, env)
		}
		return b.Data(d.Index, c.Prog.Data[d.Index], args)
	case code.TDArrow:
		return b.Arrow(c.FromDesc(d.Args[0], env), c.FromDesc(d.Args[1], env))
	}
	panic("FromDesc: unknown descriptor kind")
}

// FromRep builds the routine for a runtime type-rep handle (stored in a
// closure's rep words at creation).
func (c *Collector) FromRep(h int) TypeGC {
	e := c.Prog.Reps.Entry(h)
	switch e.Kind {
	case code.TDConst, code.TDOpaque:
		return c.b.Const()
	case code.TDRef:
		return c.b.Ref(c.FromRep(e.Children[0]))
	case code.TDTuple:
		fields := make([]TypeGC, len(e.Children))
		for i, ch := range e.Children {
			fields[i] = c.FromRep(ch)
		}
		return c.b.Tuple(fields)
	case code.TDData:
		args := make([]TypeGC, len(e.Children))
		for i, ch := range e.Children {
			args[i] = c.FromRep(ch)
		}
		return c.b.Data(e.Index, c.Prog.Data[e.Index], args)
	case code.TDArrow:
		return c.b.Arrow(c.FromRep(e.Children[0]), c.FromRep(e.Children[1]))
	}
	panic("FromRep: unknown rep kind")
}

// ApplyPath walks a derivation path through a routine's components.
func ApplyPath(g TypeGC, path []code.PathStep) TypeGC {
	for _, s := range path {
		g = g.Child(s)
	}
	return g
}

// ---------------------------------------------------------------------------
// Node implementations.
// ---------------------------------------------------------------------------

type constG struct{ id int }

func (g *constG) gcID() int { return g.id }

// Trace on unboxed values is the identity (const_gc).
func (g *constG) Trace(c *Collector, w code.Word) code.Word { return w }

// Child of an opaque routine is opaque (defensive; parametric positions).
func (g *constG) Child(code.PathStep) TypeGC { return g }

type refG struct {
	id   int
	elem TypeGC
}

func (g *refG) gcID() int { return g.id }

func (g *refG) Child(step code.PathStep) TypeGC { return g.elem }

func (g *refG) Trace(c *Collector, w code.Word) code.Word {
	if !code.IsBoxedValue(c.Heap.Repr, w) {
		return w
	}
	nw, fresh := c.Heap.VisitObject(w, 1)
	if !fresh {
		return nw
	}
	c.Stats.ObjectsCopied++
	c.setField(nw, 0, g.elem.Trace(c, c.Heap.Field(nw, 0)), g.elem)
	return nw
}

type tupleG struct {
	id     int
	fields []TypeGC
}

func (g *tupleG) gcID() int { return g.id }

func (g *tupleG) Child(step code.PathStep) TypeGC { return g.fields[step.Index] }

func (g *tupleG) Trace(c *Collector, w code.Word) code.Word {
	if !code.IsBoxedValue(c.Heap.Repr, w) {
		return w
	}
	nw, fresh := c.Heap.VisitObject(w, len(g.fields))
	if !fresh {
		return nw
	}
	c.Stats.ObjectsCopied++
	for i, f := range g.fields {
		c.setField(nw, i, f.Trace(c, c.Heap.Field(nw, i)), f)
	}
	return nw
}

type dataG struct {
	id       int
	layoutID int
	layout   *code.DataLayout
	args     []TypeGC
}

func (g *dataG) gcID() int { return g.id }

func (g *dataG) Child(step code.PathStep) TypeGC { return g.args[step.Index] }

// Trace copies a datatype value. Recursive tail fields whose routine is g
// itself (list spines, tree right-spines) are traced iteratively so a long
// list does not consume host stack proportional to its length.
func (g *dataG) Trace(c *Collector, w code.Word) code.Word {
	head := code.Word(0)
	haveHead := false
	var prevPtr code.Word // last copied object; its tail field awaits a link
	prevField := -1
	link := func(v code.Word) {
		if prevField >= 0 {
			c.setField(prevPtr, prevField, v, g) // the tail field's routine is g itself
		} else if !haveHead {
			head = v
			haveHead = true
		}
	}
	for {
		if !code.IsBoxedValue(c.Heap.Repr, w) {
			link(w)
			return head0(head, haveHead, w)
		}
		off := 0
		tag := 0
		if g.layout.HasTagWord {
			tag = int(code.DecodeInt(c.Heap.Repr, c.Heap.Field(w, 0)))
			off = 1
		}
		fields := g.layout.Boxed[tag].Fields
		nw, fresh := c.Heap.VisitObject(w, off+len(fields))
		link(nw)
		if !fresh {
			return head0(head, haveHead, nw)
		}
		c.Stats.ObjectsCopied++

		tailField := -1
		for i, fd := range fields {
			fgc := c.FromDesc(fd, g.args)
			if fgc == g && i == len(fields)-1 {
				tailField = off + i
				continue
			}
			c.setField(nw, off+i, fgc.Trace(c, c.Heap.Field(nw, off+i)), fgc)
		}
		if tailField < 0 {
			return head0(head, haveHead, nw)
		}
		prevPtr, prevField = nw, tailField
		w = c.Heap.Field(nw, tailField)
	}
}

// head0 returns the chain head, or the sole value when nothing was copied
// into the chain yet.
func head0(head code.Word, haveHead bool, v code.Word) code.Word {
	if haveHead {
		return head
	}
	return v
}

type arrowG struct {
	id       int
	dom, cod TypeGC
}

func (g *arrowG) gcID() int { return g.id }

func (g *arrowG) Child(step code.PathStep) TypeGC {
	if step.Kind == 0 {
		return g.dom
	}
	return g.cod
}

// Trace copies a closure. The function identity comes from the code
// pointer (field 0), exactly the paper's "word preceding the code" lookup
// (§2.2); capture types resolve against the function's type environment,
// derived from this routine's own dom/cod (Figure 4) and from rep words
// stored at creation.
func (g *arrowG) Trace(c *Collector, w code.Word) code.Word {
	if !code.IsBoxedValue(c.Heap.Repr, w) {
		return w // null placeholder of a not-yet-patched recursive closure
	}
	fidx := int(code.DecodeInt(c.Heap.Repr, c.Heap.Field(w, 0)))
	fi := c.Prog.Funcs[fidx]
	size := 1 + fi.NumRepWords + len(fi.Captures)
	nw, fresh := c.Heap.VisitObject(w, size)
	if !fresh {
		return nw
	}
	c.Stats.ObjectsCopied++

	env := c.closureEnv(fi, nw, g)
	for i, capDesc := range fi.Captures {
		off := 1 + fi.NumRepWords + i
		fgc := c.FromDesc(capDesc, env)
		c.setField(nw, off, fgc.Trace(c, c.Heap.Field(nw, off)), fgc)
	}
	return nw
}

// closureEnv reconstructs a closure's type environment from the reference
// routine (derivable entries) and its stored rep words.
func (c *Collector) closureEnv(fi *code.FuncInfo, clos code.Word, ref TypeGC) []TypeGC {
	if fi.TypeEnvLen == 0 {
		return nil
	}
	env := make([]TypeGC, fi.TypeEnvLen)
	for i := 0; i < fi.TypeEnvLen; i++ {
		if fi.RepWord != nil && fi.RepWord[i] >= 0 {
			h := int(code.DecodeInt(c.Heap.Repr, c.Heap.Field(clos, 1+fi.RepWord[i])))
			env[i] = c.FromRep(h)
			continue
		}
		if fi.Derivs != nil && fi.Derivs[i] != nil && ref != nil {
			env[i] = ApplyPath(ref, fi.Derivs[i])
			continue
		}
		env[i] = c.b.Const()
	}
	return env
}

// Silence the unused-import check for heap in this file (used by siblings).
var _ = heap.Stats{}
