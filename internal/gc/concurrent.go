package gc

import (
	"time"

	"tagfree/internal/code"
	"tagfree/internal/heap"
)

// Mostly-concurrent marking for the mark/sweep discipline. A stop-the-world
// collection suspends every task for the whole mark phase; this mode splits
// the cycle into three parts so the mutator only ever stops for the two
// short ends:
//
//  1. Initial pause (ConcStart): snapshot the roots. Frame plans make this
//     cheap — the pure resolution half of a collection (taskJobs) walks
//     every stack without mutating anything, and the resolved root values
//     seed an explicit gray stack.
//  2. Incremental mark (ConcSlice): the scheduler runs bounded marking
//     increments at its existing suspension/safe points, interleaved with
//     task quanta. Each slice pops gray entries, claims objects through the
//     same VisitShared CAS the parallel marker uses, and pushes their
//     children back gray. While the cycle is active the OpStFld typed write
//     barrier grays every re-pointed target (ConcBarrier): the incremental-
//     update discipline. New objects are born white; a mark slice never
//     runs between an allocation and its initializing stores (slices only
//     run at safe points), so a new object is reachable either through a
//     barriered store into a black object or through a root the final
//     pause re-scans.
//  3. Final pause (ConcFinish): drain the residual gray set, then re-run
//     every stack's (memoized, cheap) frame-trace plan plus the globals
//     through the ordinary serial marker — Trace stops at already-marked
//     objects, which is what bounds this pause — and sweep.
//
// The scheduler is single-goroutine (tasks interleave at quantum
// boundaries), so "concurrent" here is logical interleaving at safe
// points: fully deterministic, which is what lets the differential suite
// demand gc.LiveSignature bit-equality against the stop-the-world oracle.
// Concurrent marking may retain floating garbage (an object that died
// mid-cycle after being marked), so the marked SET can be a superset of a
// stop-the-world mark — but the live graph, and therefore the signature
// and the verifier's typed re-walk, are identical.
//
// The watchdog rung: a cycle that fails to drain its gray queue within
// ConcMaxSlices increments (a store-heavy mutator regraying faster than
// slices mark) is aborted — marks reset, ConcAborts counted — and the
// caller falls back to an ordinary stop-the-world collection. Any
// stop-the-world collection entered while a cycle is active (the OOM
// recovery ladder, torture mode, a forced major) likewise aborts the cycle
// first, automatically, at the top of CollectFull.

// grayEntry is one pending trace: a value and the routine describing it.
type grayEntry struct {
	w code.Word
	g TypeGC
}

// concCycle is the state of one in-flight concurrent mark cycle.
type concCycle struct {
	gray []grayEntry
	// maxSlices is the cycle's resolved watchdog budget.
	maxSlices int64
	// Telemetry for the finishing record's Conc block.
	initialPauseNS int64
	markSlices     int64
	sliceWords     int64
	barrierGrays   int64
	// Cycle-start snapshots, so the finishing record's deltas cover the
	// whole cycle (snapshot resolution, every slice, the final pause).
	statsBefore   Stats
	heapBefore    heap.Stats
	usedBefore    int
	markedAtStart int64
}

// DefaultConcMarkBudget is the per-slice marking budget in heap words when
// Collector.ConcMarkBudget is zero.
const DefaultConcMarkBudget = 4096

// ConcSliceResult reports what a marking increment left behind.
type ConcSliceResult int

const (
	// ConcMore: gray entries remain; keep interleaving slices.
	ConcMore ConcSliceResult = iota
	// ConcDrained: the gray queue is empty; run ConcFinish at the next
	// safe point.
	ConcDrained
	// ConcOverBudget: the slice budget elapsed with gray work remaining.
	// The caller must ConcAbort and fall back to stop-the-world.
	ConcOverBudget
)

// ConcActive reports whether a concurrent mark cycle is in flight.
func (c *Collector) ConcActive() bool { return c.conc != nil }

// ConcStart begins a concurrent mark cycle: the initial pause. It
// snapshots every task's root set (values + routines) and the globals onto
// the gray stack without marking anything, so the pause cost is exactly
// the pure resolution half of a collection. Mark/sweep, non-nursery,
// typed strategies only.
func (c *Collector) ConcStart(tasks []TaskRoots, globals []code.Word) {
	if c.conc != nil {
		panic("gc: ConcStart: a concurrent cycle is already active")
	}
	if c.Heap.Kind() != heap.MarkSweep || c.Strat == StratTagged || c.nurseryOn() {
		panic("gc: ConcStart: concurrent marking requires a non-nursery mark/sweep heap and a typed strategy")
	}
	if c.HeapLiveness {
		// Liveness-guided pruning never composes with a concurrent cycle:
		// the snapshot roots predate the final pause's verdicts, so the
		// whole cycle traces in full. Counted once per cycle, here.
		c.Liveness.DegradedConcurrent++
	}
	start := time.Now()
	cy := &concCycle{
		statsBefore:   c.Stats,
		heapBefore:    c.Heap.Stats,
		usedBefore:    c.Heap.Used(),
		markedAtStart: c.Heap.Stats.WordsCopied,
	}
	budget := int64(c.ConcMarkBudget)
	if budget <= 0 {
		budget = DefaultConcMarkBudget
	}
	cy.maxSlices = int64(c.ConcMaxSlices)
	if cy.maxSlices <= 0 {
		// Derived watchdog: marking visits at most the heap's words once,
		// so 8× that many budgeted slices only trips when barrier regraying
		// outruns the slices for the whole cycle.
		cy.maxSlices = 64 + 8*int64(c.Heap.SemiWords())/budget
	}
	for i, g := range c.Prog.Globals {
		cy.gray = append(cy.gray, grayEntry{w: globals[i], g: c.FromDesc(g.Desc, nil)})
	}
	sc := c.scratch0()
	sc.reset()
	for i := range tasks {
		jobs := c.taskJobs(tasks[i], &c.Stats, sc)
		for j := range jobs {
			cy.gray = append(cy.gray, grayEntry{w: tasks[i].Stack[jobs[j].idx], g: jobs[j].g})
			c.Stats.SlotsTraced++
		}
	}
	cy.initialPauseNS = time.Since(start).Nanoseconds()
	c.Stats.PauseNS += cy.initialPauseNS
	c.conc = cy
}

// ConcSlice runs one bounded marking increment: pop gray entries, mark,
// push children, until ConcMarkBudget words are claimed or the queue
// drains. Call only at mutator safe points (between task quanta, at
// allocation boundaries) — never between an allocation and its
// initializing stores.
func (c *Collector) ConcSlice() ConcSliceResult {
	cy := c.conc
	if cy == nil {
		panic("gc: ConcSlice without an active cycle")
	}
	if len(cy.gray) == 0 {
		return ConcDrained
	}
	if cy.markSlices >= cy.maxSlices {
		return ConcOverBudget
	}
	budget := int64(c.ConcMarkBudget)
	if budget <= 0 {
		budget = DefaultConcMarkBudget
	}
	cy.markSlices++
	var words int64
	for words < budget && len(cy.gray) > 0 {
		e := cy.gray[len(cy.gray)-1]
		cy.gray = cy.gray[:len(cy.gray)-1]
		words += c.concMark(e.g, e.w)
	}
	cy.sliceWords += words
	if len(cy.gray) == 0 {
		return ConcDrained
	}
	return ConcMore
}

// ConcBarrier grays the target of a mutator store executed while a cycle
// is active — the incremental-update write barrier. desc is the stored
// value's static descriptor from Program.StoreDescs. A non-ground
// descriptor cannot be resolved outside its frame (the same limit the
// generational barrier hits); the cycle is aborted and the heap falls back
// to an ordinary stop-the-world collection at the next trigger.
func (c *Collector) ConcBarrier(desc *code.TypeDesc, v code.Word) {
	cy := c.conc
	if cy == nil || !code.IsBoxedValue(c.Heap.Repr, v) {
		return
	}
	g, ok := c.storeRoutine(desc)
	if !ok {
		c.ConcAbort()
		return
	}
	if c.Heap.MarkedShared(v) {
		return
	}
	cy.gray = append(cy.gray, grayEntry{w: v, g: g})
	cy.barrierGrays++
}

// ConcFinish completes the cycle: the bounded final pause. The residual
// gray set is drained first (establishing that every marked object's
// children are marked), then every stack and the globals are re-scanned
// through the ordinary serial path — Trace stops at marked objects, so the
// re-scan only pays for what the mutator created or re-pointed since the
// snapshot — and the sweep runs inside the usual BeginGC/EndGC window.
func (c *Collector) ConcFinish(tasks []TaskRoots, globals []code.Word) {
	cy := c.conc
	if cy == nil {
		panic("gc: ConcFinish without an active cycle")
	}
	if c.PreCollect != nil {
		c.PreCollect()
	}
	start := time.Now()
	c.Stats.Collections++
	c.lastMinor = false
	c.resetScratches()
	c.Heap.BeginGC()
	for len(cy.gray) > 0 {
		e := cy.gray[len(cy.gray)-1]
		cy.gray = cy.gray[:len(cy.gray)-1]
		c.concMark(e.g, e.w)
	}
	c.traceGlobals(globals)
	scans := make([]TaskScan, len(tasks))
	c.collectSerial(tasks, scans)
	c.Stats.TypeGCBuilt = c.b.Built
	c.Heap.EndGC()
	finalPause := time.Since(start).Nanoseconds()
	c.Stats.PauseNS += finalPause
	c.conc = nil
	c.Telem.record(c, "", 0, cy.initialPauseNS+finalPause, false, false, scans,
		cy.usedBefore, cy.statsBefore, cy.heapBefore)
	c.Telem.Records[len(c.Telem.Records)-1].Conc = &ConcRecord{
		InitialPauseNS: cy.initialPauseNS,
		FinalPauseNS:   finalPause,
		MarkSlices:     cy.markSlices,
		SliceWords:     cy.sliceWords,
		BarrierGrays:   cy.barrierGrays,
	}
	if c.Verify {
		c.verifyCollection(tasks, globals)
	}
}

// ConcAbort abandons an active cycle: marks reset, the marked-word counter
// rolled back to the cycle start, the abort counted. A no-op without an
// active cycle, so stop-the-world entry points may call it
// unconditionally. The trace-work counters (frames, slots, objects) keep
// the cycle's contribution — the work was really done — but the next
// collection's record snapshots its own baselines, so no record mixes the
// two.
func (c *Collector) ConcAbort() {
	cy := c.conc
	if cy == nil {
		return
	}
	c.Heap.ResetMarks()
	c.Heap.Stats.WordsCopied = cy.markedAtStart
	c.Telem.Resilience.ConcAborts++
	c.conc = nil
}

// concMark traces one gray entry: claim the object through the VisitShared
// CAS, account its words, push its children gray. The explicit stack
// replaces markValue's recursion so a slice can stop between objects.
// Field values are read at mark time: once the object is black, any later
// re-pointing goes through ConcBarrier.
func (c *Collector) concMark(g TypeGC, w code.Word) int64 {
	repr := c.Heap.Repr
	switch g := g.(type) {
	case *constG:
		return 0
	case *refG:
		if !code.IsBoxedValue(repr, w) {
			return 0
		}
		if _, fresh := c.Heap.VisitShared(w, 1); !fresh {
			return 0
		}
		c.Stats.ObjectsCopied++
		c.concPush(c.Heap.Field(w, 0), g.elem)
		return 1
	case *tupleG:
		if !code.IsBoxedValue(repr, w) {
			return 0
		}
		if _, fresh := c.Heap.VisitShared(w, len(g.fields)); !fresh {
			return 0
		}
		c.Stats.ObjectsCopied++
		for i, f := range g.fields {
			c.concPush(c.Heap.Field(w, i), f)
		}
		return int64(len(g.fields))
	case *dataG:
		if !code.IsBoxedValue(repr, w) {
			return 0
		}
		off, tag := 0, 0
		if g.layout.HasTagWord {
			tag = int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
			off = 1
		}
		fields := g.layout.Boxed[tag].Fields
		if _, fresh := c.Heap.VisitShared(w, off+len(fields)); !fresh {
			return 0
		}
		c.Stats.ObjectsCopied++
		for i, fd := range fields {
			c.concPush(c.Heap.Field(w, off+i), c.FromDesc(fd, g.args))
		}
		return int64(off + len(fields))
	case *arrowG:
		if !code.IsBoxedValue(repr, w) {
			return 0 // null placeholder of a not-yet-patched recursive closure
		}
		fidx := int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
		fi := c.Prog.Funcs[fidx]
		size := 1 + fi.NumRepWords + len(fi.Captures)
		if _, fresh := c.Heap.VisitShared(w, size); !fresh {
			return 0
		}
		c.Stats.ObjectsCopied++
		env := c.closureEnv(fi, w, g)
		for i, capDesc := range fi.Captures {
			c.concPush(c.Heap.Field(w, 1+fi.NumRepWords+i), c.FromDesc(capDesc, env))
		}
		return int64(size)
	}
	panic("gc: concMark: unknown TypeGC node")
}

// concPush queues one child value; const-typed children are dropped at the
// push (they can only ever trace to nothing).
func (c *Collector) concPush(w code.Word, g TypeGC) {
	if _, isConst := g.(*constG); isConst {
		return
	}
	c.conc.gray = append(c.conc.gray, grayEntry{w: w, g: g})
}
