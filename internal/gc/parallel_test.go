package gc_test

// Parallel-collection hardening: the parallel path must be free of data
// races (run these under `go test -race`), must produce heaps
// bit-identical to the sequential oracle's, and must be independent of the
// order workers claim task stacks in. The tests drive the real tasking
// runtime over the multi-task workload corpus rather than synthetic roots,
// so every strategy's full root-resolution path (frame chains, gc_word
// lookups, Appel chain walks, descriptor decoding) runs concurrently.

import (
	"fmt"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/pipeline"
	"tagfree/internal/tasking"
	"tagfree/internal/workloads"
)

// runGroup executes a task workload with full control over the collector
// knobs, returning each task's raw result and the final heap image.
func runGroup(t *testing.T, w workloads.TaskWorkload, strat gc.Strategy, ms bool, par int, seed int64) ([]code.Word, []code.Word) {
	t.Helper()
	prog, _, err := pipeline.Build(w.Source, pipeline.Options{
		Strategy:             strat,
		DisableGCWordElision: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]int, len(w.Entries))
	for i, name := range w.Entries {
		entries[i] = prog.FuncByName(name)
		if entries[i] < 0 {
			t.Fatalf("no function %s", name)
		}
	}
	var g *tasking.Group
	if ms {
		g, err = tasking.NewGroupWith(prog, heap.NewMarkSweep(prog.Repr, 2*w.HeapWords), strat, entries)
	} else {
		g, err = tasking.NewGroup(prog, w.HeapWords, strat, entries)
	}
	if err != nil {
		t.Fatal(err)
	}
	g.Col.Parallelism = par
	g.Col.ScanSeed = seed
	if err := g.RunInit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Stats.Collections == 0 {
		t.Fatalf("no collections — workload exerts no heap pressure")
	}
	results := make([]code.Word, len(g.Tasks))
	for i, task := range g.Tasks {
		results[i] = task.Result
	}
	return results, g.Heap.MemSnapshot()
}

func wordsEqual(a, b []code.Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelSequentialBitIdentical is the central parallel-correctness
// claim: for every workload, strategy and heap discipline, a 4-worker
// collection history leaves every single heap word equal to the
// sequential oracle's.
func TestParallelSequentialBitIdentical(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel} {
			for _, ms := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/ms=%v", w.Name, strat, ms)
				t.Run(name, func(t *testing.T) {
					seqRes, seqMem := runGroup(t, w, strat, ms, 1, 0)
					parRes, parMem := runGroup(t, w, strat, ms, 4, 0)
					if !wordsEqual(seqRes, parRes) {
						t.Fatalf("results diverge: seq %v par %v", seqRes, parRes)
					}
					if !wordsEqual(seqMem, parMem) {
						t.Fatalf("heap images diverge (%d words)", len(seqMem))
					}
				})
			}
		}
	}
}

// TestParallelScanOrderIndependence shuffles the order workers claim task
// stacks in (deterministically, by seed) and requires the identical final
// heap: the parallel design may not depend on which worker scans which
// task first.
func TestParallelScanOrderIndependence(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	for _, ms := range []bool{false, true} {
		t.Run(fmt.Sprintf("ms=%v", ms), func(t *testing.T) {
			baseRes, baseMem := runGroup(t, w, gc.StratCompiled, ms, 4, 0)
			for _, seed := range []int64{1, 7, 42} {
				res, mem := runGroup(t, w, gc.StratCompiled, ms, 4, seed)
				if !wordsEqual(baseRes, res) {
					t.Fatalf("seed %d: results diverge: %v vs %v", seed, baseRes, res)
				}
				if !wordsEqual(baseMem, mem) {
					t.Fatalf("seed %d: heap image diverges", seed)
				}
			}
		})
	}
}

// stressSrc spawns eight churn tasks with distinct offsets; under a tiny
// heap every scheduling turn is near a collection, so parallel scans are
// constantly in flight. Run with -race.
const stressSrc = `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (upto 20)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + round ())
let t0 () = work 25 0
let t1 () = work 25 100
let t2 () = work 25 200
let t3 () = work 25 300
let t4 () = work 25 400
let t5 () = work 25 500
let t6 () = work 25 600
let t7 () = work 25 700
`

// TestParallelStress runs many tasks over a tiny heap with 4 workers, for
// every strategy and discipline, so the race detector sees the parallel
// path under constant collection pressure.
func TestParallelStress(t *testing.T) {
	entries := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	want := make([]int64, len(entries))
	for i := range want {
		want[i] = int64(25*210 + i*100)
	}
	for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel} {
		for _, ms := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/ms=%v", strat, ms), func(t *testing.T) {
				res, err := pipeline.RunTasks(stressSrc, entries, pipeline.Options{
					Strategy:    strat,
					HeapWords:   2048,
					MarkSweep:   ms,
					Parallelism: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range want {
					if res.Values[i] != v {
						t.Fatalf("task %d = %d, want %d", i, res.Values[i], v)
					}
				}
				if res.Stats.Collections == 0 {
					t.Fatal("no collections under a tiny heap")
				}
			})
		}
	}
}

// TestSuspendedCallArgsTracedOnce is the regression test for a latent
// sequential-collector bug the differential suite exposed: a task
// suspended at a call has its staged argument slots traced through the
// site's argument map, and Appel mode's trace-everything slot walk
// already covers those slots. Tracing a slot twice in a copying
// collection dereferences the to-space pointer the first trace wrote
// there — an out-of-bounds forwarding lookup and a crash. The fix traces
// each slot at most once per frame.
func TestSuspendedCallArgsTracedOnce(t *testing.T) {
	w, ok := workloads.TaskByName("taskpoly")
	if !ok {
		t.Fatal("taskpoly workload missing")
	}
	res, err := pipeline.RunTasks(w.Source, w.Entries, pipeline.Options{
		Strategy:  gc.StratAppel,
		HeapWords: w.HeapWords,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range w.Expect {
		if res.Values[i] != e {
			t.Fatalf("task %d = %d, want %d", i, res.Values[i], e)
		}
	}
}
