package gc

import (
	"fmt"
	"strings"

	"tagfree/internal/code"
)

// Post-collection verification, GC side. heap.VerifyHeap checks the
// discipline's structural invariants (tiling, forwarding reset, free-list
// disjointness); this file adds the semantic half: re-resolve every root
// the collector just traced — globals and each task's frame slots — and
// re-walk the reachable structure read-only, checking that every pointer
// lands on a live block of exactly the extent its type says it has. A
// violation here means the collector retained a dangling pointer, copied
// an object with the wrong extent, or left a root pointing into garbage.
//
// Verification runs outside the measured pause (the invariants hold until
// the mutator allocates again) and only under Collector.Verify. A corrupt
// heap is not a per-task condition — every task shares it — so violations
// panic with a *VerifyError rather than faulting one task.

// VerifyError aggregates heap-verifier violations from one collection.
type VerifyError struct {
	Collection int64
	Violations []error
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heap verification failed after collection %d (%d violations)", e.Collection, len(e.Violations))
	for i, v := range e.Violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(e.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %v", v)
	}
	return b.String()
}

// verifyCollection checks the just-finished collection's invariants,
// structural (heap.VerifyHeap) and semantic (typed re-walk of all roots).
func (c *Collector) verifyCollection(tasks []TaskRoots, globals []code.Word) {
	errs := c.Heap.VerifyHeap()
	if c.Strat != StratTagged {
		v := &verifier{c: c, seen: map[code.Word]bool{}}
		for i, g := range c.Prog.Globals {
			v.where = fmt.Sprintf("global %d (%s)", i, g.Name)
			v.walk(c.FromDesc(g.Desc, nil), globals[i])
		}
		var st Stats // resolution stats of the re-walk are discarded
		sc := c.scratch0()
		sc.reset() // the collection's own windows are dead by now
		for i := range tasks {
			for _, j := range c.taskJobs(tasks[i], &st, sc) {
				v.where = fmt.Sprintf("task %d stack slot %d", i, j.idx)
				v.walk(j.g, tasks[i].Stack[j.idx])
			}
		}
		errs = append(errs, v.errs...)
	}
	if len(errs) > 0 {
		panic(&VerifyError{Collection: c.Heap.Stats.Collections, Violations: errs})
	}
}

// verifier re-walks reachable structure read-only. seen keys on the
// pointer word: objects never move between EndGC and the walk, and each
// object is checked through every root type that reaches it first.
type verifier struct {
	c     *Collector
	seen  map[code.Word]bool
	where string
	errs  []error
}

func (v *verifier) checkBlock(w code.Word, n int) bool {
	if v.seen[w] {
		return false
	}
	v.seen[w] = true
	if err := v.c.Heap.CheckLive(w, n); err != nil {
		v.errs = append(v.errs, fmt.Errorf("reachable from %s: %v", v.where, err))
		return false
	}
	return true
}

// walk mirrors markValue's structure: same type dispatch, same dataG
// tail-spine iteration, but checking extents instead of setting marks.
func (v *verifier) walk(g TypeGC, w code.Word) {
	c := v.c
	repr := c.Heap.Repr
	switch g := g.(type) {
	case *constG:
		return
	case *refG:
		if !code.IsBoxedValue(repr, w) || !v.checkBlock(w, 1) {
			return
		}
		v.walk(g.elem, c.Heap.Field(w, 0))
	case *tupleG:
		if !code.IsBoxedValue(repr, w) || !v.checkBlock(w, len(g.fields)) {
			return
		}
		for i, f := range g.fields {
			v.walk(f, c.Heap.Field(w, i))
		}
	case *dataG:
		for {
			if !code.IsBoxedValue(repr, w) {
				return
			}
			off, tag := 0, 0
			if g.layout.HasTagWord {
				tag = int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
				off = 1
			}
			if tag < 0 || tag >= len(g.layout.Boxed) {
				v.errs = append(v.errs, fmt.Errorf("reachable from %s: constructor tag %d outside layout (%d boxed forms)",
					v.where, tag, len(g.layout.Boxed)))
				return
			}
			fields := g.layout.Boxed[tag].Fields
			if !v.checkBlock(w, off+len(fields)) {
				return
			}
			tailField := -1
			for i, fd := range fields {
				fgc := c.FromDesc(fd, g.args)
				if fgc == g && i == len(fields)-1 {
					tailField = off + i
					continue
				}
				v.walk(fgc, c.Heap.Field(w, off+i))
			}
			if tailField < 0 {
				return
			}
			w = c.Heap.Field(w, tailField)
		}
	case *arrowG:
		if !code.IsBoxedValue(repr, w) {
			return
		}
		fidx := int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
		if fidx < 0 || fidx >= len(c.Prog.Funcs) {
			v.errs = append(v.errs, fmt.Errorf("reachable from %s: closure code index %d outside program (%d functions)",
				v.where, fidx, len(c.Prog.Funcs)))
			return
		}
		fi := c.Prog.Funcs[fidx]
		size := 1 + fi.NumRepWords + len(fi.Captures)
		if !v.checkBlock(w, size) {
			return
		}
		env := c.closureEnv(fi, w, g)
		for i, capDesc := range fi.Captures {
			v.walk(c.FromDesc(capDesc, env), c.Heap.Field(w, 1+fi.NumRepWords+i))
		}
	default:
		panic("gc: verifier: unknown TypeGC node")
	}
}
