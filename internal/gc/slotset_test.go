package gc

import (
	"fmt"
	"testing"
)

func TestSlotSet(t *testing.T) {
	var s slotSet
	probe := []int{0, 1, 63, 64, 65, 127, 128, 300, 1000}
	for _, slot := range probe {
		if s.has(slot) {
			t.Fatalf("empty set has slot %d", slot)
		}
	}
	for i, slot := range probe {
		if i%2 == 0 {
			s.add(slot)
		}
	}
	for i, slot := range probe {
		want := i%2 == 0
		if s.has(slot) != want {
			t.Fatalf("slot %d: has=%v want %v", slot, s.has(slot), want)
		}
	}
	// Idempotent re-add.
	s.add(0)
	s.add(1000)
	if !s.has(0) || !s.has(1000) {
		t.Fatal("re-add lost membership")
	}
}

// BenchmarkSlotDedupe compares the suspended-call dedupe structures: the
// linear scan the collector used (O(slots) membership ⇒ O(slots²) per
// suspended frame) against the slotSet bitset. Wide frames — generated
// code with many live temporaries — are where the quadratic scan hurt.
func BenchmarkSlotDedupe(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		slots := make([]int, n)
		for i := range slots {
			slots[i] = i
		}
		b.Run(fmt.Sprintf("linear/slots=%d", n), func(b *testing.B) {
			for b.Loop() {
				traced := make([]int, 0, n)
				for _, s := range slots {
					traced = append(traced, s)
				}
				hits := 0
				for _, s := range slots {
					for _, tr := range traced {
						if tr == s {
							hits++
							break
						}
					}
				}
				if hits != n {
					b.Fatal("bad dedupe")
				}
			}
		})
		b.Run(fmt.Sprintf("bitset/slots=%d", n), func(b *testing.B) {
			for b.Loop() {
				var traced slotSet
				for _, s := range slots {
					traced.add(s)
				}
				hits := 0
				for _, s := range slots {
					if traced.has(s) {
						hits++
					}
				}
				if hits != n {
					b.Fatal("bad dedupe")
				}
			}
		})
	}
}
