package gc

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tagfree/internal/code"
	"tagfree/internal/heap"
)

// Parallel collection (the §4 tasking extension on multi-core hardware).
//
// A frame routine is pure over compiler metadata: resolving a frame's site,
// type arguments and slot routines reads only the program, the (stopped)
// stacks and un-moved heap words. Only heap mutation needs coordination —
// forwarding in copying mode, mark bits in mark/sweep mode. The two
// disciplines therefore parallelize differently:
//
//   - Copying: workers resolve every task's root set into job lists
//     concurrently (phase 1: frame chains, gc_word lookups, type-argument
//     resolution — including Appel mode's O(n²) chain re-walks — and
//     descriptor decoding), then one goroutine applies the traces in task
//     order (phase 2). Tracing order equals the sequential collector's
//     exactly, so to-space layout is bit-identical to the oracle.
//   - Mark/sweep: objects never move and marking is idempotent, so workers
//     mark concurrently, claiming objects with an atomic compare-and-swap
//     (heap.VisitShared). Nothing writes heap words, and the serial sweep
//     rebuilds free lists deterministically, so the final heap is
//     bit-identical regardless of scan order.
//
// Workers keep local Stats merged in task order after the join; totals are
// deterministic either way. The only nondeterminism the parallel path
// admits is mark/sweep per-task attribution of structure shared between
// tasks (whichever worker's CAS wins owns the words) — totals still agree.

// rootJob is one resolved root: a stack slot, the routine tracing it, and
// the specialized kernel chosen for it at plan-build time (kGeneric when
// the fast path is off or the shape needs full dispatch).
type rootJob struct {
	idx   int // absolute index into the task's stack
	g     TypeGC
	k     kernel
	spine *spineKernel
	box   *boxKernel
}

// planJob converts a resolved plan slot into a root job. Pruning kernels
// are deliberately not carried over: the parallel paths never prune
// (beginPrune refuses them), so jobs always trace in full.
func planJob(base int, ps *planSlot) rootJob {
	return rootJob{idx: base + ps.slot, g: ps.g, k: ps.k, spine: ps.spine, box: ps.box}
}

// traceJob traces one resolved root on the ordered phase-2 path, through
// its kernel when one was selected.
func (c *Collector) traceJob(j *rootJob, w code.Word) code.Word {
	if j.k == kGeneric {
		return j.g.Trace(c, w)
	}
	ps := planSlot{g: j.g, k: j.k, spine: j.spine, box: j.box}
	return c.traceKernel(&ps, w, &c.Stats)
}

// collectParallel scans all task stacks with c.Parallelism workers.
// Globals were already traced serially by Collect (the mark path needs
// them again — with the marked-word baseline markedAtStart — to rebuild
// state discarded after a watchdog abort). It returns false when the
// watchdog aborted the parallel scan and the sequential fallback finished
// the collection instead.
func (c *Collector) collectParallel(tasks []TaskRoots, scans []TaskScan, globals []code.Word, markedAtStart int64) bool {
	if c.Heap.Kind() == heap.MarkSweep {
		return c.collectParallelMark(tasks, scans, globals, markedAtStart)
	}
	return c.collectParallelCopy(tasks, scans)
}

// scanOrder returns the order workers claim task stacks in: identity, or a
// seeded shuffle when ScanSeed is set (order-independence tests).
func (c *Collector) scanOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if c.ScanSeed != 0 {
		rng := rand.New(rand.NewSource(c.ScanSeed))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	return order
}

// runWorkers fans scan over the task indexes with min(Parallelism, n)
// goroutines pulling from a shared atomic cursor; scan receives the worker
// index (for per-worker scratch arenas) and the claimed task index. It
// returns false when
// the fault plan's watchdog expired before the workers finished: stacks
// not yet claimed are skipped, in-flight scans run to completion (a scan
// cannot be interrupted mid-object safely), and the caller must discard
// the partial work and fall back to the sequential path.
func (c *Collector) runWorkers(n int, scan func(worker, i int)) bool {
	order := c.scanOrder(n)
	workers := c.Parallelism
	if workers > n {
		workers = n
	}
	var delay time.Duration
	var watchdog <-chan time.Time
	if c.Faults != nil {
		delay = c.Faults.WorkerDelay
		if c.Faults.Watchdog > 0 {
			timer := time.NewTimer(c.Faults.Watchdog)
			defer timer.Stop()
			watchdog = timer.C
		}
	}
	var aborted atomic.Bool
	var cursor int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if aborted.Load() {
					return
				}
				k := atomic.AddInt64(&cursor, 1)
				if k >= int64(n) {
					return
				}
				if delay > 0 {
					time.Sleep(delay)
					if aborted.Load() {
						return // stalled past the watchdog: skip the claimed stack
					}
				}
				scan(worker, order[k])
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-watchdog:
		aborted.Store(true)
		<-done // join in-flight scans before touching shared state
		c.Telem.Resilience.WatchdogTrips++
		return false
	}
}

// mergeStats folds a worker's local counters into the collector's.
func mergeStats(into, from *Stats) {
	into.FramesTraced += from.FramesTraced
	into.SlotsTraced += from.SlotsTraced
	into.ObjectsCopied += from.ObjectsCopied
	into.DescBytesDecoded += from.DescBytesDecoded
	into.ChainSteps += from.ChainSteps
	into.WordsScanned += from.WordsScanned
	into.PlanHits += from.PlanHits
	into.PlanMisses += from.PlanMisses
	into.SiteCacheHits += from.SiteCacheHits
	into.SiteCacheMisses += from.SiteCacheMisses
	into.KernelWords += from.KernelWords
}

// ---------------------------------------------------------------------------
// Copying: parallel resolution, ordered tracing.
// ---------------------------------------------------------------------------

func (c *Collector) collectParallelCopy(tasks []TaskRoots, scans []TaskScan) bool {
	jobLists := make([][]rootJob, len(tasks))
	local := make([]Stats, len(tasks))
	if !c.runWorkers(len(tasks), func(w, i int) {
		jobLists[i] = c.taskJobs(tasks[i], &local[i], c.scratches[w])
	}) {
		// Watchdog abort. Phase 1 only read the stopped stacks and built
		// job lists; no heap or stack word was written, so the fallback can
		// simply discard them and run the sequential oracle.
		c.serialFallback(tasks, scans)
		return false
	}
	for i := range tasks {
		mergeStats(&c.Stats, &local[i])
		wordsBefore := c.Heap.Stats.WordsCopied
		objBefore := c.Stats.ObjectsCopied
		for j := range jobLists[i] {
			job := &jobLists[i][j]
			tasks[i].Stack[job.idx] = c.traceJob(job, tasks[i].Stack[job.idx])
			c.Stats.SlotsTraced++
		}
		scans[i] = TaskScan{
			Task:    i,
			Frames:  local[i].FramesTraced,
			Slots:   int64(len(jobLists[i])),
			Objects: c.Stats.ObjectsCopied - objBefore,
			Words:   c.Heap.Stats.WordsCopied - wordsBefore,
		}
	}
	return true
}

// serialFallback finishes an aborted parallel collection on the sequential
// path, producing the same heap the oracle would have.
func (c *Collector) serialFallback(tasks []TaskRoots, scans []TaskScan) {
	c.Telem.Resilience.SerialFallbacks++
	c.collectSerial(tasks, scans)
}

// ResolveRoots resolves every task's complete root set — frame chains,
// gc_word lookups, type-argument resolution, plan construction — without
// mutating the heap, the stacks or the collector's counters. It is the
// pure metadata half of a collection, exported so the benchmark harness
// (experiment E10) can time resolution separately from tracing. It
// returns the number of roots resolved. Tagged collections have no
// resolution phase (the scan is header-driven) and return 0.
func (c *Collector) ResolveRoots(tasks []TaskRoots) int {
	if c.Strat == StratTagged {
		return 0
	}
	c.prepareFastPath()
	// E10 calls this in a tight loop outside any collection; reset the
	// arena each time so repeated resolution does not accumulate.
	sc := c.scratch0()
	sc.reset()
	var st Stats
	total := 0
	for i := range tasks {
		total += len(c.taskJobs(tasks[i], &st, sc))
	}
	return total
}

// taskJobs resolves one task's complete root set without mutating the
// heap: the job list mirrors collectTask's trace order slot for slot. The
// returned slice lives in sc's arena, valid until the arena's next reset
// (the top of the next collection).
func (c *Collector) taskJobs(t TaskRoots, st *Stats, sc *scratch) []rootJob {
	fps, pcs := frameChain(t)
	fast := c.Strat == StratCompiled && !c.DisableFastPath
	jobs := sc.jobsWindow()
	var incoming pkg
	var ic planIC
	var prev *framePlan
	for i, fp := range fps {
		siteIdx, site := c.siteAtFast(pcs[i], st)
		fi := c.Prog.Funcs[site.Func]
		if fast {
			// Compiled fast path: the memoized plan already carries the
			// resolved slot routines, kernels, the deduplicated argument
			// map and the outgoing package, and the caller plan's edge
			// cache resolves warmed towers in O(1) per frame (fastpath.go).
			plan := c.planForEdge(prev, &ic, siteIdx, site, fi, incoming, t.Stack, fp, sc, st)
			base := fp + 2
			for k := range plan.slots {
				jobs = append(jobs, planJob(base, &plan.slots[k]))
			}
			if t.AtCall && i == len(fps)-1 {
				for k := range plan.args {
					jobs = append(jobs, planJob(base, &plan.args[k]))
				}
			}
			incoming, prev = plan.out, plan
			continue
		}
		var targs []TypeGC
		if c.Strat == StratAppel {
			targs = c.appelTypeArgs(t, fps, pcs, i, st, sc)
		} else {
			targs = c.frameTypeArgs(fi, incoming, t.Stack, fp, sc)
		}
		jobs = c.frameJobs(jobs, siteIdx, site, fi, fp, targs, t.AtCall && i == len(fps)-1, st)
		if i < len(fps)-1 && c.Strat != StratAppel {
			incoming = c.outgoing(site, targs)
		}
	}
	st.FramesTraced += int64(len(fps))
	sc.commitJobs(jobs)
	return jobs
}

// frameJobs appends one frame's root jobs in traceFrame's slot order.
func (c *Collector) frameJobs(jobs []rootJob, siteIdx int, site *code.SiteInfo, fi *code.FuncInfo, fp int, targs []TypeGC, atCall bool, st *Stats) []rootJob {
	base := fp + 2
	start := len(jobs)
	switch c.Strat {
	case StratCompiled:
		for _, tr := range c.compiledSites[siteIdx] {
			g := tr.ground
			if g == nil {
				g = c.FromDesc(tr.desc, targs)
			}
			jobs = append(jobs, rootJob{idx: base + tr.slot, g: g})
		}
	case StratInterp:
		jobs = c.interpFrameJobs(jobs, c.interpSites[siteIdx], base, targs, st)
	case StratAppel:
		for _, e := range fi.AllSlots {
			jobs = append(jobs, rootJob{idx: base + e.Slot, g: c.FromDesc(e.Desc, targs)})
		}
	}
	if atCall {
		// Mirror traceFrame's dedupe: a slot covered by both the frame walk
		// and the site's argument map is traced once only.
		var seen slotSet
		for _, j := range jobs[start:] {
			seen.add(j.idx - base)
		}
		for _, e := range site.Args {
			if seen.has(e.Slot) {
				continue
			}
			jobs = append(jobs, rootJob{idx: base + e.Slot, g: c.FromDesc(e.Desc, targs)})
		}
	}
	return jobs
}

// ---------------------------------------------------------------------------
// Mark/sweep: fully parallel marking.
// ---------------------------------------------------------------------------

func (c *Collector) collectParallelMark(tasks []TaskRoots, scans []TaskScan, globals []code.Word, markedAtStart int64) bool {
	local := make([]Stats, len(tasks))
	words := make([]int64, len(tasks))
	if !c.runWorkers(len(tasks), func(w, i int) {
		st := &local[i]
		jobs := c.taskJobs(tasks[i], st, c.scratches[w])
		for j := range jobs {
			job := &jobs[j]
			if job.k != kGeneric {
				ps := planSlot{g: job.g, k: job.k, spine: job.spine, box: job.box}
				words[i] += c.markKernel(&ps, tasks[i].Stack[job.idx], st)
			} else {
				words[i] += c.markValue(job.g, tasks[i].Stack[job.idx], st)
			}
			st.SlotsTraced++
		}
	}) {
		// Watchdog abort. Marking wrote mark bits and bumped the marked-word
		// counter but never moved an object or wrote a heap/stack word:
		// clear every mark (including the globals'), roll the counter back
		// to the top of the collection, and re-mark sequentially.
		c.Heap.ResetMarks()
		c.Heap.Stats.WordsCopied = markedAtStart
		c.traceGlobals(globals)
		c.serialFallback(tasks, scans)
		return false
	}
	for i := range tasks {
		mergeStats(&c.Stats, &local[i])
		scans[i] = TaskScan{
			Task:    i,
			Frames:  local[i].FramesTraced,
			Slots:   local[i].SlotsTraced,
			Objects: local[i].ObjectsCopied,
			Words:   words[i],
		}
	}
	return true
}

// markValue marks the structure reachable from one root without writing a
// single heap or stack word — the read-only twin of TypeGC.Trace for
// mark/sweep heaps (objects never move, so there is nothing to forward).
// It returns the words newly marked, for per-task telemetry. First visits
// are claimed through heap.VisitShared's compare-and-swap, making the walk
// safe for any number of concurrent workers.
func (c *Collector) markValue(g TypeGC, w code.Word, st *Stats) int64 {
	repr := c.Heap.Repr
	switch g := g.(type) {
	case *constG:
		return 0
	case *refG:
		if !code.IsBoxedValue(repr, w) {
			return 0
		}
		if _, fresh := c.Heap.VisitShared(w, 1); !fresh {
			return 0
		}
		st.ObjectsCopied++
		return 1 + c.markValue(g.elem, c.Heap.Field(w, 0), st)
	case *tupleG:
		if !code.IsBoxedValue(repr, w) {
			return 0
		}
		if _, fresh := c.Heap.VisitShared(w, len(g.fields)); !fresh {
			return 0
		}
		st.ObjectsCopied++
		words := int64(len(g.fields))
		for i, f := range g.fields {
			words += c.markValue(f, c.Heap.Field(w, i), st)
		}
		return words
	case *dataG:
		// Iterate recursive tail fields (list spines) like dataG.Trace, so
		// long lists do not consume host stack proportional to length.
		var words int64
		for {
			if !code.IsBoxedValue(repr, w) {
				return words
			}
			off, tag := 0, 0
			if g.layout.HasTagWord {
				tag = int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
				off = 1
			}
			fields := g.layout.Boxed[tag].Fields
			if _, fresh := c.Heap.VisitShared(w, off+len(fields)); !fresh {
				return words
			}
			st.ObjectsCopied++
			words += int64(off + len(fields))
			tailField := -1
			for i, fd := range fields {
				fgc := c.FromDesc(fd, g.args)
				if fgc == g && i == len(fields)-1 {
					tailField = off + i
					continue
				}
				words += c.markValue(fgc, c.Heap.Field(w, off+i), st)
			}
			if tailField < 0 {
				return words
			}
			w = c.Heap.Field(w, tailField)
		}
	case *arrowG:
		if !code.IsBoxedValue(repr, w) {
			return 0 // null placeholder of a not-yet-patched recursive closure
		}
		fidx := int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
		fi := c.Prog.Funcs[fidx]
		size := 1 + fi.NumRepWords + len(fi.Captures)
		if _, fresh := c.Heap.VisitShared(w, size); !fresh {
			return 0
		}
		st.ObjectsCopied++
		words := int64(size)
		env := c.closureEnv(fi, w, g)
		for i, capDesc := range fi.Captures {
			fgc := c.FromDesc(capDesc, env)
			words += c.markValue(fgc, c.Heap.Field(w, 1+fi.NumRepWords+i), st)
		}
		return words
	}
	panic("gc: markValue: unknown TypeGC node")
}
