package gc

import (
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/heap"
)

// TestFrameChainOrdering builds a synthetic stack and checks the
// oldest-first chain and per-frame blocked pcs (the callee's stored return
// address, the task pc for the newest frame).
func TestFrameChainOrdering(t *testing.T) {
	// Three frames at 0, 10, 24; dynamic links chain newest→oldest.
	stack := make([]code.Word, 64)
	stack[0] = -1 // root dynlink
	stack[1] = -1 // root retaddr
	stack[10] = 0 // frame1 dynlink → root
	stack[11] = 100
	stack[24] = 10 // frame2 dynlink → frame1
	stack[25] = 200
	fps, pcs := frameChain(TaskRoots{Stack: stack, FP: 24, PC: 300})
	wantFPs := []int{0, 10, 24}
	wantPCs := []int{100, 200, 300}
	for i := range wantFPs {
		if fps[i] != wantFPs[i] || pcs[i] != wantPCs[i] {
			t.Fatalf("frame %d: fp=%d pc=%d, want fp=%d pc=%d",
				i, fps[i], pcs[i], wantFPs[i], wantPCs[i])
		}
	}
}

// TestSiteAtReadsGCWord checks the Figure-1 lookup against a hand-built
// code stream.
func TestSiteAtReadsGCWord(t *testing.T) {
	prog := listProgram(code.ReprTagFree)
	// A call at pc 0: [OpCall][dst][fidx][gcword][nargs].
	prog.Code = []code.Word{code.OpCall, 0, 0, 1, 0,
		code.OpMkTuple, 0, 0 /*gcw*/, 0}
	prog.Funcs = []*code.FuncInfo{{Name: "f"}}
	prog.Sites = []*code.SiteInfo{
		{Func: 0, Kind: code.SiteAlloc},
		{Func: 0, Kind: code.SiteCall},
	}
	h := heap.New(code.ReprTagFree, 64)
	c, err := New(prog, h, StratCompiled)
	if err != nil {
		t.Fatal(err)
	}
	idx, si := c.siteAt(0)
	if idx != 1 || si.Kind != code.SiteCall {
		t.Fatalf("call site: idx=%d kind=%d", idx, si.Kind)
	}
	idx, si = c.siteAt(5)
	if idx != 0 || si.Kind != code.SiteAlloc {
		t.Fatalf("alloc site: idx=%d kind=%d", idx, si.Kind)
	}
}

// TestOutgoingPackages checks package construction for direct and
// closure-call sites.
func TestOutgoingPackages(t *testing.T) {
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 256)
	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}

	direct := &code.SiteInfo{Kind: code.SiteCall,
		CalleeInst: []*code.TypeDesc{intList, {Kind: code.TDVar, Index: 0}}}
	targs := []TypeGC{c.b.Const()}
	pkg := c.outgoing(direct, targs)
	if len(pkg.direct) != 2 {
		t.Fatalf("direct package has %d entries", len(pkg.direct))
	}
	if pkg.direct[0] != c.FromDesc(intList, nil) {
		t.Error("ground instantiation should resolve to the shared routine")
	}
	if pkg.direct[1] != c.b.Const() {
		t.Error("variable instantiation should resolve against the caller's args")
	}

	closSite := &code.SiteInfo{Kind: code.SiteCallC,
		SiteType: &code.TypeDesc{Kind: code.TDArrow,
			Args: []*code.TypeDesc{{Kind: code.TDConst}, intList}}}
	pkg = c.outgoing(closSite, nil)
	if pkg.arrow == nil {
		t.Fatal("closure-call package missing")
	}
	if pkg.arrow.Child(code.PathStep{Kind: 1}) != c.FromDesc(intList, nil) {
		t.Error("arrow package cod decomposition wrong")
	}
}

// TestEnvTypeArgsFromRepWords builds a closure object with a stored rep
// word and checks the environment reconstruction.
func TestEnvTypeArgsFromRepWords(t *testing.T) {
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 256)
	// Function metadata: one type-env entry, stored at rep word 0.
	fi := &code.FuncInfo{
		Name:        "thunk",
		TypeEnvLen:  1,
		RepWord:     []int{0},
		NumRepWords: 1,
	}
	intListRep := c.Prog.Reps.Intern(code.TDData, 0,
		[]int{c.Prog.Reps.Intern(code.TDConst, 0, nil)})
	clos := c.Heap.MustAlloc(2)
	c.Heap.SetField(clos, 0, code.EncodeInt(code.ReprTagFree, 7)) // code ptr
	c.Heap.SetField(clos, 1, code.EncodeInt(code.ReprTagFree, int64(intListRep)))

	env := c.envTypeArgs(fi, clos, nil, c.scratch0())
	if len(env) != 1 {
		t.Fatalf("env has %d entries", len(env))
	}
	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	if env[0] != c.FromDesc(intList, nil) {
		t.Error("rep word did not reconstruct the stored type")
	}
}

// TestEnvTypeArgsFromDerivation checks derivation-path reconstruction
// against a Figure-4 package.
func TestEnvTypeArgsFromDerivation(t *testing.T) {
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 256)
	fi := &code.FuncInfo{
		Name:       "mapper",
		TypeEnvLen: 1,
		RepWord:    []int{-1},
		Derivs:     [][]code.PathStep{{{Kind: 0}, {Kind: 2, Index: 0}}}, // dom → elem
	}
	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	ref := c.FromDesc(&code.TypeDesc{Kind: code.TDArrow,
		Args: []*code.TypeDesc{intList, {Kind: code.TDConst}}}, nil)

	clos := c.Heap.MustAlloc(1)
	c.Heap.SetField(clos, 0, code.EncodeInt(code.ReprTagFree, 3))
	env := c.envTypeArgs(fi, clos, ref, c.scratch0())
	if env[0] != c.b.Const() {
		t.Error("derivation dom→elem should reach const_gc for an int list domain")
	}
}
