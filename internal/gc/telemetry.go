package gc

import "tagfree/internal/heap"

// GC telemetry: every collection appends a structured record — what the
// pause cost, what each task's stack contributed, how much survived — and
// feeds two cumulative histograms. The ROADMAP's "explain its own pause
// behavior" requirement: liveness-style collector work (Karkare et al.;
// Kumar et al.) is only measurable with per-collection numbers, which the
// scalar Stats block cannot express.
//
// Telemetry is collected unconditionally: the record is a handful of
// integers per collection, dwarfed by the collection itself. Rendering
// (table and JSON emitters) lives in internal/pipeline/render.go.

// TaskScan is the collection work attributable to one task's roots.
// Under parallel mark/sweep, structure shared between tasks is attributed
// to whichever worker reached it first; only the totals are deterministic.
type TaskScan struct {
	Task    int   `json:"task"`
	Frames  int64 `json:"frames"`
	Slots   int64 `json:"slots"`
	Objects int64 `json:"objects"`
	// Words is the heap words copied (copying) or marked (mark/sweep)
	// reachable from this task's stack.
	Words int64 `json:"words"`
}

// CollectionRecord is one collection's telemetry.
type CollectionRecord struct {
	Seq     int   `json:"seq"`
	PauseNS int64 `json:"pause_ns"`
	// Kind is "minor" or "major" on a generational heap, empty otherwise
	// (so non-nursery runs keep their exact pre-generational JSON).
	Kind string `json:"gc_kind,omitempty"`
	// Shard is the 1-based nursery shard a single-shard minor collected;
	// 0 (omitted) for global collections, so unsharded runs keep their
	// exact prior JSON.
	Shard int `json:"shard,omitempty"`
	// Parallelism is the worker count that actually scanned (1 when the
	// sequential path ran, whatever Collector.Parallelism was).
	Parallelism int `json:"parallelism"`
	// UsedBefore is the occupied space when the collection started;
	// LiveWords is what survived it. SurvivorPct is their ratio — under
	// mark/sweep UsedBefore is the bump high-water mark, so the ratio
	// reads as "fraction of occupied space still live".
	UsedBefore  int64   `json:"used_before"`
	LiveWords   int64   `json:"live_words"`
	SurvivorPct float64 `json:"survivor_pct"`
	// WordsVisited is the words copied or marked by this collection.
	WordsVisited int64 `json:"words_visited"`
	FramesTraced int64 `json:"frames_traced"`
	SlotsTraced  int64 `json:"slots_traced"`
	// WordsScanned counts tag-driven word scans (tagged strategy only).
	WordsScanned int64 `json:"words_scanned,omitempty"`
	// Fast-path counters (Compiled strategy unless disabled): frame-plan
	// cache hits/misses, pc→site cache hits, and words traced by
	// specialized kernels rather than generic Trace dispatch.
	PlanHits      int64 `json:"plan_hits,omitempty"`
	PlanMisses    int64 `json:"plan_misses,omitempty"`
	SiteCacheHits int64 `json:"site_cache_hits,omitempty"`
	KernelWords   int64 `json:"kernel_words,omitempty"`
	// PrunedWords counts dead element fields sentinel-overwritten by the
	// liveness-guided spine-only kernels (zero and omitted unless
	// Collector.HeapLiveness engaged for this collection).
	PrunedWords int64 `json:"pruned_words,omitempty"`
	// SpineRoots counts the deferred spine-verdict roots this collection
	// drained through pruning kernels.
	SpineRoots int64 `json:"spine_roots,omitempty"`
	// SerialFallback marks a collection whose parallel scan was aborted by
	// the watchdog and redone sequentially (Parallelism reads 1).
	SerialFallback bool `json:"serial_fallback,omitempty"`
	// FreeListHitPct is the share of mutator allocations since the last
	// collection that recycled a free-list block (mark/sweep only; -1 when
	// no allocations happened in the interval or the heap is copying).
	FreeListHitPct float64 `json:"free_list_hit_pct"`
	// Generational counters (nursery heaps only): words tenured by this
	// collection, remembered-set population after it, and write-barrier
	// hits since the previous collection.
	PromotedWords int64 `json:"promoted_words,omitempty"`
	Remembered    int   `json:"remembered,omitempty"`
	BarrierHits   int64 `json:"barrier_hits,omitempty"`
	// TLAB carries the allocation-buffer activity since the previous
	// collection; nil unless the heap runs TLABs (so non-TLAB runs keep
	// their exact prior JSON, like Kind for the nursery).
	TLAB *TLABRecord `json:"tlab,omitempty"`
	// Conc carries the concurrent-mark breakdown for a cycle finished by
	// the incremental collector; nil for stop-the-world collections (same
	// omission convention as Kind and TLAB).
	Conc *ConcRecord `json:"conc,omitempty"`
	// Tasks breaks the scan down per task stack.
	Tasks []TaskScan `json:"tasks,omitempty"`
}

// ConcRecord is the phase breakdown of one concurrent mark cycle. The
// headline number a stop-the-world collection cannot offer is the split:
// the mutator only stops for InitialPauseNS + FinalPauseNS, while the
// marking between them ran in MarkSlices increments interleaved with
// task execution.
type ConcRecord struct {
	// InitialPauseNS is the root-snapshot pause that started the cycle;
	// FinalPauseNS the stack-re-scan + residual-drain + sweep pause that
	// finished it. PauseNS on the enclosing record is their sum.
	InitialPauseNS int64 `json:"initial_pause_ns"`
	FinalPauseNS   int64 `json:"final_pause_ns"`
	// MarkSlices counts the budgeted incremental marking increments run
	// between the pauses; SliceWords the heap words they marked.
	MarkSlices int64 `json:"mark_slices"`
	SliceWords int64 `json:"slice_words"`
	// BarrierGrays counts objects grayed by the OpStFld write barrier
	// while the cycle was active.
	BarrierGrays int64 `json:"barrier_grays"`
}

// TLABRecord is the allocation-buffer activity in one inter-collection
// interval. SharedAllocs counts shared-heap acquisitions (slow-path Allocs
// plus refill carves) — divided by FastAllocs it shows the amortized
// O(1/chunk) contention the buffers buy.
type TLABRecord struct {
	Refills       int64 `json:"refills"`
	RefillWords   int64 `json:"refill_words"`
	FastAllocs    int64 `json:"fast_allocs"`
	SharedAllocs  int64 `json:"shared_allocs"`
	WasteWords    int64 `json:"waste_words"`
	ReturnedWords int64 `json:"returned_words"`
}

// Histogram bucket layouts. Pause buckets are decades of nanoseconds:
// <1µs, <10µs, <100µs, <1ms, <10ms, <100ms, ≥100ms. Survivor buckets are
// deciles of the survivor percentage.
const (
	PauseBuckets    = 7
	SurvivorBuckets = 10
)

// PauseBucketLabel names pause histogram bucket i.
func PauseBucketLabel(i int) string {
	labels := [PauseBuckets]string{"<1µs", "<10µs", "<100µs", "<1ms", "<10ms", "<100ms", "≥100ms"}
	return labels[i]
}

// SurvivorBucketLabel names survivor histogram bucket i.
func SurvivorBucketLabel(i int) string {
	labels := [SurvivorBuckets]string{
		"0-10%", "10-20%", "20-30%", "30-40%", "40-50%",
		"50-60%", "60-70%", "70-80%", "80-90%", "90-100%"}
	return labels[i]
}

func pauseBucket(ns int64) int {
	bound := int64(1_000)
	for i := 0; i < PauseBuckets-1; i++ {
		if ns < bound {
			return i
		}
		bound *= 10
	}
	return PauseBuckets - 1
}

func survivorBucket(pct float64) int {
	i := int(pct / 10)
	if i < 0 {
		i = 0
	}
	if i >= SurvivorBuckets {
		i = SurvivorBuckets - 1
	}
	return i
}

// Telemetry accumulates per-collection records and cumulative histograms
// for one collector (and therefore one strategy and heap discipline).
type Telemetry struct {
	Strategy string `json:"strategy"`
	// Kind is the heap discipline: "copying" or "mark/sweep".
	Kind         string                 `json:"kind"`
	Records      []CollectionRecord     `json:"records"`
	PauseHist    [PauseBuckets]int64    `json:"pause_hist"`
	SurvivorHist [SurvivorBuckets]int64 `json:"survivor_hist"`
	// Resilience counts fault-injection and recovery-ladder outcomes.
	Resilience ResilienceStats `json:"resilience,omitzero"`
	// Liveness mirrors the collector's cumulative pruning/degrade counters
	// (zero and omitted unless liveness-guided tracing is armed).
	Liveness LivenessStats `json:"liveness,omitzero"`
	// TLABTotal is the whole-run allocation-buffer total, set by
	// FinalizeTLAB when the run ends. Per-record TLAB deltas stop at the
	// last collection; this covers the mutator tail after it too.
	TLABTotal *TLABRecord `json:"tlab_total,omitempty"`

	// Interval baselines for per-collection allocation rates, barrier
	// activity and TLAB churn.
	lastAllocs  int64
	lastHits    int64
	lastBarrier int64
	lastSpine   int64
	lastTLAB    TLABRecord
}

// ResilienceStats counts memory-pressure events and their outcomes: what
// was injected (OOMs, forced collections, stalled workers) and how the
// runtime recovered (growth, serial fallback) or did not (task faults).
type ResilienceStats struct {
	// InjectedOOMs counts allocation failures forced by a FaultPlan.
	InjectedOOMs int64 `json:"injected_ooms,omitempty"`
	// TortureCollections counts collections forced by torture mode.
	TortureCollections int64 `json:"torture_collections,omitempty"`
	// WatchdogTrips counts parallel scans aborted by the watchdog;
	// SerialFallbacks counts the sequential re-runs that rescued them.
	WatchdogTrips   int64 `json:"watchdog_trips,omitempty"`
	SerialFallbacks int64 `json:"serial_fallbacks,omitempty"`
	// EmergencyCollections counts collections triggered by an allocation
	// failure (genuine or injected) rather than a Need pre-check.
	EmergencyCollections int64 `json:"emergency_collections,omitempty"`
	// LadderRecovered counts ladder climbs (an emergency collection, or an
	// escalation past the routine collect) whose retry finally succeeded;
	// LadderExhausted counts climbs that ran out of rungs and ended in an
	// allocation failure. Split so resilience stats distinguish genuine
	// recovery from delay-of-death: an emergency-collect rung that merely
	// preceded the fault is not a rescue.
	LadderRecovered int64 `json:"ladder_recovered,omitempty"`
	LadderExhausted int64 `json:"ladder_exhausted,omitempty"`
	// HeapGrowths counts recovery-ladder heap growths.
	HeapGrowths int64 `json:"heap_growths,omitempty"`
	// TaskFaults counts tasks faulted after the ladder was exhausted or a
	// runtime error.
	TaskFaults int64 `json:"task_faults,omitempty"`
	// BudgetFaults counts tasks terminated for exceeding a per-task budget
	// (step deadline or allocation-word quota); each is also a TaskFault.
	BudgetFaults int64 `json:"budget_faults,omitempty"`
	// ConcAborts counts concurrent mark cycles abandoned — gray queue not
	// drained within the slice budget, a non-ground store, or a
	// stop-the-world collection forced mid-cycle — each followed by a
	// full stop-the-world collection (the fallback rung).
	ConcAborts int64 `json:"conc_aborts,omitempty"`
}

// record appends one collection's telemetry. kind is "minor"/"major" on a
// nursery heap, "" otherwise; shard is the 1-based shard of a single-shard
// minor (0 = global); statsBefore/heapBefore are snapshots from the top of
// the collection; usedBefore the pre-flip occupancy (old + young).
func (t *Telemetry) record(c *Collector, kind string, shard int, pauseNS int64, parallel, fallback bool, scans []TaskScan, usedBefore int, statsBefore Stats, heapBefore heap.Stats) {
	if t.Strategy == "" {
		t.Strategy = c.Strat.String()
		if c.Heap.Kind() == heap.MarkSweep {
			t.Kind = "mark/sweep"
		} else {
			t.Kind = "copying"
		}
	}
	par := 1
	if parallel && !fallback {
		par = c.Parallelism
	}
	live := c.Heap.Stats.LiveAfterLastGC
	if kind == "minor" {
		// A minor collection leaves the old region untouched, so the heap's
		// live figure is stale; report post-collection occupancy instead
		// (old usage plus young survivors).
		live = int64(c.Heap.Used() + c.Heap.YoungUsed())
	}
	survivor := 0.0
	if usedBefore > 0 {
		survivor = 100 * float64(live) / float64(usedBefore)
	}
	allocs := c.Heap.Stats.Allocations
	hits := c.Heap.Stats.FreeListHits
	hitPct := -1.0
	if c.Heap.Kind() == heap.MarkSweep && allocs > t.lastAllocs {
		hitPct = 100 * float64(hits-t.lastHits) / float64(allocs-t.lastAllocs)
	}
	t.lastAllocs, t.lastHits = allocs, hits

	barrier := c.Gen.BarrierHits - t.lastBarrier
	t.lastBarrier = c.Gen.BarrierHits

	spine := c.Liveness.SpineRoots - t.lastSpine
	t.lastSpine = c.Liveness.SpineRoots
	t.Liveness = c.Liveness

	rec := CollectionRecord{
		Seq:            len(t.Records),
		PauseNS:        pauseNS,
		Kind:           kind,
		Shard:          shard,
		Parallelism:    par,
		UsedBefore:     int64(usedBefore),
		LiveWords:      live,
		SurvivorPct:    survivor,
		WordsVisited:   c.Heap.Stats.WordsCopied - heapBefore.WordsCopied,
		FramesTraced:   c.Stats.FramesTraced - statsBefore.FramesTraced,
		SlotsTraced:    c.Stats.SlotsTraced - statsBefore.SlotsTraced,
		WordsScanned:   c.Stats.WordsScanned - statsBefore.WordsScanned,
		PlanHits:       c.Stats.PlanHits - statsBefore.PlanHits,
		PlanMisses:     c.Stats.PlanMisses - statsBefore.PlanMisses,
		SiteCacheHits:  c.Stats.SiteCacheHits - statsBefore.SiteCacheHits,
		KernelWords:    c.Stats.KernelWords - statsBefore.KernelWords,
		PrunedWords:    c.Stats.PrunedWords - statsBefore.PrunedWords,
		SpineRoots:     spine,
		SerialFallback: fallback,
		FreeListHitPct: hitPct,
		Tasks:          scans,
	}
	if kind != "" {
		rec.PromotedWords = c.Heap.Stats.PromotedWords - heapBefore.PromotedWords
		rec.Remembered = c.RememberedLen()
		rec.BarrierHits = barrier
	}
	if c.Heap.TLABsEnabled() {
		// TLAB activity is mutator-side, so the interval is record-to-record
		// (like FreeListHitPct), not the collection's own heapBefore window —
		// that window would miss everything between collections, including
		// the pre-collection retirement wave.
		hs := c.Heap.Stats
		cum := TLABRecord{
			Refills:       hs.TLABRefills,
			RefillWords:   hs.TLABRefillWords,
			FastAllocs:    hs.TLABAllocs,
			SharedAllocs:  hs.SharedAllocs,
			WasteWords:    hs.TLABWasteWords,
			ReturnedWords: hs.TLABReturnedWords,
		}
		rec.TLAB = &TLABRecord{
			Refills:       cum.Refills - t.lastTLAB.Refills,
			RefillWords:   cum.RefillWords - t.lastTLAB.RefillWords,
			FastAllocs:    cum.FastAllocs - t.lastTLAB.FastAllocs,
			SharedAllocs:  cum.SharedAllocs - t.lastTLAB.SharedAllocs,
			WasteWords:    cum.WasteWords - t.lastTLAB.WasteWords,
			ReturnedWords: cum.ReturnedWords - t.lastTLAB.ReturnedWords,
		}
		t.lastTLAB = cum
	}
	t.Records = append(t.Records, rec)
	t.PauseHist[pauseBucket(pauseNS)]++
	t.SurvivorHist[survivorBucket(survivor)]++
}

// FinalizeTLAB snapshots the run's cumulative allocation-buffer totals
// from the heap counters. Call once after the mutator finishes: the last
// collection's record cannot see the TLAB activity that follows it.
func (t *Telemetry) FinalizeTLAB(hs heap.Stats) {
	t.TLABTotal = &TLABRecord{
		Refills:       hs.TLABRefills,
		RefillWords:   hs.TLABRefillWords,
		FastAllocs:    hs.TLABAllocs,
		SharedAllocs:  hs.SharedAllocs,
		WasteWords:    hs.TLABWasteWords,
		ReturnedWords: hs.TLABReturnedWords,
	}
}

// LiveWordsPerCollection returns the live-word count after each collection
// — the differential tests' equality signature for two configurations.
func (t *Telemetry) LiveWordsPerCollection() []int64 {
	out := make([]int64, len(t.Records))
	for i, r := range t.Records {
		out[i] = r.LiveWords
	}
	return out
}

// TotalPauseNS sums all recorded pauses.
func (t *Telemetry) TotalPauseNS() int64 {
	var total int64
	for _, r := range t.Records {
		total += r.PauseNS
	}
	return total
}
