package gc_test

// Fast-path hardening: the Compiled strategy's collection fast path
// (frame-plan cache, pc→site cache, specialized trace kernels — see
// internal/gc/fastpath.go) is a pure memoization and must be invisible to
// everything but the clock. These tests pin the central claim: a
// fast-path collection history leaves every single heap word equal to the
// uncached oracle's (Collector.DisableFastPath), sequentially and with 4
// workers, under both heap disciplines — and the caches actually engage
// on the workloads that motivated them.

import (
	"fmt"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/pipeline"
	"tagfree/internal/tasking"
	"tagfree/internal/workloads"
)

// runGroupFP is runGroup with the fast path switchable, also returning
// the collector's counters for cache-engagement assertions.
func runGroupFP(t *testing.T, w workloads.TaskWorkload, strat gc.Strategy, ms bool, par int, disableFast bool) ([]code.Word, []code.Word, gc.Stats) {
	t.Helper()
	prog, _, err := pipeline.Build(w.Source, pipeline.Options{
		Strategy:             strat,
		DisableGCWordElision: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]int, len(w.Entries))
	for i, name := range w.Entries {
		entries[i] = prog.FuncByName(name)
		if entries[i] < 0 {
			t.Fatalf("no function %s", name)
		}
	}
	var g *tasking.Group
	if ms {
		g, err = tasking.NewGroupWith(prog, heap.NewMarkSweep(prog.Repr, 2*w.HeapWords), strat, entries)
	} else {
		g, err = tasking.NewGroup(prog, w.HeapWords, strat, entries)
	}
	if err != nil {
		t.Fatal(err)
	}
	g.Col.Parallelism = par
	g.Col.DisableFastPath = disableFast
	g.Col.Verify = true
	g.Heap.SetVerify(true)
	if err := g.RunInit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Stats.Collections == 0 {
		t.Fatalf("no collections — workload exerts no heap pressure")
	}
	results := make([]code.Word, len(g.Tasks))
	for i, task := range g.Tasks {
		results[i] = task.Result
	}
	return results, g.Heap.MemSnapshot(), g.Col.Stats
}

// TestFastPathBitIdenticalToOracle: for every task workload and heap
// discipline, collections through the plan cache and kernels — serial and
// 4-way parallel — leave the heap bit-identical to the uncached oracle.
func TestFastPathBitIdenticalToOracle(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, ms := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/ms=%v", w.Name, ms), func(t *testing.T) {
				oracleRes, oracleMem, oracleStats := runGroupFP(t, w, gc.StratCompiled, ms, 1, true)
				if oracleStats.PlanHits != 0 || oracleStats.KernelWords != 0 || oracleStats.SiteCacheHits != 0 {
					t.Fatalf("oracle used the fast path: %+v", oracleStats)
				}
				for _, par := range []int{1, 4} {
					fastRes, fastMem, fastStats := runGroupFP(t, w, gc.StratCompiled, ms, par, false)
					if !wordsEqual(oracleRes, fastRes) {
						t.Fatalf("par=%d: results diverge: oracle %v fast %v", par, oracleRes, fastRes)
					}
					if !wordsEqual(oracleMem, fastMem) {
						t.Fatalf("par=%d: heap images diverge (%d words)", par, len(oracleMem))
					}
					if fastStats.PlanHits == 0 {
						t.Fatalf("par=%d: plan cache never hit: %+v", par, fastStats)
					}
					// The oracle and the fast path must agree on the logical
					// trace work, not just the final heap.
					if fastStats.FramesTraced != oracleStats.FramesTraced ||
						fastStats.SlotsTraced != oracleStats.SlotsTraced ||
						fastStats.ObjectsCopied != oracleStats.ObjectsCopied {
						t.Fatalf("par=%d: work counters diverge:\n  oracle %+v\n  fast   %+v",
							par, oracleStats, fastStats)
					}
				}
			})
		}
	}
}

// TestFastPathCachesEngage pins that the workload shape the fast path was
// built for — deep stacks of polymorphic frames over list structure —
// actually drives all three caches: the plan cache converges to hits, the
// pc→site cache is consulted, and kernels trace the bulk of the copied
// words.
func TestFastPathCachesEngage(t *testing.T) {
	w, ok := workloads.TaskByName("taskpoly")
	if !ok {
		t.Fatal("taskpoly workload missing")
	}
	_, _, st := runGroupFP(t, w, gc.StratCompiled, false, 1, false)
	if st.PlanMisses == 0 {
		t.Fatalf("no plans were ever built: %+v", st)
	}
	if st.PlanHits < 10*st.PlanMisses {
		t.Fatalf("plan cache not amortizing: hits=%d misses=%d", st.PlanHits, st.PlanMisses)
	}
	if st.SiteCacheHits == 0 {
		t.Fatalf("pc→site cache never hit: %+v", st)
	}
	if st.KernelWords == 0 {
		t.Fatalf("kernels never traced a word: %+v", st)
	}
}

// TestFastPathTreeKernel pins the self-recursive extension of the spine
// kernel: a binary tree over unboxed payloads (tasktree) is a flat shape —
// every constructor field is const or the datatype itself — so its bulk
// must trace through kSpineFlat, not fall back to generic dispatch, under
// both disciplines.
func TestFastPathTreeKernel(t *testing.T) {
	w, ok := workloads.TaskByName("tasktree")
	if !ok {
		t.Fatal("tasktree workload missing")
	}
	for _, ms := range []bool{false, true} {
		_, _, st := runGroupFP(t, w, gc.StratCompiled, ms, 1, false)
		if st.KernelWords == 0 {
			t.Fatalf("ms=%v: tree spines never traced through a kernel: %+v", ms, st)
		}
	}
}

// TestFastPathOtherStrategiesUnaffected: the plan cache and kernels are a
// Compiled-strategy specialization. Interp must keep paying its
// per-collection decode cost (the E4 trade-off) and Appel its chain
// re-walks; only the strategy-neutral pc→site cache may serve them.
func TestFastPathOtherStrategiesUnaffected(t *testing.T) {
	w, ok := workloads.TaskByName("taskchurn")
	if !ok {
		t.Fatal("taskchurn workload missing")
	}
	for _, strat := range []gc.Strategy{gc.StratInterp, gc.StratAppel} {
		_, _, st := runGroupFP(t, w, strat, false, 1, false)
		if st.PlanHits != 0 || st.PlanMisses != 0 || st.KernelWords != 0 {
			t.Fatalf("%v: plan cache or kernels engaged: %+v", strat, st)
		}
		if strat == gc.StratInterp && st.DescBytesDecoded == 0 {
			t.Fatalf("interp stopped decoding descriptors: %+v", st)
		}
		if strat == gc.StratAppel && st.ChainSteps == 0 {
			t.Fatalf("appel stopped re-walking chains: %+v", st)
		}
	}
}
