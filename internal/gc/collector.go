package gc

import (
	"fmt"
	"time"

	"tagfree/internal/code"
	"tagfree/internal/heap"
)

// Strategy selects the collection method.
type Strategy int

// Collection strategies.
const (
	// StratCompiled is the paper's compiled method: per-call-site frame
	// routines prebuilt from compiler metadata.
	StratCompiled Strategy = iota
	// StratInterp is the Branquart/Lewi interpreted-descriptor method.
	StratInterp
	// StratAppel is the single-descriptor-per-procedure method with
	// per-frame dynamic-chain type resolution.
	StratAppel
	// StratTagged is the tagged baseline (headers + word tags, no
	// compiler metadata).
	StratTagged
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StratCompiled:
		return "compiled"
	case StratInterp:
		return "interp"
	case StratAppel:
		return "appel"
	case StratTagged:
		return "tagged"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// CompatibleRepr returns the value representation a strategy requires.
func (s Strategy) CompatibleRepr() code.Repr {
	if s == StratTagged {
		return code.ReprTagged
	}
	return code.ReprTagFree
}

// TaskRoots describes one task's stack for collection.
type TaskRoots struct {
	Stack []code.Word
	FP    int
	SP    int
	// PC is the instruction the task is stopped at: the allocation
	// instruction for the task that triggered collection, or the call
	// instruction a suspended task is about to execute (tasking, §4).
	PC int
	// AtCall marks a task suspended *before* a call: the call's argument
	// slots are still owned by this frame and join its root set.
	AtCall bool
}

// Stats instruments collection work for the experiment harness.
type Stats struct {
	Collections   int64
	FramesTraced  int64
	SlotsTraced   int64
	ObjectsCopied int64
	// TypeGCBuilt counts distinct type_gc_routine closures constructed.
	TypeGCBuilt int64
	// DescBytesDecoded counts descriptor bytes decoded (interp mode).
	DescBytesDecoded int64
	// ChainSteps counts per-frame dynamic-chain resolution steps (Appel
	// mode; quadratic in stack depth for polymorphic towers).
	ChainSteps int64
	// WordsScanned counts stack/heap words examined by the tagged scan.
	WordsScanned int64
	// PauseNS is the total wall-clock time spent inside collections.
	PauseNS int64
	// PlanHits/PlanMisses count frame-plan cache lookups on the compiled
	// fast path (see fastpath.go); a hit resolves a frame's entire routine
	// without touching the TypeGC builder.
	PlanHits   int64
	PlanMisses int64
	// SiteCacheHits/SiteCacheMisses count pc→site lookups served by the
	// lookup cache versus decoded from the instruction stream.
	SiteCacheHits   int64
	SiteCacheMisses int64
	// KernelWords counts heap words traced by specialized kernels instead
	// of per-word Trace interface dispatch.
	KernelWords int64
	// PrunedWords counts dead element fields sentinel-overwritten instead
	// of traced by the liveness-guided spine-only kernels (liveness.go).
	PrunedWords int64
}

// DebugTrace, when set, logs every frame and slot traced (tests only).
var DebugTrace = false

// Collector runs collections over a heap for one compiled program.
type Collector struct {
	Prog  *code.Program
	Heap  *heap.Heap
	Strat Strategy
	Stats Stats

	// Parallelism is the number of workers scanning task stacks during a
	// collection. 0 or 1 selects the sequential path, which remains the
	// oracle: the parallel path is required (and tested) to produce a
	// bit-identical heap. Tagged mode ignores it — with no compiler
	// metadata there is no per-frame resolution phase to parallelize, and
	// the Cheney scan is inherently serial.
	Parallelism int
	// ScanSeed, when nonzero, shuffles the order in which parallel workers
	// claim task stacks (tests use it to prove scan-order independence).
	ScanSeed int64
	// Telem accumulates per-collection telemetry (see telemetry.go).
	Telem Telemetry
	// Faults, when non-nil, injects allocation failures, forced
	// collections, worker stalls and watchdog aborts (see faultinject.go).
	Faults *FaultPlan
	// PreCollect, when non-nil, runs at the top of every collection before
	// the heap snapshot and BeginGC. The tasking runtime uses it to retire
	// all live TLABs, so the collector (and any harness calling Collect
	// directly) always sees a fully tiled heap.
	PreCollect func()
	// Verify runs the post-collection heap verifier after every collection
	// (see verify.go); violations panic with a *VerifyError.
	Verify bool
	// DisableFastPath turns off the collection fast path — the pc→site
	// lookup cache, the frame-plan cache and the specialized trace kernels
	// (fastpath.go) — restoring uncached per-frame resolution. The
	// differential suite uses the disabled collector as its oracle; the
	// fast path must produce bit-identical heaps.
	DisableFastPath bool
	// ConcMarkBudget bounds each concurrent marking increment in heap
	// words (0 = DefaultConcMarkBudget); ConcMaxSlices caps how many
	// increments one cycle may run before the watchdog declares the gray
	// queue undrainable and the caller aborts to stop-the-world (0 = a
	// generous heap-size-derived default). See concurrent.go.
	ConcMarkBudget int
	ConcMaxSlices  int

	// HeapLiveness arms liveness-guided tracing: slots whose frame-trace
	// metadata carries a spine-only verdict are traced by pruning kernels
	// that sentinel-overwrite provably dead element fields (liveness.go).
	// Pruning engages per collection only inside its degrade envelope —
	// compiled strategy, fast path on, serial trace, no shard overlap, no
	// concurrent cycle — and Liveness counts both engagements and every
	// degrade reason.
	HeapLiveness bool
	// Liveness counts liveness-guided pruning activity (see liveness.go);
	// all zero unless HeapLiveness is set.
	Liveness LivenessStats

	// Gen counts generational activity (see generational.go); all zero
	// unless the heap has a nursery.
	Gen GenStats

	b *builder
	// Generational state (generational.go): the typed remembered set with
	// its dedup index, the store-descriptor→routine memo, whether the next
	// collection must be a major, whether the in-progress trace should
	// record old→young edges, and what the last collection was.
	remembered    []remEntry
	remIndex      map[remKey]int
	storeG        map[*code.TypeDesc]TypeGC
	genForceMajor bool
	genTracking   bool
	lastMinor     bool
	// scratches holds one per-worker scratch arena (worker 0 doubles as the
	// serial path's); reset at the top of every collection.
	scratches []*scratch
	// siteCache is the pc→site lookup cache: siteIdx+1 per code index,
	// zero = unfilled (see siteAtFast).
	siteCache []int32
	// plans is the frame-plan cache (compiled strategy fast path).
	plans planCache
	// conc is the in-flight concurrent mark cycle, nil when none is
	// active (concurrent.go).
	conc *concCycle
	// pruneOn marks a collection with liveness-guided pruning engaged;
	// pruneQ holds the deferred spine-only roots drained after every full
	// root has been traced (liveness.go).
	pruneOn bool
	pruneQ  []pruneItem
	// compiledSites holds the prebuilt frame routines (compiled mode).
	compiledSites [][]slotTracer
	// interpSites holds the serialized frame maps (interp mode).
	interpSites [][]byte
	// MetadataSize reports the strategy's GC metadata footprint in words
	// (experiment E4).
	MetadataSize int64
}

// slotTracer is one step of a compiled frame routine.
type slotTracer struct {
	slot   int
	ground TypeGC         // non-nil when the descriptor is monomorphic
	desc   *code.TypeDesc // otherwise resolved against frame type args
	spine  bool           // heap-liveness verdict: only the spine is live
}

// New builds a collector, precompiling the strategy's metadata (the
// analogue of the compiler emitting frame_gc_routines into the binary).
func New(prog *code.Program, h *heap.Heap, strat Strategy) (*Collector, error) {
	if strat.CompatibleRepr() != prog.Repr {
		return nil, fmt.Errorf("gc: strategy %v requires %v representation, program is %v",
			strat, strat.CompatibleRepr(), prog.Repr)
	}
	c := &Collector{Prog: prog, Heap: h, Strat: strat, b: newBuilder()}
	if strat != StratTagged {
		c.siteCache = make([]int32, len(prog.Code))
	}
	switch strat {
	case StratCompiled:
		c.compiledSites = make([][]slotTracer, len(prog.Sites))
		for i, si := range prog.Sites {
			routine := make([]slotTracer, 0, len(si.Live))
			for _, e := range si.Live {
				st := slotTracer{slot: e.Slot, desc: e.Desc, spine: e.Spine}
				if isGround(e.Desc) {
					st.ground = c.FromDesc(e.Desc, nil)
				}
				routine = append(routine, st)
				// A compiled trace step costs roughly a handful of
				// instructions; model routine size as words.
				c.MetadataSize += 4
			}
			c.compiledSites[i] = routine
			c.MetadataSize += 2 // routine prologue/dispatch entry
		}
	case StratInterp:
		c.interpSites = make([][]byte, len(prog.Sites))
		for i, si := range prog.Sites {
			c.interpSites[i] = encodeSite(si)
			c.MetadataSize += int64((len(c.interpSites[i]) + 7) / 8)
		}
	case StratAppel:
		for _, fi := range prog.Funcs {
			// One descriptor per procedure: every pointer-bearing slot.
			c.MetadataSize += int64(len(fi.AllSlots)) // ~1 word per entry
		}
	case StratTagged:
		// No compiler metadata; the cost is paid in headers and tag bits.
	}
	return c, nil
}

func isGround(d *code.TypeDesc) bool {
	if d.Kind == code.TDVar {
		return false
	}
	for _, a := range d.Args {
		if !isGround(a) {
			return false
		}
	}
	return true
}

// scratch is one worker's per-collection arena. Type-argument windows and
// root-job lists used to be allocated per frame and per stack walk — on a
// deep polymorphic tower that is thousands of short-lived slices per
// collection; now both bump-allocate here and the whole arena resets at the
// top of the next collection. Growth never invalidates a window already
// handed out: when a block fills, a fresh block simply becomes the arena
// and earlier windows keep their old backing array.
type scratch struct {
	targs []TypeGC
	jobs  []rootJob
}

func (s *scratch) reset() {
	s.targs = s.targs[:0]
	s.jobs = s.jobs[:0]
}

// typeArgs returns an n-slot window at the arena tail. Callers assign every
// slot, so stale contents from a previous cycle never leak.
func (s *scratch) typeArgs(n int) []TypeGC {
	if n == 0 {
		return nil
	}
	if cap(s.targs)-len(s.targs) < n {
		size := 2 * cap(s.targs)
		if size < 64 {
			size = 64
		}
		for size < n {
			size *= 2
		}
		s.targs = make([]TypeGC, 0, size)
	}
	l := len(s.targs)
	s.targs = s.targs[:l+n]
	return s.targs[l : l+n : l+n]
}

// jobsWindow opens a job window at the arena tail for one task's root set;
// commitJobs closes it. If appends outgrew the block, the window's new
// backing array becomes the arena and earlier windows keep the old one.
func (s *scratch) jobsWindow() []rootJob {
	return s.jobs[len(s.jobs):len(s.jobs)]
}

func (s *scratch) commitJobs(jobs []rootJob) {
	if cap(jobs) > 0 {
		s.jobs = jobs
	}
}

// resetScratches sizes one arena per worker (worker 0 doubles as the serial
// path's) and resets them for this collection.
func (c *Collector) resetScratches() {
	n := c.Parallelism
	if n < 1 {
		n = 1
	}
	for len(c.scratches) < n {
		c.scratches = append(c.scratches, &scratch{})
	}
	for _, s := range c.scratches {
		s.reset()
	}
}

// scratch0 returns the serial path's arena (allocating it on first use, for
// callers that run outside a collection, like ResolveRoots).
func (c *Collector) scratch0() *scratch {
	if len(c.scratches) == 0 {
		c.scratches = append(c.scratches, &scratch{})
	}
	return c.scratches[0]
}

// pkg is the type information a frame's gc routine hands to its callee's:
// resolved type arguments for direct calls, or the closure's structured
// type_gc_routine for closure calls (Figure 4).
type pkg struct {
	direct []TypeGC
	arrow  TypeGC
}

// Collect runs one collection over all task stacks and globals: a minor
// nursery collection when the remembered set can stand in for the old
// region's interior edges (see generational.go), else a full one.
func (c *Collector) Collect(tasks []TaskRoots, globals []code.Word) {
	if c.shouldMinor() {
		c.collectMinor(tasks, globals)
		return
	}
	c.CollectFull(tasks, globals)
}

// shouldMinor reports whether the next collection may be a minor one: a
// nursery is configured and nothing has poisoned the remembered set since
// the last major (untyped store, overflow, pre-tenured allocation).
func (c *Collector) shouldMinor() bool {
	return c.nurseryOn() && !c.genForceMajor
}

// MinorEligible reports whether a minor collection (global or single-shard)
// is currently permissible. The sharded scheduler consults it before
// attempting a shard minor: a poisoned remembered set forces the next
// collection to be a full one regardless of shard.
func (c *Collector) MinorEligible() bool { return c.shouldMinor() }

// CollectFull runs one full (major) collection over all task stacks and
// globals. On a nursery heap it also rebuilds the remembered set from the
// old→young edges the trace observes, discharging any force-major
// condition.
func (c *Collector) CollectFull(tasks []TaskRoots, globals []code.Word) {
	// A stop-the-world collection entered mid-cycle (the OOM recovery
	// ladder, torture mode, a forced major) invalidates the incremental
	// marking: the sweep below would treat its partial mark set as the
	// whole truth. Abort the cycle first — a no-op when none is active.
	c.ConcAbort()
	if c.PreCollect != nil {
		c.PreCollect()
	}
	start := time.Now()
	c.Stats.Collections++
	c.lastMinor = false
	nursery := c.nurseryOn()
	kind := ""
	if nursery {
		kind = "major"
		c.Gen.MajorCollections++
		c.resetRemembered()
	}
	statsBefore := c.Stats
	heapBefore := c.Heap.Stats
	usedBefore := c.Heap.Used() + c.Heap.YoungUsed()
	c.resetScratches()
	c.Heap.BeginGC()
	c.genTracking = nursery

	markedAtStart := c.Heap.Stats.WordsCopied
	c.traceGlobals(globals)

	scans := make([]TaskScan, len(tasks))
	// Parallel marking cannot run over a nursery: young objects move during
	// evacuation and VisitShared refuses them. Copying's parallel phase only
	// resolves roots — the trace that moves objects is the ordered serial
	// phase 2 — so it stays parallel with a nursery.
	parallel := c.Parallelism > 1 && c.Strat != StratTagged &&
		!(nursery && c.Heap.Kind() == heap.MarkSweep)
	c.beginPrune(parallel, false)
	fallback := false
	if parallel {
		// Republish the memo-table and plan-cache snapshots so workers
		// resolve descriptors lock-free (fastpath.go).
		c.prepareFastPath()
		fallback = !c.collectParallel(tasks, scans, globals, markedAtStart)
	} else {
		c.collectSerial(tasks, scans)
	}
	c.endPrune()

	if c.Strat == StratTagged {
		c.cheneyScan()
	}

	c.Stats.TypeGCBuilt = c.b.Built
	c.genTracking = false
	c.Heap.EndGC()
	pause := time.Since(start).Nanoseconds()
	c.Stats.PauseNS += pause
	c.Telem.record(c, kind, 0, pause, parallel, fallback, scans, usedBefore, statsBefore, heapBefore)
	if c.Verify {
		c.verifyCollection(tasks, globals)
	}
}

// collectMinor evacuates the nursery only: globals and every task stack are
// re-traced exactly as in a full collection (the paper's frame routines
// make that re-trace cheap, and VisitObject stops the walk at the young/old
// boundary by returning old objects untouched), then the remembered set
// supplies the interior old→young edges. Minors are always serial: the
// pause is bounded by the nursery size, so there is nothing worth fanning
// workers out over.
func (c *Collector) collectMinor(tasks []TaskRoots, globals []code.Word) {
	if c.PreCollect != nil {
		c.PreCollect()
	}
	start := time.Now()
	c.Stats.Collections++
	c.lastMinor = true
	c.Gen.MinorCollections++
	statsBefore := c.Stats
	heapBefore := c.Heap.Stats
	usedBefore := c.Heap.Used() + c.Heap.YoungUsed()
	c.resetScratches()
	c.Heap.BeginMinorGC()
	c.genTracking = true

	c.beginPrune(false, false)
	c.traceGlobals(globals)
	scans := make([]TaskScan, len(tasks))
	c.collectSerial(tasks, scans)
	c.traceRemembered()
	c.endPrune()

	c.Stats.TypeGCBuilt = c.b.Built
	c.genTracking = false
	c.Heap.EndMinorGC()
	c.refilterRemembered()
	pause := time.Since(start).Nanoseconds()
	c.Stats.PauseNS += pause
	c.Telem.record(c, "minor", 0, pause, false, false, scans, usedBefore, statsBefore, heapBefore)
	if c.Verify {
		c.verifyCollection(tasks, globals)
	}
}

// CollectMinorShard evacuates a single nursery shard: tasks must be exactly
// the roots of the tasks assigned to that shard, and the caller (the
// sharded tasking scheduler) must have established the shard's isolation
// invariant — no pointer into the shard's young generation lives outside
// those tasks' stacks, the globals, the shard's own young objects, and the
// remembered set — and retired the shard's young TLABs. Other shards'
// mutators, buffers and bump pointers are untouched, which is the point:
// they keep running while this shard collects. Unlike Collect, there is no
// fallback here; callers check MinorEligible and escalate to a global
// collection themselves when a shard minor is not permitted or did not
// free enough.
func (c *Collector) CollectMinorShard(shard int, tasks []TaskRoots, globals []code.Word) {
	if !c.shouldMinor() {
		panic("gc: CollectMinorShard without minor eligibility (check MinorEligible)")
	}
	start := time.Now()
	c.Stats.Collections++
	c.lastMinor = true
	c.Gen.MinorCollections++
	statsBefore := c.Stats
	heapBefore := c.Heap.Stats
	usedBefore := c.Heap.Used() + c.Heap.YoungUsed()
	c.resetScratches()
	c.Heap.BeginMinorGCShard(shard)
	c.genTracking = true

	// Never prune during a shard minor: other shards' mutators keep
	// running and may hold live paths into structures this shard's roots
	// only reach spine-only — beginPrune refuses and counts the reason.
	c.beginPrune(false, true)
	c.traceGlobals(globals)
	scans := make([]TaskScan, len(tasks))
	c.collectSerial(tasks, scans)
	c.traceRememberedShard(shard)
	c.endPrune()

	c.Stats.TypeGCBuilt = c.b.Built
	c.genTracking = false
	c.Heap.EndMinorGC()
	c.refilterRemembered()
	pause := time.Since(start).Nanoseconds()
	c.Stats.PauseNS += pause
	c.Telem.record(c, "minor", shard+1, pause, false, false, scans, usedBefore, statsBefore, heapBefore)
	if c.Verify {
		c.verifyCollection(tasks, globals)
	}
}

// traceGlobals forwards/marks the global slots (always serial).
func (c *Collector) traceGlobals(globals []code.Word) {
	for i, g := range c.Prog.Globals {
		if c.Strat == StratTagged {
			globals[i] = c.traceTaggedWord(globals[i])
		} else {
			gc := c.FromDesc(g.Desc, nil)
			globals[i] = gc.Trace(c, globals[i])
		}
	}
}

// collectSerial is the sequential oracle: task stacks scanned one at a
// time, in task order. The parallel path re-runs it after a watchdog abort.
func (c *Collector) collectSerial(tasks []TaskRoots, scans []TaskScan) {
	sc := c.scratch0()
	for i := range tasks {
		wordsBefore := c.Heap.Stats.WordsCopied
		snap := c.Stats
		if c.Strat == StratTagged {
			c.collectTaggedTask(tasks[i])
		} else {
			c.collectTask(tasks[i], sc)
		}
		scans[i] = TaskScan{
			Task:    i,
			Frames:  c.Stats.FramesTraced - snap.FramesTraced,
			Slots:   c.Stats.SlotsTraced - snap.SlotsTraced,
			Objects: c.Stats.ObjectsCopied - snap.ObjectsCopied,
			Words:   c.Heap.Stats.WordsCopied - wordsBefore,
		}
	}
}

// collectTask walks one task's stack oldest→newest, passing type packages
// frame to frame (§3: "the stack is traversed at most twice" — one pass to
// gather frame pointers, one to trace).
func (c *Collector) collectTask(t TaskRoots, sc *scratch) {
	fps, pcs := frameChain(t)
	fast := c.Strat == StratCompiled && !c.DisableFastPath
	var incoming pkg
	var ic planIC
	var prev *framePlan
	for i, fp := range fps {
		siteIdx, site := c.siteAtFast(pcs[i], &c.Stats)
		fi := c.Prog.Funcs[site.Func]
		if fast {
			// Compiled fast path: resolve the frame's plan — through the
			// caller plan's edge cache when possible, otherwise by type
			// arguments — then run it: slot routines, kernels, dedupe and
			// outgoing package all precomputed per (site, instantiation).
			plan := c.planForEdge(prev, &ic, siteIdx, site, fi, incoming, t.Stack, fp, sc, &c.Stats)
			c.tracePlan(plan, t.Stack, fp+2, t.AtCall && i == len(fps)-1)
			incoming, prev = plan.out, plan
			continue
		}
		var targs []TypeGC
		if c.Strat == StratAppel {
			targs = c.appelTypeArgs(t, fps, pcs, i, &c.Stats, sc)
		} else {
			targs = c.frameTypeArgs(fi, incoming, t.Stack, fp, sc)
		}
		c.traceFrame(siteIdx, site, fi, t.Stack, fp, targs, t.AtCall && i == len(fps)-1)
		if i < len(fps)-1 && c.Strat != StratAppel {
			incoming = c.outgoing(site, targs)
		}
	}
	c.Stats.FramesTraced += int64(len(fps))
}

// frameChain returns the frame pointers oldest-first and the pc each frame
// is blocked at (the callee's stored return address, or the task's current
// pc for the newest frame). Gathering the chain is the paper's initial
// pointer-reversal traversal, realized as an index pass.
func frameChain(t TaskRoots) (fps, pcs []int) {
	for fp := t.FP; fp >= 0; fp = int(t.Stack[fp]) {
		fps = append(fps, fp)
	}
	// Reverse to oldest-first.
	for i, j := 0, len(fps)-1; i < j; i, j = i+1, j-1 {
		fps[i], fps[j] = fps[j], fps[i]
	}
	pcs = make([]int, len(fps))
	for i := range fps {
		if i == len(fps)-1 {
			pcs[i] = t.PC
		} else {
			pcs[i] = int(t.Stack[fps[i+1]+1])
		}
	}
	return fps, pcs
}

// siteAt reads the gc_word embedded next to the call/alloc instruction at
// pc — the Figure 1 lookup.
func (c *Collector) siteAt(pc int) (int, *code.SiteInfo) {
	op := c.Prog.Code[pc]
	off := code.GCWordOffset(op)
	if off < 0 {
		panic(fmt.Sprintf("gc: no gc_word at pc %d (op %s)", pc, code.OpName(op)))
	}
	gcw := c.Prog.Code[pc+off]
	if gcw < 0 {
		panic(fmt.Sprintf("gc: collection at elided gc_word (pc %d)", pc))
	}
	return int(gcw), c.Prog.Sites[gcw]
}

// frameTypeArgs resolves a frame's type environment. Windows come from the
// caller's scratch arena, valid until the next collection begins.
func (c *Collector) frameTypeArgs(fi *code.FuncInfo, incoming pkg, stack []code.Word, fp int, sc *scratch) []TypeGC {
	switch fi.TypeSource {
	case code.TypeSourceNone:
		return nil
	case code.TypeSourceCallSite:
		return incoming.direct
	case code.TypeSourceEnv:
		env := stack[fp+2] // slot 0: the closure being executed
		return c.envTypeArgs(fi, env, incoming.arrow, sc)
	}
	return nil
}

// envTypeArgs derives a closure-called frame's type arguments from the
// call-site package (derivable entries) and the closure's rep words.
func (c *Collector) envTypeArgs(fi *code.FuncInfo, clos code.Word, ref TypeGC, sc *scratch) []TypeGC {
	targs := sc.typeArgs(fi.TypeEnvLen)
	for i := 0; i < fi.TypeEnvLen; i++ {
		switch {
		case fi.RepWord != nil && fi.RepWord[i] >= 0 && code.IsBoxedValue(c.Heap.Repr, clos):
			h := int(code.DecodeInt(c.Heap.Repr, c.Heap.Field(clos, 1+fi.RepWord[i])))
			targs[i] = c.FromRep(h)
		case fi.Derivs != nil && fi.Derivs[i] != nil && ref != nil:
			targs[i] = ApplyPath(ref, fi.Derivs[i])
		default:
			targs[i] = c.b.Const()
		}
	}
	return targs
}

// outgoing builds the package this frame's routine passes to its callee's.
func (c *Collector) outgoing(site *code.SiteInfo, targs []TypeGC) pkg {
	switch site.Kind {
	case code.SiteCall:
		out := make([]TypeGC, len(site.CalleeInst))
		for i, d := range site.CalleeInst {
			out[i] = c.FromDesc(d, targs)
		}
		return pkg{direct: out}
	case code.SiteCallC:
		return pkg{arrow: c.FromDesc(site.SiteType, targs)}
	}
	return pkg{}
}

// traceFrame traces one frame's slots per the strategy.
func (c *Collector) traceFrame(siteIdx int, site *code.SiteInfo, fi *code.FuncInfo, stack []code.Word, fp int, targs []TypeGC, atCall bool) {
	base := fp + 2
	if DebugTrace {
		fmt.Printf("  frame %s (fp=%d targs=%d) site kind=%d live=%d calleeInst=%d callee=%s\n",
			c.Prog.Funcs[site.Func].Name, fp, len(targs), site.Kind, len(site.Live),
			len(site.CalleeInst), c.Prog.Funcs[site.Callee].Name)
	}
	// When the frame is suspended at a call, the site's argument map is
	// walked after the frame's own slots; any slot both walks cover must be
	// traced once only. A second Trace of the same slot would dereference
	// the to-space pointer the first trace wrote there (Appel mode hits
	// this: AllSlots ignores liveness and so covers the staged arguments).
	var traced slotSet
	note := func(slot int) {
		if atCall {
			traced.add(slot)
		}
	}
	switch c.Strat {
	case StratCompiled:
		for _, st := range c.compiledSites[siteIdx] {
			g := st.ground
			if g == nil {
				g = c.FromDesc(st.desc, targs)
			}
			if DebugTrace {
				fmt.Printf("    slot %d val=%d desc=%s\n", st.slot, stack[base+st.slot], st.desc)
			}
			stack[base+st.slot] = g.Trace(c, stack[base+st.slot])
			c.Stats.SlotsTraced++
			note(st.slot)
		}
	case StratInterp:
		c.interpTraceFrame(c.interpSites[siteIdx], stack, base, targs, &traced, atCall)
	case StratAppel:
		for _, e := range fi.AllSlots {
			g := c.FromDesc(e.Desc, targs)
			stack[base+e.Slot] = g.Trace(c, stack[base+e.Slot])
			c.Stats.SlotsTraced++
			note(e.Slot)
		}
	}
	if atCall {
		// A task suspended before executing a call still owns the call's
		// argument values in its own slots; trace them through the site's
		// argument map (tasking, §4).
		for _, e := range site.Args {
			if traced.has(e.Slot) {
				continue
			}
			g := c.FromDesc(e.Desc, targs)
			stack[base+e.Slot] = g.Trace(c, stack[base+e.Slot])
			c.Stats.SlotsTraced++
		}
	}
}

// ---------------------------------------------------------------------------
// Appel-mode type resolution: re-walk the chain for every frame.
// ---------------------------------------------------------------------------

// appelTypeArgs resolves frame i's type arguments by walking the dynamic
// chain from the bottom every time — "the tracing of each polymorphic
// function's activation record may involve traversing a fair amount of the
// stack" (§1.1.1/§3). The work is O(i) per frame, O(n²) per collection.
// Chain steps land in st so parallel workers can count into local stats.
func (c *Collector) appelTypeArgs(t TaskRoots, fps, pcs []int, target int, st *Stats, sc *scratch) []TypeGC {
	var incoming pkg
	for j := 0; j <= target; j++ {
		_, site := c.siteAtFast(pcs[j], st)
		fi := c.Prog.Funcs[site.Func]
		targs := c.frameTypeArgs(fi, incoming, t.Stack, fps[j], sc)
		st.ChainSteps++
		if j == target {
			return targs
		}
		incoming = c.outgoing(site, targs)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Tagged baseline.
// ---------------------------------------------------------------------------

// collectTaggedTask scans every word of every frame by tag bits. No
// compiler metadata is consulted: frame extents come from the dynamic
// links alone.
func (c *Collector) collectTaggedTask(t TaskRoots) {
	fps, _ := frameChain(t)
	for i, fp := range fps {
		var end int
		if i == len(fps)-1 {
			end = t.SP
		} else {
			end = fps[i+1]
		}
		for j := fp + 2; j < end; j++ {
			c.Stats.WordsScanned++
			t.Stack[j] = c.traceTaggedWord(t.Stack[j])
		}
	}
	c.Stats.FramesTraced += int64(len(fps))
}

// traceTaggedWord forwards one word if it is a pointer.
func (c *Collector) traceTaggedWord(w code.Word) code.Word {
	if !code.IsBoxedValue(code.ReprTagged, w) {
		return w
	}
	if fwd, ok := c.Heap.Forwarded(w); ok {
		return fwd
	}
	n := c.Heap.ObjLen(w)
	nw := c.Heap.CopyObject(w, n)
	c.Stats.ObjectsCopied++
	return nw
}

// cheneyScan completes the tagged collection: scan to-space linearly,
// forwarding every pointer field (headers give object extents). The scan
// runs batched — one callback per object over its field words in place —
// instead of one indirect call per word.
func (c *Collector) cheneyScan() {
	c.Heap.ScanToSpaceBatched(func(fields []code.Word) {
		c.Stats.WordsScanned += int64(len(fields))
		for i, w := range fields {
			fields[i] = c.traceTaggedWord(w)
		}
	})
}
