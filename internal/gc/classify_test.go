package gc

// Kernel-classifier unit tests, in-package because classification is a
// plan-build detail. These pin the shapes the ROADMAP called out as
// uncovered — strings-of-ground (interned const indices) and nested flat
// tuples — plus the liveness-guided pruning classifier's refusals.

import (
	"testing"

	"tagfree/internal/code"
)

// classifierCollector builds the minimal collector classification needs:
// a builder and the datatype layouts field descriptors resolve against.
func classifierCollector(layouts ...*code.DataLayout) *Collector {
	return &Collector{Prog: &code.Program{Data: layouts}, b: newBuilder()}
}

var (
	descConst = &code.TypeDesc{Kind: code.TDConst}
	descVar0  = &code.TypeDesc{Kind: code.TDVar, Index: 0}
)

func descTuple(fields ...*code.TypeDesc) *code.TypeDesc {
	return &code.TypeDesc{Kind: code.TDTuple, Args: fields}
}

func descData(layout int, args ...*code.TypeDesc) *code.TypeDesc {
	return &code.TypeDesc{Kind: code.TDData, Index: layout, Args: args}
}

// listLayout is the builtin-list shape: one boxed constructor
// (head: param 0, tail: the list itself), no tag word.
func listLayout(self int) *code.DataLayout {
	return &code.DataLayout{
		Name:       "list",
		HasTagWord: false,
		Boxed: []code.CtorLayout{
			{Name: "::", Fields: []*code.TypeDesc{descVar0, descData(self, descVar0)}},
		},
	}
}

// treeLayout is the binary-tree shape: Node of tree * int * tree, tagless
// (one boxed constructor).
func treeLayout(self int) *code.DataLayout {
	return &code.DataLayout{
		Name:       "tree",
		HasTagWord: false,
		Boxed: []code.CtorLayout{
			{Name: "Node", Fields: []*code.TypeDesc{descData(self), descConst, descData(self)}},
		},
	}
}

func TestClassifyGroundShapes(t *testing.T) {
	c := classifierCollector()
	b := c.b
	ints := b.Const()
	flat := b.Tuple([]TypeGC{ints, ints})

	cases := []struct {
		name string
		g    TypeGC
		want kernel
	}{
		// Strings are interned constant-table indices (TDConst), so a
		// string slot — and any tuple of strings — is the const kernel,
		// same as ints: nothing on the heap to trace.
		{"string", c.FromDesc(descConst, nil), kConst},
		{"tuple-of-strings", b.Tuple([]TypeGC{ints, ints, ints}), kTupleFlat},
		{"ref-of-const", b.Ref(ints), kRefConst},
		{"flat-tuple", flat, kTupleFlat},
		{"nested-flat-tuple", b.Tuple([]TypeGC{flat, ints, flat}), kBoxFlat},
		{"ref-of-flat-tuple", b.Ref(flat), kBoxFlat},
		{"deep-nest", b.Tuple([]TypeGC{b.Tuple([]TypeGC{flat, flat}), ints}), kBoxFlat},
		{"tuple-with-arrow", b.Tuple([]TypeGC{ints, b.Arrow(ints, ints)}), kGeneric},
		{"bare-arrow", b.Arrow(ints, ints), kGeneric},
	}
	for _, tc := range cases {
		k, sk, bk := c.classify(tc.g)
		if k != tc.want {
			t.Errorf("%s: kernel = %d, want %d", tc.name, k, tc.want)
		}
		if (k == kBoxFlat) != (bk != nil) {
			t.Errorf("%s: box kernel presence mismatch (k=%d bk=%v)", tc.name, k, bk)
		}
		if sk != nil {
			t.Errorf("%s: unexpected spine kernel", tc.name)
		}
	}
}

// The nested-flat-tuple box kernel must mirror the tuple's layout exactly:
// sub-boxes at the boxed offsets in field order, const fields skipped.
func TestClassifyBoxKernelLayout(t *testing.T) {
	c := classifierCollector()
	b := c.b
	ints := b.Const()
	flat := b.Tuple([]TypeGC{ints, ints})
	g := b.Tuple([]TypeGC{flat, ints, flat})

	k, _, bk := c.classify(g)
	if k != kBoxFlat || bk == nil {
		t.Fatalf("classify = %d, %v; want kBoxFlat with a box kernel", k, bk)
	}
	if bk.size != 3 {
		t.Errorf("size = %d, want 3", bk.size)
	}
	if len(bk.subs) != 2 || bk.subs[0].off != 0 || bk.subs[1].off != 2 {
		t.Fatalf("subs = %+v, want boxed fields at offsets 0 and 2", bk.subs)
	}
	for _, s := range bk.subs {
		if s.box == nil || s.box.size != 2 || len(s.box.subs) != 0 {
			t.Errorf("sub at %d: inner box = %+v, want flat pair", s.off, s.box)
		}
	}
}

func TestClassifySpineShapes(t *testing.T) {
	c := classifierCollector(listLayout(0), treeLayout(1))
	b := c.b
	ints := b.Const()
	flat := b.Tuple([]TypeGC{ints, ints})

	intList := b.Data(0, c.Prog.Data[0], []TypeGC{ints})
	k, sk, _ := c.classify(intList)
	if k != kSpineFlat || sk == nil {
		t.Fatalf("int list: classify = %d, want kSpineFlat", k)
	}
	if sk.hasTag || sk.size[0] != 2 || sk.tail[0] != 1 || len(sk.steps[0]) != 0 {
		t.Errorf("int list kernel = %+v, want tagless size-2 tail-1 no steps", sk)
	}

	// List of flat tuples: the payload traces through a box step, the
	// tail still iterates.
	pairList := b.Data(0, c.Prog.Data[0], []TypeGC{flat})
	k, sk, _ = c.classify(pairList)
	if k != kSpineFlat || sk == nil {
		t.Fatalf("pair list: classify = %d, want kSpineFlat", k)
	}
	if len(sk.steps[0]) != 1 || sk.steps[0][0].kind != sfBox || sk.steps[0][0].off != 0 {
		t.Fatalf("pair list steps = %+v, want one sfBox at offset 0", sk.steps[0])
	}
	if sk.tail[0] != 1 {
		t.Errorf("pair list tail = %d, want 1", sk.tail[0])
	}

	// Binary tree: first child recurses (sfSelf), last child is the tail.
	tree := b.Data(1, c.Prog.Data[1], nil)
	k, sk, _ = c.classify(tree)
	if k != kSpineFlat || sk == nil {
		t.Fatalf("tree: classify = %d, want kSpineFlat", k)
	}
	if len(sk.steps[0]) != 1 || sk.steps[0][0].kind != sfSelf || sk.steps[0][0].off != 0 {
		t.Fatalf("tree steps = %+v, want one sfSelf at offset 0", sk.steps[0])
	}
	if sk.tail[0] != 2 {
		t.Errorf("tree tail = %d, want 2", sk.tail[0])
	}

	// A list of closures defeats the full-trace kernels entirely.
	closList := b.Data(0, c.Prog.Data[0], []TypeGC{b.Arrow(ints, ints)})
	if k, _, _ := c.classify(closList); k != kGeneric {
		t.Errorf("closure list: classify = %d, want kGeneric", k)
	}
}

func TestClassifyPrune(t *testing.T) {
	c := classifierCollector(listLayout(0), treeLayout(1))
	b := c.b
	ints := b.Const()

	// Pruning is shape-permissive: even a list of closures — which the
	// full-trace classifier refuses — prunes, because the payload is
	// overwritten, not traced.
	closList := b.Data(0, c.Prog.Data[0], []TypeGC{b.Arrow(ints, ints)})
	sk := c.classifyPrune(closList)
	if sk == nil {
		t.Fatal("closure list: want a pruning kernel")
	}
	if len(sk.steps[0]) != 1 || sk.steps[0][0].kind != sfPrune || sk.steps[0][0].off != 0 {
		t.Fatalf("closure list steps = %+v, want one sfPrune at offset 0", sk.steps[0])
	}
	if sk.tail[0] != 1 {
		t.Errorf("closure list tail = %d, want 1", sk.tail[0])
	}

	// An int list has nothing to prune but still gets a kernel (the spine
	// walk itself is the point; const payloads are skipped).
	intList := b.Data(0, c.Prog.Data[0], []TypeGC{ints})
	if sk := c.classifyPrune(intList); sk == nil || len(sk.steps[0]) != 0 {
		t.Errorf("int list: want a pruning kernel with no steps, got %+v", sk)
	}

	// A tree's non-tail self field must recurse, never prune.
	tree := b.Data(1, c.Prog.Data[1], nil)
	sk = c.classifyPrune(tree)
	if sk == nil || len(sk.steps[0]) != 1 || sk.steps[0][0].kind != sfSelf {
		t.Fatalf("tree: want sfSelf step, got %+v", sk)
	}

	// Non-datatype roots never prune.
	if sk := c.classifyPrune(b.Tuple([]TypeGC{ints, ints})); sk != nil {
		t.Errorf("tuple: pruning kernel = %+v, want nil", sk)
	}

	// Non-regular recursion: a field of the same datatype at a *different*
	// instantiation is a spine step to the analysis, so pruning must
	// refuse the whole shape rather than sever it.
	nonreg := &code.DataLayout{
		Name:       "nest",
		HasTagWord: false,
		Boxed: []code.CtorLayout{
			{Name: "N", Fields: []*code.TypeDesc{
				descVar0,
				descData(2, descTuple(descVar0, descVar0)),
			}},
		},
	}
	c2 := classifierCollector(listLayout(0), treeLayout(1), nonreg)
	g := c2.b.Data(2, nonreg, []TypeGC{c2.b.Const()})
	if sk := c2.classifyPrune(g); sk != nil {
		t.Errorf("non-regular recursion: pruning kernel = %+v, want nil", sk)
	}
}
