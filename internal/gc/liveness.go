package gc

import "tagfree/internal/code"

// Liveness-guided tracing: the runtime half of the compile-side
// heap-liveness analysis (internal/compile/gcanal/heapliveness.go).
//
// The analysis proves, per frame slot of a recursive datatype at each GC
// point, that the program can only ever walk the structure's *spine* from
// here on — length/append-style consumers whose element fields are
// provably dead. Codegen threads that verdict into the frame-trace
// metadata (code.SlotEntry.Spine), the plan builder attaches a pruning
// kernel (classifyPrune) to verdict-carrying slots, and the collector
// replaces dead element fields with the code.PrunedWord sentinel instead
// of retaining them.
//
// Soundness rests on two-phase root tracing, not alias analysis. A slot's
// verdict speaks only for its own access path: the same list may be
// reachable in full through another slot, another task, a global, or a
// remembered-set entry. So a pruning collection runs in two phases:
//
//  1. Every full-verdict root (and the globals, and on a minor the
//     remembered set) traces normally; spine-verdict slots are *deferred*
//     onto pruneQ instead of traced.
//  2. drainPrune runs the deferred slots through their pruning kernels.
//     The walk claims objects through the same VisitObject the full trace
//     used, so it stops dead at anything a live path already reached —
//     sentinels land only in objects reachable *exclusively* through
//     spine-only paths, where every verdict agrees the elements are dead.
//
// The sentinel (0xDEAD) is unboxed under both representations, so every
// downstream consumer — the verifier's typed re-walk, the generational
// write barrier, remembered-set refiltering — treats a pruned field as an
// ordinary scalar. The pipeline's poison mode additionally traps any
// compiled-code load of the sentinel, which is what makes the verdicts
// falsifiable in tests.
//
// Pruning engages per collection only inside a degrade envelope, because
// the two-phase ordering argument needs a single ordered trace over a
// quiescent world:
//
//   - compiled strategy with the fast path on (the verdicts live in frame
//     plans; interp/appel/tagged have none),
//   - serial trace (parallel workers interleave phase 1 and phase 2),
//   - no shard overlap (other shards' mutators hold unscanned live paths),
//   - no concurrent mark cycle (snapshot roots predate the verdicts).
//
// Ineligible collections trace everything in full — pruning degrades to
// exact correctness, never the other way — and each refusal is counted.

// LivenessStats counts liveness-guided pruning activity.
type LivenessStats struct {
	// PruneCollections counts collections that engaged pruning.
	PruneCollections int64 `json:"prune_collections,omitempty"`
	// SpineRoots counts deferred spine-verdict roots drained by pruning
	// kernels.
	SpineRoots int64 `json:"spine_roots,omitempty"`
	// Degraded* count collections that wanted pruning (HeapLiveness set)
	// but refused it, by reason. A collection counts at most one reason,
	// checked in the order listed.
	DegradedStrategy   int64 `json:"degraded_strategy,omitempty"`   // not the compiled strategy
	DegradedFastPath   int64 `json:"degraded_fastpath,omitempty"`   // DisableFastPath set
	DegradedParallel   int64 `json:"degraded_parallel,omitempty"`   // parallel trace phase
	DegradedShard      int64 `json:"degraded_shard,omitempty"`      // single-shard minor with mutators running
	DegradedConcurrent int64 `json:"degraded_concurrent,omitempty"` // concurrent mark cycle (counted at ConcStart)
}

// pruneItem is one deferred spine-verdict root: the slot's location and
// the pruning kernel to drain it with.
type pruneItem struct {
	stack []code.Word
	idx   int
	g     TypeGC
	sk    *spineKernel
}

// beginPrune decides whether this collection may prune, counting the
// degrade reason when it may not. Callers pass the trace shape: parallel
// for a multi-worker trace phase, shard for a single-shard minor.
func (c *Collector) beginPrune(parallel, shard bool) {
	c.pruneOn = false
	if !c.HeapLiveness {
		return
	}
	switch {
	case c.Strat != StratCompiled:
		c.Liveness.DegradedStrategy++
	case c.DisableFastPath:
		c.Liveness.DegradedFastPath++
	case parallel:
		c.Liveness.DegradedParallel++
	case shard:
		c.Liveness.DegradedShard++
	default:
		c.pruneOn = true
		c.Liveness.PruneCollections++
	}
}

// endPrune drains the deferred spine-verdict roots and disarms pruning.
// It must run after every full root of the collection has been traced
// (including the remembered set on a minor): the drain's soundness is the
// two-phase ordering.
func (c *Collector) endPrune() {
	if !c.pruneOn {
		return
	}
	for i := range c.pruneQ {
		it := &c.pruneQ[i]
		it.stack[it.idx] = c.traceSpine(it.sk, it.g, it.stack[it.idx], &c.Stats)
		c.Liveness.SpineRoots++
	}
	c.pruneQ = c.pruneQ[:0]
	c.pruneOn = false
}
