package gc

import (
	"sync"
	"testing"
)

// TestFailAllocConcurrent hammers one FaultPlan from many goroutines.
// Before the counter went atomic and the PRNG seeding went through
// sync.Once, this raced on p.allocs and on the lazy p.rng init (two
// goroutines could each build a PRNG and one would be lost, or worse,
// interleave writes). Run under -race this is a regression test for both.
func TestFailAllocConcurrent(t *testing.T) {
	p := &FaultPlan{FailEvery: 7, FailProb: 0.1, Seed: 42}
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.FailAlloc()
			}
		}()
	}
	wg.Wait()
	if got := p.Allocs(); got != workers*perWorker {
		t.Fatalf("Allocs() = %d, want %d (lost increments)", got, workers*perWorker)
	}
}

// TestFailAllocDeterministic pins the single-threaded replay guarantee:
// two plans with the same seed and knobs make identical decisions.
func TestFailAllocDeterministic(t *testing.T) {
	a := &FaultPlan{FailNth: 3, FailEvery: 11, FailProb: 0.25, Seed: 7}
	b := &FaultPlan{FailNth: 3, FailEvery: 11, FailProb: 0.25, Seed: 7}
	for i := 0; i < 1000; i++ {
		if a.FailAlloc() != b.FailAlloc() {
			t.Fatalf("decision %d diverged between identically seeded plans", i)
		}
	}
}
