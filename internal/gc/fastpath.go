package gc

// The collection fast path makes the Compiled strategy actually compiled
// at pause time. The baseline collector, faithful to the paper's
// presentation, still re-derived everything per frame per collection:
// the gc_word was decoded from the instruction stream for every frame, a
// polymorphic frame's []TypeGC and outgoing package were rebuilt through
// the hash-consing builder (string keys under a mutex) for every frame of
// every collection, and every traced word paid a Trace interface call.
// For the dominant workload shape — deep recursive stacks of one function
// at one instantiation over list/tree structure — all of that work is
// identical across frames and across collections.
//
// Three caches remove it:
//
//   - A pc→site lookup cache (Collector.siteCache): the resolved site
//     index for each return address, filled on first decode and then a
//     single atomic load. Workers share it lock-free.
//   - A frame-plan cache (planCache): keyed by (site, identity of the
//     incoming type instantiation), memoizing the fully resolved frame
//     routine — per-slot TypeGC, the specialized kernel chosen for each
//     slot, the call-argument map minus slots the frame walk already
//     covers, and the outgoing package handed to the callee. A tower of N
//     equal frames resolves its types once, not N times per collection.
//   - Specialized trace kernels: flattened iterative loops for the
//     dominant ground shapes (const, ref-of-const, tuple-of-const,
//     const-payload data spines such as int lists) selected at plan-build
//     time, replacing recursive Trace interface dispatch per word.
//
// All three are read lock-free during parallel collection: the plan cache
// and the TypeGC builder keep an immutable snapshot map (promoted before
// each parallel phase) consulted without locking, with a mutex-guarded
// dirty map behind it for misses. Collector.DisableFastPath restores the
// uncached per-frame resolution — the differential suite's oracle — and
// the fast path is required (and tested) to produce bit-identical heaps.

import (
	"sync"
	"sync/atomic"

	"tagfree/internal/code"
)

// ---------------------------------------------------------------------------
// slotSet: per-frame slot membership without the O(slots²) linear scan.
// ---------------------------------------------------------------------------

// slotSet tracks which frame slots have been traced. Frames are usually
// narrow, so the first 64 slots live in one word; wider frames (generated
// code with many temporaries) spill into a bitmap slice. Both membership
// test and insert are O(1), replacing the linear scan that made suspended
// wide frames quadratic.
type slotSet struct {
	small uint64
	big   []uint64
}

func (s *slotSet) add(slot int) {
	if slot < 64 {
		s.small |= 1 << uint(slot)
		return
	}
	w := slot/64 - 1
	for w >= len(s.big) {
		s.big = append(s.big, 0)
	}
	s.big[w] |= 1 << uint(slot%64)
}

func (s *slotSet) has(slot int) bool {
	if slot < 64 {
		return s.small&(1<<uint(slot)) != 0
	}
	w := slot/64 - 1
	return w < len(s.big) && s.big[w]&(1<<uint(slot%64)) != 0
}

// ---------------------------------------------------------------------------
// Kernels: flattened trace loops for the dominant ground shapes.
// ---------------------------------------------------------------------------

// kernel selects the specialized trace loop for one slot, chosen once at
// plan-build time by classify.
type kernel uint8

const (
	// kGeneric falls back to TypeGC.Trace interface dispatch.
	kGeneric kernel = iota
	// kConst: unboxed value, nothing to trace.
	kConst
	// kRefConst: a ref cell whose element is unboxed — copy one object,
	// no field tracing.
	kRefConst
	// kTupleFlat: a tuple of all-unboxed fields — copy one object whose
	// field words are already correct verbatim.
	kTupleFlat
	// kBoxFlat: a fixed tree of flat boxes — a tuple (or ref) whose boxed
	// fields are themselves flat boxes all the way down (nested flat
	// tuples, refs of flat tuples). Traced by a precomputed boxKernel with
	// no per-field dispatch.
	kBoxFlat
	// kSpineFlat: a datatype whose boxed constructors carry unboxed
	// payload fields, flat-box payload fields, and self-recursive fields
	// (int lists, lists of flat tuples, enums with data, binary trees) —
	// an iterative loop over the rightmost spine with direct recursion
	// into the other self-recursive fields and boxKernel copies for the
	// boxed payloads, zero per-field dispatch.
	kSpineFlat
)

// boxKernel is the precomputed layout of a fixed "flat box": an object of
// size words whose fields are unboxed except subs, each itself a flat box.
type boxKernel struct {
	size int
	subs []boxSub
}

// boxSub is one boxed field of a flat box: its offset, the field's routine
// (for the generational write barrier), and its own layout.
type boxSub struct {
	off int
	g   TypeGC
	box *boxKernel
}

// flatBox builds the boxKernel for a routine, or nil when the shape is not
// a fixed tree of flat boxes. Only tuples and refs recurse, so the shape
// is a finite type tree and the recursion terminates.
func (c *Collector) flatBox(g TypeGC) *boxKernel {
	switch g := g.(type) {
	case *tupleG:
		bk := &boxKernel{size: len(g.fields)}
		for i, f := range g.fields {
			if _, ok := f.(*constG); ok {
				continue
			}
			sub := c.flatBox(f)
			if sub == nil {
				return nil
			}
			bk.subs = append(bk.subs, boxSub{off: i, g: f, box: sub})
		}
		return bk
	case *refG:
		bk := &boxKernel{size: 1}
		if _, ok := g.elem.(*constG); ok {
			return bk
		}
		sub := c.flatBox(g.elem)
		if sub == nil {
			return nil
		}
		bk.subs = append(bk.subs, boxSub{off: 0, g: g.elem, box: sub})
		return bk
	}
	return nil
}

// sfKind distinguishes the non-const work a spine step performs.
type sfKind uint8

const (
	// sfSelf recurses the spine routine itself (a tree child).
	sfSelf sfKind = iota
	// sfBox copies a flat-box payload through its boxKernel.
	sfBox
	// sfPrune writes the PrunedWord sentinel instead of tracing: the
	// heap-liveness verdict proved the payload unreachable through this
	// access path (classifyPrune kernels only; see tracePrune).
	sfPrune
)

// spineField is one non-const, non-tail field of a spine constructor, in
// field order (matching dataG.Trace's dispatch order exactly).
type spineField struct {
	off  int
	kind sfKind
	g    TypeGC     // the field's routine, for the write barrier
	box  *boxKernel // sfBox only
}

// spineKernel is the precomputed per-tag layout a kSpineFlat loop needs:
// the visited object size, the recursive tail field offset (-1 for a
// terminal constructor) iterated without growing the Go stack, and the
// remaining traced fields in field order. All offsets include the optional
// tag word.
type spineKernel struct {
	hasTag bool
	size   []int
	tail   []int
	steps  [][]spineField
}

// classify picks the kernel for a routine. Classification resolves the
// same descriptors Trace would, so it builds no nodes Trace would not.
func (c *Collector) classify(g TypeGC) (kernel, *spineKernel, *boxKernel) {
	switch g := g.(type) {
	case *constG:
		return kConst, nil, nil
	case *refG:
		if _, ok := g.elem.(*constG); ok {
			return kRefConst, nil, nil
		}
		if bk := c.flatBox(g); bk != nil {
			return kBoxFlat, nil, bk
		}
	case *tupleG:
		if bk := c.flatBox(g); bk != nil {
			if len(bk.subs) == 0 {
				return kTupleFlat, nil, nil
			}
			return kBoxFlat, nil, bk
		}
	case *dataG:
		sk := &spineKernel{
			hasTag: g.layout.HasTagWord,
			size:   make([]int, len(g.layout.Boxed)),
			tail:   make([]int, len(g.layout.Boxed)),
			steps:  make([][]spineField, len(g.layout.Boxed)),
		}
		off := 0
		if sk.hasTag {
			off = 1
		}
		for tag := range g.layout.Boxed {
			fields := g.layout.Boxed[tag].Fields
			sk.size[tag] = off + len(fields)
			sk.tail[tag] = -1
			for i, fd := range fields {
				fgc := c.FromDesc(fd, g.args)
				if fgc == g {
					// Hash-consing makes node identity instantiation
					// identity, so fgc == g is exactly "this datatype at
					// this instantiation". The last field iterates as the
					// spine; the rest (tree children) recurse.
					if i == len(fields)-1 {
						sk.tail[tag] = off + i
					} else {
						sk.steps[tag] = append(sk.steps[tag], spineField{off: off + i, kind: sfSelf, g: fgc})
					}
					continue
				}
				if _, ok := fgc.(*constG); ok {
					continue
				}
				if bk := c.flatBox(fgc); bk != nil {
					sk.steps[tag] = append(sk.steps[tag], spineField{off: off + i, kind: sfBox, g: fgc, box: bk})
					continue
				}
				return kGeneric, nil, nil
			}
		}
		return kSpineFlat, sk, nil
	}
	return kGeneric, nil, nil
}

// classifyPrune builds the spine-only pruning kernel for a routine, or nil
// when pruning does not apply. It is more permissive than classify: every
// non-const, non-self field is pruned (sentinel-overwritten) rather than
// traced, so payload shape does not matter. The one refusal is a
// same-datatype field at a *different* instantiation (non-regular
// recursion): the compile-side analysis treats any same-datatype field as
// a spine step, so pruning it would sever a spine the program may still
// walk.
func (c *Collector) classifyPrune(g TypeGC) *spineKernel {
	dg, ok := g.(*dataG)
	if !ok {
		return nil
	}
	sk := &spineKernel{
		hasTag: dg.layout.HasTagWord,
		size:   make([]int, len(dg.layout.Boxed)),
		tail:   make([]int, len(dg.layout.Boxed)),
		steps:  make([][]spineField, len(dg.layout.Boxed)),
	}
	off := 0
	if sk.hasTag {
		off = 1
	}
	for tag := range dg.layout.Boxed {
		fields := dg.layout.Boxed[tag].Fields
		sk.size[tag] = off + len(fields)
		sk.tail[tag] = -1
		for i, fd := range fields {
			fgc := c.FromDesc(fd, dg.args)
			if fgc == g {
				if i == len(fields)-1 {
					sk.tail[tag] = off + i
				} else {
					sk.steps[tag] = append(sk.steps[tag], spineField{off: off + i, kind: sfSelf, g: fgc})
				}
				continue
			}
			if fdg, same := fgc.(*dataG); same && fdg.layoutID == dg.layoutID {
				return nil // non-regular recursion: the analysis calls this a spine step
			}
			if _, isConst := fgc.(*constG); isConst {
				continue
			}
			sk.steps[tag] = append(sk.steps[tag], spineField{off: off + i, kind: sfPrune, g: fgc})
		}
	}
	return sk
}

// traceKernel traces one root through its specialized loop (or the generic
// Trace for kGeneric). It mutates the heap exactly as Trace would — same
// visit order, same copies — so fast-path heaps stay bit-identical to the
// oracle's. st receives the object/word counters (c.Stats on the serial
// and ordered-trace paths; a worker-local block during parallel marking
// never reaches here — see markKernel).
func (c *Collector) traceKernel(ps *planSlot, w code.Word, st *Stats) code.Word {
	switch ps.k {
	case kConst:
		return w
	case kRefConst:
		if !code.IsBoxedValue(c.Heap.Repr, w) {
			return w
		}
		nw, fresh := c.Heap.VisitObject(w, 1)
		if fresh {
			st.ObjectsCopied++
			st.KernelWords++
		}
		return nw
	case kTupleFlat:
		if !code.IsBoxedValue(c.Heap.Repr, w) {
			return w
		}
		n := len(ps.g.(*tupleG).fields)
		nw, fresh := c.Heap.VisitObject(w, n)
		if fresh {
			st.ObjectsCopied++
			st.KernelWords += int64(n)
		}
		return nw
	case kBoxFlat:
		return c.traceBox(ps.box, w, st)
	case kSpineFlat:
		return c.traceSpine(ps.spine, ps.g, w, st)
	}
	return ps.g.Trace(c, w)
}

// traceBox copies one flat box and its sub-boxes — tupleG/refG.Trace minus
// the per-field dispatch. Sub-boxes are visited in field order, exactly
// where Trace would dispatch on them, so heaps stay bit-identical.
func (c *Collector) traceBox(bk *boxKernel, w code.Word, st *Stats) code.Word {
	if !code.IsBoxedValue(c.Heap.Repr, w) {
		return w
	}
	nw, fresh := c.Heap.VisitObject(w, bk.size)
	if !fresh {
		return nw
	}
	st.ObjectsCopied++
	st.KernelWords += int64(bk.size)
	for i := range bk.subs {
		s := &bk.subs[i]
		c.setField(nw, s.off, c.traceBox(s.box, c.Heap.Field(nw, s.off), st), s.g)
	}
	return nw
}

// markBox is traceBox's read-only twin for parallel mark/sweep marking.
// Returns the words newly marked.
func (c *Collector) markBox(bk *boxKernel, w code.Word, st *Stats) int64 {
	if !code.IsBoxedValue(c.Heap.Repr, w) {
		return 0
	}
	if _, fresh := c.Heap.VisitShared(w, bk.size); !fresh {
		return 0
	}
	st.ObjectsCopied++
	st.KernelWords += int64(bk.size)
	words := int64(bk.size)
	for i := range bk.subs {
		words += c.markBox(bk.subs[i].box, c.Heap.Field(w, bk.subs[i].off), st)
	}
	return words
}

// traceSpine is the flattened loop for const-payload data spines: visit,
// link the previous copy's tail, advance — dataG.Trace minus the
// per-field FromDesc and Trace dispatch (payload words are correct
// verbatim after the copy). g is the spine's own routine, threaded through
// for the generational tail-link barrier (setField).
func (c *Collector) traceSpine(sk *spineKernel, g TypeGC, w code.Word, st *Stats) code.Word {
	head := code.Word(0)
	haveHead := false
	var prevPtr code.Word // last copied object; its tail field awaits a link
	prevField := -1
	link := func(v code.Word) {
		if prevField >= 0 {
			c.setField(prevPtr, prevField, v, g) // the tail field's routine is g itself
		} else if !haveHead {
			head = v
			haveHead = true
		}
	}
	for {
		if !code.IsBoxedValue(c.Heap.Repr, w) {
			link(w)
			return head0(head, haveHead, w)
		}
		tag := 0
		if sk.hasTag {
			tag = int(code.DecodeInt(c.Heap.Repr, c.Heap.Field(w, 0)))
		}
		nw, fresh := c.Heap.VisitObject(w, sk.size[tag])
		link(nw)
		if !fresh {
			return head0(head, haveHead, nw)
		}
		st.ObjectsCopied++
		st.KernelWords += int64(sk.size[tag])
		// Non-tail, non-const fields run in field order, exactly where
		// dataG.Trace would dispatch on them: tree children recurse the
		// spine, flat-box payloads copy through their boxKernel, and a
		// pruning kernel's dead payloads are sentinel-overwritten (the
		// liveness-guided trace; drained only after every full root — see
		// drainPrune — so an already-visited object stops the walk before
		// anything a live path reached is pruned).
		for i := range sk.steps[tag] {
			f := &sk.steps[tag][i]
			switch f.kind {
			case sfSelf:
				c.setField(nw, f.off, c.traceSpine(sk, g, c.Heap.Field(nw, f.off), st), g)
			case sfBox:
				c.setField(nw, f.off, c.traceBox(f.box, c.Heap.Field(nw, f.off), st), f.g)
			case sfPrune:
				c.setField(nw, f.off, code.PrunedWord, f.g)
				st.PrunedWords++
			}
		}
		t := sk.tail[tag]
		if t < 0 {
			return head0(head, haveHead, nw)
		}
		prevPtr, prevField = nw, t
		w = c.Heap.Field(nw, t)
	}
}

// markKernel is traceKernel's read-only twin for parallel mark/sweep
// collection: objects are claimed through VisitShared's compare-and-swap
// and no heap or stack word is written. It returns the words newly marked.
func (c *Collector) markKernel(ps *planSlot, w code.Word, st *Stats) int64 {
	repr := c.Heap.Repr
	switch ps.k {
	case kConst:
		return 0
	case kRefConst:
		if !code.IsBoxedValue(repr, w) {
			return 0
		}
		if _, fresh := c.Heap.VisitShared(w, 1); !fresh {
			return 0
		}
		st.ObjectsCopied++
		st.KernelWords++
		return 1
	case kTupleFlat:
		if !code.IsBoxedValue(repr, w) {
			return 0
		}
		n := len(ps.g.(*tupleG).fields)
		if _, fresh := c.Heap.VisitShared(w, n); !fresh {
			return 0
		}
		st.ObjectsCopied++
		st.KernelWords += int64(n)
		return int64(n)
	case kBoxFlat:
		return c.markBox(ps.box, w, st)
	case kSpineFlat:
		return c.markSpine(ps.spine, w, st)
	}
	return c.markValue(ps.g, w, st)
}

// markSpine is traceSpine's read-only twin: claim each spine object
// through VisitShared, recurse into the non-tail self-recursive fields,
// iterate the tail. Returns the words newly marked.
func (c *Collector) markSpine(sk *spineKernel, w code.Word, st *Stats) int64 {
	repr := c.Heap.Repr
	var words int64
	for code.IsBoxedValue(repr, w) {
		tag := 0
		if sk.hasTag {
			tag = int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
		}
		if _, fresh := c.Heap.VisitShared(w, sk.size[tag]); !fresh {
			break
		}
		st.ObjectsCopied++
		st.KernelWords += int64(sk.size[tag])
		words += int64(sk.size[tag])
		for i := range sk.steps[tag] {
			f := &sk.steps[tag][i]
			switch f.kind {
			case sfSelf:
				words += c.markSpine(sk, c.Heap.Field(w, f.off), st)
			case sfBox:
				words += c.markBox(f.box, c.Heap.Field(w, f.off), st)
			default:
				// Pruning kernels never reach the read-only mark path
				// (pruning is serial-only); mark conservatively if one does.
				words += c.markValue(f.g, c.Heap.Field(w, f.off), st)
			}
		}
		t := sk.tail[tag]
		if t < 0 {
			break
		}
		w = c.Heap.Field(w, t)
	}
	return words
}

// ---------------------------------------------------------------------------
// Frame-plan cache.
// ---------------------------------------------------------------------------

// planSlot is one resolved slot of a frame plan.
type planSlot struct {
	slot  int
	g     TypeGC
	k     kernel
	spine *spineKernel
	box   *boxKernel
	// prune, when non-nil, is the spine-only pruning kernel for a slot
	// whose heap-liveness verdict at this site is spine-only; the serial
	// trace defers such slots and drains them after every full root
	// (drainPrune). pruneAtCall is the variant for a frame suspended
	// *before* its call: an argument slot's full Args verdict overrides
	// the after-call Live verdict there, because the call re-executes on
	// resume and the callee's own demand applies.
	prune       *spineKernel
	pruneAtCall *spineKernel
}

// framePlan is a fully resolved frame routine for one (site, incoming
// type instantiation): the slot routines with their kernels, the
// suspended-call argument map minus slots the frame walk already covers
// (the per-frame dedupe, computed once), and the outgoing package. The
// trace fields are immutable after construction and shared freely across
// frames, collections and workers; edges is the one mutable member, a
// copy-on-write map filled as towers are walked (see planForEdge).
type framePlan struct {
	slots []planSlot
	args  []planSlot
	out   pkg

	// edges caches, per callee gc_word index, the plan the *next* frame
	// resolves to when this plan is the caller. A caller plan pins the
	// caller's instantiation, the outgoing package is part of the plan,
	// and a non-closure callee's type arguments are a pure function of
	// that package — so (caller plan, callee site) determines the callee
	// plan, and a warmed tower of mixed frames (mutual recursion, a call
	// chain the one-entry inline cache thrashes on) resolves in O(1) per
	// frame: no type-argument resolution, no plan-key hashing.
	edges atomic.Pointer[map[int]*framePlan]
}

// edge returns the cached callee plan for a callee site, or nil.
func (p *framePlan) edge(site int) *framePlan {
	if m := p.edges.Load(); m != nil {
		return (*m)[site]
	}
	return nil
}

// addEdge publishes a callee edge copy-on-write. Racing workers may build
// the map twice; plans for one key are interchangeable, so whichever swap
// wins is correct, and the loser retries against the winner's map.
func (p *framePlan) addEdge(site int, callee *framePlan) {
	for {
		old := p.edges.Load()
		if old != nil {
			if _, ok := (*old)[site]; ok {
				return
			}
		}
		m := make(map[int]*framePlan, 1)
		if old != nil {
			m = make(map[int]*framePlan, len(*old)+1)
			for k, v := range *old {
				m[k] = v
			}
		}
		m[site] = callee
		if p.edges.CompareAndSwap(old, &m) {
			return
		}
	}
}

// maxPlanTypeArgs bounds the inline plan key. Frames instantiated with
// more type arguments (rare: none of the corpus exceeds two) resolve
// uncached, counted as plan misses.
const maxPlanTypeArgs = 4

// planKey identifies a frame plan: the site plus the gcIDs of the
// incoming type arguments (node identity is instantiation identity — the
// builder hash-conses equal types to one node).
type planKey struct {
	site int32
	n    int8
	ids  [maxPlanTypeArgs]int32
}

// planCache memoizes frame plans with lock-free reads: an immutable
// snapshot map consulted without locking, and a mutex-guarded dirty map
// holding everything ever built. promote republishes the snapshot; the
// collector promotes before each parallel phase so workers resolving deep
// stacks never serialize on the mutex.
type planCache struct {
	snap     atomic.Pointer[map[planKey]*framePlan]
	mu       sync.Mutex
	dirty    map[planKey]*framePlan
	promoted int
}

func (pc *planCache) promote() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.dirty) == pc.promoted {
		return
	}
	m := make(map[planKey]*framePlan, len(pc.dirty))
	for k, v := range pc.dirty {
		m[k] = v
	}
	pc.snap.Store(&m)
	pc.promoted = len(m)
}

// planIC is a one-entry inline cache in front of planFor, local to one
// task's stack walk: a tower of N equal frames — deep recursion over one
// instantiation, the dominant deep-stack shape — hits it N-1 times,
// skipping even the snapshot map's hash per frame. Type-argument equality
// is interface identity (hash-consing makes node identity instantiation
// identity).
type planIC struct {
	site  int
	targs []TypeGC
	plan  *framePlan
}

func (ic *planIC) match(site int, targs []TypeGC) bool {
	if ic.plan == nil || ic.site != site || len(ic.targs) != len(targs) {
		return false
	}
	for i := range targs {
		if targs[i] != ic.targs[i] {
			return false
		}
	}
	return true
}

// planForIC resolves a frame plan through the walk-local inline cache,
// falling back to the shared memo table.
func (c *Collector) planForIC(ic *planIC, siteIdx int, site *code.SiteInfo, targs []TypeGC, st *Stats) *framePlan {
	if ic.match(siteIdx, targs) {
		st.PlanHits++
		return ic.plan
	}
	p := c.planFor(siteIdx, site, targs, st)
	*ic = planIC{site: siteIdx, targs: targs, plan: p}
	return p
}

// planForEdge resolves a frame's plan during a stack walk, consulting the
// caller plan's edge cache first. An edge hit skips type-argument
// resolution and the plan-key hash entirely; closure-called frames
// (TypeSourceEnv) read their instantiation out of the closure's rep words
// on the heap, so their plans can differ per frame at one site and are
// never edge-cached.
func (c *Collector) planForEdge(prev *framePlan, ic *planIC, siteIdx int, site *code.SiteInfo, fi *code.FuncInfo, incoming pkg, stack []code.Word, fp int, sc *scratch, st *Stats) *framePlan {
	cacheable := prev != nil && fi.TypeSource != code.TypeSourceEnv
	if cacheable {
		if p := prev.edge(siteIdx); p != nil {
			st.PlanHits++
			return p
		}
	}
	targs := c.frameTypeArgs(fi, incoming, stack, fp, sc)
	p := c.planForIC(ic, siteIdx, site, targs, st)
	if cacheable {
		prev.addEdge(siteIdx, p)
	}
	return p
}

// planFor returns the memoized frame plan for (site, targs), building and
// publishing it on first use. st takes the hit/miss counters (worker-local
// during parallel resolution).
func (c *Collector) planFor(siteIdx int, site *code.SiteInfo, targs []TypeGC, st *Stats) *framePlan {
	if len(targs) > maxPlanTypeArgs {
		st.PlanMisses++
		return c.buildPlan(siteIdx, site, targs)
	}
	key := planKey{site: int32(siteIdx), n: int8(len(targs))}
	for i, g := range targs {
		if g != nil {
			key.ids[i] = int32(g.gcID())
		} else {
			key.ids[i] = -1
		}
	}
	if m := c.plans.snap.Load(); m != nil {
		if p, ok := (*m)[key]; ok {
			st.PlanHits++
			return p
		}
	}
	c.plans.mu.Lock()
	if p, ok := c.plans.dirty[key]; ok {
		c.plans.mu.Unlock()
		st.PlanHits++
		return p
	}
	c.plans.mu.Unlock()
	// Build outside the lock: construction reaches into the TypeGC
	// builder, and a slow build must not serialize unrelated lookups.
	// A racing duplicate build is harmless — plans for one key are
	// interchangeable — but only one wins publication.
	st.PlanMisses++
	p := c.buildPlan(siteIdx, site, targs)
	c.plans.mu.Lock()
	if prev, ok := c.plans.dirty[key]; ok {
		p = prev
	} else {
		if c.plans.dirty == nil {
			c.plans.dirty = make(map[planKey]*framePlan)
		}
		c.plans.dirty[key] = p
	}
	c.plans.mu.Unlock()
	return p
}

// buildPlan resolves one frame routine completely: slot routines with
// kernels, the deduplicated suspended-call argument map, and the outgoing
// package (built eagerly so published plans are immutable).
func (c *Collector) buildPlan(siteIdx int, site *code.SiteInfo, targs []TypeGC) *framePlan {
	p := &framePlan{}
	var seen slotSet
	for _, tr := range c.compiledSites[siteIdx] {
		g := tr.ground
		if g == nil {
			g = c.FromDesc(tr.desc, targs)
		}
		k, sp, bk := c.classify(g)
		ps := planSlot{slot: tr.slot, g: g, k: k, spine: sp, box: bk}
		if tr.spine {
			if pk := c.classifyPrune(g); pk != nil {
				ps.prune, ps.pruneAtCall = pk, pk
				for _, e := range site.Args {
					// A full Args verdict for the same slot wins at
					// suspended-call frames: the callee re-demands it.
					if e.Slot == tr.slot && !e.Spine {
						ps.pruneAtCall = nil
						break
					}
				}
			}
		}
		p.slots = append(p.slots, ps)
		seen.add(tr.slot)
	}
	for _, e := range site.Args {
		if seen.has(e.Slot) {
			continue
		}
		g := c.FromDesc(e.Desc, targs)
		k, sp, bk := c.classify(g)
		ps := planSlot{slot: e.Slot, g: g, k: k, spine: sp, box: bk}
		if e.Spine {
			if pk := c.classifyPrune(g); pk != nil {
				ps.prune, ps.pruneAtCall = pk, pk
			}
		}
		p.args = append(p.args, ps)
	}
	p.out = c.outgoing(site, targs)
	return p
}

// tracePlan runs one frame's plan over the stack (the serial collector's
// compiled fast path). When liveness-guided pruning is armed for this
// collection (pruneOn), slots with a spine-only verdict are deferred to
// the prune queue instead of traced — every full root must run first so
// the pruning walk stops at anything a live path reached (drainPrune).
func (c *Collector) tracePlan(p *framePlan, stack []code.Word, base int, atCall bool) {
	for i := range p.slots {
		ps := &p.slots[i]
		if c.pruneOn {
			pk := ps.prune
			if atCall {
				pk = ps.pruneAtCall
			}
			if pk != nil {
				c.pruneQ = append(c.pruneQ, pruneItem{stack: stack, idx: base + ps.slot, g: ps.g, sk: pk})
				c.Stats.SlotsTraced++
				continue
			}
		}
		stack[base+ps.slot] = c.traceKernel(ps, stack[base+ps.slot], &c.Stats)
		c.Stats.SlotsTraced++
	}
	if atCall {
		for i := range p.args {
			ps := &p.args[i]
			if c.pruneOn && ps.prune != nil {
				c.pruneQ = append(c.pruneQ, pruneItem{stack: stack, idx: base + ps.slot, g: ps.g, sk: ps.prune})
				c.Stats.SlotsTraced++
				continue
			}
			stack[base+ps.slot] = c.traceKernel(ps, stack[base+ps.slot], &c.Stats)
			c.Stats.SlotsTraced++
		}
	}
}

// ---------------------------------------------------------------------------
// pc→site lookup cache.
// ---------------------------------------------------------------------------

// siteAtFast resolves the site at pc through the lookup cache: one atomic
// load on a hit, the instruction-stream decode (siteAt) on first touch.
// Entries are siteIdx+1 so the zero value means unfilled; concurrent
// workers may race to fill an entry with the same value, which the atomic
// store keeps benign.
func (c *Collector) siteAtFast(pc int, st *Stats) (int, *code.SiteInfo) {
	if c.DisableFastPath || c.siteCache == nil {
		return c.siteAt(pc)
	}
	if v := atomic.LoadInt32(&c.siteCache[pc]); v > 0 {
		st.SiteCacheHits++
		return int(v - 1), c.Prog.Sites[v-1]
	}
	st.SiteCacheMisses++
	idx, si := c.siteAt(pc)
	atomic.StoreInt32(&c.siteCache[pc], int32(idx+1))
	return idx, si
}

// prepareFastPath promotes the memo-table and plan-cache snapshots so the
// parallel phase's workers read both lock-free — the "pre-resolve before
// the pause's parallel phase" step. Promotion is O(entries) and skipped
// when nothing new was built since the last collection.
func (c *Collector) prepareFastPath() {
	if c.DisableFastPath {
		return
	}
	c.b.promote()
	c.plans.promote()
}
