package gc

import (
	"testing"
	"testing/quick"

	"tagfree/internal/code"
	"tagfree/internal/heap"
)

// listProgram builds a minimal program with the built-in list layout at
// data id 0 and an int tree layout at id 1.
func listProgram(repr code.Repr) *code.Program {
	listLayout := &code.DataLayout{
		Name:       "list",
		HasTagWord: false,
		Boxed: []code.CtorLayout{{
			Name: "::",
			Fields: []*code.TypeDesc{
				{Kind: code.TDVar, Index: 0},
				{Kind: code.TDData, Index: 0, Args: []*code.TypeDesc{{Kind: code.TDVar, Index: 0}}},
			},
		}},
		NullaryNames: []string{"[]"},
	}
	treeLayout := &code.DataLayout{
		Name:       "tree",
		HasTagWord: false,
		Boxed: []code.CtorLayout{{
			Name: "Node",
			Fields: []*code.TypeDesc{
				{Kind: code.TDData, Index: 1},
				{Kind: code.TDConst},
				{Kind: code.TDData, Index: 1},
			},
		}},
		NullaryNames: []string{"Leaf"},
	}
	return &code.Program{
		Repr: repr,
		Data: []*code.DataLayout{listLayout, treeLayout},
		Reps: code.NewRepTable(),
	}
}

func newTestCollector(t *testing.T, repr code.Repr, strat Strategy, semi int) *Collector {
	t.Helper()
	prog := listProgram(repr)
	h := heap.New(repr, semi)
	c, err := New(prog, h, strat)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestF3TraceListOfSharing reproduces Figure 3: the type_gc closure for
// "list of T" is constructed once and shared.
func TestF3TraceListOfSharing(t *testing.T) {
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 1024)
	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	g1 := c.FromDesc(intList, nil)
	g2 := c.FromDesc(intList, nil)
	if g1 != g2 {
		t.Fatal("trace_list_of(const_gc) must be shared (Figure 3)")
	}
	listOfList := &code.TypeDesc{Kind: code.TDData, Index: 0, Args: []*code.TypeDesc{intList}}
	g3 := c.FromDesc(listOfList, nil)
	if g3 == g1 {
		t.Fatal("distinct instantiations must not collide")
	}
	if g3.Child(code.PathStep{Kind: 2, Index: 0}) != g1 {
		t.Fatal("the nested list routine should decompose to the inner one")
	}
}

// TestF4ArrowDecomposition reproduces Figure 4: a function value's routine
// exposes routines for its domain and codomain.
func TestF4ArrowDecomposition(t *testing.T) {
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 1024)
	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	arrow := &code.TypeDesc{Kind: code.TDArrow,
		Args: []*code.TypeDesc{{Kind: code.TDConst}, intList}}
	g := c.FromDesc(arrow, nil)
	dom := g.Child(code.PathStep{Kind: 0})
	cod := g.Child(code.PathStep{Kind: 1})
	if dom != c.FromDesc(&code.TypeDesc{Kind: code.TDConst}, nil) {
		t.Fatal("dom decomposition wrong")
	}
	if cod != c.FromDesc(intList, nil) {
		t.Fatal("cod decomposition wrong")
	}
	// A derivation path through the arrow reaches the element routine.
	elem := ApplyPath(g, []code.PathStep{{Kind: 1}, {Kind: 2, Index: 0}})
	if elem != c.b.Const() {
		t.Fatal("path Cod→Elem should reach const_gc")
	}
}

// mkList builds an unboxed-terminated int list on the heap, tag-free.
func mkList(h *heap.Heap, vals []int64) code.Word {
	tail := code.Word(0) // [] is nullary tag 0
	for i := len(vals) - 1; i >= 0; i-- {
		cell := h.MustAlloc(2)
		h.SetField(cell, 0, code.EncodeInt(h.Repr, vals[i]))
		h.SetField(cell, 1, tail)
		tail = cell
	}
	return tail
}

func readList(h *heap.Heap, w code.Word) []int64 {
	var out []int64
	for code.IsBoxedValue(h.Repr, w) {
		out = append(out, code.DecodeInt(h.Repr, h.Field(w, 0)))
		w = h.Field(w, 1)
	}
	return out
}

func TestDataTraceCopiesList(t *testing.T) {
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 4096)
	h := c.Heap
	lst := mkList(h, []int64{1, 2, 3, 4, 5})
	h.MustAlloc(100) // garbage

	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	g := c.FromDesc(intList, nil)

	h.BeginGC()
	nl := g.Trace(c, lst)
	h.EndGC()

	got := readList(h, nl)
	want := []int64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("list length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Used() != 10 {
		t.Fatalf("live = %d words, want 10 (5 cons cells)", h.Used())
	}
}

func TestDataTraceLongListIterative(t *testing.T) {
	// A 50k-element list must trace without host stack overflow (the
	// self-recursive tail field is followed iteratively).
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 1<<18)
	h := c.Heap
	vals := make([]int64, 50_000)
	for i := range vals {
		vals[i] = int64(i)
	}
	lst := mkList(h, vals)
	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	g := c.FromDesc(intList, nil)

	h.BeginGC()
	nl := g.Trace(c, lst)
	h.EndGC()

	got := readList(h, nl)
	if len(got) != len(vals) || got[0] != 0 || got[len(got)-1] != int64(len(vals)-1) {
		t.Fatalf("long list corrupted: len=%d first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
}

func TestSharedStructurePreserved(t *testing.T) {
	// Two lists sharing a tail must share it after collection.
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 4096)
	h := c.Heap
	shared := mkList(h, []int64{10, 20})
	a := h.MustAlloc(2)
	h.SetField(a, 0, code.EncodeInt(h.Repr, 1))
	h.SetField(a, 1, shared)
	b := h.MustAlloc(2)
	h.SetField(b, 0, code.EncodeInt(h.Repr, 2))
	h.SetField(b, 1, shared)

	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	g := c.FromDesc(intList, nil)

	h.BeginGC()
	na := g.Trace(c, a)
	nb := g.Trace(c, b)
	h.EndGC()

	if h.Field(na, 1) != h.Field(nb, 1) {
		t.Fatal("shared tail duplicated by collection")
	}
	if h.Used() != 8 {
		t.Fatalf("live = %d words, want 8 (4 cells)", h.Used())
	}
}

func TestTreeTraceWithTagless(t *testing.T) {
	c := newTestCollector(t, code.ReprTagFree, StratCompiled, 4096)
	h := c.Heap
	leaf := code.Word(0)
	mkNode := func(l code.Word, v int64, r code.Word) code.Word {
		n := h.MustAlloc(3)
		h.SetField(n, 0, l)
		h.SetField(n, 1, code.EncodeInt(h.Repr, v))
		h.SetField(n, 2, r)
		return n
	}
	tree := mkNode(mkNode(leaf, 1, leaf), 2, mkNode(leaf, 3, leaf))
	treeDesc := &code.TypeDesc{Kind: code.TDData, Index: 1}
	g := c.FromDesc(treeDesc, nil)

	h.BeginGC()
	nt := g.Trace(c, tree)
	h.EndGC()

	var sum int64
	var walk func(w code.Word)
	walk = func(w code.Word) {
		if !code.IsBoxedValue(h.Repr, w) {
			return
		}
		walk(h.Field(w, 0))
		sum += code.DecodeInt(h.Repr, h.Field(w, 1))
		walk(h.Field(w, 2))
	}
	walk(nt)
	if sum != 6 {
		t.Fatalf("tree sum after trace = %d, want 6", sum)
	}
}

func TestInterpDescriptorRoundTrip(t *testing.T) {
	// Encoding a site and decoding it must reconstruct identical
	// (memoized) routines to the direct descriptor path.
	c := newTestCollector(t, code.ReprTagFree, StratInterp, 1024)
	intList := &code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}
	tup := &code.TypeDesc{Kind: code.TDTuple, Args: []*code.TypeDesc{
		intList,
		{Kind: code.TDRef, Args: []*code.TypeDesc{{Kind: code.TDConst}}},
		{Kind: code.TDArrow, Args: []*code.TypeDesc{{Kind: code.TDConst}, intList}},
		{Kind: code.TDVar, Index: 1},
	}}
	site := &code.SiteInfo{Live: []code.SlotEntry{{Slot: 3, Desc: tup}}}
	buf := encodeSite(site)

	targs := []TypeGC{c.b.Const(), c.FromDesc(intList, nil)}
	r := &descReader{buf: buf}
	n := r.uvarint()
	if n != 1 {
		t.Fatalf("decoded %d entries, want 1", n)
	}
	slot := r.uvarint()
	if slot != 3 {
		t.Fatalf("decoded slot %d, want 3", slot)
	}
	got := c.decodeDesc(r, targs)
	want := c.FromDesc(tup, targs)
	if got != want {
		t.Fatal("decoded routine differs from the directly built one")
	}
}

func TestEncodeDescProperty(t *testing.T) {
	// Round-tripping random descriptor shapes through the byte encoding
	// always reproduces the memoized routine.
	c := newTestCollector(t, code.ReprTagFree, StratInterp, 1024)
	mkDesc := func(depth int, sel uint8) *code.TypeDesc {
		var build func(d int, s uint8) *code.TypeDesc
		build = func(d int, s uint8) *code.TypeDesc {
			if d == 0 {
				if s&1 == 0 {
					return &code.TypeDesc{Kind: code.TDConst}
				}
				return &code.TypeDesc{Kind: code.TDVar, Index: int(s) % 2}
			}
			switch s % 4 {
			case 0:
				return &code.TypeDesc{Kind: code.TDRef, Args: []*code.TypeDesc{build(d-1, s>>2)}}
			case 1:
				return &code.TypeDesc{Kind: code.TDTuple, Args: []*code.TypeDesc{
					build(d-1, s>>2), build(d-1, s>>3)}}
			case 2:
				return &code.TypeDesc{Kind: code.TDData, Index: 0,
					Args: []*code.TypeDesc{build(d-1, s>>2)}}
			default:
				return &code.TypeDesc{Kind: code.TDArrow, Args: []*code.TypeDesc{
					build(d-1, s>>2), build(d-1, s>>3)}}
			}
		}
		return build(depth, sel)
	}
	targs := []TypeGC{c.b.Const(), c.FromDesc(&code.TypeDesc{Kind: code.TDData, Index: 0,
		Args: []*code.TypeDesc{{Kind: code.TDConst}}}, nil)}
	f := func(depth uint8, sel uint8) bool {
		d := mkDesc(int(depth%4), sel)
		buf := encodeDesc(nil, d)
		r := &descReader{buf: buf}
		return c.decodeDesc(r, targs) == c.FromDesc(d, targs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyReprCompatibility(t *testing.T) {
	prog := listProgram(code.ReprTagFree)
	h := heap.New(code.ReprTagFree, 64)
	if _, err := New(prog, h, StratTagged); err == nil {
		t.Fatal("tagged strategy over a tag-free program must be rejected")
	}
	progT := listProgram(code.ReprTagged)
	hT := heap.New(code.ReprTagged, 64)
	if _, err := New(progT, hT, StratCompiled); err == nil {
		t.Fatal("compiled strategy over a tagged program must be rejected")
	}
}
