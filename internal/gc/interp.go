package gc

import (
	"encoding/binary"

	"tagfree/internal/code"
)

// The interpreted method (Branquart & Lewi 1970; Britton 1975) stores each
// site's frame map as a compact byte string and decodes it during every
// collection. Compared with compiled routines the metadata is much
// smaller, but each trace pays a decoding cost — the space/time trade-off
// the paper defers to experiments (§2.4), measured here as E4.
//
// Encoding (all integers unsigned varints):
//
//	site    := count (slot desc)*
//	desc    := kind rest
//	rest    := ε                      kind ∈ {const, opaque}
//	         | index                  kind = var
//	         | desc                   kind = ref
//	         | count desc*            kind = tuple
//	         | index count desc*      kind = data
//	         | desc desc              kind = arrow
func encodeSite(si *code.SiteInfo) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(si.Live)))
	for _, e := range si.Live {
		out = binary.AppendUvarint(out, uint64(e.Slot))
		out = encodeDesc(out, e.Desc)
	}
	return out
}

func encodeDesc(out []byte, d *code.TypeDesc) []byte {
	out = binary.AppendUvarint(out, uint64(d.Kind))
	switch d.Kind {
	case code.TDConst, code.TDOpaque:
	case code.TDVar:
		out = binary.AppendUvarint(out, uint64(d.Index))
	case code.TDRef:
		out = encodeDesc(out, d.Args[0])
	case code.TDTuple:
		out = binary.AppendUvarint(out, uint64(len(d.Args)))
		for _, a := range d.Args {
			out = encodeDesc(out, a)
		}
	case code.TDData:
		out = binary.AppendUvarint(out, uint64(d.Index))
		out = binary.AppendUvarint(out, uint64(len(d.Args)))
		for _, a := range d.Args {
			out = encodeDesc(out, a)
		}
	case code.TDArrow:
		out = encodeDesc(out, d.Args[0])
		out = encodeDesc(out, d.Args[1])
	}
	return out
}

// interpTraceFrame decodes a site descriptor and traces the frame's slots.
// When the frame is suspended at a call (atCall), traced records the slots
// walked so the caller can skip them in the argument map (see traceFrame).
func (c *Collector) interpTraceFrame(buf []byte, stack []code.Word, base int, targs []TypeGC, traced *slotSet, atCall bool) {
	r := &descReader{buf: buf}
	n := r.uvarint()
	for i := 0; i < n; i++ {
		slot := r.uvarint()
		g := c.decodeDesc(r, targs)
		stack[base+slot] = g.Trace(c, stack[base+slot])
		c.Stats.SlotsTraced++
		if atCall {
			traced.add(slot)
		}
	}
	c.Stats.DescBytesDecoded += int64(len(buf))
}

// interpFrameJobs decodes a site descriptor into root jobs without tracing
// anything — the pure half of interpTraceFrame, used by the parallel
// resolution phase (workers decode concurrently; tracing stays ordered).
func (c *Collector) interpFrameJobs(jobs []rootJob, buf []byte, base int, targs []TypeGC, st *Stats) []rootJob {
	r := &descReader{buf: buf}
	n := r.uvarint()
	for i := 0; i < n; i++ {
		slot := r.uvarint()
		g := c.decodeDesc(r, targs)
		jobs = append(jobs, rootJob{idx: base + slot, g: g})
	}
	st.DescBytesDecoded += int64(len(buf))
	return jobs
}

type descReader struct {
	buf []byte
	pos int
}

func (r *descReader) uvarint() int {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		panic("gc: malformed frame descriptor")
	}
	r.pos += n
	return int(v)
}

// decodeDesc interprets one descriptor, building the (memoized) routine.
func (c *Collector) decodeDesc(r *descReader, targs []TypeGC) TypeGC {
	kind := code.TDKind(r.uvarint())
	switch kind {
	case code.TDConst, code.TDOpaque:
		return c.b.Const()
	case code.TDVar:
		idx := r.uvarint()
		if idx < len(targs) && targs[idx] != nil {
			return targs[idx]
		}
		return c.b.Const()
	case code.TDRef:
		return c.b.Ref(c.decodeDesc(r, targs))
	case code.TDTuple:
		n := r.uvarint()
		fields := make([]TypeGC, n)
		for i := range fields {
			fields[i] = c.decodeDesc(r, targs)
		}
		return c.b.Tuple(fields)
	case code.TDData:
		idx := r.uvarint()
		n := r.uvarint()
		args := make([]TypeGC, n)
		for i := range args {
			args[i] = c.decodeDesc(r, targs)
		}
		return c.b.Data(idx, c.Prog.Data[idx], args)
	case code.TDArrow:
		dom := c.decodeDesc(r, targs)
		cod := c.decodeDesc(r, targs)
		return c.b.Arrow(dom, cod)
	}
	panic("gc: unknown descriptor kind in frame map")
}
