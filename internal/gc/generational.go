package gc

// Generational collection over the nursery heap (heap/nursery.go). The
// paper's frame routines re-trace stacks and globals from compiler metadata
// on every collection, so a minor collection gets its stack and global
// roots for free; the one thing it cannot recover is interior old→young
// heap edges, because old objects are deliberately not traced during a
// minor. Those edges come from a typed remembered set:
//
//   - The mutator's write barrier (vm / tasking, OpStFld only — stack slots
//     and globals are rescanned as roots and need no barrier) reports every
//     store that plants a young pointer in an old object, together with the
//     *static* type descriptor of the stored value the compiler recorded in
//     Program.StoreDescs. Tag-free objects have no headers, so the entry
//     must carry its own trace routine; a ground descriptor resolves to a
//     hash-consed TypeGC once and is shared by every later hit.
//   - The trace itself reports edges through Collector.setField: an old
//     (or just-promoted) parent whose traced child stayed young is
//     re-remembered, so promotion never strands an edge, and a major
//     collection rebuilds the whole set from what it observes.
//
// Stores the barrier cannot type (a polymorphic store whose descriptor
// still contains type variables — the frame context needed to resolve it is
// gone by collection time) and remembered-set overflow degrade safely: the
// next collection is forced to be a major, which needs no remembered set.
// Pre-tenured allocations (oversize objects placed directly in the old
// region) degrade the same way: their initializing stores bypass the
// barrier, so the set cannot be trusted until a major rebuilds it.

import (
	"tagfree/internal/code"
)

// rememberedCap bounds the remembered set. Overflow forces the next
// collection to be a major, which rebuilds the set from the full trace —
// the classic sequential-store-buffer overflow discipline.
const rememberedCap = 8192

// remEntry is one remembered old→young edge: the old object, the field
// holding the young pointer, and the trace routine for the stored value.
type remEntry struct {
	obj   code.Word
	field int32
	g     TypeGC
}

// remKey identifies an entry for deduplication.
type remKey struct {
	obj   code.Word
	field int32
}

// GenStats counts generational-collection activity (zero without a
// nursery).
type GenStats struct {
	// MinorCollections/MajorCollections split Stats.Collections by kind.
	MinorCollections int64
	MajorCollections int64
	// BarrierHits counts mutator stores that recorded a remembered-set
	// entry; BarrierDups counts stores deduplicated against an existing
	// entry for the same field.
	BarrierHits int64
	BarrierDups int64
	// TracedEdges counts old→young edges recorded by the trace itself
	// (promoted parents during minors, everything during a major rebuild).
	TracedEdges int64
	// UntypedStores counts barrier hits whose store descriptor was not
	// ground (polymorphic store); each forces the next collection major.
	UntypedStores int64
	// Overflows counts remembered-set overflows (forced majors).
	Overflows int64
	// PreTenured counts oversize allocations placed directly in old space
	// (forced majors: their init stores bypass the barrier).
	PreTenured int64
	// RememberedPeak is the largest remembered-set population observed.
	RememberedPeak int64
}

// nurseryOn reports whether this collector drives a generational heap.
func (c *Collector) nurseryOn() bool {
	return c.Strat != StratTagged && c.Heap.NurseryEnabled()
}

// LastCollectionMinor reports whether the most recent collection was a
// minor one (the recovery ladder escalates to CollectFull when a minor did
// not free enough).
func (c *Collector) LastCollectionMinor() bool { return c.lastMinor }

// Remember is the write barrier's slow path: the mutator stored val-shaped
// data into field of an old object and the value is (statically typed and
// dynamically confirmed) a young pointer. desc is the stored value's static
// descriptor from Program.StoreDescs.
func (c *Collector) Remember(obj code.Word, field int, desc *code.TypeDesc) {
	g, ok := c.storeRoutine(desc)
	if !ok {
		// A polymorphic store: the type environment that would resolve the
		// descriptor's variables belonged to the storing frame and is not
		// recoverable at collection time. Force a major, which traces old
		// space with full type information.
		c.Gen.UntypedStores++
		c.genForceMajor = true
		return
	}
	c.remember(obj, int32(field), g, false)
}

// NoteTenuredAlloc records that the mutator allocated an object directly in
// the old region (oversize for a nursery half). Its initializing stores are
// untracked old→young edges, so the next collection must be a major.
func (c *Collector) NoteTenuredAlloc() {
	c.Gen.PreTenured++
	c.genForceMajor = true
}

// storeRoutine resolves a store descriptor to its trace routine, memoized
// by descriptor identity (descriptors are hash-consed by the compiler). A
// nil routine marks a non-ground descriptor the barrier cannot use.
func (c *Collector) storeRoutine(desc *code.TypeDesc) (TypeGC, bool) {
	if g, seen := c.storeG[desc]; seen {
		return g, g != nil
	}
	var g TypeGC
	if isGround(desc) {
		g = c.FromDesc(desc, nil)
	}
	if c.storeG == nil {
		c.storeG = map[*code.TypeDesc]TypeGC{}
	}
	c.storeG[desc] = g
	return g, g != nil
}

// remember records one old→young edge, deduplicating by (object, field).
// The newest store's routine wins a duplicate — the field holds one value
// and its latest static type describes it. traced marks trace-time callers
// (counter attribution only).
func (c *Collector) remember(obj code.Word, field int32, g TypeGC, traced bool) {
	k := remKey{obj: obj, field: field}
	if i, dup := c.remIndex[k]; dup {
		c.remembered[i].g = g
		if !traced {
			c.Gen.BarrierDups++
		}
		return
	}
	if len(c.remembered) >= rememberedCap {
		c.Gen.Overflows++
		c.genForceMajor = true
		return
	}
	if c.remIndex == nil {
		c.remIndex = map[remKey]int{}
	}
	c.remIndex[k] = len(c.remembered)
	c.remembered = append(c.remembered, remEntry{obj: obj, field: field, g: g})
	if traced {
		c.Gen.TracedEdges++
	} else {
		c.Gen.BarrierHits++
	}
	if n := int64(len(c.remembered)); n > c.Gen.RememberedPeak {
		c.Gen.RememberedPeak = n
	}
}

// setField writes one traced field and, on a nursery heap, records the
// old→young edge the write creates. Every interior pointer write the trace
// performs goes through here (typegc.go, fastpath.go); g is the routine for
// the written value, so the entry can re-trace the edge at the next minor.
// All writing trace paths are serial (minors always; mark/sweep majors are
// forced serial; copying majors write only in the ordered phase-2 trace),
// so no locking is needed.
func (c *Collector) setField(obj code.Word, i int, v code.Word, g TypeGC) {
	c.Heap.SetField(obj, i, v)
	if !c.genTracking {
		return
	}
	if _, isConst := g.(*constG); isConst {
		return // a const-typed word may alias a young address; never a pointer
	}
	if c.Heap.InOld(obj) && c.Heap.InYoung(v) {
		c.remember(obj, int32(i), g, true)
	}
}

// traceRemembered re-traces every remembered old→young edge during a minor
// collection. Entries appended mid-loop (promotions discovering young
// children) are already traced when recorded, and re-tracing an evacuated
// object is a forwarding hit, so the growing-slice iteration is safe.
func (c *Collector) traceRemembered() {
	for i := 0; i < len(c.remembered); i++ {
		e := c.remembered[i] // copy: the slice may grow or move mid-loop
		v := c.Heap.Field(e.obj, int(e.field))
		nv := e.g.Trace(c, v)
		c.Heap.SetField(e.obj, int(e.field), nv)
		c.Stats.SlotsTraced++
	}
}

// traceRememberedShard is traceRemembered restricted to one nursery shard:
// only entries whose field currently holds a pointer into that shard are
// re-traced. Entries for other shards stay untraced and untouched — their
// shards are not being collected, so their targets do not move. The same
// growing-slice iteration safety argument applies.
func (c *Collector) traceRememberedShard(shard int) {
	for i := 0; i < len(c.remembered); i++ {
		e := c.remembered[i] // copy: the slice may grow or move mid-loop
		v := c.Heap.Field(e.obj, int(e.field))
		if !c.Heap.InYoungShard(v, shard) {
			continue
		}
		nv := e.g.Trace(c, v)
		c.Heap.SetField(e.obj, int(e.field), nv)
		c.Stats.SlotsTraced++
	}
}

// refilterRemembered drops entries whose field no longer holds a young
// pointer (the target was promoted, or the field was overwritten before the
// collection). Keeping a stale-but-young-looking word is safe; dropping a
// genuinely young edge is not, so the filter keys on the current field
// value's range alone.
func (c *Collector) refilterRemembered() {
	kept := c.remembered[:0]
	for _, e := range c.remembered {
		if c.Heap.InYoung(c.Heap.Field(e.obj, int(e.field))) {
			kept = append(kept, e)
		}
	}
	c.remembered = kept
	for k := range c.remIndex {
		delete(c.remIndex, k)
	}
	for i, e := range c.remembered {
		c.remIndex[remKey{obj: e.obj, field: e.field}] = i
	}
}

// resetRemembered clears the set for a major collection's rebuild: the
// major's own trace re-records every old→young edge it observes, with
// post-collection addresses, so barrier history (and any force-major
// condition) is discharged.
func (c *Collector) resetRemembered() {
	c.remembered = c.remembered[:0]
	for k := range c.remIndex {
		delete(c.remIndex, k)
	}
	c.genForceMajor = false
}

// RememberedLen returns the remembered set's population (tests,
// telemetry).
func (c *Collector) RememberedLen() int { return len(c.remembered) }
