package gc

import "tagfree/internal/code"

// Live-heap signatures. The TLAB differential suite needs to prove that
// two runs of the same program — one bump-allocating through per-task
// buffers, one through the shared heap — end with the *same live heap*,
// even though buffer carving tiles the space differently and mark/sweep
// addresses are history-dependent. LiveSignature serializes the reachable
// graph into a canonical, address-free word stream: two heaps produce
// bit-identical signatures exactly when they hold the same values with the
// same sharing, regardless of where objects landed.
//
// The serialization is a typed depth-first walk mirroring the verifier's
// (verify.go): same dispatch, same field order, same dataG tail-spine
// iteration, so the signature covers precisely the structure the collector
// is responsible for. Each word emits a tagged pair:
//
//	0, raw   — an immediate, copied verbatim
//	1, idx   — a back-edge to the idx'th object this walk visited
//	2, size  — a first visit; the object's fields follow in type order
//
// Pointers never appear: a boxed word is renamed to its first-visit index,
// which depends only on the walk order, not the address.

// LiveSignature serializes the live heap reachable from the global roots.
// Tagged heaps are walked by headers; every other strategy walks by type,
// exactly as the verifier does. Call it only while the heap is quiescent
// (end of run, or between a collection and the next allocation).
func (c *Collector) LiveSignature(globals []code.Word) []code.Word {
	s := &signer{c: c, seen: map[code.Word]int{}}
	for i, g := range c.Prog.Globals {
		if c.Strat == StratTagged {
			s.walkTagged(globals[i])
		} else {
			s.walk(c.FromDesc(g.Desc, nil), globals[i])
		}
	}
	return s.out
}

// RootSignature serializes the live heap reachable from the globals AND
// every task's resolved frame slots — the whole retained set of the
// preceding collection, in the same canonical address-free stream as
// LiveSignature. The heap-liveness projection suite compares these
// between a pruning and a full-structure collection of identical roots:
// the pruned stream must equal the full one except where a pruned field's
// poison word stands in for a whole dead subtree. Call it only while the
// heap is quiescent (between a collection and the next allocation) and
// never under the tagged strategy (task roots resolve through frame
// maps).
func (c *Collector) RootSignature(tasks []TaskRoots, globals []code.Word) []code.Word {
	s := &signer{c: c, seen: map[code.Word]int{}}
	for i, g := range c.Prog.Globals {
		s.walk(c.FromDesc(g.Desc, nil), globals[i])
	}
	var st Stats // resolution stats of the signature walk are discarded
	sc := c.scratch0()
	sc.reset() // any prior collection's windows are dead by now
	for i := range tasks {
		for _, j := range c.taskJobs(tasks[i], &st, sc) {
			s.walk(j.g, tasks[i].Stack[j.idx])
		}
	}
	return s.out
}

type signer struct {
	c    *Collector
	seen map[code.Word]int // pointer word -> first-visit index
	out  []code.Word
}

// enter emits the back-edge or first-visit marker for a boxed word and
// reports whether the caller should serialize the object's contents.
func (s *signer) enter(w code.Word, size int) bool {
	if idx, ok := s.seen[w]; ok {
		s.out = append(s.out, 1, code.Word(idx))
		return false
	}
	s.seen[w] = len(s.seen)
	s.out = append(s.out, 2, code.Word(size))
	return true
}

func (s *signer) raw(w code.Word) { s.out = append(s.out, 0, w) }

func (s *signer) walk(g TypeGC, w code.Word) {
	c := s.c
	repr := c.Heap.Repr
	switch g := g.(type) {
	case *constG:
		s.raw(w)
	case *refG:
		if !code.IsBoxedValue(repr, w) {
			s.raw(w)
			return
		}
		if s.enter(w, 1) {
			s.walk(g.elem, c.Heap.Field(w, 0))
		}
	case *tupleG:
		if !code.IsBoxedValue(repr, w) {
			s.raw(w)
			return
		}
		if s.enter(w, len(g.fields)) {
			for i, f := range g.fields {
				s.walk(f, c.Heap.Field(w, i))
			}
		}
	case *dataG:
		for {
			if !code.IsBoxedValue(repr, w) {
				s.raw(w)
				return
			}
			off, tag := 0, 0
			if g.layout.HasTagWord {
				tag = int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
				off = 1
			}
			fields := g.layout.Boxed[tag].Fields
			if !s.enter(w, off+len(fields)) {
				return
			}
			if off == 1 {
				s.raw(c.Heap.Field(w, 0))
			}
			tailField := -1
			for i, fd := range fields {
				fgc := c.FromDesc(fd, g.args)
				if fgc == g && i == len(fields)-1 {
					tailField = off + i
					continue
				}
				s.walk(fgc, c.Heap.Field(w, off+i))
			}
			if tailField < 0 {
				return
			}
			w = c.Heap.Field(w, tailField)
		}
	case *arrowG:
		if !code.IsBoxedValue(repr, w) {
			s.raw(w)
			return
		}
		fidx := int(code.DecodeInt(repr, c.Heap.Field(w, 0)))
		fi := c.Prog.Funcs[fidx]
		size := 1 + fi.NumRepWords + len(fi.Captures)
		if !s.enter(w, size) {
			return
		}
		// Code index and representation words are immediates (the collector
		// never traces them); captures are walked through their descriptors.
		for i := 0; i <= fi.NumRepWords; i++ {
			s.raw(c.Heap.Field(w, i))
		}
		env := c.closureEnv(fi, w, g)
		for i, capDesc := range fi.Captures {
			s.walk(c.FromDesc(capDesc, env), c.Heap.Field(w, 1+fi.NumRepWords+i))
		}
	default:
		panic("gc: signer: unknown TypeGC node")
	}
}

// walkTagged serializes by headers: the tagged heap carries its own
// layout, so the signature is the header's field count plus the fields,
// with boxed fields renamed exactly as in the typed walk. The last field
// iterates rather than recurses so list spines do not overflow the stack.
func (s *signer) walkTagged(w code.Word) {
	c := s.c
	for {
		if !code.IsBoxedValue(c.Heap.Repr, w) {
			s.raw(w)
			return
		}
		n := c.Heap.ObjLen(w)
		if !s.enter(w, n) {
			return
		}
		for i := 0; i < n-1; i++ {
			s.walkTagged(c.Heap.Field(w, i))
		}
		if n == 0 {
			return
		}
		w = c.Heap.Field(w, n-1)
	}
}
