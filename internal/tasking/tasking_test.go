package tasking_test

import (
	"strings"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/tasking"
	"tagfree/internal/workloads"
)

// workerSrc allocates through a helper whose frame pops before the next
// round, so dead lists become unreachable even under trace-everything
// collectors (which retain the dead slots of frames still on the stack).
const workerSrc = `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (upto 25)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + round ())
let task_a () = work 30 0
let task_b () = work 20 1000
let task_c () = work 10 2000
`

func TestTwoTasksShareHeap(t *testing.T) {
	for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratTagged} {
		res, err := pipeline.RunTasks(workerSrc, []string{"task_a", "task_b"}, pipeline.Options{
			Strategy:  strat,
			HeapWords: 2048,
		})
		if err != nil {
			t.Fatalf("[%v] %v", strat, err)
		}
		wantA := int64(30 * 325)
		wantB := int64(1000 + 20*325)
		if res.Values[0] != wantA || res.Values[1] != wantB {
			t.Errorf("[%v] results %v, want [%d %d]", strat, res.Values, wantA, wantB)
		}
		if res.Stats.Collections == 0 {
			t.Errorf("[%v] expected shared-heap pressure to force collections", strat)
		}
	}
}

func TestThreeTasksResultsIndependent(t *testing.T) {
	res, err := pipeline.RunTasks(workerSrc, []string{"task_a", "task_b", "task_c"}, pipeline.Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{30 * 325, 1000 + 20*325, 2000 + 10*325}
	for i, w := range want {
		if res.Values[i] != w {
			t.Errorf("task %d = %d, want %d", i, res.Values[i], w)
		}
	}
}

func TestTaskingMatchesSequential(t *testing.T) {
	// A single task must compute exactly what the sequential VM computes.
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let job () = sum (upto 200)
let main () = job ()
`
	seq, err := pipeline.Run(src, pipeline.Options{Strategy: gc.StratCompiled, HeapWords: 2048})
	if err != nil {
		t.Fatal(err)
	}
	par, err := pipeline.RunTasks(src, []string{"job"}, pipeline.Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Values[0] != seq.Value {
		t.Fatalf("tasking result %d != sequential %d", par.Values[0], seq.Value)
	}
}

func TestSuspendLatencyRecorded(t *testing.T) {
	res, err := pipeline.RunTasks(workerSrc, []string{"task_a", "task_b"}, pipeline.Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.SuspendLatency) != int(res.Stats.Collections) {
		t.Fatalf("latency samples %d != collections %d",
			len(res.Stats.SuspendLatency), res.Stats.Collections)
	}
	if res.Stats.RgcChecks == 0 {
		t.Fatal("Rgc checks not counted")
	}
}

func TestSharedGlobals(t *testing.T) {
	src := `
let shared = [100; 200; 300]
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let blip n = (let _ = [n; n] in 0)
let rec churn n = if n = 0 then 0 else blip n + churn (n - 1)
let reader () = (let _ = churn 200 in sum shared)
let writerish () = (let _ = churn 300 in sum shared * 2)
`
	res, err := pipeline.RunTasks(src, []string{"reader", "writerish"}, pipeline.Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 600 || res.Values[1] != 1200 {
		t.Fatalf("globals corrupted across collections: %v", res.Values)
	}
	if res.Stats.Collections == 0 {
		t.Fatal("expected collections")
	}
}

func TestEntryTypeValidation(t *testing.T) {
	src := `
let bad x = x + 1
let main () = 0
`
	_, err := pipeline.RunTasks(src, []string{"bad"}, pipeline.Options{Strategy: gc.StratCompiled})
	if err == nil {
		t.Fatal("entry with wrong type must be rejected")
	}
	_, err = pipeline.RunTasks(src, []string{"missing"}, pipeline.Options{Strategy: gc.StratCompiled})
	if err == nil {
		t.Fatal("missing entry must be rejected")
	}
}

func TestDeterministicScheduling(t *testing.T) {
	run := func() ([]int64, int64) {
		res, err := pipeline.RunTasks(workerSrc, []string{"task_a", "task_b", "task_c"},
			pipeline.Options{Strategy: gc.StratCompiled, HeapWords: 2048})
		if err != nil {
			t.Fatal(err)
		}
		return res.Values, res.Stats.Collections
	}
	v1, c1 := run()
	v2, c2 := run()
	if c1 != c2 {
		t.Fatalf("collection counts differ across runs: %d vs %d", c1, c2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("nondeterministic results: %v vs %v", v1, v2)
		}
	}
}

// TestSuspendAtAllocsPolicy runs the corpus pattern under the paper's
// first §4 policy (Rgc checked only inside allocation routines) and
// verifies results agree with the default policy.
func TestSuspendAtAllocsPolicy(t *testing.T) {
	def, err := pipeline.RunTasks(workerSrc, []string{"task_a", "task_b", "task_c"},
		pipeline.Options{Strategy: gc.StratCompiled, HeapWords: 2048})
	if err != nil {
		t.Fatal(err)
	}
	alt, err := pipeline.RunTasks(workerSrc, []string{"task_a", "task_b", "task_c"},
		pipeline.Options{Strategy: gc.StratCompiled, HeapWords: 2048, SuspendAtAllocs: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range def.Values {
		if def.Values[i] != alt.Values[i] {
			t.Errorf("task %d: policies disagree: %d vs %d", i, def.Values[i], alt.Values[i])
		}
	}
	if alt.Stats.RgcChecks >= def.Stats.RgcChecks {
		t.Errorf("at-allocs policy should perform fewer Rgc checks: %d vs %d",
			alt.Stats.RgcChecks, def.Stats.RgcChecks)
	}
}

// TestTaskingVMParityOnCorpus runs every workload whose main has type
// unit -> int as a single task and compares against the sequential VM —
// the two interpreters must never drift.
func TestTaskingVMParityOnCorpus(t *testing.T) {
	for _, w := range workloads.All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			seq, err := pipeline.Run(w.Source, pipeline.Options{
				Strategy:  gc.StratCompiled,
				HeapWords: w.HeapWords,
				MaxSteps:  500_000_000,
			})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := pipeline.RunTasks(w.Source, []string{"main"}, pipeline.Options{
				Strategy:  gc.StratCompiled,
				HeapWords: w.HeapWords,
				MaxSteps:  500_000_000,
			})
			if err != nil {
				t.Fatalf("tasking: %v", err)
			}
			if par.Values[0] != seq.Value || par.Values[0] != w.Expect {
				t.Errorf("tasking %d, sequential %d, want %d",
					par.Values[0], seq.Value, w.Expect)
			}
		})
	}
}

// TestRuntimeErrorFaultsOnlyOffendingTask isolates a non-OOM failure: a
// match failure in one task must fault that task alone, with a captured
// backtrace, while its sibling runs to completion.
func TestRuntimeErrorFaultsOnlyOffendingTask(t *testing.T) {
	src := workerSrc + `
let boom () = match upto 0 with | x :: _ -> x
`
	res, err := pipeline.RunTasks(src, []string{"boom", "task_a"}, pipeline.Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Faults[0]
	if f == nil {
		t.Fatalf("boom task did not fault; values %v", res.Values)
	}
	if f.Kind != tasking.FaultRuntime {
		t.Errorf("fault kind %v, want FaultRuntime", f.Kind)
	}
	if len(f.Frames) == 0 || !strings.Contains(f.Error(), "backtrace:") {
		t.Errorf("fault lacks a backtrace: %v", f)
	}
	if res.Faults[1] != nil {
		t.Fatalf("sibling faulted: %v", res.Faults[1])
	}
	if want := int64(30 * 325); res.Values[1] != want {
		t.Errorf("sibling result %d, want %d", res.Values[1], want)
	}
}
