// Package tasking implements the paper's §4 extension: multiple tasks in a
// shared-memory environment with stop-the-world tag-free collection.
//
// The model follows the paper's Ada-flavoured design:
//
//   - All tasks share one heap and the global roots; each has its own
//     stack of activation records.
//   - A task may be suspended for collection only when it makes a
//     procedure call (or itself requests allocation) — the same safe-point
//     discipline as the sequential collector.
//   - A dedicated register Rgc, normally zero, is conceptually added to
//     every call's target address. When an allocation finds the heap
//     exhausted it sets Rgc nonzero, so every other task's next call lands
//     in a suspension stub. The simulator models the zero-cost check by
//     comparing Rgc at call dispatch and counts the checks.
//   - When every live task is suspended, the collector traces all stacks
//     (tasks suspended at a call contribute the call's argument slots —
//     the values have not yet been copied to a callee frame) and the tasks
//     resume: the triggering task retries its allocation, the others
//     re-execute their calls.
//
// The paper describes two suspension disciplines (§4): checking Rgc only
// inside allocation routines (cheap checks, potentially long waits), or
// checking at every procedure call via the call-target offset (the default
// here). Both are implemented; experiment E7 compares their suspension
// latencies.
//
// Scheduling is deterministic round-robin with a fixed instruction
// quantum, so runs are reproducible. Programs for the tasking VM must be
// compiled with gc_word elision disabled: any call can become a suspension
// point, so every call site needs its frame map.
package tasking

import (
	"bytes"
	"fmt"
	"strings"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
)

// Status is a task's scheduler state.
type Status int

// Task states.
const (
	Running Status = iota
	SuspendedAlloc
	SuspendedCall
	Done
	// Faulted marks a task stopped by its own failure — a runtime error or
	// an allocation the recovery ladder could not satisfy — with the cause
	// captured in Task.Fault. Faulting is per-task: siblings keep running.
	Faulted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case SuspendedAlloc:
		return "suspended-alloc"
	case SuspendedCall:
		return "suspended-call"
	case Done:
		return "done"
	case Faulted:
		return "faulted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Task is one thread of control.
type Task struct {
	ID     int
	Status Status
	Result code.Word
	Err    error
	// Fault holds the structured failure record when Status is Faulted.
	Fault *TaskFault
	Out   bytes.Buffer

	stack  []code.Word
	sp     int
	fp     int
	pc     int
	fidx   int
	shadow []int // function index per frame (interpreter bookkeeping only)
	// pendingAlloc is the retry size while suspended at an allocation.
	pendingAlloc int
	// allocRetry marks a task resuming a suspended allocation: torture and
	// fault injection skip the retry, or an injected failure would suspend
	// the same allocation forever.
	allocRetry bool
	// allocEmergency marks a suspension caused by a failed (or injected-
	// failed) allocation rather than a sibling's Rgc or torture: the task is
	// climbing the recovery ladder, and the climb's outcome is counted as
	// LadderRecovered or LadderExhausted when it resolves.
	allocEmergency bool

	// Steps counts instructions this task has executed; AllocWords counts
	// the object field words it has requested. Both are the budget meters
	// (Group.BudgetSteps / BudgetAllocWords) and feed the serve harness's
	// per-request accounting.
	Steps      int64
	AllocWords int64

	// tlab is this task's private allocation buffer (Group.TLABWords > 0);
	// TLAB accumulates its lifetime accounting.
	tlab heap.TLAB
	TLAB TLABStats
}

// TLABStats is one task's allocation-buffer accounting over its lifetime.
// FastAllocs served from the private buffer without touching the shared
// heap; SlowAllocs went through Heap.Alloc (oversize, or a failed carve
// rescued by a mark/sweep free list); Refills carved RefillWords from the
// shared heap, of which WasteWords died unused and ReturnedWords were
// given back at retirement.
type TLABStats struct {
	FastAllocs    int64
	SlowAllocs    int64
	Refills       int64
	RefillWords   int64
	WasteWords    int64
	ReturnedWords int64
}

// FaultKind classifies a task fault.
type FaultKind int

// Fault kinds.
const (
	// FaultRuntime is a VM/runtime error (division by zero, match
	// failure, illegal opcode, ...).
	FaultRuntime FaultKind = iota
	// FaultOOM is an allocation that failed after the whole recovery
	// ladder: emergency collection, retry, and (when enabled) heap growth.
	FaultOOM
	// FaultBudget (BudgetExceeded) is a task terminated for exceeding a
	// per-task budget: the step/deadline limit, the allocation-word quota,
	// or an overload-ladder cancellation. Enforced only at the interpreter's
	// existing suspension points (call dispatch and allocation), so an
	// unbudgeted run's execution is untouched instruction for instruction.
	FaultBudget
)

// String names the fault kind ("BudgetExceeded" matches the serve
// harness's telemetry vocabulary).
func (k FaultKind) String() string {
	switch k {
	case FaultRuntime:
		return "RuntimeError"
	case FaultOOM:
		return "OutOfMemory"
	case FaultBudget:
		return "BudgetExceeded"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Frame is one activation record in a captured backtrace.
type Frame struct {
	// FP is the frame's base index in the task stack; PC the instruction
	// the frame is at (the faulting instruction for the innermost frame,
	// the pending call for each caller).
	FP, PC int
	Func   string
}

// TaskFault is the structured record of one task's failure: what happened
// (Kind, Cause), where (Func, PC, the frame chain) and — for allocation
// faults — how much was being requested.
type TaskFault struct {
	Task int
	Kind FaultKind
	PC   int
	Func string
	// AllocSize is the pending allocation's field count (FaultOOM only).
	AllocSize int
	Frames    []Frame
	Cause     error
}

// Error implements the error interface.
func (f *TaskFault) Error() string {
	switch f.Kind {
	case FaultRuntime:
		// Runtime-error causes come from errf, which already carries the
		// task/function/pc context and the backtrace.
		return f.Cause.Error()
	case FaultBudget:
		return fmt.Sprintf("task %d exceeded its budget in %s at pc %d: %v%s",
			f.Task, f.Func, f.PC, f.Cause, backtraceString(f.Frames))
	}
	return fmt.Sprintf("task %d faulted in %s at pc %d: allocation of %d fields failed after the recovery ladder: %v%s",
		f.Task, f.Func, f.PC, f.AllocSize, f.Cause, backtraceString(f.Frames))
}

// Unwrap exposes the underlying cause (e.g. *heap.OutOfMemoryError).
func (f *TaskFault) Unwrap() error { return f.Cause }

// backtraceString renders a frame chain innermost-first for error text.
// Deep recursions fault with thousands of live frames; only the innermost
// few identify the failure, so display is capped.
func backtraceString(frames []Frame) string {
	if len(frames) == 0 {
		return ""
	}
	const maxShown = 12
	var b strings.Builder
	b.WriteString("; backtrace:")
	for i, fr := range frames {
		if i == maxShown {
			fmt.Fprintf(&b, " <- ... (%d more)", len(frames)-i)
			break
		}
		if i > 0 {
			b.WriteString(" <-")
		}
		fmt.Fprintf(&b, " %s@pc%d(fp=%d)", fr.Func, fr.PC, fr.FP)
	}
	return b.String()
}

// Stats aggregates group-level measurements (experiment E7).
type Stats struct {
	Collections int64
	// RgcChecks counts call-dispatch Rgc comparisons (the per-call cost
	// the paper argues is nearly free).
	RgcChecks int64
	// SuspendLatency records, per collection, the number of instructions
	// executed by all tasks between Rgc being raised and the last task
	// suspending.
	SuspendLatency []int64
	Instructions   int64
	// ShardMinors counts single-shard minor collections (Shards > 1);
	// ShardMinorOverlapTasks sums, over those, the other-shard tasks that
	// were still runnable when the shard collected — the concurrency a
	// sharded heap buys over a stop-the-world minor, which would have
	// parked every one of them (experiment E16).
	ShardMinors            int64
	ShardMinorOverlapTasks int64
	// ShardExposures counts exposure events: a shard's young pointer
	// observed escaping to the globals or another shard, blocking that
	// shard's minors until a global collection empties the nurseries.
	ShardExposures int64
}

// Policy selects the paper's suspension discipline (§4).
type Policy int

// Suspension policies.
const (
	// SuspendAtCalls adds Rgc to every call target: a raised Rgc diverts
	// the next call into the suspension stub (the paper's second option).
	SuspendAtCalls Policy = iota
	// SuspendAtAllocs checks Rgc only inside allocation routines (the
	// paper's first option: fewer checks, potentially longer waits).
	SuspendAtAllocs
)

// Group is a set of tasks over one shared heap.
type Group struct {
	Prog    *code.Program
	Heap    *heap.Heap
	Col     *gc.Collector
	Globals []code.Word
	Tasks   []*Task
	Stats   Stats

	rgc     code.Word
	latency int64
	steps   int64
	// Policy is the suspension discipline (default SuspendAtCalls).
	Policy Policy
	// Quantum is the instruction slice per scheduling turn.
	Quantum int
	// MaxSteps bounds total execution.
	MaxSteps int64
	// GrowFactor, when > 1, enables the recovery ladder's growth rung:
	// after a collection that did not satisfy a pending allocation, the
	// heap is grown by this factor (per semispace) until the allocation
	// fits or MaxHeapWords is reached.
	GrowFactor float64
	// MaxHeapWords is the growth rung's hard ceiling in words per
	// semispace (0 = unbounded).
	MaxHeapWords int
	// TLABWords, when > 0, gives every task a private allocation buffer
	// refilled in chunks of this many words (-tlab N). The buffers are
	// armed lazily on the first scheduling call and retired en masse before
	// every collection via the collector's PreCollect hook.
	TLABWords int
	// BudgetSteps, when > 0, is the per-task instruction deadline: a task
	// that has executed more than this many instructions is terminated with
	// a BudgetExceeded fault at its next suspension point (call dispatch or
	// allocation). BudgetAllocWords is the per-task allocation-word quota,
	// checked before every allocation. Both leave siblings — and, with
	// budgets off, the whole run — untouched.
	BudgetSteps      int64
	BudgetAllocWords int64
	// Tick, when set, is called at the top of every scheduling round with
	// the group's virtual time (cumulative quantum steps). It may Spawn new
	// tasks and CancelTask existing ones (no collection is in progress at
	// tick time). Returning true keeps the scheduler alive even when every
	// current task is finished: virtual time advances by one quantum per
	// idle round so externally scheduled work (the serve harness's open-loop
	// arrivals) still has a clock.
	Tick func(now int64) bool

	// Shards, when > 1, partitions the tasks into that many heap shards,
	// each with its own nursery pair and TLAB pool
	// (heap.EnableNurseryShards — the pipeline arms the heap to match). A
	// task's shard is its ID mod Shards (ShardAssign overrides). When one
	// shard's nursery fills, only that shard's tasks ride a suspend wave
	// (rgcShard) and only that shard's young generation is collected —
	// every other shard's tasks keep running their quanta, which is the
	// pause overlap experiment E16 measures. Requires a tag-free strategy
	// with a nursery and no concurrent marking.
	Shards int
	// ShardAssign, when non-nil, overrides the task→shard map by task ID
	// (entries are reduced mod Shards; missing/negative IDs fall back to
	// ID mod Shards). The interleaving fuzz permutes it.
	ShardAssign []int

	// GCConcurrent arms mostly-concurrent marking (mark/sweep heaps without
	// a nursery): a cycle starts with a brief root-snapshot pause when heap
	// occupancy crosses ConcTriggerPct, marking then runs in budgeted
	// slices between task quanta, and a bounded final pause re-scans the
	// stacks and sweeps. Both pauses ride the ordinary Rgc suspend wave so
	// every task is at a call/alloc safe point with a valid frame map. See
	// gc/concurrent.go for the marking engine and the abort/fallback rung.
	GCConcurrent bool
	// ConcTriggerPct is the occupancy watermark, in percent of the heap's
	// words, that starts a concurrent cycle (0 = 75).
	ConcTriggerPct int

	// PoisonPruned faults any task whose compiled code loads the
	// liveness-guided collector's PrunedWord sentinel — the debug mode
	// that makes heap-liveness verdicts falsifiable: a verdict that pruned
	// a field the program still reads turns into a deterministic fault
	// instead of a silently wrong value.
	PoisonPruned bool

	// forceMajor requests that the next stop-the-world collection escalate
	// to a tenure-all major (the overload ladder's second rung); set via
	// RequestMajor, consumed by collectSuspended.
	forceMajor bool
	// concPhase tracks the concurrent cycle's scheduler-side state: which
	// suspend waves belong to the cycle's pauses rather than a collection.
	concPhase int
	// concLastEnd is heap occupancy right after the last collection of any
	// kind. The trigger requires real allocation growth beyond it, so a
	// mostly-live heap that stays above the watermark does not re-cycle
	// every round reclaiming nothing.
	concLastEnd int

	// initTask is the transient init task while RunInit is running, so the
	// pre-collection retirement wave covers its buffer too.
	initTask *Task

	// rgcShard[s] is the per-shard Rgc register: nonzero parks shard-s
	// tasks (at the same safe points as rgc) for a single-shard minor
	// collection. exposed[s] records that a shard-s young pointer may live
	// outside shard s's own world (a global, another shard's stack or
	// young object) — shard-s minors are blocked until a global collection
	// empties every nursery, because a shard minor traces only shard-s
	// stacks, the globals and the shard-filtered remembered set.
	rgcShard []code.Word
	exposed  []bool
}

// NewGroup builds a tasking group over a fresh semispace copying heap.
// Entries are function indexes of the task bodies (each of type
// unit -> int); the program's init function runs first on task 0's stack
// to populate globals.
func NewGroup(prog *code.Program, semiWords int, strat gc.Strategy, entries []int) (*Group, error) {
	return NewGroupWith(prog, heap.New(prog.Repr, semiWords), strat, entries)
}

// NewGroupWith builds a tasking group over a caller-constructed heap
// (e.g. a mark/sweep heap from heap.NewMarkSweep).
func NewGroupWith(prog *code.Program, h *heap.Heap, strat gc.Strategy, entries []int) (*Group, error) {
	col, err := gc.New(prog, h, strat)
	if err != nil {
		return nil, err
	}
	g := &Group{
		Prog:     prog,
		Heap:     h,
		Col:      col,
		Globals:  make([]code.Word, len(prog.Globals)),
		Quantum:  97,
		MaxSteps: 1 << 40,
	}
	for _, e := range entries {
		g.Spawn(e)
	}
	return g, nil
}

// Spawn adds a task running function index entry (of type unit -> int) to
// the group. Tasks may be spawned before the run starts or dynamically
// from a Tick hook — never during a collection, which Tick guarantees by
// construction. The new task is scheduled at the end of the round-robin
// order, so spawning every entry up front is execution-identical to
// constructing the group with those entries.
func (g *Group) Spawn(entry int) *Task {
	t := &Task{ID: len(g.Tasks), stack: make([]code.Word, 1024), fp: -1}
	g.pushFrame(t, entry, -1)
	t.stack[t.fp+2] = code.EncodeInt(g.Prog.Repr, 0) // the unit argument
	g.Tasks = append(g.Tasks, t)
	return t
}

// Now returns the group's virtual time: the cumulative scheduler steps
// (whole quanta, including idle rounds) since the run began.
func (g *Group) Now() int64 { return g.steps }

// RequestMajor asks the next stop-the-world collection to escalate to a
// tenure-all major after the normal cycle — the serve harness's "force
// major/tenure-all" overload rung. No-op between collections otherwise.
func (g *Group) RequestMajor() { g.forceMajor = true }

// CancelTask terminates a live task with a BudgetExceeded fault carrying
// the given cause — the overload ladder's last per-task rung before any
// global failure. Safe from a Tick hook (the task is not mid-step); a
// task that already finished or faulted is left untouched.
func (g *Group) CancelTask(t *Task, cause error) bool {
	if t.Status == Done || t.Status == Faulted {
		return false
	}
	g.faultTask(t, FaultBudget, 0, cause)
	return true
}

// setupTLABs lazily arms the heap's TLAB mode and the pre-collection
// retirement hook. Idempotent; called from every scheduling entry point so
// callers may set TLABWords any time between construction and first run.
func (g *Group) setupTLABs() {
	if g.TLABWords > 0 && !g.Heap.TLABsEnabled() {
		g.Heap.EnableTLABs(g.TLABWords)
		g.Col.PreCollect = g.retireAllTLABs
	}
}

// setupShards lazily sizes the per-shard wave and exposure state.
// Idempotent; called from every scheduling entry point. The heap itself is
// sharded by the caller (heap.EnableNurseryShards) before the run starts.
func (g *Group) setupShards() {
	if g.Shards > 1 && g.rgcShard == nil {
		g.rgcShard = make([]code.Word, g.Shards)
		g.exposed = make([]bool, g.Shards)
	}
}

// sharded reports whether per-shard scheduling is live: more than one
// shard over a generational heap.
func (g *Group) sharded() bool {
	return g.Shards > 1 && g.Heap.NurseryEnabled()
}

// shardOf maps a task to its heap shard: ShardAssign[ID] when set,
// otherwise ID mod Shards. The init task (ID -1) runs in shard 0.
func (g *Group) shardOf(t *Task) int {
	if g.Shards <= 1 || t.ID < 0 {
		return 0
	}
	if t.ID < len(g.ShardAssign) {
		s := g.ShardAssign[t.ID] % g.Shards
		if s < 0 {
			s += g.Shards
		}
		return s
	}
	return t.ID % g.Shards
}

// expose marks a young value as escaped from its shard, blocking that
// shard's minors. Tag-free integers can alias young addresses, so the check
// is conservative — a spurious exposure only costs a blocked shard minor,
// never soundness.
func (g *Group) expose(v code.Word) {
	s := g.Heap.YoungShardOf(v)
	if !g.exposed[s] {
		g.exposed[s] = true
		g.Stats.ShardExposures++
	}
}

// maybeClearExposure lifts the exposure blocks once every nursery is empty
// (after a tenure-all, or any global collection that promoted or reclaimed
// every young object): with no young objects left there is nothing an old
// exposure flag could still protect.
func (g *Group) maybeClearExposure() {
	if g.exposed == nil || g.Heap.YoungUsed() != 0 {
		return
	}
	for i := range g.exposed {
		g.exposed[i] = false
	}
}

// clearShardWaves stands down every pending shard wave (a global
// collection empties all nurseries, so the waves' work is done).
func (g *Group) clearShardWaves() {
	for i := range g.rgcShard {
		g.rgcShard[i] = 0
	}
}

// retireTaskTLAB retires one task's buffer (no-op when inactive), folding
// the waste/give-back words into the task's accounting.
func (g *Group) retireTaskTLAB(t *Task) {
	if !t.tlab.Active() {
		return
	}
	waste, returned := g.Heap.RetireTLAB(&t.tlab)
	t.TLAB.WasteWords += int64(waste)
	t.TLAB.ReturnedWords += int64(returned)
}

// retireAllTLABs retires every live buffer in the group; the collector
// runs it (via PreCollect) before any collection so the heap it scans is
// fully tiled.
func (g *Group) retireAllTLABs() {
	for _, t := range g.Tasks {
		g.retireTaskTLAB(t)
	}
	if g.initTask != nil {
		g.retireTaskTLAB(g.initTask)
	}
}

// taskAlloc is the tasking allocation path. With TLABs armed, an eligible
// request is served from the task's private buffer — a bounds-check-and-
// bump with no shared-heap acquisition — refilling via one chunked carve
// when the buffer is full. Oversize requests, and carve failures (the
// region cannot take even the clamped chunk), fall back to the shared
// Heap.Alloc, whose failure feeds the ordinary recovery ladder.
func (g *Group) taskAlloc(t *Task, n int) (code.Word, error) {
	if g.TLABWords > 0 && g.Heap.TLABEligible(n) {
		if ptr, ok := g.Heap.AllocTLAB(&t.tlab, n); ok {
			t.TLAB.FastAllocs++
			return ptr, nil
		}
		g.retireTaskTLAB(t)
		if tl, ok := g.Heap.CarveTLAB(n); ok {
			t.tlab = tl
			t.TLAB.Refills++
			t.TLAB.RefillWords += int64(tl.Cap())
			ptr, ok := g.Heap.AllocTLAB(&t.tlab, n)
			if !ok {
				panic("tasking: allocation failed inside a fresh TLAB carve")
			}
			t.TLAB.FastAllocs++
			return ptr, nil
		}
	}
	ptr, err := g.Heap.Alloc(n)
	if err == nil && g.TLABWords > 0 {
		t.TLAB.SlowAllocs++
	}
	return ptr, err
}

// allocBlocked reports whether a pending allocation would still fail if
// retried right now. On a TLAB heap the retry refills through a clamped
// carve (or the mark/sweep free lists), so it must be judged with
// NeedTLAB — Need alone compares a TLAB-satisfiable request against the
// shared bump region and sends the ladder climbing rungs it does not need.
func (g *Group) allocBlocked(n int) bool {
	if g.TLABWords > 0 && g.Heap.TLABsEnabled() {
		return g.Heap.NeedTLAB(n)
	}
	return g.Heap.Need(n)
}

// RunInit executes the program's init function to completion on a
// dedicated task before the group starts.
func (g *Group) RunInit() error {
	g.setupTLABs()
	g.setupShards()
	t := &Task{ID: -1, stack: make([]code.Word, 1024), fp: -1}
	g.initTask = t
	defer func() {
		g.retireTaskTLAB(t)
		g.initTask = nil
	}()
	g.pushFrame(t, g.Prog.InitFunc, -1)
	for t.Status == Running {
		if err := g.step(t, 1_000_000); err != nil {
			return err
		}
		if t.Status == SuspendedAlloc {
			// Init alone: collect immediately with only this stack, then
			// climb the rest of the ladder. Init failure is group-fatal —
			// no task can run without the globals.
			g.collect([]*Task{t})
			ok := g.rescueAlloc([]*Task{t}, t.pendingAlloc)
			g.noteLadderOutcome(t, ok)
			if !ok {
				return t.errf(g, "%v", g.oomCause(t.pendingAlloc))
			}
			t.Status = Running
		}
	}
	if t.Status == Faulted {
		return t.Err
	}
	g.sealInit()
	return nil
}

// sealInit closes out a sharded group's init phase. Init runs in shard 0
// and populates the globals, so its young allocations are all "exposed" —
// the flags it raised would block every shard-0 minor from the first
// quantum. A tenure-all collection over the globals alone (the spawned
// tasks' stacks hold no heap pointers yet — just the unit argument) moves
// everything init built into the shared old region, after which the
// exposure flags can be cleared and every shard starts with an empty,
// private nursery.
func (g *Group) sealInit() {
	if !g.sharded() {
		return
	}
	if g.Heap.YoungUsed() > 0 {
		g.tenureCollect(nil)
	}
	g.maybeClearExposure()
}

// Run schedules the tasks round-robin until every task is Done or Faulted.
// Per-task failures do not abort the group: a task that trips a runtime
// error or exhausts the recovery ladder transitions to Faulted (cause in
// Task.Fault / Task.Err) and its siblings keep running. The returned error
// reports only group-level failures — the step limit and scheduler
// deadlock.
func (g *Group) Run() error {
	for {
		pending, err := g.runUntilSuspended()
		if err != nil {
			return err
		}
		if !pending {
			if g.Heap.TLABsEnabled() {
				g.Col.Telem.FinalizeTLAB(g.Heap.Stats)
			}
			return nil
		}
		g.collectSuspended()
	}
}

// runUntilSuspended schedules tasks until either every task finished
// (false) or a collection is pending with every live task at a safe point
// (true).
func (g *Group) runUntilSuspended() (bool, error) {
	g.setupTLABs()
	g.setupShards()
	sharded := g.sharded()
	for {
		external := false
		if g.Tick != nil && g.rgc == 0 {
			// The supervisor hook runs only between collections: a task it
			// spawns starts Running, which must not break the all-suspended
			// invariant of a pending stop-the-world cycle.
			external = g.Tick(g.steps)
		}
		if g.forceMajor && g.rgc == 0 {
			// A supervisor requested a major cycle (the serve ladder's rung
			// 2). Collections normally start from an allocation failure, but
			// a server shedding every arrival may never allocate again —
			// waiting for an organic trigger would leave occupancy high
			// forever. Raise Rgc so running tasks reach their safe points
			// (the normal stop-the-world path consumes forceMajor); with no
			// runnable task, collect right here over the globals alone.
			anyRunning := false
			for _, t := range g.Tasks {
				if t.Status == Running {
					anyRunning = true
					break
				}
			}
			if anyRunning {
				g.rgc = 1
			} else {
				g.collectSuspended()
			}
		}
		if g.GCConcurrent && g.rgc == 0 {
			g.concAdvance()
		}
		allDone := true
		anyRan := false
		for _, t := range g.Tasks {
			if t.Status == Done || t.Status == Faulted {
				continue
			}
			allDone = false
			if t.Status == SuspendedAlloc || t.Status == SuspendedCall {
				continue
			}
			anyRan = true
			if sharded {
				// Route this quantum's allocations at the task's own nursery
				// shard.
				g.Heap.SetAllocShard(g.shardOf(t))
			}
			if err := g.step(t, g.Quantum); err != nil {
				// Fault isolation: the error stops this task only.
				g.faultTask(t, FaultRuntime, 0, err)
				continue
			}
			if t.Status == Done {
				// The task will never allocate again; complete its buffer
				// accounting and release the tail.
				g.retireTaskTLAB(t)
			}
			g.steps += int64(g.Quantum)
			if g.steps > g.MaxSteps {
				return false, fmt.Errorf("tasking: step limit exceeded")
			}
		}
		if allDone {
			if external {
				// Open-loop mode: every admitted task finished but the
				// supervisor still expects arrivals. Let virtual time pass
				// so the next Tick can inject them.
				g.steps += int64(g.Quantum)
				if g.steps > g.MaxSteps {
					return false, fmt.Errorf("tasking: step limit exceeded")
				}
				continue
			}
			if g.GCConcurrent {
				g.concRunEnd()
			}
			return false, nil
		}
		if sharded {
			g.serviceShardMinors()
		}
		if g.rgc != 0 && g.allSuspended() {
			if g.concPause() {
				continue
			}
			return true, nil
		}
		if !anyRan && g.rgc == 0 {
			return false, fmt.Errorf("tasking: deadlock: tasks suspended with no collection pending")
		}
	}
}

// RunUntilCollection schedules the group until a stop-the-world collection
// is about to start and returns the root set the collector would scan,
// without collecting. It returns pending=false when every task finished
// first. Benchmarks use it to measure Collect on realistic mid-execution
// root sets; callers may invoke Collect repeatedly on the returned roots
// (each collection leaves the stacks consistent for the next).
func (g *Group) RunUntilCollection() ([]gc.TaskRoots, bool, error) {
	pending, err := g.runUntilSuspended()
	if err != nil || !pending {
		return nil, false, err
	}
	return g.rootSet(g.pendingTasks()), true, nil
}

// pendingTasks lists the live tasks suspended for the coming collection.
func (g *Group) pendingTasks() []*Task {
	var live []*Task
	for _, t := range g.Tasks {
		if t.Status == SuspendedAlloc || t.Status == SuspendedCall {
			live = append(live, t)
		}
	}
	return live
}

// rootSet builds the collector's view of the suspended tasks.
func (g *Group) rootSet(live []*Task) []gc.TaskRoots {
	roots := make([]gc.TaskRoots, 0, len(live))
	for _, t := range live {
		roots = append(roots, gc.TaskRoots{
			Stack:  t.stack,
			FP:     t.fp,
			SP:     t.sp,
			PC:     t.pc,
			AtCall: t.Status == SuspendedCall,
		})
	}
	return roots
}

func (g *Group) allSuspended() bool {
	for _, t := range g.Tasks {
		if t.Status == Running {
			return false
		}
	}
	return true
}

// Concurrent-cycle scheduler phases. The marking engine (gc/concurrent.go)
// owns the gray queue; the scheduler owns when its pauses may run: frame
// maps exist only at call/alloc instructions, so the root snapshot and the
// final re-scan ride the same Rgc suspend wave a stop-the-world collection
// uses, while mark slices — which touch no stacks — run between rounds.
const (
	concIdle = iota
	concStartPending  // wave raised to snapshot roots and start the cycle
	concMarking       // cycle active; one mark slice per scheduling round
	concFinishPending // gray queue drained; wave raised for the final pause
)

// concAdvance drives the concurrent collector between task quanta: it
// raises the start wave when occupancy crosses the watermark, runs one
// marking slice per round while the cycle is active, raises the finish
// wave once the gray queue drains, and aborts to an ordinary
// stop-the-world collection when the slice watchdog trips. Callers
// guarantee g.rgc == 0.
func (g *Group) concAdvance() {
	switch g.concPhase {
	case concIdle:
		if g.Col.ConcActive() {
			return // cycle mid-flight with no wave pending (marking phase)
		}
		pct := g.ConcTriggerPct
		if pct <= 0 {
			pct = 75
		}
		// Occupancy, not Used(): the mark/sweep bump pointer saturates
		// permanently once the region fills, while freed storage parks on
		// the free lists. Used minus free-list words is what is live+floating.
		occ := g.Heap.OccupiedWords()
		if 100*occ < pct*g.Heap.SemiWords() {
			return
		}
		// Hysteresis: a heap whose live set sits above the watermark would
		// otherwise re-cycle every round reclaiming nothing. Require real
		// allocation since the last collection before cycling again.
		if occ < g.concLastEnd+g.Heap.SemiWords()/8 {
			return
		}
		g.concPhase = concStartPending
		g.rgc = 1
	case concMarking:
		if !g.Col.ConcActive() {
			// The write barrier aborted the cycle mid-quantum (a non-ground
			// store it cannot type). Raise an ordinary stop-the-world wave to
			// reclaim — the fallback the abort rung promises.
			g.concPhase = concIdle
			g.rgc = 1
			return
		}
		switch g.Col.ConcSlice() {
		case gc.ConcDrained:
			g.concPhase = concFinishPending
			g.rgc = 1
		case gc.ConcOverBudget:
			// The watchdog rung: the gray queue refused to drain within the
			// slice budget (a store-heavy mutator regrowing it faster than
			// marking retires it). Abort the cycle and raise an ordinary
			// stop-the-world wave, which reclaims with the serial collector.
			g.Col.ConcAbort()
			g.concPhase = concIdle
			g.rgc = 1
		}
	}
}

// concPause services a suspend wave that belongs to the concurrent cycle
// (start or finish) rather than a collection: every live task is at a safe
// point, so the stacks can be scanned. It reports whether the wave was
// consumed here — tasks resumed, scheduling continues. A wave carrying a
// genuine allocation failure (any SuspendedAlloc task, including torture
// injections) returns false and hands over to the stop-the-world path,
// whose CollectFull aborts any in-flight cycle automatically.
func (g *Group) concPause() bool {
	if g.concPhase != concStartPending && g.concPhase != concFinishPending {
		// A genuine collection wave (allocation failure, forced major). The
		// stop-the-world collect aborts any cycle still marking, so the
		// scheduler phase resets with it.
		g.concPhase = concIdle
		return false
	}
	live := g.pendingTasks()
	for _, t := range live {
		if t.Status == SuspendedAlloc {
			// An allocation failure shares the wave: memory is needed NOW,
			// and only a full collection (with the rescue ladder behind it)
			// guarantees it. Let collectSuspended take over.
			g.concPhase = concIdle
			return false
		}
	}
	g.Stats.SuspendLatency = append(g.Stats.SuspendLatency, g.latency)
	g.latency = 0
	if g.concPhase == concStartPending {
		g.Col.ConcStart(g.rootSet(live), g.Globals)
		g.concPhase = concMarking
	} else {
		g.Col.ConcFinish(g.rootSet(live), g.Globals)
		g.Stats.Collections++
		g.concPhase = concIdle
		g.concLastEnd = g.Heap.OccupiedWords()
	}
	g.rgc = 0
	for _, t := range live {
		t.Status = Running
	}
	return true
}

// concRunEnd closes out concurrent state when the last task finishes: a
// cycle still marking (or about to finish) completes over the globals
// alone — the sweep, the telemetry record and the verifier all still run —
// and a wave that never gathered is stood down.
func (g *Group) concRunEnd() {
	if g.Col.ConcActive() {
		g.Col.ConcFinish(nil, g.Globals)
		g.Stats.Collections++
	}
	g.concPhase = concIdle
	g.rgc = 0
}

// collectSuspended runs a stop-the-world collection over every live task
// and resumes them, climbing the rest of the recovery ladder for any task
// whose pending allocation the collection did not satisfy: grow the heap
// (when GrowFactor enables it) and, only when growth is off or capped,
// fault that one task. Siblings always resume (otherwise the group would
// either cycle through collections forever or die with one greedy task).
func (g *Group) collectSuspended() {
	live := g.pendingTasks()
	g.collect(live)
	if g.forceMajor {
		// An external supervisor (the serve degradation ladder) asked for a
		// tenure-all cycle: empty the nursery into the old region so shed
		// decisions are judged against real headroom.
		g.forceMajor = false
		if g.Heap.NurseryEnabled() {
			g.tenureCollect(live)
		}
	}
	g.Stats.SuspendLatency = append(g.Stats.SuspendLatency, g.latency)
	g.latency = 0
	// Rescue before resuming anyone: rescueAlloc's generational rungs run
	// further collections over these same stacks, and a task's root
	// treatment (AtCall) is read from its still-suspended status.
	for _, t := range live {
		if t.Status != SuspendedAlloc {
			continue
		}
		if g.sharded() {
			// The retry and the ladder's Need checks judge headroom against
			// the blocked task's own nursery shard.
			g.Heap.SetAllocShard(g.shardOf(t))
		}
		ok := g.rescueAlloc(live, t.pendingAlloc)
		g.noteLadderOutcome(t, ok)
		if !ok {
			g.faultTask(t, FaultOOM, t.pendingAlloc, g.oomCause(t.pendingAlloc))
		}
	}
	for _, t := range live {
		if t.Status != Faulted {
			t.Status = Running
		}
	}
	g.concLastEnd = g.Heap.OccupiedWords()
}

// serviceShardMinors runs any pending single-shard minor whose tasks have
// all reached safe points. Unlike a stop-the-world wave, a shard wave
// gathers only its own tasks: the scheduler keeps stepping every other
// shard between rounds, so their mutation overlaps the shard's collection
// (the overlap Stats.ShardMinorOverlapTasks measures). A wave whose shard
// is no longer minor-eligible — an exposure landed after the raise, a
// barrier overflow forced the next cycle major — escalates to the ordinary
// global wave instead, as does a shard whose minor did not free enough for
// the blocked allocation (the global ladder has the full/tenure/grow rungs
// a shard minor lacks).
func (g *Group) serviceShardMinors() {
	for s := range g.rgcShard {
		if g.rgcShard[s] == 0 {
			continue
		}
		if g.rgc != 0 {
			// A global wave is also pending; its collection empties every
			// nursery, subsuming this shard's. The shard's suspended tasks
			// join the global wave and are rescued/resumed with it.
			g.rgcShard[s] = 0
			continue
		}
		var mine []*Task
		ready := true
		overlap := 0
		for _, t := range g.Tasks {
			switch t.Status {
			case Running:
				if g.shardOf(t) == s {
					ready = false
				} else {
					overlap++
				}
			case SuspendedAlloc, SuspendedCall:
				if g.shardOf(t) == s {
					mine = append(mine, t)
				}
			}
		}
		if !ready {
			continue // shard tasks still draining to their safe points
		}
		if !g.Col.MinorEligible() || g.exposed[s] {
			g.rgcShard[s] = 0
			g.rgc = 1
			continue
		}
		// Only this shard's young TLABs must be retired: other shards' young
		// buffers are untouched by a shard minor, and promotion allocates
		// past any live old-region carve.
		for _, t := range mine {
			g.retireTaskTLAB(t)
		}
		g.Col.CollectMinorShard(s, g.rootSet(mine), g.Globals)
		g.Stats.Collections++
		g.Stats.ShardMinors++
		g.Stats.ShardMinorOverlapTasks += int64(overlap)
		g.rgcShard[s] = 0
		g.Heap.SetAllocShard(s)
		escalate := false
		for _, t := range mine {
			if t.Status == SuspendedAlloc && g.allocBlocked(t.pendingAlloc) {
				// The shard minor was not enough; climb the global ladder.
				// The task stays suspended and is rescued by the global
				// collection's collectSuspended.
				t.allocEmergency = true
				escalate = true
			}
		}
		if escalate {
			g.Col.Telem.Resilience.EmergencyCollections++
			g.rgc = 1
			continue
		}
		for _, t := range mine {
			if t.Status != Faulted {
				t.Status = Running
			}
		}
	}
}

// rescueAlloc climbs the post-collection rungs of the ladder for a pending
// allocation of n fields: if the collection freed enough, done; otherwise
// escalate through the generational rungs (full collection, then a
// tenure-all collection that empties the nursery) and finally grow the
// heap by GrowFactor per attempt up to the MaxHeapWords ceiling. live is
// the suspended-task set whose stacks root the escalation collections.
func (g *Group) rescueAlloc(live []*Task, n int) bool {
	if !g.allocBlocked(n) {
		return true
	}
	if g.Heap.NurseryEnabled() {
		// The triggering collection may have been minor; a full collection
		// reclaims old-region garbage the minor cycle never looked at.
		if g.Col.LastCollectionMinor() {
			g.fullCollect(live)
			if !g.allocBlocked(n) {
				return true
			}
		}
		// Survivors below the promotion age can pin the nursery across any
		// number of full collections; tenure them all so an oversized
		// request can be judged against the real old-region headroom.
		g.tenureCollect(live)
		if !g.allocBlocked(n) {
			return true
		}
	}
	for g.GrowFactor > 1 {
		cur := g.Heap.SemiWords()
		next := int(float64(cur) * g.GrowFactor)
		if next <= cur {
			next = cur + 1
		}
		if g.MaxHeapWords > 0 && next > g.MaxHeapWords {
			next = g.MaxHeapWords
		}
		if next <= cur {
			return false // ceiling reached
		}
		if err := g.Heap.Grow(next); err != nil {
			return false
		}
		g.Col.Telem.Resilience.HeapGrowths++
		if !g.allocBlocked(n) {
			return true
		}
		if g.Heap.NurseryEnabled() {
			// Growth extends only the old region; re-tenure so the enlarged
			// region can absorb whatever still pins the nursery.
			g.tenureCollect(live)
			if !g.allocBlocked(n) {
				return true
			}
		}
	}
	return false
}

// oomCause materializes the typed exhaustion error for a pending
// allocation the ladder could not satisfy.
func (g *Group) oomCause(n int) error {
	if _, err := g.Heap.Alloc(n); err != nil {
		return err
	}
	return fmt.Errorf("allocation of %d fields failed transiently", n)
}

// faultTask transitions one task to Faulted with a captured TaskFault.
func (g *Group) faultTask(t *Task, kind FaultKind, allocSize int, cause error) {
	name := "?"
	if t.fidx >= 0 && t.fidx < len(g.Prog.Funcs) {
		name = g.Prog.Funcs[t.fidx].Name
	}
	f := &TaskFault{
		Task:      t.ID,
		Kind:      kind,
		PC:        t.pc,
		Func:      name,
		AllocSize: allocSize,
		Frames:    g.backtrace(t),
		Cause:     cause,
	}
	t.Status = Faulted
	t.Fault = f
	t.Err = f
	g.retireTaskTLAB(t)
	g.Col.Telem.Resilience.TaskFaults++
	if kind == FaultBudget {
		g.Col.Telem.Resilience.BudgetFaults++
	}
}

// noteLadderOutcome resolves one task's recovery-ladder climb: recovered
// (the retry will succeed) or exhausted (the task is about to fault).
// Only counted for tasks whose suspension was a failed allocation —
// emergency climbs — not for siblings parked by Rgc or torture.
func (g *Group) noteLadderOutcome(t *Task, ok bool) {
	if !t.allocEmergency {
		return
	}
	t.allocEmergency = false
	if ok {
		g.Col.Telem.Resilience.LadderRecovered++
	} else {
		g.Col.Telem.Resilience.LadderExhausted++
	}
}

// overBudget reports whether the task has exceeded a per-task budget,
// with the typed cause. extraAlloc is the field-word size of an
// allocation about to be requested (0 at call dispatch).
func (g *Group) overBudget(t *Task, extraAlloc int) (error, bool) {
	if g.BudgetSteps > 0 && t.Steps > g.BudgetSteps {
		return fmt.Errorf("step budget exhausted: %d instructions executed, limit %d", t.Steps, g.BudgetSteps), true
	}
	if g.BudgetAllocWords > 0 && t.AllocWords+int64(extraAlloc) > g.BudgetAllocWords {
		return fmt.Errorf("allocation budget exhausted: %d words requested, quota %d", t.AllocWords+int64(extraAlloc), g.BudgetAllocWords), true
	}
	return nil, false
}

// backtrace captures the task's frame chain, innermost first, bounded so
// a fault deep in a recursion does not snapshot thousands of identical
// frames. Function names come from the shadow stack; each caller's pc is
// the call instruction stored as its callee's return address.
func (g *Group) backtrace(t *Task) []Frame {
	const maxFrames = 64
	var frames []Frame
	fp, pc := t.fp, t.pc
	for i := len(t.shadow) - 1; i >= 0 && fp >= 0 && len(frames) < maxFrames; i-- {
		name := "?"
		if fidx := t.shadow[i]; fidx >= 0 && fidx < len(g.Prog.Funcs) {
			name = g.Prog.Funcs[fidx].Name
		}
		frames = append(frames, Frame{FP: fp, PC: pc, Func: name})
		pc = int(t.stack[fp+1])
		fp = int(t.stack[fp])
	}
	return frames
}

func (g *Group) collect(live []*Task) {
	g.Col.Collect(g.rootSet(live), g.Globals)
	g.Stats.Collections++
	g.rgc = 0
	g.clearShardWaves()
	g.maybeClearExposure()
}

// fullCollect forces a major collection (a rescue-ladder rung; the normal
// path goes through collect, which lets the collector pick minor/major).
func (g *Group) fullCollect(live []*Task) {
	g.Col.CollectFull(g.rootSet(live), g.Globals)
	g.Stats.Collections++
	g.maybeClearExposure()
}

// tenureCollect runs a full collection with every nursery survivor
// promoted regardless of age, emptying the young generation.
func (g *Group) tenureCollect(live []*Task) {
	g.Heap.SetTenureAll(true)
	g.fullCollect(live)
	g.Heap.SetTenureAll(false)
}

// ---------------------------------------------------------------------------
// Per-task execution.
// ---------------------------------------------------------------------------

func (g *Group) pushFrame(t *Task, fidx, retPC int) {
	fi := g.Prog.Funcs[fidx]
	fp := t.sp
	size := 2 + fi.NSlots
	if fp+size > len(t.stack) {
		ns := make([]code.Word, (fp+size)*2)
		copy(ns, t.stack)
		t.stack = ns
	}
	t.stack[fp] = code.Word(t.fp)
	t.stack[fp+1] = code.Word(retPC)
	if g.Col.Strat == gc.StratAppel || g.Col.Strat == gc.StratTagged {
		for i := 0; i < fi.NSlots; i++ {
			t.stack[fp+2+i] = 0
		}
	}
	t.sp = fp + size
	t.fp = fp
	t.shadow = append(t.shadow, fidx)
	t.fidx = fidx
	t.pc = fi.Entry
}

func (t *Task) atom(g *Group, w code.Word) code.Word {
	kind, idx := code.DecodeAtom(w)
	switch kind {
	case code.AtomSlot:
		return t.stack[t.fp+2+idx]
	case code.AtomConst:
		return g.Prog.Consts[idx]
	default:
		return g.Globals[idx]
	}
}

func (t *Task) errf(g *Group, format string, args ...any) error {
	name := "?"
	if t.fidx >= 0 && t.fidx < len(g.Prog.Funcs) {
		name = g.Prog.Funcs[t.fidx].Name
	}
	return fmt.Errorf("task %d: runtime error in %s at pc %d: %s%s",
		t.ID, name, t.pc, fmt.Sprintf(format, args...), backtraceString(g.backtrace(t)))
}

// step executes up to quantum instructions of one task.
func (g *Group) step(t *Task, quantum int) error {
	prog := g.Prog
	c := prog.Code
	repr := prog.Repr
	nursery := g.Heap.NurseryEnabled()
	conc := g.GCConcurrent
	sharded := g.sharded()
	tShard := 0
	if sharded {
		tShard = g.shardOf(t)
	}

	for i := 0; i < quantum; i++ {
		if t.Status != Running {
			return nil
		}
		g.Stats.Instructions++
		t.Steps++
		if g.rgc != 0 {
			g.latency++
		}
		pc := t.pc
		op := c[pc]
		switch op {
		case code.OpRet:
			val := t.atom(g, c[pc+1])
			retPC := int(t.stack[t.fp+1])
			callerFP := int(t.stack[t.fp])
			t.sp = t.fp
			t.shadow = t.shadow[:len(t.shadow)-1]
			if retPC < 0 {
				t.Status = Done
				t.Result = val
				return nil
			}
			t.fp = callerFP
			t.fidx = t.shadow[len(t.shadow)-1]
			t.stack[t.fp+2+int(c[retPC+1])] = val
			t.pc = retPC + code.InstrLen(c, retPC)

		case code.OpJmp:
			t.pc = int(c[pc+1])

		case code.OpJz:
			if !code.DecodeBool(repr, t.atom(g, c[pc+1])) {
				t.pc = int(c[pc+2])
			} else {
				t.pc = pc + 3
			}

		case code.OpMove:
			t.stack[t.fp+2+int(c[pc+1])] = t.atom(g, c[pc+2])
			t.pc = pc + 3

		case code.OpAdd:
			t.stack[t.fp+2+int(c[pc+1])] = t.atom(g, c[pc+2]) + t.atom(g, c[pc+3])
			t.pc = pc + 4
		case code.OpSub:
			t.stack[t.fp+2+int(c[pc+1])] = t.atom(g, c[pc+2]) - t.atom(g, c[pc+3])
			t.pc = pc + 4
		case code.OpMul:
			t.stack[t.fp+2+int(c[pc+1])] = t.atom(g, c[pc+2]) * t.atom(g, c[pc+3])
			t.pc = pc + 4
		case code.OpDiv, code.OpMod:
			b := t.atom(g, c[pc+3])
			if b == 0 {
				return t.errf(g, "division by zero")
			}
			a := t.atom(g, c[pc+2])
			var v code.Word
			if op == code.OpDiv {
				v = a / b
			} else {
				v = a % b
			}
			t.stack[t.fp+2+int(c[pc+1])] = v
			t.pc = pc + 4
		case code.OpTAdd:
			t.stack[t.fp+2+int(c[pc+1])] = t.atom(g, c[pc+2]) + t.atom(g, c[pc+3]) - 1
			t.pc = pc + 4
		case code.OpTSub:
			t.stack[t.fp+2+int(c[pc+1])] = t.atom(g, c[pc+2]) - t.atom(g, c[pc+3]) + 1
			t.pc = pc + 4
		case code.OpTMul:
			t.stack[t.fp+2+int(c[pc+1])] = ((t.atom(g, c[pc+2]) >> 1) * (t.atom(g, c[pc+3]) >> 1) << 1) | 1
			t.pc = pc + 4
		case code.OpTDiv, code.OpTMod:
			b := t.atom(g, c[pc+3]) >> 1
			if b == 0 {
				return t.errf(g, "division by zero")
			}
			a := t.atom(g, c[pc+2]) >> 1
			var v code.Word
			if op == code.OpTDiv {
				v = a / b
			} else {
				v = a % b
			}
			t.stack[t.fp+2+int(c[pc+1])] = v<<1 | 1
			t.pc = pc + 4
		case code.OpNeg:
			t.stack[t.fp+2+int(c[pc+1])] = -t.atom(g, c[pc+2])
			t.pc = pc + 3
		case code.OpTNeg:
			t.stack[t.fp+2+int(c[pc+1])] = 2 - t.atom(g, c[pc+2])
			t.pc = pc + 3

		case code.OpEq, code.OpNe, code.OpLt, code.OpLe, code.OpGt, code.OpGe:
			a := t.atom(g, c[pc+2])
			b := t.atom(g, c[pc+3])
			var r bool
			switch op {
			case code.OpEq:
				r = a == b
			case code.OpNe:
				r = a != b
			case code.OpLt:
				r = a < b
			case code.OpLe:
				r = a <= b
			case code.OpGt:
				r = a > b
			case code.OpGe:
				r = a >= b
			}
			t.stack[t.fp+2+int(c[pc+1])] = code.EncodeBool(repr, r)
			t.pc = pc + 4

		case code.OpNot:
			v := code.DecodeBool(repr, t.atom(g, c[pc+2]))
			t.stack[t.fp+2+int(c[pc+1])] = code.EncodeBool(repr, !v)
			t.pc = pc + 3

		case code.OpIsBoxed:
			v := code.IsBoxedValue(repr, t.atom(g, c[pc+2]))
			t.stack[t.fp+2+int(c[pc+1])] = code.EncodeBool(repr, v)
			t.pc = pc + 3

		case code.OpTagIs:
			obj := t.atom(g, c[pc+2])
			tag := code.DecodeInt(repr, g.Heap.Field(obj, 0))
			t.stack[t.fp+2+int(c[pc+1])] = code.EncodeBool(repr, tag == c[pc+3])
			t.pc = pc + 4

		case code.OpLdFld:
			v := g.Heap.Field(t.atom(g, c[pc+2]), int(c[pc+3]))
			if g.PoisonPruned && v == code.PrunedWord {
				return t.errf(g, "poison: load of pruned field %d — heap-liveness verdict was wrong", int(c[pc+3]))
			}
			if sharded && g.Heap.InYoung(v) && g.Heap.YoungShardOf(v) != tShard {
				// A foreign shard's young pointer just landed on this stack;
				// that shard's minors no longer see all their roots. (The word
				// may be an integer aliasing a young address — the exposure is
				// conservative, see expose.)
				g.expose(v)
			}
			t.stack[t.fp+2+int(c[pc+1])] = v
			t.pc = pc + 4

		case code.OpStFld:
			obj := t.atom(g, c[pc+1])
			v := t.atom(g, c[pc+3])
			g.Heap.SetField(obj, int(c[pc+2]), v)
			if nursery {
				// Old→young write barrier: the compiler's store descriptor
				// tells us the stored value's type, so only stores that can
				// hold a pointer ever consult the remembered set.
				if d := g.Prog.StoreDescs[pc]; d != nil && g.Heap.InOld(obj) && g.Heap.InYoung(v) {
					g.Col.Remember(obj, int(c[pc+2]), d)
				}
				if sharded && g.Heap.InYoung(v) && g.Heap.InYoung(obj) &&
					g.Heap.YoungShardOf(v) != g.Heap.YoungShardOf(obj) {
					// A cross-shard young→young edge: v's shard can no longer
					// collect alone (the edge lives in an object its minors
					// will not trace). Old→young stores need no flag — the
					// remembered set covers them shard-filtered.
					g.expose(v)
				}
			} else if conc && g.Col.ConcActive() {
				// Incremental-update barrier: graying the stored value keeps
				// marking sound when the mutator re-points a field of an
				// already-scanned (black) object at an unmarked target. Same
				// typed-store discipline as the generational barrier — the
				// store descriptor tells the collector how to trace v.
				if d := g.Prog.StoreDescs[pc]; d != nil {
					g.Col.ConcBarrier(d, v)
				}
			}
			t.pc = pc + 4

		case code.OpCall, code.OpCallC:
			if g.Policy == SuspendAtCalls {
				// The Rgc register is added to every call target: nonzero
				// diverts into the suspension stub (§4). A sharded group has
				// one more register per shard — only the task's own shard's
				// wave parks it.
				g.Stats.RgcChecks++
				if g.rgc != 0 || (sharded && g.rgcShard[tShard] != 0) {
					t.Status = SuspendedCall
					return nil
				}
			}
			if g.BudgetSteps > 0 || g.BudgetAllocWords > 0 {
				// Budgets are enforced at the same safe points as Rgc: call
				// dispatch is where a task can be stopped without leaving a
				// half-built frame or heap object.
				if cause, over := g.overBudget(t, 0); over {
					g.faultTask(t, FaultBudget, 0, cause)
					return nil
				}
			}
			if op == code.OpCall {
				callee := int(c[pc+2])
				nargs := int(c[pc+4])
				fi := prog.Funcs[callee]
				callerFP := t.fp
				g.pushFrame(t, callee, pc)
				for j := 0; j < nargs; j++ {
					v := readAtomFrom(g, t, callerFP, c[pc+5+j])
					if j < fi.NParams {
						t.stack[t.fp+2+j] = v
					} else {
						t.stack[t.fp+2+fi.RepArgBase+(j-fi.NParams)] = v
					}
				}
			} else {
				clos := t.atom(g, c[pc+3])
				if !code.IsBoxedValue(repr, clos) {
					return t.errf(g, "application of an undefined recursive closure")
				}
				callee := int(code.DecodeInt(repr, g.Heap.Field(clos, 0)))
				arg := t.atom(g, c[pc+4])
				g.pushFrame(t, callee, pc)
				t.stack[t.fp+2] = clos
				t.stack[t.fp+3] = arg
			}

		case code.OpMkRef, code.OpMkTuple, code.OpMkBox, code.OpMkClos:
			if err := g.stepAlloc(t, pc, op); err != nil {
				return err
			}

		case code.OpMkRep:
			n := int(c[pc+4])
			children := make([]int, n)
			for j := 0; j < n; j++ {
				children[j] = int(code.DecodeInt(repr, t.atom(g, c[pc+5+j])))
			}
			h := prog.Reps.Intern(code.TDKind(c[pc+2]), int(c[pc+3]), children)
			t.stack[t.fp+2+int(c[pc+1])] = code.EncodeInt(repr, int64(h))
			t.pc = pc + 5 + n

		case code.OpBuiltin:
			arg := t.atom(g, c[pc+3])
			g.builtin(t, c[pc+2], arg)
			t.stack[t.fp+2+int(c[pc+1])] = code.EncodeInt(repr, 0)
			t.pc = pc + 4

		case code.OpSetGlobal:
			v := t.atom(g, c[pc+2])
			if sharded && g.Heap.InYoung(v) {
				// Globals are traced during every shard minor, so the stored
				// pointer itself stays sound — but any task can now copy it
				// onto a stack the shard's minors never scan, so the shard
				// must be blocked from here on.
				g.expose(v)
			}
			g.Globals[int(c[pc+1])] = v
			t.pc = pc + 3

		case code.OpMatchFail:
			return t.errf(g, "match failure: no pattern matched")

		case code.OpHalt:
			t.Status = Done
			return nil

		default:
			return t.errf(g, "illegal opcode %d", op)
		}
	}
	return nil
}

// suspendAlloc parks a task at an allocation of n fields until the coming
// collection, marking the retry so fault injection skips it.
func (t *Task) suspendAlloc(n int) {
	t.Status = SuspendedAlloc
	t.pendingAlloc = n
	t.allocRetry = true
}

// readAtomFrom reads an atom against an explicit frame pointer (the caller
// frame during argument copying).
func readAtomFrom(g *Group, t *Task, fp int, w code.Word) code.Word {
	kind, idx := code.DecodeAtom(w)
	switch kind {
	case code.AtomSlot:
		return t.stack[fp+2+idx]
	case code.AtomConst:
		return g.Prog.Consts[idx]
	default:
		return g.Globals[idx]
	}
}

// stepAlloc executes one allocation instruction, or suspends the task.
func (g *Group) stepAlloc(t *Task, pc int, op code.Op) error {
	c := g.Prog.Code
	repr := g.Prog.Repr
	var n int
	switch op {
	case code.OpMkRef:
		n = 1
	case code.OpMkTuple:
		n = int(c[pc+3])
	case code.OpMkBox:
		n = int(c[pc+4])
		if c[pc+3] >= 0 {
			n++
		}
	case code.OpMkClos:
		n = 1 + int(c[pc+5]) + int(c[pc+6])
	}
	if g.BudgetSteps > 0 || g.BudgetAllocWords > 0 {
		// Allocation sites are the other safe point: fault the task before
		// the request touches the heap so an over-quota task cannot trigger
		// collections on its siblings' behalf.
		if cause, over := g.overBudget(t, n); over {
			g.faultTask(t, FaultBudget, n, cause)
			return nil
		}
	}
	sharded := g.sharded()
	tShard := 0
	if sharded {
		tShard = g.shardOf(t)
	}
	if g.Policy == SuspendAtAllocs {
		g.Stats.RgcChecks++
		if g.rgc != 0 || (sharded && g.rgcShard[tShard] != 0) {
			// Another task exhausted the heap (or this task's shard has a
			// minor pending); wait here and retry this allocation after the
			// collection.
			t.suspendAlloc(n)
			return nil
		}
	}
	if f := g.Col.Faults; f != nil && !t.allocRetry {
		// Fault injection runs before the real allocation and rides the
		// same suspend/collect path a genuine exhaustion would, so injected
		// failures exercise the full ladder. allocRetry guards the
		// post-collection retry: without it, torture (and FailEvery=1)
		// would re-suspend the same allocation forever.
		if f.Torture {
			if g.rgc == 0 {
				g.Col.Telem.Resilience.TortureCollections++
			}
			g.rgc = 1
			t.suspendAlloc(n)
			return nil
		}
		// A RefillOnly plan targets the moment a TLAB chunk would be carved
		// from the shared heap; every other attempt passes through untouched.
		refill := g.TLABWords > 0 && g.Heap.TLABEligible(n) && !g.Heap.TLABRoom(&t.tlab, n)
		if f.FailAllocAt(refill) {
			g.Col.Telem.Resilience.InjectedOOMs++
			if g.rgc == 0 {
				g.Col.Telem.Resilience.EmergencyCollections++
			}
			g.rgc = 1
			t.allocEmergency = true
			t.suspendAlloc(n)
			return nil
		}
	}
	ptr, err := g.taskAlloc(t, n)
	if err != nil {
		if sharded && g.rgc == 0 && g.rgcShard[tShard] == 0 &&
			!g.exposed[tShard] && g.Col.MinorEligible() && n <= g.Heap.YoungWords() {
			// A nursery-sized request failed in an unexposed, minor-eligible
			// shard: raise only that shard's wave. Its siblings in other
			// shards keep running while the shard collects alone;
			// serviceShardMinors escalates to the global ladder if the shard
			// minor is not enough.
			g.rgcShard[tShard] = 1
			t.suspendAlloc(n)
			return nil
		}
		// The typed allocation failure is the ladder's first rung: raise
		// Rgc and suspend for an emergency collection; collectSuspended
		// climbs the rest (retry, grow, fault).
		if g.rgc == 0 {
			g.Col.Telem.Resilience.EmergencyCollections++
		}
		g.rgc = 1
		t.allocEmergency = true
		t.suspendAlloc(n)
		return nil
	}
	t.AllocWords += int64(n)
	t.allocRetry = false
	if g.Heap.NurseryEnabled() && !g.Heap.InYoung(ptr) {
		// Objects too large for the nursery are born old; their stores
		// never ran the write barrier, so force the next cycle major.
		g.Col.NoteTenuredAlloc()
	}
	switch op {
	case code.OpMkRef:
		g.Heap.SetField(ptr, 0, t.atom(g, c[pc+3]))
		t.pc = pc + 4
	case code.OpMkTuple:
		for i := 0; i < n; i++ {
			g.Heap.SetField(ptr, i, t.atom(g, c[pc+4+i]))
		}
		t.pc = pc + 4 + n
	case code.OpMkBox:
		tag := c[pc+3]
		nf := int(c[pc+4])
		off := 0
		if tag >= 0 {
			g.Heap.SetField(ptr, 0, code.EncodeInt(repr, tag))
			off = 1
		}
		for i := 0; i < nf; i++ {
			g.Heap.SetField(ptr, off+i, t.atom(g, c[pc+5+i]))
		}
		t.pc = pc + 5 + nf
	case code.OpMkClos:
		target := c[pc+3]
		self := int(c[pc+4])
		nrep := int(c[pc+5])
		ncap := int(c[pc+6])
		g.Heap.SetField(ptr, 0, code.EncodeInt(repr, target))
		for i := 0; i < nrep; i++ {
			g.Heap.SetField(ptr, 1+i, t.atom(g, c[pc+7+i]))
		}
		for i := 0; i < ncap; i++ {
			g.Heap.SetField(ptr, 1+nrep+i, t.atom(g, c[pc+7+nrep+i]))
		}
		if self >= 0 {
			g.Heap.SetField(ptr, 1+nrep+self, ptr)
		}
		t.pc = pc + 7 + nrep + ncap
	}
	t.stack[t.fp+2+int(c[pc+1])] = ptr
	return nil
}

func (g *Group) builtin(t *Task, id code.BuiltinID, arg code.Word) {
	repr := g.Prog.Repr
	switch id {
	case code.BuiltinPrintInt:
		fmt.Fprintf(&t.Out, "%d", code.DecodeInt(repr, arg))
	case code.BuiltinPrintBool:
		fmt.Fprintf(&t.Out, "%t", code.DecodeBool(repr, arg))
	case code.BuiltinPrintString:
		t.Out.WriteString(g.Prog.Strings[code.DecodeInt(repr, arg)])
	case code.BuiltinPrintNewline:
		t.Out.WriteByte('\n')
	}
}
