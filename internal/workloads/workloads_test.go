package workloads_test

import (
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/pipeline"
	"tagfree/internal/vm"
	"tagfree/internal/workloads"
)

// TestWorkloadsAllStrategies is the corpus-level soundness check: every
// workload computes its documented result under all four collectors, with
// heaps small enough that collections actually occur on the allocation-heavy
// programs.
func TestWorkloadsAllStrategies(t *testing.T) {
	for _, w := range workloads.All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, strat := range pipeline.Strategies {
				res, err := pipeline.Run(w.Source, pipeline.Options{
					Strategy:  strat,
					HeapWords: w.HeapWords,
					MaxSteps:  500_000_000,
				})
				if err != nil {
					t.Fatalf("[%v] %v", strat, err)
				}
				if res.Value != w.Expect {
					t.Errorf("[%v] result = %d, want %d", strat, res.Value, w.Expect)
				}
			}
		})
	}
}

// TestAllocHeavyWorkloadsCollect confirms the recommended heap sizes force
// real collections in the compiled mode.
func TestAllocHeavyWorkloadsCollect(t *testing.T) {
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		res, err := pipeline.Run(w.Source, pipeline.Options{
			Strategy:  gc.StratCompiled,
			HeapWords: w.HeapWords,
		})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.HeapStats.Collections == 0 {
			t.Errorf("%s: no collections at the recommended heap size %d",
				w.Name, w.HeapWords)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := workloads.ByName("fib"); !ok {
		t.Fatal("fib missing")
	}
	if _, ok := workloads.ByName("nonesuch"); ok {
		t.Fatal("nonesuch should be missing")
	}
}

// TestWorkloadsMarkSweep runs the corpus under the mark/sweep discipline
// (the paper's "will support mark/sweep collection as well", §2) for every
// tag-free strategy and checks results and that sweeps actually happen.
func TestWorkloadsMarkSweep(t *testing.T) {
	for _, w := range workloads.All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratInterp, gc.StratAppel} {
				res, err := pipeline.Run(w.Source, pipeline.Options{
					Strategy:  strat,
					HeapWords: w.HeapWords,
					MarkSweep: true,
					MaxSteps:  500_000_000,
				})
				if err != nil {
					t.Fatalf("[%v ms] %v", strat, err)
				}
				if res.Value != w.Expect {
					t.Errorf("[%v ms] result = %d, want %d", strat, res.Value, w.Expect)
				}
			}
		})
	}
}

// TestMarkSweepRejectsTagged ensures the discipline/representation
// constraint is enforced.
func TestMarkSweepRejectsTagged(t *testing.T) {
	w := workloads.All[0]
	_, err := pipeline.Run(w.Source, pipeline.Options{
		Strategy:  gc.StratTagged,
		MarkSweep: true,
	})
	if err == nil {
		t.Fatal("tagged + mark/sweep must be rejected")
	}
}

// TestWorkloadsWithCFA runs the corpus with the higher-order (0-CFA)
// gc_word elision enabled — a wrong elision would crash or corrupt the
// collector when a frame blocks at an elided closure-call site.
func TestWorkloadsWithCFA(t *testing.T) {
	for _, w := range workloads.All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, strat := range pipeline.Strategies {
				res, err := pipeline.Run(w.Source, pipeline.Options{
					Strategy:  strat,
					HeapWords: w.HeapWords,
					UseCFA:    true,
					MaxSteps:  500_000_000,
				})
				if err != nil {
					t.Fatalf("[%v cfa] %v", strat, err)
				}
				if res.Value != w.Expect {
					t.Errorf("[%v cfa] result = %d, want %d", strat, res.Value, w.Expect)
				}
			}
		})
	}
}

// TestWorkloadsPoisonedMarkSweep runs the corpus with freed-block
// poisoning: a collector precision bug that leaves a stale reachable
// pointer surfaces as a loud checksum failure instead of silent luck.
func TestWorkloadsPoisonedMarkSweep(t *testing.T) {
	for _, w := range workloads.All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, _, err := pipeline.Build(w.Source, pipeline.Options{Strategy: gc.StratCompiled})
			if err != nil {
				t.Fatal(err)
			}
			h := heap.NewMarkSweep(prog.Repr, w.HeapWords)
			h.SetPoison(true)
			h.SetDebugAccess(true)
			m, err := vm.NewWith(prog, h, gc.StratCompiled)
			if err != nil {
				t.Fatal(err)
			}
			m.MaxSteps = 500_000_000
			raw, err := m.Run()
			if err != nil {
				t.Fatalf("poisoned run: %v", err)
			}
			if got := code.DecodeInt(prog.Repr, raw); got != w.Expect {
				t.Fatalf("poisoned run computed %d, want %d", got, w.Expect)
			}
		})
	}
}
