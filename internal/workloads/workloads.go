// Package workloads is the benchmark corpus: MinML programs with known
// results, used by the experiment harness (EXPERIMENTS.md), the Go
// benchmarks, and as cross-strategy correctness fixtures. The mix follows
// the paper's motivating workloads: list manipulation (the append example
// of §2.4), trees, variant records (§2.3), closures and higher-order
// polymorphism (§3), arithmetic-only code (the §5.1 analysis), and
// ref-cell mutation.
package workloads

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Description string
	Source      string
	// Expect is main's integer result.
	Expect int64
	// HeapWords is the recommended semispace size: small enough to force
	// frequent collections, large enough for the trace-everything modes.
	HeapWords int
	// AllocHeavy marks workloads whose cost is dominated by allocation
	// (used to split experiment tables).
	AllocHeavy bool
}

// All lists the corpus in presentation order.
var All = []Workload{
	{
		Name:        "fib",
		Description: "recursive Fibonacci — pure arithmetic, allocates nothing",
		Expect:      17711,
		HeapWords:   1 << 12,
		Source: `
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
let main () = fib 22
`,
	},
	{
		Name:        "tak",
		Description: "Takeuchi function — call-heavy arithmetic, allocates nothing",
		Expect:      7,
		HeapWords:   1 << 12,
		Source: `
let rec tak x y z =
  if y >= x then z
  else tak (tak (x - 1) y z) (tak (y - 1) z x) (tak (z - 1) x y)
let main () = tak 18 12 6
`,
	},
	{
		Name:        "listchurn",
		Description: "append/reverse churn over integer lists (the paper's §2.4 example)",
		Expect:      62850,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let rec append xs ys = match xs with | [] -> ys | x :: r -> x :: append r ys
let rec rev xs = match xs with | [] -> [] | x :: r -> append (rev r) [x]
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (rev (append (upto 40) (upto 50)))
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 30 0
`,
	},
	{
		Name:        "btree",
		Description: "build and sum binary trees repeatedly (GCBench-style)",
		Expect:      12350,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
type tree = Leaf | Node of tree * int * tree
let rec build d = if d = 0 then Leaf else Node (build (d - 1), d, build (d - 1))
let rec tsum t = match t with | Leaf -> 0 | Node (l, v, r) -> tsum l + v + tsum r
let round () = tsum (build 7)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 50 0
`,
	},
	{
		Name:        "nqueens",
		Description: "6-queens via list-of-placements search — lists plus backtracking",
		Expect:      4,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let abs x = if x < 0 then 0 - x else x
let rec safe q qs d =
  match qs with
  | [] -> true
  | x :: r -> if x = q then false else if abs (x - q) = d then false else safe q r (d + 1)
let rec range a b = if a > b then [] else a :: range (a + 1) b
let rec length xs = match xs with | [] -> 0 | _ :: r -> 1 + length r
let rec try_cols cols qs n =
  match cols with
  | [] -> 0
  | c :: rest ->
    (if safe c qs 1 then solve (c :: qs) n else 0) + try_cols rest qs n
and solve qs n =
  if length qs = n then 1
  else try_cols (range 1 n) qs n
let main () = solve [] 6
`,
	},
	{
		Name:        "qsort",
		Description: "quicksort over a pseudo-random list; position-weighted checksum",
		Expect:      126358,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let rec append xs ys = match xs with | [] -> ys | x :: r -> x :: append r ys
let rec filter p xs =
  match xs with
  | [] -> []
  | x :: r -> if p x then x :: filter p r else filter p r
let rec qsort xs =
  match xs with
  | [] -> []
  | p :: r ->
    append (qsort (filter (fun x -> x < p) r)) (p :: qsort (filter (fun x -> x >= p) r))
let rec lcg n seed =
  if n = 0 then [] else (seed mod 100) :: lcg (n - 1) ((seed * 75 + 74) mod 65537)
let rec wsum xs i = match xs with | [] -> 0 | x :: r -> i * x + wsum r (i + 1)
let main () = wsum (qsort (lcg 60 12345)) 1
`,
	},
	{
		Name:        "sieve",
		Description: "sieve of Eratosthenes over lists with filter closures, repeated",
		Expect:      750,
		HeapWords:   1 << 11,
		AllocHeavy:  true,
		Source: `
let rec range a b = if a > b then [] else a :: range (a + 1) b
let rec filter p xs =
  match xs with
  | [] -> []
  | x :: r -> if p x then x :: filter p r else filter p r
let rec sieve xs =
  match xs with
  | [] -> []
  | p :: r -> p :: sieve (filter (fun x -> x mod p <> 0) r)
let rec length xs = match xs with | [] -> 0 | _ :: r -> 1 + length r
let round () = length (sieve (range 2 100))
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 30 0
`,
	},
	{
		Name:        "polypipe",
		Description: "polymorphic map/fold pipelines instantiated at several types (§3)",
		Expect:      9855,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec foldl f acc xs = match xs with | [] -> acc | x :: r -> foldl f (f acc x) r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec zipsum ps = match ps with | [] -> 0 | (a, b) :: r -> a + b + zipsum r
let round () =
  let ints = map (fun x -> x * 3) (upto 20) in
  let pairs = map (fun x -> (x, x * x)) (upto 10) in
  let flags = map (fun x -> x mod 2 = 0) (upto 8) in
  let nested = map (fun x -> [x; x]) (upto 6) in
  foldl (fun a b -> a + b) 0 ints
    + zipsum pairs
    + foldl (fun a b -> if b then a + 1 else a) 0 flags
    + foldl (fun a l -> a + (match l with | x :: _ -> x | [] -> 0)) 0 nested
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 9 0
`,
	},
	{
		Name:        "closures",
		Description: "closure-heavy: build and apply chains of partial applications",
		Expect:      17400,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let add a b = a + b
let compose f g = fun x -> f (g x)
let rec map f xs = match xs with | [] -> [] | x :: r -> f x :: map f r
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec apply_all fs x = match fs with | [] -> x | f :: r -> apply_all r (f x)
let round () =
  let adders = map add (upto 20) in
  let doubled = compose (fun x -> x * 2) (fun x -> x + 1) in
  apply_all adders (doubled 10)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 75 0
`,
	},
	{
		Name:        "evaluator",
		Description: "expression-tree interpreter — variant records (§2.3)",
		Expect:      72900,
		HeapWords:   1 << 11,
		AllocHeavy:  true,
		Source: `
type expr =
  | Num of int
  | Add of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | IfPos of expr * expr * expr
let rec eval e =
  match e with
  | Num n -> n
  | Add (a, b) -> eval a + eval b
  | Mul (a, b) -> eval a * eval b
  | Neg a -> 0 - eval a
  | IfPos (c, t, f) -> if eval c > 0 then eval t else eval f
let rec grow d =
  if d = 0 then Num 1
  else Add (Mul (Num 2, grow (d - 1)), IfPos (Num 1, grow (d - 1), Neg (Num 5)))
let round () = eval (grow 6)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 100 0
`,
	},
	{
		Name:        "mutate",
		Description: "reference-cell mutation: counters and accumulators in the heap",
		Expect:      31850,
		HeapWords:   1 << 12,
		Source: `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec each f xs = match xs with | [] -> () | x :: r -> (let _ = f x in each f r)
let round () =
  let acc = ref 0 in
  let bump x = acc := !acc + x in
  each bump (upto 25);
  !acc
let rec loop n t = if n = 0 then t else loop (n - 1) (t + round ())
let main () = loop 98 0
`,
	},
	{
		Name:        "deeppoly",
		Description: "deep recursion of a polymorphic function holding a live 'a value per frame (E6 stress)",
		Expect:      350,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let probe x = (let _ = [x; x] in 1)
let rec pdepth x acc n =
  if n = 0 then acc
  else probe x + pdepth x acc (n - 1)
let main () = pdepth (1, true) 0 175 + pdepth [1] 0 175
`,
	},
	{
		Name:        "cps",
		Description: "continuation-passing sums — chains of heap closures traced via Figure-4 arrow routines",
		Expect:      18600,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sumk xs k =
  match xs with
  | [] -> k 0
  | x :: r -> sumk r (fun s -> k (x + s))
let round () = sumk (upto 30) (fun s -> s)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 40 0
`,
	},
	{
		Name:        "thunks",
		Description: "phantom-typed closures requiring runtime type reps (the E8 extension)",
		Expect:      12600,
		HeapWords:   1 << 10,
		AllocHeavy:  true,
		Source: `
let make_thunk x =
  let th = fun () -> (let _ = [x; x] in 42) in
  th
let rec apply_thunks ts = match ts with | [] -> 0 | t :: r -> t () + apply_thunks r
let rec mk n = if n = 0 then [] else make_thunk (n, n) :: mk (n - 1)
let round () = apply_thunks (mk 10)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let main () = loop 30 0
`,
	},
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// TaskWorkload is one multi-task benchmark program: several unit -> int
// entry functions run as concurrent tasks over a shared heap. Used by the
// parallel-collection benchmarks and the cross-strategy differential
// suite.
type TaskWorkload struct {
	Name        string
	Description string
	Source      string
	// Entries names the task entry functions, in spawn order.
	Entries []string
	// Expect is each task's integer result, in entry order.
	Expect []int64
	// HeapWords is the recommended shared semispace size.
	HeapWords int
}

// Tasking lists the multi-task corpus in presentation order.
var Tasking = []TaskWorkload{
	{
		Name:        "taskchurn",
		Description: "list churn on every task stack — collections see several live stacks",
		Entries:     []string{"task_a", "task_b", "task_c", "task_d"},
		Expect:      []int64{13000, 14000, 15000, 16000},
		HeapWords:   2048,
		Source: `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (upto 25)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + round ())
let task_a () = work 40 0
let task_b () = work 40 1000
let task_c () = work 40 2000
let task_d () = work 40 3000
`,
	},
	{
		Name:        "tasktree",
		Description: "tree building per task — deep structures reachable from suspended frames",
		Entries:     []string{"grow_a", "grow_b", "grow_c"},
		Expect:      []int64{7410, 7410, 7410},
		HeapWords:   4096,
		Source: `
type tree = Leaf | Node of tree * int * tree
let rec build n = if n = 0 then Leaf else Node (build (n - 1), n, build (n - 1))
let rec tsum t = match t with | Leaf -> 0 | Node (l, v, r) -> tsum l + v + tsum r
let round () = tsum (build 7)
let rec loop n acc = if n = 0 then acc else loop (n - 1) (acc + round ())
let grow_a () = loop 30 0
let grow_b () = loop 30 0
let grow_c () = loop 30 0
`,
	},
	{
		Name:        "taskpoly",
		Description: "chains of polymorphic frames per task — type-arg resolution dominates the scan",
		Entries:     []string{"deep_a", "deep_b"},
		Expect:      []int64{5050, 6050},
		HeapWords:   512,
		Source: `
let rec len xs = match xs with | [] -> 0 | _ :: r -> len r + 1
let deep3 p = (let l = [p; p; p] in len l - 3)
let deep2 p = deep3 (p, p)
let deep1 p = deep2 (p, p)
let probe x = deep1 (x, x)
let rec drive n acc =
  if n = 0 then acc
  else drive (n - 1) (acc + n + probe n)
let deep_a () = drive 100 0
let deep_b () = drive 100 1000
`,
	},
	{
		Name:        "taskmutate",
		Description: "long-lived ref cells repeatedly repointed at fresh lists — the generational antagonist: every refresh is an old→young store through the write barrier",
		Entries:     []string{"mut_a", "mut_b", "mut_c"},
		Expect:      []int64{23400, 28400, 32400},
		HeapWords:   4096,
		Source: `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec mkcells n = if n = 0 then [] else ref [n] :: mkcells (n - 1)
let rec refresh cells k =
  match cells with
  | [] -> 0
  | c :: r -> (let _ = (c := upto k) in 1 + refresh r k)
let rec harvest cells = match cells with | [] -> 0 | c :: r -> sum (!c) + harvest r
let rec cycle cells n acc =
  if n = 0 then acc
  else (let _ = refresh cells 12 in cycle cells (n - 1) (acc + harvest cells))
let work seed = (let cells = mkcells 10 in cycle cells 30 seed)
let mut_a () = work 0
let mut_b () = work 5000
let mut_c () = work 9000
`,
	},
	{
		Name:        "taskdeep",
		Description: "deep towers of one polymorphic frame — the collection fast path's motivating shape: every frame resolves the same (site, instantiation) plan",
		Entries:     []string{"tower_a", "tower_b"},
		Expect:      []int64{1500, 1500},
		HeapWords:   1024,
		Source: `
let probe x = (let _ = [x; x] in 1)
let rec pdepth x acc n =
  if n = 0 then acc
  else probe x + pdepth x acc (n - 1)
let rec towers x n acc = if n = 0 then acc else towers x (n - 1) (acc + pdepth x 0 150)
let tower_a () = towers (1, true) 10 0
let tower_b () = towers [1] 10 0
`,
	},
	{
		Name:        "taskspine",
		Description: "long-lived lists of boxed pairs consumed only by length — every element field is provably dead at every GC point, the heap-liveness pruner's motivating shape",
		Entries:     []string{"spine_a", "spine_b", "spine_c"},
		Expect:      []int64{27940, 28940, 29940},
		HeapWords:   2048,
		Source: `
let rec len xs = match xs with | [] -> 0 | _ :: r -> 1 + len r
let rec mkpairs n = if n = 0 then [] else (n, n * 2) :: mkpairs (n - 1)
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let churn () = sum (upto 30)
let rec drive spine n acc =
  if n = 0 then acc + len spine
  else drive spine (n - 1) (acc + churn ())
let spine_a () = (let s = mkpairs 40 in drive s 60 0)
let spine_b () = (let s = mkpairs 40 in drive s 60 1000)
let spine_c () = (let s = mkpairs 40 in drive s 60 2000)
`,
	},
	{
		Name:        "taskserve",
		Description: "request-sized list churn in four service classes (tiny/small/medium/heavy) — the serve harness samples these as its heavy-tail service mix",
		Entries:     []string{"req_tiny", "req_small", "req_medium", "req_heavy"},
		Expect:      []int64{650, 2600, 7800, 31200},
		HeapWords:   2048,
		Source: `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (upto 25)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + round ())
let req_tiny () = work 2 0
let req_small () = work 8 0
let req_medium () = work 24 0
let req_heavy () = work 96 0
`,
	},
}

// TaskByName returns the named task workload.
func TaskByName(name string) (TaskWorkload, bool) {
	for _, w := range Tasking {
		if w.Name == name {
			return w, true
		}
	}
	return TaskWorkload{}, false
}
