package printer_test

import (
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/printer"
	"tagfree/internal/pipeline"
	"tagfree/internal/workloads"
)

// TestRoundTripStable: printing a parsed program and re-parsing it yields
// the same printed form (print∘parse reaches a fixed point after one step).
func TestRoundTripStable(t *testing.T) {
	for _, w := range workloads.All {
		prog1, err := parser.Parse(w.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", w.Name, err)
		}
		out1 := printer.Program(prog1)
		prog2, err := parser.Parse(out1)
		if err != nil {
			t.Fatalf("%s: reparse of printed output failed: %v\noutput:\n%s", w.Name, err, out1)
		}
		out2 := printer.Program(prog2)
		if out1 != out2 {
			t.Errorf("%s: printing is not stable\nfirst:\n%s\nsecond:\n%s", w.Name, out1, out2)
		}
	}
}

// TestRoundTripPreservesSemantics: the printed program computes the same
// result as the original under a small heap.
func TestRoundTripPreservesSemantics(t *testing.T) {
	for _, w := range workloads.All {
		prog, err := parser.Parse(w.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", w.Name, err)
		}
		printed := printer.Program(prog)
		res, err := pipeline.Run(printed, pipeline.Options{
			Strategy:  gc.StratCompiled,
			HeapWords: w.HeapWords,
			MaxSteps:  500_000_000,
		})
		if err != nil {
			t.Fatalf("%s: printed program failed: %v\nprinted:\n%s", w.Name, err, printed)
		}
		if res.Value != w.Expect {
			t.Errorf("%s: printed program computes %d, want %d", w.Name, res.Value, w.Expect)
		}
	}
}

// TestPrinterSugar spot-checks the concrete syntax the printer emits.
func TestPrinterSugar(t *testing.T) {
	cases := []struct{ src, want string }{
		{`let x = 1 :: 2 :: []`, "let x = 1 :: (2 :: [])\n"},
		{`let f = fun a b -> a + b`, "let f = fun a -> fun b -> a + b\n"},
		{`let y = if true then 1 else 2`, "let y = if true then 1 else 2\n"},
		{`let z = (1, true)`, "let z = (1, true)\n"},
		{`let r = ref 0`, "let r = ref 0\n"},
	}
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got := printer.Program(prog); got != c.want {
			t.Errorf("%q printed as %q, want %q", c.src, got, c.want)
		}
	}
}
