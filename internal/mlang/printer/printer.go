// Package printer renders MinML abstract syntax back to concrete syntax.
// The output re-parses to an equivalent tree (the round-trip property the
// tests enforce), which makes it suitable for error messages, the
// REPL's :list command, and golden tests of desugaring.
//
// The printer is conservative with parentheses: operands of binary
// operators, constructor arguments and "big" expressions (fun/if/match/
// let-in) in operand position are parenthesized, so precedence never needs
// to be reconstructed exactly.
package printer

import (
	"fmt"
	"strings"

	"tagfree/internal/mlang/ast"
)

// Program renders a full program.
func Program(p *ast.Program) string {
	var b strings.Builder
	for i, d := range p.Decls {
		if i > 0 {
			b.WriteByte('\n')
		}
		Decl(&b, d)
		b.WriteByte('\n')
	}
	return b.String()
}

// Decl renders one declaration.
func Decl(b *strings.Builder, d ast.Decl) {
	switch d := d.(type) {
	case *ast.TypeDecl:
		b.WriteString("type ")
		switch len(d.Params) {
		case 0:
		case 1:
			fmt.Fprintf(b, "'%s ", d.Params[0])
		default:
			parts := make([]string, len(d.Params))
			for i, p := range d.Params {
				parts[i] = "'" + p
			}
			fmt.Fprintf(b, "(%s) ", strings.Join(parts, ", "))
		}
		fmt.Fprintf(b, "%s =", d.Name)
		for i, c := range d.Ctors {
			if i > 0 {
				b.WriteString(" |")
			}
			fmt.Fprintf(b, " %s", c.Name)
			if len(c.Args) > 0 {
				parts := make([]string, len(c.Args))
				for j, a := range c.Args {
					parts[j] = a.String()
				}
				fmt.Fprintf(b, " of %s", strings.Join(parts, " * "))
			}
		}
	case *ast.ValDecl:
		b.WriteString("let ")
		if d.Rec {
			b.WriteString("rec ")
		}
		for i, bind := range d.Binds {
			if i > 0 {
				b.WriteString("\nand ")
			}
			Bind(b, bind)
		}
	}
}

// Bind renders one binding (lambda sugar is not re-folded: the bound
// expression prints as an explicit fun).
func Bind(b *strings.Builder, bind ast.Bind) {
	fmt.Fprintf(b, "%s = ", bind.Name)
	Expr(b, bind.Expr)
}

// Expr renders an expression.
func Expr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit:
		if e.Val < 0 {
			fmt.Fprintf(b, "(0 - %d)", -e.Val)
		} else {
			fmt.Fprintf(b, "%d", e.Val)
		}
	case *ast.BoolLit:
		fmt.Fprintf(b, "%t", e.Val)
	case *ast.UnitLit:
		b.WriteString("()")
	case *ast.StrLit:
		fmt.Fprintf(b, "%q", e.Val)
	case *ast.Var:
		b.WriteString(e.Name)
	case *ast.Ctor:
		b.WriteString(ctorString(e))
	case *ast.App:
		atom(b, e.Fn)
		b.WriteByte(' ')
		atom(b, e.Arg)
	case *ast.Lam:
		fmt.Fprintf(b, "fun %s -> ", e.Param)
		Expr(b, e.Body)
	case *ast.Let:
		b.WriteString("let ")
		if e.Rec {
			b.WriteString("rec ")
		}
		for i, bind := range e.Binds {
			if i > 0 {
				b.WriteString(" and ")
			}
			Bind(b, bind)
		}
		b.WriteString(" in ")
		Expr(b, e.Body)
	case *ast.If:
		b.WriteString("if ")
		Expr(b, e.Cond)
		b.WriteString(" then ")
		atom(b, e.Then)
		b.WriteString(" else ")
		Expr(b, e.Else)
	case *ast.Match:
		b.WriteString("match ")
		Expr(b, e.Scrut)
		b.WriteString(" with")
		for _, arm := range e.Arms {
			fmt.Fprintf(b, " | %s -> ", arm.Pat)
			atom(b, arm.Body)
		}
	case *ast.Tuple:
		b.WriteByte('(')
		for i, el := range e.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			Expr(b, el)
		}
		b.WriteByte(')')
	case *ast.Prim:
		prim(b, e)
	case *ast.Seq:
		b.WriteByte('(')
		Expr(b, e.First)
		b.WriteString("; ")
		Expr(b, e.Rest)
		b.WriteByte(')')
	case *ast.Ann:
		b.WriteByte('(')
		Expr(b, e.Expr)
		fmt.Fprintf(b, " : %s)", e.Type)
	}
}

// ctorString renders a constructor application (lists get their sugar
// back when fully literal).
func ctorString(e *ast.Ctor) string {
	var b strings.Builder
	switch {
	case e.Name == "[]":
		return "[]"
	case e.Name == "::" && len(e.Args) == 2:
		atom(&b, e.Args[0])
		b.WriteString(" :: ")
		atom(&b, e.Args[1])
		return b.String()
	case len(e.Args) == 0:
		return e.Name
	default:
		b.WriteString(e.Name)
		b.WriteByte(' ')
		if len(e.Args) == 1 {
			atom(&b, e.Args[0])
		} else {
			b.WriteByte('(')
			for i, a := range e.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				Expr(&b, a)
			}
			b.WriteByte(')')
		}
		return b.String()
	}
}

var primSymbols = map[ast.PrimOp]string{
	ast.OpAdd: "+", ast.OpSub: "-", ast.OpMul: "*", ast.OpDiv: "/",
	ast.OpMod: "mod", ast.OpEq: "=", ast.OpNe: "<>", ast.OpLt: "<",
	ast.OpLe: "<=", ast.OpGt: ">", ast.OpGe: ">=",
}

func prim(b *strings.Builder, e *ast.Prim) {
	switch e.Op {
	case ast.OpNeg:
		b.WriteString("(0 - ")
		atom(b, e.Args[0])
		b.WriteByte(')')
	case ast.OpNot:
		b.WriteString("not ")
		atom(b, e.Args[0])
	case ast.OpRef:
		b.WriteString("ref ")
		atom(b, e.Args[0])
	case ast.OpDeref:
		b.WriteByte('!')
		atom(b, e.Args[0])
	case ast.OpAssign:
		atom(b, e.Args[0])
		b.WriteString(" := ")
		Expr(b, e.Args[1])
	default:
		sym := primSymbols[e.Op]
		atom(b, e.Args[0])
		fmt.Fprintf(b, " %s ", sym)
		atom(b, e.Args[1])
	}
}

// atom renders an expression, parenthesizing anything that is not already
// atomic.
func atom(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit:
		if e.Val < 0 {
			Expr(b, e)
			return
		}
		Expr(b, e)
	case *ast.BoolLit, *ast.UnitLit, *ast.Var, *ast.StrLit, *ast.Tuple, *ast.Seq, *ast.Ann:
		Expr(b, e)
	case *ast.Ctor:
		if len(e.Args) == 0 {
			Expr(b, e)
			return
		}
		b.WriteByte('(')
		Expr(b, e)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		Expr(b, e)
		b.WriteByte(')')
	}
}
