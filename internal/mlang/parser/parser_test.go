package parser

import (
	"testing"

	"tagfree/internal/mlang/ast"
)

func mustExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestArithPrecedence(t *testing.T) {
	e := mustExpr(t, "1 + 2 * 3")
	add, ok := e.(*ast.Prim)
	if !ok || add.Op != ast.OpAdd {
		t.Fatalf("got %#v, want top-level +", e)
	}
	mul, ok := add.Args[1].(*ast.Prim)
	if !ok || mul.Op != ast.OpMul {
		t.Fatalf("rhs: got %#v, want *", add.Args[1])
	}
}

func TestApplicationBindsTighter(t *testing.T) {
	e := mustExpr(t, "f x + g y")
	add := e.(*ast.Prim)
	if add.Op != ast.OpAdd {
		t.Fatalf("want +, got %v", add.Op)
	}
	if _, ok := add.Args[0].(*ast.App); !ok {
		t.Errorf("lhs should be application, got %#v", add.Args[0])
	}
	if _, ok := add.Args[1].(*ast.App); !ok {
		t.Errorf("rhs should be application, got %#v", add.Args[1])
	}
}

func TestCurriedApplication(t *testing.T) {
	e := mustExpr(t, "f a b c")
	// ((f a) b) c
	app1 := e.(*ast.App)
	app2 := app1.Fn.(*ast.App)
	app3 := app2.Fn.(*ast.App)
	if v, ok := app3.Fn.(*ast.Var); !ok || v.Name != "f" {
		t.Fatalf("innermost fn: %#v", app3.Fn)
	}
}

func TestConsRightAssoc(t *testing.T) {
	e := mustExpr(t, "1 :: 2 :: []")
	c := e.(*ast.Ctor)
	if c.Name != "::" {
		t.Fatalf("want ::, got %s", c.Name)
	}
	inner := c.Args[1].(*ast.Ctor)
	if inner.Name != "::" {
		t.Fatalf("rhs want ::, got %s", inner.Name)
	}
	if nilc := inner.Args[1].(*ast.Ctor); nilc.Name != "[]" {
		t.Fatalf("tail want [], got %s", nilc.Name)
	}
}

func TestListSugar(t *testing.T) {
	e := mustExpr(t, "[1; 2; 3]")
	count := 0
	for {
		c, ok := e.(*ast.Ctor)
		if !ok {
			t.Fatalf("not a ctor: %#v", e)
		}
		if c.Name == "[]" {
			break
		}
		if c.Name != "::" {
			t.Fatalf("want ::, got %s", c.Name)
		}
		count++
		e = c.Args[1]
	}
	if count != 3 {
		t.Fatalf("got %d conses, want 3", count)
	}
}

func TestShortCircuitDesugar(t *testing.T) {
	e := mustExpr(t, "a && b")
	iff, ok := e.(*ast.If)
	if !ok {
		t.Fatalf("&& should desugar to if, got %#v", e)
	}
	if _, ok := iff.Else.(*ast.BoolLit); !ok {
		t.Errorf("else branch should be false literal")
	}

	e = mustExpr(t, "a || b")
	iff = e.(*ast.If)
	if b, ok := iff.Then.(*ast.BoolLit); !ok || !b.Val {
		t.Errorf("then branch should be true literal")
	}
}

func TestSequencing(t *testing.T) {
	e := mustExpr(t, "a; b; c")
	s1 := e.(*ast.Seq)
	if _, ok := s1.Rest.(*ast.Seq); !ok {
		t.Fatalf("seq should be right-nested, got %#v", s1.Rest)
	}
}

func TestFunMultiParam(t *testing.T) {
	e := mustExpr(t, "fun x y -> x + y")
	l1 := e.(*ast.Lam)
	if l1.Param != "x" {
		t.Fatalf("outer param %q", l1.Param)
	}
	l2 := l1.Body.(*ast.Lam)
	if l2.Param != "y" {
		t.Fatalf("inner param %q", l2.Param)
	}
}

func TestLetIn(t *testing.T) {
	e := mustExpr(t, "let x = 1 in x + x")
	let := e.(*ast.Let)
	if let.Rec || len(let.Binds) != 1 || let.Binds[0].Name != "x" {
		t.Fatalf("bad let: %#v", let)
	}
}

func TestLetRecAnd(t *testing.T) {
	e := mustExpr(t, "let rec even n = if n = 0 then true else odd (n - 1) and odd n = if n = 0 then false else even (n - 1) in even 10")
	let := e.(*ast.Let)
	if !let.Rec || len(let.Binds) != 2 {
		t.Fatalf("want rec with 2 binds, got %#v", let)
	}
	if _, ok := let.Binds[0].Expr.(*ast.Lam); !ok {
		t.Errorf("function binding should desugar to lambda")
	}
}

func TestMatchArms(t *testing.T) {
	e := mustExpr(t, "match xs with | [] -> 0 | x :: rest -> x")
	m := e.(*ast.Match)
	if len(m.Arms) != 2 {
		t.Fatalf("want 2 arms, got %d", len(m.Arms))
	}
	if c, ok := m.Arms[0].Pat.(*ast.PCtor); !ok || c.Name != "[]" {
		t.Errorf("first arm should match []")
	}
	if c, ok := m.Arms[1].Pat.(*ast.PCtor); !ok || c.Name != "::" {
		t.Errorf("second arm should match ::")
	}
}

func TestTuplesAndUnit(t *testing.T) {
	e := mustExpr(t, "(1, true, ())")
	tup := e.(*ast.Tuple)
	if len(tup.Elems) != 3 {
		t.Fatalf("want 3 elems, got %d", len(tup.Elems))
	}
	if _, ok := tup.Elems[2].(*ast.UnitLit); !ok {
		t.Errorf("third elem should be unit")
	}
}

func TestRefOps(t *testing.T) {
	e := mustExpr(t, "r := !r + 1")
	asn := e.(*ast.Prim)
	if asn.Op != ast.OpAssign {
		t.Fatalf("want :=, got %v", asn.Op)
	}
	add := asn.Args[1].(*ast.Prim)
	deref := add.Args[0].(*ast.Prim)
	if deref.Op != ast.OpDeref {
		t.Fatalf("want !, got %v", deref.Op)
	}
}

func TestNegativeLiteral(t *testing.T) {
	e := mustExpr(t, "-5")
	lit, ok := e.(*ast.IntLit)
	if !ok || lit.Val != -5 {
		t.Fatalf("got %#v, want -5", e)
	}
}

func TestAnnotation(t *testing.T) {
	e := mustExpr(t, "(xs : int list)")
	ann := e.(*ast.Ann)
	name, ok := ann.Type.(*ast.TEName)
	if !ok || name.Name != "list" {
		t.Fatalf("got %#v, want int list", ann.Type)
	}
	if inner, ok := name.Args[0].(*ast.TEName); !ok || inner.Name != "int" {
		t.Fatalf("element type: %#v", name.Args[0])
	}
}

func TestTypeDecl(t *testing.T) {
	p := mustProg(t, "type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree")
	td := p.Decls[0].(*ast.TypeDecl)
	if td.Name != "tree" || len(td.Params) != 1 || td.Params[0] != "a" {
		t.Fatalf("bad type decl header: %#v", td)
	}
	if len(td.Ctors) != 2 {
		t.Fatalf("want 2 ctors, got %d", len(td.Ctors))
	}
	if td.Ctors[0].Name != "Leaf" || len(td.Ctors[0].Args) != 0 {
		t.Errorf("Leaf should be nullary")
	}
	if td.Ctors[1].Name != "Node" || len(td.Ctors[1].Args) != 3 {
		t.Errorf("Node should have 3 fields, got %d", len(td.Ctors[1].Args))
	}
}

func TestMultiParamTypeDecl(t *testing.T) {
	p := mustProg(t, "type ('a, 'b) pair = Pair of 'a * 'b")
	td := p.Decls[0].(*ast.TypeDecl)
	if len(td.Params) != 2 {
		t.Fatalf("want 2 params, got %d", len(td.Params))
	}
}

func TestTopLevelFunctionSugar(t *testing.T) {
	p := mustProg(t, "let add x y = x + y")
	vd := p.Decls[0].(*ast.ValDecl)
	lam, ok := vd.Binds[0].Expr.(*ast.Lam)
	if !ok {
		t.Fatalf("binding should be a lambda")
	}
	if lam.Param != "x" {
		t.Errorf("outer param %q", lam.Param)
	}
}

func TestUnitParam(t *testing.T) {
	p := mustProg(t, "let main () = 42")
	vd := p.Decls[0].(*ast.ValDecl)
	lam, ok := vd.Binds[0].Expr.(*ast.Lam)
	if !ok {
		t.Fatalf("main should be a lambda")
	}
	if lam.ParamAnn == nil {
		t.Errorf("unit param should carry unit annotation")
	}
}

func TestAnnotatedParam(t *testing.T) {
	p := mustProg(t, "let f (x : int) = x")
	vd := p.Decls[0].(*ast.ValDecl)
	lam := vd.Binds[0].Expr.(*ast.Lam)
	if lam.ParamAnn == nil {
		t.Fatalf("param annotation missing")
	}
}

func TestCtorApplication(t *testing.T) {
	e := mustExpr(t, "Some (1, 2)")
	c := e.(*ast.Ctor)
	if c.Name != "Some" || len(c.Args) != 1 {
		t.Fatalf("bad ctor: %#v", c)
	}
	if _, ok := c.Args[0].(*ast.Tuple); !ok {
		t.Errorf("arg should be tuple (splatted later by checker)")
	}
}

func TestBeginEnd(t *testing.T) {
	e := mustExpr(t, "begin 1 + 2 end")
	if _, ok := e.(*ast.Prim); !ok {
		t.Fatalf("begin/end should be transparent, got %#v", e)
	}
}

func TestIfInOperand(t *testing.T) {
	e := mustExpr(t, "1 + if b then 2 else 3")
	add := e.(*ast.Prim)
	if _, ok := add.Args[1].(*ast.If); !ok {
		t.Fatalf("rhs should be if, got %#v", add.Args[1])
	}
}

func TestMatchListPattern(t *testing.T) {
	e := mustExpr(t, "match p with | [x; y] -> x + y | _ -> 0")
	m := e.(*ast.Match)
	c := m.Arms[0].Pat.(*ast.PCtor)
	if c.Name != "::" {
		t.Fatalf("list pattern should desugar to ::")
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"let = 3",
		"if x then",
		"match x with",
		"fun -> x",
		"(1, 2",
		"let f x =",
		"1 +",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			if _, err2 := Parse(src); err2 == nil {
				t.Errorf("%q: expected syntax error", src)
			}
		}
	}
}

func TestFullProgram(t *testing.T) {
	src := `
(* binary tree sum *)
type tree = Leaf | Node of tree * int * tree

let rec sum t =
  match t with
  | Leaf -> 0
  | Node (l, v, r) -> sum l + v + sum r

let rec build d =
  if d = 0 then Leaf
  else Node (build (d - 1), d, build (d - 1))

let main () = sum (build 10)
`
	p := mustProg(t, src)
	if len(p.Decls) != 4 {
		t.Fatalf("want 4 decls, got %d", len(p.Decls))
	}
}
