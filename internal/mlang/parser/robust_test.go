package parser

import (
	"math/rand"
	"testing"
)

// TestParserNeverPanics throws random byte soup and random token soup at
// the parser: it must return an error or an AST, never panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("letrecandifthenelsematchwithfun()[]->|;:=<>+-*/xyzABC0123 \n'_\"")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", buf, r)
				}
			}()
			_, _ = Parse(string(buf))
			_, _ = ParseExpr(string(buf))
		}()
	}
}

// TestParserNeverPanicsStructured mutates a valid program one byte at a
// time (deletion, duplication, substitution).
func TestParserNeverPanicsStructured(t *testing.T) {
	base := `
type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
let rec size t = match t with | Leaf -> 0 | Node (l, _, r) -> 1 + size l + size r
let main () = size (Node (Leaf, 5, Leaf))
`
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1500; i++ {
		b := []byte(base)
		pos := rng.Intn(len(b))
		switch rng.Intn(3) {
		case 0:
			b = append(b[:pos], b[pos+1:]...)
		case 1:
			b = append(b[:pos], append([]byte{b[pos]}, b[pos:]...)...)
		default:
			b[pos] = byte(rng.Intn(96) + 32)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutation %d: %v\nsource:\n%s", i, r, b)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}
