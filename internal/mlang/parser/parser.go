// Package parser builds MinML abstract syntax trees from source text.
//
// The parser is hand-written recursive descent with conventional ML
// precedences:
//
//	;  (sequencing, lowest)
//	:=
//	||
//	&&
//	= <> < <= > >=
//	::             (right associative)
//	+ -
//	* / mod
//	unary - ! not ref
//	application    (highest, left associative)
//
// "Big" expressions (fun, if, match, let-in) are greedy: they extend as far
// right as possible and must be parenthesized when used as operands.
package parser

import (
	"fmt"
	"strconv"

	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/lexer"
	"tagfree/internal/mlang/token"
)

// Error is a syntax error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
}

// Parse parses a full MinML program.
func Parse(src string) (*ast.Program, error) {
	lx := lexer.New(src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, errs[0]
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
		for p.at(token.SEMISEMI) {
			p.next()
		}
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and the REPL-style
// tooling).
func ParseExpr(src string) (ast.Expr, error) {
	lx := lexer.New(src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, errs[0]
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(token.EOF) {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *parser) cur() token.Token     { return p.toks[p.pos] }
func (p *parser) at(k token.Kind) bool { return p.toks[p.pos].Kind == k }
func (p *parser) peekKind(n int) token.Kind {
	if p.pos+n >= len(p.toks) {
		return token.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// Declarations.
// ---------------------------------------------------------------------------

func (p *parser) parseDecl() (ast.Decl, error) {
	switch p.cur().Kind {
	case token.TYPE:
		return p.parseTypeDecl()
	case token.LET:
		return p.parseValDecl()
	default:
		return nil, p.errf("expected declaration, found %s", p.cur())
	}
}

func (p *parser) parseTypeDecl() (ast.Decl, error) {
	start := p.next() // type
	d := &ast.TypeDecl{P: start.Pos}

	// Optional type parameters: 'a name, or ('a, 'b) name.
	switch p.cur().Kind {
	case token.TYVAR:
		d.Params = append(d.Params, p.next().Text)
	case token.LPAREN:
		p.next()
		for {
			t, err := p.expect(token.TYVAR)
			if err != nil {
				return nil, err
			}
			d.Params = append(d.Params, t.Text)
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
	}

	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	if _, err := p.expect(token.EQ); err != nil {
		return nil, err
	}
	if p.at(token.BAR) { // optional leading bar
		p.next()
	}
	for {
		c, err := p.parseCtorDecl()
		if err != nil {
			return nil, err
		}
		d.Ctors = append(d.Ctors, c)
		if !p.at(token.BAR) {
			break
		}
		p.next()
	}
	return d, nil
}

func (p *parser) parseCtorDecl() (ast.CtorDecl, error) {
	name, err := p.expect(token.CTOR)
	if err != nil {
		return ast.CtorDecl{}, err
	}
	c := ast.CtorDecl{P: name.Pos, Name: name.Text}
	if p.at(token.OF) {
		p.next()
		// A product of field types: t1 * t2 * ... Each field parses at
		// "postfix" precedence so that * separates fields.
		for {
			t, err := p.parseTypePostfix()
			if err != nil {
				return ast.CtorDecl{}, err
			}
			c.Args = append(c.Args, t)
			if !p.at(token.STAR) {
				break
			}
			p.next()
		}
	}
	return c, nil
}

func (p *parser) parseValDecl() (ast.Decl, error) {
	start := p.next() // let
	d := &ast.ValDecl{P: start.Pos}
	if p.at(token.REC) {
		p.next()
		d.Rec = true
	}
	for {
		b, err := p.parseBind()
		if err != nil {
			return nil, err
		}
		d.Binds = append(d.Binds, b)
		if !p.at(token.AND) {
			break
		}
		p.next()
	}
	return d, nil
}

// param is a function parameter in a binding or fun expression.
type param struct {
	name string
	ann  ast.TypeExpr
	pos  token.Pos
}

// parseParams parses zero or more parameters: x, _, (), (x : t).
func (p *parser) parseParams() ([]param, error) {
	var ps []param
	for {
		switch p.cur().Kind {
		case token.IDENT:
			t := p.next()
			ps = append(ps, param{name: t.Text, pos: t.Pos})
		case token.UNDERSCORE:
			t := p.next()
			ps = append(ps, param{name: "_", pos: t.Pos})
		case token.LPAREN:
			// () or (x : t) — only those forms are parameters; a bare ( that
			// is not one of them ends the parameter list (it belongs to the
			// body, which cannot happen before '=', so report it then).
			if p.peekKind(1) == token.RPAREN {
				t := p.next()
				p.next()
				ps = append(ps, param{name: "_", ann: &ast.TEName{P: t.Pos, Name: "unit"}, pos: t.Pos})
				continue
			}
			if p.peekKind(1) == token.IDENT && p.peekKind(2) == token.COLON {
				t := p.next()
				name := p.next()
				p.next() // colon
				ty, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.RPAREN); err != nil {
					return nil, err
				}
				ps = append(ps, param{name: name.Text, ann: ty, pos: t.Pos})
				continue
			}
			return ps, nil
		default:
			return ps, nil
		}
	}
}

func (p *parser) parseBind() (ast.Bind, error) {
	name := p.cur()
	var nm string
	switch name.Kind {
	case token.IDENT:
		nm = name.Text
		p.next()
	case token.UNDERSCORE:
		nm = "_"
		p.next()
	case token.LPAREN:
		// let () = e
		if p.peekKind(1) == token.RPAREN {
			p.next()
			p.next()
			nm = "_"
		} else {
			return ast.Bind{}, p.errf("expected binding name")
		}
	default:
		return ast.Bind{}, p.errf("expected binding name, found %s", p.cur())
	}

	params, err := p.parseParams()
	if err != nil {
		return ast.Bind{}, err
	}

	var ann ast.TypeExpr
	if p.at(token.COLON) {
		p.next()
		ann, err = p.parseType()
		if err != nil {
			return ast.Bind{}, err
		}
	}
	if _, err := p.expect(token.EQ); err != nil {
		return ast.Bind{}, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return ast.Bind{}, err
	}
	// Result annotation on a function binding annotates the innermost body.
	if ann != nil && len(params) > 0 {
		body = &ast.Ann{P: body.Pos(), Expr: body, Type: ann}
		ann = nil
	}
	for i := len(params) - 1; i >= 0; i-- {
		body = &ast.Lam{P: params[i].pos, Param: params[i].name, ParamAnn: params[i].ann, Body: body}
	}
	return ast.Bind{P: name.Pos, Name: nm, Expr: body, Ann: ann}, nil
}

// ---------------------------------------------------------------------------
// Types.
// ---------------------------------------------------------------------------

func (p *parser) parseType() (ast.TypeExpr, error) {
	return p.parseTypeArrow()
}

func (p *parser) parseTypeArrow() (ast.TypeExpr, error) {
	dom, err := p.parseTypeProd()
	if err != nil {
		return nil, err
	}
	if p.at(token.ARROW) {
		t := p.next()
		cod, err := p.parseTypeArrow()
		if err != nil {
			return nil, err
		}
		return &ast.TEArrow{P: t.Pos, Dom: dom, Cod: cod}, nil
	}
	return dom, nil
}

func (p *parser) parseTypeProd() (ast.TypeExpr, error) {
	first, err := p.parseTypePostfix()
	if err != nil {
		return nil, err
	}
	if !p.at(token.STAR) {
		return first, nil
	}
	elems := []ast.TypeExpr{first}
	for p.at(token.STAR) {
		p.next()
		e, err := p.parseTypePostfix()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &ast.TETuple{P: first.Pos(), Elems: elems}, nil
}

// parseTypePostfix parses an atomic type followed by postfix type
// constructor applications: int list, 'a list ref, (int, bool) pair.
func (p *parser) parseTypePostfix() (ast.TypeExpr, error) {
	var args []ast.TypeExpr
	switch p.cur().Kind {
	case token.TYVAR:
		t := p.next()
		args = []ast.TypeExpr{&ast.TEVar{P: t.Pos, Name: t.Text}}
	case token.IDENT:
		t := p.next()
		args = []ast.TypeExpr{&ast.TEName{P: t.Pos, Name: t.Text}}
	case token.REF:
		// "ref" as a bare type name cannot appear first; handled as postfix.
		return nil, p.errf("ref is a postfix type constructor")
	case token.LPAREN:
		p.next()
		for {
			a, err := p.parseType()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected type, found %s", p.cur())
	}

	for p.at(token.IDENT) || p.at(token.REF) {
		t := p.next()
		name := t.Text
		if t.Kind == token.REF {
			name = "ref"
		}
		args = []ast.TypeExpr{&ast.TEName{P: t.Pos, Name: name, Args: args}}
	}
	if len(args) != 1 {
		return nil, p.errf("parenthesized type group must be followed by a type constructor name")
	}
	return args[0], nil
}

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

// isBigStart reports whether the current token begins a greedy "big"
// expression.
func (p *parser) isBigStart() bool {
	switch p.cur().Kind {
	case token.FUN, token.IF, token.MATCH, token.LET:
		return true
	}
	return false
}

func (p *parser) parseExpr() (ast.Expr, error) {
	return p.parseSeq()
}

func (p *parser) parseSeq() (ast.Expr, error) {
	first, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	if !p.at(token.SEMI) {
		return first, nil
	}
	t := p.next()
	rest, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	return &ast.Seq{P: t.Pos, First: first, Rest: rest}, nil
}

func (p *parser) parseAssign() (ast.Expr, error) {
	if p.isBigStart() {
		return p.parseBig()
	}
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.at(token.ASSIGN) {
		t := p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &ast.Prim{P: t.Pos, Op: ast.OpAssign, Args: []ast.Expr{lhs, rhs}}, nil
	}
	return lhs, nil
}

// operand parses the right-hand operand of a binary operator, permitting a
// greedy big expression (so `x + if b then 1 else 2` needs no parens on the
// right, like OCaml).
func (p *parser) operand(sub func() (ast.Expr, error)) (ast.Expr, error) {
	if p.isBigStart() {
		return p.parseBig()
	}
	return sub()
}

func (p *parser) parseOr() (ast.Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(token.BARBAR) {
		t := p.next()
		rhs, err := p.operand(p.parseAnd)
		if err != nil {
			return nil, err
		}
		// Short-circuit: a || b  ==>  if a then true else b.
		lhs = &ast.If{P: t.Pos, Cond: lhs, Then: &ast.BoolLit{P: t.Pos, Val: true}, Else: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(token.AMPAMP) {
		t := p.next()
		rhs, err := p.operand(p.parseCmp)
		if err != nil {
			return nil, err
		}
		// Short-circuit: a && b  ==>  if a then b else false.
		lhs = &ast.If{P: t.Pos, Cond: lhs, Then: rhs, Else: &ast.BoolLit{P: t.Pos, Val: false}}
	}
	return lhs, nil
}

var cmpOps = map[token.Kind]ast.PrimOp{
	token.EQ: ast.OpEq, token.NE: ast.OpNe, token.LT: ast.OpLt,
	token.LE: ast.OpLe, token.GT: ast.OpGt, token.GE: ast.OpGe,
}

func (p *parser) parseCmp() (ast.Expr, error) {
	lhs, err := p.parseCons()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		t := p.next()
		rhs, err := p.operand(p.parseCons)
		if err != nil {
			return nil, err
		}
		return &ast.Prim{P: t.Pos, Op: op, Args: []ast.Expr{lhs, rhs}}, nil
	}
	return lhs, nil
}

func (p *parser) parseCons() (ast.Expr, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.at(token.CONS) {
		t := p.next()
		rhs, err := p.operand(p.parseCons)
		if err != nil {
			return nil, err
		}
		return &ast.Ctor{P: t.Pos, Name: "::", Args: []ast.Expr{lhs, rhs}}, nil
	}
	return lhs, nil
}

func (p *parser) parseAdd() (ast.Expr, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(token.PLUS) || p.at(token.MINUS) {
		t := p.next()
		op := ast.OpAdd
		if t.Kind == token.MINUS {
			op = ast.OpSub
		}
		rhs, err := p.operand(p.parseMul)
		if err != nil {
			return nil, err
		}
		lhs = &ast.Prim{P: t.Pos, Op: op, Args: []ast.Expr{lhs, rhs}}
	}
	return lhs, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(token.STAR) || p.at(token.SLASH) || p.at(token.MOD) {
		t := p.next()
		var op ast.PrimOp
		switch t.Kind {
		case token.STAR:
			op = ast.OpMul
		case token.SLASH:
			op = ast.OpDiv
		default:
			op = ast.OpMod
		}
		rhs, err := p.operand(p.parseUnary)
		if err != nil {
			return nil, err
		}
		lhs = &ast.Prim{P: t.Pos, Op: op, Args: []ast.Expr{lhs, rhs}}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	switch p.cur().Kind {
	case token.MINUS:
		t := p.next()
		// Negative integer literal folds immediately.
		if p.at(token.INT) {
			lit := p.next()
			v, err := strconv.ParseInt("-"+lit.Text, 10, 64)
			if err != nil {
				return nil, &Error{Pos: lit.Pos, Msg: "integer literal out of range"}
			}
			return &ast.IntLit{P: t.Pos, Val: v}, nil
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Prim{P: t.Pos, Op: ast.OpNeg, Args: []ast.Expr{e}}, nil
	case token.BANG:
		t := p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Prim{P: t.Pos, Op: ast.OpDeref, Args: []ast.Expr{e}}, nil
	case token.NOT:
		t := p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Prim{P: t.Pos, Op: ast.OpNot, Args: []ast.Expr{e}}, nil
	case token.REF:
		t := p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Prim{P: t.Pos, Op: ast.OpRef, Args: []ast.Expr{e}}, nil
	}
	return p.parseApp()
}

func (p *parser) atomStart() bool {
	switch p.cur().Kind {
	case token.INT, token.TRUE, token.FALSE, token.IDENT, token.CTOR,
		token.LPAREN, token.LBRACKET, token.BEGIN, token.STRING:
		return true
	}
	return false
}

func (p *parser) parseApp() (ast.Expr, error) {
	// A constructor application: Ctor atom?
	if p.at(token.CTOR) {
		t := p.next()
		c := &ast.Ctor{P: t.Pos, Name: t.Text}
		if p.atomStart() {
			arg, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			c.Args = []ast.Expr{arg}
		}
		// A constructor value is not a function: no further application.
		return c, nil
	}

	fn, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.atomStart() {
		// Constructor as argument: f Some — parse the ctor atom.
		arg, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		fn = &ast.App{P: arg.Pos(), Fn: fn, Arg: arg}
	}
	return fn, nil
}

func (p *parser) parseAtom() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "integer literal out of range"}
		}
		return &ast.IntLit{P: t.Pos, Val: v}, nil
	case token.TRUE:
		p.next()
		return &ast.BoolLit{P: t.Pos, Val: true}, nil
	case token.FALSE:
		p.next()
		return &ast.BoolLit{P: t.Pos, Val: false}, nil
	case token.STRING:
		p.next()
		return &ast.StrLit{P: t.Pos, Val: t.Text}, nil
	case token.IDENT:
		p.next()
		return &ast.Var{P: t.Pos, Name: t.Text}, nil
	case token.CTOR:
		p.next()
		return &ast.Ctor{P: t.Pos, Name: t.Text}, nil
	case token.LPAREN:
		p.next()
		if p.at(token.RPAREN) {
			p.next()
			return &ast.UnitLit{P: t.Pos}, nil
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.at(token.COLON) {
			p.next()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			first = &ast.Ann{P: t.Pos, Expr: first, Type: ty}
		}
		if p.at(token.COMMA) {
			elems := []ast.Expr{first}
			for p.at(token.COMMA) {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			return &ast.Tuple{P: t.Pos, Elems: elems}, nil
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return first, nil
	case token.BEGIN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.END); err != nil {
			return nil, err
		}
		return e, nil
	case token.LBRACKET:
		p.next()
		nilExpr := func(pos token.Pos) ast.Expr { return &ast.Ctor{P: pos, Name: "[]"} }
		if p.at(token.RBRACKET) {
			p.next()
			return nilExpr(t.Pos), nil
		}
		var elems []ast.Expr
		for {
			e, err := p.parseAssign() // `;` separates list elements
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.at(token.SEMI) {
				break
			}
			p.next()
		}
		if _, err := p.expect(token.RBRACKET); err != nil {
			return nil, err
		}
		list := nilExpr(t.Pos)
		for i := len(elems) - 1; i >= 0; i-- {
			list = &ast.Ctor{P: elems[i].Pos(), Name: "::", Args: []ast.Expr{elems[i], list}}
		}
		return list, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}

// parseBig parses fun / if / match / let-in expressions, which extend as far
// right as possible.
func (p *parser) parseBig() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.FUN:
		p.next()
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		if len(params) == 0 {
			return nil, p.errf("fun requires at least one parameter")
		}
		if _, err := p.expect(token.ARROW); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		for i := len(params) - 1; i >= 0; i-- {
			body = &ast.Lam{P: params[i].pos, Param: params[i].name, ParamAnn: params[i].ann, Body: body}
		}
		return body, nil

	case token.IF:
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.THEN); err != nil {
			return nil, err
		}
		// The then-branch stops at `else`; parse at assign level so that a
		// trailing `;` or `else` terminates it.
		thn, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.ELSE); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ast.If{P: t.Pos, Cond: cond, Then: thn, Else: els}, nil

	case token.MATCH:
		p.next()
		scrut, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.WITH); err != nil {
			return nil, err
		}
		if p.at(token.BAR) {
			p.next()
		}
		m := &ast.Match{P: t.Pos, Scrut: scrut}
		for {
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.ARROW); err != nil {
				return nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Arms = append(m.Arms, ast.Arm{P: pat.Pos(), Pat: pat, Body: body})
			if !p.at(token.BAR) {
				break
			}
			p.next()
		}
		return m, nil

	case token.LET:
		p.next()
		rec := false
		if p.at(token.REC) {
			p.next()
			rec = true
		}
		var binds []ast.Bind
		for {
			b, err := p.parseBind()
			if err != nil {
				return nil, err
			}
			binds = append(binds, b)
			if !p.at(token.AND) {
				break
			}
			p.next()
		}
		if _, err := p.expect(token.IN); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Let{P: t.Pos, Rec: rec, Binds: binds, Body: body}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}

// ---------------------------------------------------------------------------
// Patterns.
// ---------------------------------------------------------------------------

func (p *parser) parsePattern() (ast.Pattern, error) {
	return p.parseConsPat()
}

func (p *parser) parseConsPat() (ast.Pattern, error) {
	lhs, err := p.parseAtomPat()
	if err != nil {
		return nil, err
	}
	if p.at(token.CONS) {
		t := p.next()
		rhs, err := p.parseConsPat()
		if err != nil {
			return nil, err
		}
		return &ast.PCtor{P: t.Pos, Name: "::", Args: []ast.Pattern{lhs, rhs}}, nil
	}
	return lhs, nil
}

func (p *parser) parseAtomPat() (ast.Pattern, error) {
	t := p.cur()
	switch t.Kind {
	case token.UNDERSCORE:
		p.next()
		return &ast.PWild{P: t.Pos}, nil
	case token.IDENT:
		p.next()
		return &ast.PVar{P: t.Pos, Name: t.Text}, nil
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "integer literal out of range"}
		}
		return &ast.PInt{P: t.Pos, Val: v}, nil
	case token.MINUS:
		p.next()
		lit, err := p.expect(token.INT)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt("-"+lit.Text, 10, 64)
		if err != nil {
			return nil, &Error{Pos: lit.Pos, Msg: "integer literal out of range"}
		}
		return &ast.PInt{P: t.Pos, Val: v}, nil
	case token.TRUE:
		p.next()
		return &ast.PBool{P: t.Pos, Val: true}, nil
	case token.FALSE:
		p.next()
		return &ast.PBool{P: t.Pos, Val: false}, nil
	case token.CTOR:
		p.next()
		c := &ast.PCtor{P: t.Pos, Name: t.Text}
		if p.patAtomStart() {
			arg, err := p.parseAtomPat()
			if err != nil {
				return nil, err
			}
			c.Args = []ast.Pattern{arg}
		}
		return c, nil
	case token.LPAREN:
		p.next()
		if p.at(token.RPAREN) {
			p.next()
			return &ast.PUnit{P: t.Pos}, nil
		}
		first, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if p.at(token.COMMA) {
			elems := []ast.Pattern{first}
			for p.at(token.COMMA) {
				p.next()
				e, err := p.parsePattern()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			return &ast.PTuple{P: t.Pos, Elems: elems}, nil
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return first, nil
	case token.LBRACKET:
		p.next()
		var elems []ast.Pattern
		if !p.at(token.RBRACKET) {
			for {
				e, err := p.parsePattern()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.at(token.SEMI) {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(token.RBRACKET); err != nil {
			return nil, err
		}
		var list ast.Pattern = &ast.PCtor{P: t.Pos, Name: "[]"}
		for i := len(elems) - 1; i >= 0; i-- {
			list = &ast.PCtor{P: elems[i].Pos(), Name: "::", Args: []ast.Pattern{elems[i], list}}
		}
		return list, nil
	}
	return nil, p.errf("expected pattern, found %s", t)
}

func (p *parser) patAtomStart() bool {
	switch p.cur().Kind {
	case token.UNDERSCORE, token.IDENT, token.INT, token.TRUE, token.FALSE,
		token.CTOR, token.LPAREN, token.LBRACKET:
		return true
	}
	return false
}
