// Package token defines the lexical tokens of MinML, the small ML-like
// source language used throughout this reproduction of Goldberg's tag-free
// garbage collection paper (PLDI 1991).
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Literal and identifier kinds carry their text in Token.Text.
const (
	// Special.
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	INT    // 123
	IDENT  // lower-case identifier: map, xs
	CTOR   // capitalized identifier: Some, Leaf
	TYVAR  // 'a
	STRING // "abc" (used only in print diagnostics)

	// Keywords.
	LET
	REC
	AND
	IN
	FUN
	IF
	THEN
	ELSE
	MATCH
	WITH
	TYPE
	OF
	TRUE
	FALSE
	REF
	BEGIN
	END
	MOD
	NOT

	// Punctuation and operators.
	LPAREN     // (
	RPAREN     // )
	LBRACKET   // [
	RBRACKET   // ]
	COMMA      // ,
	SEMI       // ;
	SEMISEMI   // ;;
	COLON      // :
	CONS       // ::
	ARROW      // ->
	BAR        // |
	EQ         // =
	NE         // <>
	LT         // <
	LE         // <=
	GT         // >
	GE         // >=
	PLUS       // +
	MINUS      // -
	STAR       // *
	SLASH      // /
	AMPAMP     // &&
	BARBAR     // ||
	BANG       // !
	ASSIGN     // :=
	UNDERSCORE // _
)

var kindNames = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL",
	INT: "INT", IDENT: "IDENT", CTOR: "CTOR", TYVAR: "TYVAR", STRING: "STRING",
	LET: "let", REC: "rec", AND: "and", IN: "in", FUN: "fun", IF: "if",
	THEN: "then", ELSE: "else", MATCH: "match", WITH: "with", TYPE: "type",
	OF: "of", TRUE: "true", FALSE: "false", REF: "ref", BEGIN: "begin",
	END: "end", MOD: "mod", NOT: "not",
	LPAREN: "(", RPAREN: ")", LBRACKET: "[", RBRACKET: "]", COMMA: ",",
	SEMI: ";", SEMISEMI: ";;", COLON: ":", CONS: "::", ARROW: "->", BAR: "|",
	EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	AMPAMP: "&&", BARBAR: "||", BANG: "!", ASSIGN: ":=", UNDERSCORE: "_",
}

// String returns a readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"let": LET, "rec": REC, "and": AND, "in": IN, "fun": FUN,
	"if": IF, "then": THEN, "else": ELSE, "match": MATCH, "with": WITH,
	"type": TYPE, "of": OF, "true": TRUE, "false": FALSE, "ref": REF,
	"begin": BEGIN, "end": END, "mod": MOD, "not": NOT,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexeme with its position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case INT, IDENT, CTOR, TYVAR, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
