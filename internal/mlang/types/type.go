// Package types implements Hindley–Milner type inference for MinML.
//
// Inference uses mutable unification variables with Rémy-style levels for
// efficient let-generalization, and the standard ML value restriction so
// that reference cells remain sound. Beyond checking, the package records
// the information Goldberg-style tag-free garbage collection needs:
//
//   - the resolved type of every expression and pattern,
//   - the type scheme of every binding,
//   - the instantiation (the types chosen for the quantified variables) at
//     every occurrence of a polymorphic variable or datatype constructor.
//
// Instantiations are what the compiler later turns into the type_gc_routine
// parameters of the paper's polymorphic collection scheme (§3).
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a semantic type. The concrete types are *Base, *Var, *Arrow,
// *TupleT and *Con.
type Type interface {
	isType()
}

// BaseKind enumerates the built-in base types.
type BaseKind int

// Built-in base types.
const (
	IntK BaseKind = iota
	BoolK
	UnitK
	StringK
)

// Base is a built-in base type. Use the package-level singletons Int, Bool,
// Unit and String.
type Base struct{ Kind BaseKind }

// Singleton base types.
var (
	Int    = &Base{IntK}
	Bool   = &Base{BoolK}
	Unit   = &Base{UnitK}
	String = &Base{StringK}
)

// Var is a unification variable. A Var with non-nil Link has been unified
// and behaves as its link; Resolve follows links. A Var with Quant != nil
// has been generalized into a scheme and must never be unified afterwards —
// it appears in types only as a bound-variable reference.
type Var struct {
	ID    int
	Level int
	Link  Type
	Quant *QuantInfo
}

// QuantInfo marks a generalized variable: its index among the quantified
// variables of the owning generalization group. Datatype parameter
// references (ParamRef) have a nil Owner.
type QuantInfo struct {
	Index int
	Owner *GenGroup
}

// GenGroup is a quantification group: the set of variables generalized
// together by one let or let-rec binding group. Mutually recursive bindings
// can share type variables, so they share one group; every binding in the
// group quantifies the full variable list (a standard SCC-based
// generalization). Later compiler stages use the group as the identity that
// maps quantified variables to a function's type parameters.
type GenGroup struct {
	Vars []*Var
}

// Arrow is a function type Dom -> Cod.
type Arrow struct{ Dom, Cod Type }

// TupleT is a product type with at least two components.
type TupleT struct{ Elems []Type }

// Con is an applied named type constructor: datatypes declared by the
// program plus the built-ins "list" and "ref".
type Con struct {
	Name string
	Args []Type
	Data *Data // the declaring datatype; nil for "ref"
}

func (*Base) isType()   {}
func (*Var) isType()    {}
func (*Arrow) isType()  {}
func (*TupleT) isType() {}
func (*Con) isType()    {}

// Resolve follows unification links until it reaches a non-link type.
func Resolve(t Type) Type {
	for {
		v, ok := t.(*Var)
		if !ok || v.Link == nil {
			return t
		}
		t = v.Link
	}
}

// Scheme is a polymorphic type scheme quantifying its group's variables
// over Body. A nil Group means the scheme is monomorphic.
type Scheme struct {
	Group *GenGroup
	Body  Type
}

// Mono wraps a monomorphic type as a scheme with no quantified variables.
func Mono(t Type) *Scheme { return &Scheme{Body: t} }

// Vars returns the quantified variables (nil for monomorphic schemes).
func (s *Scheme) Vars() []*Var {
	if s.Group == nil {
		return nil
	}
	return s.Group.Vars
}

// IsPoly reports whether the scheme quantifies at least one variable.
func (s *Scheme) IsPoly() bool { return len(s.Vars()) > 0 }

// Data describes a declared datatype (including the built-in list type).
type Data struct {
	Name   string
	Params int
	Ctors  []*CtorInfo
	// BoxedCtors is the number of constructors with at least one argument.
	// When it is <= 1 the representation needs no discriminant word on boxed
	// values (the "tagless sum" layout; lists and options enjoy this).
	BoxedCtors int
}

// CtorInfo describes one constructor of a datatype.
type CtorInfo struct {
	Name string
	Data *Data
	// Tag is the constructor's index in a per-kind numbering: nullary
	// constructors are numbered 0.. among nullary ones (they are represented
	// unboxed by this number), and constructors with arguments are numbered
	// 0.. among boxed ones (the number is stored as the discriminant when
	// the datatype has more than one boxed constructor).
	Tag int
	// Args are the field types, expressed over the datatype's parameters,
	// which appear as *Var with Quant set and Owner == nil (indices 0..Params-1).
	Args []Type
}

// IsNullary reports whether the constructor has no arguments.
func (c *CtorInfo) IsNullary() bool { return len(c.Args) == 0 }

// ParamRef constructs a reference to datatype parameter i, used in CtorInfo
// field types.
func ParamRef(i int) *Var {
	return &Var{ID: -1 - i, Quant: &QuantInfo{Index: i}}
}

// Instantiate substitutes args for the datatype parameters in the
// constructor's field types.
func (c *CtorInfo) Instantiate(args []Type) []Type {
	out := make([]Type, len(c.Args))
	for i, a := range c.Args {
		out[i] = substParams(a, args)
	}
	return out
}

// substParams replaces quantified parameter references with the given types.
func substParams(t Type, args []Type) Type {
	switch t := Resolve(t).(type) {
	case *Base:
		return t
	case *Var:
		if t.Quant != nil && t.Quant.Index < len(args) {
			return args[t.Quant.Index]
		}
		return t
	case *Arrow:
		return &Arrow{Dom: substParams(t.Dom, args), Cod: substParams(t.Cod, args)}
	case *TupleT:
		elems := make([]Type, len(t.Elems))
		for i, e := range t.Elems {
			elems[i] = substParams(e, args)
		}
		return &TupleT{Elems: elems}
	case *Con:
		as := make([]Type, len(t.Args))
		for i, a := range t.Args {
			as[i] = substParams(a, args)
		}
		return &Con{Name: t.Name, Args: as, Data: t.Data}
	}
	panic("substParams: unreachable")
}

// ---------------------------------------------------------------------------
// Printing.
// ---------------------------------------------------------------------------

// TypeString renders a type using ML syntax with 'a-style names for
// quantified and free variables.
func TypeString(t Type) string {
	names := map[int]string{}
	return typeString(t, names, false)
}

// SchemeString renders a type scheme.
func (s *Scheme) String() string {
	names := map[int]string{}
	for i, v := range s.Vars() {
		names[v.ID] = tvName(i)
	}
	return typeString(s.Body, names, false)
}

func tvName(i int) string {
	name := string(rune('a' + i%26))
	if i >= 26 {
		name += fmt.Sprint(i / 26)
	}
	return "'" + name
}

func typeString(t Type, names map[int]string, paren bool) string {
	switch t := Resolve(t).(type) {
	case *Base:
		switch t.Kind {
		case IntK:
			return "int"
		case BoolK:
			return "bool"
		case UnitK:
			return "unit"
		case StringK:
			return "string"
		}
	case *Var:
		if n, ok := names[t.ID]; ok {
			return n
		}
		var n string
		if t.Quant != nil {
			n = tvName(t.Quant.Index)
		} else {
			n = "'_" + fmt.Sprint(len(names))
		}
		names[t.ID] = n
		return n
	case *Arrow:
		s := typeString(t.Dom, names, true) + " -> " + typeString(t.Cod, names, false)
		if paren {
			return "(" + s + ")"
		}
		return s
	case *TupleT:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = typeString(e, names, true)
		}
		s := strings.Join(parts, " * ")
		if paren {
			return "(" + s + ")"
		}
		return s
	case *Con:
		if len(t.Args) == 0 {
			return t.Name
		}
		if len(t.Args) == 1 {
			return typeString(t.Args[0], names, true) + " " + t.Name
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = typeString(a, names, false)
		}
		return "(" + strings.Join(parts, ", ") + ") " + t.Name
	}
	return "?"
}

// FreeVars returns the unbound, un-generalized variables of t in a
// deterministic order.
func FreeVars(t Type) []*Var {
	seen := map[int]*Var{}
	var walk func(Type)
	walk = func(t Type) {
		switch t := Resolve(t).(type) {
		case *Var:
			if t.Quant == nil {
				seen[t.ID] = t
			}
		case *Arrow:
			walk(t.Dom)
			walk(t.Cod)
		case *TupleT:
			for _, e := range t.Elems {
				walk(e)
			}
		case *Con:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walk(t)
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Var, len(ids))
	for i, id := range ids {
		out[i] = seen[id]
	}
	return out
}

// Equal reports structural equality of two resolved types. Quantified
// variables are equal when they reference the same index and owner.
func Equal(a, b Type) bool {
	a, b = Resolve(a), Resolve(b)
	switch a := a.(type) {
	case *Base:
		b, ok := b.(*Base)
		return ok && a.Kind == b.Kind
	case *Var:
		b, ok := b.(*Var)
		if !ok {
			return false
		}
		if a.Quant != nil && b.Quant != nil {
			return a.Quant.Owner == b.Quant.Owner && a.Quant.Index == b.Quant.Index
		}
		return a == b
	case *Arrow:
		b, ok := b.(*Arrow)
		return ok && Equal(a.Dom, b.Dom) && Equal(a.Cod, b.Cod)
	case *TupleT:
		b, ok := b.(*TupleT)
		if !ok || len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !Equal(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case *Con:
		b, ok := b.(*Con)
		if !ok || a.Name != b.Name || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
