package types

import (
	"fmt"

	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/token"
)

// Error is a type error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: type error: %s", e.Pos, e.Msg) }

// Info is the result of type checking: everything later compiler stages
// need, keyed by AST node identity.
type Info struct {
	// ExprType gives the resolved type of every expression.
	ExprType map[ast.Expr]Type
	// PatType gives the resolved type of every pattern node.
	PatType map[ast.Pattern]Type
	// ExprCtor resolves constructor expressions to their declarations.
	ExprCtor map[*ast.Ctor]*CtorInfo
	// PatCtor resolves constructor patterns to their declarations.
	PatCtor map[*ast.PCtor]*CtorInfo
	// CtorSplat marks constructor applications C (e1, ..., en) whose single
	// tuple argument fills the constructor's n fields directly.
	CtorSplat map[*ast.Ctor]bool
	// PatSplat is the same for patterns.
	PatSplat map[*ast.PCtor]bool
	// Scheme gives the generalized scheme of each binding, keyed by the
	// binding's bound expression (unique per binding).
	Scheme map[ast.Expr]*Scheme
	// Inst gives, for each occurrence of a variable with a polymorphic
	// scheme and for each constructor occurrence, the types instantiated for
	// the quantified variables, in scheme order.
	Inst map[ast.Expr][]Type
	// PatInst is the instantiation for constructor patterns.
	PatInst map[*ast.PCtor][]Type
	// VarScheme maps each variable occurrence to the scheme it referenced.
	VarScheme map[*ast.Var]*Scheme
	// Datatypes and Ctors index the declared datatypes.
	Datatypes map[string]*Data
	Ctors     map[string]*CtorInfo
	// TopScheme maps top-level binding names to their schemes.
	TopScheme map[string]*Scheme
	// ListData is the built-in list datatype.
	ListData *Data
}

// checker carries inference state. Errors abort inference via panic with a
// *Error, recovered at the Check boundary.
type checker struct {
	nextID int
	level  int
	info   *Info
	// eqTypes are operand types of = and <>; after inference each must
	// resolve to an equality base type.
	eqTypes []eqConstraint
}

type eqConstraint struct {
	t   Type
	pos token.Pos
}

type env struct {
	parent *env
	name   string
	scheme *Scheme
}

func (e *env) bind(name string, s *Scheme) *env {
	return &env{parent: e, name: name, scheme: s}
}

func (e *env) lookup(name string) (*Scheme, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.scheme, true
		}
	}
	return nil, false
}

func (c *checker) errf(pos token.Pos, format string, args ...any) {
	panic(&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) fresh() *Var {
	c.nextID++
	return &Var{ID: c.nextID, Level: c.level}
}

// Check type-checks a program and returns the collected Info.
func Check(prog *ast.Program) (info *Info, err error) {
	c := &checker{
		info: &Info{
			ExprType:  map[ast.Expr]Type{},
			PatType:   map[ast.Pattern]Type{},
			ExprCtor:  map[*ast.Ctor]*CtorInfo{},
			PatCtor:   map[*ast.PCtor]*CtorInfo{},
			CtorSplat: map[*ast.Ctor]bool{},
			PatSplat:  map[*ast.PCtor]bool{},
			Scheme:    map[ast.Expr]*Scheme{},
			Inst:      map[ast.Expr][]Type{},
			PatInst:   map[*ast.PCtor][]Type{},
			VarScheme: map[*ast.Var]*Scheme{},
			Datatypes: map[string]*Data{},
			Ctors:     map[string]*CtorInfo{},
			TopScheme: map[string]*Scheme{},
		},
	}
	defer func() {
		if r := recover(); r != nil {
			if te, ok := r.(*Error); ok {
				info, err = nil, te
				return
			}
			panic(r)
		}
	}()

	c.declareBuiltinData()
	genv := c.builtinEnv()

	// First pass: declare all datatypes (allows forward references between
	// datatypes but not forward references of values).
	for _, d := range prog.Decls {
		if td, ok := d.(*ast.TypeDecl); ok {
			c.declareData(td)
		}
	}
	for _, d := range prog.Decls {
		if td, ok := d.(*ast.TypeDecl); ok {
			c.fillData(td)
		}
	}

	for _, d := range prog.Decls {
		vd, ok := d.(*ast.ValDecl)
		if !ok {
			continue
		}
		genv = c.checkValDecl(vd, genv, true)
	}

	c.defaultAll()
	c.checkEqConstraints()
	return c.info, nil
}

// ---------------------------------------------------------------------------
// Datatype declarations.
// ---------------------------------------------------------------------------

func (c *checker) declareBuiltinData() {
	list := &Data{Name: "list", Params: 1}
	nilC := &CtorInfo{Name: "[]", Data: list, Tag: 0}
	consC := &CtorInfo{Name: "::", Data: list, Tag: 0, Args: []Type{
		ParamRef(0),
		&Con{Name: "list", Args: []Type{ParamRef(0)}, Data: list},
	}}
	list.Ctors = []*CtorInfo{nilC, consC}
	list.BoxedCtors = 1
	c.info.Datatypes["list"] = list
	c.info.Ctors["[]"] = nilC
	c.info.Ctors["::"] = consC
	c.info.ListData = list
}

func (c *checker) declareData(td *ast.TypeDecl) {
	if _, dup := c.info.Datatypes[td.Name]; dup {
		c.errf(td.P, "datatype %s redeclared", td.Name)
	}
	switch td.Name {
	case "int", "bool", "unit", "string", "list", "ref":
		c.errf(td.P, "cannot redeclare built-in type %s", td.Name)
	}
	c.info.Datatypes[td.Name] = &Data{Name: td.Name, Params: len(td.Params)}
}

func (c *checker) fillData(td *ast.TypeDecl) {
	data := c.info.Datatypes[td.Name]
	paramIdx := map[string]int{}
	for i, p := range td.Params {
		if _, dup := paramIdx[p]; dup {
			c.errf(td.P, "duplicate type parameter '%s", p)
		}
		paramIdx[p] = i
	}
	nullary, boxed := 0, 0
	for _, cd := range td.Ctors {
		if _, dup := c.info.Ctors[cd.Name]; dup {
			c.errf(cd.P, "constructor %s redeclared", cd.Name)
		}
		ci := &CtorInfo{Name: cd.Name, Data: data}
		for _, a := range cd.Args {
			ci.Args = append(ci.Args, c.typeFromExpr(a, paramIdx, nil))
		}
		if ci.IsNullary() {
			ci.Tag = nullary
			nullary++
		} else {
			ci.Tag = boxed
			boxed++
		}
		data.Ctors = append(data.Ctors, ci)
		c.info.Ctors[cd.Name] = ci
	}
	data.BoxedCtors = boxed
}

// typeFromExpr converts a source type expression to a semantic type.
// paramIdx maps datatype parameters to indices (ctor declarations);
// tvScope, when non-nil, accumulates fresh vars for annotation type
// variables.
func (c *checker) typeFromExpr(te ast.TypeExpr, paramIdx map[string]int, tvScope map[string]*Var) Type {
	switch te := te.(type) {
	case *ast.TEVar:
		if paramIdx != nil {
			if i, ok := paramIdx[te.Name]; ok {
				return ParamRef(i)
			}
			c.errf(te.P, "unbound type parameter '%s", te.Name)
		}
		if tvScope != nil {
			if v, ok := tvScope[te.Name]; ok {
				return v
			}
			v := c.fresh()
			tvScope[te.Name] = v
			return v
		}
		c.errf(te.P, "type variable '%s not allowed here", te.Name)
	case *ast.TEArrow:
		return &Arrow{
			Dom: c.typeFromExpr(te.Dom, paramIdx, tvScope),
			Cod: c.typeFromExpr(te.Cod, paramIdx, tvScope),
		}
	case *ast.TETuple:
		elems := make([]Type, len(te.Elems))
		for i, e := range te.Elems {
			elems[i] = c.typeFromExpr(e, paramIdx, tvScope)
		}
		return &TupleT{Elems: elems}
	case *ast.TEName:
		switch te.Name {
		case "int", "bool", "unit", "string":
			if len(te.Args) != 0 {
				c.errf(te.P, "type %s takes no arguments", te.Name)
			}
			switch te.Name {
			case "int":
				return Int
			case "bool":
				return Bool
			case "unit":
				return Unit
			default:
				return String
			}
		case "ref":
			if len(te.Args) != 1 {
				c.errf(te.P, "ref takes exactly one argument")
			}
			return &Con{Name: "ref", Args: []Type{c.typeFromExpr(te.Args[0], paramIdx, tvScope)}}
		}
		data, ok := c.info.Datatypes[te.Name]
		if !ok {
			c.errf(te.P, "unknown type %s", te.Name)
		}
		if len(te.Args) != data.Params {
			c.errf(te.P, "type %s expects %d argument(s), got %d", te.Name, data.Params, len(te.Args))
		}
		args := make([]Type, len(te.Args))
		for i, a := range te.Args {
			args[i] = c.typeFromExpr(a, paramIdx, tvScope)
		}
		return &Con{Name: te.Name, Args: args, Data: data}
	}
	panic("typeFromExpr: unreachable")
}

// ---------------------------------------------------------------------------
// Unification.
// ---------------------------------------------------------------------------

func (c *checker) unify(pos token.Pos, a, b Type) {
	a, b = Resolve(a), Resolve(b)
	if a == b {
		return
	}
	if av, ok := a.(*Var); ok && av.Quant == nil {
		c.bindVar(pos, av, b)
		return
	}
	if bv, ok := b.(*Var); ok && bv.Quant == nil {
		c.bindVar(pos, bv, a)
		return
	}
	switch at := a.(type) {
	case *Base:
		if bt, ok := b.(*Base); ok && at.Kind == bt.Kind {
			return
		}
	case *Arrow:
		if bt, ok := b.(*Arrow); ok {
			c.unify(pos, at.Dom, bt.Dom)
			c.unify(pos, at.Cod, bt.Cod)
			return
		}
	case *TupleT:
		if bt, ok := b.(*TupleT); ok && len(at.Elems) == len(bt.Elems) {
			for i := range at.Elems {
				c.unify(pos, at.Elems[i], bt.Elems[i])
			}
			return
		}
	case *Con:
		if bt, ok := b.(*Con); ok && at.Name == bt.Name && len(at.Args) == len(bt.Args) {
			for i := range at.Args {
				c.unify(pos, at.Args[i], bt.Args[i])
			}
			return
		}
	case *Var: // quantified var: only equal to itself, handled above
	}
	c.errf(pos, "cannot unify %s with %s", TypeString(a), TypeString(b))
}

func (c *checker) bindVar(pos token.Pos, v *Var, t Type) {
	if occurs(v, t) {
		c.errf(pos, "occurs check: cannot construct infinite type %s = %s",
			TypeString(v), TypeString(t))
	}
	adjustLevel(t, v.Level)
	v.Link = t
}

func occurs(v *Var, t Type) bool {
	switch t := Resolve(t).(type) {
	case *Var:
		return t == v
	case *Arrow:
		return occurs(v, t.Dom) || occurs(v, t.Cod)
	case *TupleT:
		for _, e := range t.Elems {
			if occurs(v, e) {
				return true
			}
		}
	case *Con:
		for _, a := range t.Args {
			if occurs(v, a) {
				return true
			}
		}
	}
	return false
}

func adjustLevel(t Type, level int) {
	switch t := Resolve(t).(type) {
	case *Var:
		if t.Quant == nil && t.Level > level {
			t.Level = level
		}
	case *Arrow:
		adjustLevel(t.Dom, level)
		adjustLevel(t.Cod, level)
	case *TupleT:
		for _, e := range t.Elems {
			adjustLevel(e, level)
		}
	case *Con:
		for _, a := range t.Args {
			adjustLevel(a, level)
		}
	}
}

// ---------------------------------------------------------------------------
// Generalization and instantiation.
// ---------------------------------------------------------------------------

// generalizeGroup quantifies, across all the given types at once, the
// variables whose level exceeds the current level. The types of a mutually
// recursive binding group can share variables, so quantification is
// per-group: every member scheme quantifies the full variable list.
func (c *checker) generalizeGroup(ts []Type) *GenGroup {
	g := &GenGroup{}
	var walk func(Type)
	walk = func(t Type) {
		switch t := Resolve(t).(type) {
		case *Var:
			if t.Quant == nil && t.Level > c.level {
				t.Quant = &QuantInfo{Index: len(g.Vars), Owner: g}
				g.Vars = append(g.Vars, t)
			}
		case *Arrow:
			walk(t.Dom)
			walk(t.Cod)
		case *TupleT:
			for _, e := range t.Elems {
				walk(e)
			}
		case *Con:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, t := range ts {
		walk(t)
	}
	if len(g.Vars) == 0 {
		return nil
	}
	return g
}

// instantiate replaces a scheme's quantified variables with fresh ones and
// returns the instantiated body together with the fresh variables (the
// instantiation record for GC metadata).
func (c *checker) instantiate(s *Scheme) (Type, []Type) {
	vars := s.Vars()
	if len(vars) == 0 {
		return s.Body, nil
	}
	fresh := make([]Type, len(vars))
	subst := map[*Var]Type{}
	for i, v := range vars {
		f := c.fresh()
		fresh[i] = f
		subst[v] = f
	}
	return substVars(s.Body, subst), fresh
}

func substVars(t Type, subst map[*Var]Type) Type {
	switch t := Resolve(t).(type) {
	case *Base:
		return t
	case *Var:
		if r, ok := subst[t]; ok {
			return r
		}
		return t
	case *Arrow:
		return &Arrow{Dom: substVars(t.Dom, subst), Cod: substVars(t.Cod, subst)}
	case *TupleT:
		elems := make([]Type, len(t.Elems))
		for i, e := range t.Elems {
			elems[i] = substVars(e, subst)
		}
		return &TupleT{Elems: elems}
	case *Con:
		args := make([]Type, len(t.Args))
		for i, a := range t.Args {
			args[i] = substVars(a, subst)
		}
		return &Con{Name: t.Name, Args: args, Data: t.Data}
	}
	panic("substVars: unreachable")
}

// isSyntacticValue implements the ML value restriction: only syntactic
// values may be generalized.
func isSyntacticValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.BoolLit, *ast.UnitLit, *ast.StrLit, *ast.Var, *ast.Lam:
		return true
	case *ast.Ann:
		return isSyntacticValue(e.Expr)
	case *ast.Tuple:
		for _, el := range e.Elems {
			if !isSyntacticValue(el) {
				return false
			}
		}
		return true
	case *ast.Ctor:
		for _, a := range e.Args {
			if !isSyntacticValue(a) {
				return false
			}
		}
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Expression inference.
// ---------------------------------------------------------------------------

func (c *checker) builtinEnv() *env {
	var e *env
	bind := func(name string, t Type) {
		e = e.bind(name, Mono(t))
	}
	bind("print_int", &Arrow{Dom: Int, Cod: Unit})
	bind("print_bool", &Arrow{Dom: Bool, Cod: Unit})
	bind("print_string", &Arrow{Dom: String, Cod: Unit})
	bind("print_newline", &Arrow{Dom: Unit, Cod: Unit})
	return e
}

// BuiltinNames lists the runtime-provided functions available to programs.
var BuiltinNames = []string{"print_int", "print_bool", "print_string", "print_newline"}

func (c *checker) checkValDecl(vd *ast.ValDecl, e *env, top bool) *env {
	schemes := c.checkBinds(vd.P, vd.Rec, vd.Binds, e)
	for i, b := range vd.Binds {
		e = e.bind(b.Name, schemes[i])
		if top && b.Name != "_" {
			c.info.TopScheme[b.Name] = schemes[i]
		}
	}
	return e
}

// checkBinds infers a let or let-rec group and returns one scheme per bind.
func (c *checker) checkBinds(pos token.Pos, rec bool, binds []ast.Bind, e *env) []*Scheme {
	c.level++
	var rhsTypes []Type
	if rec {
		// Bind each name monomorphically for the duration of the bodies.
		recEnv := e
		vars := make([]*Var, len(binds))
		for i, b := range binds {
			vars[i] = c.fresh()
			recEnv = recEnv.bind(b.Name, Mono(vars[i]))
		}
		for i, b := range binds {
			t := c.inferBind(b, recEnv)
			c.unify(b.P, vars[i], t)
			rhsTypes = append(rhsTypes, t)
		}
	} else {
		for _, b := range binds {
			rhsTypes = append(rhsTypes, c.inferBind(b, e))
		}
	}
	c.level--

	// The ML value restriction: generalize only syntactic values. For a
	// recursive group, all members must be values (they share variables, so
	// the group generalizes as a whole or not at all).
	allValues := true
	for _, b := range binds {
		if !isSyntacticValue(b.Expr) {
			allValues = false
			break
		}
	}
	var group *GenGroup
	if allValues {
		group = c.generalizeGroup(rhsTypes)
	}
	schemes := make([]*Scheme, len(binds))
	for i, b := range binds {
		schemes[i] = &Scheme{Group: group, Body: rhsTypes[i]}
		c.info.Scheme[b.Expr] = schemes[i]
	}
	_ = pos
	return schemes
}

func (c *checker) inferBind(b ast.Bind, e *env) Type {
	t := c.infer(b.Expr, e)
	if b.Ann != nil {
		tv := map[string]*Var{}
		want := c.typeFromExpr(b.Ann, nil, tv)
		c.unify(b.P, t, want)
	}
	return t
}

func (c *checker) infer(expr ast.Expr, e *env) Type {
	t := c.inferRaw(expr, e)
	c.info.ExprType[expr] = t
	return t
}

func (c *checker) inferRaw(expr ast.Expr, e *env) Type {
	switch ex := expr.(type) {
	case *ast.IntLit:
		return Int
	case *ast.BoolLit:
		return Bool
	case *ast.UnitLit:
		return Unit
	case *ast.StrLit:
		return String

	case *ast.Var:
		s, ok := e.lookup(ex.Name)
		if !ok {
			c.errf(ex.P, "unbound variable %s", ex.Name)
		}
		c.info.VarScheme[ex] = s
		t, inst := c.instantiate(s)
		if len(inst) > 0 {
			c.info.Inst[ex] = inst
		}
		return t

	case *ast.Ctor:
		return c.inferCtor(ex, e)

	case *ast.App:
		fn := c.infer(ex.Fn, e)
		arg := c.infer(ex.Arg, e)
		res := c.fresh()
		c.unify(ex.P, fn, &Arrow{Dom: arg, Cod: res})
		return res

	case *ast.Lam:
		param := Type(c.fresh())
		if ex.ParamAnn != nil {
			tv := map[string]*Var{}
			want := c.typeFromExpr(ex.ParamAnn, nil, tv)
			c.unify(ex.P, param, want)
		}
		body := c.infer(ex.Body, e.bind(ex.Param, Mono(param)))
		return &Arrow{Dom: param, Cod: body}

	case *ast.Let:
		schemes := c.checkBinds(ex.P, ex.Rec, ex.Binds, e)
		inner := e
		for i, b := range ex.Binds {
			inner = inner.bind(b.Name, schemes[i])
		}
		return c.infer(ex.Body, inner)

	case *ast.If:
		c.unify(ex.Cond.Pos(), c.infer(ex.Cond, e), Bool)
		thn := c.infer(ex.Then, e)
		els := c.infer(ex.Else, e)
		c.unify(ex.P, thn, els)
		return thn

	case *ast.Match:
		scrut := c.infer(ex.Scrut, e)
		res := Type(c.fresh())
		if len(ex.Arms) == 0 {
			c.errf(ex.P, "match with no arms")
		}
		for _, arm := range ex.Arms {
			binds := map[string]Type{}
			c.checkPattern(arm.Pat, scrut, binds, e)
			armEnv := e
			for name, t := range binds {
				armEnv = armEnv.bind(name, Mono(t))
			}
			c.unify(arm.P, c.infer(arm.Body, armEnv), res)
		}
		return res

	case *ast.Tuple:
		elems := make([]Type, len(ex.Elems))
		for i, el := range ex.Elems {
			elems[i] = c.infer(el, e)
		}
		return &TupleT{Elems: elems}

	case *ast.Prim:
		return c.inferPrim(ex, e)

	case *ast.Seq:
		c.unify(ex.First.Pos(), c.infer(ex.First, e), Unit)
		return c.infer(ex.Rest, e)

	case *ast.Ann:
		t := c.infer(ex.Expr, e)
		tv := map[string]*Var{}
		want := c.typeFromExpr(ex.Type, nil, tv)
		c.unify(ex.P, t, want)
		return t
	}
	panic("infer: unreachable expression")
}

func (c *checker) inferCtor(ex *ast.Ctor, e *env) Type {
	ci, ok := c.info.Ctors[ex.Name]
	if !ok {
		c.errf(ex.P, "unknown constructor %s", ex.Name)
	}
	c.info.ExprCtor[ex] = ci

	inst := make([]Type, ci.Data.Params)
	for i := range inst {
		inst[i] = c.fresh()
	}
	c.info.Inst[ex] = inst
	fieldTypes := ci.Instantiate(inst)

	args := ex.Args
	// Splat C (e1, ..., en) onto an n-field constructor.
	if len(ci.Args) > 1 && len(args) == 1 {
		if tup, ok := args[0].(*ast.Tuple); ok && len(tup.Elems) == len(ci.Args) {
			args = tup.Elems
			c.info.CtorSplat[ex] = true
			// The tuple node itself still needs a recorded type; give it the
			// product of the field types so later stages can consult it.
			c.info.ExprType[tup] = &TupleT{Elems: fieldTypes}
		}
	}
	if len(args) != len(ci.Args) {
		c.errf(ex.P, "constructor %s expects %d argument(s), got %d", ex.Name, len(ci.Args), len(args))
	}
	for i, a := range args {
		c.unify(a.Pos(), c.infer(a, e), fieldTypes[i])
	}
	return &Con{Name: ci.Data.Name, Args: inst, Data: ci.Data}
}

func (c *checker) inferPrim(ex *ast.Prim, e *env) Type {
	arg := func(i int) Type { return c.infer(ex.Args[i], e) }
	switch ex.Op {
	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
		c.unify(ex.Args[0].Pos(), arg(0), Int)
		c.unify(ex.Args[1].Pos(), arg(1), Int)
		return Int
	case ast.OpNeg:
		c.unify(ex.Args[0].Pos(), arg(0), Int)
		return Int
	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		c.unify(ex.Args[0].Pos(), arg(0), Int)
		c.unify(ex.Args[1].Pos(), arg(1), Int)
		return Bool
	case ast.OpEq, ast.OpNe:
		a := arg(0)
		c.unify(ex.Args[1].Pos(), arg(1), a)
		c.eqTypes = append(c.eqTypes, eqConstraint{t: a, pos: ex.P})
		return Bool
	case ast.OpAnd, ast.OpOr:
		c.unify(ex.Args[0].Pos(), arg(0), Bool)
		c.unify(ex.Args[1].Pos(), arg(1), Bool)
		return Bool
	case ast.OpNot:
		c.unify(ex.Args[0].Pos(), arg(0), Bool)
		return Bool
	case ast.OpRef:
		return &Con{Name: "ref", Args: []Type{arg(0)}}
	case ast.OpDeref:
		v := c.fresh()
		c.unify(ex.Args[0].Pos(), arg(0), &Con{Name: "ref", Args: []Type{v}})
		return v
	case ast.OpAssign:
		v := c.fresh()
		c.unify(ex.Args[0].Pos(), arg(0), &Con{Name: "ref", Args: []Type{v}})
		c.unify(ex.Args[1].Pos(), arg(1), v)
		return Unit
	}
	panic("inferPrim: unknown op")
}

// ---------------------------------------------------------------------------
// Pattern inference.
// ---------------------------------------------------------------------------

func (c *checker) checkPattern(p ast.Pattern, scrut Type, binds map[string]Type, e *env) {
	c.info.PatType[p] = scrut
	switch pat := p.(type) {
	case *ast.PWild:
	case *ast.PVar:
		if _, dup := binds[pat.Name]; dup {
			c.errf(pat.P, "variable %s bound twice in pattern", pat.Name)
		}
		binds[pat.Name] = scrut
	case *ast.PInt:
		c.unify(pat.P, scrut, Int)
	case *ast.PBool:
		c.unify(pat.P, scrut, Bool)
	case *ast.PUnit:
		c.unify(pat.P, scrut, Unit)
	case *ast.PTuple:
		elems := make([]Type, len(pat.Elems))
		for i := range elems {
			elems[i] = c.fresh()
		}
		c.unify(pat.P, scrut, &TupleT{Elems: elems})
		for i, el := range pat.Elems {
			c.checkPattern(el, elems[i], binds, e)
		}
	case *ast.PCtor:
		ci, ok := c.info.Ctors[pat.Name]
		if !ok {
			c.errf(pat.P, "unknown constructor %s in pattern", pat.Name)
		}
		c.info.PatCtor[pat] = ci
		inst := make([]Type, ci.Data.Params)
		for i := range inst {
			inst[i] = c.fresh()
		}
		c.info.PatInst[pat] = inst
		c.unify(pat.P, scrut, &Con{Name: ci.Data.Name, Args: inst, Data: ci.Data})
		fieldTypes := ci.Instantiate(inst)

		args := pat.Args
		if len(ci.Args) > 1 && len(args) == 1 {
			if tup, ok := args[0].(*ast.PTuple); ok && len(tup.Elems) == len(ci.Args) {
				args = tup.Elems
				c.info.PatSplat[pat] = true
				c.info.PatType[tup] = &TupleT{Elems: fieldTypes}
			}
		}
		if len(args) != len(ci.Args) {
			c.errf(pat.P, "constructor %s expects %d argument(s) in pattern, got %d",
				pat.Name, len(ci.Args), len(args))
		}
		for i, a := range args {
			c.checkPattern(a, fieldTypes[i], binds, e)
		}
	}
}

// ---------------------------------------------------------------------------
// Post-inference passes.
// ---------------------------------------------------------------------------

// defaultAll binds any remaining free (weak) unification variables to int so
// that every recorded type is ground or quantified. This mirrors ML
// implementations that default unresolved weak types.
func (c *checker) defaultAll() {
	def := func(t Type) {
		for _, v := range FreeVars(t) {
			v.Link = Int
		}
	}
	for _, t := range c.info.ExprType {
		def(t)
	}
	for _, t := range c.info.PatType {
		def(t)
	}
	for _, inst := range c.info.Inst {
		for _, t := range inst {
			def(t)
		}
	}
	for _, inst := range c.info.PatInst {
		for _, t := range inst {
			def(t)
		}
	}
	for _, s := range c.info.Scheme {
		def(s.Body)
	}
}

// checkEqConstraints verifies that = and <> were used at equality types.
// MinML restricts equality to int, bool, unit and string (word-comparable
// representations); structural equality on heap data would itself require
// the GC's type information and is out of scope.
func (c *checker) checkEqConstraints() {
	for _, ec := range c.eqTypes {
		switch t := Resolve(ec.t).(type) {
		case *Base:
			// All base types compare by word.
		case *Var:
			// Still free after defaulting means quantified: polymorphic
			// equality is rejected.
			c.errf(ec.pos, "polymorphic equality is not supported; compare base types only")
		default:
			c.errf(ec.pos, "equality is not defined on %s; compare base types only", TypeString(t))
		}
	}
}
