package types

import (
	"strings"
	"testing"

	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/parser"
)

// checkSrc type-checks a program and returns its Info.
func checkSrc(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v\nsource:\n%s", err, src)
	}
	return info
}

// wantErr asserts that checking fails and the message contains substr.
func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("expected type error containing %q, got none\nsource:\n%s", substr, src)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err.Error(), substr)
	}
}

// topType returns the printed scheme of a top-level binding.
func topType(t *testing.T, info *Info, name string) string {
	t.Helper()
	s, ok := info.TopScheme[name]
	if !ok {
		t.Fatalf("no top-level binding %s", name)
	}
	return s.String()
}

func TestBasicTypes(t *testing.T) {
	info := checkSrc(t, `
let x = 1 + 2
let b = x < 3
let u = print_int x
let s = (1, true)
`)
	if got := topType(t, info, "x"); got != "int" {
		t.Errorf("x : %s, want int", got)
	}
	if got := topType(t, info, "b"); got != "bool" {
		t.Errorf("b : %s, want bool", got)
	}
	if got := topType(t, info, "u"); got != "unit" {
		t.Errorf("u : %s, want unit", got)
	}
	if got := topType(t, info, "s"); got != "int * bool" {
		t.Errorf("s : %s, want int * bool", got)
	}
}

func TestFunctionTypes(t *testing.T) {
	info := checkSrc(t, `
let add x y = x + y
let inc = add 1
`)
	if got := topType(t, info, "add"); got != "int -> int -> int" {
		t.Errorf("add : %s", got)
	}
	if got := topType(t, info, "inc"); got != "int -> int" {
		t.Errorf("inc : %s", got)
	}
}

func TestPolymorphicId(t *testing.T) {
	info := checkSrc(t, `
let id x = x
let a = id 1
let b = id true
`)
	if got := topType(t, info, "id"); got != "'a -> 'a" {
		t.Errorf("id : %s, want 'a -> 'a", got)
	}
	if got := topType(t, info, "a"); got != "int" {
		t.Errorf("a : %s", got)
	}
	if got := topType(t, info, "b"); got != "bool" {
		t.Errorf("b : %s", got)
	}
}

func TestPolymorphicList(t *testing.T) {
	info := checkSrc(t, `
let rec append xs ys =
  match xs with
  | [] -> ys
  | x :: rest -> x :: append rest ys
`)
	if got := topType(t, info, "append"); got != "'a list -> 'a list -> 'a list" {
		t.Errorf("append : %s", got)
	}
}

func TestRecGroupSharedVars(t *testing.T) {
	info := checkSrc(t, `
let rec f x = g x
and g y = f y
`)
	// f and g share their quantified variables through one group.
	sf := info.TopScheme["f"]
	sg := info.TopScheme["g"]
	if !sf.IsPoly() || !sg.IsPoly() {
		t.Fatalf("f and g should be polymorphic: f=%s g=%s", sf, sg)
	}
	if sf.Group != sg.Group {
		t.Errorf("f and g should share a generalization group")
	}
}

func TestHigherOrder(t *testing.T) {
	info := checkSrc(t, `
let rec map f xs =
  match xs with
  | [] -> []
  | x :: rest -> f x :: map f rest
let doubled = map (fun x -> x * 2) [1; 2; 3]
`)
	if got := topType(t, info, "map"); got != "('a -> 'b) -> 'a list -> 'b list" {
		t.Errorf("map : %s", got)
	}
	if got := topType(t, info, "doubled"); got != "int list" {
		t.Errorf("doubled : %s", got)
	}
}

func TestDatatypes(t *testing.T) {
	info := checkSrc(t, `
type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
let rec size t =
  match t with
  | Leaf -> 0
  | Node (l, _, r) -> 1 + size l + size r
let t1 = Node (Leaf, 5, Leaf)
`)
	if got := topType(t, info, "size"); got != "'a tree -> int" {
		t.Errorf("size : %s", got)
	}
	if got := topType(t, info, "t1"); got != "int tree" {
		t.Errorf("t1 : %s", got)
	}
	data := info.Datatypes["tree"]
	if data.BoxedCtors != 1 {
		t.Errorf("tree has %d boxed ctors, want 1 (tagless sum layout)", data.BoxedCtors)
	}
}

func TestVariantTags(t *testing.T) {
	info := checkSrc(t, `
type shape = Point | Circle of int | Rect of int * int | Origin
let s = Rect (3, 4)
`)
	data := info.Datatypes["shape"]
	if data.BoxedCtors != 2 {
		t.Errorf("shape: %d boxed ctors, want 2", data.BoxedCtors)
	}
	// Nullary tags count separately from boxed tags.
	var point, circle, rect, origin *CtorInfo
	for _, c := range data.Ctors {
		switch c.Name {
		case "Point":
			point = c
		case "Circle":
			circle = c
		case "Rect":
			rect = c
		case "Origin":
			origin = c
		}
	}
	if point.Tag != 0 || origin.Tag != 1 {
		t.Errorf("nullary tags: Point=%d Origin=%d, want 0,1", point.Tag, origin.Tag)
	}
	if circle.Tag != 0 || rect.Tag != 1 {
		t.Errorf("boxed tags: Circle=%d Rect=%d, want 0,1", circle.Tag, rect.Tag)
	}
}

func TestCtorSplat(t *testing.T) {
	info := checkSrc(t, `
type pair = P of int * bool
let p = P (1, true)
`)
	found := false
	for c, splat := range info.CtorSplat {
		if c.Name == "P" && splat {
			found = true
		}
	}
	if !found {
		t.Errorf("P (1, true) should be a splatted constructor application")
	}
}

func TestRefs(t *testing.T) {
	info := checkSrc(t, `
let r = ref 0
let bump () = r := !r + 1
let v = !r
`)
	if got := topType(t, info, "r"); got != "int ref" {
		t.Errorf("r : %s", got)
	}
	if got := topType(t, info, "v"); got != "int" {
		t.Errorf("v : %s", got)
	}
}

func TestValueRestriction(t *testing.T) {
	// ref [] must not generalize; its element type defaults to int.
	info := checkSrc(t, `let r = ref []`)
	s := info.TopScheme["r"]
	if s.IsPoly() {
		t.Fatalf("ref [] generalized: %s — value restriction violated", s)
	}
	if got := s.String(); got != "int list ref" {
		t.Errorf("r : %s, want int list ref (weak var defaulted)", got)
	}
}

func TestValueRestrictionAllowsValues(t *testing.T) {
	info := checkSrc(t, `
let n = []
let pairfn = (fun x -> x, [])
`)
	if got := topType(t, info, "n"); got != "'a list" {
		t.Errorf("n : %s, want 'a list", got)
	}
}

func TestInstRecorded(t *testing.T) {
	info := checkSrc(t, `
let id x = x
let a = id 7
`)
	var found bool
	for e, inst := range info.Inst {
		v, ok := e.(*ast.Var)
		if !ok || v.Name != "id" {
			continue
		}
		if len(inst) != 1 {
			t.Fatalf("id instantiation has %d types, want 1", len(inst))
		}
		if b, ok := Resolve(inst[0]).(*Base); !ok || b.Kind != IntK {
			t.Fatalf("id instantiated at %s, want int", TypeString(inst[0]))
		}
		found = true
	}
	if !found {
		t.Fatal("no instantiation recorded for id occurrence")
	}
}

func TestMonomorphicRecursion(t *testing.T) {
	// Inside its own body, a recursive function is monomorphic.
	wantErr(t, `
let rec f x = let _ = f true in f 1
let main () = f 2
`, "cannot unify")
}

func TestErrors(t *testing.T) {
	wantErr(t, `let x = 1 + true`, "cannot unify")
	wantErr(t, `let x = if 1 then 2 else 3`, "cannot unify")
	wantErr(t, `let x = if true then 1 else false`, "cannot unify")
	wantErr(t, `let x = y + 1`, "unbound variable")
	wantErr(t, `let f x = x x`, "occurs check")
	wantErr(t, `let x = match [1] with | [] -> 0 | true :: _ -> 1`, "cannot unify")
	wantErr(t, `type t = A of int
let x = A`, "expects 1 argument")
	wantErr(t, `let x = Bogus 3`, "unknown constructor")
	wantErr(t, `type t = A
type t = B`, "redeclared")
	wantErr(t, `let x = [1] = [2]`, "equality")
	wantErr(t, `let f x y = x = y
let main () = f [] []`, "equality")
	wantErr(t, `let x = (1 : bool)`, "cannot unify")
	wantErr(t, `let f (x : int) = x && true`, "cannot unify")
}

func TestAnnotationRestricts(t *testing.T) {
	info := checkSrc(t, `let f (x : int) = x`)
	if got := topType(t, info, "f"); got != "int -> int" {
		t.Errorf("f : %s, want int -> int", got)
	}
}

func TestNestedPolymorphicLet(t *testing.T) {
	info := checkSrc(t, `
let outer () =
  let pairup x = (x, x) in
  (pairup 1, pairup true)
`)
	if got := topType(t, info, "outer"); got != "unit -> (int * int) * (bool * bool)" {
		t.Errorf("outer : %s", got)
	}
}

func TestMatchPatternTypes(t *testing.T) {
	info := checkSrc(t, `
type 'a opt = None | Some of 'a
let get d o =
  match o with
  | None -> d
  | Some v -> v
`)
	if got := topType(t, info, "get"); got != "'a -> 'a opt -> 'a" {
		t.Errorf("get : %s", got)
	}
}

func TestSeqRequiresUnit(t *testing.T) {
	wantErr(t, `let x = 3; 4`, "cannot unify")
	checkSrc(t, `let x = print_int 3; 4`)
}

func TestPolymorphicEqualityRejected(t *testing.T) {
	wantErr(t, `let eq x y = x = y`, "polymorphic equality")
}

func TestStringType(t *testing.T) {
	info := checkSrc(t, `let greet () = print_string "hi"`)
	if got := topType(t, info, "greet"); got != "unit -> unit" {
		t.Errorf("greet : %s", got)
	}
}

func TestDeepDatatype(t *testing.T) {
	info := checkSrc(t, `
type expr =
  | Num of int
  | Add of expr * expr
  | Mul of expr * expr
  | Neg of expr

let rec eval e =
  match e with
  | Num n -> n
  | Add (a, b) -> eval a + eval b
  | Mul (a, b) -> eval a * eval b
  | Neg a -> 0 - eval a
`)
	if got := topType(t, info, "eval"); got != "expr -> int" {
		t.Errorf("eval : %s", got)
	}
	if info.Datatypes["expr"].BoxedCtors != 4 {
		t.Errorf("expr should have 4 boxed ctors")
	}
}
