package types

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tagfree/internal/mlang/parser"
)

// randType builds a random ground type of bounded depth.
func randType(rng *rand.Rand, depth int) Type {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return Int
		case 1:
			return Bool
		default:
			return Unit
		}
	}
	switch rng.Intn(5) {
	case 0:
		return &Arrow{Dom: randType(rng, depth-1), Cod: randType(rng, depth-1)}
	case 1:
		n := 2 + rng.Intn(2)
		elems := make([]Type, n)
		for i := range elems {
			elems[i] = randType(rng, depth-1)
		}
		return &TupleT{Elems: elems}
	case 2:
		return &Con{Name: "ref", Args: []Type{randType(rng, depth-1)}}
	default:
		return randType(rng, depth-1)
	}
}

func TestEqualReflexiveProperty(t *testing.T) {
	f := func(seed int64, d uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := randType(rng, int(d%4))
		return Equal(ty, ty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualDistinguishesStructure(t *testing.T) {
	a := &Arrow{Dom: Int, Cod: Bool}
	b := &Arrow{Dom: Bool, Cod: Int}
	if Equal(a, b) {
		t.Fatal("distinct arrows compare equal")
	}
	if Equal(&TupleT{Elems: []Type{Int, Int}}, &TupleT{Elems: []Type{Int, Int, Int}}) {
		t.Fatal("tuples of different widths compare equal")
	}
}

// TestUnifyMakesTypesEqual: after successfully checking a program whose
// annotation forces two sides together, the recorded types are Equal.
func TestUnifyMakesTypesEqual(t *testing.T) {
	prog, err := parser.Parse(`
let f (x : int) = x
let g y = f y
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	sf := info.TopScheme["f"]
	sg := info.TopScheme["g"]
	if !Equal(sf.Body, sg.Body) {
		t.Fatalf("f and g should have equal types: %s vs %s", sf, sg)
	}
}

// TestResolveIdempotent: resolving twice equals resolving once, even
// through chained links.
func TestResolveIdempotent(t *testing.T) {
	v1 := &Var{ID: 1}
	v2 := &Var{ID: 2}
	v1.Link = v2
	v2.Link = Int
	r1 := Resolve(v1)
	r2 := Resolve(r1)
	if r1 != r2 || r1 != Type(Int) {
		t.Fatalf("resolve chain broken: %v %v", r1, r2)
	}
}

// TestTypeStringStable: printing is deterministic for the same type.
func TestTypeStringStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := randType(rng, 3)
		return TypeString(ty) == TypeString(ty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFreeVarsAfterDefaulting: a checked program has no free unquantified
// variables left in any recorded type.
func TestFreeVarsAfterDefaulting(t *testing.T) {
	prog, err := parser.Parse(`
let r = ref []
let rec map f xs = match xs with | [] -> [] | x :: rest -> f x :: map f rest
let main () = (match !r with | [] -> 0 | x :: _ -> x) + (match map (fun x -> x) [1] with | x :: _ -> x | [] -> 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	for e, ty := range info.ExprType {
		if vs := FreeVars(ty); len(vs) != 0 {
			t.Fatalf("expression at %v has free vars in type %s", e.Pos(), TypeString(ty))
		}
	}
}

// TestSchemeInstantiationFreshness: instantiating a polymorphic scheme at
// two occurrences must produce independent types (unifying one occurrence
// must not constrain the other).
func TestSchemeInstantiationFreshness(t *testing.T) {
	prog, err := parser.Parse(`
let id x = x
let a = id 1
let b = id true
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.TopScheme["a"].String(); got != "int" {
		t.Errorf("a : %s", got)
	}
	if got := info.TopScheme["b"].String(); got != "bool" {
		t.Errorf("b : %s", got)
	}
}
