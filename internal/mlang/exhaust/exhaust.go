// Package exhaust implements pattern-match exhaustiveness and redundancy
// checking for MinML, using the classical usefulness construction
// (Maranget-style specialization/default matrices).
//
// Missing cases matter doubly in this system: a match failure is a runtime
// trap, and the §2.3 variant-record treatment relies on the compiler
// knowing exactly which constructors a scrutinee can carry. The checker
// reports a warning per inexhaustive match (with an example of an
// unmatched case) and per redundant arm.
package exhaust

import (
	"fmt"
	"strings"

	"tagfree/internal/mlang/ast"
	"tagfree/internal/mlang/token"
	"tagfree/internal/mlang/types"
)

// Warning is one diagnostic.
type Warning struct {
	Pos token.Pos
	Msg string
}

// String renders the warning.
func (w Warning) String() string { return fmt.Sprintf("%s: warning: %s", w.Pos, w.Msg) }

// Check analyzes every match expression in the program.
func Check(prog *ast.Program, info *types.Info) []Warning {
	c := &checker{info: info}
	for _, d := range prog.Decls {
		if vd, ok := d.(*ast.ValDecl); ok {
			for _, b := range vd.Binds {
				c.walkExpr(b.Expr)
			}
		}
	}
	return c.warnings
}

type checker struct {
	info     *types.Info
	warnings []Warning
}

func (c *checker) warnf(pos token.Pos, format string, args ...any) {
	c.warnings = append(c.warnings, Warning{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ctor:
		for _, a := range e.Args {
			c.walkExpr(a)
		}
	case *ast.App:
		c.walkExpr(e.Fn)
		c.walkExpr(e.Arg)
	case *ast.Lam:
		c.walkExpr(e.Body)
	case *ast.Let:
		for _, b := range e.Binds {
			c.walkExpr(b.Expr)
		}
		c.walkExpr(e.Body)
	case *ast.If:
		c.walkExpr(e.Cond)
		c.walkExpr(e.Then)
		c.walkExpr(e.Else)
	case *ast.Match:
		c.checkMatch(e)
		c.walkExpr(e.Scrut)
		for _, arm := range e.Arms {
			c.walkExpr(arm.Body)
		}
	case *ast.Tuple:
		for _, el := range e.Elems {
			c.walkExpr(el)
		}
	case *ast.Prim:
		for _, a := range e.Args {
			c.walkExpr(a)
		}
	case *ast.Seq:
		c.walkExpr(e.First)
		c.walkExpr(e.Rest)
	case *ast.Ann:
		c.walkExpr(e.Expr)
	}
}

func (c *checker) checkMatch(m *ast.Match) {
	scrutType := c.info.ExprType[m.Scrut]
	rows := make([]patRow, 0, len(m.Arms))
	for i, arm := range m.Arms {
		row := patRow{pats: []pat{c.convert(arm.Pat)}}
		if !useful(rows, row) {
			c.warnf(arm.P, "match arm %d is redundant: earlier arms cover it", i+1)
		}
		rows = append(rows, row)
	}
	witnessRow := patRow{pats: []pat{wildcardOf(c, scrutType)}}
	if w, isUseful := usefulWitness(rows, witnessRow); isUseful {
		c.warnf(m.P, "match is not exhaustive; for example %s is not matched", w[0])
	}
}

// ---------------------------------------------------------------------------
// Internal pattern form.
// ---------------------------------------------------------------------------

// pat is a normalized pattern: a wildcard or a constructor with subpatterns.
type pat struct {
	wild bool
	// head identifies the constructor: for datatypes the CtorInfo, for
	// tuples "(,)", for literals their spelling.
	head string
	// complete lists the full constructor set of the head's type when it is
	// finite (datatype constructors, bools, unit, tuples); nil for integers.
	complete []headInfo
	arity    int
	args     []pat
	// ty is carried on wildcards so witnesses can be typed.
	ty types.Type
}

// headInfo names one constructor of a complete signature.
type headInfo struct {
	name  string
	arity int
	// mkSub builds the wildcard subpatterns for a witness.
	subTypes []types.Type
}

func (p pat) String() string {
	if p.wild {
		return "_"
	}
	if p.head == "(,)" {
		parts := make([]string, len(p.args))
		for i, a := range p.args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	if p.head == "::" && len(p.args) == 2 {
		return p.args[0].String() + " :: " + p.args[1].String()
	}
	if len(p.args) == 0 {
		return p.head
	}
	parts := make([]string, len(p.args))
	for i, a := range p.args {
		parts[i] = a.String()
	}
	return p.head + " (" + strings.Join(parts, ", ") + ")"
}

type patRow struct{ pats []pat }

// convert normalizes an AST pattern.
func (c *checker) convert(p ast.Pattern) pat {
	switch p := p.(type) {
	case *ast.PWild:
		return pat{wild: true, ty: c.info.PatType[p]}
	case *ast.PVar:
		return pat{wild: true, ty: c.info.PatType[p]}
	case *ast.PUnit:
		return pat{head: "()", complete: []headInfo{{name: "()"}}}
	case *ast.PBool:
		name := "false"
		if p.Val {
			name = "true"
		}
		return pat{head: name, complete: boolSig()}
	case *ast.PInt:
		return pat{head: fmt.Sprint(p.Val)} // integers: open signature
	case *ast.PTuple:
		args := make([]pat, len(p.Elems))
		tys := make([]types.Type, len(p.Elems))
		for i, el := range p.Elems {
			args[i] = c.convert(el)
			tys[i] = c.info.PatType[el]
		}
		return pat{head: "(,)", arity: len(args), args: args,
			complete: []headInfo{{name: "(,)", arity: len(args), subTypes: tys}}}
	case *ast.PCtor:
		ci := c.info.PatCtor[p]
		inst := c.info.PatInst[p]
		argPats := p.Args
		if c.info.PatSplat[p] {
			argPats = argPats[0].(*ast.PTuple).Elems
		}
		args := make([]pat, len(argPats))
		for i, a := range argPats {
			args[i] = c.convert(a)
		}
		return pat{head: ci.Name, arity: len(ci.Args), args: args,
			complete: dataSig(ci.Data, inst)}
	}
	panic("convert: unreachable")
}

func boolSig() []headInfo {
	return []headInfo{{name: "true"}, {name: "false"}}
}

func dataSig(d *types.Data, inst []types.Type) []headInfo {
	out := make([]headInfo, 0, len(d.Ctors))
	for _, ci := range d.Ctors {
		out = append(out, headInfo{
			name:     ci.Name,
			arity:    len(ci.Args),
			subTypes: ci.Instantiate(inst),
		})
	}
	return out
}

// wildcardOf builds a typed wildcard for the scrutinee.
func wildcardOf(c *checker, t types.Type) pat {
	return pat{wild: true, ty: t}
}

// signatureOf returns the complete signature for a type, or nil when the
// type is open (integers, strings, functions, parametric positions).
func signatureOf(t types.Type) []headInfo {
	switch t := types.Resolve(t).(type) {
	case *types.Base:
		switch t.Kind {
		case types.BoolK:
			return boolSig()
		case types.UnitK:
			return []headInfo{{name: "()"}}
		}
		return nil
	case *types.TupleT:
		return []headInfo{{name: "(,)", arity: len(t.Elems), subTypes: t.Elems}}
	case *types.Con:
		if t.Data == nil {
			return nil // ref: treated as open (no ref patterns exist)
		}
		return dataSig(t.Data, t.Args)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Usefulness.
// ---------------------------------------------------------------------------

// useful reports whether row q matches some value no row of P matches.
func useful(P []patRow, q patRow) bool {
	_, u := usefulWitness(P, q)
	return u
}

// usefulWitness additionally produces an example value vector (as pattern
// strings) matched by q and none of P.
func usefulWitness(P []patRow, q patRow) ([]string, bool) {
	if len(q.pats) == 0 {
		if len(P) == 0 {
			return nil, true
		}
		return nil, false
	}
	first := q.pats[0]

	if !first.wild {
		// Specialize on first's constructor.
		Pspec := specialize(P, first.head, len(first.args))
		qspec := patRow{pats: append(append([]pat{}, first.args...), q.pats[1:]...)}
		w, u := usefulWitness(Pspec, qspec)
		if !u {
			return nil, false
		}
		return append([]string{rebuild(first, w[:len(first.args)])}, w[len(first.args):]...), true
	}

	// Wildcard: compare the constructors present in P's first column with
	// the column type's full signature. Specialization happens only when
	// the present set is complete (Maranget's condition — it also ensures
	// termination on recursive datatypes); otherwise the default matrix
	// applies and the witness names a missing constructor.
	sig := columnSignature(P, first)
	present := map[string]bool{}
	for _, row := range P {
		if p := row.pats[0]; !p.wild {
			present[p.head] = true
		}
	}
	complete := sig != nil
	if complete {
		for _, h := range sig {
			if !present[h.name] {
				complete = false
				break
			}
		}
	}

	if complete {
		for _, h := range sig {
			sub := make([]pat, h.arity)
			for i := range sub {
				var ty types.Type
				if i < len(h.subTypes) {
					ty = h.subTypes[i]
				}
				sub[i] = pat{wild: true, ty: ty}
			}
			Pspec := specialize(P, h.name, h.arity)
			qspec := patRow{pats: append(append([]pat{}, sub...), q.pats[1:]...)}
			if w, u := usefulWitness(Pspec, qspec); u {
				head := pat{head: h.name, arity: h.arity, args: sub}
				return append([]string{rebuild(head, w[:h.arity])}, w[h.arity:]...), true
			}
		}
		return nil, false
	}

	// Incomplete (or open) signature: the default matrix decides, and the
	// witness is a constructor absent from the column.
	Pdef := defaultMatrix(P)
	w, u := usefulWitness(Pdef, patRow{pats: q.pats[1:]})
	if !u {
		return nil, false
	}
	witness := "_"
	switch {
	case sig != nil:
		for _, h := range sig {
			if present[h.name] {
				continue
			}
			sub := make([]string, h.arity)
			for i := range sub {
				sub[i] = "_"
			}
			witness = rebuild(pat{head: h.name, arity: h.arity, args: make([]pat, h.arity)}, sub)
			break
		}
	case len(present) > 0:
		witness = openWitness(P, first)
	}
	return append([]string{witness}, w...), true
}

// columnSignature returns the full signature governing the first column,
// preferring the pattern's own type and falling back to the signature
// recorded on the column's constructor patterns.
func columnSignature(P []patRow, first pat) []headInfo {
	if sig := signatureOf(first.ty); sig != nil {
		return sig
	}
	for _, row := range P {
		p := row.pats[0]
		if !p.wild && p.complete != nil {
			return p.complete
		}
	}
	return nil
}

// specialize builds S(c, P).
func specialize(P []patRow, head string, arity int) []patRow {
	var out []patRow
	for _, row := range P {
		p := row.pats[0]
		switch {
		case p.wild:
			sub := make([]pat, arity)
			for i := range sub {
				sub[i] = pat{wild: true}
			}
			out = append(out, patRow{pats: append(sub, row.pats[1:]...)})
		case p.head == head:
			out = append(out, patRow{pats: append(append([]pat{}, p.args...), row.pats[1:]...)})
		}
	}
	return out
}

// defaultMatrix builds D(P).
func defaultMatrix(P []patRow) []patRow {
	var out []patRow
	for _, row := range P {
		if row.pats[0].wild {
			out = append(out, patRow{pats: row.pats[1:]})
		}
	}
	return out
}

// rebuild renders a constructor applied to witness strings.
func rebuild(head pat, args []string) string {
	if head.wild {
		return "_"
	}
	if head.head == "(,)" {
		return "(" + strings.Join(args, ", ") + ")"
	}
	if head.head == "::" && len(args) == 2 {
		a := args[0]
		if strings.Contains(a, "::") {
			a = "(" + a + ")"
		}
		return a + " :: " + args[1]
	}
	if len(args) == 0 {
		return head.head
	}
	return head.head + " (" + strings.Join(args, ", ") + ")"
}

// openWitness picks an example value outside the first-column literals
// (for integers: one more than the largest literal).
func openWitness(P []patRow, first pat) string {
	max := int64(-1 << 62)
	seen := false
	for _, row := range P {
		p := row.pats[0]
		if p.wild {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(p.head, "%d", &v); err == nil {
			seen = true
			if v > max {
				max = v
			}
		}
	}
	if seen {
		return fmt.Sprint(max + 1)
	}
	return "_"
}
