package exhaust

import (
	"strings"
	"testing"

	"tagfree/internal/mlang/parser"
	"tagfree/internal/mlang/types"
)

func check(t *testing.T, src string) []Warning {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("types: %v", err)
	}
	return Check(prog, info)
}

func wantWarning(t *testing.T, ws []Warning, substr string) {
	t.Helper()
	for _, w := range ws {
		if strings.Contains(w.Msg, substr) {
			return
		}
	}
	t.Fatalf("no warning containing %q; got %v", substr, ws)
}

func wantClean(t *testing.T, ws []Warning) {
	t.Helper()
	if len(ws) != 0 {
		t.Fatalf("unexpected warnings: %v", ws)
	}
}

func TestExhaustiveList(t *testing.T) {
	wantClean(t, check(t, `
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = sum [1]
`))
}

func TestMissingNilCase(t *testing.T) {
	ws := check(t, `
let head xs = match xs with | x :: _ -> x
let main () = head [1]
`)
	wantWarning(t, ws, "not exhaustive")
	wantWarning(t, ws, "[]")
}

func TestMissingConsCase(t *testing.T) {
	ws := check(t, `
let isnil xs = match xs with | [] -> true
let main () = if isnil [1] then 1 else 0
`)
	wantWarning(t, ws, "not exhaustive")
	wantWarning(t, ws, "::")
}

func TestMissingVariant(t *testing.T) {
	ws := check(t, `
type shape = Point | Circle of int | Rect of int * int
let f s = match s with | Point -> 0 | Circle r -> r
let main () = f Point
`)
	wantWarning(t, ws, "Rect")
}

func TestDeepMissing(t *testing.T) {
	// Missing: Some (false).
	ws := check(t, `
type 'a opt = None | Some of 'a
let f o = match o with | None -> 0 | Some true -> 1
let main () = f None
`)
	wantWarning(t, ws, "Some (false)")
}

func TestRedundantArm(t *testing.T) {
	ws := check(t, `
let f xs = match xs with | [] -> 0 | _ -> 1 | x :: _ -> x
let main () = f [1]
`)
	wantWarning(t, ws, "redundant")
}

func TestRedundantDuplicateCtor(t *testing.T) {
	ws := check(t, `
type t = A | B
let f v = match v with | A -> 0 | B -> 1 | A -> 2
let main () = f A
`)
	wantWarning(t, ws, "arm 3 is redundant")
}

func TestBoolComplete(t *testing.T) {
	wantClean(t, check(t, `
let f b = match b with | true -> 1 | false -> 0
let main () = f true
`))
	ws := check(t, `
let g b = match b with | true -> 1
let main () = g true
`)
	wantWarning(t, ws, "false")
}

func TestIntsNeverExhaustive(t *testing.T) {
	ws := check(t, `
let f n = match n with | 0 -> 0 | 1 -> 1
let main () = f 2
`)
	wantWarning(t, ws, "not exhaustive")
	// The witness avoids the matched literals.
	wantWarning(t, ws, "2")
	wantClean(t, check(t, `
let f n = match n with | 0 -> 0 | _ -> 1
let main () = f 2
`))
}

func TestTuplePatterns(t *testing.T) {
	wantClean(t, check(t, `
let f p = match p with | (a, b) -> a + b
let main () = f (1, 2)
`))
	ws := check(t, `
let g p = match p with | (true, x) -> x
let main () = g (true, 1)
`)
	wantWarning(t, ws, "false")
}

func TestNestedMatchWalked(t *testing.T) {
	// The inexhaustive match sits inside a lambda inside a let body.
	ws := check(t, `
let main () =
  let f = fun xs -> (match xs with | x :: _ -> x) in
  f [1]
`)
	wantWarning(t, ws, "not exhaustive")
}

func TestExhaustiveTree(t *testing.T) {
	wantClean(t, check(t, `
type tree = Leaf | Node of tree * int * tree
let rec sum t = match t with | Leaf -> 0 | Node (l, v, r) -> sum l + v + sum r
let main () = sum Leaf
`))
}

func TestWildcardCoversEverything(t *testing.T) {
	wantClean(t, check(t, `
type shape = Point | Circle of int | Rect of int * int
let f s = match s with | Circle r -> r | _ -> 0
let main () = f Point
`))
}

func TestUnitMatchComplete(t *testing.T) {
	wantClean(t, check(t, `
let f u = match u with | () -> 1
let main () = f ()
`))
}

func TestDeepTreeWitness(t *testing.T) {
	// The missing case is two levels deep.
	ws := check(t, `
type tree = Leaf | Node of tree * int * tree
let f t =
  match t with
  | Leaf -> 0
  | Node (Leaf, v, _) -> v
let main () = f Leaf
`)
	wantWarning(t, ws, "Node (Node")
}

func TestMixedLiteralAndCtor(t *testing.T) {
	ws := check(t, `
type 'a opt = None | Some of 'a
let f o = match o with | Some 0 -> 0 | None -> 1
let main () = f None
`)
	wantWarning(t, ws, "not exhaustive")
}

func TestNestedListsExhaustive(t *testing.T) {
	wantClean(t, check(t, `
let f xs =
  match xs with
  | [] -> 0
  | [] :: _ -> 1
  | (x :: _) :: _ -> x
let main () = f [[1]]
`))
}

func TestRedundancyAfterWildcardOnly(t *testing.T) {
	ws := check(t, `
let f n = match n with | _ -> 0 | 1 -> 1
let main () = f 5
`)
	wantWarning(t, ws, "arm 2 is redundant")
	// And a wildcard-first match is exhaustive: exactly one warning.
	if len(ws) != 1 {
		t.Fatalf("want exactly the redundancy warning, got %v", ws)
	}
}

func TestTupleOfDatatypes(t *testing.T) {
	ws := check(t, `
type t = A | B
let f p = match p with | (A, A) -> 0 | (B, B) -> 1
let main () = f (A, A)
`)
	wantWarning(t, ws, "not exhaustive")
}
