// Package ast defines the abstract syntax tree of MinML.
//
// A program is a sequence of declarations: type (datatype) declarations and
// value bindings. The expression language is a small ML: literals,
// variables, applications, anonymous functions, let/let-rec, conditionals,
// pattern matching, tuples, list sugar, references, and sequencing.
package ast

import (
	"fmt"
	"strings"

	"tagfree/internal/mlang/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Type expressions (source-level type annotations and datatype declarations).
// ---------------------------------------------------------------------------

// TypeExpr is a source-level type expression.
type TypeExpr interface {
	Node
	typeExpr()
	String() string
}

// TEName is a named type, possibly applied to arguments: int, 'a list,
// ('a,'b) pair.
type TEName struct {
	P    token.Pos
	Name string
	Args []TypeExpr
}

// TEVar is a type variable 'a.
type TEVar struct {
	P    token.Pos
	Name string
}

// TEArrow is a function type t1 -> t2.
type TEArrow struct {
	P        token.Pos
	Dom, Cod TypeExpr
}

// TETuple is a product type t1 * t2 * ...
type TETuple struct {
	P     token.Pos
	Elems []TypeExpr
}

func (t *TEName) Pos() token.Pos  { return t.P }
func (t *TEVar) Pos() token.Pos   { return t.P }
func (t *TEArrow) Pos() token.Pos { return t.P }
func (t *TETuple) Pos() token.Pos { return t.P }

func (*TEName) typeExpr()  {}
func (*TEVar) typeExpr()   {}
func (*TEArrow) typeExpr() {}
func (*TETuple) typeExpr() {}

func (t *TEName) String() string {
	if len(t.Args) == 0 {
		return t.Name
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	if len(parts) == 1 {
		return parts[0] + " " + t.Name
	}
	return "(" + strings.Join(parts, ", ") + ") " + t.Name
}

func (t *TEVar) String() string   { return "'" + t.Name }
func (t *TEArrow) String() string { return "(" + t.Dom.String() + " -> " + t.Cod.String() + ")" }
func (t *TETuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " * ") + ")"
}

// ---------------------------------------------------------------------------
// Patterns.
// ---------------------------------------------------------------------------

// Pattern is a match pattern.
type Pattern interface {
	Node
	pattern()
	String() string
}

// PWild is the wildcard pattern _.
type PWild struct{ P token.Pos }

// PVar binds a variable.
type PVar struct {
	P    token.Pos
	Name string
}

// PInt matches an integer literal.
type PInt struct {
	P   token.Pos
	Val int64
}

// PBool matches true or false.
type PBool struct {
	P   token.Pos
	Val bool
}

// PUnit matches ().
type PUnit struct{ P token.Pos }

// PTuple matches a tuple.
type PTuple struct {
	P     token.Pos
	Elems []Pattern
}

// PCtor matches a datatype constructor application. Nil/empty Args matches a
// nullary constructor. List patterns desugar to PCtor{"::"} and PCtor{"[]"}.
type PCtor struct {
	P    token.Pos
	Name string
	Args []Pattern
}

func (p *PWild) Pos() token.Pos  { return p.P }
func (p *PVar) Pos() token.Pos   { return p.P }
func (p *PInt) Pos() token.Pos   { return p.P }
func (p *PBool) Pos() token.Pos  { return p.P }
func (p *PUnit) Pos() token.Pos  { return p.P }
func (p *PTuple) Pos() token.Pos { return p.P }
func (p *PCtor) Pos() token.Pos  { return p.P }

func (*PWild) pattern()  {}
func (*PVar) pattern()   {}
func (*PInt) pattern()   {}
func (*PBool) pattern()  {}
func (*PUnit) pattern()  {}
func (*PTuple) pattern() {}
func (*PCtor) pattern()  {}

func (p *PWild) String() string { return "_" }
func (p *PVar) String() string  { return p.Name }
func (p *PInt) String() string  { return fmt.Sprint(p.Val) }
func (p *PBool) String() string { return fmt.Sprint(p.Val) }
func (p *PUnit) String() string { return "()" }
func (p *PTuple) String() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
func (p *PCtor) String() string {
	if p.Name == "::" && len(p.Args) == 2 {
		return p.Args[0].String() + " :: " + p.Args[1].String()
	}
	if len(p.Args) == 0 {
		return p.Name
	}
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return p.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

// Expr is an expression.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	P   token.Pos
	Val int64
}

// BoolLit is true or false.
type BoolLit struct {
	P   token.Pos
	Val bool
}

// UnitLit is ().
type UnitLit struct{ P token.Pos }

// StrLit is a string literal (only used by print_string).
type StrLit struct {
	P   token.Pos
	Val string
}

// Var is a variable reference.
type Var struct {
	P    token.Pos
	Name string
}

// Ctor is a constructor application; nullary constructors have no Args.
// List literals and :: desugar into Ctor nodes.
type Ctor struct {
	P    token.Pos
	Name string
	Args []Expr
}

// App is a function application f x (curried; multiple arguments are nested
// Apps).
type App struct {
	P       token.Pos
	Fn, Arg Expr
}

// Lam is an anonymous function fun x -> e (single parameter; multi-parameter
// functions are nested lambdas). ParamAnn is an optional source annotation on
// the parameter and may be nil.
type Lam struct {
	P        token.Pos
	Param    string
	ParamAnn TypeExpr
	Body     Expr
}

// Let is let [rec] bindings in body. Each binding may carry parameters
// (sugar for nested lambdas, already expanded by the parser) so Bound is
// always a plain expression.
type Let struct {
	P     token.Pos
	Rec   bool
	Binds []Bind
	Body  Expr
}

// Bind is a single let binding.
type Bind struct {
	P    token.Pos
	Name string
	Expr Expr
	Ann  TypeExpr // optional annotation, may be nil
}

// If is a conditional.
type If struct {
	P                token.Pos
	Cond, Then, Else Expr
}

// Match is pattern matching.
type Match struct {
	P     token.Pos
	Scrut Expr
	Arms  []Arm
}

// Arm is one match arm.
type Arm struct {
	P    token.Pos
	Pat  Pattern
	Body Expr
}

// Tuple is (e1, e2, ...), always with at least two elements.
type Tuple struct {
	P     token.Pos
	Elems []Expr
}

// Prim is a primitive operator application: arithmetic, comparison, boolean,
// and reference operators.
type Prim struct {
	P    token.Pos
	Op   PrimOp
	Args []Expr
}

// Seq is e1; e2 — evaluate e1 for effect, yield e2.
type Seq struct {
	P           token.Pos
	First, Rest Expr
}

// Ann is a type-annotated expression (e : t).
type Ann struct {
	P    token.Pos
	Expr Expr
	Type TypeExpr
}

func (e *IntLit) Pos() token.Pos  { return e.P }
func (e *BoolLit) Pos() token.Pos { return e.P }
func (e *UnitLit) Pos() token.Pos { return e.P }
func (e *StrLit) Pos() token.Pos  { return e.P }
func (e *Var) Pos() token.Pos     { return e.P }
func (e *Ctor) Pos() token.Pos    { return e.P }
func (e *App) Pos() token.Pos     { return e.P }
func (e *Lam) Pos() token.Pos     { return e.P }
func (e *Let) Pos() token.Pos     { return e.P }
func (e *If) Pos() token.Pos      { return e.P }
func (e *Match) Pos() token.Pos   { return e.P }
func (e *Tuple) Pos() token.Pos   { return e.P }
func (e *Prim) Pos() token.Pos    { return e.P }
func (e *Seq) Pos() token.Pos     { return e.P }
func (e *Ann) Pos() token.Pos     { return e.P }

func (*IntLit) expr()  {}
func (*BoolLit) expr() {}
func (*UnitLit) expr() {}
func (*StrLit) expr()  {}
func (*Var) expr()     {}
func (*Ctor) expr()    {}
func (*App) expr()     {}
func (*Lam) expr()     {}
func (*Let) expr()     {}
func (*If) expr()      {}
func (*Match) expr()   {}
func (*Tuple) expr()   {}
func (*Prim) expr()    {}
func (*Seq) expr()     {}
func (*Ann) expr()     {}

// PrimOp enumerates the built-in operators.
type PrimOp int

// Primitive operators. Ref/Deref/Assign are the ML reference operations;
// the rest are arithmetic, comparison and boolean operators on base types.
const (
	OpAdd PrimOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // strict boolean and (short-circuit is desugared to If)
	OpOr
	OpNot
	OpRef    // ref e — allocate a reference cell
	OpDeref  // !e
	OpAssign // e1 := e2
)

var primNames = map[PrimOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "mod",
	OpNeg: "~-", OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "&&", OpOr: "||", OpNot: "not",
	OpRef: "ref", OpDeref: "!", OpAssign: ":=",
}

// String returns the surface spelling of the operator.
func (op PrimOp) String() string {
	if s, ok := primNames[op]; ok {
		return s
	}
	return fmt.Sprintf("PrimOp(%d)", int(op))
}

// ---------------------------------------------------------------------------
// Declarations and programs.
// ---------------------------------------------------------------------------

// Decl is a top-level declaration.
type Decl interface {
	Node
	decl()
}

// TypeDecl declares a datatype: type ('a,'b) name = C1 of t * t | C2 | ...
type TypeDecl struct {
	P      token.Pos
	Name   string
	Params []string // type parameter names, without the quote
	Ctors  []CtorDecl
}

// CtorDecl is one constructor declaration within a datatype.
type CtorDecl struct {
	P    token.Pos
	Name string
	Args []TypeExpr // empty for nullary constructors
}

// ValDecl is a top-level value binding: let [rec] name args = expr
// (and-joined groups become one ValDecl with several binds).
type ValDecl struct {
	P     token.Pos
	Rec   bool
	Binds []Bind
}

func (d *TypeDecl) Pos() token.Pos { return d.P }
func (d *ValDecl) Pos() token.Pos  { return d.P }

func (*TypeDecl) decl() {}
func (*ValDecl) decl()  {}

// Program is a parsed compilation unit.
type Program struct {
	Decls []Decl
}
