package lexer

import (
	"testing"

	"tagfree/internal/mlang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	l := New(src)
	var out []token.Kind
	for {
		tok := l.Next()
		out = append(out, tok.Kind)
		if tok.Kind == token.EOF {
			break
		}
	}
	if errs := l.Errors(); len(errs) > 0 {
		t.Fatalf("lexing %q: %v", src, errs[0])
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	cases := []struct {
		src  string
		want []token.Kind
	}{
		{"let x = 1", []token.Kind{token.LET, token.IDENT, token.EQ, token.INT, token.EOF}},
		{"x :: xs", []token.Kind{token.IDENT, token.CONS, token.IDENT, token.EOF}},
		{"a := !b", []token.Kind{token.IDENT, token.ASSIGN, token.BANG, token.IDENT, token.EOF}},
		{"(x : int)", []token.Kind{token.LPAREN, token.IDENT, token.COLON, token.IDENT, token.RPAREN, token.EOF}},
		{"fun x -> x", []token.Kind{token.FUN, token.IDENT, token.ARROW, token.IDENT, token.EOF}},
		{"a <> b <= c >= d < e > f", []token.Kind{
			token.IDENT, token.NE, token.IDENT, token.LE, token.IDENT,
			token.GE, token.IDENT, token.LT, token.IDENT, token.GT, token.IDENT, token.EOF}},
		{"x && y || z", []token.Kind{token.IDENT, token.AMPAMP, token.IDENT, token.BARBAR, token.IDENT, token.EOF}},
		{"[1; 2];;", []token.Kind{token.LBRACKET, token.INT, token.SEMI, token.INT, token.RBRACKET, token.SEMISEMI, token.EOF}},
		{"'a list", []token.Kind{token.TYVAR, token.IDENT, token.EOF}},
		{"_ | x", []token.Kind{token.UNDERSCORE, token.BAR, token.IDENT, token.EOF}},
		{"10 mod 3", []token.Kind{token.INT, token.MOD, token.INT, token.EOF}},
	}
	for _, c := range cases {
		got := kinds(t, c.src)
		if len(got) != len(c.want) {
			t.Fatalf("%q: got %v, want %v", c.src, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q token %d: got %v, want %v", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	l := New("lettuce let rec record")
	t1, t2, t3, t4 := l.Next(), l.Next(), l.Next(), l.Next()
	if t1.Kind != token.IDENT || t1.Text != "lettuce" {
		t.Errorf("got %v, want IDENT(lettuce)", t1)
	}
	if t2.Kind != token.LET {
		t.Errorf("got %v, want let", t2)
	}
	if t3.Kind != token.REC {
		t.Errorf("got %v, want rec", t3)
	}
	if t4.Kind != token.IDENT || t4.Text != "record" {
		t.Errorf("got %v, want IDENT(record)", t4)
	}
}

func TestConstructorNames(t *testing.T) {
	l := New("Some None Leaf2 x")
	for _, want := range []token.Kind{token.CTOR, token.CTOR, token.CTOR, token.IDENT} {
		tok := l.Next()
		if tok.Kind != want {
			t.Errorf("got %v, want %v", tok, want)
		}
	}
}

func TestNestedComments(t *testing.T) {
	got := kinds(t, "1 (* outer (* inner *) still outer *) 2")
	want := []token.Kind{token.INT, token.INT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("1 (* never ends")
	l.Next()
	l.Next()
	if len(l.Errors()) == 0 {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestPositions(t *testing.T) {
	l := New("let\n  x = 1")
	tok := l.Next()
	if tok.Pos.Line != 1 || tok.Pos.Col != 1 {
		t.Errorf("let at %v, want 1:1", tok.Pos)
	}
	tok = l.Next()
	if tok.Pos.Line != 2 || tok.Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", tok.Pos)
	}
}

func TestStringLiteral(t *testing.T) {
	l := New(`"hi\n\"there\""`)
	tok := l.Next()
	if tok.Kind != token.STRING {
		t.Fatalf("got %v, want STRING", tok)
	}
	if tok.Text != "hi\n\"there\"" {
		t.Errorf("got %q", tok.Text)
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("x # y")
	l.Next()
	tok := l.Next()
	if tok.Kind != token.ILLEGAL {
		t.Fatalf("got %v, want ILLEGAL", tok)
	}
	if len(l.Errors()) == 0 {
		t.Fatal("expected lexical error")
	}
}

func TestEOFForever(t *testing.T) {
	l := New("")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: got %v, want EOF", i, tok)
		}
	}
}

func TestPrimedIdent(t *testing.T) {
	// x' is a valid identifier; 'a is a type variable.
	l := New("x' 'a")
	t1 := l.Next()
	if t1.Kind != token.IDENT || t1.Text != "x'" {
		t.Errorf("got %v, want IDENT(x')", t1)
	}
	t2 := l.Next()
	if t2.Kind != token.TYVAR || t2.Text != "a" {
		t.Errorf("got %v, want TYVAR(a)", t2)
	}
}
