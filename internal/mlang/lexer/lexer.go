// Package lexer turns MinML source text into a token stream.
//
// The lexer is a straightforward hand-written scanner. It supports nested
// (* ... *) comments, decimal integer literals, primed type variables ('a),
// and distinguishes capitalized constructor names from ordinary identifiers,
// mirroring ML lexical conventions.
package lexer

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"tagfree/internal/mlang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: lexical error: %s", e.Pos, e.Msg) }

// Lexer scans a source string into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r
}

func (l *Lexer) next() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '\'' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// skipSpaceAndComments consumes whitespace and (possibly nested) comments.
func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.next()
		case r == '(' && l.peek2() == '*':
			start := l.pos()
			l.next() // (
			l.next() // *
			depth := 1
			for depth > 0 {
				c := l.next()
				if c == -1 {
					l.errorf(start, "unterminated comment")
					return
				}
				if c == '(' && l.peek() == '*' {
					l.next()
					depth++
				} else if c == '*' && l.peek() == ')' {
					l.next()
					depth--
				}
			}
		default:
			return
		}
	}
}

// Next returns the next token in the stream. After the end of input it
// returns EOF tokens forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	r := l.peek()
	if r == -1 {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	switch {
	case unicode.IsDigit(r):
		return l.scanInt(pos)
	case isIdentStart(r):
		return l.scanIdent(pos)
	case r == '\'':
		return l.scanTyVar(pos)
	case r == '"':
		return l.scanString(pos)
	}

	l.next()
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	switch r {
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '[':
		return mk(token.LBRACKET)
	case ']':
		return mk(token.RBRACKET)
	case ',':
		return mk(token.COMMA)
	case ';':
		if l.peek() == ';' {
			l.next()
			return mk(token.SEMISEMI)
		}
		return mk(token.SEMI)
	case ':':
		switch l.peek() {
		case ':':
			l.next()
			return mk(token.CONS)
		case '=':
			l.next()
			return mk(token.ASSIGN)
		}
		return mk(token.COLON)
	case '-':
		if l.peek() == '>' {
			l.next()
			return mk(token.ARROW)
		}
		return mk(token.MINUS)
	case '|':
		if l.peek() == '|' {
			l.next()
			return mk(token.BARBAR)
		}
		return mk(token.BAR)
	case '&':
		if l.peek() == '&' {
			l.next()
			return mk(token.AMPAMP)
		}
		l.errorf(pos, "unexpected character %q (did you mean &&?)", r)
		return token.Token{Kind: token.ILLEGAL, Text: string(r), Pos: pos}
	case '=':
		return mk(token.EQ)
	case '<':
		switch l.peek() {
		case '>':
			l.next()
			return mk(token.NE)
		case '=':
			l.next()
			return mk(token.LE)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.next()
			return mk(token.GE)
		}
		return mk(token.GT)
	case '+':
		return mk(token.PLUS)
	case '*':
		return mk(token.STAR)
	case '/':
		return mk(token.SLASH)
	case '!':
		return mk(token.BANG)
	}
	l.errorf(pos, "unexpected character %q", r)
	return token.Token{Kind: token.ILLEGAL, Text: string(r), Pos: pos}
}

func (l *Lexer) scanInt(pos token.Pos) token.Token {
	start := l.off
	for unicode.IsDigit(l.peek()) {
		l.next()
	}
	return token.Token{Kind: token.INT, Text: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	first := l.next()
	for isIdentPart(l.peek()) {
		l.next()
	}
	text := l.src[start:l.off]
	if text == "_" {
		return token.Token{Kind: token.UNDERSCORE, Pos: pos}
	}
	if k, ok := token.Keywords[text]; ok {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	if unicode.IsUpper(first) {
		return token.Token{Kind: token.CTOR, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Text: text, Pos: pos}
}

func (l *Lexer) scanTyVar(pos token.Pos) token.Token {
	l.next() // consume '
	start := l.off
	if !isIdentStart(l.peek()) {
		l.errorf(pos, "expected identifier after ' in type variable")
		return token.Token{Kind: token.ILLEGAL, Text: "'", Pos: pos}
	}
	for isIdentPart(l.peek()) {
		l.next()
	}
	return token.Token{Kind: token.TYVAR, Text: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.next() // opening quote
	var buf []rune
	for {
		r := l.next()
		switch r {
		case -1, '\n':
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Text: string(buf), Pos: pos}
		case '"':
			return token.Token{Kind: token.STRING, Text: string(buf), Pos: pos}
		case '\\':
			esc := l.next()
			switch esc {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '\\', '"':
				buf = append(buf, esc)
			default:
				l.errorf(pos, "unknown escape \\%c", esc)
			}
		default:
			buf = append(buf, r)
		}
	}
}

// All scans the entire input and returns every token up to and including the
// first EOF. It is a convenience for tests and the parser.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
