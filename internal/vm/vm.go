// Package vm implements the abstract machine that executes compiled MinML
// programs against the simulated heap.
//
// The stack is one flat word array holding activation records laid out as
// in Figure 1 of the paper: dynamic link, return address, then the frame's
// slots (parameters first). The return address stored in a callee's frame
// is the program counter of the call instruction itself, so collectors
// recover each frame's gc_word from the code stream at a fixed offset from
// it. Collection can happen only inside allocation instructions — the
// machine checks the heap before allocating and runs the collector at that
// safe point (§2.1); operands of allocation instructions are re-read from
// their slots afterwards, so a moving collector's updates are observed.
//
// In Appel and tagged modes the machine zero-fills every frame at entry:
// those collectors trace (or scan) all slots, so uninitialized slots must
// not contain stale words. The compiled and interpreted modes skip the
// zero-fill — their liveness-filtered maps never mention uninitialized
// slots, which is precisely the paper's critique of per-procedure
// descriptors (§1.1.1).
package vm

import (
	"bytes"
	"fmt"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/heap"
)

// RuntimeError is an execution failure (match failure, division by zero,
// heap exhaustion, step-limit overrun).
type RuntimeError struct {
	PC   int
	Func string
	Msg  string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s at pc %d: %s", e.Func, e.PC, e.Msg)
}

// Stats counts mutator work.
type Stats struct {
	Instructions    int64
	Calls           int64
	ClosCalls       int64
	Allocations     int64
	ZeroFilledWords int64
	MaxStackWords   int
	MaxFrameDepth   int
}

// VM executes one program.
type VM struct {
	Prog    *code.Program
	Heap    *heap.Heap
	Col     *gc.Collector
	Globals []code.Word
	Out     bytes.Buffer
	Stats   Stats

	// MaxSteps bounds execution (0 = 2^62).
	MaxSteps int64
	// GrowFactor, when > 1, enables the recovery ladder's growth rung:
	// when a collection leaves an allocation unsatisfied, the heap grows
	// by this factor until it fits or MaxHeapWords (0 = unbounded) caps it.
	GrowFactor   float64
	MaxHeapWords int

	// GCConcurrent arms mostly-concurrent marking (mark/sweep heaps without
	// a nursery). The single-task machine's safe points are its allocation
	// instructions: a cycle starts there when occupancy crosses
	// ConcTriggerPct, one budgeted mark slice runs per allocation while the
	// cycle is active, and the final pause re-scans the stack at the next
	// allocation after the gray queue drains. See gc/concurrent.go.
	GCConcurrent bool
	// ConcTriggerPct is the occupancy watermark, in percent of the heap's
	// words, that starts a concurrent cycle (0 = 75).
	ConcTriggerPct int

	// PoisonPruned turns any load of the liveness-guided collector's
	// PrunedWord sentinel into a runtime error — the debug mode that makes
	// heap-liveness verdicts falsifiable.
	PoisonPruned bool

	zeroFill bool
	stack    []code.Word
	sp       int
	shadow   []shadowFrame
	// concAbortSeen is the ConcAborts count at the last safe point; a delta
	// with no active cycle means the write barrier aborted mid-run and the
	// heap still needs a stop-the-world reclaim.
	concAbortSeen int64
	// concLastEnd is heap occupancy right after the last collection of any
	// kind — the trigger's hysteresis baseline (see concAdvance).
	concLastEnd int
}

// shadowFrame is interpreter bookkeeping only (function identity per
// frame); collectors never consult it — they recover identities from
// return addresses and gc_words, as the paper requires.
type shadowFrame struct {
	fidx int
	fp   int
}

// New builds a machine with a fresh semispace heap of semiWords words per
// space and a collector of the given strategy (which must match the
// program's representation).
func New(prog *code.Program, semiWords int, strat gc.Strategy) (*VM, error) {
	return NewWith(prog, heap.New(prog.Repr, semiWords), strat)
}

// NewWith builds a machine over a caller-constructed heap (e.g. a
// mark/sweep heap from heap.NewMarkSweep).
func NewWith(prog *code.Program, h *heap.Heap, strat gc.Strategy) (*VM, error) {
	col, err := gc.New(prog, h, strat)
	if err != nil {
		return nil, err
	}
	vm := &VM{
		Prog:     prog,
		Heap:     h,
		Col:      col,
		Globals:  make([]code.Word, len(prog.Globals)),
		zeroFill: strat == gc.StratAppel || strat == gc.StratTagged,
		stack:    make([]code.Word, 4096),
		MaxSteps: 1 << 62,
	}
	return vm, nil
}

// SetZeroFill overrides frame zero-filling (ablations that widen frame
// maps must not let the collector see uninitialized slots).
func (vm *VM) SetZeroFill(on bool) { vm.zeroFill = on }

// Run executes the program: the init function, then main applied to unit.
// It returns main's result word (decode with code.DecodeInt etc.).
func (vm *VM) Run() (code.Word, error) {
	if _, err := vm.call(vm.Prog.InitFunc, nil); err != nil {
		return 0, err
	}
	res, err := vm.call(vm.Prog.MainFunc, []code.Word{code.EncodeInt(vm.Prog.Repr, 0)})
	if err == nil && vm.Col.ConcActive() {
		// The program ended with a cycle in flight: finish it over the
		// globals alone so the sweep, the telemetry record and the verifier
		// all still run rather than abandoning a half-marked heap.
		vm.Col.ConcFinish(nil, vm.Globals)
	}
	return res, err
}

func (vm *VM) errf(pc, fidx int, format string, args ...any) *RuntimeError {
	name := "?"
	if fidx >= 0 && fidx < len(vm.Prog.Funcs) {
		name = vm.Prog.Funcs[fidx].Name
	}
	return &RuntimeError{PC: pc, Func: name, Msg: fmt.Sprintf(format, args...)}
}

func (vm *VM) ensureStack(n int) {
	if n <= len(vm.stack) {
		return
	}
	ns := make([]code.Word, n*2)
	copy(ns, vm.stack)
	vm.stack = ns
}

// pushFrame creates a frame for fidx and returns its frame pointer.
func (vm *VM) pushFrame(fidx, retPC, callerFP int) int {
	fi := vm.Prog.Funcs[fidx]
	fp := vm.sp
	size := 2 + fi.NSlots
	vm.ensureStack(fp + size)
	vm.stack[fp] = code.Word(callerFP)
	vm.stack[fp+1] = code.Word(retPC)
	if vm.zeroFill {
		for i := 0; i < fi.NSlots; i++ {
			vm.stack[fp+2+i] = 0
		}
		vm.Stats.ZeroFilledWords += int64(fi.NSlots)
	}
	vm.sp = fp + size
	if vm.sp > vm.Stats.MaxStackWords {
		vm.Stats.MaxStackWords = vm.sp
	}
	vm.shadow = append(vm.shadow, shadowFrame{fidx: fidx, fp: fp})
	if len(vm.shadow) > vm.Stats.MaxFrameDepth {
		vm.Stats.MaxFrameDepth = len(vm.shadow)
	}
	return fp
}

func (vm *VM) atom(fp int, w code.Word) code.Word {
	kind, idx := code.DecodeAtom(w)
	switch kind {
	case code.AtomSlot:
		return vm.stack[fp+2+idx]
	case code.AtomConst:
		return vm.Prog.Consts[idx]
	default:
		return vm.Globals[idx]
	}
}

// collect runs a garbage collection at the current safe point (a minor one
// when the heap has a nursery and the remembered set is trustworthy).
func (vm *VM) collect(pc, fp int) {
	vm.Col.Collect(vm.roots(pc, fp), vm.Globals)
	// A stop-the-world collection aborts any concurrent cycle itself; the
	// heap is reclaimed, so the abort needs no further fallback collect.
	vm.concAbortSeen = vm.Col.Telem.Resilience.ConcAborts
	vm.concLastEnd = vm.Heap.OccupiedWords()
}

// fullCollect forces a full (major) collection regardless of nursery state.
func (vm *VM) fullCollect(pc, fp int) {
	vm.Col.CollectFull(vm.roots(pc, fp), vm.Globals)
	vm.concAbortSeen = vm.Col.Telem.Resilience.ConcAborts
	vm.concLastEnd = vm.Heap.OccupiedWords()
}

// tenureCollect runs a full collection that promotes every nursery
// survivor into the old region regardless of age — the ladder's way of
// emptying the young space, which ordinary collections cannot guarantee
// (survivors below the promotion age stay young forever otherwise).
func (vm *VM) tenureCollect(pc, fp int) {
	vm.Heap.SetTenureAll(true)
	vm.fullCollect(pc, fp)
	vm.Heap.SetTenureAll(false)
}

// concAdvance drives the concurrent collector at an allocation safe point:
// start a cycle at the occupancy watermark, run one mark slice per
// allocation while it is active, finish when the gray queue drains, and
// fall back to a stop-the-world collection when the slice watchdog trips.
func (vm *VM) concAdvance(pc, fp int) {
	if !vm.Col.ConcActive() {
		if ab := vm.Col.Telem.Resilience.ConcAborts; ab != vm.concAbortSeen {
			// The write barrier aborted the cycle since the last safe point
			// (a non-ground store it cannot type): reclaim with an ordinary
			// stop-the-world collection — the fallback the abort rung
			// promises — before the trigger may re-arm.
			vm.concAbortSeen = ab
			vm.Col.CollectFull(vm.roots(pc, fp), vm.Globals)
			// Refresh the hysteresis baseline: without it the trigger still
			// compares against the occupancy before the abort and can re-arm
			// a second cycle in the same occupancy epoch.
			vm.concLastEnd = vm.Heap.OccupiedWords()
			return
		}
		pct := vm.ConcTriggerPct
		if pct <= 0 {
			pct = 75
		}
		// Occupancy, not Used(): the mark/sweep bump pointer saturates once
		// the region fills while freed storage parks on the free lists.
		occ := vm.Heap.OccupiedWords()
		if 100*occ < pct*vm.Heap.SemiWords() {
			return
		}
		// Hysteresis: a mostly-live heap sitting above the watermark must
		// not re-cycle on every allocation reclaiming nothing — require
		// real growth since the last collection.
		if occ < vm.concLastEnd+vm.Heap.SemiWords()/8 {
			return
		}
		vm.Col.ConcStart(vm.roots(pc, fp), vm.Globals)
		return
	}
	switch vm.Col.ConcSlice() {
	case gc.ConcDrained:
		vm.Col.ConcFinish(vm.roots(pc, fp), vm.Globals)
		vm.concLastEnd = vm.Heap.OccupiedWords()
	case gc.ConcOverBudget:
		// The watchdog rung: abort the cycle and reclaim with an ordinary
		// stop-the-world collection right here.
		vm.Col.ConcAbort()
		vm.concAbortSeen = vm.Col.Telem.Resilience.ConcAborts
		vm.Col.CollectFull(vm.roots(pc, fp), vm.Globals)
		// Same baseline refresh as the abort fallback above: the watchdog's
		// stop-the-world reclaim ends this occupancy epoch.
		vm.concLastEnd = vm.Heap.OccupiedWords()
	}
}

func (vm *VM) roots(pc, fp int) []gc.TaskRoots {
	return []gc.TaskRoots{{
		Stack: vm.stack,
		FP:    fp,
		SP:    vm.sp,
		PC:    pc,
	}}
}

// barrier is the generational write barrier, called after every OpStFld.
// Stack slots and globals need no barrier — they are re-traced as roots on
// every collection; only interior heap stores can create old→young edges
// the minor trace would miss. The compiler records the stored value's
// static type per store site (Program.StoreDescs), omitting types that
// cannot hold pointers, so a missing descriptor means the dynamic range
// check would be matching an integer that merely aliases a young address.
func (vm *VM) barrier(pc int, obj code.Word, field int, v code.Word) {
	if d := vm.Prog.StoreDescs[pc]; d != nil && vm.Heap.InOld(obj) && vm.Heap.InYoung(v) {
		vm.Col.Remember(obj, field, d)
	}
}

// notePreTenure reports an allocation the nursery could not take (oversize
// for a young half, so placed directly in the old region): its initializing
// stores bypass the barrier, forcing the next collection to be a major.
func (vm *VM) notePreTenure(ptr code.Word) {
	if !vm.Heap.InYoung(ptr) {
		vm.Col.NoteTenuredAlloc()
	}
}

// ensureHeap guarantees room for an n-field object, climbing the recovery
// ladder as needed: collect, retry, grow (when GrowFactor enables it), and
// only then fail. A fault plan adds two entry points: torture mode
// collects before every allocation, and an injected failure forces an
// emergency collection even when the heap has room — both exercise exactly
// the paths a genuine exhaustion would take.
func (vm *VM) ensureHeap(n, pc, fp, fidx int) error {
	// A "climb" is any trip past the routine collect-on-demand: an injected
	// failure, or a first collection that did not free enough. Its outcome is
	// split into recovered vs exhausted so resilience stats distinguish a
	// rescue from a mere delay of death.
	climb := false
	recovered := func() error {
		if climb {
			vm.Col.Telem.Resilience.LadderRecovered++
		}
		return nil
	}
	if vm.GCConcurrent {
		// Allocation instructions are the single-task machine's safe points:
		// pc carries a frame map here, so the cycle's pauses may scan the
		// stack. A genuine exhaustion below still works mid-cycle — the
		// stop-the-world collect aborts the cycle automatically.
		vm.concAdvance(pc, fp)
	}
	if f := vm.Col.Faults; f != nil {
		switch {
		case f.Torture:
			vm.Col.Telem.Resilience.TortureCollections++
			vm.collect(pc, fp)
		case f.FailAlloc():
			vm.Col.Telem.Resilience.InjectedOOMs++
			vm.Col.Telem.Resilience.EmergencyCollections++
			climb = true
			vm.collect(pc, fp)
		}
	}
	if !vm.Heap.Need(n) {
		return recovered()
	}
	vm.collect(pc, fp)
	if !vm.Heap.Need(n) {
		return recovered()
	}
	climb = true
	// Generational escalation: a minor collection may not free enough young
	// space (survivors below the promotion age stay young), so escalate to
	// a full collection, then to a tenure-everything one that drains the
	// nursery into the old region, before concluding the heap is full.
	if vm.Heap.NurseryEnabled() {
		if vm.Col.LastCollectionMinor() {
			vm.fullCollect(pc, fp)
			if !vm.Heap.Need(n) {
				return recovered()
			}
		}
		vm.tenureCollect(pc, fp)
		if !vm.Heap.Need(n) {
			return recovered()
		}
	}
	for vm.GrowFactor > 1 {
		cur := vm.Heap.SemiWords()
		next := int(float64(cur) * vm.GrowFactor)
		if next <= cur {
			next = cur + 1
		}
		if vm.MaxHeapWords > 0 && next > vm.MaxHeapWords {
			next = vm.MaxHeapWords
		}
		if next <= cur {
			break // ceiling reached
		}
		if err := vm.Heap.Grow(next); err != nil {
			break
		}
		vm.Col.Telem.Resilience.HeapGrowths++
		if !vm.Heap.Need(n) {
			return recovered()
		}
		if vm.Heap.NurseryEnabled() {
			// Grow extends only the old region; tenure-all moves the young
			// survivors into the new space so a young-sized request that was
			// blocked on nursery occupancy can finally succeed.
			vm.tenureCollect(pc, fp)
			if !vm.Heap.Need(n) {
				return recovered()
			}
		}
	}
	vm.Col.Telem.Resilience.LadderExhausted++
	return vm.errf(pc, fidx, "heap exhausted (%d fields requested, %d words live)",
		n, vm.Heap.Used())
}

// call runs function fidx with the given arguments as a root invocation.
func (vm *VM) call(fidx int, args []code.Word) (code.Word, error) {
	fi := vm.Prog.Funcs[fidx]
	fp := vm.pushFrame(fidx, -1, -1)
	for i, a := range args {
		vm.stack[fp+2+i] = a
	}
	_ = fi
	return vm.loop(fidx, fp, fi.Entry)
}

// loop is the dispatch loop; it runs until the root frame returns.
func (vm *VM) loop(fidx, fp, pc int) (code.Word, error) {
	prog := vm.Prog
	c := prog.Code
	repr := prog.Repr
	nursery := vm.Heap.NurseryEnabled()
	steps := int64(0)

	for {
		steps++
		if steps > vm.MaxSteps {
			return 0, vm.errf(pc, fidx, "step limit exceeded (%d)", vm.MaxSteps)
		}
		op := c[pc]
		switch op {
		case code.OpHalt:
			return 0, nil

		case code.OpRet:
			val := vm.atom(fp, c[pc+1])
			retPC := int(vm.stack[fp+1])
			callerFP := int(vm.stack[fp])
			vm.sp = fp
			vm.shadow = vm.shadow[:len(vm.shadow)-1]
			if retPC < 0 {
				vm.Stats.Instructions += steps
				return val, nil
			}
			fp = callerFP
			fidx = vm.shadow[len(vm.shadow)-1].fidx
			dst := int(c[retPC+1])
			vm.stack[fp+2+dst] = val
			pc = retPC + code.InstrLen(c, retPC)

		case code.OpJmp:
			pc = int(c[pc+1])

		case code.OpJz:
			if !code.DecodeBool(repr, vm.atom(fp, c[pc+1])) {
				pc = int(c[pc+2])
			} else {
				pc += 3
			}

		case code.OpMove:
			vm.stack[fp+2+int(c[pc+1])] = vm.atom(fp, c[pc+2])
			pc += 3

		case code.OpAdd, code.OpSub, code.OpMul, code.OpDiv, code.OpMod,
			code.OpTAdd, code.OpTSub, code.OpTMul, code.OpTDiv, code.OpTMod:
			a := vm.atom(fp, c[pc+2])
			b := vm.atom(fp, c[pc+3])
			v, err := vm.arith(op, a, b, pc, fidx)
			if err != nil {
				return 0, err
			}
			vm.stack[fp+2+int(c[pc+1])] = v
			pc += 4

		case code.OpNeg:
			vm.stack[fp+2+int(c[pc+1])] = -vm.atom(fp, c[pc+2])
			pc += 3

		case code.OpTNeg:
			vm.stack[fp+2+int(c[pc+1])] = 2 - vm.atom(fp, c[pc+2])
			pc += 3

		case code.OpEq, code.OpNe, code.OpLt, code.OpLe, code.OpGt, code.OpGe:
			a := vm.atom(fp, c[pc+2])
			b := vm.atom(fp, c[pc+3])
			var r bool
			switch op {
			case code.OpEq:
				r = a == b
			case code.OpNe:
				r = a != b
			case code.OpLt:
				r = a < b
			case code.OpLe:
				r = a <= b
			case code.OpGt:
				r = a > b
			case code.OpGe:
				r = a >= b
			}
			vm.stack[fp+2+int(c[pc+1])] = code.EncodeBool(repr, r)
			pc += 4

		case code.OpNot:
			v := code.DecodeBool(repr, vm.atom(fp, c[pc+2]))
			vm.stack[fp+2+int(c[pc+1])] = code.EncodeBool(repr, !v)
			pc += 3

		case code.OpIsBoxed:
			v := code.IsBoxedValue(repr, vm.atom(fp, c[pc+2]))
			vm.stack[fp+2+int(c[pc+1])] = code.EncodeBool(repr, v)
			pc += 3

		case code.OpTagIs:
			obj := vm.atom(fp, c[pc+2])
			tag := code.DecodeInt(repr, vm.Heap.Field(obj, 0))
			vm.stack[fp+2+int(c[pc+1])] = code.EncodeBool(repr, tag == c[pc+3])
			pc += 4

		case code.OpLdFld:
			obj := vm.atom(fp, c[pc+2])
			v := vm.Heap.Field(obj, int(c[pc+3]))
			if vm.PoisonPruned && v == code.PrunedWord {
				return 0, vm.errf(pc, fidx, "poison: load of pruned field %d — heap-liveness verdict was wrong", int(c[pc+3]))
			}
			vm.stack[fp+2+int(c[pc+1])] = v
			pc += 4

		case code.OpStFld:
			obj := vm.atom(fp, c[pc+1])
			v := vm.atom(fp, c[pc+3])
			vm.Heap.SetField(obj, int(c[pc+2]), v)
			if nursery {
				vm.barrier(pc, obj, int(c[pc+2]), v)
			} else if vm.GCConcurrent && vm.Col.ConcActive() {
				// Incremental-update barrier: gray the stored value so a
				// field of an already-scanned object re-pointed at an
				// unmarked target cannot hide it from the cycle.
				if d := vm.Prog.StoreDescs[pc]; d != nil {
					vm.Col.ConcBarrier(d, v)
				}
			}
			pc += 4

		case code.OpCall:
			callee := int(c[pc+2])
			nargs := int(c[pc+4])
			fi := prog.Funcs[callee]
			newFP := vm.pushFrame(callee, pc, fp)
			for i := 0; i < nargs; i++ {
				v := vm.atom(fp, c[pc+5+i])
				if i < fi.NParams {
					vm.stack[newFP+2+i] = v
				} else {
					vm.stack[newFP+2+fi.RepArgBase+(i-fi.NParams)] = v
				}
			}
			vm.Stats.Calls++
			fp = newFP
			fidx = callee
			pc = fi.Entry

		case code.OpCallC:
			clos := vm.atom(fp, c[pc+3])
			if !code.IsBoxedValue(repr, clos) {
				return 0, vm.errf(pc, fidx, "application of an undefined recursive closure")
			}
			callee := int(code.DecodeInt(repr, vm.Heap.Field(clos, 0)))
			arg := vm.atom(fp, c[pc+4])
			fi := prog.Funcs[callee]
			newFP := vm.pushFrame(callee, pc, fp)
			vm.stack[newFP+2] = clos
			vm.stack[newFP+3] = arg
			vm.Stats.ClosCalls++
			_ = fi
			fp = newFP
			fidx = callee
			pc = prog.Funcs[callee].Entry

		case code.OpMkRef:
			if err := vm.ensureHeap(1, pc, fp, fidx); err != nil {
				return 0, err
			}
			ptr := vm.Heap.MustAlloc(1)
			vm.Heap.SetField(ptr, 0, vm.atom(fp, c[pc+3]))
			if nursery {
				vm.notePreTenure(ptr)
			}
			vm.stack[fp+2+int(c[pc+1])] = ptr
			vm.Stats.Allocations++
			pc += 4

		case code.OpMkTuple:
			n := int(c[pc+3])
			if err := vm.ensureHeap(n, pc, fp, fidx); err != nil {
				return 0, err
			}
			ptr := vm.Heap.MustAlloc(n)
			for i := 0; i < n; i++ {
				vm.Heap.SetField(ptr, i, vm.atom(fp, c[pc+4+i]))
			}
			if nursery {
				vm.notePreTenure(ptr)
			}
			vm.stack[fp+2+int(c[pc+1])] = ptr
			vm.Stats.Allocations++
			pc += 4 + n

		case code.OpMkBox:
			tag := c[pc+3]
			n := int(c[pc+4])
			total := n
			off := 0
			if tag >= 0 {
				total++
				off = 1
			}
			if err := vm.ensureHeap(total, pc, fp, fidx); err != nil {
				return 0, err
			}
			ptr := vm.Heap.MustAlloc(total)
			if tag >= 0 {
				vm.Heap.SetField(ptr, 0, code.EncodeInt(repr, tag))
			}
			for i := 0; i < n; i++ {
				vm.Heap.SetField(ptr, off+i, vm.atom(fp, c[pc+5+i]))
			}
			if nursery {
				vm.notePreTenure(ptr)
			}
			vm.stack[fp+2+int(c[pc+1])] = ptr
			vm.Stats.Allocations++
			pc += 5 + n

		case code.OpMkClos:
			target := int(c[pc+3])
			self := int(c[pc+4])
			nrep := int(c[pc+5])
			ncap := int(c[pc+6])
			total := 1 + nrep + ncap
			if err := vm.ensureHeap(total, pc, fp, fidx); err != nil {
				return 0, err
			}
			ptr := vm.Heap.MustAlloc(total)
			vm.Heap.SetField(ptr, 0, code.EncodeInt(repr, int64(target)))
			for i := 0; i < nrep; i++ {
				vm.Heap.SetField(ptr, 1+i, vm.atom(fp, c[pc+7+i]))
			}
			for i := 0; i < ncap; i++ {
				vm.Heap.SetField(ptr, 1+nrep+i, vm.atom(fp, c[pc+7+nrep+i]))
			}
			if self >= 0 {
				vm.Heap.SetField(ptr, 1+nrep+self, ptr)
			}
			if nursery {
				vm.notePreTenure(ptr)
			}
			vm.stack[fp+2+int(c[pc+1])] = ptr
			vm.Stats.Allocations++
			pc += 7 + nrep + ncap

		case code.OpMkRep:
			kind := code.TDKind(c[pc+2])
			index := int(c[pc+3])
			n := int(c[pc+4])
			children := make([]int, n)
			for i := 0; i < n; i++ {
				children[i] = int(code.DecodeInt(repr, vm.atom(fp, c[pc+5+i])))
			}
			h := prog.Reps.Intern(kind, index, children)
			vm.stack[fp+2+int(c[pc+1])] = code.EncodeInt(repr, int64(h))
			pc += 5 + n

		case code.OpBuiltin:
			arg := vm.atom(fp, c[pc+3])
			vm.builtin(c[pc+2], arg)
			vm.stack[fp+2+int(c[pc+1])] = code.EncodeInt(repr, 0)
			pc += 4

		case code.OpSetGlobal:
			vm.Globals[int(c[pc+1])] = vm.atom(fp, c[pc+2])
			pc += 3

		case code.OpMatchFail:
			return 0, vm.errf(pc, fidx, "match failure: no pattern matched")

		default:
			return 0, vm.errf(pc, fidx, "illegal opcode %d", op)
		}
	}
}

// arith evaluates an arithmetic opcode. Tagged variants strip and
// reinstate the tag bit (add/sub use the classic one-instruction identity;
// mul/div/mod pay the full strip cost — the paper's "tag manipulation"
// overhead).
func (vm *VM) arith(op code.Op, a, b code.Word, pc, fidx int) (code.Word, error) {
	switch op {
	case code.OpAdd:
		return a + b, nil
	case code.OpSub:
		return a - b, nil
	case code.OpMul:
		return a * b, nil
	case code.OpDiv:
		if b == 0 {
			return 0, vm.errf(pc, fidx, "division by zero")
		}
		return a / b, nil
	case code.OpMod:
		if b == 0 {
			return 0, vm.errf(pc, fidx, "division by zero")
		}
		return a % b, nil
	case code.OpTAdd:
		return a + b - 1, nil
	case code.OpTSub:
		return a - b + 1, nil
	case code.OpTMul:
		return ((a >> 1) * (b >> 1) << 1) | 1, nil
	case code.OpTDiv:
		bb := b >> 1
		if bb == 0 {
			return 0, vm.errf(pc, fidx, "division by zero")
		}
		return ((a >> 1) / bb << 1) | 1, nil
	case code.OpTMod:
		bb := b >> 1
		if bb == 0 {
			return 0, vm.errf(pc, fidx, "division by zero")
		}
		return ((a >> 1) % bb << 1) | 1, nil
	}
	panic("arith: unreachable")
}

func (vm *VM) builtin(id code.BuiltinID, arg code.Word) {
	repr := vm.Prog.Repr
	switch id {
	case code.BuiltinPrintInt:
		fmt.Fprintf(&vm.Out, "%d", code.DecodeInt(repr, arg))
	case code.BuiltinPrintBool:
		fmt.Fprintf(&vm.Out, "%t", code.DecodeBool(repr, arg))
	case code.BuiltinPrintString:
		vm.Out.WriteString(vm.Prog.Strings[code.DecodeInt(repr, arg)])
	case code.BuiltinPrintNewline:
		vm.Out.WriteByte('\n')
	}
}
