package vm_test

import (
	"strings"
	"testing"

	"tagfree/internal/code"
	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

// run compiles and executes src under the given strategy, returning the
// pipeline result (the vm package is exercised through its real driver).
func run(t *testing.T, src string, strat gc.Strategy, heap int) *pipeline.Result {
	t.Helper()
	res, err := pipeline.Run(src, pipeline.Options{Strategy: strat, HeapWords: heap})
	if err != nil {
		t.Fatalf("[%v] %v", strat, err)
	}
	return res
}

func TestArithmeticIdentities(t *testing.T) {
	// Exercise every arithmetic opcode in both representations with values
	// chosen to catch tag-handling slips (negatives, zero, large).
	src := `
let main () =
  let a = 17 * -3 in
  let b = -100 / 7 in
  let c = 100 mod 7 in
  let d = 0 - a in
  let e = (1 <= 1) && (2 < 3) && (3 >= 3) && (4 > 3) && (5 = 5) && (6 <> 7) in
  a * 1000000 + b * 10000 + c * 100 + d + (if e then 1 else 0) - 1
`
	want := int64(17*-3)*1000000 + int64(-100/7)*10000 + int64(100%7)*100 + 51
	for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratTagged} {
		res := run(t, src, strat, 1024)
		if res.Value != want {
			t.Errorf("[%v] = %d, want %d", strat, res.Value, want)
		}
	}
}

func TestNegativeDivisionMatchesGo(t *testing.T) {
	// MinML division truncates toward zero (Go semantics) identically in
	// both representations.
	src := `let main () = (-7 / 2) * 100 + (-7 mod 2)`
	for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratTagged} {
		res := run(t, src, strat, 1024)
		if res.Value != -301 {
			t.Errorf("[%v] = %d, want -301", strat, res.Value)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, src := range []string{
		`let main () = 1 / 0`,
		`let main () = 1 mod 0`,
	} {
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratTagged} {
			_, err := pipeline.Run(src, pipeline.Options{Strategy: strat})
			if err == nil || !strings.Contains(err.Error(), "division by zero") {
				t.Errorf("[%v] %q: got %v", strat, src, err)
			}
		}
	}
}

func TestStepLimit(t *testing.T) {
	src := `
let rec spin n = if n = 0 then 0 else spin n
let main () = spin 1
`
	_, err := pipeline.Run(src, pipeline.Options{Strategy: gc.StratCompiled, MaxSteps: 10_000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("got %v, want step limit error", err)
	}
}

func TestDeepStackGrows(t *testing.T) {
	// 20k-deep recursion exercises machine stack growth across frame
	// pushes; the collector must still walk the grown stack.
	src := `
let rec down n acc =
  if n = 0 then acc
  else (let cell = [n] in down (n - 1) (acc + (match cell with | x :: _ -> x | [] -> 0)))
let main () = down 20000 0
`
	res := run(t, src, gc.StratCompiled, 1<<15)
	want := int64(20000) * 20001 / 2
	if res.Value != want {
		t.Fatalf("= %d, want %d", res.Value, want)
	}
	if res.VMStats.MaxFrameDepth < 20000 {
		t.Fatalf("max frame depth %d, want >= 20000", res.VMStats.MaxFrameDepth)
	}
}

func TestOutputOrdering(t *testing.T) {
	src := `
let rec count n =
  if n = 0 then ()
  else (print_int n; print_string " "; count (n - 1))
let main () = count 5; 0
`
	res := run(t, src, gc.StratCompiled, 1024)
	if res.Output != "5 4 3 2 1 " {
		t.Fatalf("output %q", res.Output)
	}
}

func TestVMStatsCounted(t *testing.T) {
	src := `
let f x = [x]
let main () =
  let g = fun y -> y + 1 in
  match f (g 1) with | x :: _ -> x | [] -> 0
`
	res := run(t, src, gc.StratCompiled, 1024)
	if res.VMStats.Calls == 0 {
		t.Error("direct calls not counted")
	}
	if res.VMStats.ClosCalls == 0 {
		t.Error("closure calls not counted")
	}
	if res.VMStats.Allocations < 2 {
		t.Errorf("allocations = %d, want >= 2 (closure + cons)", res.VMStats.Allocations)
	}
	if res.VMStats.Instructions == 0 {
		t.Error("instructions not counted")
	}
}

func TestZeroFillOnlyWhereNeeded(t *testing.T) {
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let main () = sum (upto 50)
`
	precise := run(t, src, gc.StratCompiled, 1024)
	appel := run(t, src, gc.StratAppel, 1024)
	if precise.VMStats.ZeroFilledWords != 0 {
		t.Errorf("compiled mode zero-filled %d words; live maps make it unnecessary",
			precise.VMStats.ZeroFilledWords)
	}
	if appel.VMStats.ZeroFilledWords == 0 {
		t.Error("appel mode must zero-fill frames (uninitialized variables, §1.1.1)")
	}
}

func TestGlobalsSurviveCollections(t *testing.T) {
	src := `
let keep = [1; 2; 3; 4; 5]
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let blip n = (let _ = [n; n] in 0)
let rec churn n = if n = 0 then 0 else blip n + churn (n - 1)
let main () = churn 500 + sum keep
`
	res := run(t, src, gc.StratCompiled, 512)
	if res.Value != 15 {
		t.Fatalf("= %d, want 15 (globals moved or corrupted)", res.Value)
	}
	if res.HeapStats.Collections == 0 {
		t.Fatal("test needs collections to be meaningful")
	}
}

func TestConcAbortRefreshesHysteresisBaseline(t *testing.T) {
	// Regression: concAdvance's abort fallbacks (write-barrier abort and
	// the slice watchdog) reclaim with a stop-the-world collection but used
	// to leave the hysteresis baseline (concLastEnd) stale. A mostly-live
	// mark/sweep heap sitting above the trigger watermark then re-armed a
	// cycle at the very next allocation — back-to-back triggers in one
	// occupancy epoch, each aborting again.
	//
	// Setup: ~3200 of 4096 words stay live (above the 75% watermark) and a
	// churn phase allocates small garbage. ConcMaxSlices=1 makes every
	// cycle trip the watchdog, so each trigger becomes one ConcAbort.
	// With the baseline refreshed, a new trigger needs semi/8 = 512 words
	// of real growth: at 4 garbage words per churn iteration, 400
	// iterations allow at most ~4 epochs. Stale-baseline behavior triggers
	// on every allocation above the watermark (~hundreds of aborts).
	src := `
let rec build n = if n = 0 then [] else n :: build (n - 1)
let blip n = (let _ = [n; n] in 0)
let rec churn n = if n = 0 then 0 else blip n + churn (n - 1)
let main () =
  let keep = build 1600 in
  let x = churn 400 in
  x + (match keep with | h :: _ -> h | [] -> 0)
`
	res, err := pipeline.Run(src, pipeline.Options{
		Strategy:       gc.StratCompiled,
		HeapWords:      4096,
		MarkSweep:      true,
		GCConcurrent:   true,
		ConcMarkBudget: 8,
		ConcMaxSlices:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1600 {
		t.Fatalf("= %d, want 1600", res.Value)
	}
	aborts := res.Telemetry.Resilience.ConcAborts
	if aborts < 1 {
		t.Fatal("test never exercised the watchdog abort path")
	}
	if aborts > 10 {
		t.Fatalf("%d concurrent-cycle aborts; a refreshed baseline permits at most one trigger per occupancy epoch (~4 epochs here)", aborts)
	}
}

func TestRawWordDecoding(t *testing.T) {
	src := `let main () = true`
	free := run(t, src, gc.StratCompiled, 256)
	if !code.DecodeBool(code.ReprTagFree, free.Raw) {
		t.Error("tag-free raw bool decode failed")
	}
	tag := run(t, src, gc.StratTagged, 256)
	if !code.DecodeBool(code.ReprTagged, tag.Raw) {
		t.Error("tagged raw bool decode failed")
	}
}
