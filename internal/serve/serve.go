// Package serve is the overload-resilience harness: an open-loop
// request generator over the tasking runtime. Requests arrive on a fixed
// virtual-time schedule (arrival period, burst size, heavy-tail service
// mix over a workload's entry functions), pass through a bounded
// admission queue, and run as tasks of one shared-heap group. When demand
// exceeds capacity the harness degrades instead of failing globally:
//
//	rung 1 — shed new arrivals when the queue is full or heap occupancy
//	         crosses the watermark; shed clients retry with capped
//	         exponential backoff plus deterministic jitter;
//	rung 2 — on an occupancy shed, request a major/tenure-all collection
//	         from the group (consumed at the next stop-the-world cycle);
//	rung 3 — cancel admitted requests that outlive their deadline with a
//	         BudgetExceeded task fault (per-task step and allocation-word
//	         budgets in pipeline.Options compose with this).
//
// All scheduling and latency accounting is in virtual time (scheduler
// steps), so a run is bit-for-bit deterministic for a given seed; wall
// time appears only in throughput reporting. With Period == 0 the harness
// degenerates to the closed-loop corpus run tfbench performs — the
// differential suite pins that mode bit-identical to pipeline.RunTasks.
package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tagfree/internal/code"
	"tagfree/internal/pipeline"
	"tagfree/internal/tasking"
	"tagfree/internal/workloads"
)

// MixEntry weights one service class of the mix.
type MixEntry struct {
	Entry  string
	Weight int
}

// Config describes one serve run.
type Config struct {
	// Workload supplies the program, its entry functions, and their
	// expected results. Every Mix entry must name one of its Entries.
	Workload workloads.TaskWorkload
	// Mix is the weighted service-class mix requests sample from. Empty
	// means uniform over the workload's entries.
	Mix []MixEntry
	// Opts carries the heap/strategy/budget knobs (HeapWords, MarkSweep,
	// NurseryWords, TLABWords, BudgetSteps, BudgetAllocWords, faults...).
	Opts pipeline.Options

	// Open-loop arrival schedule, in virtual-time steps: Burst requests
	// arrive every Period steps until Requests have been issued.
	// Period == 0 selects closed-loop mode: the workload's entries are
	// spawned once, up front, exactly as tfbench runs the corpus.
	Period   int64
	Burst    int
	Requests int
	// Seed drives mix sampling and retry jitter (deterministic PRNG).
	Seed int64

	// Admission control (rung 1). QueueDepth bounds the admission queue
	// (default 16); MaxInflight bounds concurrently running requests
	// (default 8); ShedHeapPct > 0 sheds arrivals while heap occupancy is
	// at or above this percentage of the semispace.
	QueueDepth  int
	MaxInflight int
	ShedHeapPct int

	// Client retry policy for shed requests: up to MaxRetries attempts,
	// backoff doubling from Backoff up to BackoffCap, plus jitter in
	// [0, backoff/2]. Backoff defaults to Period (or 512 steps).
	MaxRetries int
	Backoff    int64
	BackoffCap int64

	// Deadline > 0 cancels an admitted request still running after this
	// many steps (rung 3); the task faults with BudgetExceeded.
	Deadline int64
}

// Stats are the harness counters; every issued request resolves into
// exactly one of Completed, Dropped, Canceled, or Faulted.
type Stats struct {
	Requests     int64 `json:"requests"`
	Arrivals     int64 `json:"arrivals"` // admission attempts incl. retries
	Admitted     int64 `json:"admitted"`
	Completed    int64 `json:"completed"`
	Shed         int64 `json:"shed,omitempty"`         // shed events (queue or heap watermark)
	ShedHeap     int64 `json:"shed_heap,omitempty"`    // the subset shed on heap occupancy
	Retries      int64 `json:"retries,omitempty"`      // sheds that rescheduled
	Dropped      int64 `json:"dropped,omitempty"`      // gave up after MaxRetries
	Canceled     int64 `json:"canceled,omitempty"`     // deadline cancellations (rung 3)
	Faulted      int64 `json:"faulted,omitempty"`      // other task faults (OOM ladder, budgets, runtime)
	WrongResults int64 `json:"wrong_results,omitempty"`
	ForcedMajors int64 `json:"forced_majors,omitempty"` // rung-2 escalations
}

// Result is one finished serve run.
type Result struct {
	Stats Stats
	// Latencies holds one sample per completed request: completion step
	// minus first-arrival step (queueing, retries, and collection pauses
	// included), ascending-sorted.
	Latencies []int64
	// Steps is the final virtual time; WallNS the wall-clock run time.
	Steps  int64
	WallNS int64
	// Values holds, in closed-loop mode, each entry's decoded result in
	// workload order — the differential pin against pipeline.RunTasks.
	Values []int64
	// Group exposes the finished task group (live-heap signatures,
	// telemetry) for the differential suite and reporting.
	Group *tasking.Group
}

// request is one client request's lifecycle.
type request struct {
	id       int
	entry    string
	fidx     int
	expect   int64
	arriveAt int64 // next arrival or retry time
	first    int64 // first arrival (latency epoch)
	attempts int   // shed count so far
	admitted int64
	task     *tasking.Task
	canceled bool
}

// driver holds the open-loop run state threaded through the Tick hook.
type driver struct {
	cfg      Config
	g        *tasking.Group
	rng      *rand.Rand
	waiting  []*request // issued, not yet admitted (future arrivals + backoffs)
	queue    []*request // admitted queue
	inflight []*request
	resolved    int
	total       int
	stats       *Stats
	lats        []int64
	majorReq    bool // rung-2 latch, cleared when occupancy drops
	seenRecords int  // telemetry records consumed by peakUsed
}

// Run executes the configured serve run.
func Run(cfg Config) (*Result, error) {
	mix, err := resolveMix(cfg)
	if err != nil {
		return nil, err
	}
	group, entries, err := pipeline.BuildTaskGroup(cfg.Workload.Source, cfg.Workload.Entries, cfg.Opts)
	if err != nil {
		return nil, err
	}
	fidx := map[string]int{}
	expect := map[string]int64{}
	for i, name := range cfg.Workload.Entries {
		fidx[name] = entries[i]
		if i < len(cfg.Workload.Expect) {
			expect[name] = cfg.Workload.Expect[i]
		}
	}

	res := &Result{Group: group}
	start := time.Now()
	if cfg.Period == 0 {
		err = runClosedLoop(cfg, group, entries, res)
	} else {
		err = runOpenLoop(cfg, group, mix, fidx, expect, res)
	}
	if err != nil {
		return nil, err
	}
	res.WallNS = time.Since(start).Nanoseconds()
	res.Steps = group.Now()
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })

	// The zero-global-failure ledger: every issued request must be
	// accounted exactly once. A mismatch is a harness bug, not a report row.
	s := res.Stats
	if s.Completed+s.Dropped+s.Canceled+s.Faulted != s.Requests {
		return nil, fmt.Errorf("serve: %d requests but %d accounted (completed=%d dropped=%d canceled=%d faulted=%d)",
			s.Requests, s.Completed+s.Dropped+s.Canceled+s.Faulted,
			s.Completed, s.Dropped, s.Canceled, s.Faulted)
	}
	return res, nil
}

// runClosedLoop reproduces the tfbench corpus run: one task per workload
// entry, all spawned up front, no admission control. A Tick hook observes
// completion times but mutates nothing, so execution is bit-identical to
// pipeline.RunTasks.
func runClosedLoop(cfg Config, g *tasking.Group, entries []int, res *Result) error {
	var reqs []*request
	for i, e := range entries {
		t := g.Spawn(e)
		reqs = append(reqs, &request{id: i, task: t})
		res.Stats.Requests++
		res.Stats.Arrivals++
		res.Stats.Admitted++
	}
	done := 0
	g.Tick = func(now int64) bool {
		for _, r := range reqs {
			if r.task == nil {
				continue
			}
			switch r.task.Status {
			case tasking.Done:
				res.Latencies = append(res.Latencies, now-r.first)
				res.Stats.Completed++
			case tasking.Faulted:
				res.Stats.Faulted++
			default:
				continue
			}
			r.task = nil
			done++
		}
		return done < len(reqs)
	}
	if err := g.RunInit(); err != nil {
		return err
	}
	if err := g.Run(); err != nil {
		return err
	}
	g.Tick = nil
	for i, t := range g.Tasks {
		if t.Status == tasking.Faulted {
			res.Values = append(res.Values, 0)
			continue
		}
		res.Values = append(res.Values, code.DecodeInt(g.Prog.Repr, t.Result))
		if i < len(cfg.Workload.Expect) && res.Values[i] != cfg.Workload.Expect[i] {
			res.Stats.WrongResults++
		}
	}
	return nil
}

// runOpenLoop drives the arrival schedule through the Tick hook.
func runOpenLoop(cfg Config, g *tasking.Group, mix []MixEntry, fidx map[string]int, expect map[string]int64, res *Result) error {
	d := &driver{
		cfg:   withDefaults(cfg),
		g:     g,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		total: cfg.Requests,
		stats: &res.Stats,
	}
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	for i := 0; i < cfg.Requests; i++ {
		pick := d.rng.Intn(total)
		entry := mix[len(mix)-1].Entry
		for _, m := range mix {
			if pick < m.Weight {
				entry = m.Entry
				break
			}
			pick -= m.Weight
		}
		at := int64(i/d.cfg.Burst) * cfg.Period
		d.waiting = append(d.waiting, &request{
			id: i, entry: entry, fidx: fidx[entry], expect: expect[entry],
			arriveAt: at, first: at,
		})
		res.Stats.Requests++
	}
	g.Tick = d.tick
	if err := g.RunInit(); err != nil {
		return err
	}
	if err := g.Run(); err != nil {
		return err
	}
	g.Tick = nil
	res.Latencies = d.lats
	return nil
}

// withDefaults fills the zero-value admission knobs.
func withDefaults(cfg Config) Config {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 8
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = cfg.Period
		if cfg.Backoff == 0 {
			cfg.Backoff = 512
		}
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 64 * cfg.Backoff
	}
	return cfg
}

// tick is the supervisor hook: called by the scheduler between rounds,
// never during a pending collection. Order matters for determinism:
// deadline cancels, completion accounting, arrivals/shedding, admission.
func (d *driver) tick(now int64) bool {
	if d.cfg.Deadline > 0 {
		for _, r := range d.inflight {
			if !r.canceled && now-r.admitted > d.cfg.Deadline &&
				d.g.CancelTask(r.task, fmt.Errorf("deadline exceeded: %d steps admitted, limit %d", now-r.admitted, d.cfg.Deadline)) {
				r.canceled = true
			}
		}
	}

	keep := d.inflight[:0]
	for _, r := range d.inflight {
		switch r.task.Status {
		case tasking.Done:
			d.lats = append(d.lats, now-r.first)
			d.stats.Completed++
			if code.DecodeInt(d.g.Prog.Repr, r.task.Result) != r.expect {
				d.stats.WrongResults++
			}
			d.resolved++
		case tasking.Faulted:
			if r.canceled {
				d.stats.Canceled++
			} else {
				d.stats.Faulted++
			}
			d.resolved++
		default:
			keep = append(keep, r)
		}
	}
	d.inflight = keep

	// Arrivals due now, in deterministic (time, id) order.
	var due []*request
	wait := d.waiting[:0]
	for _, r := range d.waiting {
		if r.arriveAt <= now {
			due = append(due, r)
		} else {
			wait = append(wait, r)
		}
	}
	d.waiting = wait
	sort.Slice(due, func(i, j int) bool {
		if due[i].arriveAt != due[j].arriveAt {
			return due[i].arriveAt < due[j].arriveAt
		}
		return due[i].id < due[j].id
	})
	heapPressure := false
	if d.cfg.ShedHeapPct > 0 {
		heapPressure = 100*d.peakUsed()/d.capacity() >= d.cfg.ShedHeapPct
		if !heapPressure {
			d.majorReq = false // occupancy back under the watermark; re-arm rung 2
		}
	}
	for _, r := range due {
		d.stats.Arrivals++
		if reason := d.shedReason(heapPressure); reason != "" {
			d.shed(r, now, reason)
			continue
		}
		d.queue = append(d.queue, r)
	}

	for len(d.queue) > 0 && len(d.inflight) < d.cfg.MaxInflight {
		r := d.queue[0]
		d.queue = d.queue[1:]
		r.task = d.g.Spawn(r.fidx)
		r.admitted = now
		d.stats.Admitted++
		d.inflight = append(d.inflight, r)
	}

	return d.resolved < d.total
}

// shedReason reports why a new arrival cannot be admitted ("" = admit).
// The heap watermark (computed once per tick by the caller) is judged
// before queue depth: occupancy pressure is the severer signal (it
// escalates to rung 2), so it must not be masked by a full queue.
func (d *driver) shedReason(heapPressure bool) string {
	if heapPressure {
		return "heap"
	}
	if len(d.queue) >= d.cfg.QueueDepth {
		return "queue"
	}
	return ""
}

// capacity is the total allocatable space: the semispace plus, with a
// nursery, the young halves (minors promote their occupancy into the old
// region, so they count as pressure). YoungTotalWords sums every shard's
// active half — YoungWords alone under-reports a sharded heap's young
// capacity by a factor of the shard count, making admission shed early.
func (d *driver) capacity() int {
	c := d.g.Heap.SemiWords()
	if d.g.Heap.NurseryEnabled() {
		c += d.g.Heap.YoungTotalWords()
	}
	return c
}

// peakUsed is the high-water heap occupancy since the last admission
// decision. Ticks run at round boundaries, so the instantaneous reading
// systematically misses the sawtooth peak a collection just reset; any
// collection since the previous reading proves the heap reached its
// recorded UsedBefore words in between.
func (d *driver) peakUsed() int {
	used := d.g.Heap.Used()
	if d.g.Heap.NurseryEnabled() {
		used += d.g.Heap.YoungUsed()
	}
	recs := d.g.Col.Telem.Records
	for _, r := range recs[d.seenRecords:] {
		if int(r.UsedBefore) > used {
			used = int(r.UsedBefore)
		}
	}
	d.seenRecords = len(recs)
	return used
}

// shed records one shed event and either schedules the client's retry or
// drops the request for good.
func (d *driver) shed(r *request, now int64, reason string) {
	d.stats.Shed++
	if reason == "heap" {
		d.stats.ShedHeap++
		if !d.majorReq {
			// Rung 2: ask the group for a major/tenure-all cycle at its next
			// stop-the-world collection, once per watermark excursion.
			d.g.RequestMajor()
			d.majorReq = true
			d.stats.ForcedMajors++
		}
	}
	if r.attempts >= d.cfg.MaxRetries {
		d.stats.Dropped++
		d.resolved++
		return
	}
	r.attempts++
	backoff := d.cfg.Backoff << (r.attempts - 1)
	if backoff > d.cfg.BackoffCap {
		backoff = d.cfg.BackoffCap
	}
	backoff += d.rng.Int63n(backoff/2 + 1) // jitter de-synchronizes retry herds
	r.arriveAt = now + backoff
	d.stats.Retries++
	d.waiting = append(d.waiting, r)
}

// resolveMix validates the service mix (defaulting to uniform over the
// workload's entries) against the workload.
func resolveMix(cfg Config) ([]MixEntry, error) {
	known := map[string]bool{}
	for _, e := range cfg.Workload.Entries {
		known[e] = true
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		for _, e := range cfg.Workload.Entries {
			mix = append(mix, MixEntry{Entry: e, Weight: 1})
		}
	}
	for _, m := range mix {
		if !known[m.Entry] {
			return nil, fmt.Errorf("serve: mix entry %q is not an entry of workload %s", m.Entry, cfg.Workload.Name)
		}
		if m.Weight <= 0 {
			return nil, fmt.Errorf("serve: mix entry %q has non-positive weight %d", m.Entry, m.Weight)
		}
	}
	if cfg.Period > 0 && cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: open-loop mode needs Requests > 0")
	}
	return mix, nil
}
