package serve

import (
	"fmt"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/workloads"
)

// The serve differential pins. Closed-loop mode must be bit-identical to
// pipeline.RunTasks over the whole corpus (values, live-heap signature,
// telemetry record count) — the harness adds observation, not behavior.
// Open-loop mode at twice the sustainable arrival rate must finish with
// zero global failures: every issued request accounted as completed,
// dropped (after shed+retry), canceled (deadline), or faulted, and every
// completed request returning its expected value.

func TestClosedLoopMatchesRunTasks(t *testing.T) {
	for _, w := range workloads.Tasking {
		for _, ms := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/ms=%v", w.Name, ms), func(t *testing.T) {
				opts := pipeline.Options{
					Strategy:  gc.StratCompiled,
					HeapWords: w.HeapWords,
					MarkSweep: ms,
				}
				bench, err := pipeline.RunTasks(w.Source, w.Entries, opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(Config{Workload: w, Opts: opts})
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(res.Values) != fmt.Sprint(bench.Values) {
					t.Fatalf("values diverge: serve %v, bench %v", res.Values, bench.Values)
				}
				if res.Stats.Completed != int64(len(w.Entries)) || res.Stats.Faulted != 0 {
					t.Fatalf("closed loop did not complete cleanly: %+v", res.Stats)
				}
				sSig := fmt.Sprint(res.Group.Col.LiveSignature(res.Group.Globals))
				bSig := fmt.Sprint(bench.Group.Col.LiveSignature(bench.Group.Globals))
				if sSig != bSig {
					t.Fatal("live-heap signature diverges from pipeline.RunTasks")
				}
				if len(res.Group.Col.Telem.Records) != len(bench.Telemetry.Records) {
					t.Fatalf("collection record counts diverge: serve %d, bench %d",
						len(res.Group.Col.Telem.Records), len(bench.Telemetry.Records))
				}
			})
		}
	}
}

// serveWorkload returns the taskserve corpus entry.
func serveWorkload(t *testing.T) workloads.TaskWorkload {
	t.Helper()
	w, ok := workloads.TaskByName("taskserve")
	if !ok {
		t.Fatal("taskserve workload missing")
	}
	return w
}

// sustainablePeriod estimates the arrival period that matches service
// capacity: the closed-loop run's virtual length is the whole corpus's
// service demand, so demand per request divided by the server count is
// the break-even inter-arrival time.
func sustainablePeriod(t *testing.T, w workloads.TaskWorkload, opts pipeline.Options, inflight int) int64 {
	t.Helper()
	res, err := Run(Config{Workload: w, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	perReq := res.Steps / int64(len(w.Entries))
	return perReq / int64(inflight)
}

func TestOverloadTwiceSustainableAccountsEveryLoss(t *testing.T) {
	w := serveWorkload(t)
	opts := pipeline.Options{
		Strategy:    gc.StratCompiled,
		HeapWords:   w.HeapWords,
		BudgetSteps: 2_000_000,
	}
	inflight := 4
	period := sustainablePeriod(t, w, opts, inflight) / 2 // 2x the sustainable rate
	if period < 1 {
		period = 1
	}
	cfg := Config{
		Workload:    w,
		Mix:         []MixEntry{{"req_tiny", 6}, {"req_small", 3}, {"req_medium", 2}, {"req_heavy", 1}},
		Opts:        opts,
		Period:      period,
		Burst:       2,
		Requests:    200,
		Seed:        7,
		QueueDepth:  8,
		MaxInflight: inflight,
		ShedHeapPct: 85,
		MaxRetries:  3,
		Deadline:    400_000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Completed == 0 {
		t.Fatalf("overload run completed nothing: %+v", s)
	}
	if s.Shed == 0 || s.Retries == 0 {
		t.Fatalf("2x overload never shed/retried: %+v", s)
	}
	if s.WrongResults != 0 {
		t.Fatalf("%d completed requests returned wrong values", s.WrongResults)
	}
	// The ledger (also enforced inside Run): nothing vanished.
	if s.Completed+s.Dropped+s.Canceled+s.Faulted != s.Requests {
		t.Fatalf("loss unaccounted: %+v", s)
	}
	rep := NewReport("overload", cfg, res)
	if rep.LatencyP50 <= 0 || rep.LatencyP999 < rep.LatencyP99 || rep.LatencyP99 < rep.LatencyP50 {
		t.Fatalf("latency percentiles not ordered: %+v", rep)
	}
}

func TestServeDeterminism(t *testing.T) {
	w := serveWorkload(t)
	cfg := Config{
		Workload:    w,
		Opts:        pipeline.Options{Strategy: gc.StratCompiled, HeapWords: w.HeapWords},
		Period:      300,
		Burst:       2,
		Requests:    60,
		Seed:        11,
		QueueDepth:  4,
		MaxInflight: 2,
		MaxRetries:  2,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge across identical runs:\n  a %+v\n  b %+v", a.Stats, b.Stats)
	}
	if fmt.Sprint(a.Latencies) != fmt.Sprint(b.Latencies) {
		t.Fatal("latency samples diverge across identical runs")
	}
	if a.Steps != b.Steps {
		t.Fatalf("virtual run length diverges: %d vs %d", a.Steps, b.Steps)
	}
}

// TestDegradationLadderEscalates drives the heap-occupancy rung: a small
// nursery heap with an aggressive watermark must shed on occupancy and
// request tenure-all majors, and deadline cancellation must surface as
// BudgetExceeded faults — all without a global failure.
func TestDegradationLadderEscalates(t *testing.T) {
	w := serveWorkload(t)
	cfg := Config{
		Workload: w,
		Mix:      []MixEntry{{"req_medium", 1}, {"req_heavy", 1}},
		Opts: pipeline.Options{
			Strategy:     gc.StratCompiled,
			HeapWords:    w.HeapWords,
			NurseryWords: 256,
		},
		Period:      150,
		Burst:       2,
		Requests:    80,
		Seed:        3,
		QueueDepth:  64, // deep queue: occupancy, not depth, is the watermark under test
		MaxInflight: 4,
		ShedHeapPct: 10,
		MaxRetries:  2,
		Deadline:    60_000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.ShedHeap == 0 || s.ForcedMajors == 0 {
		t.Fatalf("occupancy rung never fired: %+v", s)
	}
	if s.Canceled == 0 {
		t.Fatalf("deadline rung never fired: %+v", s)
	}
	rs := res.Group.Col.Telem.Resilience
	if rs.BudgetFaults != s.Canceled {
		t.Fatalf("cancellations (%d) must surface as budget faults (%d)", s.Canceled, rs.BudgetFaults)
	}
}

func TestMixValidation(t *testing.T) {
	w := serveWorkload(t)
	if _, err := Run(Config{Workload: w, Mix: []MixEntry{{"nope", 1}}, Period: 10, Requests: 1}); err == nil {
		t.Fatal("unknown mix entry not rejected")
	}
	if _, err := Run(Config{Workload: w, Mix: []MixEntry{{"req_tiny", 0}}, Period: 10, Requests: 1}); err == nil {
		t.Fatal("non-positive weight not rejected")
	}
	if _, err := Run(Config{Workload: w, Period: 10}); err == nil {
		t.Fatal("open loop without Requests not rejected")
	}
}

// TestShardedOverloadLedgerBalances pins satellite coverage for the
// sharded heap under serving load: at every shard count the overload run
// must keep the loss ledger exact (completed+dropped+canceled+faulted ==
// requests), return only correct values, and — once there is more than
// one shard — actually run single-shard minors so the ledger is exercised
// over the sharded collection schedule, not just the global one.
func TestShardedOverloadLedgerBalances(t *testing.T) {
	w := serveWorkload(t)
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := pipeline.Options{
				Strategy:     gc.StratCompiled,
				HeapWords:    w.HeapWords,
				NurseryWords: 2048,
				VerifyHeap:   true,
				BudgetSteps:  2_000_000,
			}
			if shards > 1 {
				opts.Shards = shards
			}
			cfg := Config{
				Workload:    w,
				Mix:         []MixEntry{{"req_tiny", 6}, {"req_small", 3}, {"req_medium", 2}, {"req_heavy", 1}},
				Opts:        opts,
				Period:      3000,
				Burst:       1,
				Requests:    120,
				Seed:        7,
				QueueDepth:  8,
				MaxInflight: 4,
				ShedHeapPct: 85,
				MaxRetries:  3,
				Deadline:    400_000,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if s.Completed == 0 {
				t.Fatalf("completed nothing: %+v", s)
			}
			if s.WrongResults != 0 {
				t.Fatalf("%d completed requests returned wrong values", s.WrongResults)
			}
			if s.Completed+s.Dropped+s.Canceled+s.Faulted != s.Requests {
				t.Fatalf("loss unaccounted: %+v", s)
			}
			gs := res.Group.Stats
			if shards > 1 && gs.ShardMinors == 0 {
				t.Fatalf("shards=%d never ran a shard minor", shards)
			}
			if shards == 1 && gs.ShardMinors != 0 {
				t.Fatalf("unsharded run counted shard minors: %+v", gs)
			}
		})
	}
}
