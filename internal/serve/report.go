package serve

import (
	"fmt"
	"strings"
	"time"

	"tagfree/internal/stats"
)

// SnapshotSchema identifies the emitted JSON layout. It is the same
// schema string the benchmark trajectory and scenario matrix use
// (tagfree-bench/v1); duplicated here so serve does not depend on the
// experiment tables (which depend on it for E14).
const SnapshotSchema = "tagfree-bench/v1"

// Report condenses a Result into the numbers the tables and snapshots
// carry. Latency percentiles are in virtual-time steps: on a single-core
// container wall-clock tails measure the host scheduler, while step
// latencies are deterministic and comparable across runs (EXPERIMENTS.md,
// E14 methodology).
type Report struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"` // "serve"
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// Discipline is "copying" or "mark/sweep".
	Discipline string `json:"discipline"`

	// The resolved arrival/admission configuration.
	Period      int64 `json:"period,omitempty"`
	Burst       int   `json:"burst,omitempty"`
	QueueDepth  int   `json:"queue_depth,omitempty"`
	MaxInflight int   `json:"max_inflight,omitempty"`
	ShedHeapPct int   `json:"shed_heap_pct,omitempty"`
	Deadline    int64 `json:"deadline,omitempty"`
	BudgetSteps int64 `json:"budget_steps,omitempty"`
	BudgetAlloc int64 `json:"budget_alloc_words,omitempty"`

	Stats Stats `json:"stats"`

	// Steps is the virtual run length; ThroughputKRPS the completed
	// requests per million steps; WallNS the wall-clock run time.
	Steps          int64   `json:"steps"`
	WallNS         int64   `json:"wall_ns"`
	ThroughputRPMS float64 `json:"throughput_rpmsteps"` // completed per 1e6 steps

	// Latency percentiles over completed requests, in steps.
	LatencyP50  int64 `json:"latency_p50_steps"`
	LatencyP99  int64 `json:"latency_p99_steps"`
	LatencyP999 int64 `json:"latency_p999_steps"`
	LatencyMax  int64 `json:"latency_max_steps"`

	// Collector-side counters for the degradation ladder.
	Collections  int64 `json:"gc_count,omitempty"`
	BudgetFaults int64 `json:"budget_faults,omitempty"`
	LadderRecov  int64 `json:"ladder_recovered,omitempty"`
	LadderExh    int64 `json:"ladder_exhausted,omitempty"`
}

// Snapshot is the whole emitted file (tagfree-bench/v1 with "serve" runs).
type Snapshot struct {
	Schema string   `json:"schema"`
	Runs   []Report `json:"runs"`
}

// percentile is stats.Percentile — the one shared quantile rule, so the
// serve and bench latency rows can never disagree on methodology.
func percentile(sorted []int64, p float64) int64 {
	return stats.Percentile(sorted, p)
}

// NewReport folds a finished run into its report row.
func NewReport(name string, cfg Config, res *Result) Report {
	discipline := "copying"
	if cfg.Opts.MarkSweep {
		discipline = "mark/sweep"
	}
	r := Report{
		Name:        name,
		Kind:        "serve",
		Workload:    cfg.Workload.Name,
		Strategy:    cfg.Opts.Strategy.String(),
		Discipline:  discipline,
		Period:      cfg.Period,
		Burst:       cfg.Burst,
		QueueDepth:  cfg.QueueDepth,
		MaxInflight: cfg.MaxInflight,
		ShedHeapPct: cfg.ShedHeapPct,
		Deadline:    cfg.Deadline,
		BudgetSteps: cfg.Opts.BudgetSteps,
		BudgetAlloc: cfg.Opts.BudgetAllocWords,
		Stats:       res.Stats,
		Steps:       res.Steps,
		WallNS:      res.WallNS,
		LatencyP50:  percentile(res.Latencies, 0.50),
		LatencyP99:  percentile(res.Latencies, 0.99),
		LatencyP999: percentile(res.Latencies, 0.999),
		LatencyMax:  percentile(res.Latencies, 1),
	}
	if res.Steps > 0 {
		r.ThroughputRPMS = float64(res.Stats.Completed) * 1e6 / float64(res.Steps)
	}
	if res.Group != nil {
		r.Collections = res.Group.Col.Stats.Collections
		rs := res.Group.Col.Telem.Resilience
		r.BudgetFaults = rs.BudgetFaults
		r.LadderRecov = rs.LadderRecovered
		r.LadderExh = rs.LadderExhausted
	}
	return r
}

// Table renders one report as the aligned text block tfserve prints.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve: workload=%s strategy=%s discipline=%s\n",
		r.Workload, r.Strategy, r.Discipline)
	if r.Period > 0 {
		fmt.Fprintf(&b, "arrivals: period=%d burst=%d queue=%d inflight=%d shed-heap%%=%d deadline=%d\n",
			r.Period, r.Burst, r.QueueDepth, r.MaxInflight, r.ShedHeapPct, r.Deadline)
	} else {
		fmt.Fprintf(&b, "arrivals: closed-loop (corpus order, no admission control)\n")
	}
	s := r.Stats
	fmt.Fprintf(&b, "requests: issued=%d completed=%d shed=%d retries=%d dropped=%d canceled=%d faulted=%d wrong=%d\n",
		s.Requests, s.Completed, s.Shed, s.Retries, s.Dropped, s.Canceled, s.Faulted, s.WrongResults)
	fmt.Fprintf(&b, "ladder: shed-heap=%d forced-majors=%d budget-faults=%d ladder-recovered=%d ladder-exhausted=%d\n",
		s.ShedHeap, s.ForcedMajors, r.BudgetFaults, r.LadderRecov, r.LadderExh)
	fmt.Fprintf(&b, "latency(steps): p50=%d p99=%d p999=%d max=%d\n",
		r.LatencyP50, r.LatencyP99, r.LatencyP999, r.LatencyMax)
	fmt.Fprintf(&b, "throughput: %.1f req/Msteps over %d steps (wall %s, gcs=%d)\n",
		r.ThroughputRPMS, r.Steps, time.Duration(r.WallNS), r.Collections)
	return b.String()
}
